// Reproduces Section VI and Figure 8: are some users more prone to node
// failures than others? Per-user failures per processor-day for the 50
// heaviest users, and the Poisson saturated-vs-common-rate ANOVA which the
// paper uses to show the heterogeneity is significant at 99% confidence.
#include "bench_common.h"
#include "core/user_analysis.h"

int main(int argc, char** argv) {
  const hpcfail::bench::BenchArgs bench_args =
      hpcfail::bench::ParseArgs(argc, argv, "fig08_users");
  using namespace hpcfail;
  using namespace hpcfail::core;
  bench::PrintHeader(
      "Figure 8 + Section VI: per-user failure rates",
      "paper: large discrepancy in failures per processor-day across the 50 "
      "heaviest users; saturated Poisson model beats common-rate at 99%");
  const engine::AnalysisSession session =
      bench::MakeBenchSession(bench_args);
  const Trace& trace = session.trace();

  for (SystemId sys : SystemsWithJobs(trace)) {
    const SystemConfig& config = trace.system(sys);
    const UserAnalysis u = AnalyzeUsers(trace, sys, 50);
    std::cout << "\n-- " << config.name << " (" << u.total_users
              << " users total) --\n";
    Table t({"user", "proc-days", "killed jobs", "failures/proc-day"});
    const int show = std::min<int>(12, static_cast<int>(u.heaviest_users.size()));
    for (int i = 0; i < show; ++i) {
      const UserFailureStats& s = u.heaviest_users[static_cast<std::size_t>(i)];
      t.AddRow({std::to_string(s.user.value),
                FormatDouble(s.processor_days, 1),
                std::to_string(s.killed_jobs),
                FormatDouble(s.failures_per_proc_day, 5)});
    }
    t.Print(std::cout);

    double lo = 1e18, hi = 0.0;
    for (const UserFailureStats& s : u.heaviest_users) {
      lo = std::min(lo, s.failures_per_proc_day);
      hi = std::max(hi, s.failures_per_proc_day);
    }
    Table stats({"metric", "value", "paper"});
    stats.AddRow({"top-50 min rate", FormatDouble(lo, 5), "-"});
    stats.AddRow({"top-50 max rate", FormatDouble(hi, 5),
                  "large discrepancy (Fig 8)"});
    stats.AddRow({"ANOVA LRT statistic",
                  FormatDouble(u.rate_heterogeneity.statistic, 1), "-"});
    stats.AddRow({"ANOVA df", FormatDouble(u.rate_heterogeneity.df, 0), "49"});
    stats.AddRow({"ANOVA p",
                  FormatDouble(u.rate_heterogeneity.p_value, 6),
                  "< 0.01 (saturated wins)"});
    stats.Print(std::cout);

    PrintShapeCheck(std::cout, config.name + " user-rate heterogeneity",
                    u.rate_heterogeneity.statistic,
                    "significant at 99% confidence",
                    u.rate_heterogeneity.significant_99);
  }
  return 0;
}
