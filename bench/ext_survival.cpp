// Extension: time-to-next-failure survival curves per trigger type — the
// whole-curve generalization of Fig. 1(a)'s fixed windows. Kaplan-Meier
// estimation handles the censored tails the window analysis discards, and
// the log-rank test formalizes the trigger-type ordering across every
// horizon at once.
#include <cmath>

#include "bench_common.h"
#include "core/survival_analysis.h"

int main(int argc, char** argv) {
  const hpcfail::bench::BenchArgs bench_args =
      hpcfail::bench::ParseArgs(argc, argv, "ext_survival");
  using namespace hpcfail;
  using namespace hpcfail::core;
  bench::PrintHeader(
      "Extension: time-to-next-failure survival curves (generalizes Fig 1a)",
      "env/net-triggered survival drops fastest at every horizon, not just "
      "day/week");
  const engine::AnalysisSession session =
      bench::MakeBenchSession(bench_args);
  const Trace& trace = session.trace();
  const EventIndex g1 =
      session.IndexFor(SystemsOfGroup(trace, SystemGroup::kSmp));
  const SurvivalAnalysis sa = AnalyzeTimeToNextFailure(g1);

  Table t({"trigger", "n", "P(fail<=1d)", "P(fail<=1wk)",
           "median time-to-next"});
  for (const TriggerSurvival& ts : sa.by_trigger) {
    if (ts.observations.size() < 3) continue;
    const std::string median =
        std::isinf(ts.median_hours)
            ? "> observation"
            : FormatDouble(ts.median_hours / 24.0, 1) + " days";
    t.AddRow({std::string(ToString(ts.trigger)),
              std::to_string(ts.observations.size()),
              FormatDouble(100.0 * ts.failure_within_day, 1) + "%",
              FormatDouble(100.0 * ts.failure_within_week, 1) + "%", median});
  }
  t.Print(std::cout);

  std::cout << "log-rank env vs hw: chi2="
            << FormatDouble(sa.env_vs_hw.statistic, 1)
            << " p=" << FormatDouble(sa.env_vs_hw.p_value, 5)
            << "; net vs sw: chi2=" << FormatDouble(sa.net_vs_sw.statistic, 1)
            << " p=" << FormatDouble(sa.net_vs_sw.p_value, 5) << "\n";

  const auto& env =
      sa.by_trigger[static_cast<std::size_t>(FailureCategory::kEnvironment)];
  const auto& hw =
      sa.by_trigger[static_cast<std::size_t>(FailureCategory::kHardware)];
  PrintShapeCheck(std::cout, "env survival drops faster than hw",
                  env.failure_within_week /
                      std::max(1e-9, hw.failure_within_week),
                  "env/net strongest triggers across all horizons",
                  env.failure_within_week > hw.failure_within_week &&
                      sa.env_vs_hw.significant_99);
  return 0;
}
