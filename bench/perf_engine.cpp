// Performance benchmarks (google-benchmark) for the generator and the
// analysis kernels, including the ablations DESIGN.md calls out:
//   - indexed (binary-searched) window queries vs a naive scan;
//   - trace generation cost vs system scale;
//   - GLM fitting cost;
//   - serial vs parallel execution of the hot kernels (the /threads:N
//     benchmarks; N=1 is the serial path, results are bit-identical).
//
// With --json the google-benchmark harness is bypassed entirely: the binary
// emits one JSON object with the session acquisition cost (cold generation
// vs warm artifact-cache load) and per-thread-count kernel throughput — the
// machine-readable baseline BENCH_baseline.json is written from.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <iostream>
#include <limits>
#include <sstream>
#include <string_view>
#include <thread>
#include <vector>

#include "core/event_store.h"
#include "core/joint_regression.h"
#include "core/simd.h"
#include "core/parallel.h"
#include "core/window_analysis.h"
#include "engine/bootstrap_table.h"
#include "engine/session.h"
#include "engine/session_set.h"
#include "engine/trace_source.h"
#include "engine/trace_cache.h"
#include "stats/bootstrap.h"
#include "stats/descriptive.h"
#include "stats/glm.h"
#include "stats/rng.h"
#include "synth/generate.h"

namespace hpcfail {
namespace {

using namespace core;

// Shared medium-size trace for the query benchmarks.
const Trace& SharedTrace() {
  static const Trace trace =
      synth::GenerateTrace(synth::LanlLikeScenario(0.25, kYear), 7);
  return trace;
}

const EventIndex& SharedIndex() {
  static const EventIndex index(SharedTrace());
  return index;
}

void BM_GenerateTrace(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 100.0;
  const auto scenario = synth::LanlLikeScenario(scale, kYear);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Trace t = synth::GenerateTrace(scenario, seed++);
    benchmark::DoNotOptimize(t.num_failures());
  }
}
BENCHMARK(BM_GenerateTrace)->Arg(5)->Arg(25)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_EventIndexBuild(benchmark::State& state) {
  const Trace& trace = SharedTrace();
  for (auto _ : state) {
    EventIndex idx(trace);
    benchmark::DoNotOptimize(idx.Count(EventFilter::Any()));
  }
}
BENCHMARK(BM_EventIndexBuild)->Unit(benchmark::kMillisecond);

void BM_WindowQueryIndexed(benchmark::State& state) {
  const EventIndex& idx = SharedIndex();
  const SystemId sys = SharedTrace().systems()[0].id;
  const int nodes = SharedTrace().systems()[0].num_nodes;
  stats::Rng rng(3);
  const EventFilter any = EventFilter::Any();
  for (auto _ : state) {
    const NodeId node{static_cast<int>(rng.Index(
        static_cast<std::size_t>(nodes)))};
    const TimeSec begin = rng.Int(0, kYear - kWeek);
    benchmark::DoNotOptimize(
        idx.CountAtNode(sys, node, {begin, begin + kWeek}, any));
  }
}
BENCHMARK(BM_WindowQueryIndexed);

// Ablation: the same query as a naive scan over the system's failures.
void BM_WindowQueryNaiveScan(benchmark::State& state) {
  const Trace& trace = SharedTrace();
  const SystemId sys = trace.systems()[0].id;
  const auto failures = trace.FailuresOfSystem(sys);
  const int nodes = trace.systems()[0].num_nodes;
  stats::Rng rng(3);
  for (auto _ : state) {
    const NodeId node{static_cast<int>(rng.Index(
        static_cast<std::size_t>(nodes)))};
    const TimeSec begin = rng.Int(0, kYear - kWeek);
    int count = 0;
    for (const FailureRecord& f : failures) {
      if (f.node == node && f.start > begin && f.start <= begin + kWeek) {
        ++count;
      }
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_WindowQueryNaiveScan);

void BM_ConditionalProbability(benchmark::State& state) {
  const WindowAnalyzer a(SharedIndex());
  for (auto _ : state) {
    auto p = a.ConditionalProbability(EventFilter::Any(), EventFilter::Any(),
                                      Scope::kSameNode, kWeek);
    benchmark::DoNotOptimize(p.estimate);
  }
}
BENCHMARK(BM_ConditionalProbability)->Unit(benchmark::kMillisecond);

void BM_BaselineProbability(benchmark::State& state) {
  const WindowAnalyzer a(SharedIndex());
  for (auto _ : state) {
    auto p = a.BaselineProbability(EventFilter::Any(), kWeek);
    benchmark::DoNotOptimize(p.estimate);
  }
}
BENCHMARK(BM_BaselineProbability)->Unit(benchmark::kMillisecond);

void BM_RackScopeConditional(benchmark::State& state) {
  const WindowAnalyzer a(SharedIndex());
  for (auto _ : state) {
    auto p = a.ConditionalProbability(EventFilter::Any(), EventFilter::Any(),
                                      Scope::kRackPeers, kWeek);
    benchmark::DoNotOptimize(p.estimate);
  }
}
BENCHMARK(BM_RackScopeConditional)->Unit(benchmark::kMillisecond);

void BM_FitPoisson(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  stats::Rng rng(11);
  stats::Matrix x(n, 3);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 3; ++j) x(i, j) = rng.Normal();
    y[i] = rng.Poisson(std::exp(0.5 + 0.3 * x(i, 0)));
  }
  for (auto _ : state) {
    auto fit = stats::FitPoisson(x, y);
    benchmark::DoNotOptimize(fit.deviance);
  }
}
BENCHMARK(BM_FitPoisson)->Arg(512)->Arg(4096)->Unit(benchmark::kMicrosecond);

void BM_FitNegativeBinomial(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  stats::Rng rng(12);
  stats::Matrix x(n, 3);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 3; ++j) x(i, j) = rng.Normal();
    const double mu = std::exp(0.5 + 0.3 * x(i, 0));
    std::gamma_distribution<double> gamma(2.0, mu / 2.0);
    y[i] = rng.Poisson(gamma(rng.engine()));
  }
  for (auto _ : state) {
    auto fit = stats::FitNegativeBinomial(x, y);
    benchmark::DoNotOptimize(fit.theta);
  }
}
BENCHMARK(BM_FitNegativeBinomial)->Arg(512)->Unit(benchmark::kMicrosecond);

// Restores the default thread count when a benchmark scope ends, so the
// /threads:N benchmarks cannot leak their setting into later ones.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) { core::SetDefaultThreadCount(n); }
  ~ThreadCountGuard() { core::SetDefaultThreadCount(0); }
};

// The 36-cell pairwise matrix on the shared medium trace: the headline
// parallel kernel. /threads:1 is the serial baseline for the speedup.
void BM_PairwiseMatrix(benchmark::State& state) {
  const WindowAnalyzer a(SharedIndex());
  ThreadCountGuard guard(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto matrix = a.PairwiseProbabilities(Scope::kSameNode, kWeek);
    benchmark::DoNotOptimize(matrix[0][0].conditional.estimate);
  }
}
BENCHMARK(BM_PairwiseMatrix)
    ->ArgName("threads")->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_Bootstrap(benchmark::State& state) {
  ThreadCountGuard guard(static_cast<int>(state.range(0)));
  stats::Rng data_rng(21);
  std::vector<double> sample;
  for (int i = 0; i < 4096; ++i) sample.push_back(data_rng.LogNormal(1.0, 0.7));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    stats::Rng rng(seed++);
    const auto r = stats::BootstrapCi(
        sample, [](std::span<const double> xs) { return stats::Median(xs); },
        rng, 2000);
    benchmark::DoNotOptimize(r.ci_high);
  }
}
BENCHMARK(BM_Bootstrap)
    ->ArgName("threads")->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Full ten-system generation with one task per system.
void BM_GenerateTraceParallel(benchmark::State& state) {
  ThreadCountGuard guard(static_cast<int>(state.range(0)));
  const auto scenario = synth::LanlLikeScenario(0.25, kYear);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Trace t = synth::GenerateTrace(scenario, seed++);
    benchmark::DoNotOptimize(t.num_failures());
  }
}
BENCHMARK(BM_GenerateTraceParallel)
    ->ArgName("threads")->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_JointRegression(benchmark::State& state) {
  static const Trace trace = [] {
    synth::Scenario sc;
    sc.duration = kYear;
    sc.systems.push_back(synth::System20Like(128, kYear));
    return synth::GenerateTrace(sc, 13);
  }();
  static const EventIndex idx(trace);
  for (auto _ : state) {
    auto jr = FitJointRegression(idx, SystemId{0});
    benchmark::DoNotOptimize(jr.poisson.deviance);
  }
}
BENCHMARK(BM_JointRegression)->Unit(benchmark::kMillisecond);

// ---- --json mode: hand-rolled timing, no google-benchmark involved.

template <typename Fn>
double BestSeconds(int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    best = std::min(best, s);
  }
  return best;
}

int RunJsonMode(int argc, const char* const* argv) {
  engine::StandardOptions std_opts;
  double scale = 0.25;
  int reps = 3;
  engine::ArgParser parser(
      "perf_engine",
      "Machine-readable perf baseline: session acquisition (cold generation "
      "vs warm artifact-cache load) and kernel throughput per thread count.");
  engine::AddStandardOptions(parser, &std_opts);
  parser.AddDouble("scale", &scale, "scenario scale factor");
  parser.AddInt("reps", &reps, "timing repetitions (best-of)");
  parser.ParseOrExit(argc, argv);

  const auto scenario = synth::LanlLikeScenario(scale, kYear);
  const engine::SessionOptions cached = engine::MakeSessionOptions(std_opts);
  engine::SessionOptions uncached = cached;
  uncached.cache.enabled = false;

  // Cold: generator every time. Warm: artifact-cache load every time (the
  // cache is primed first; with --no-cache this degenerates to cold).
  std::size_t num_failures = 0;
  const double cold_s = BestSeconds(reps, [&] {
    const engine::AnalysisSession s =
        engine::AnalysisSession::FromScenario(scenario, std_opts.seed,
                                              uncached);
    num_failures = s.trace().num_failures();
  });
  {
    const engine::AnalysisSession prime =
        engine::AnalysisSession::FromScenario(scenario, std_opts.seed, cached);
    (void)prime;
  }
  bool warm_hit = false;
  const double warm_s = BestSeconds(reps, [&] {
    const engine::AnalysisSession s =
        engine::AnalysisSession::FromScenario(scenario, std_opts.seed, cached);
    warm_hit = s.stats().cache_hit;
  });

  // Artifact-kind ablation: a warm session restricted to the trace artifact
  // rebuilds the SoA indexes from the cached trace, while the full
  // multi-kind cache also restores the prebuilt index snapshot. The ratio
  // between the two is the ci.sh perf-gate input for the index artifact.
  engine::SessionOptions trace_only = cached;
  trace_only.cache.kinds = engine::ArtifactKindBit(engine::ArtifactKind::kTrace);
  bool trace_warm_hit = false;
  const double trace_warm_s = BestSeconds(reps, [&] {
    const engine::AnalysisSession s = engine::AnalysisSession::FromScenario(
        scenario, std_opts.seed, trace_only);
    trace_warm_hit = s.stats().cache_hit;
  });
  bool index_warm_hit = false;
  double index_phase_warm_s = 0.0;
  const double index_warm_s = BestSeconds(reps, [&] {
    const engine::AnalysisSession s =
        engine::AnalysisSession::FromScenario(scenario, std_opts.seed, cached);
    index_warm_hit = s.stats().index_cache_hit;
    index_phase_warm_s = s.stats().index_seconds;
  });

  // Where the index snapshot actually pays: SessionSet shard builds. The
  // sub-trace fallback (kinds=trace) deserializes and re-validates a sliced
  // trace per shard, then still builds the columns; the index artifact
  // restores the prebuilt columns straight against the parent trace. Both
  // run against a primed cache; set construction (parent acquisition, equal
  // on both sides) stays outside the timed region.
  double shard_trace_warm_s = 0.0;
  double shard_index_warm_s = 0.0;
  std::uint64_t shard_warm_hits = 0;
  std::uint64_t shard_count = 0;
  {
    // A full-scale multi-year grid: per-shard work must dwarf the fixed
    // per-shard overheads (file opens, single-flight locks) or the ratio
    // measures noise instead of the restore path.
    const auto shard_scenario = synth::LanlLikeScenario(1.0, 2 * kYear);
    engine::SessionSetOptions sopts;
    sopts.shard.window = 0;
    sopts.shard.systems_per_block = 3;
    sopts.cache = cached.cache;
    {
      engine::SessionSet prime(
          engine::MakeScenarioSource(shard_scenario, std_opts.seed), sopts);
      prime.BuildAll();
      shard_count = static_cast<std::uint64_t>(prime.plan().num_shards());
    }
    const auto measure_build_all = [&](unsigned kinds,
                                       std::uint64_t* hits) {
      double best = std::numeric_limits<double>::infinity();
      for (int i = 0; i < reps; ++i) {
        engine::SessionSetOptions o = sopts;
        o.cache.kinds = kinds;
        engine::SessionSet set(
            engine::MakeScenarioSource(shard_scenario, std_opts.seed), o);
        const auto t0 = std::chrono::steady_clock::now();
        set.BuildAll();
        best = std::min(
            best, std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count());
        if (hits != nullptr) *hits = set.stats().cache_hits;
      }
      return best;
    };
    shard_trace_warm_s = measure_build_all(
        engine::ArtifactKindBit(engine::ArtifactKind::kTrace), nullptr);
    shard_index_warm_s =
        measure_build_all(engine::kAllArtifactKinds, &shard_warm_hits);
  }

  const engine::AnalysisSession session =
      engine::AnalysisSession::FromScenario(scenario, std_opts.seed, cached);
  const WindowAnalyzer analyzer(session.index());

  // Bootstrap replicate tables: cold resampling vs warm decode of the
  // cached tables, with a byte-equality sentinel over the rendered section.
  const engine::BootstrapOptions boot_opts;
  engine::CacheConfig boot_off_cfg = cached.cache;
  boot_off_cfg.enabled = false;
  engine::ArtifactCache boot_off(boot_off_cfg);
  engine::ArtifactCache boot_cache(cached.cache);
  std::ostringstream boot_cold_body;
  const double boot_cold_s = BestSeconds(reps, [&] {
    boot_cold_body.str("");
    engine::RenderBootstrapTable(session, session.stats().fingerprint,
                                 boot_off, boot_opts, boot_cold_body);
  });
  {
    std::ostringstream prime;
    engine::RenderBootstrapTable(session, session.stats().fingerprint,
                                 boot_cache, boot_opts, prime);
  }
  bool boot_warm_hit = false;
  std::ostringstream boot_warm_body;
  const double boot_warm_s = BestSeconds(reps, [&] {
    boot_warm_body.str("");
    boot_warm_hit = engine::RenderBootstrapTable(
                        session, session.stats().fingerprint, boot_cache,
                        boot_opts, boot_warm_body)
                        .cache_hit;
  });
  const bool boot_equal = boot_cold_body.str() == boot_warm_body.str();

  std::ostringstream out;
  out.precision(6);
  out << "{\"bench\":\"perf_engine\",\"scale\":" << scale
      << ",\"seed\":" << std_opts.seed
      << ",\"num_failures\":" << num_failures
      << ",\"session\":{\"cold_seconds\":" << cold_s
      << ",\"warm_seconds\":" << warm_s << ",\"warm_cache_hit\":"
      << (warm_hit ? "true" : "false") << ",\"warm_speedup\":"
      << (warm_s > 0.0 ? cold_s / warm_s : 0.0) << "}";

  out << ",\"artifacts\":{\"trace_warm_seconds\":" << trace_warm_s
      << ",\"trace_warm_cache_hit\":" << (trace_warm_hit ? "true" : "false")
      << ",\"index_warm_seconds\":" << index_warm_s
      << ",\"index_warm_cache_hit\":" << (index_warm_hit ? "true" : "false")
      << ",\"index_phase_warm_seconds\":" << index_phase_warm_s
      << ",\"shard_count\":" << shard_count
      << ",\"shard_warm_hits\":" << shard_warm_hits
      << ",\"shard_trace_warm_seconds\":" << shard_trace_warm_s
      << ",\"shard_index_warm_seconds\":" << shard_index_warm_s
      << ",\"shard_index_warm_ratio\":"
      << (shard_trace_warm_s > 0.0 ? shard_index_warm_s / shard_trace_warm_s
                                   : 0.0)
      << ",\"bootstrap_cold_seconds\":" << boot_cold_s
      << ",\"bootstrap_warm_seconds\":" << boot_warm_s
      << ",\"bootstrap_warm_cache_hit\":" << (boot_warm_hit ? "true" : "false")
      << ",\"bootstrap_warm_ratio\":"
      << (boot_cold_s > 0.0 ? boot_warm_s / boot_cold_s : 0.0)
      << ",\"bootstrap_equal\":" << (boot_equal ? "true" : "false") << "}";

  // Query-phase workloads shaped like the figures the analyses feed:
  // per-category conditional-vs-baseline comparisons at each scope
  // (Figs. 1-3) and the full pairwise matrix (Fig. 12). Single-threaded on
  // purpose — the number isolates the store's window-query kernels, not the
  // thread pool.
  out << ",\"query_phase_seconds\":{";
  {
    ThreadCountGuard guard(1);
    const struct {
      const char* key;
      Scope scope;
    } kScopes[] = {
        {"fig01_same_node", Scope::kSameNode},
        {"fig02_rack_peers", Scope::kRackPeers},
        {"fig03_system_peers", Scope::kSystemPeers},
    };
    double total = 0.0;
    for (const auto& sc : kScopes) {
      const double s = BestSeconds(reps, [&] {
        for (const FailureCategory cat : AllFailureCategories()) {
          const auto r = analyzer.Compare(EventFilter::Of(cat),
                                          EventFilter::Any(), sc.scope, kWeek);
          benchmark::DoNotOptimize(r.conditional.estimate);
        }
      });
      total += s;
      out << "\"" << sc.key << "\":" << s << ",";
    }
    const double fig12 = BestSeconds(reps, [&] {
      auto matrix = analyzer.PairwiseProbabilities(Scope::kSameNode, kWeek);
      benchmark::DoNotOptimize(matrix[0][0].conditional.estimate);
    });
    total += fig12;
    out << "\"fig12_pairwise\":" << fig12 << ",\"total\":" << total << "}";
  }

  out << ",\"pairwise_matrix_seconds\":{";
  bool first = true;
  for (const int threads : {1, 2, 4, 8}) {
    ThreadCountGuard guard(threads);
    const double s = BestSeconds(reps, [&] {
      auto matrix = analyzer.PairwiseProbabilities(Scope::kSameNode, kWeek);
      benchmark::DoNotOptimize(matrix[0][0].conditional.estimate);
    });
    out << (first ? "" : ",") << "\"" << threads << "\":" << s;
    first = false;
  }
  out << "},\"generate_events_per_sec\":{";
  first = true;
  for (const int threads : {1, 2, 4, 8}) {
    ThreadCountGuard guard(threads);
    const double s = BestSeconds(reps, [&] {
      Trace t = synth::GenerateTrace(scenario, std_opts.seed);
      benchmark::DoNotOptimize(t.num_failures());
    });
    out << (first ? "" : ",") << "\"" << threads
        << "\":" << (s > 0.0 ? static_cast<double>(num_failures) / s : 0.0);
    first = false;
  }
  out << "}";

  // Per-kernel timings for the SIMD layer, measured directly against the
  // active dispatch table over the trace's packed columns (the same data
  // shape the store scans). Seconds are per kernel call over the full
  // column; the level string records what dispatch picked so regressions
  // can be attributed to a level change vs a kernel change.
  {
    core::RecordBlock block;
    const auto& events = session.trace().failures();
    block.reserve(events.size());
    std::int32_t max_node = 0;
    for (const FailureRecord& f : events) {
      block.PushBack(f);
      max_node = std::max(max_node, f.node.value);
    }
    const std::size_t n = block.size();
    const auto num_nodes = static_cast<std::size_t>(max_node) + 1;
    const core::simd::KernelTable& kernels = core::simd::Active();
    // A category-only filter (hardware) and a subcategory filter keep the
    // compare kernels honest: neither all-match nor no-match.
    const auto cat =
        static_cast<std::uint8_t>(FailureCategory::kHardware);
    const std::uint8_t sub =
        1 + static_cast<std::uint8_t>(HardwareComponent::kMemory);
    core::simd::ByteFilter filter;
    filter.mode = core::simd::ByteFilter::kCat;
    filter.cat = cat;
    constexpr int kIters = 512;
    const auto per_call = [&](auto&& body) {
      const double s = BestSeconds(reps, [&] {
        for (int i = 0; i < kIters; ++i) body();
      });
      return s / kIters;
    };
    const double count_s = per_call([&] {
      benchmark::DoNotOptimize(kernels.count_matches(
          block.cats.data(), block.subs.data(), n, cat, sub));
    });
    const double find_s = per_call([&] {
      std::size_t hits = 0;
      for (std::size_t i = kernels.find_next_match(
               block.cats.data(), block.subs.data(), n, 0, cat, sub);
           i < n; i = kernels.find_next_match(block.cats.data(),
                                             block.subs.data(), n, i + 1,
                                             cat, sub)) {
        ++hits;
      }
      benchmark::DoNotOptimize(hits);
    });
    const double any_peer_s = per_call([&] {
      benchmark::DoNotOptimize(kernels.any_peer_match(
          block.nodes.data(), block.cats.data(), block.subs.data(), n,
          block.nodes[0], filter));
    });
    std::vector<std::uint64_t> bitmap((num_nodes + 63) / 64);
    const double mark_s = per_call([&] {
      std::fill(bitmap.begin(), bitmap.end(), 0);
      kernels.mark_matching_nodes(block.nodes.data(), block.cats.data(),
                                  block.subs.data(), n, filter,
                                  bitmap.data());
      benchmark::DoNotOptimize(bitmap[0]);
    });
    const double validate_s = per_call([&] {
      benchmark::DoNotOptimize(kernels.validate_block(
          block.starts.data(), block.ends.data(), block.nodes.data(),
          block.cats.data(), block.subs.data(), n, max_node + 1));
    });
    const double mask_s = per_call([&] {
      benchmark::DoNotOptimize(kernels.category_mask(block.cats.data(), n));
    });
    out << ",\"simd_level\":\"" << core::simd::ToString(kernels.level)
        << "\",\"kernel_seconds\":{\"count_matches\":" << count_s
        << ",\"find_next_match\":" << find_s
        << ",\"any_peer_match\":" << any_peer_s
        << ",\"mark_matching_nodes\":" << mark_s
        << ",\"validate_block\":" << validate_s
        << ",\"category_mask\":" << mask_s << "}";
  }

  // Sharded SessionSet vs the monolithic store over the same trace, at a
  // fixed 4 threads: the shard-grid build vs one monolithic build, the
  // merged-view concatenation, and the cross-shard-composed same-node
  // conditional vs the monolithic WindowAnalyzer. The ratios are the ci.sh
  // perf-gate inputs; the *_equal fields double as a cheap bit-identity
  // sentinel. The grid splits systems into blocks of 3 over the full time
  // range, so shards partition the work exactly (time-windowed grids pay
  // per-shard store setup per window; the parity and concurrency tests
  // cover those). The build ratio's floor depends on real cores: with >= 4
  // the grid build overlaps and should land near (<= 1.1x) the serial
  // monolithic build; on a 1-2 core host the threads time-slice and the
  // sharded build pays its extra per-shard scans without parallel payoff,
  // so ci.sh gates the ratio against the recorded baseline instead. The
  // num_cpus field records which regime produced the numbers.
  {
    ThreadCountGuard guard(4);
    // A full-scale, multi-year trace: the ratio should measure per-record
    // build work, not thread-pool dispatch, so the workload must dwarf the
    // fixed per-shard setup cost. Extra repetitions because the gate
    // compares best-of floors of two sub-5ms measurements.
    const int set_reps = std::max(reps, 8);
    const auto set_scenario = synth::LanlLikeScenario(1.0, 4 * kYear);
    const auto trace_sp = std::make_shared<const Trace>(
        synth::GenerateTrace(set_scenario, std_opts.seed));
    engine::SessionSetOptions set_opts;
    set_opts.shard.window = 0;  // block-partitioned grid: disjoint shards
    set_opts.shard.systems_per_block = 3;
    set_opts.cache.enabled = false;
    // Blocks are contiguous runs of the plan's system order, and trace
    // order puts both 1024-node systems in one block — 62% of the build
    // work on a single thread. Balance the blocks instead: greedy LPT
    // (largest system into the lightest block with space). Query results
    // are integer-count sums over systems, so the order cannot change them.
    {
      const int per_block = set_opts.shard.systems_per_block;
      const std::vector<SystemConfig>& sys = trace_sp->systems();
      std::vector<std::size_t> order(sys.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return sys[a].num_nodes > sys[b].num_nodes;
      });
      const std::size_t num_blocks =
          (sys.size() + static_cast<std::size_t>(per_block) - 1) /
          static_cast<std::size_t>(per_block);
      std::vector<std::vector<SystemId>> block_ids(num_blocks);
      std::vector<long> block_load(num_blocks, 0);
      // Capacities mirror how the plan cuts runs: every block holds
      // per_block systems except the last, which takes the remainder.
      std::vector<std::size_t> cap(num_blocks,
                                   static_cast<std::size_t>(per_block));
      if (sys.size() % static_cast<std::size_t>(per_block) != 0) {
        cap.back() = sys.size() % static_cast<std::size_t>(per_block);
      }
      for (std::size_t i : order) {
        std::size_t best = num_blocks;
        for (std::size_t b = 0; b < num_blocks; ++b) {
          if (block_ids[b].size() >= cap[b]) continue;
          if (best == num_blocks || block_load[b] < block_load[best]) best = b;
        }
        block_ids[best].push_back(sys[i].id);
        block_load[best] += sys[i].num_nodes;
      }
      for (const std::vector<SystemId>& ids : block_ids) {
        set_opts.systems.insert(set_opts.systems.end(), ids.begin(),
                                ids.end());
      }
    }

    const double mono_build_s = BestSeconds(set_reps, [&] {
      const EventStoreSet stores = EventStoreSet::Build(*trace_sp, {});
      benchmark::DoNotOptimize(stores.stores.size());
    });
    std::size_t num_shards = 0;
    const double sharded_build_s = BestSeconds(set_reps, [&] {
      engine::SessionSet fresh(trace_sp, set_opts);
      fresh.BuildAll();
      num_shards = static_cast<std::size_t>(fresh.plan().num_shards());
      benchmark::DoNotOptimize(num_shards);
    });

    engine::SessionSet set(trace_sp, set_opts);
    set.BuildAll();
    const double merge_s = BestSeconds(set_reps, [&] {
      set.DropMerged();
      const auto merged = set.Merged();
      benchmark::DoNotOptimize(merged->num_failures());
    });

    const EventIndex mono_index(*trace_sp);
    const WindowAnalyzer mono(mono_index);
    const double mono_query_s = BestSeconds(set_reps, [&] {
      const auto p = mono.ConditionalProbability(
          EventFilter::Any(), EventFilter::Any(), Scope::kSameNode, kWeek);
      benchmark::DoNotOptimize(p.trials);
    });
    const double sharded_query_s = BestSeconds(set_reps, [&] {
      const auto p = set.SameNodeConditional(EventFilter::Any(),
                                             EventFilter::Any(), kWeek);
      benchmark::DoNotOptimize(p.trials);
    });
    // Comparison values come from fresh calls outside the timing loops: a
    // DoNotOptimize'd variable must never be read again (the "+m,r" asm
    // constraint can clobber the observed value at -O3).
    const stats::Proportion sharded_p = set.SameNodeConditional(
        EventFilter::Any(), EventFilter::Any(), kWeek);
    const stats::Proportion mono_p = mono.ConditionalProbability(
        EventFilter::Any(), EventFilter::Any(), Scope::kSameNode, kWeek);
    const long long mono_count = mono_index.Count(EventFilter::Any());
    const long long merged_count = set.MergedCount(EventFilter::Any());

    out << ",\"session_set\":{\"window_seconds\":" << set_opts.shard.window
        << ",\"systems_per_block\":" << set_opts.shard.systems_per_block
        << ",\"num_shards\":" << num_shards << ",\"threads\":4"
        << ",\"num_cpus\":" << std::thread::hardware_concurrency()
        << ",\"monolithic_build_seconds\":" << mono_build_s
        << ",\"sharded_build_seconds\":" << sharded_build_s
        << ",\"build_ratio\":"
        << (mono_build_s > 0.0 ? sharded_build_s / mono_build_s : 0.0)
        << ",\"merge_seconds\":" << merge_s
        << ",\"monolithic_query_seconds\":" << mono_query_s
        << ",\"sharded_query_seconds\":" << sharded_query_s
        << ",\"query_ratio\":"
        << (mono_query_s > 0.0 ? sharded_query_s / mono_query_s : 0.0)
        << ",\"conditional_equal\":"
        << (sharded_p.successes == mono_p.successes &&
                    sharded_p.trials == mono_p.trials &&
                    sharded_p.estimate == mono_p.estimate
                ? "true"
                : "false")
        << ",\"count_equal\":"
        << (merged_count == mono_count ? "true" : "false") << "}";
  }

  out << "}";
  std::cout << out.str() << "\n";
  return 0;
}

}  // namespace
}  // namespace hpcfail

int main(int argc, char** argv) {
  // google-benchmark rejects flags it does not know, so the --json mode is
  // dispatched before benchmark::Initialize ever sees the argument list.
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") {
      return hpcfail::RunJsonMode(argc, argv);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
