// Reproduces Section IV.B and Figure 5: the relative root-cause breakdown of
// the failure-prone node 0 against the rest of the system, for systems 18,
// 19 and 20. The paper observes the dominant failure mode shifting from
// hardware (rest of system) to software (node 0), with environment and
// network over-represented.
#include "bench_common.h"
#include "core/node_skew.h"

int main(int argc, char** argv) {
  const hpcfail::bench::BenchArgs bench_args =
      hpcfail::bench::ParseArgs(argc, argv, "fig05_breakdown");
  using namespace hpcfail;
  using namespace hpcfail::core;
  using bench::CategoryLabel;
  bench::PrintHeader(
      "Figure 5 + Section IV.B: root-cause breakdown, node 0 vs rest",
      "paper: node 0 shows higher shares of software/environment/network; "
      "dominant mode shifts from hardware to software");
  const engine::AnalysisSession session =
      bench::MakeBenchSession(bench_args);
  const Trace& trace = session.trace();
  const EventIndex& idx = session.index();

  for (const SystemConfig& s : trace.systems()) {
    if (s.name != "system18" && s.name != "system19" && s.name != "system20") {
      continue;
    }
    const BreakdownComparison b = CompareBreakdown(idx, s.id, NodeId{0});
    std::cout << "\n-- " << s.name << " --\n";
    Table t({"category", "node 0 %", "rest of system %"});
    for (FailureCategory c : AllFailureCategories()) {
      const auto i = static_cast<std::size_t>(c);
      t.AddRow({CategoryLabel(c), FormatDouble(b.node_percent[i], 1),
                FormatDouble(b.rest_percent[i], 1)});
    }
    t.Print(std::cout);

    const auto hw = static_cast<std::size_t>(FailureCategory::kHardware);
    const auto sw = static_cast<std::size_t>(FailureCategory::kSoftware);
    const auto env = static_cast<std::size_t>(FailureCategory::kEnvironment);
    const auto net = static_cast<std::size_t>(FailureCategory::kNetwork);
    PrintShapeCheck(std::cout, s.name + " hardware dominates the rest",
                    b.rest_percent[hw] / std::max(1.0, b.rest_percent[sw]),
                    "hw ~60% of failures system-wide",
                    b.rest_percent[hw] > b.rest_percent[sw]);
    PrintShapeCheck(
        std::cout, s.name + " node-0 dominant mode shifts off hardware",
        (b.node_percent[sw] + b.node_percent[env] + b.node_percent[net]) /
            std::max(1.0, b.node_percent[hw]),
        "sw/env/net over-represented in node 0",
        b.node_percent[sw] + b.node_percent[env] + b.node_percent[net] >
            b.node_percent[hw]);
  }
  return 0;
}
