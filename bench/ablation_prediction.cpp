// Ablation: does accounting for failure root causes improve prediction?
// Section XI claims "these observations are critical for creating effective
// failure prediction models, as they imply that such models should not only
// account for correlations between failures in time and space, but also
// consider the root-causes of failures." This bench trains the same
// post-failure alarm predictor with and without type awareness (and with
// and without any history at all) and compares precision/recall on a
// held-out trace.
#include "bench_common.h"
#include "core/prediction.h"

namespace hpcfail {
namespace {

using namespace core;

void PrintSweep(const std::string& name, const FailurePredictor& p,
                const EventIndex& eval) {
  std::cout << "\n-- " << name << " --\n";
  Table t({"threshold", "alarm rate", "precision", "recall", "F1"});
  for (const PredictionEvaluation& e : SweepPredictor(p, eval)) {
    t.AddRow({FormatDouble(e.threshold, 4), FormatDouble(e.alarm_rate, 4),
              FormatDouble(e.precision, 3), FormatDouble(e.recall, 3),
              FormatDouble(e.f1, 3)});
  }
  t.Print(std::cout);
}

}  // namespace
}  // namespace hpcfail

int main(int argc, char** argv) {
  const hpcfail::bench::BenchArgs bench_args =
      hpcfail::bench::ParseArgs(argc, argv, "ablation_prediction");
  using namespace hpcfail;
  using namespace hpcfail::core;
  bench::PrintHeader(
      "Ablation: root-cause-aware failure prediction (Section XI)",
      "claim: prediction models should consider failure root causes, not "
      "just time/space correlation");

  // Train on one trace, evaluate on an independently seeded one. Each is
  // its own cached session (distinct seeds -> distinct cache entries).
  const auto scenario = synth::LanlLikeScenario(0.5, 2 * kYear);
  const auto opts = engine::MakeSessionOptions(bench_args.std_opts);
  const engine::AnalysisSession train_session =
      engine::AnalysisSession::FromScenario(scenario, 1, opts);
  const engine::AnalysisSession eval_session =
      engine::AnalysisSession::FromScenario(scenario, 2, opts);
  const Trace& train_trace = train_session.trace();
  const Trace& eval_trace = eval_session.trace();
  const EventIndex train = train_session.IndexFor(
      SystemsOfGroup(train_trace, SystemGroup::kSmp));
  const EventIndex eval = eval_session.IndexFor(
      SystemsOfGroup(eval_trace, SystemGroup::kSmp));

  PredictorConfig aware_cfg;
  aware_cfg.type_aware = true;
  PredictorConfig blind_cfg;
  blind_cfg.type_aware = false;
  const FailurePredictor aware(train, aware_cfg);
  const FailurePredictor blind(train, blind_cfg);

  std::cout << "learned conditionals (P(fail within day | last failure of "
               "type X)):\n";
  Table lc({"type", "type-aware", "type-blind", "baseline"});
  for (FailureCategory c : AllFailureCategories()) {
    lc.AddRow({std::string(ToString(c)),
               FormatDouble(aware.conditional(c), 4),
               FormatDouble(blind.conditional(c), 4),
               FormatDouble(aware.baseline(), 5)});
  }
  lc.Print(std::cout);

  PrintSweep("type-aware predictor sweep", aware, eval);
  PrintSweep("type-blind predictor sweep", blind, eval);

  // Head-to-head at the strongest-trigger operating point: alarm only when
  // the last failure was of a type whose conditional clears the env/net bar.
  const double threshold =
      0.9 * std::min(aware.conditional(FailureCategory::kNetwork),
                     aware.conditional(FailureCategory::kEnvironment));
  const PredictionEvaluation ea = EvaluatePredictor(aware, eval, threshold);
  const PredictionEvaluation eb = EvaluatePredictor(blind, eval, threshold);
  Table h2h({"predictor", "alarm rate", "precision", "recall", "F1"});
  h2h.AddRow({"type-aware", FormatDouble(ea.alarm_rate, 4),
              FormatDouble(ea.precision, 3), FormatDouble(ea.recall, 3),
              FormatDouble(ea.f1, 3)});
  h2h.AddRow({"type-blind", FormatDouble(eb.alarm_rate, 4),
              FormatDouble(eb.precision, 3), FormatDouble(eb.recall, 3),
              FormatDouble(eb.f1, 3)});
  std::cout << "\nhead-to-head at the env/net operating point (threshold "
            << FormatDouble(threshold, 4) << "):\n";
  h2h.Print(std::cout);

  PrintShapeCheck(std::cout, "root-cause awareness improves precision",
                  ea.precision / std::max(1e-9, eb.precision),
                  "type-aware > type-blind at matched threshold",
                  ea.precision > eb.precision && ea.true_positives > 0);
  return 0;
}
