// Counterfactual: Section XI recommends "a bad or failing power supply can
// lead to many auto-correlated node outages and therefore should be quickly
// fixed or replaced". This bench quantifies the recommendation with the
// generator: the same system simulated with the normal PSU cascade vs with
// the cascade removed (an operator who replaces failing PSUs immediately,
// before they take out fans/boards/memory). The difference is the failure
// and downtime budget the recommendation buys.
#include "bench_common.h"
#include "core/downtime.h"
#include "core/power_analysis.h"

int main(int argc, char** argv) {
  const hpcfail::bench::BenchArgs bench_args =
      hpcfail::bench::ParseArgs(argc, argv, "ablation_psu_replacement");
  using namespace hpcfail;
  using namespace hpcfail::core;
  bench::PrintHeader(
      "Counterfactual: prompt power-supply replacement (Section XI)",
      "claim: a failing PSU breeds auto-correlated outages; replacing it "
      "quickly avoids them");

  const auto session_opts = engine::MakeSessionOptions(bench_args.std_opts);
  auto run = [&session_opts](bool prompt_replacement, std::uint64_t seed) {
    synth::Scenario sc;
    sc.duration = 3 * kYear;
    auto sys = synth::Group1System("prod", 512, 3 * kYear);
    if (prompt_replacement) {
      // Replacement removes the degraded PSU before it damages anything:
      // the component-specific cascade disappears. The PSU failure itself
      // (and its generic hardware cascade) still happens.
      sys.power_supply_cascade.children.fill(0.0);
      sys.power_supply_cascade.maintenance_children = 0.0;
    }
    sc.systems.push_back(std::move(sys));
    return engine::AnalysisSession::FromScenario(std::move(sc), seed,
                                                 session_opts);
  };

  Table t({"policy", "total failures", "hw failures",
           "P(fan fail | month after PSU fail)", "availability"});
  double base_failures = 0.0, replaced_failures = 0.0;
  double base_fan_after = 0.0, replaced_fan_after = 0.0;
  const int seeds = 3;
  for (const bool prompt : {false, true}) {
    double failures = 0.0, hw = 0.0, fan_after = 0.0, avail = 0.0;
    for (int seed = 1; seed <= seeds; ++seed) {
      const engine::AnalysisSession session =
          run(prompt, static_cast<std::uint64_t>(seed));
      const Trace& trace = session.trace();
      const EventIndex& idx = session.index();
      const WindowAnalyzer analyzer(idx);
      failures += static_cast<double>(trace.num_failures());
      for (const FailureRecord& f : trace.failures()) {
        if (f.category == FailureCategory::kHardware) ++hw;
      }
      // The targeted effect: fan failures in the month after a PSU failure.
      fan_after += analyzer
                       .ConditionalProbability(
                           EventFilter::Of(HardwareComponent::kPowerSupply),
                           EventFilter::Of(HardwareComponent::kFan),
                           Scope::kSameNode, kMonth)
                       .estimate;
      avail += AnalyzeDowntime(idx, SystemId{0}).availability;
    }
    failures /= seeds;
    hw /= seeds;
    fan_after /= seeds;
    avail /= seeds;
    t.AddRow({prompt ? "prompt PSU replacement" : "baseline",
              FormatDouble(failures, 0), FormatDouble(hw, 0),
              FormatDouble(100.0 * fan_after, 2) + "%",
              FormatDouble(avail, 5)});
    if (prompt) {
      replaced_failures = failures;
      replaced_fan_after = fan_after;
    } else {
      base_failures = failures;
      base_fan_after = fan_after;
    }
  }
  t.Print(std::cout);

  std::cout << "failures avoided per year: "
            << FormatDouble((base_failures - replaced_failures) / 3.0, 1)
            << "\n";
  PrintShapeCheck(std::cout, "prompt replacement reduces failures",
                  base_failures / std::max(1.0, replaced_failures),
                  "PSU cascades removed -> fewer correlated outages",
                  replaced_failures < base_failures);
  PrintShapeCheck(std::cout, "post-PSU fan risk collapses",
                  base_fan_after / std::max(1e-6, replaced_fan_after),
                  "paper: fans were 40X more likely after a PSU failure",
                  replaced_fan_after < 0.5 * base_fan_after);
  return 0;
}
