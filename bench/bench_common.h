// Shared setup for the figure/table reproduction benches. Every bench runs
// through an engine::AnalysisSession: the same LANL-like trace (full scale,
// 3 simulated years, fixed seed) acquired through the content-addressed
// artifact cache, with per-system event stores built once and shared by
// every index subset the bench carves.
//
// Flag surface (engine::ArgParser; unknown flags exit 2):
//   --threads N    worker threads (0 = hardware concurrency, 1 = serial)
//   --seed S       generator seed (default 2013)
//   --cache-dir D  artifact cache directory
//   --no-cache     bypass the artifact cache
//   --json         machine-readable output (where the bench supports it)
//   --scale X      scenario scale factor (default 1.0)
//   --years Y      simulated duration in years (default 3)
//
// Results are identical for every --threads value, and bit-identical on
// stdout whether the trace came from the cache (warm) or the generator
// (cold) — session diagnostics go to stderr only.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/parallel.h"
#include "core/report.h"
#include "core/window_analysis.h"
#include "engine/labels.h"
#include "engine/session.h"
#include "synth/scenario.h"

namespace hpcfail::bench {

inline constexpr std::uint64_t kBenchSeed = engine::kDefaultSeed;  // DSN 2013

struct BenchArgs {
  engine::StandardOptions std_opts;
  double scale = 1.0;
  double years = 3.0;

  TimeSec duration() const {
    return static_cast<TimeSec>(years * static_cast<double>(kYear));
  }
};

// Parses the shared bench flags and applies process-level settings
// (--threads). Unknown arguments are rejected with exit code 2.
inline BenchArgs ParseArgs(int argc, const char* const* argv,
                           const std::string& program) {
  BenchArgs args;
  engine::ArgParser parser(program,
                           "Reproduces one figure/table of the paper on a "
                           "synthetic LANL-like trace.");
  engine::AddStandardOptions(parser, &args.std_opts);
  parser.AddDouble("scale", &args.scale,
                   "scenario scale factor (nodes and rates)");
  parser.AddDouble("years", &args.years, "simulated duration in years");
  parser.ParseOrExit(argc, argv);
  engine::ApplyStandardOptions(args.std_opts);
  return args;
}

// The standard bench session. Acquisition diagnostics (cache hit/miss,
// load time) go to stderr so stdout stays bit-identical cold vs warm.
inline engine::AnalysisSession MakeBenchSession(const BenchArgs& args) {
  engine::AnalysisSession session = engine::AnalysisSession::FromScenario(
      synth::LanlLikeScenario(args.scale, args.duration()),
      args.std_opts.seed, engine::MakeSessionOptions(args.std_opts));
  std::cerr << "session: " << session.StatsJson() << "\n";
  return session;
}

inline void PrintHeader(const std::string& title, const std::string& paper) {
  std::cout << "\n==================================================\n"
            << title << "\n" << paper << "\n"
            << "==================================================\n";
}

// Convenience: conditional-result row cells.
inline std::vector<std::string> ConditionalCells(
    const std::string& label, const core::ConditionalResult& r) {
  return {label, core::FormatPercent(r.conditional, true),
          core::FormatPercent(r.baseline), core::FormatFactor(r.factor),
          core::SignificanceMarker(r.test),
          std::to_string(r.num_triggers)};
}

// Back-compat alias; the labels live in engine/labels.h now.
inline const char* CategoryLabel(FailureCategory c) {
  return engine::ShortCategoryLabel(c);
}

}  // namespace hpcfail::bench
