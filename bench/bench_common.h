// Shared setup for the figure/table reproduction benches: every bench
// generates the same LANL-like trace (full scale, 3 simulated years, fixed
// seed) and prints paper-vs-measured rows for its figure.
#pragma once

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/parallel.h"
#include "core/report.h"
#include "core/window_analysis.h"
#include "synth/generate.h"

namespace hpcfail::bench {

inline constexpr std::uint64_t kBenchSeed = 2013;  // DSN 2013

// Shared flag handling for the figure/table binaries: `--threads N` sets the
// worker count for the parallel kernels (default: hardware concurrency; 1
// forces the serial path). Results are identical for every value.
inline void InitFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "error: --threads requires a value\n";
        std::exit(2);
      }
      char* end = nullptr;
      const long n = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n < 0) {
        std::cerr << "error: --threads expects a non-negative integer, got '"
                  << argv[i] << "'\n";
        std::exit(2);
      }
      core::SetDefaultThreadCount(static_cast<int>(n));
    }
  }
}

// The standard bench trace: all ten LANL-like systems, 3 simulated years.
// (The paper's data spans 9 years; 3 years keeps every bench under ~10s
// while leaving thousands of events per analysis. Pass a different scale /
// duration for quick runs.)
inline Trace MakeBenchTrace(double scale = 1.0, TimeSec duration = 3 * kYear) {
  return synth::GenerateTrace(synth::LanlLikeScenario(scale, duration),
                              kBenchSeed);
}

inline void PrintHeader(const std::string& title, const std::string& paper) {
  std::cout << "\n==================================================\n"
            << title << "\n" << paper << "\n"
            << "==================================================\n";
}

// Convenience: conditional-result row cells.
inline std::vector<std::string> ConditionalCells(
    const std::string& label, const core::ConditionalResult& r) {
  return {label, core::FormatPercent(r.conditional, true),
          core::FormatPercent(r.baseline), core::FormatFactor(r.factor),
          core::SignificanceMarker(r.test),
          std::to_string(r.num_triggers)};
}

inline const char* CategoryLabel(FailureCategory c) {
  switch (c) {
    case FailureCategory::kEnvironment: return "ENV";
    case FailureCategory::kHardware: return "HW";
    case FailureCategory::kHuman: return "HUMAN";
    case FailureCategory::kNetwork: return "NET";
    case FailureCategory::kSoftware: return "SW";
    case FailureCategory::kUndetermined: return "UNDET";
  }
  return "?";
}

}  // namespace hpcfail::bench
