// Shared setup for the figure/table reproduction benches: every bench
// generates the same LANL-like trace (full scale, 3 simulated years, fixed
// seed) and prints paper-vs-measured rows for its figure.
#pragma once

#include <iostream>

#include "core/report.h"
#include "core/window_analysis.h"
#include "synth/generate.h"

namespace hpcfail::bench {

inline constexpr std::uint64_t kBenchSeed = 2013;  // DSN 2013

// The standard bench trace: all ten LANL-like systems, 3 simulated years.
// (The paper's data spans 9 years; 3 years keeps every bench under ~10s
// while leaving thousands of events per analysis. Pass a different scale /
// duration for quick runs.)
inline Trace MakeBenchTrace(double scale = 1.0, TimeSec duration = 3 * kYear) {
  return synth::GenerateTrace(synth::LanlLikeScenario(scale, duration),
                              kBenchSeed);
}

inline void PrintHeader(const std::string& title, const std::string& paper) {
  std::cout << "\n==================================================\n"
            << title << "\n" << paper << "\n"
            << "==================================================\n";
}

// Convenience: conditional-result row cells.
inline std::vector<std::string> ConditionalCells(
    const std::string& label, const core::ConditionalResult& r) {
  return {label, core::FormatPercent(r.conditional, true),
          core::FormatPercent(r.baseline), core::FormatFactor(r.factor),
          core::SignificanceMarker(r.test),
          std::to_string(r.num_triggers)};
}

inline const char* CategoryLabel(FailureCategory c) {
  switch (c) {
    case FailureCategory::kEnvironment: return "ENV";
    case FailureCategory::kHardware: return "HW";
    case FailureCategory::kHuman: return "HUMAN";
    case FailureCategory::kNetwork: return "NET";
    case FailureCategory::kSoftware: return "SW";
    case FailureCategory::kUndetermined: return "UNDET";
  }
  return "?";
}

}  // namespace hpcfail::bench
