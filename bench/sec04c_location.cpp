// Reproduces Section IV.C: "Another hypothesis we investigated is the
// effect of a node's position in the machine room or inside the physical
// rack ... we could not find any clear patterns that certain areas in the
// machine room were more likely to be correlated with higher error rates."
// The generator injects no location effect, so this is a negative control:
// failure rates per shelf position and per room row/column should be flat
// (up to the clustering-induced overdispersion the table makes visible).
#include "bench_common.h"
#include "core/location_analysis.h"

int main(int argc, char** argv) {
  const hpcfail::bench::BenchArgs bench_args =
      hpcfail::bench::ParseArgs(argc, argv, "sec04c_location");
  using namespace hpcfail;
  using namespace hpcfail::core;
  bench::PrintHeader(
      "Section IV.C: does physical location matter?",
      "paper: no clear patterns by machine-room area or position in rack");
  const engine::AnalysisSession session =
      bench::MakeBenchSession(bench_args);
  const Trace& trace = session.trace();
  const EventIndex& idx = session.index();

  bool any_shelf_effect = false;
  for (const SystemConfig& s : trace.systems()) {
    if (s.layout.empty() || s.num_nodes < 200) continue;
    const LocationAnalysis a = AnalyzeLocation(idx, s.id);
    std::cout << "\n-- " << s.name << " --\n";
    Table t({"position in rack", "nodes", "failures", "failures/node"});
    for (const LocationBucket& b : a.by_position_in_rack) {
      t.AddRow({std::to_string(b.key), std::to_string(b.nodes),
                std::to_string(b.failures),
                FormatDouble(b.failures_per_node, 2)});
    }
    t.Print(std::cout);
    Table rows({"room row", "nodes", "failures/node"});
    for (const LocationBucket& b : a.by_room_row) {
      rows.AddRow({std::to_string(b.key), std::to_string(b.nodes),
                   FormatDouble(b.failures_per_node, 2)});
    }
    rows.Print(std::cout);
    std::cout << "equal-rate p-values (excluding the node-0 outlier): "
              << "shelf=" << FormatDouble(a.position_test_excl_top.p_value, 3)
              << " row=" << FormatDouble(a.row_test_excl_top.p_value, 3)
              << " col=" << FormatDouble(a.col_test_excl_top.p_value, 3)
              << "\n"
              << "(caveat: failures are clustered, so these raw chi-square "
                 "p-values are anti-conservative;\n the node-0 rack also "
                 "inherits cascades from the login node. 'No clear pattern' "
                 "is judged\n on the rate spread, as the paper's visual "
                 "inspection did.)\n";

    // The spread of shelf rates, as a plain-sight check: max/min per-node
    // rate across shelves should be close to 1.
    double lo = 1e18, hi = 0.0;
    for (const LocationBucket& b : a.by_position_in_rack) {
      lo = std::min(lo, b.failures_per_node);
      hi = std::max(hi, b.failures_per_node);
    }
    if (hi / std::max(1e-9, lo) > 1.6) any_shelf_effect = true;
    PrintShapeCheck(std::cout, s.name + " shelf-rate spread (max/min)",
                    hi / std::max(1e-9, lo), "~1 (no clear pattern)",
                    hi / std::max(1e-9, lo) < 1.6);
  }
  PrintShapeCheck(std::cout, "no systematic shelf-position effect", 1.0,
                  "no clear patterns (Section IV.C)", !any_shelf_effect);
  return 0;
}
