// Reproduces Section IV.A and Figure 4: total failures per node for the
// three largest systems (18, 19, 20). In the paper node 0 reports 19-30X
// the average node's failures, and the chi-square test for equal rates is
// rejected at 99% confidence even after removing node 0.
#include <algorithm>

#include "bench_common.h"
#include "core/node_skew.h"

int main(int argc, char** argv) {
  const hpcfail::bench::BenchArgs bench_args =
      hpcfail::bench::ParseArgs(argc, argv, "fig04_node_skew");
  using namespace hpcfail;
  using namespace hpcfail::core;
  bench::PrintHeader(
      "Figure 4 + Section IV.A: do some nodes fail more than others?",
      "paper: node 0 has 19X (sys 20) to >30X (sys 19) the average; "
      "chi-square rejects equal rates (p < 2.2e-16), also without node 0");
  const engine::AnalysisSession session =
      bench::MakeBenchSession(bench_args);
  const Trace& trace = session.trace();
  const EventIndex& idx = session.index();

  for (const SystemConfig& s : trace.systems()) {
    if (s.name != "system18" && s.name != "system19" && s.name != "system20") {
      continue;
    }
    const NodeSkewSummary skew = AnalyzeNodeSkew(idx, s.id);
    std::cout << "\n-- " << s.name << " (" << s.num_nodes << " nodes) --\n";

    // Top of the Fig-4 series: the most failing nodes.
    std::vector<std::pair<int, int>> ranked;  // (failures, node)
    for (std::size_t n = 0; n < skew.failures_per_node.size(); ++n) {
      ranked.emplace_back(skew.failures_per_node[n], static_cast<int>(n));
    }
    std::sort(ranked.rbegin(), ranked.rend());
    Table top({"rank", "node", "failures", "x mean"});
    for (int i = 0; i < 5 && i < static_cast<int>(ranked.size()); ++i) {
      top.AddRow({std::to_string(i + 1), std::to_string(ranked[i].second),
                  std::to_string(ranked[i].first),
                  FormatDouble(ranked[i].first / skew.mean_failures, 1)});
    }
    top.Print(std::cout);

    Table stats({"metric", "value", "paper"});
    stats.AddRow({"mean failures/node", FormatDouble(skew.mean_failures, 2),
                  "-"});
    stats.AddRow({"max node",
                  "node " + std::to_string(skew.most_failing_node.value),
                  "node 0"});
    stats.AddRow({"max / mean", FormatDouble(skew.max_over_mean, 1),
                  "19X-30X"});
    stats.AddRow({"chi2 equal rates p",
                  FormatDouble(skew.equal_rates_test.p_value, 6),
                  "< 2.2e-16 (reject)"});
    stats.AddRow({"chi2 p (excl. top node)",
                  FormatDouble(skew.equal_rates_test_excl_top.p_value, 6),
                  "still rejected"});
    stats.Print(std::cout);

    PrintShapeCheck(std::cout, s.name + " node-0 skew factor",
                    skew.max_over_mean, "19-30X",
                    skew.most_failing_node == NodeId{0} &&
                        skew.max_over_mean > 5.0);
    PrintShapeCheck(std::cout, s.name + " equal-rate rejection",
                    skew.equal_rates_test.statistic, "rejected at 99%",
                    skew.equal_rates_test.significant_99 &&
                        skew.equal_rates_test_excl_top.significant_99);
  }
  return 0;
}
