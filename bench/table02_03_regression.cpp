// Reproduces Section X and Tables I-III: the joint regression of node
// outage counts on temperature, usage and layout covariates for the
// system-20 analogue. The paper finds num_jobs and util significant in both
// the Poisson (Table II) and negative binomial (Table III) models,
// max_temp marginal in the Poisson model only, and everything else
// insignificant; significance survives removing node 0.
#include <cmath>

#include "bench_common.h"
#include "core/joint_regression.h"

namespace hpcfail {
namespace {

using namespace core;

void PrintFit(const std::string& title, const stats::GlmFit& fit) {
  std::cout << "\n" << title << " (converged="
            << (fit.converged ? "yes" : "no");
  if (fit.family == stats::GlmFamily::kNegativeBinomial) {
    std::cout << ", theta=" << FormatDouble(fit.theta, 2);
  }
  std::cout << ", n=" << fit.n << ")\n";
  Table t({"coefficient", "estimate", "std error", "z value", "Pr(>|z|)"});
  for (const stats::GlmCoefficient& c : fit.coefficients) {
    t.AddRow({c.name, FormatDouble(c.estimate, 5),
              FormatDouble(c.std_error, 5), FormatDouble(c.z, 2),
              FormatDouble(c.p_value, 4)});
  }
  t.Print(std::cout);
}

}  // namespace
}  // namespace hpcfail

int main(int argc, char** argv) {
  const hpcfail::bench::BenchArgs bench_args =
      hpcfail::bench::ParseArgs(argc, argv, "table02_03_regression");
  using namespace hpcfail;
  using namespace hpcfail::core;
  bench::PrintHeader(
      "Tables I-III + Section X: joint regression (system 20)",
      "paper: num_jobs (z=7.17/3.86) and util (z=-5.34/-3.42) significant "
      "in both models; temperature and PIR insignificant; usage "
      "significance survives removing node 0");
  const engine::AnalysisSession session =
      bench::MakeBenchSession(bench_args);
  const Trace& trace = session.trace();
  const EventIndex& idx = session.index();
  const auto temp_systems = SystemsWithTemperature(trace);
  const SystemId sys = temp_systems.at(0);
  std::cout << "system: " << trace.system(sys).name << " ("
            << trace.system(sys).num_nodes << " nodes)\n";

  const JointRegression full = FitJointRegression(idx, sys);
  PrintFit("Table II analogue: Poisson regression", full.poisson);
  PrintFit("Table III analogue: negative binomial regression",
           full.negative_binomial);

  std::cout << "\n-- rerun without node 0 (Section X) --\n";
  const JointRegression no0 = FitJointRegression(idx, sys, NodeId{0});
  PrintFit("Poisson, node 0 removed", no0.poisson);
  PrintFit("Negative binomial, node 0 removed", no0.negative_binomial);

  std::cout << "\n-- rerun with only the significant predictors --\n";
  const JointRegression subset =
      FitJointRegressionSubset(idx, sys, {"num_jobs", "util"}, NodeId{0});
  PrintFit("Poisson, usage covariates only", subset.poisson);

  const auto& nb = no0.negative_binomial;
  PrintShapeCheck(std::cout, "num_jobs significant (both models, no node 0)",
                  std::abs(nb.coefficient("num_jobs").z),
                  "z = 7.17 (Poisson) / 3.86 (NB), p < 0.01",
                  nb.coefficient("num_jobs").p_value < 0.05 &&
                      no0.poisson.coefficient("num_jobs").p_value < 0.05);
  PrintShapeCheck(std::cout, "temperature covariates insignificant",
                  nb.coefficient("avg_temp").p_value,
                  "avg_temp/temp_var/num_hightemp p > 0.1",
                  nb.coefficient("avg_temp").p_value > 0.01);
  PrintShapeCheck(std::cout, "PIR (position in rack) insignificant",
                  nb.coefficient("PIR").p_value, "p = 0.48 (paper)",
                  nb.coefficient("PIR").p_value > 0.05);
  PrintShapeCheck(std::cout, "usage beats environment overall",
                  std::abs(nb.coefficient("num_jobs").z) /
                      std::max(0.1, std::abs(nb.coefficient("avg_temp").z)),
                  "usage variables are the most significant (Section XI)",
                  std::abs(nb.coefficient("num_jobs").z) >
                      std::abs(nb.coefficient("avg_temp").z));
  return 0;
}
