// Reproduces Section VII and Figure 9: the breakdown of environmental
// failures into power outages (49%), power spikes (21%), UPS (15%),
// chillers (9%) and other environment (6%).
#include "bench_common.h"
#include "core/power_analysis.h"

int main(int argc, char** argv) {
  const hpcfail::bench::BenchArgs bench_args =
      hpcfail::bench::ParseArgs(argc, argv, "fig09_env_breakdown");
  using namespace hpcfail;
  using namespace hpcfail::core;
  bench::PrintHeader(
      "Figure 9: breakdown of environmental failures",
      "paper: 49% power outage, 21% power spike, 15% UPS, 9% chillers, "
      "6% other environment");
  const engine::AnalysisSession session =
      bench::MakeBenchSession(bench_args);
  const Trace& trace = session.trace();
  const EventIndex& idx = session.index();
  const EnvironmentBreakdown b = BreakdownEnvironment(idx);

  const double paper[kNumEnvironmentEvents] = {49.0, 21.0, 15.0, 9.0, 6.0};
  Table t({"subcategory", "measured %", "paper %"});
  for (EnvironmentEvent e : AllEnvironmentEvents()) {
    const auto i = static_cast<std::size_t>(e);
    t.AddRow({std::string(ToString(e)), FormatDouble(b.percent[i], 1),
              FormatDouble(paper[i], 0)});
  }
  t.Print(std::cout);
  std::cout << "total environmental failures: " << b.total << "\n";

  const auto outage = static_cast<std::size_t>(EnvironmentEvent::kPowerOutage);
  const auto spike = static_cast<std::size_t>(EnvironmentEvent::kPowerSpike);
  const auto ups = static_cast<std::size_t>(EnvironmentEvent::kUps);
  const auto chiller = static_cast<std::size_t>(EnvironmentEvent::kChiller);
  PrintShapeCheck(std::cout, "outages are the largest subcategory",
                  b.percent[outage] / 100.0, "49%",
                  b.percent[outage] >= b.percent[spike] &&
                      b.percent[outage] >= b.percent[ups] &&
                      b.percent[outage] >= b.percent[chiller]);
  PrintShapeCheck(std::cout, "power problems dominate (outage+spike+ups)",
                  (b.percent[outage] + b.percent[spike] + b.percent[ups]) /
                      100.0,
                  "85%",
                  b.percent[outage] + b.percent[spike] + b.percent[ups] >
                      60.0);
  return 0;
}
