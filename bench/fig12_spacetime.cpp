// Reproduces Section VII.C and Figure 12: how power problems are laid out
// in time and space, using the system-2 analogue (the system with the most
// power-issue data). Renders an ASCII space-time scatter per problem type
// and quantifies the clustering the paper describes: outages and UPS
// failures correlate across nodes and over time, spikes are scattered,
// power-supply failures correlate only within a node.
#include <algorithm>
#include <map>

#include "bench_common.h"
#include "core/power_analysis.h"

namespace hpcfail {
namespace {

using namespace core;

// Fraction of events whose nearest same-type neighbour (on another node) is
// within one day: a simple cross-node temporal-clustering score.
double CrossNodeClustering(const std::vector<SpaceTimePoint>& pts,
                           PowerProblem p) {
  std::vector<SpaceTimePoint> of_type;
  for (const SpaceTimePoint& s : pts) {
    if (s.problem == p) of_type.push_back(s);
  }
  if (of_type.size() < 2) return 0.0;
  int clustered = 0;
  for (const SpaceTimePoint& s : of_type) {
    for (const SpaceTimePoint& o : of_type) {
      if (o.node != s.node && std::llabs(o.time - s.time) <= kDay) {
        ++clustered;
        break;
      }
    }
  }
  return static_cast<double>(clustered) / static_cast<double>(of_type.size());
}

// Fraction of events followed by another same-type event on the SAME node
// within a month: within-node temporal clustering.
double SameNodeClustering(const std::vector<SpaceTimePoint>& pts,
                          PowerProblem p) {
  std::map<int, std::vector<TimeSec>> per_node;
  for (const SpaceTimePoint& s : pts) {
    if (s.problem == p) per_node[s.node.value].push_back(s.time);
  }
  int clustered = 0, total = 0;
  for (auto& [node, times] : per_node) {
    std::sort(times.begin(), times.end());
    for (std::size_t i = 0; i < times.size(); ++i) {
      ++total;
      if (i + 1 < times.size() && times[i + 1] - times[i] <= kMonth) {
        ++clustered;
      }
    }
  }
  return total > 0 ? static_cast<double>(clustered) / total : 0.0;
}

}  // namespace
}  // namespace hpcfail

int main(int argc, char** argv) {
  const hpcfail::bench::BenchArgs bench_args =
      hpcfail::bench::ParseArgs(argc, argv, "fig12_spacetime");
  using namespace hpcfail;
  using namespace hpcfail::core;
  bench::PrintHeader(
      "Figure 12 + Section VII.C: space-time layout of power problems",
      "paper (system 2): outages/UPS correlate across nodes and time; "
      "spikes are scattered; PSU failures cluster only within a node");
  const engine::AnalysisSession session =
      bench::MakeBenchSession(bench_args);
  const Trace& trace = session.trace();
  const EventIndex& idx = session.index();
  const SystemConfig* sys2 = nullptr;
  for (const SystemConfig& s : trace.systems()) {
    if (s.name == "system2") sys2 = &s;
  }
  if (sys2 == nullptr) {
    std::cerr << "no system2 in trace\n";
    return 1;
  }
  const auto pts = PowerSpaceTime(idx, sys2->id);
  std::cout << "system2: " << pts.size() << " power-related failures over "
            << sys2->observed.duration() / kDay << " days, "
            << sys2->num_nodes << " nodes\n";

  // ASCII scatter: rows = nodes, columns = ~2-week buckets.
  const int cols = 72;
  const TimeSec bucket = sys2->observed.duration() / cols;
  std::vector<std::string> grid(static_cast<std::size_t>(sys2->num_nodes),
                                std::string(static_cast<std::size_t>(cols), '.'));
  auto mark = [&](const SpaceTimePoint& p, char c) {
    auto col = static_cast<std::size_t>(p.time / bucket);
    col = std::min(col, static_cast<std::size_t>(cols - 1));
    char& cell = grid[static_cast<std::size_t>(p.node.value)][col];
    cell = cell == '.' ? c : '*';  // '*' marks multiple kinds in one cell
  };
  for (const SpaceTimePoint& p : pts) {
    switch (p.problem) {
      case PowerProblem::kPowerOutage: mark(p, 'O'); break;
      case PowerProblem::kPowerSpike: mark(p, 's'); break;
      case PowerProblem::kUpsFailure: mark(p, 'U'); break;
      case PowerProblem::kPowerSupplyFailure: mark(p, 'p'); break;
    }
  }
  std::cout << "\ntime ->  (O=outage s=spike U=ups p=power-supply "
               "*=multiple)\n";
  for (int n = 0; n < sys2->num_nodes; ++n) {
    std::cout << (n < 10 ? " " : "") << n << " |"
              << grid[static_cast<std::size_t>(n)] << "|\n";
  }

  Table t({"problem", "events", "cross-node 1-day clustering",
           "same-node 1-month clustering"});
  std::map<PowerProblem, int> counts;
  for (const SpaceTimePoint& p : pts) ++counts[p.problem];
  for (PowerProblem p : AllPowerProblems()) {
    t.AddRow({std::string(ToString(p)), std::to_string(counts[p]),
              FormatDouble(CrossNodeClustering(pts, p), 2),
              FormatDouble(SameNodeClustering(pts, p), 2)});
  }
  t.Print(std::cout);

  const double outage_x = CrossNodeClustering(pts, PowerProblem::kPowerOutage);
  const double spike_x = CrossNodeClustering(pts, PowerProblem::kPowerSpike);
  const double psu_x =
      CrossNodeClustering(pts, PowerProblem::kPowerSupplyFailure);
  const double psu_same =
      SameNodeClustering(pts, PowerProblem::kPowerSupplyFailure);
  PrintShapeCheck(std::cout, "outages cluster across nodes vs spikes",
                  outage_x / std::max(0.01, spike_x),
                  "outages/UPS correlated, spikes scattered",
                  outage_x > spike_x);
  PrintShapeCheck(std::cout, "PSU failures cluster within nodes only",
                  psu_same / std::max(0.01, psu_x),
                  "PSU: same-node correlation, little cross-node",
                  psu_same > 0.0 && psu_x < outage_x);
  return 0;
}
