// Reproduces Section VII.A and Figure 10: the impact of power problems on
// hardware failures.
//   - Fig 10 (left): P(hardware failure within day/week/month | power
//     outage / spike / power-supply failure / UPS failure) vs random
//     windows; long-term factors 5-10X.
//   - Fig 10 (right): per-component month-window probabilities; node boards
//     and power supplies jump 16-20X after outages, memory is hit harder by
//     spikes (13.7X), everything but CPUs is affected.
//   - Section VII.A.2: unscheduled maintenance jumps ~90X after outages and
//     spikes, ~30X after PSU failures, ~100X after UPS failures.
#include <cmath>

#include "bench_common.h"
#include "core/power_analysis.h"

int main(int argc, char** argv) {
  const hpcfail::bench::BenchArgs bench_args =
      hpcfail::bench::ParseArgs(argc, argv, "fig10_power_hw");
  using namespace hpcfail;
  using namespace hpcfail::core;
  bench::PrintHeader(
      "Figure 10 + Section VII.A: power problems vs hardware failures",
      "paper: all four power problems raise hardware failure rates 5-10X "
      "within a month; CPUs are the only untouched component; maintenance "
      "jumps 30-100X");
  const engine::AnalysisSession session =
      bench::MakeBenchSession(bench_args);
  const Trace& trace = session.trace();
  const EventIndex g1 =
      session.IndexFor(SystemsOfGroup(trace, SystemGroup::kSmp));
  const WindowAnalyzer a(g1);

  {
    std::cout << "\n-- Fig 10 (left): P(hardware failure | power problem) --\n";
    const auto rows = PowerImpactOn(a, EventFilter::Of(FailureCategory::kHardware));
    Table t({"power problem", "day", "week", "month", "triggers"});
    bool all_up = true;
    for (const PowerImpactRow& r : rows) {
      t.AddRow({std::string(ToString(r.problem)), FormatConditional(r.day),
                FormatConditional(r.week), FormatConditional(r.month),
                std::to_string(r.month.num_triggers)});
      if (r.month.num_triggers >= 10 && !(r.month.factor > 1.5)) {
        all_up = false;
      }
    }
    t.Print(std::cout);
    PrintShapeCheck(std::cout, "hardware failures up after all power problems",
                    rows[0].month.factor, "5-10X within a month", all_up);
    // Spikes show their effect at longer horizons than outages.
    const auto& outage = rows[0];
    const auto& spike = rows[1];
    PrintShapeCheck(
        std::cout, "spike effect grows with horizon",
        spike.month.factor / std::max(1.0, spike.day.factor),
        "spikes more apparent at longer timespans",
        spike.month.conditional.estimate > spike.day.conditional.estimate &&
            outage.day.factor > 1.0);
  }

  {
    std::cout << "\n-- Fig 10 (right): per-component month probabilities --\n";
    for (PowerProblem p : AllPowerProblems()) {
      std::cout << "after " << ToString(p) << ":\n";
      Table t({"component", "P(month | trigger)", "P(random month)", "factor",
               "sig"});
      for (const ComponentImpact& ci :
           HardwareComponentImpact(a, PowerProblemFilter(p))) {
        t.AddRow({ci.component, FormatPercent(ci.month.conditional, true),
                  FormatPercent(ci.month.baseline),
                  FormatFactor(ci.month.factor),
                  SignificanceMarker(ci.month.test)});
      }
      t.Print(std::cout);
    }
    const auto outage_impacts =
        HardwareComponentImpact(a, PowerProblemFilter(PowerProblem::kPowerOutage));
    double cpu = 0.0, board = 0.0;
    for (const ComponentImpact& ci : outage_impacts) {
      if (ci.component == "cpu" && std::isfinite(ci.month.factor)) {
        cpu = ci.month.factor;
      }
      if (ci.component == "node_board" && std::isfinite(ci.month.factor)) {
        board = ci.month.factor;
      }
    }
    PrintShapeCheck(std::cout, "CPUs unaffected, node boards hit hard",
                    board / std::max(0.1, cpu), "boards 16-20X, CPUs ~1X",
                    board > 2.0 * std::max(1.0, cpu));
  }

  {
    std::cout << "\n-- Section VII.A.2: unscheduled maintenance --\n";
    const auto rows = MaintenanceImpact(a);
    Table t({"power problem", "P(maint in month | trigger)",
             "P(random month)", "factor", "paper factor"});
    const char* paper[] = {"~90X", "~90X", "~30X", "~100X"};
    int i = 0;
    bool elevated = true;
    for (const PowerImpactRow& r : rows) {
      t.AddRow({std::string(ToString(r.problem)),
                FormatPercent(r.month.conditional, true),
                FormatPercent(r.month.baseline), FormatFactor(r.month.factor),
                paper[i++]});
      if (r.month.num_triggers >= 10 && !(r.month.factor > 3.0)) {
        elevated = false;
      }
    }
    t.Print(std::cout);
    PrintShapeCheck(std::cout, "maintenance sharply elevated",
                    rows[0].month.factor, "30-100X", elevated);
  }
  return 0;
}
