// Reproduces Section III.A and Figure 1: correlations between failures in
// the same node.
//   - III.A.1: unconditional vs post-failure day/week failure probabilities.
//   - Fig 1(a): P(any follow-up | failure of type X, same node, week).
//   - Fig 1(b): P(type X | same type) vs P(type X | any) vs random week,
//     including the MEM / CPU drill-down of III.A.4.
#include "bench_common.h"

namespace hpcfail {
namespace {

using namespace core;
using bench::CategoryLabel;

void HeadlineNumbers(const WindowAnalyzer& a, const std::string& group,
                     const std::string& paper_day,
                     const std::string& paper_week) {
  const auto any = EventFilter::Any();
  const auto day = a.Compare(any, any, Scope::kSameNode, kDay);
  const auto week = a.Compare(any, any, Scope::kSameNode, kWeek);
  Table t({"window", "P(random)", "P(after failure)", "factor", "sig",
           "paper"});
  t.AddRow({"day", FormatPercent(day.baseline, true),
            FormatPercent(day.conditional, true), FormatFactor(day.factor),
            SignificanceMarker(day.test), paper_day});
  t.AddRow({"week", FormatPercent(week.baseline, true),
            FormatPercent(week.conditional, true), FormatFactor(week.factor),
            SignificanceMarker(week.test), paper_week});
  std::cout << "\n-- " << group << ": Section III.A.1 --\n";
  t.Print(std::cout);
  PrintShapeCheck(std::cout, group + " day-after-failure factor", day.factor,
                  "5-20X", day.factor > 3.0);
}

void Fig1a(const WindowAnalyzer& a, const std::string& group) {
  std::cout << "\n-- " << group
            << ": Fig 1(a)  P(any failure within week | type X) --\n";
  Table t({"trigger", "P(week|X) [ci]", "P(random wk)", "factor", "sig",
           "triggers"});
  double env_factor = 0.0, hw_factor = 0.0, net_factor = 0.0;
  for (FailureCategory c : AllFailureCategories()) {
    const auto r = a.Compare(EventFilter::Of(c), EventFilter::Any(),
                             Scope::kSameNode, kWeek);
    t.AddRow(bench::ConditionalCells(CategoryLabel(c), r));
    if (c == FailureCategory::kEnvironment) env_factor = r.factor;
    if (c == FailureCategory::kHardware) hw_factor = r.factor;
    if (c == FailureCategory::kNetwork) net_factor = r.factor;
  }
  t.Print(std::cout);
  PrintShapeCheck(std::cout, group + " env/net strongest triggers",
                  env_factor / hw_factor,
                  "env & net > hw (paper: 14-23X vs 7-10X, group 1)",
                  env_factor > hw_factor && net_factor > hw_factor);
}

void Fig1b(const WindowAnalyzer& a, const std::string& group,
           double min_mem_factor, const std::string& paper_mem) {
  std::cout << "\n-- " << group
            << ": Fig 1(b)  P(type X within week | same type / any type) --\n";
  Table t({"type", "after same type", "after ANY failure", "random week",
           "same/random"});
  for (FailureCategory c : AllFailureCategories()) {
    const auto same = a.Compare(EventFilter::Of(c), EventFilter::Of(c),
                                Scope::kSameNode, kWeek);
    const auto after_any = a.Compare(EventFilter::Any(), EventFilter::Of(c),
                                     Scope::kSameNode, kWeek);
    t.AddRow({CategoryLabel(c), FormatPercent(same.conditional, true),
              FormatPercent(after_any.conditional),
              FormatPercent(same.baseline), FormatFactor(same.factor)});
  }
  // III.A.4 drill-down: memory and CPU.
  for (HardwareComponent c :
       {HardwareComponent::kMemory, HardwareComponent::kCpu}) {
    const auto same = a.Compare(EventFilter::Of(c), EventFilter::Of(c),
                                Scope::kSameNode, kWeek);
    const auto after_any = a.Compare(EventFilter::Any(), EventFilter::Of(c),
                                     Scope::kSameNode, kWeek);
    t.AddRow({std::string(ToString(c)), FormatPercent(same.conditional, true),
              FormatPercent(after_any.conditional),
              FormatPercent(same.baseline), FormatFactor(same.factor)});
  }
  t.Print(std::cout);
  const auto mem = a.Compare(EventFilter::Of(HardwareComponent::kMemory),
                             EventFilter::Of(HardwareComponent::kMemory),
                             Scope::kSameNode, kWeek);
  PrintShapeCheck(std::cout, group + " memory-after-memory factor", mem.factor,
                  paper_mem, mem.factor > min_mem_factor);
}

// Section III.A.3: the full pairwise matrix p(x, y), rendered as factor
// increases over the random-week baseline for type y.
void PairwiseMatrixView(const WindowAnalyzer& a, const std::string& group) {
  std::cout << "\n-- " << group
            << ": Section III.A.3 pairwise factors p(x,y)/p(y) --\n";
  const auto matrix = a.PairwiseProbabilities(Scope::kSameNode, kWeek);
  std::vector<std::string> header = {"trigger \\ target"};
  for (FailureCategory y : AllFailureCategories()) {
    header.emplace_back(CategoryLabel(y));
  }
  Table t(header);
  for (FailureCategory x : AllFailureCategories()) {
    std::vector<std::string> row = {CategoryLabel(x)};
    for (FailureCategory y : AllFailureCategories()) {
      const auto& r = matrix[static_cast<std::size_t>(x)]
                            [static_cast<std::size_t>(y)];
      row.push_back(FormatFactor(r.factor) + SignificanceMarker(r.test));
    }
    t.AddRow(std::move(row));
  }
  t.Print(std::cout);
  // The paper's observation: env/net/sw cross-couple (each raises the
  // others), and the diagonal dominates each row.
  const auto at = [&matrix](FailureCategory x, FailureCategory y) {
    return matrix[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)]
        .factor;
  };
  const bool cross =
      at(FailureCategory::kEnvironment, FailureCategory::kSoftware) > 1.5 &&
      at(FailureCategory::kNetwork, FailureCategory::kSoftware) > 1.5 &&
      at(FailureCategory::kSoftware, FailureCategory::kNetwork) > 1.5;
  PrintShapeCheck(std::cout, group + " env/net/sw cross-coupling",
                  at(FailureCategory::kNetwork, FailureCategory::kSoftware),
                  "each of env/net/sw raises the other two (III.A.3)",
                  cross);
}

}  // namespace
}  // namespace hpcfail

int main(int argc, char** argv) {
  const hpcfail::bench::BenchArgs bench_args =
      hpcfail::bench::ParseArgs(argc, argv, "fig01_same_node");
  using namespace hpcfail;
  using namespace hpcfail::core;
  bench::PrintHeader(
      "Figure 1 + Section III.A: same-node failure correlations",
      "paper: group1 0.31%->7.2% (day), 2.04%->15.64% (week); "
      "group2 4.6%->21.45%, 22.5%->60.4%; env/net strongest triggers");
  const engine::AnalysisSession session =
      bench::MakeBenchSession(bench_args);
  const Trace& trace = session.trace();
  const EventIndex g1 =
      session.IndexFor(SystemsOfGroup(trace, SystemGroup::kSmp));
  const EventIndex g2 =
      session.IndexFor(SystemsOfGroup(trace, SystemGroup::kNuma));
  const WindowAnalyzer a1(g1), a2(g2);

  HeadlineNumbers(a1, "LANL group 1", "0.31% -> 7.2% (~20X)",
                  "2.04% -> 15.64%");
  HeadlineNumbers(a2, "LANL group 2", "4.6% -> 21.45% (~5X)",
                  "22.5% -> 60.4%");
  Fig1a(a1, "LANL group 1");
  Fig1a(a2, "LANL group 2");
  Fig1b(a1, "LANL group 1", 10.0,
        "0.21% -> 20.23% (~100X) in the paper");
  Fig1b(a2, "LANL group 2", 2.0, "4.2% -> 12.6% (~3X) in the paper");
  PairwiseMatrixView(a1, "LANL group 1");
  return 0;
}
