// Load generator for hpcfaild / the serve subsystem. Three modes:
//
//   perf_service --json              in-process Server, full load profile
//   perf_service --json --smoke      the same but a small/fast profile
//   perf_service --connect H:P ...   drive an external hpcfaild instead
//   perf_service --connect H:P --get /metrics
//                                    one HTTP GET, body to stdout (curl-less
//                                    scraping for scripts; exit 1 on !200)
//
// The load profile: N concurrent clients over the line protocol, mixed
// cold/warm — warm requests all hit ONE scenario (after a prewarm build they
// must be pool hits), cold requests use per-client seeds (each is a session
// build; with more clients than pool capacity they also exercise LRU
// eviction). Every response is validated (OK frame, payload length); an ERR
// frame that is not 503 counts as failed. 503 sheds are counted separately —
// shedding is the server behaving as designed under overload, not a failure.
//
// Output: one JSON object with ok/failed/shed counts, overall throughput,
// and p50/p95/p99 latency split by warm/cold — the numbers BENCH_pr7.json
// records and scripts/ci.sh gates against.
#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/arg_parser.h"
#include "engine/session.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace hpcfail {
namespace {

// ---- Minimal line-protocol client ----------------------------------------

class LineClient {
 public:
  ~LineClient() { Close(); }

  bool Connect(const std::string& host, int port, std::string* error) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      *error = "bad host: " + host;
      Close();
      return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      *error = std::string("connect: ") + std::strerror(errno);
      Close();
      return false;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool SendLine(const std::string& line) {
    std::string framed = line + "\n";
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  // Reads one response frame. Returns false on socket error/EOF. On success,
  // *status is 200 for an OK frame (payload filled in) or the ERR code.
  bool ReadResponse(int* status, std::string* payload) {
    std::string header;
    if (!ReadLine(&header)) return false;
    if (header.rfind("OK ", 0) == 0) {
      const std::size_t want = std::stoul(header.substr(3));
      payload->clear();
      while (payload->size() < want) {
        const std::size_t need = want - payload->size();
        if (buffer_.empty() && !Fill()) return false;
        const std::size_t take = std::min(need, buffer_.size());
        payload->append(buffer_, 0, take);
        buffer_.erase(0, take);
      }
      *status = serve::kStatusOk;
      return true;
    }
    if (header.rfind("ERR ", 0) == 0) {
      *status = std::atoi(header.c_str() + 4);
      *payload = header;
      return true;
    }
    return false;
  }

  // One raw HTTP GET on a fresh connection semantics (server closes).
  // Returns the status code, body in *payload; -1 on socket failure.
  int HttpGet(const std::string& path, std::string* payload) {
    if (!SendLineRaw("GET " + path + " HTTP/1.1\r\n\r\n")) return -1;
    std::string all;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      all.append(chunk, static_cast<std::size_t>(n));
    }
    if (all.rfind("HTTP/1.1 ", 0) != 0) return -1;
    const int status = std::atoi(all.c_str() + 9);
    const std::size_t body = all.find("\r\n\r\n");
    *payload = body == std::string::npos ? "" : all.substr(body + 4);
    return status;
  }

 private:
  bool SendLineRaw(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool Fill() {
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
      return true;
    }
  }

  bool ReadLine(std::string* line) {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        *line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      if (!Fill()) return false;
    }
  }

  int fd_ = -1;
  std::string buffer_;
};

// ---- Latency bookkeeping --------------------------------------------------

struct Tally {
  std::vector<double> latencies;  // seconds, successful requests only
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t shed = 0;

  void Merge(const Tally& other) {
    latencies.insert(latencies.end(), other.latencies.begin(),
                     other.latencies.end());
    ok += other.ok;
    failed += other.failed;
    shed += other.shed;
  }
};

double Percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double rank = p * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

void RunClient(const std::string& host, int port, const std::string& command,
               int iterations, Tally* out) {
  for (int i = 0; i < iterations; ++i) {
    LineClient client;
    std::string error;
    if (!client.Connect(host, port, &error)) {
      ++out->failed;
      continue;
    }
    const auto t0 = std::chrono::steady_clock::now();
    int status = 0;
    std::string payload;
    if (!client.SendLine(command) || !client.ReadResponse(&status, &payload)) {
      ++out->failed;
      continue;
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (status == serve::kStatusOk) {
      ++out->ok;
      out->latencies.push_back(seconds);
    } else if (status == serve::kStatusOverloaded) {
      ++out->shed;
    } else {
      ++out->failed;
    }
  }
}

struct PhaseResult {
  Tally tally;
  double wall_seconds = 0.0;
};

PhaseResult RunPhase(const std::string& host, int port, int clients,
                     int iterations,
                     const std::function<std::string(int)>& command_for) {
  std::vector<Tally> tallies(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back(RunClient, host, port, command_for(c), iterations,
                         &tallies[static_cast<std::size_t>(c)]);
  }
  for (std::thread& t : threads) t.join();
  PhaseResult result;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (Tally& t : tallies) result.tally.Merge(t);
  return result;
}

void PrintPhaseJson(std::ostream& os, const char* name, PhaseResult& phase) {
  Tally& t = phase.tally;
  const std::uint64_t total = t.ok + t.failed + t.shed;
  os << "  \"" << name << "\": {\n"
     << "   \"requests\": " << total << ",\n"
     << "   \"ok\": " << t.ok << ",\n"
     << "   \"failed\": " << t.failed << ",\n"
     << "   \"shed\": " << t.shed << ",\n"
     << "   \"wall_seconds\": " << phase.wall_seconds << ",\n"
     << "   \"throughput_rps\": "
     << (phase.wall_seconds > 0.0
             ? static_cast<double>(t.ok) / phase.wall_seconds
             : 0.0)
     << ",\n"
     << "   \"p50_seconds\": " << Percentile(t.latencies, 0.50) << ",\n"
     << "   \"p95_seconds\": " << Percentile(t.latencies, 0.95) << ",\n"
     << "   \"p99_seconds\": " << Percentile(t.latencies, 0.99) << "\n"
     << "  }";
}

}  // namespace
}  // namespace hpcfail

int main(int argc, char** argv) {
  using namespace hpcfail;

  engine::StandardOptions std_opts;
  std::string connect;
  std::string get_path;
  int clients = 32;
  int warm_iters = 8;
  int cold_clients = 6;
  bool smoke = false;
  double scale = 0.1;
  double years = 0.5;

  engine::ArgParser parser(
      "perf_service",
      "Concurrent load generator for hpcfaild: mixed cold/warm line-protocol "
      "requests, machine-readable latency percentiles.");
  parser.AddString("connect", &connect,
                   "host:port of an external hpcfaild (default: run an "
                   "in-process server)");
  parser.AddString("get", &get_path,
                   "with --connect: one HTTP GET, print the body, exit "
                   "0 iff 200");
  parser.AddInt("clients", &clients, "concurrent warm-phase clients");
  parser.AddInt("warm-iters", &warm_iters, "requests per warm client");
  parser.AddInt("cold-clients", &cold_clients,
                "cold-phase clients (distinct seeds, one build each)");
  parser.AddFlag("smoke", &smoke, "small fast profile for CI smoke jobs");
  parser.AddDouble("scale", &scale, "scenario scale for every request");
  parser.AddDouble("years", &years, "scenario years for every request");
  engine::AddStandardOptions(parser, &std_opts);
  parser.ParseOrExit(argc, argv);
  engine::ApplyStandardOptions(std_opts);

  if (smoke) {
    clients = std::min(clients, 8);
    warm_iters = std::min(warm_iters, 3);
    cold_clients = std::min(cold_clients, 2);
  }

  std::string host = "127.0.0.1";
  int port = 0;

  // --get: curl-less scrape for scripts, nothing else.
  if (!get_path.empty()) {
    if (connect.empty()) {
      std::cerr << "--get requires --connect\n";
      return 2;
    }
    const std::size_t colon = connect.rfind(':');
    if (colon == std::string::npos) {
      std::cerr << "--connect must be host:port\n";
      return 2;
    }
    host = connect.substr(0, colon);
    port = std::atoi(connect.c_str() + colon + 1);
    LineClient client;
    std::string error;
    if (!client.Connect(host, port, &error)) {
      std::cerr << "perf_service: " << error << "\n";
      return 1;
    }
    std::string body;
    const int status = client.HttpGet(get_path, &body);
    std::cout << body;
    if (status != serve::kStatusOk) {
      std::cerr << "perf_service: GET " << get_path << " -> " << status
                << "\n";
      return 1;
    }
    return 0;
  }

  // Target: external daemon or an in-process server.
  std::unique_ptr<serve::Server> server;
  if (!connect.empty()) {
    const std::size_t colon = connect.rfind(':');
    if (colon == std::string::npos) {
      std::cerr << "--connect must be host:port\n";
      return 2;
    }
    host = connect.substr(0, colon);
    port = std::atoi(connect.c_str() + colon + 1);
  } else {
    serve::ServerConfig config;
    config.workers = std::max(4, clients / 4);
    config.queue_depth = static_cast<std::size_t>(clients) * 2 + 16;
    config.pool_capacity = 4;  // < cold_clients on the full profile: evicts
    config.session = engine::MakeSessionOptions(std_opts);
    server = std::make_unique<serve::Server>(std::move(config));
    try {
      server->Start();
    } catch (const std::exception& e) {
      std::cerr << "perf_service: " << e.what() << "\n";
      return 1;
    }
    port = server->port();
  }

  std::ostringstream warm_cmd;
  warm_cmd << "REPORT scale=" << scale << " years=" << years
           << " seed=" << std_opts.seed;

  // Prewarm: one build so the warm phase measures pure pool hits.
  {
    Tally t;
    RunClient(host, port, warm_cmd.str(), 1, &t);
    if (t.ok != 1) {
      std::cerr << "perf_service: prewarm request failed\n";
      return 1;
    }
  }

  PhaseResult warm = RunPhase(host, port, clients, warm_iters,
                              [&](int) { return warm_cmd.str(); });

  PhaseResult cold = RunPhase(host, port, cold_clients, 1, [&](int c) {
    std::ostringstream cmd;
    cmd << "REPORT scale=" << scale << " years=" << years
        << " seed=" << (std_opts.seed + 1000 + static_cast<unsigned>(c));
    return cmd.str();
  });

  if (server != nullptr) server->Shutdown();

  std::ostringstream out;
  out << "{\n"
      << " \"bench\": \"perf_service\",\n"
      << " \"clients\": " << clients << ",\n"
      << " \"warm_iters\": " << warm_iters << ",\n"
      << " \"cold_clients\": " << cold_clients << ",\n"
      << " \"scale\": " << scale << ",\n"
      << " \"years\": " << years << ",\n"
      << " \"seed\": " << std_opts.seed << ",\n"
      << " \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n";
  PrintPhaseJson(out, "warm", warm);
  out << ",\n";
  PrintPhaseJson(out, "cold", cold);
  out << "\n}\n";
  std::cout << out.str();

  // Zero tolerance for real failures: sheds are policy, failures are bugs.
  const bool ok = warm.tally.failed == 0 && cold.tally.failed == 0 &&
                  warm.tally.ok > 0;
  return ok ? 0 : 1;
}
