// Reproduces Section V and Figure 7: the impact of usage on node
// reliability, for the two systems with job logs (systems 8 and 20).
//   - Fig 7(a): failures vs node utilization; (b): failures vs jobs served.
//   - Section V: Pearson r(jobs, failures) = 0.465 / 0.12, dropping to
//     insignificance when node 0 is removed.
#include <algorithm>

#include "bench_common.h"
#include "core/usage_analysis.h"

int main(int argc, char** argv) {
  const hpcfail::bench::BenchArgs bench_args =
      hpcfail::bench::ParseArgs(argc, argv, "fig07_usage");
  using namespace hpcfail;
  using namespace hpcfail::core;
  bench::PrintHeader(
      "Figure 7 + Section V: usage vs node reliability",
      "paper: Pearson r(jobs, failures) = 0.465 (sys 8), 0.12 (sys 20); "
      "correlation collapses without node 0; node 0 tops usage and failures");
  const engine::AnalysisSession session =
      bench::MakeBenchSession(bench_args);
  const Trace& trace = session.trace();
  const EventIndex& idx = session.index();

  for (SystemId sys : SystemsWithJobs(trace)) {
    const SystemConfig& config = trace.system(sys);
    const UsageAnalysis u = AnalyzeUsage(idx, sys);
    std::cout << "\n-- " << config.name << " (" << config.num_nodes
              << " nodes) --\n";

    // Scatter summary: mean failures per utilization quintile (Fig 7a) and
    // per jobs-count quintile (Fig 7b).
    auto quintiles = [&u](auto key, const char* title) {
      std::vector<const NodeUsageStats*> sorted;
      for (const NodeUsageStats& n : u.nodes) sorted.push_back(&n);
      std::sort(sorted.begin(), sorted.end(),
                [&key](const NodeUsageStats* a, const NodeUsageStats* b) {
                  return key(*a) < key(*b);
                });
      Table t({"quintile", title, "mean failures"});
      const std::size_t q = sorted.size() / 5;
      for (int i = 0; i < 5; ++i) {
        const std::size_t begin = static_cast<std::size_t>(i) * q;
        const std::size_t end = i == 4 ? sorted.size() : begin + q;
        double key_sum = 0.0, fail_sum = 0.0;
        for (std::size_t j = begin; j < end; ++j) {
          key_sum += key(*sorted[j]);
          fail_sum += sorted[j]->failures;
        }
        const double n = static_cast<double>(end - begin);
        t.AddRow({std::to_string(i + 1), FormatDouble(key_sum / n, 3),
                  FormatDouble(fail_sum / n, 2)});
      }
      t.Print(std::cout);
    };
    std::cout << "Fig 7(a) summary: failures vs utilization\n";
    quintiles([](const NodeUsageStats& n) { return n.utilization; },
              "mean utilization");
    std::cout << "Fig 7(b) summary: failures vs jobs served\n";
    quintiles([](const NodeUsageStats& n) { return double(n.num_jobs); },
              "mean #jobs");

    const NodeUsageStats& node0 = u.nodes[0];
    Table marks({"marker", "#jobs", "utilization", "failures"});
    marks.AddRow({"node 0", std::to_string(node0.num_jobs),
                  FormatDouble(node0.utilization, 3),
                  std::to_string(node0.failures)});
    marks.Print(std::cout);

    Table corr({"correlation", "r", "p", "paper"});
    corr.AddRow({"jobs vs failures", FormatDouble(u.jobs_vs_failures.r, 3),
                 FormatDouble(u.jobs_vs_failures.p_value, 4),
                 "0.465 / 0.12 (clearly positive)"});
    corr.AddRow({"jobs vs failures (excl node 0)",
                 FormatDouble(u.jobs_vs_failures_excl_top.r, 3),
                 FormatDouble(u.jobs_vs_failures_excl_top.p_value, 4),
                 "drops to insignificant levels"});
    corr.AddRow({"util vs failures", FormatDouble(u.util_vs_failures.r, 3),
                 FormatDouble(u.util_vs_failures.p_value, 4), "-"});
    corr.Print(std::cout);

    PrintShapeCheck(std::cout, config.name + " positive usage correlation",
                    u.jobs_vs_failures.r, "r > 0 (0.465 / 0.12)",
                    u.jobs_vs_failures.r > 0.05);
    PrintShapeCheck(std::cout,
                    config.name + " correlation weakens without node 0",
                    u.jobs_vs_failures.r - u.jobs_vs_failures_excl_top.r,
                    "mostly due to node 0",
                    u.jobs_vs_failures_excl_top.r < u.jobs_vs_failures.r);
  }
  return 0;
}
