// Ablation: what is correlation-aware checkpointing worth? The paper argues
// its correlation findings matter for "scheduling application checkpoints"
// (Section III). This bench replays applications of several sizes against
// the bench trace under three policies — a static Young-optimal interval, a
// naive tight interval, and an adaptive policy that tightens for a day
// after any failure of the application's nodes (extra-tight after the
// environment/network triggers Fig. 1 singles out) — and compares lost
// work and total overhead.
#include <cmath>

#include "bench_common.h"
#include "core/checkpoint_sim.h"

int main(int argc, char** argv) {
  const hpcfail::bench::BenchArgs bench_args =
      hpcfail::bench::ParseArgs(argc, argv, "ablation_checkpoint");
  using namespace hpcfail;
  using namespace hpcfail::core;
  bench::PrintHeader(
      "Ablation: correlation-aware checkpoint scheduling",
      "claim (Sections I/III/XI): failure correlations should inform "
      "checkpoint scheduling");
  const engine::AnalysisSession session =
      bench::MakeBenchSession(bench_args);
  const Trace& trace = session.trace();
  const EventIndex& idx = session.index();

  // Pick the system-18 analogue: big, busy, group 1.
  SystemId sys;
  for (const SystemConfig& s : trace.systems()) {
    if (s.name == "system18") sys = s.id;
  }

  for (int app_nodes : {8, 32, 128}) {
    CheckpointSimConfig cfg;
    for (int n = 1; n <= app_nodes; ++n) cfg.nodes.push_back(NodeId{n});
    cfg.window = {0, trace.system(sys).observed.end};
    cfg.checkpoint_cost = 6 * kMinute;
    cfg.restart_cost = 10 * kMinute;

    // Young-optimal static interval for this node count: MTBF ~ 1 /
    // (nodes * per-node rate); per-node daily rate ~0.3%.
    const double mtbf_hours = 24.0 / (0.003 * app_nodes);
    const TimeSec young = std::max<TimeSec>(
        30 * kMinute,
        static_cast<TimeSec>(std::sqrt(2.0 * 0.1 * mtbf_hours) * kHour));

    const auto young_static =
        SimulateCheckpointing(idx, sys, cfg, StaticPolicy(young));
    const auto tight_static =
        SimulateCheckpointing(idx, sys, cfg, StaticPolicy(young / 4));
    const auto adaptive = SimulateCheckpointing(
        idx, sys, cfg, AdaptivePolicy(young, young / 4, kDay));
    const auto adaptive_envnet = SimulateCheckpointing(
        idx, sys, cfg,
        AdaptivePolicy(young, young / 8, kDay,
                       {FailureCategory::kEnvironment,
                        FailureCategory::kNetwork}));

    std::cout << "\n-- application on " << app_nodes
              << " nodes (Young interval " << young / kHour << "h, "
              << young_static.failures << " failures hit) --\n";
    Table t({"policy", "lost work (h)", "checkpoint (h)", "restart (h)",
             "overhead"});
    auto row = [&t](const std::string& name, const CheckpointSimResult& r) {
      t.AddRow({name, FormatDouble(r.lost_work / 3600.0, 1),
                FormatDouble(r.checkpoint_time / 3600.0, 1),
                FormatDouble(r.restart_time / 3600.0, 1),
                FormatDouble(100.0 * r.overhead, 2) + "%"});
    };
    row("static Young-optimal", young_static);
    row("static tight (Young/4)", tight_static);
    row("adaptive (tighten 1 day after any failure)", adaptive);
    row("adaptive (extra-tight after env/net)", adaptive_envnet);
    t.Print(std::cout);

    PrintShapeCheck(std::cout,
                    "adaptive loses less work than static Young",
                    static_cast<double>(young_static.lost_work) /
                        std::max<TimeSec>(1, adaptive.lost_work),
                    "correlation-aware policy recovers lost work",
                    adaptive.lost_work < young_static.lost_work);
    PrintShapeCheck(
        std::cout, "adaptive beats always-tight on total overhead",
        tight_static.overhead / std::max(1e-9, adaptive.overhead),
        "pays the tight interval only while hazard is elevated",
        adaptive.overhead < tight_static.overhead + 1e-9);
  }
  return 0;
}
