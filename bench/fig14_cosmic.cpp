// Reproduces Section IX and Figure 14: cosmic radiation. Monthly DRAM and
// CPU failure probabilities as a function of the monthly average neutron
// counts, for the system-2/18/19/20 analogues. The paper finds no DRAM
// correlation (ECC masks cosmic-ray soft errors; node outages come from
// hard errors) and a mild positive CPU correlation in systems 2, 18, 19.
#include <cmath>

#include "bench_common.h"
#include "core/cosmic_analysis.h"

int main(int argc, char** argv) {
  const hpcfail::bench::BenchArgs bench_args =
      hpcfail::bench::ParseArgs(argc, argv, "fig14_cosmic");
  using namespace hpcfail;
  using namespace hpcfail::core;
  bench::PrintHeader(
      "Figure 14 + Section IX: neutron flux vs DRAM / CPU failures",
      "paper: DRAM flat in flux for all systems; CPU mildly positive in "
      "systems 2, 18, 19 (not 20)");
  const engine::AnalysisSession session =
      bench::MakeBenchSession(bench_args);
  const Trace& trace = session.trace();
  const EventIndex& idx = session.index();

  for (const SystemConfig& s : trace.systems()) {
    if (s.name != "system2" && s.name != "system18" && s.name != "system19" &&
        s.name != "system20") {
      continue;
    }
    const CosmicAnalysis c = AnalyzeCosmic(idx, s.id);
    std::cout << "\n-- " << s.name << " --\n";
    // Print the Fig-14 series binned by flux quartile (readable summary of
    // the scatter).
    std::vector<MonthlyFluxPoint> by_flux = c.dram;
    std::sort(by_flux.begin(), by_flux.end(),
              [](const MonthlyFluxPoint& a, const MonthlyFluxPoint& b) {
                return a.avg_neutron_counts < b.avg_neutron_counts;
              });
    std::vector<MonthlyFluxPoint> cpu_by_flux = c.cpu;
    std::sort(cpu_by_flux.begin(), cpu_by_flux.end(),
              [](const MonthlyFluxPoint& a, const MonthlyFluxPoint& b) {
                return a.avg_neutron_counts < b.avg_neutron_counts;
              });
    Table t({"flux quartile", "mean counts/min", "P(DRAM fail)/month",
             "P(CPU fail)/month"});
    const std::size_t q = by_flux.size() / 4;
    for (int i = 0; i < 4; ++i) {
      const std::size_t begin = static_cast<std::size_t>(i) * q;
      const std::size_t end = i == 3 ? by_flux.size() : begin + q;
      double flux = 0.0, dram = 0.0, cpu = 0.0;
      for (std::size_t j = begin; j < end; ++j) {
        flux += by_flux[j].avg_neutron_counts;
        dram += by_flux[j].failure_probability;
        cpu += cpu_by_flux[j].failure_probability;
      }
      const double n = static_cast<double>(end - begin);
      t.AddRow({std::to_string(i + 1), FormatDouble(flux / n, 0),
                FormatDouble(dram / n, 4), FormatDouble(cpu / n, 4)});
    }
    t.Print(std::cout);

    Table stats({"series", "Pearson r", "p", "GLM flux coeff", "GLM p"});
    stats.AddRow({"DRAM", FormatDouble(c.dram_corr.r, 3),
                  FormatDouble(c.dram_corr.p_value, 3),
                  FormatDouble(c.dram_glm.coefficient("neutron_counts").estimate, 3),
                  FormatDouble(c.dram_glm.coefficient("neutron_counts").p_value, 3)});
    stats.AddRow({"CPU", FormatDouble(c.cpu_corr.r, 3),
                  FormatDouble(c.cpu_corr.p_value, 3),
                  FormatDouble(c.cpu_glm.coefficient("neutron_counts").estimate, 3),
                  FormatDouble(c.cpu_glm.coefficient("neutron_counts").p_value, 3)});
    stats.Print(std::cout);

    const bool expect_cpu_coupling = s.name != "system20";
    PrintShapeCheck(std::cout, s.name + " DRAM flat in flux",
                    std::abs(c.dram_corr.r), "no correlation",
                    std::abs(c.dram_corr.r) < 0.35);
    if (expect_cpu_coupling) {
      PrintShapeCheck(std::cout, s.name + " CPU positively correlated",
                      c.cpu_corr.r, "mild positive trend (Fig 14 right)",
                      c.cpu_corr.r > 0.0);
    } else {
      PrintShapeCheck(std::cout, s.name + " CPU uncorrelated",
                      c.cpu_corr.r, "system 20 shows no trend",
                      std::abs(c.cpu_corr.r) < 0.35);
    }
  }
  return 0;
}
