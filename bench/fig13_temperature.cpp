// Reproduces Section VIII and Figure 13: how temperature affects failures.
//   - VIII.A/B: Poisson and negative-binomial regressions of hardware / CPU
//     / DRAM failure counts on average, maximum and variance of node
//     temperature — all insignificant in the paper.
//   - Fig 13 (left): P(hardware failure within day/week/month | fan or
//     chiller failure); fans ~40X on the next day, chillers 6-9X.
//   - Fig 13 (right): per-component month probabilities; fans recur ~120X,
//     MSC boards and midplanes appear, CPUs are untouched.
#include <cmath>

#include "bench_common.h"
#include "core/power_analysis.h"
#include "core/temperature_analysis.h"

int main(int argc, char** argv) {
  const hpcfail::bench::BenchArgs bench_args =
      hpcfail::bench::ParseArgs(argc, argv, "fig13_temperature");
  using namespace hpcfail;
  using namespace hpcfail::core;
  bench::PrintHeader(
      "Figure 13 + Section VIII: temperature and failures",
      "paper: avg/max/var temperature insignificant; fan failures raise "
      "hardware failures ~40X next-day, chillers 6-9X; fans recur ~120X");
  const engine::AnalysisSession session =
      bench::MakeBenchSession(bench_args);
  const Trace& trace = session.trace();
  const EventIndex g1 =
      session.IndexFor(SystemsOfGroup(trace, SystemGroup::kSmp));
  const WindowAnalyzer a(g1);

  {
    const auto temp_systems = SystemsWithTemperature(trace);
    std::cout << "\n-- Section VIII.A/B: temperature regressions (system "
              << trace.system(temp_systems.at(0)).name << ") --\n";
    const auto regs = RegressFailuresOnTemperature(g1, temp_systems.at(0));
    Table t({"covariate", "target", "Poisson p", "NegBin p", "paper"});
    bool avg_insig = true;
    for (const TemperatureRegression& r : regs) {
      t.AddRow({r.covariate, r.target, FormatDouble(r.poisson_p, 4),
                FormatDouble(r.negbin_p, 4), "insignificant"});
      if (r.covariate == "avg_temp" && r.negbin_p < 0.01) avg_insig = false;
    }
    t.Print(std::cout);
    PrintShapeCheck(std::cout, "average temperature not predictive", 1.0,
                    "no significant correlation (Section VIII.A)", avg_insig);
  }

  {
    std::cout << "\n-- Fig 13 (left): P(hardware failure | fan / chiller) --\n";
    const auto impacts = CoolingFailureImpact(a);
    Table t({"trigger", "day", "week", "month", "triggers"});
    for (const CoolingImpact& ci : impacts) {
      t.AddRow({ci.trigger, FormatConditional(ci.day),
                FormatConditional(ci.week), FormatConditional(ci.month),
                std::to_string(ci.month.num_triggers)});
    }
    t.Print(std::cout);
    PrintShapeCheck(std::cout, "fan failures raise hw failures",
                    impacts[0].day.factor, "~40X next day",
                    impacts[0].day.factor > 3.0);
    PrintShapeCheck(std::cout, "fans hit harder than chillers",
                    impacts[0].month.factor /
                        std::max(1.0, impacts[1].month.factor),
                    "fan > chiller at every timespan",
                    impacts[0].month.factor > impacts[1].month.factor);
  }

  {
    std::cout << "\n-- Fig 13 (right): per-component month probabilities --\n";
    for (const auto& [name, trigger] :
         {std::pair{"fan failure", FanFilter()},
          {"chiller failure", ChillerFilter()}}) {
      std::cout << "after " << name << ":\n";
      Table t({"component", "P(month | trigger)", "P(random month)", "factor",
               "sig"});
      for (const ComponentImpact& ci : HardwareComponentImpact(a, trigger)) {
        t.AddRow({ci.component, FormatPercent(ci.month.conditional, true),
                  FormatPercent(ci.month.baseline),
                  FormatFactor(ci.month.factor),
                  SignificanceMarker(ci.month.test)});
      }
      t.Print(std::cout);
    }
    const auto fan_impacts = HardwareComponentImpact(a, FanFilter());
    double fan_self = 0.0, cpu = 0.0, msc = 0.0;
    for (const ComponentImpact& ci : fan_impacts) {
      if (ci.component == "fan" && std::isfinite(ci.month.factor)) {
        fan_self = ci.month.factor;
      }
      if (ci.component == "cpu" && std::isfinite(ci.month.factor)) {
        cpu = ci.month.factor;
      }
      if (ci.component == "msc_board" && std::isfinite(ci.month.factor)) {
        msc = ci.month.factor;
      }
    }
    PrintShapeCheck(std::cout, "fans recur strongest, CPUs untouched",
                    fan_self / std::max(0.5, cpu),
                    "fan ~120X, MSC/midplane >100X, CPU ~1X",
                    fan_self > 5.0 && fan_self > 3.0 * std::max(1.0, cpu) &&
                        msc > 1.0);
  }
  return 0;
}
