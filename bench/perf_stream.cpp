// Throughput benchmarks (google-benchmark) for the streaming subsystem:
// sustained events/sec for the full engine (index + window tracker +
// summary + predictor) under serial one-by-one ingestion and under sharded
// catch-up replay at 1/2/4/8 threads. The counters set SetItemsProcessed,
// so google-benchmark reports items_per_second — the throughput baseline
// future PRs compare against.
//
// With --json the google-benchmark harness is bypassed: the binary emits one
// JSON object with sustained events/sec for serial ingestion and for sharded
// catch-up at each thread count (the numbers BENCH_baseline.json records).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <ctime>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string_view>
#include <thread>
#include <vector>

#include "core/event_store.h"
#include "core/parallel.h"
#include "core/prediction.h"
#include "core/simd.h"
#include "engine/session.h"
#include "stream/engine.h"
#include "synth/generate.h"
#include "trace/adapter.h"
#include "trace/csv.h"
#include "trace/lanl_import.h"

namespace hpcfail {
namespace {

// Shared medium-size trace: same scale as perf_engine's query benches.
const Trace& SharedTrace() {
  static const Trace trace =
      synth::GenerateTrace(synth::LanlLikeScenario(0.25, kYear), 7);
  return trace;
}

stream::EngineConfig BenchConfig(TimeSec tolerance) {
  stream::EngineConfig cfg;
  cfg.stream.reorder_tolerance = tolerance;
  cfg.window.trigger = core::EventFilter::Any();
  cfg.window.target = core::EventFilter::Any();
  cfg.window.window = kWeek;
  return cfg;
}

const core::FailurePredictor& SharedPredictor() {
  static const core::EventIndex index(SharedTrace());
  static const core::FailurePredictor predictor(index,
                                                core::PredictorConfig{});
  return predictor;
}

// One event at a time through the full operator pipeline (the --follow
// path), sorted input (tolerance 0).
void BM_StreamIngestSerial(benchmark::State& state) {
  const Trace& trace = SharedTrace();
  const std::vector<FailureRecord>& events = trace.failures();
  for (auto _ : state) {
    stream::StreamEngine engine(trace.systems(), BenchConfig(0));
    engine.AttachPredictor(SharedPredictor(),
                           SharedPredictor().baseline());
    for (const FailureRecord& r : events) engine.Ingest(r);
    engine.Finish();
    benchmark::DoNotOptimize(engine.counters().released);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_StreamIngestSerial)->Unit(benchmark::kMillisecond);

// Sharded catch-up replay of the whole backlog at N threads (the --trace
// file path). N=1 forces the serial path; results are bit-identical.
void BM_StreamCatchUp(benchmark::State& state) {
  const Trace& trace = SharedTrace();
  const std::vector<FailureRecord>& events = trace.failures();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    stream::StreamEngine engine(trace.systems(), BenchConfig(0));
    engine.AttachPredictor(SharedPredictor(),
                           SharedPredictor().baseline());
    engine.CatchUp(events, threads);
    engine.Finish();
    benchmark::DoNotOptimize(engine.counters().released);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_StreamCatchUp)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Out-of-order ingestion with a one-day reorder buffer: the price of the
// buffered (start, system, node) re-sort relative to sorted input.
void BM_StreamIngestOutOfOrder(benchmark::State& state) {
  const Trace& trace = SharedTrace();
  std::vector<FailureRecord> events = trace.failures();
  for (std::size_t i = 0; i + 1 < events.size(); i += 2) {
    if (events[i + 1].start - events[i].start < kDay) {
      std::swap(events[i], events[i + 1]);
    }
  }
  for (auto _ : state) {
    stream::StreamEngine engine(trace.systems(), BenchConfig(kDay));
    for (const FailureRecord& r : events) engine.Ingest(r);
    engine.Finish();
    benchmark::DoNotOptimize(engine.counters().released);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_StreamIngestOutOfOrder)->Unit(benchmark::kMillisecond);

// Checkpoint cost at full stream state (all operators loaded).
void BM_StreamCheckpoint(benchmark::State& state) {
  const Trace& trace = SharedTrace();
  stream::StreamEngine engine(trace.systems(), BenchConfig(0));
  engine.CatchUp(trace.failures(), 1);
  for (auto _ : state) {
    std::ostringstream os;
    engine.SaveCheckpoint(os);
    benchmark::DoNotOptimize(os.str().size());
  }
}
BENCHMARK(BM_StreamCheckpoint)->Unit(benchmark::kMillisecond);

// ---- --json mode: hand-rolled timing, no google-benchmark involved.

template <typename Fn>
double BestSeconds(int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    best = std::min(best, s);
  }
  return best;
}

int RunJsonMode(int argc, const char* const* argv) {
  engine::StandardOptions std_opts;
  int reps = 3;
  engine::ArgParser parser(
      "perf_stream",
      "Machine-readable streaming throughput baseline: events/sec for serial "
      "ingestion and sharded catch-up per thread count.");
  engine::AddStandardOptions(parser, &std_opts);
  parser.AddInt("reps", &reps, "timing repetitions (best-of)");
  parser.ParseOrExit(argc, argv);

  // The backlog comes through the session layer, so a warm artifact cache
  // skips trace generation here too.
  const engine::AnalysisSession session =
      engine::AnalysisSession::FromScenario(
          synth::LanlLikeScenario(0.25, kYear), std_opts.seed,
          engine::MakeSessionOptions(std_opts));
  const Trace& trace = session.trace();
  const std::vector<FailureRecord>& events = trace.failures();
  const core::FailurePredictor predictor(session.index(),
                                         core::PredictorConfig{});
  const auto num_events = static_cast<double>(events.size());

  const double serial_s = BestSeconds(reps, [&] {
    stream::StreamEngine engine(trace.systems(), BenchConfig(0));
    engine.AttachPredictor(predictor, predictor.baseline());
    for (const FailureRecord& r : events) engine.Ingest(r);
    engine.Finish();
    benchmark::DoNotOptimize(engine.counters().released);
  });

  std::ostringstream out;
  out.precision(6);
  out << "{\"bench\":\"perf_stream\",\"seed\":" << std_opts.seed
      << ",\"num_events\":" << events.size();

  // Thread counts above the machine's concurrency are clamped: on a small
  // box an 8-thread catch-up would only measure oversubscription noise, not
  // the sharded path. Each distinct effective count is timed once and
  // reused, and the effective counts are reported next to the requested
  // keys so the JSON says what was actually run.
  const int hw = std::max(1u, std::thread::hardware_concurrency());
  out << ",\"hardware_concurrency\":" << hw;

  std::map<int, double> by_effective;
  out << ",\"ingest_serial_events_per_sec\":"
      << (serial_s > 0.0 ? num_events / serial_s : 0.0)
      << ",\"catchup_events_per_sec\":{";
  bool first = true;
  std::ostringstream effective_out;
  for (const int threads : {1, 2, 4, 8}) {
    const int effective = std::min(threads, hw);
    if (!by_effective.contains(effective)) {
      by_effective[effective] = BestSeconds(reps, [&] {
        stream::StreamEngine engine(trace.systems(), BenchConfig(0));
        engine.AttachPredictor(predictor, predictor.baseline());
        engine.CatchUp(events, effective);
        engine.Finish();
        benchmark::DoNotOptimize(engine.counters().released);
      });
    }
    const double s = by_effective[effective];
    out << (first ? "" : ",") << "\"" << threads
        << "\":" << (s > 0.0 ? num_events / s : 0.0);
    effective_out << (first ? "" : ",") << "\"" << threads
                  << "\":" << effective;
    first = false;
  }
  out << "},\"catchup_threads_effective\":{" << effective_out.str() << "}";

  // The one SIMD kernel on the streaming hot path: block validation, as run
  // by CatchUp/AppendBlock over the staged columns. Per-call seconds for
  // the whole backlog, at the active dispatch level.
  {
    core::RecordBlock block;
    block.reserve(events.size());
    std::int32_t max_node = 0;
    for (const FailureRecord& r : events) {
      block.PushBack(r);
      max_node = std::max(max_node, r.node.value);
    }
    const core::simd::KernelTable& kernels = core::simd::Active();
    constexpr int kKernelIters = 512;
    const double validate_s = BestSeconds(reps, [&] {
      for (int i = 0; i < kKernelIters; ++i) {
        benchmark::DoNotOptimize(kernels.validate_block(
            block.starts.data(), block.ends.data(), block.nodes.data(),
            block.cats.data(), block.subs.data(), block.size(),
            max_node + 1));
      }
    });
    out << ",\"simd_level\":\"" << core::simd::ToString(kernels.level)
        << "\",\"kernel_seconds\":{\"validate_block\":"
        << validate_s / kKernelIters << "}";
  }

  // Per-format adapter ingest: the same failure backlog rendered in each
  // on-disk format, parsed back through the adapter registry (PR 9). The
  // lanl rows are also run through the legacy direct importer so the CI
  // gate can hold the adapter path to >= 0.9x legacy throughput — both
  // call lanl::ParseLanlRow, so any gap is pure dispatch overhead.
  {
    const auto fmt_time = [](TimeSec t, const char* spec) {
      const std::time_t tt = static_cast<std::time_t>(std::max<TimeSec>(t, 0));
      std::tm tm{};
      gmtime_r(&tt, &tm);
      char buf[64];
      std::strftime(buf, sizeof buf, spec, &tm);
      return std::string(buf);
    };
    const auto lanl_labels =
        [](FailureCategory c) -> std::pair<const char*, const char*> {
      switch (c) {
        case FailureCategory::kHardware: return {"Hardware", "Memory Dimm"};
        case FailureCategory::kSoftware: return {"Software", "OS"};
        case FailureCategory::kNetwork: return {"Network", ""};
        case FailureCategory::kEnvironment: return {"Facilities", "Power Outage"};
        case FailureCategory::kHuman: return {"Human Error", ""};
        default: return {"Undetermined", ""};
      }
    };
    std::map<std::string, std::string> payloads;
    {
      std::ostringstream os;
      csv::WriteFailures(os, events);
      payloads["hpcfail_csv"] = os.str();
    }
    {
      std::ostringstream os;
      os << "system,node,started,fixed,cause,detail\n";
      for (const FailureRecord& r : events) {
        const auto [cause, detail] = lanl_labels(r.category);
        os << r.system.value << ',' << r.node.value << ','
           << fmt_time(r.start, "%m/%d/%Y %H:%M:%S") << ','
           << fmt_time(r.end, "%m/%d/%Y %H:%M:%S") << ',' << cause << ','
           << detail << '\n';
      }
      payloads["lanl_csv"] = os.str();
    }
    {
      std::ostringstream os;
      os << "RECID,EVENT_TIME,SEVERITY,COMPONENT,SUBCOMPONENT,LOCATION,"
            "MSG_ID,MESSAGE\n";
      long long recid = 1;
      for (const FailureRecord& r : events) {
        os << recid++ << ',' << fmt_time(r.start, "%Y-%m-%d %H:%M:%S")
           << ",FATAL,DDR,_DDR_UE,R00-M0-N0" << (r.node.value % 10)
           << ",00090200,uncorrectable summary count exceeded\n";
      }
      payloads["bgq_ras"] = os.str();
    }
    {
      static const char* const kMessages[] = {
          "kernel: EDAC MC0: UE page 0x42, row 7",
          "kernel: Machine check events logged",
          "kernel: Out of memory: Kill process 4242 (mpirun)",
          "slurmd[311]: error: node drained",
      };
      std::ostringstream os;
      std::size_t m = 0;
      for (const FailureRecord& r : events) {
        os << fmt_time(r.start, "%b %d %H:%M:%S") << " node"
           << (r.node.value % 512) << ' ' << kMessages[m++ % 4] << '\n';
      }
      payloads["syslog"] = os.str();
    }
    out << ",\"adapter_ingest_lines_per_sec\":{";
    bool first_fmt = true;
    for (const trace::LogAdapter* adapter : trace::Registry()) {
      const std::string& payload = payloads.at(std::string(adapter->name()));
      const double lines = static_cast<double>(
          std::count(payload.begin(), payload.end(), '\n'));
      const double s = BestSeconds(reps, [&] {
        std::istringstream is(payload);
        const trace::ParseResult parsed =
            trace::ParseLog(*adapter, is, trace::AdapterOptions{});
        benchmark::DoNotOptimize(parsed.counters.records);
      });
      out << (first_fmt ? "" : ",") << "\"" << adapter->name()
          << "\":" << (s > 0.0 ? lines / s : 0.0);
      first_fmt = false;
    }
    out << "}";
    const std::string& lanl_payload = payloads.at("lanl_csv");
    const double lanl_lines = static_cast<double>(
        std::count(lanl_payload.begin(), lanl_payload.end(), '\n'));
    const double legacy_s = BestSeconds(reps, [&] {
      std::istringstream is(lanl_payload);
      const lanl::ImportResult imported =
          lanl::ImportFailures(is, lanl::ImportConfig{});
      benchmark::DoNotOptimize(imported.failures.size());
    });
    const double adapter_s = BestSeconds(reps, [&] {
      std::istringstream is(lanl_payload);
      const trace::ParseResult parsed = trace::ParseLog(
          *trace::FindAdapter("lanl_csv"), is, trace::AdapterOptions{});
      benchmark::DoNotOptimize(parsed.counters.records);
    });
    out << ",\"lanl_legacy_lines_per_sec\":"
        << (legacy_s > 0.0 ? lanl_lines / legacy_s : 0.0)
        << ",\"lanl_adapter_vs_legacy\":"
        << (adapter_s > 0.0 ? legacy_s / adapter_s : 0.0);
  }
  out << "}";
  std::cout << out.str() << "\n";
  return 0;
}

}  // namespace
}  // namespace hpcfail

int main(int argc, char** argv) {
  // google-benchmark rejects flags it does not know, so the --json mode is
  // dispatched before benchmark::Initialize ever sees the argument list.
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") {
      return hpcfail::RunJsonMode(argc, argv);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
