// Throughput benchmarks (google-benchmark) for the streaming subsystem:
// sustained events/sec for the full engine (index + window tracker +
// summary + predictor) under serial one-by-one ingestion and under sharded
// catch-up replay at 1/2/4/8 threads. The counters set SetItemsProcessed,
// so google-benchmark reports items_per_second — the throughput baseline
// future PRs compare against.
#include <benchmark/benchmark.h>

#include <sstream>
#include <vector>

#include "core/parallel.h"
#include "core/prediction.h"
#include "stream/engine.h"
#include "synth/generate.h"

namespace hpcfail {
namespace {

// Shared medium-size trace: same scale as perf_engine's query benches.
const Trace& SharedTrace() {
  static const Trace trace =
      synth::GenerateTrace(synth::LanlLikeScenario(0.25, kYear), 7);
  return trace;
}

stream::EngineConfig BenchConfig(TimeSec tolerance) {
  stream::EngineConfig cfg;
  cfg.stream.reorder_tolerance = tolerance;
  cfg.window.trigger = core::EventFilter::Any();
  cfg.window.target = core::EventFilter::Any();
  cfg.window.window = kWeek;
  return cfg;
}

const core::FailurePredictor& SharedPredictor() {
  static const core::EventIndex index(SharedTrace());
  static const core::FailurePredictor predictor(index,
                                                core::PredictorConfig{});
  return predictor;
}

// One event at a time through the full operator pipeline (the --follow
// path), sorted input (tolerance 0).
void BM_StreamIngestSerial(benchmark::State& state) {
  const Trace& trace = SharedTrace();
  const std::vector<FailureRecord>& events = trace.failures();
  for (auto _ : state) {
    stream::StreamEngine engine(trace.systems(), BenchConfig(0));
    engine.AttachPredictor(SharedPredictor(),
                           SharedPredictor().baseline());
    for (const FailureRecord& r : events) engine.Ingest(r);
    engine.Finish();
    benchmark::DoNotOptimize(engine.counters().released);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_StreamIngestSerial)->Unit(benchmark::kMillisecond);

// Sharded catch-up replay of the whole backlog at N threads (the --trace
// file path). N=1 forces the serial path; results are bit-identical.
void BM_StreamCatchUp(benchmark::State& state) {
  const Trace& trace = SharedTrace();
  const std::vector<FailureRecord>& events = trace.failures();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    stream::StreamEngine engine(trace.systems(), BenchConfig(0));
    engine.AttachPredictor(SharedPredictor(),
                           SharedPredictor().baseline());
    engine.CatchUp(events, threads);
    engine.Finish();
    benchmark::DoNotOptimize(engine.counters().released);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_StreamCatchUp)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Out-of-order ingestion with a one-day reorder buffer: the price of the
// buffered (start, system, node) re-sort relative to sorted input.
void BM_StreamIngestOutOfOrder(benchmark::State& state) {
  const Trace& trace = SharedTrace();
  std::vector<FailureRecord> events = trace.failures();
  for (std::size_t i = 0; i + 1 < events.size(); i += 2) {
    if (events[i + 1].start - events[i].start < kDay) {
      std::swap(events[i], events[i + 1]);
    }
  }
  for (auto _ : state) {
    stream::StreamEngine engine(trace.systems(), BenchConfig(kDay));
    for (const FailureRecord& r : events) engine.Ingest(r);
    engine.Finish();
    benchmark::DoNotOptimize(engine.counters().released);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_StreamIngestOutOfOrder)->Unit(benchmark::kMillisecond);

// Checkpoint cost at full stream state (all operators loaded).
void BM_StreamCheckpoint(benchmark::State& state) {
  const Trace& trace = SharedTrace();
  stream::StreamEngine engine(trace.systems(), BenchConfig(0));
  engine.CatchUp(trace.failures(), 1);
  for (auto _ : state) {
    std::ostringstream os;
    engine.SaveCheckpoint(os);
    benchmark::DoNotOptimize(os.str().size());
  }
}
BENCHMARK(BM_StreamCheckpoint)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hpcfail

BENCHMARK_MAIN();
