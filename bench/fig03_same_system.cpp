// Reproduces Section III.C and Figure 3: correlations between failures of
// different nodes in the same system (not necessarily the same rack).
//   - III.C text: group1 week 2.04% -> 2.68%; group2 22.5% -> 35.3%.
//   - Fig 3: P(any other node fails within week | type X) per trigger type,
//     for both groups; network is group-2's strongest trigger (3.69X).
#include "bench_common.h"

namespace hpcfail {
namespace {

using namespace core;
using bench::CategoryLabel;

void SystemScope(const WindowAnalyzer& a, const std::string& group,
                 const std::string& paper_week) {
  const auto any = EventFilter::Any();
  const auto week = a.Compare(any, any, Scope::kSystemPeers, kWeek);
  std::cout << "\n-- " << group << " (paper: " << paper_week << ") --\n";
  Table head({"window", "P(random wk)", "P(peer | failure)", "factor",
              "sig"});
  head.AddRow({"week", FormatPercent(week.baseline, true),
               FormatPercent(week.conditional, true),
               FormatFactor(week.factor), SignificanceMarker(week.test)});
  head.Print(std::cout);

  Table t({"trigger", "P(week|X) [ci]", "P(random wk)", "factor", "sig",
           "triggers"});
  double net_factor = 0.0;
  for (FailureCategory c : AllFailureCategories()) {
    const auto r =
        a.Compare(EventFilter::Of(c), any, Scope::kSystemPeers, kWeek);
    t.AddRow(bench::ConditionalCells(CategoryLabel(c), r));
    if (c == FailureCategory::kNetwork) net_factor = r.factor;
  }
  t.Print(std::cout);
  PrintShapeCheck(std::cout, group + " same-system any-failure factor",
                  week.factor, "1.1-1.6X (weakest scope)",
                  week.factor > 1.0 && week.factor < 3.0);
  PrintShapeCheck(std::cout, group + " network trigger factor", net_factor,
                  "strongest in group 2 (3.69X)", net_factor > 1.0);
}

}  // namespace
}  // namespace hpcfail

int main(int argc, char** argv) {
  const hpcfail::bench::BenchArgs bench_args =
      hpcfail::bench::ParseArgs(argc, argv, "fig03_same_system");
  using namespace hpcfail;
  using namespace hpcfail::core;
  bench::PrintHeader(
      "Figure 3 + Section III.C: same-system failure correlations",
      "paper: group1 2.04%->2.68% weekly; group2 22.5%->35.3%; increases "
      "weaker than rack scope");
  const engine::AnalysisSession session =
      bench::MakeBenchSession(bench_args);
  const Trace& trace = session.trace();
  const EventIndex g1 =
      session.IndexFor(SystemsOfGroup(trace, SystemGroup::kSmp));
  const EventIndex g2 =
      session.IndexFor(SystemsOfGroup(trace, SystemGroup::kNuma));
  SystemScope(WindowAnalyzer(g1), "LANL group 1", "2.04% -> 2.68%");
  SystemScope(WindowAnalyzer(g2), "LANL group 2", "22.5% -> 35.3%");

  // Consistency check across scopes: node > rack > system (Section XI).
  const WindowAnalyzer a1(g1);
  const auto any = EventFilter::Any();
  const double node_f =
      a1.Compare(any, any, Scope::kSameNode, kWeek).factor;
  const double rack_f =
      a1.Compare(any, any, Scope::kRackPeers, kWeek).factor;
  const double sys_f =
      a1.Compare(any, any, Scope::kSystemPeers, kWeek).factor;
  PrintShapeCheck(std::cout, "scope ordering node>rack>system",
                  node_f / sys_f, "monotone decreasing with distance",
                  node_f > rack_f && rack_f > sys_f);
  return 0;
}
