// Ablation of the generator's injected mechanisms: each knob in
// synth/scenario.h exists to reproduce one family of paper findings. This
// bench disables one mechanism at a time and reruns the key measurement it
// supports — demonstrating both that the mechanism is necessary (the finding
// disappears without it) and that it is not confounded with the others.
//
//   mechanism            -> finding it carries
//   node cascades        -> same-node correlation (Fig 1)
//   rack cascades + facility -> same-rack correlation (Fig 2)
//   weekly modulation    -> same-system correlation (Fig 3)
//   facility events      -> power-impact structure (Figs 9-12)
//   node-0 multipliers   -> node skew (Figs 4-6)
#include "bench_common.h"
#include "core/node_skew.h"

namespace hpcfail {
namespace {

using namespace core;

synth::Scenario BaseScenario() {
  synth::Scenario sc;
  sc.duration = 3 * kYear;
  sc.systems.push_back(synth::Group1System("g", 256, 3 * kYear));
  return sc;
}

struct Knobs {
  bool node_cascades = true;
  bool rack_cascades = true;
  bool facility = true;
  bool modulation = true;
  bool node0 = true;
};

synth::Scenario Apply(const Knobs& k) {
  synth::Scenario sc = BaseScenario();
  synth::SystemScenario& s = sc.systems[0];
  if (!k.node_cascades) {
    for (auto& c : s.node_cascade) c.children.fill(0.0);
    s.power_supply_cascade.children.fill(0.0);
    s.fan_cascade.children.fill(0.0);
  }
  if (!k.rack_cascades) {
    for (auto& c : s.rack_cascade) c.children.fill(0.0);
  }
  if (!k.facility) {
    s.power_outage.events_per_year = 0.0;
    s.power_spike.events_per_year = 0.0;
    s.ups_failure.events_per_year = 0.0;
    s.chiller_failure.events_per_year = 0.0;
  }
  if (!k.modulation) s.modulation_sigma = 0.0;
  if (!k.node0) s.node0_rate_multiplier.fill(1.0);
  return sc;
}

struct Measures {
  double node_factor = 0.0;   // same-node week factor
  double rack_factor = 0.0;   // rack-peer week factor
  double system_factor = 0.0; // system-peer week factor
  double node0_skew = 0.0;    // max/mean failures
  int top_node = -1;          // id of the most failing node
};

Measures Measure(const synth::Scenario& sc, std::uint64_t seed,
                 const engine::SessionOptions& opts) {
  const engine::AnalysisSession session =
      engine::AnalysisSession::FromScenario(sc, seed, opts);
  const EventIndex& idx = session.index();
  const WindowAnalyzer a(idx);
  const auto any = EventFilter::Any();
  Measures m;
  m.node_factor = a.Compare(any, any, Scope::kSameNode, kWeek).factor;
  m.rack_factor = a.Compare(any, any, Scope::kRackPeers, kWeek).factor;
  m.system_factor = a.Compare(any, any, Scope::kSystemPeers, kWeek).factor;
  const NodeSkewSummary skew = AnalyzeNodeSkew(idx, SystemId{0});
  m.node0_skew = skew.max_over_mean;
  m.top_node = skew.most_failing_node.value;
  return m;
}

}  // namespace
}  // namespace hpcfail

int main(int argc, char** argv) {
  const hpcfail::bench::BenchArgs bench_args =
      hpcfail::bench::ParseArgs(argc, argv, "ablation_generator");
  using namespace hpcfail;
  using namespace hpcfail::core;
  bench::PrintHeader(
      "Ablation: which generator mechanism carries which paper finding?",
      "each row disables one mechanism; the measurement it supports should "
      "collapse toward 1x while the others survive");

  struct Row {
    const char* label;
    Knobs knobs;
  };
  const Row rows[] = {
      {"full generator", {}},
      {"- node cascades", {.node_cascades = false}},
      {"- rack cascades", {.rack_cascades = false}},
      {"- facility events", {.facility = false}},
      {"- weekly modulation", {.modulation = false}},
      {"- node-0 role", {.node0 = false}},
  };

  Table t({"configuration", "node-week factor", "rack-week factor",
           "system-week factor", "max-node skew", "top node"});
  Measures full{}, no_node{}, no_mod{}, no_node0{};
  const auto session_opts = engine::MakeSessionOptions(bench_args.std_opts);
  for (const Row& row : rows) {
    const Measures m = Measure(Apply(row.knobs), 11, session_opts);
    t.AddRow({row.label, FormatFactor(m.node_factor),
              FormatFactor(m.rack_factor), FormatFactor(m.system_factor),
              FormatDouble(m.node0_skew, 1), std::to_string(m.top_node)});
    if (std::string(row.label) == "full generator") full = m;
    if (std::string(row.label) == "- node cascades") no_node = m;
    if (std::string(row.label) == "- weekly modulation") no_mod = m;
    if (std::string(row.label) == "- node-0 role") no_node0 = m;
  }
  t.Print(std::cout);

  PrintShapeCheck(std::cout, "node cascades carry the same-node correlation",
                  full.node_factor / std::max(1.0, no_node.node_factor),
                  "factor collapses without them",
                  no_node.node_factor < 0.5 * full.node_factor);
  PrintShapeCheck(std::cout, "modulation carries the same-system correlation",
                  full.system_factor / std::max(0.1, no_mod.system_factor),
                  "system factor moves toward 1x without it",
                  no_mod.system_factor < full.system_factor);
  // Without the login-node role the skew drops but does NOT vanish: the
  // Hawkes clustering alone makes some node "unlucky" — exactly the paper's
  // Section IV.C first hypothesis. What does vanish is the *identity*: the
  // top node stops being node 0.
  PrintShapeCheck(std::cout, "node-0 role carries the node-0 identity",
                  full.node0_skew / std::max(1.0, no_node0.node0_skew),
                  "skew shrinks and the top node stops being node 0; "
                  "residual skew = the paper's 'unlucky node' effect",
                  full.top_node == 0 && no_node0.top_node != 0 &&
                      no_node0.node0_skew < 0.8 * full.node0_skew);
  return 0;
}
