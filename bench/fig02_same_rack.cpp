// Reproduces Section III.B and Figure 2: correlations between failures of
// different nodes in the same rack (group-1 systems only; only those have
// machine-layout files).
//   - III.B text: rack-peer day (0.31% -> 1.2%, ~3X) and week (2.04% ->
//     4.6%, ~2.3X) probabilities.
//   - Fig 2(a): P(any failure of another rack node within week | type X).
//   - Fig 2(b): same-type rack pairs (env up to 170X, sw ~10X).
#include "bench_common.h"

int main(int argc, char** argv) {
  const hpcfail::bench::BenchArgs bench_args =
      hpcfail::bench::ParseArgs(argc, argv, "fig02_same_rack");
  using namespace hpcfail;
  using namespace hpcfail::core;
  using bench::CategoryLabel;
  bench::PrintHeader(
      "Figure 2 + Section III.B: same-rack failure correlations",
      "paper: day 0.31%->1.2% (~3X), week 2.04%->4.6% (~2.3X); same-type "
      "rack coupling up to 170X (env), ~10X (sw)");
  const engine::AnalysisSession session =
      bench::MakeBenchSession(bench_args);
  const Trace& trace = session.trace();
  const EventIndex g1 =
      session.IndexFor(SystemsOfGroup(trace, SystemGroup::kSmp));
  const WindowAnalyzer a(g1);
  const auto any = EventFilter::Any();

  {
    const auto day = a.Compare(any, any, Scope::kRackPeers, kDay);
    const auto week = a.Compare(any, any, Scope::kRackPeers, kWeek);
    Table t({"window", "P(random)", "P(rack peer | failure)", "factor", "sig",
             "paper"});
    t.AddRow({"day", FormatPercent(day.baseline, true),
              FormatPercent(day.conditional, true), FormatFactor(day.factor),
              SignificanceMarker(day.test), "0.31% -> 1.2% (~3X)"});
    t.AddRow({"week", FormatPercent(week.baseline, true),
              FormatPercent(week.conditional, true),
              FormatFactor(week.factor), SignificanceMarker(week.test),
              "2.04% -> 4.6% (~2.3X)"});
    std::cout << "\n-- Section III.B headline numbers --\n";
    t.Print(std::cout);
    PrintShapeCheck(std::cout, "rack-peer day factor", day.factor, "~3X",
                    day.factor > 1.5 && day.factor < 15.0);
  }

  {
    std::cout << "\n-- Fig 2(a): P(any rack-peer failure within week | "
                 "type X) --\n";
    Table t({"trigger", "P(week|X) [ci]", "P(random wk)", "factor", "sig",
             "triggers"});
    for (FailureCategory c : AllFailureCategories()) {
      const auto r =
          a.Compare(EventFilter::Of(c), any, Scope::kRackPeers, kWeek);
      t.AddRow(bench::ConditionalCells(CategoryLabel(c), r));
    }
    t.Print(std::cout);
  }

  {
    std::cout << "\n-- Fig 2(b): same-type rack pairs within a week --\n";
    Table t({"type", "after same type", "after ANY", "random week",
             "same/random"});
    double env_factor = 0.0, sw_factor = 0.0;
    for (FailureCategory c : AllFailureCategories()) {
      const auto same = a.Compare(EventFilter::Of(c), EventFilter::Of(c),
                                  Scope::kRackPeers, kWeek);
      const auto after_any =
          a.Compare(any, EventFilter::Of(c), Scope::kRackPeers, kWeek);
      t.AddRow({CategoryLabel(c), FormatPercent(same.conditional, true),
                FormatPercent(after_any.conditional),
                FormatPercent(same.baseline), FormatFactor(same.factor)});
      if (c == FailureCategory::kEnvironment) env_factor = same.factor;
      if (c == FailureCategory::kSoftware) sw_factor = same.factor;
    }
    for (HardwareComponent c :
         {HardwareComponent::kMemory, HardwareComponent::kCpu}) {
      const auto same = a.Compare(EventFilter::Of(c), EventFilter::Of(c),
                                  Scope::kRackPeers, kWeek);
      const auto after_any =
          a.Compare(any, EventFilter::Of(c), Scope::kRackPeers, kWeek);
      t.AddRow({std::string(ToString(c)),
                FormatPercent(same.conditional, true),
                FormatPercent(after_any.conditional),
                FormatPercent(same.baseline), FormatFactor(same.factor)});
    }
    t.Print(std::cout);
    PrintShapeCheck(std::cout, "rack same-type env factor", env_factor,
                    "up to 170X", env_factor > 10.0);
    PrintShapeCheck(std::cout, "rack same-type sw factor", sw_factor,
                    "~10X", sw_factor > 2.0);
  }
  return 0;
}
