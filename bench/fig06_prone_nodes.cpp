// Reproduces Section IV.B and Figure 6: per-type failure probabilities in
// the failure-prone node 0 vs the rest of the nodes, at day/week/month
// windows, for systems 18/19/20. The paper reports factor increases of
// ~2000X (environment), 500-1000X (network), 36-118X (software), 5-10X
// (hardware); human errors are the only type where equal rates cannot be
// rejected.
#include "bench_common.h"
#include "core/node_skew.h"

int main(int argc, char** argv) {
  const hpcfail::bench::BenchArgs bench_args =
      hpcfail::bench::ParseArgs(argc, argv, "fig06_prone_nodes");
  using namespace hpcfail;
  using namespace hpcfail::core;
  using bench::CategoryLabel;
  bench::PrintHeader(
      "Figure 6 + Section IV.B: failure probabilities, node 0 vs rest",
      "paper: increases strongest for env (~2000X) and net (500-1000X), "
      "sw 36-118X, hw 5-10X; human errors not significantly skewed");
  const engine::AnalysisSession session =
      bench::MakeBenchSession(bench_args);
  const Trace& trace = session.trace();
  const EventIndex& idx = session.index();

  for (const SystemConfig& s : trace.systems()) {
    if (s.name != "system18" && s.name != "system19" && s.name != "system20") {
      continue;
    }
    std::cout << "\n-- " << s.name << " --\n";
    Table t({"type", "window", "P(node 0)", "P(rest)", "factor",
             "chi2 p (type)"});
    double env_factor = 0.0, hw_factor = 0.0;
    bool human_skewed = false;
    for (FailureCategory c : AllFailureCategories()) {
      for (const auto& [label, window] :
           {std::pair{"day", kDay}, {"week", kWeek}, {"month", kMonth}}) {
        const ProneNodeProbability p = CompareProneNode(
            idx, s.id, NodeId{0}, EventFilter::Of(c), window);
        t.AddRow({CategoryLabel(c), label, FormatPercent(p.prone),
                  FormatPercent(p.rest), FormatFactor(p.factor),
                  FormatDouble(p.per_type_equal_rate.p_value, 4)});
        if (window == kWeek) {
          if (c == FailureCategory::kEnvironment) env_factor = p.factor;
          if (c == FailureCategory::kHardware) hw_factor = p.factor;
          if (c == FailureCategory::kHuman) {
            human_skewed = p.per_type_equal_rate.significant_99;
          }
        }
      }
    }
    t.Print(std::cout);
    PrintShapeCheck(std::cout, s.name + " env factor >> hw factor",
                    env_factor / std::max(1.0, hw_factor),
                    "env ~2000X vs hw 5-10X",
                    env_factor > 1.5 * hw_factor && hw_factor >= 1.0);
    PrintShapeCheck(std::cout, s.name + " human errors not skewed", 1.0,
                    "equal-rate hypothesis NOT rejected for human errors",
                    !human_skewed);
  }
  return 0;
}
