// Reproduces Section VII.B and Figure 11: the impact of power problems on
// software failures.
//   - Fig 11 (left): P(software failure within day/week/month | power
//     problem); outages and UPS failures strongest (45X / 29X weekly).
//   - Fig 11 (right): per-subsystem month probabilities; storage software
//     (DST, then PFS/CFS) dominates — power problems corrupt storage state.
#include "bench_common.h"
#include "core/power_analysis.h"

int main(int argc, char** argv) {
  const hpcfail::bench::BenchArgs bench_args =
      hpcfail::bench::ParseArgs(argc, argv, "fig11_power_sw");
  using namespace hpcfail;
  using namespace hpcfail::core;
  bench::PrintHeader(
      "Figure 11 + Section VII.B: power problems vs software failures",
      "paper: software failures up 45X (outage) / 29X (UPS) / 10-20X "
      "(spike, PSU) within a week; DST/PFS/CFS carry most of the impact");
  const engine::AnalysisSession session =
      bench::MakeBenchSession(bench_args);
  const Trace& trace = session.trace();
  const EventIndex g1 =
      session.IndexFor(SystemsOfGroup(trace, SystemGroup::kSmp));
  const WindowAnalyzer a(g1);

  {
    std::cout << "\n-- Fig 11 (left): P(software failure | power problem) --\n";
    const auto rows =
        PowerImpactOn(a, EventFilter::Of(FailureCategory::kSoftware));
    Table t({"power problem", "day", "week", "month", "triggers"});
    for (const PowerImpactRow& r : rows) {
      t.AddRow({std::string(ToString(r.problem)), FormatConditional(r.day),
                FormatConditional(r.week), FormatConditional(r.month),
                std::to_string(r.month.num_triggers)});
    }
    t.Print(std::cout);
    PrintShapeCheck(std::cout, "software failures up after outages",
                    rows[0].week.factor, "45X weekly",
                    rows[0].week.factor > 3.0);
    PrintShapeCheck(std::cout, "software failures up after UPS failures",
                    rows[3].week.factor, "29X weekly",
                    rows[3].week.factor > 3.0);
  }

  {
    std::cout << "\n-- Fig 11 (right): per-subsystem month probabilities --\n";
    for (PowerProblem p : AllPowerProblems()) {
      std::cout << "after " << ToString(p) << ":\n";
      Table t({"subsystem", "P(month | trigger)", "P(random month)", "factor",
               "sig"});
      for (const ComponentImpact& ci :
           SoftwareComponentImpact(a, PowerProblemFilter(p))) {
        t.AddRow({ci.component, FormatPercent(ci.month.conditional, true),
                  FormatPercent(ci.month.baseline),
                  FormatFactor(ci.month.factor),
                  SignificanceMarker(ci.month.test)});
      }
      t.Print(std::cout);
    }
    const auto outage_impacts = SoftwareComponentImpact(
        a, PowerProblemFilter(PowerProblem::kPowerOutage));
    double dst = 0.0, pfs = 0.0, cfs = 0.0, os = 0.0;
    for (const ComponentImpact& ci : outage_impacts) {
      if (ci.component == "dst") dst = ci.month.conditional.estimate;
      if (ci.component == "pfs") pfs = ci.month.conditional.estimate;
      if (ci.component == "cfs") cfs = ci.month.conditional.estimate;
      if (ci.component == "os") os = ci.month.conditional.estimate;
    }
    PrintShapeCheck(std::cout, "storage software dominates after outages",
                    (dst + pfs + cfs) / std::max(1e-9, os),
                    "DST largest, then PFS/CFS; not general OS issues",
                    dst > os && dst >= pfs && dst >= cfs);
  }
  return 0;
}
