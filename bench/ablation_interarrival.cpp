// Ablation: the statistical-model view vs the paper's conditional view.
// Section I positions the paper against prior work that "statistically
// model[s] the empirical distribution of the inter-arrival time between
// failures or analyz[es] the auto-correlation function". This bench runs
// that classical pipeline on the same trace and shows how the correlations
// of Figs. 1-3 surface at the distribution level: Weibull shape < 1
// (decreasing hazard) and positive short-lag autocorrelation — real, but
// far less actionable than "after a network failure this node has a 40%
// chance of failing within a week".
#include "bench_common.h"
#include "core/interarrival.h"

int main(int argc, char** argv) {
  const hpcfail::bench::BenchArgs bench_args =
      hpcfail::bench::ParseArgs(argc, argv, "ablation_interarrival");
  using namespace hpcfail;
  using namespace hpcfail::core;
  bench::PrintHeader(
      "Ablation: inter-arrival statistical models vs conditional view",
      "the classical pipeline on the same data: distribution fits + ACF");
  const engine::AnalysisSession session =
      bench::MakeBenchSession(bench_args);
  const Trace& trace = session.trace();
  const EventIndex& idx = session.index();

  Table t({"system", "failures", "best fit (AIC)", "Weibull shape (system)",
           "Weibull shape (per-node)", "daily ACF lag1", "lag3"});
  double worst_node_shape = 1.0;
  for (const SystemConfig& s : trace.systems()) {
    if (trace.FailuresOfSystem(s.id).size() < 100) continue;
    const InterarrivalAnalysis a = AnalyzeInterarrivals(idx, s.id);
    t.AddRow({s.name, std::to_string(a.system_gaps_hours.size() + 1),
              std::string(ToString(a.system_fits.front().distribution)),
              FormatDouble(a.system_weibull.param1, 2),
              FormatDouble(a.node_weibull.param1, 2),
              FormatDouble(a.daily_count_acf.size() > 1
                               ? a.daily_count_acf[1]
                               : 0.0, 3),
              FormatDouble(a.daily_count_acf.size() > 3
                               ? a.daily_count_acf[3]
                               : 0.0, 3)});
    worst_node_shape = std::min(worst_node_shape, a.node_weibull.param1);
  }
  t.Print(std::cout);

  PrintShapeCheck(std::cout, "per-node Weibull shapes below 1",
                  worst_node_shape,
                  "decreasing hazard == clustering (prior-work signature "
                  "of the correlations in Figs. 1-3)",
                  worst_node_shape < 1.0);

  // The contrast the paper draws: the distribution view says "bursty"; the
  // conditional view says *when* and *why*.
  const EventIndex g1 =
      session.IndexFor(SystemsOfGroup(trace, SystemGroup::kSmp));
  const WindowAnalyzer analyzer(g1);
  const auto env = analyzer.Compare(
      EventFilter::Of(FailureCategory::kEnvironment), EventFilter::Any(),
      Scope::kSameNode, kWeek);
  std::cout << "\nconditional view of the same clustering: P(fail within a "
               "week | env failure) = "
            << FormatPercent(env.conditional) << " vs "
            << FormatPercent(env.baseline)
            << " baseline — the information the Weibull shape averages "
               "away.\n";
  return 0;
}
