// Checkpoint advisor: the paper motivates its correlation study with
// checkpoint scheduling — "it helps in the prediction of failures, which is
// useful, for example, for scheduling application checkpoints". This example
// turns the Section-III conditional probabilities into concrete advice: an
// application should checkpoint far more aggressively in the day after its
// node failed (especially after environment/network failures) than in steady
// state.
//
// Checkpoint intervals use Young's first-order approximation
//   t_opt = sqrt(2 * delta * MTBF)
// where delta is the cost of writing one checkpoint and MTBF is estimated
// from the measured window probabilities (MTBF ~ window / -ln(1 - p)).
#include <cmath>
#include <iostream>

#include "core/report.h"
#include "core/window_analysis.h"
#include "synth/generate.h"

namespace {

using namespace hpcfail;
using namespace hpcfail::core;

// Converts a window probability into an exponential-equivalent MTBF.
double MtbfHours(const stats::Proportion& p, TimeSec window) {
  if (!p.defined() || p.estimate <= 0.0) return 1e9;
  if (p.estimate >= 1.0) return static_cast<double>(window) / kHour / 100.0;
  const double rate_per_window = -std::log(1.0 - p.estimate);
  return static_cast<double>(window) / kHour / rate_per_window;
}

double YoungIntervalHours(double checkpoint_cost_hours, double mtbf_hours) {
  return std::sqrt(2.0 * checkpoint_cost_hours * mtbf_hours);
}

}  // namespace

int main() {
  std::cout << "checkpoint advisor: adaptive checkpoint intervals from "
               "failure-log correlations\n";
  const double checkpoint_cost_hours = 0.1;  // 6 minutes to write state

  synth::Scenario scenario;
  scenario.duration = 3 * kYear;
  scenario.systems.push_back(
      synth::Group1System("prod", /*num_nodes=*/512, 3 * kYear));
  const Trace trace = synth::GenerateTrace(scenario, 1);
  const EventIndex index(trace);
  const WindowAnalyzer analyzer(index);

  // Steady state: the random-day failure probability.
  const auto baseline =
      analyzer.BaselineProbability(EventFilter::Any(), kDay);
  const double steady_mtbf = MtbfHours(baseline, kDay);
  std::cout << "steady-state node MTBF estimate: "
            << FormatDouble(steady_mtbf / 24.0, 1) << " days -> checkpoint every "
            << FormatDouble(YoungIntervalHours(checkpoint_cost_hours,
                                               steady_mtbf), 1)
            << " h\n\n";

  // After a failure, the next-day hazard jumps; the advisor tightens the
  // interval according to the observed trigger type.
  Table t({"last failure on this node", "P(fail next day)", "cond. MTBF (h)",
           "checkpoint every", "vs steady state"});
  const double steady_interval =
      YoungIntervalHours(checkpoint_cost_hours, steady_mtbf);
  for (FailureCategory c : AllFailureCategories()) {
    const auto cond = analyzer.ConditionalProbability(
        EventFilter::Of(c), EventFilter::Any(), Scope::kSameNode, kDay);
    if (cond.trials < 20) continue;  // not enough evidence
    const double mtbf = MtbfHours(cond, kDay);
    const double interval = YoungIntervalHours(checkpoint_cost_hours, mtbf);
    t.AddRow({std::string(ToString(c)), FormatPercent(cond, false),
              FormatDouble(mtbf, 1),
              FormatDouble(interval, 2) + " h",
              FormatDouble(interval / steady_interval, 2) + "x"});
  }
  t.Print(std::cout);

  std::cout
      << "\nreading: after environment/network failures the conditional MTBF "
         "collapses,\nso jobs on the affected node should checkpoint several "
         "times more often for a day\n(or be migrated, per Section I of the "
         "paper).\n";
  return 0;
}
