// Exascale projection: the paper opens with the observation that "future
// exascale systems are expected to combine the compute power of millions of
// CPU cores" and that "even with relatively reliable individual components,
// the sheer number of components will increase failure rates to
// unprecedented levels". This example quantifies that: it scales a group-1
// system up, measures the system-level MTBF and availability at each scale,
// and projects the checkpoint overhead a full-system application would pay.
#include <cmath>
#include <iostream>

#include "core/downtime.h"
#include "core/report.h"
#include "core/window_analysis.h"
#include "synth/generate.h"

namespace {

using namespace hpcfail;
using namespace hpcfail::core;

// Fraction of wall-clock an application loses to checkpoints + rework at
// the optimal Young interval: overhead ~ sqrt(2 * delta / MTBF).
double CheckpointOverhead(double checkpoint_cost_hours, double mtbf_hours) {
  return std::min(1.0, std::sqrt(2.0 * checkpoint_cost_hours / mtbf_hours));
}

}  // namespace

int main() {
  std::cout
      << "exascale projection: system MTBF and checkpoint overhead vs scale\n"
         "(per-node failure behaviour held fixed at the LANL-calibrated "
         "rates)\n\n";
  const double checkpoint_cost_hours = 0.25;  // full-system checkpoint

  Table t({"nodes", "failures/yr", "system MTBF (h)", "availability",
           "checkpoint overhead"});
  for (int nodes : {256, 1024, 4096, 16384}) {
    synth::Scenario scenario;
    scenario.duration = kYear;
    auto sys = synth::Group1System("scale", nodes, kYear);
    // Large machines spread over more racks.
    sys.racks_per_row = std::max(8, nodes / 256);
    scenario.systems.push_back(std::move(sys));
    const Trace trace = synth::GenerateTrace(scenario, 17);
    const EventIndex index(trace);
    const auto failures = trace.num_failures();
    const double mtbf_hours =
        failures > 0 ? 8760.0 / static_cast<double>(failures) : 8760.0;
    const DowntimeAnalysis down = AnalyzeDowntime(index, SystemId{0});
    t.AddRow({std::to_string(nodes), std::to_string(failures),
              FormatDouble(mtbf_hours, 1),
              FormatDouble(down.availability, 4),
              FormatDouble(
                  100.0 * CheckpointOverhead(checkpoint_cost_hours,
                                             mtbf_hours), 1) + "%"});
  }
  t.Print(std::cout);

  std::cout
      << "\nreading: MTBF shrinks ~linearly with node count. At 16k nodes a\n"
         "full-system application sees a failure every couple of hours and\n"
         "spends a large share of its time checkpointing — the paper's\n"
         "motivation for understanding (and predicting) failures rather\n"
         "than only tolerating them. Correlation-aware scheduling "
         "(checkpoint_advisor)\nrecovers part of that overhead.\n";
  return 0;
}
