// Failure prediction with a proper time split: train the Section-XI
// predictor on the first two-thirds of a trace and evaluate on the held-out
// final third — the workflow a production deployment would follow (train on
// history, alarm on the live system). Demonstrates trace slicing
// (trace/transform.h), the predictor API and the precision/recall sweep.
#include <iostream>

#include "core/prediction.h"
#include "core/report.h"
#include "synth/generate.h"
#include "trace/transform.h"

int main() {
  using namespace hpcfail;
  using namespace hpcfail::core;
  std::cout << "failure prediction with a train/test time split\n";

  // One busy production system observed for three years.
  synth::Scenario scenario;
  scenario.duration = 3 * kYear;
  auto sys = synth::Group1System("prod", 256, 3 * kYear);
  for (double& r : sys.base_rate_per_hour) r *= 3.0;
  scenario.systems.push_back(std::move(sys));
  const Trace full = synth::GenerateTrace(scenario, 12);

  // Train on the first 2 years, evaluate on the final year.
  const TimeSec split = 2 * kYear;
  const Trace train_trace = SliceTrace(full, {0, split});
  const Trace eval_trace = SliceTrace(full, {split, 3 * kYear});
  std::cout << "train: " << train_trace.num_failures() << " failures; eval: "
            << eval_trace.num_failures() << " failures\n";

  const EventIndex train(train_trace);
  const EventIndex eval(eval_trace);
  const FailurePredictor predictor(train, {});

  std::cout << "\nlearned model (P(node fails within a day | last failure "
               "type)):\n";
  Table model({"last failure", "P(fail next day)", "vs baseline"});
  for (FailureCategory c : AllFailureCategories()) {
    model.AddRow({std::string(ToString(c)),
                  FormatDouble(predictor.conditional(c), 4),
                  FormatDouble(predictor.conditional(c) /
                                   std::max(1e-9, predictor.baseline()), 1) +
                      "x"});
  }
  model.Print(std::cout);

  std::cout << "\noperating curve on the held-out year:\n";
  Table curve({"threshold", "alarms/node-day", "precision", "recall", "F1"});
  for (const PredictionEvaluation& e : SweepPredictor(predictor, eval)) {
    curve.AddRow({FormatDouble(e.threshold, 4),
                  FormatDouble(e.alarm_rate, 4),
                  FormatDouble(e.precision, 3), FormatDouble(e.recall, 3),
                  FormatDouble(e.f1, 3)});
  }
  curve.Print(std::cout);

  std::cout
      << "\nreading: alarms raised in the day after env/net failures catch a\n"
         "disproportionate share of imminent failures — the operational value\n"
         "of the paper's observation that failure *type* predicts follow-up\n"
         "risk (Sections III and XI).\n";
  return 0;
}
