// Quickstart: generate a synthetic LANL-like failure trace, ask the two
// questions at the heart of the paper — how likely is a node to fail in a
// random week, and how likely after it just failed — and save the trace as
// CSV for inspection.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [output-dir]
#include <iostream>

#include "core/report.h"
#include "core/window_analysis.h"
#include "synth/generate.h"
#include "trace/csv.h"

int main(int argc, char** argv) {
  using namespace hpcfail;
  using namespace hpcfail::core;

  // 1. Describe the cluster. Presets mirror the LANL systems the paper
  //    studied; everything is tunable through synth::SystemScenario.
  synth::Scenario scenario;
  scenario.duration = 2 * kYear;
  scenario.systems.push_back(
      synth::Group1System("demo-cluster", /*num_nodes=*/256,
                          /*duration=*/2 * kYear));

  // 2. Generate a reproducible trace (same seed -> same trace).
  const Trace trace = synth::GenerateTrace(scenario, /*seed=*/42);
  std::cout << "generated " << trace.num_failures() << " failures across "
            << trace.systems()[0].num_nodes << " nodes over "
            << scenario.duration / kDay << " days\n";

  // 3. Index the failures and measure conditional window probabilities.
  const EventIndex index(trace);
  const WindowAnalyzer analyzer(index);
  const ConditionalResult week = analyzer.Compare(
      EventFilter::Any(), EventFilter::Any(), Scope::kSameNode, kWeek);

  Table t({"measure", "value"});
  t.AddRow({"P(node fails in a random week)",
            FormatPercent(week.baseline, /*with_ci=*/true)});
  t.AddRow({"P(node fails in the week after a failure)",
            FormatPercent(week.conditional, true)});
  t.AddRow({"factor increase", FormatFactor(week.factor)});
  t.AddRow({"significant at 99%?", week.test.significant_99 ? "yes" : "no"});
  t.Print(std::cout);

  // 4. Failure types are not equal: environmental failures are the
  //    strongest predictors of follow-up failures.
  const ConditionalResult env = analyzer.Compare(
      EventFilter::Of(FailureCategory::kEnvironment), EventFilter::Any(),
      Scope::kSameNode, kWeek);
  std::cout << "after an environmental failure the weekly probability is "
            << FormatPercent(env.conditional) << " ("
            << FormatFactor(env.factor) << " the random week)\n";

  // 5. Persist the trace as CSVs (LANL-like schema) for other tools.
  if (argc > 1) {
    csv::SaveTrace(trace, argv[1]);
    std::cout << "trace written to " << argv[1] << "\n";
  }
  return 0;
}
