// Fleet health report: Sections IV-VI of the paper show that failures skew
// heavily across nodes (the login node especially) and across users. This
// example is a periodic fleet-health job: it flags failure-prone nodes with
// the chi-square machinery, explains *why* they are prone (root-cause
// breakdown + usage), and flags users whose workloads correlate with node
// failures — then round-trips the trace through the CSV layer, as a real
// deployment ingesting logs would.
#include <algorithm>
#include <filesystem>
#include <iostream>

#include "core/node_skew.h"
#include "core/report.h"
#include "core/usage_analysis.h"
#include "core/user_analysis.h"
#include "synth/generate.h"
#include "trace/csv.h"

int main() {
  using namespace hpcfail;
  using namespace hpcfail::core;
  std::cout << "fleet health report\n";

  // Ingest: in production this would be csv::LoadTrace(<log dir>); here we
  // synthesize a system-20-like machine and round-trip it through CSV to
  // exercise the same path.
  synth::Scenario scenario;
  scenario.duration = 2 * kYear;
  scenario.systems.push_back(synth::System20Like(256, 2 * kYear));
  const Trace generated = synth::GenerateTrace(scenario, 99);
  const auto dir =
      (std::filesystem::temp_directory_path() / "hpcfail_fleet").string();
  csv::SaveTrace(generated, dir);
  const Trace trace = csv::LoadTrace(dir);
  std::filesystem::remove_all(dir);
  const SystemId sys = trace.systems()[0].id;
  const EventIndex index(trace);

  // 1. Node skew: who is failing, and is it statistically real?
  const NodeSkewSummary skew = AnalyzeNodeSkew(index, sys);
  std::cout << "\nnodes: mean " << FormatDouble(skew.mean_failures, 1)
            << " failures; max node " << skew.most_failing_node.value
            << " with " << skew.max_failures << " ("
            << FormatDouble(skew.max_over_mean, 1) << "x mean); equal-rate "
            << (skew.equal_rates_test.significant_99 ? "REJECTED"
                                                     : "not rejected")
            << " (p=" << FormatDouble(skew.equal_rates_test.p_value, 4)
            << ")\n";

  // Flag every node above 4x the mean.
  std::vector<int> prone;
  for (std::size_t n = 0; n < skew.failures_per_node.size(); ++n) {
    if (skew.failures_per_node[n] > 4.0 * skew.mean_failures) {
      prone.push_back(static_cast<int>(n));
    }
  }
  Table t({"prone node", "failures", "dominant cause", "util", "#jobs"});
  const UsageAnalysis usage = AnalyzeUsage(index, sys);
  for (int n : prone) {
    const BreakdownComparison b = CompareBreakdown(index, sys, NodeId{n});
    std::size_t dominant = 0;
    for (std::size_t c = 1; c < b.node_percent.size(); ++c) {
      if (b.node_percent[c] > b.node_percent[dominant]) dominant = c;
    }
    t.AddRow({std::to_string(n),
              std::to_string(skew.failures_per_node[static_cast<std::size_t>(n)]),
              std::string(ToString(static_cast<FailureCategory>(dominant))),
              FormatDouble(usage.nodes[static_cast<std::size_t>(n)].utilization, 2),
              std::to_string(usage.nodes[static_cast<std::size_t>(n)].num_jobs)});
  }
  t.Print(std::cout);

  // 2. Usage coupling (Section V).
  std::cout << "usage correlation: r(jobs, failures) = "
            << FormatDouble(usage.jobs_vs_failures.r, 3) << " (excl. top node: "
            << FormatDouble(usage.jobs_vs_failures_excl_top.r, 3) << ")\n";

  // 3. User risk (Section VI): heaviest users with outlier failure rates.
  const UserAnalysis users = AnalyzeUsers(trace, sys, 50);
  std::cout << "user heterogeneity ANOVA: p="
            << FormatDouble(users.rate_heterogeneity.p_value, 5)
            << (users.rate_heterogeneity.significant_99
                    ? " -> users differ significantly\n"
                    : " -> no significant differences\n");
  double mean_rate = 0.0;
  for (const UserFailureStats& u : users.heaviest_users) {
    mean_rate += u.failures_per_proc_day;
  }
  mean_rate /= std::max<std::size_t>(1, users.heaviest_users.size());
  Table ut({"user", "proc-days", "failures/proc-day", "x mean"});
  std::vector<UserFailureStats> risky = users.heaviest_users;
  std::sort(risky.begin(), risky.end(),
            [](const UserFailureStats& a, const UserFailureStats& b) {
              return a.failures_per_proc_day > b.failures_per_proc_day;
            });
  for (std::size_t i = 0; i < 5 && i < risky.size(); ++i) {
    ut.AddRow({std::to_string(risky[i].user.value),
               FormatDouble(risky[i].processor_days, 0),
               FormatDouble(risky[i].failures_per_proc_day, 5),
               FormatDouble(risky[i].failures_per_proc_day /
                                std::max(1e-12, mean_rate), 1)});
  }
  ut.Print(std::cout);
  std::cout << "recommendation: review the top users' node access patterns; "
               "the paper attributes\nthis skew to workloads exercising buggy "
               "code paths or punishing hardware access\npatterns, not to "
               "application bugs (application failures are excluded).\n";
  return 0;
}
