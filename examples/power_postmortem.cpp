// Power-event postmortem: Section VII of the paper quantifies how power
// problems breed hardware failures, storage-software failures and
// unscheduled maintenance. This example is the tool an operator would run
// the morning after a power event: it finds every power problem in a trace,
// quantifies the elevated risk per component, and emits the inspection
// checklist the paper's "lessons learned" recommend (check memory DIMMs and
// node boards after spikes, inspect fans after PSU failures, ...).
#include <algorithm>
#include <iostream>

#include "core/power_analysis.h"
#include "core/report.h"
#include "synth/generate.h"

int main() {
  using namespace hpcfail;
  using namespace hpcfail::core;
  std::cout << "power postmortem: component risk after power problems\n";

  synth::Scenario scenario;
  scenario.duration = 3 * kYear;
  auto sys = synth::Group1System("prod", 256, 3 * kYear);
  sys.power_outage.events_per_year = 2.0;
  sys.power_spike.events_per_year = 4.0;
  scenario.systems.push_back(std::move(sys));
  const Trace trace = synth::GenerateTrace(scenario, 7);
  const EventIndex index(trace);
  const WindowAnalyzer analyzer(index);

  // 1. Inventory of power problems in the log.
  Table inv({"power problem", "records", "most recent (day)"});
  for (PowerProblem p : AllPowerProblems()) {
    const EventFilter f = PowerProblemFilter(p);
    long long count = 0;
    TimeSec latest = 0;
    index.ForEach(f, [&](SystemId, const FailureRecord& r) {
      ++count;
      latest = std::max(latest, r.start);
    });
    inv.AddRow({std::string(ToString(p)), std::to_string(count),
                count > 0 ? std::to_string(latest / kDay) : "-"});
  }
  inv.Print(std::cout);

  // 2. For each power problem, rank components by month-window risk factor
  //    and emit the inspection list.
  for (PowerProblem p : AllPowerProblems()) {
    const auto impacts =
        HardwareComponentImpact(analyzer, PowerProblemFilter(p));
    std::vector<const ComponentImpact*> ranked;
    for (const ComponentImpact& ci : impacts) {
      if (ci.month.test.significant_95 && ci.month.factor > 2.0) {
        ranked.push_back(&ci);
      }
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const ComponentImpact* a, const ComponentImpact* b) {
                return a->month.factor > b->month.factor;
              });
    std::cout << "\nafter a " << ToString(p)
              << ", inspect (month-window risk, highest first):\n";
    if (ranked.empty()) {
      std::cout << "  (no significantly elevated components)\n";
      continue;
    }
    for (const ComponentImpact* ci : ranked) {
      std::cout << "  - " << ci->component << ": "
                << FormatPercent(ci->month.conditional) << " vs "
                << FormatPercent(ci->month.baseline) << " baseline ("
                << FormatFactor(ci->month.factor) << ")\n";
    }
  }

  // 3. Maintenance-load forecast (Section VII.A.2).
  std::cout << "\nunscheduled-maintenance forecast (month after event):\n";
  for (PowerProblem p : AllPowerProblems()) {
    const ConditionalResult m =
        analyzer.MaintenanceAfter(PowerProblemFilter(p), kMonth);
    if (!m.conditional.defined()) continue;
    std::cout << "  - " << ToString(p) << ": "
              << FormatPercent(m.conditional)
              << " of affected nodes need unscheduled maintenance ("
              << FormatFactor(m.factor) << " the random month)\n";
  }

  // 4. Storage-consistency warning (Section VII.B).
  const auto sw = SoftwareComponentImpact(
      analyzer, PowerProblemFilter(PowerProblem::kPowerOutage));
  double storage = 0.0, other = 0.0;
  for (const ComponentImpact& ci : sw) {
    if (ci.component == "dst" || ci.component == "pfs" ||
        ci.component == "cfs") {
      storage += ci.month.conditional.estimate;
    } else {
      other += ci.month.conditional.estimate;
    }
  }
  std::cout << "\nstorage subsystems carry "
            << FormatDouble(100.0 * storage / std::max(1e-9, storage + other), 0)
            << "% of the post-outage software failure probability:\n"
               "verify DST/PFS/CFS consistency before resuming jobs.\n";
  return 0;
}
