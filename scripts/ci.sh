#!/usr/bin/env bash
# CI entry point: the tier-1 verify (full build + ctest) plus a
# ThreadSanitizer build of the streaming, observability, and serve tests —
# the serve subsystem (accept thread + worker pool + session pool) and the
# stream engine's catch-up replay are where a data race would bite first —
# a cache-determinism diff, ASan/UBSan runs of the cache and SIMD-kernel
# suites, a forced-scalar (-DHPCFAIL_SIMD=OFF) build that must answer
# byte-identically, a sharded-session byte-identity diff (SessionSet's
# merged report vs the monolithic session's, both via the CLI and via the
# daemon's sharded=1 endpoint), an hpcfaild end-to-end smoke (concurrent
# load, served bytes vs CLI bytes, /metrics scrape, SIGTERM drain), a
# format-adapter job (checked-in fixture ingest for every registered
# format, a LANL legacy-vs-adapter byte-parity diff, and the adapter fuzz
# suite under ASan/UBSan), a multi-kind artifact gate (warm runs restoring
# the index snapshot and bootstrap replicate table must answer
# byte-identically to the cold run that stored them, monolithic, sharded,
# and over the wire), and a two-sided perf gate against the committed
# BENCH_pr10.json baseline (which also holds the adapter-path LANL ingest
# to >= 0.9x the legacy importer's throughput, the warm shard build via
# index snapshots to <= 0.8x the sub-trace fallback, and the cached
# bootstrap render to <= 0.5x a cold resample).
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"

echo "== tier-1: build + ctest =="
cmake -B build -S .
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

echo "== tsan: streaming + observability + serve tests under ThreadSanitizer =="
# The serve subsystem is the most concurrent code in the repo (accept thread
# + worker pool + session pool + shared metrics registry); its tests and the
# engine single-flight tests run with the race detector live.
cmake -B build-tsan -S . -DHPCFAIL_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target \
  test_stream_index test_stream_parity test_stream_snapshot \
  test_metrics test_obs_integration test_csv_fuzz hpcfail_stream \
  test_serve_protocol test_session_pool test_serve_server \
  test_session_set test_engine_cache test_cache_contention
./build-tsan/tests/test_stream_index
./build-tsan/tests/test_stream_parity
./build-tsan/tests/test_stream_snapshot
./build-tsan/tests/test_metrics
./build-tsan/tests/test_obs_integration
./build-tsan/tests/test_csv_fuzz
./build-tsan/tools/hpcfail_stream --selftest
./build-tsan/tests/test_serve_protocol
./build-tsan/tests/test_session_pool
./build-tsan/tests/test_serve_server
./build-tsan/tests/test_session_set
./build-tsan/tests/test_engine_cache
./build-tsan/tests/test_cache_contention

echo "== cache determinism: warm run must be byte-identical to cold =="
# The artifact cache's core guarantee (DESIGN.md "Engine layer"): a warm
# load can change timing, never results. Run the report cold (fresh cache
# dir), then warm, and require bit-identical stdout; the stderr session
# lines must show store-then-hit or the gate is not actually exercising
# the cache.
CACHE_TMP="$(mktemp -d)"
trap 'rm -rf "$CACHE_TMP"' EXIT
./build/tools/hpcfail_report --synth --scale 0.2 --years 1 --seed 7 \
  --cache-dir "$CACHE_TMP/cache" \
  > "$CACHE_TMP/cold.out" 2> "$CACHE_TMP/cold.err"
./build/tools/hpcfail_report --synth --scale 0.2 --years 1 --seed 7 \
  --cache-dir "$CACHE_TMP/cache" \
  > "$CACHE_TMP/warm.out" 2> "$CACHE_TMP/warm.err"
diff "$CACHE_TMP/cold.out" "$CACHE_TMP/warm.out" \
  || { echo "ci: warm cache output differs from cold" >&2; exit 1; }
grep -q '"cache_stored":true' "$CACHE_TMP/cold.err" \
  || { echo "ci: cold run did not store a cache entry" >&2; exit 1; }
grep -q '"cache_hit":true' "$CACHE_TMP/warm.err" \
  || { echo "ci: warm run did not hit the cache" >&2; exit 1; }

echo "== artifact cache: warm index + bootstrap byte-identity =="
# The multi-kind gate (DESIGN.md "Artifact cache"): run once cold with
# --bootstrap so the trace, the index snapshot, and the bootstrap replicate
# table all land in the cache, then rerun with the trace kind disabled
# (--cache-artifacts index,bootstrap). The warm run regenerates the trace
# from scratch but must restore the index columns and reuse the replicate
# table -- and every report byte, bootstrap CI table included, must match.
# The sharded rerun shares the trace fingerprint, so it must reuse the same
# bootstrap entry and still answer identically.
./build/tools/hpcfail_report --synth --scale 0.2 --years 1 --seed 7 \
  --cache-dir "$CACHE_TMP/artifacts" --bootstrap \
  > "$CACHE_TMP/boot_cold.out" 2> "$CACHE_TMP/boot_cold.err"
grep -q '"index_cache_stored":true' "$CACHE_TMP/boot_cold.err" \
  || { echo "ci: cold run did not store an index snapshot" >&2; exit 1; }
grep -q 'bootstrap cache_hit=false cache_stored=true' \
  "$CACHE_TMP/boot_cold.err" \
  || { echo "ci: cold run did not store a bootstrap table" >&2; exit 1; }
./build/tools/hpcfail_report --synth --scale 0.2 --years 1 --seed 7 \
  --cache-dir "$CACHE_TMP/artifacts" --cache-artifacts index,bootstrap \
  --bootstrap \
  > "$CACHE_TMP/boot_warm.out" 2> "$CACHE_TMP/boot_warm.err"
diff "$CACHE_TMP/boot_cold.out" "$CACHE_TMP/boot_warm.out" \
  || { echo "ci: warm index/bootstrap output differs from cold" >&2; exit 1; }
grep -q '"index_cache_hit":true' "$CACHE_TMP/boot_warm.err" \
  || { echo "ci: warm run did not restore the index snapshot" >&2; exit 1; }
grep -q 'bootstrap cache_hit=true' "$CACHE_TMP/boot_warm.err" \
  || { echo "ci: warm run did not reuse the bootstrap table" >&2; exit 1; }
./build/tools/hpcfail_report --synth --scale 0.2 --years 1 --seed 7 \
  --cache-dir "$CACHE_TMP/artifacts" --cache-artifacts index,bootstrap \
  --sharded --shard-block-systems 1 --bootstrap \
  > "$CACHE_TMP/boot_shard.out" 2> "$CACHE_TMP/boot_shard.err"
diff "$CACHE_TMP/boot_cold.out" "$CACHE_TMP/boot_shard.out" \
  || { echo "ci: sharded warm bootstrap output differs from cold" >&2
       exit 1; }
grep -q 'bootstrap cache_hit=true' "$CACHE_TMP/boot_shard.err" \
  || { echo "ci: sharded run did not reuse the bootstrap table" >&2; exit 1; }

echo "== asan+ubsan: cache paths and SIMD kernels under sanitizers =="
# The cache decodes attacker-ish bytes (truncated/corrupt entries) with
# hand-rolled framing; run the corruption matrix and session tests under
# ASan so an overread in the decode path fails loudly. The SIMD kernel
# parity suite rides along: vector loads with scalar tail handling are
# exactly where an off-by-one reads past a column.
cmake -B build-asan -S . -DHPCFAIL_SANITIZE=address
cmake --build build-asan -j "$JOBS" --target \
  test_engine_cache test_cache_contention test_engine_session \
  test_arg_parser test_simd_kernels test_adapter test_adapter_fuzz
./build-asan/tests/test_engine_cache
./build-asan/tests/test_cache_contention
./build-asan/tests/test_engine_session
./build-asan/tests/test_arg_parser
./build-asan/tests/test_simd_kernels
# The adapter layer parses attacker-ish bytes by design (foreign log files);
# the fuzz suite's corruption matrix runs with ASan live so an overread in
# a line reader fails loudly here, not in production.
./build-asan/tests/test_adapter
./build-asan/tests/test_adapter_fuzz
# UBSan separately: misaligned vector casts and integer overflow in the
# packed (category, subcategory) arithmetic would surface here, not in ASan.
cmake -B build-ubsan -S . -DHPCFAIL_SANITIZE=undefined
cmake --build build-ubsan -j "$JOBS" --target \
  test_simd_kernels test_event_store_soa test_adapter_fuzz
./build-ubsan/tests/test_simd_kernels
./build-ubsan/tests/test_event_store_soa
./build-ubsan/tests/test_adapter_fuzz

echo "== simd-off: forced-scalar build must answer byte-identically =="
# -DHPCFAIL_SIMD=OFF compiles the vector tables out entirely (not just the
# dispatch override): the kernel contracts and the analyses must hold with
# only the scalar reference implementations, and a full report must be
# byte-identical to the SIMD build's.
cmake -B build-nosimd -S . -DHPCFAIL_SIMD=OFF
cmake --build build-nosimd -j "$JOBS" --target \
  test_simd_kernels test_event_store_soa test_window_analysis \
  test_stream_parity hpcfail_report
./build-nosimd/tests/test_simd_kernels
./build-nosimd/tests/test_event_store_soa
./build-nosimd/tests/test_window_analysis
./build-nosimd/tests/test_stream_parity
./build-nosimd/tools/hpcfail_report --synth --scale 0.2 --years 1 --seed 7 \
  --no-cache > "$CACHE_TMP/nosimd.out" 2> /dev/null
./build/tools/hpcfail_report --synth --scale 0.2 --years 1 --seed 7 \
  --no-cache > "$CACHE_TMP/simd.out" 2> /dev/null
diff "$CACHE_TMP/simd.out" "$CACHE_TMP/nosimd.out" \
  || { echo "ci: forced-scalar report differs from SIMD report" >&2; exit 1; }

echo "== sharded byte-identity: SessionSet merged report vs monolithic =="
# The SessionSet contract (DESIGN.md "Sharded sessions"): partitioning the
# fleet into (system-block x time-window) shards and merging the views must
# not change a single output byte. Run the same scenario through a
# non-trivial grid (60-day windows, 3-system blocks -> mid-window failure
# runs and cross-shard follow-up windows) and diff against the monolithic
# report; repeat with a single-system-per-block grid to vary the block axis.
./build/tools/hpcfail_report --synth --scale 0.2 --years 1 --seed 7 \
  --no-cache --sharded --shard-window-days 60 --shard-block-systems 3 \
  > "$CACHE_TMP/sharded.out" 2> /dev/null
diff "$CACHE_TMP/simd.out" "$CACHE_TMP/sharded.out" \
  || { echo "ci: sharded report differs from monolithic report" >&2; exit 1; }
./build/tools/hpcfail_report --synth --scale 0.2 --years 1 --seed 7 \
  --no-cache --sharded --shard-block-systems 1 \
  > "$CACHE_TMP/sharded_blocks.out" 2> /dev/null
diff "$CACHE_TMP/simd.out" "$CACHE_TMP/sharded_blocks.out" \
  || { echo "ci: block-sharded report differs from monolithic" >&2; exit 1; }

echo "== format adapters: fixture ingest + LANL legacy-vs-adapter parity =="
# Every registered format must ingest its checked-in fixture end to end
# (DESIGN.md §11): the BG/Q RAS and syslog samples flow through the batch
# CLI with the exact record/reject counts the fixtures encode, and the LANL
# sample parsed via the adapter registry (both named and auto-sniffed) must
# render a byte-identical report to the legacy --lanl direct path.
./build/tools/hpcfail_report --log tests/data/bgq_ras_sample.csv --no-cache \
  > "$CACHE_TMP/bgq.out" 2> "$CACHE_TMP/bgq.err"
grep -q 'ingested 8 records via bgq_ras, ignored 3, rejected 4' \
  "$CACHE_TMP/bgq.err" \
  || { echo "ci: bgq_ras fixture counts drifted" >&2; exit 1; }
./build/tools/hpcfail_report --log tests/data/syslog_sample.log --no-cache \
  > "$CACHE_TMP/syslog.out" 2> "$CACHE_TMP/syslog.err"
grep -q 'ingested 7 records via syslog, ignored 0, rejected 4' \
  "$CACHE_TMP/syslog.err" \
  || { echo "ci: syslog fixture counts drifted" >&2; exit 1; }
./build/tools/hpcfail_report --lanl tests/data/lanl_sample.csv --no-cache \
  > "$CACHE_TMP/lanl_legacy.out" 2> /dev/null
./build/tools/hpcfail_report --log tests/data/lanl_sample.csv \
  --format lanl_csv --no-cache > "$CACHE_TMP/lanl_adapter.out" 2> /dev/null
diff "$CACHE_TMP/lanl_legacy.out" "$CACHE_TMP/lanl_adapter.out" \
  || { echo "ci: lanl_csv adapter report differs from legacy --lanl" >&2
       exit 1; }
./build/tools/hpcfail_report --log tests/data/lanl_sample.csv --no-cache \
  > "$CACHE_TMP/lanl_auto.out" 2> "$CACHE_TMP/lanl_auto.err"
diff "$CACHE_TMP/lanl_legacy.out" "$CACHE_TMP/lanl_auto.out" \
  || { echo "ci: auto-sniffed LANL report differs from legacy --lanl" >&2
       exit 1; }
grep -q 'format=lanl_csv' "$CACHE_TMP/lanl_auto.err" \
  || { echo "ci: auto-detection did not sniff lanl_csv" >&2; exit 1; }

echo "== service smoke: hpcfaild end to end =="
# Start the daemon on an ephemeral port, drive it with perf_service
# (concurrent clients, zero tolerance for non-shed failures), check the
# served report is byte-identical to the CLI's, scrape /metrics, then
# SIGTERM and require a graceful drain ("stopped" + exit 0).
cmake --build build -j "$JOBS" --target hpcfaild perf_service
./build/tools/hpcfaild --port 0 --no-cache \
  --serve-log "messages=tests/data/syslog_sample.log:syslog" \
  > "$CACHE_TMP/hpcfaild.out" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 50); do
  grep -q '^listening on ' "$CACHE_TMP/hpcfaild.out" 2>/dev/null && break
  sleep 0.1
done
PORT="$(sed -n 's/^listening on .*:\([0-9]*\)$/\1/p' "$CACHE_TMP/hpcfaild.out")"
[ -n "$PORT" ] || { echo "ci: hpcfaild never reported its port" >&2; exit 1; }
./build/bench/perf_service --smoke --connect "127.0.0.1:$PORT" \
  > "$CACHE_TMP/service_smoke.json" \
  || { echo "ci: perf_service smoke failed against hpcfaild" >&2; exit 1; }
./build/bench/perf_service --connect "127.0.0.1:$PORT" \
  --get '/report?scale=0.2&years=1&seed=7' > "$CACHE_TMP/served.out" \
  || { echo "ci: GET /report failed" >&2; exit 1; }
diff "$CACHE_TMP/served.out" "$CACHE_TMP/cold.out" \
  || { echo "ci: served report differs from hpcfail_report's" >&2; exit 1; }
# The daemon's sharded endpoints: /report?sharded=1 must serve the same
# bytes as the monolithic report, and /shards must answer with grid JSON.
./build/bench/perf_service --connect "127.0.0.1:$PORT" \
  --get '/report?scale=0.2&years=1&seed=7&sharded=1&window_days=60&block_systems=3' \
  > "$CACHE_TMP/served_sharded.out" \
  || { echo "ci: GET /report?sharded=1 failed" >&2; exit 1; }
diff "$CACHE_TMP/served_sharded.out" "$CACHE_TMP/cold.out" \
  || { echo "ci: served sharded report differs from monolithic" >&2; exit 1; }
./build/bench/perf_service --connect "127.0.0.1:$PORT" \
  --get '/shards?scale=0.2&years=1&seed=7&window_days=60&block_systems=3' \
  > "$CACHE_TMP/shards.json" \
  || { echo "ci: GET /shards failed" >&2; exit 1; }
grep -q '"num_shards":' "$CACHE_TMP/shards.json" \
  || { echo "ci: /shards response missing shard stats" >&2; exit 1; }
# The adapter surface over the wire: /formats must list every registered
# adapter plus the configured log, and a format=-qualified log query must
# serve the same bytes as the CLI's --log report.
./build/bench/perf_service --connect "127.0.0.1:$PORT" --get /formats \
  > "$CACHE_TMP/formats.json" \
  || { echo "ci: GET /formats failed" >&2; exit 1; }
for name in hpcfail_csv lanl_csv bgq_ras syslog messages; do
  grep -q "\"$name\"" "$CACHE_TMP/formats.json" \
    || { echo "ci: /formats missing $name" >&2; exit 1; }
done
./build/bench/perf_service --connect "127.0.0.1:$PORT" \
  --get '/report?log=messages&format=syslog' \
  > "$CACHE_TMP/served_log.out" \
  || { echo "ci: GET /report?log=messages failed" >&2; exit 1; }
diff "$CACHE_TMP/served_log.out" "$CACHE_TMP/syslog.out" \
  || { echo "ci: served syslog report differs from CLI --log report" >&2
       exit 1; }
# The bootstrap table over the wire: /table/bootstrap must serve the same
# replicate table the CLI renders (the served body leads with the blank
# separator line that precedes the section inside the full report).
./build/bench/perf_service --connect "127.0.0.1:$PORT" \
  --get '/table/bootstrap?scale=0.2&years=1&seed=7' \
  > "$CACHE_TMP/served_boot.out" \
  || { echo "ci: GET /table/bootstrap failed" >&2; exit 1; }
sed -n '/^=== bootstrap confidence/,$p' "$CACHE_TMP/boot_cold.out" \
  > "$CACHE_TMP/cli_boot.out"
diff <(tail -n +2 "$CACHE_TMP/served_boot.out") "$CACHE_TMP/cli_boot.out" \
  || { echo "ci: served bootstrap table differs from CLI's" >&2; exit 1; }
./build/bench/perf_service --connect "127.0.0.1:$PORT" --get /metrics \
  > "$CACHE_TMP/scrape.txt" \
  || { echo "ci: /metrics scrape failed" >&2; exit 1; }
grep -q '^hpcfail_serve_requests_total ' "$CACHE_TMP/scrape.txt" \
  || { echo "ci: scrape missing serve counters" >&2; exit 1; }
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" \
  || { echo "ci: hpcfaild exited non-zero on SIGTERM" >&2; exit 1; }
grep -q '^stopped$' "$CACHE_TMP/hpcfaild.out" \
  || { echo "ci: hpcfaild did not drain cleanly" >&2; exit 1; }

echo "== perf smoke: two-sided gate vs BENCH_pr10.json =="
# Guards the headline numbers against the committed baseline: the serial
# pairwise-matrix time (query kernels) must not be >25% slower, serial
# stream ingest must not drop >25% below the recorded events/sec, and the
# service's warm-query p99 must not more than double (service latency on a
# loaded 1-core host is noisy, so its gate is looser than the kernels').
# Absolute numbers are machine-dependent; the gate compares against a
# baseline recorded on the same host, so only genuine slowdowns trip it.
#
# The session_set phase gates the sharded engine both ways: correctness
# flags (merged queries equal monolithic) must hold, the merged query must
# stay within 1.25x of the monolithic query, and the 4-thread sharded build
# must stay within 1.1x of the monolithic build when the host has >= 4 real
# cores to overlap the shard builds on. On a 1-2 core host the threads
# time-slice and the sharded build pays its extra per-shard scans with no
# parallel payoff, so the absolute bound is unreachable there; the gate
# falls back to a relative band against the recorded baseline ratio (the
# num_cpus field in the JSON says which regime produced each number).
./build/bench/perf_engine --json --seed 2013 --reps 8 \
  > "$CACHE_TMP/perf.json"
./build/bench/perf_stream --json --seed 2013 --reps 8 \
  > "$CACHE_TMP/perf_stream.json"
./build/bench/perf_service --no-cache --seed 2013 \
  > "$CACHE_TMP/perf_service.json" \
  || { echo "ci: perf_service reported request failures" >&2; exit 1; }
python3 - "$CACHE_TMP/perf.json" "$CACHE_TMP/perf_stream.json" \
  "$CACHE_TMP/perf_service.json" BENCH_pr10.json <<'PYEOF'
import json, sys
now_engine = json.load(open(sys.argv[1]))
now_stream = json.load(open(sys.argv[2]))
now_service = json.load(open(sys.argv[3]))
base = json.load(open(sys.argv[4]))
base_engine = base["perf_engine"]
base_stream = base["perf_stream"]
base_service = base["perf_service"]
failed = False
# Side 1: seconds must not grow >25%.
got = now_engine["pairwise_matrix_seconds"]["1"]
want = base_engine["pairwise_matrix_seconds"]["1"]
ratio = got / want if want > 0 else float("inf")
status = "ok" if ratio <= 1.25 else "REGRESSION"
print(f"perf: pairwise_matrix_seconds[1]: {got:.6g}s vs baseline "
      f"{want:.6g}s (x{ratio:.2f}) {status}")
failed |= ratio > 1.25
# Side 2: throughput must not drop >25%.
got = now_stream["ingest_serial_events_per_sec"]
want = base_stream["ingest_serial_events_per_sec"]
ratio = got / want if want > 0 else 0.0
status = "ok" if ratio >= 0.75 else "REGRESSION"
print(f"perf: ingest_serial_events_per_sec: {got:.6g} vs baseline "
      f"{want:.6g} (x{ratio:.2f}) {status}")
failed |= ratio < 0.75
# Side 2b: the adapter ingest phase. The lanl_csv adapter and the legacy
# importer share one row grammar (lanl::ParseLanlRow), so the adapter path
# is held to >= 0.9x legacy throughput within this very run — a dispatch
# layer that costs more than 10% is a regression, whatever the host. The
# per-format rates are informational (recorded for the next baseline).
got = now_stream["lanl_adapter_vs_legacy"]
status = "ok" if got >= 0.9 else "REGRESSION"
print(f"perf: lanl_csv adapter vs legacy importer x{got:.2f} "
      f"(bound >= 0.90) {status}")
failed |= got < 0.9
rates = ", ".join(f"{k}={v:.4g}"
                  for k, v in now_stream["adapter_ingest_lines_per_sec"].items())
print(f"perf: adapter ingest lines/sec: {rates}")
# Side 3: warm service p99 must not more than double; failures must be zero.
got = now_service["warm"]["p99_seconds"]
want = base_service["warm"]["p99_seconds"]
ratio = got / want if want > 0 else float("inf")
status = "ok" if ratio <= 2.0 else "REGRESSION"
print(f"perf: service warm p99: {got:.6g}s vs baseline {want:.6g}s "
      f"(x{ratio:.2f}) {status}")
failed |= ratio > 2.0
for phase in ("warm", "cold"):
    if now_service[phase]["failed"] != 0:
        print(f"perf: service {phase} phase had "
              f"{now_service[phase]['failed']} failed requests REGRESSION")
        failed = True
# Side 4: the sharded SessionSet. Correctness flags are hard failures;
# the merged-query ratio is an absolute bound; the build ratio's bound
# depends on whether this host can actually overlap the 4 shard builds.
now_set = now_engine["session_set"]
base_set = base_engine["session_set"]
for flag in ("conditional_equal", "count_equal"):
    if not now_set[flag]:
        print(f"perf: session_set {flag} is false REGRESSION")
        failed = True
got = now_set["query_ratio"]
status = "ok" if got <= 1.25 else "REGRESSION"
print(f"perf: session_set merged query x{got:.2f} of monolithic "
      f"(bound 1.25) {status}")
failed |= got > 1.25
got = now_set["build_ratio"]
cpus = now_set.get("num_cpus", 0)
if cpus >= 4:
    status = "ok" if got <= 1.10 else "REGRESSION"
    print(f"perf: session_set sharded build x{got:.2f} of monolithic "
          f"(bound 1.10, {cpus} cpus) {status}")
    failed |= got > 1.10
else:
    want = base_set["build_ratio"]
    rel = got / want if want > 0 else float("inf")
    status = "ok" if rel <= 1.25 else "REGRESSION"
    print(f"perf: session_set sharded build x{got:.2f} of monolithic vs "
          f"baseline x{want:.2f} (rel x{rel:.2f}, {cpus} cpus: no parallel "
          f"payoff, relative band) {status}")
    failed |= rel > 1.25
got = now_set["sharded_build_seconds"]
want = base_set["sharded_build_seconds"]
ratio = got / want if want > 0 else float("inf")
status = "ok" if ratio <= 1.5 else "REGRESSION"
print(f"perf: session_set sharded build {got:.6g}s vs baseline "
      f"{want:.6g}s (x{ratio:.2f}) {status}")
failed |= ratio > 1.5
# Side 5: the multi-kind artifact cache. Warm restores must actually hit
# (the flags are hard failures), a warm SessionSet shard build via index
# snapshots must beat the sub-trace-deserialize fallback by >= 20%, and a
# cached bootstrap table must cost <= half a cold resample (in practice it
# is ~100x cheaper; 0.5 leaves room for tiny-table noise).
art = now_engine["artifacts"]
for flag in ("index_warm_cache_hit", "bootstrap_warm_cache_hit",
             "bootstrap_equal"):
    if not art[flag]:
        print(f"perf: artifacts {flag} is false REGRESSION")
        failed = True
if art["shard_warm_hits"] <= 0:
    print("perf: artifacts shard warm build hit no cache entries REGRESSION")
    failed = True
got = art["shard_index_warm_ratio"]
status = "ok" if got <= 0.8 else "REGRESSION"
print(f"perf: shard build via index snapshot x{got:.2f} of sub-trace warm "
      f"(bound 0.80) {status}")
failed |= got > 0.8
got = art["bootstrap_warm_ratio"]
status = "ok" if got <= 0.5 else "REGRESSION"
print(f"perf: bootstrap cached render x{got:.3f} of cold resample "
      f"(bound 0.50) {status}")
failed |= got > 0.5
if "query_phase_seconds" in now_engine:
    q = now_engine["query_phase_seconds"]
    print(f"perf: query_phase total {q['total']:.6g}s "
          f"(fig12 pairwise {q['fig12_pairwise']:.6g}s)")
if "kernel_seconds" in now_engine:
    level = now_engine.get("simd_level", "?")
    ks = ", ".join(f"{k}={v:.3g}s"
                   for k, v in now_engine["kernel_seconds"].items())
    print(f"perf: simd_level={level} kernels: {ks}")
sys.exit(1 if failed else 0)
PYEOF

echo "== obs-off: compile with instrumentation disabled =="
# The HPCFAIL_OBS=OFF path must keep compiling (the macros stub every
# mutator); run the two suites that assert the disabled-path semantics.
cmake -B build-noobs -S . -DHPCFAIL_OBS=OFF
cmake --build build-noobs -j "$JOBS" --target \
  test_metrics test_obs_integration hpcfail_report hpcfail_stream
./build-noobs/tests/test_metrics
./build-noobs/tests/test_obs_integration

echo "ci: all green"
