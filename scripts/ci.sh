#!/usr/bin/env bash
# CI entry point: the tier-1 verify (full build + ctest) plus a
# ThreadSanitizer build of the streaming tests — the stream engine runs its
# catch-up replay on the thread pool, so its tests are the ones a data race
# would bite first.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"

echo "== tier-1: build + ctest =="
cmake -B build -S .
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

echo "== tsan: streaming + observability tests under ThreadSanitizer =="
cmake -B build-tsan -S . -DHPCFAIL_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target \
  test_stream_index test_stream_parity test_stream_snapshot \
  test_metrics test_obs_integration test_csv_fuzz hpcfail_stream
./build-tsan/tests/test_stream_index
./build-tsan/tests/test_stream_parity
./build-tsan/tests/test_stream_snapshot
./build-tsan/tests/test_metrics
./build-tsan/tests/test_obs_integration
./build-tsan/tests/test_csv_fuzz
./build-tsan/tools/hpcfail_stream --selftest

echo "== cache determinism: warm run must be byte-identical to cold =="
# The artifact cache's core guarantee (DESIGN.md "Engine layer"): a warm
# load can change timing, never results. Run the report cold (fresh cache
# dir), then warm, and require bit-identical stdout; the stderr session
# lines must show store-then-hit or the gate is not actually exercising
# the cache.
CACHE_TMP="$(mktemp -d)"
trap 'rm -rf "$CACHE_TMP"' EXIT
./build/tools/hpcfail_report --synth --scale 0.2 --years 1 --seed 7 \
  --cache-dir "$CACHE_TMP/cache" \
  > "$CACHE_TMP/cold.out" 2> "$CACHE_TMP/cold.err"
./build/tools/hpcfail_report --synth --scale 0.2 --years 1 --seed 7 \
  --cache-dir "$CACHE_TMP/cache" \
  > "$CACHE_TMP/warm.out" 2> "$CACHE_TMP/warm.err"
diff "$CACHE_TMP/cold.out" "$CACHE_TMP/warm.out" \
  || { echo "ci: warm cache output differs from cold" >&2; exit 1; }
grep -q '"cache_stored":true' "$CACHE_TMP/cold.err" \
  || { echo "ci: cold run did not store a cache entry" >&2; exit 1; }
grep -q '"cache_hit":true' "$CACHE_TMP/warm.err" \
  || { echo "ci: warm run did not hit the cache" >&2; exit 1; }

echo "== asan: cache load/store path under AddressSanitizer =="
# The cache decodes attacker-ish bytes (truncated/corrupt entries) with
# hand-rolled framing; run the corruption matrix and session tests under
# ASan so an overread in the decode path fails loudly.
cmake -B build-asan -S . -DHPCFAIL_SANITIZE=address
cmake --build build-asan -j "$JOBS" --target \
  test_engine_cache test_engine_session test_arg_parser
./build-asan/tests/test_engine_cache
./build-asan/tests/test_engine_session
./build-asan/tests/test_arg_parser

echo "== perf smoke: query kernels must not regress vs BENCH_baseline.json =="
# Guards the columnar store's headline numbers: run the perf_engine JSON
# bench (same scale/seed the baseline was recorded with) and fail on a >25%
# regression of the serial pairwise-matrix time. Absolute numbers are
# machine-dependent; the gate compares against a baseline recorded on the
# same host, so only genuine slowdowns trip it.
./build/bench/perf_engine --json --seed 2013 --reps 8 \
  > "$CACHE_TMP/perf.json"
python3 - "$CACHE_TMP/perf.json" BENCH_baseline.json <<'PYEOF'
import json, sys
now = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))["perf_engine"]
checks = [
    ("pairwise_matrix_seconds[1]",
     now["pairwise_matrix_seconds"]["1"],
     base["pairwise_matrix_seconds"]["1"]),
]
failed = False
for name, got, want in checks:
    ratio = got / want if want > 0 else float("inf")
    status = "ok" if ratio <= 1.25 else "REGRESSION"
    print(f"perf: {name}: {got:.6g}s vs baseline {want:.6g}s "
          f"(x{ratio:.2f}) {status}")
    failed |= ratio > 1.25
if "query_phase_seconds" in now:
    q = now["query_phase_seconds"]
    print(f"perf: query_phase total {q['total']:.6g}s "
          f"(fig12 pairwise {q['fig12_pairwise']:.6g}s)")
sys.exit(1 if failed else 0)
PYEOF

echo "== obs-off: compile with instrumentation disabled =="
# The HPCFAIL_OBS=OFF path must keep compiling (the macros stub every
# mutator); run the two suites that assert the disabled-path semantics.
cmake -B build-noobs -S . -DHPCFAIL_OBS=OFF
cmake --build build-noobs -j "$JOBS" --target \
  test_metrics test_obs_integration hpcfail_report hpcfail_stream
./build-noobs/tests/test_metrics
./build-noobs/tests/test_obs_integration

echo "ci: all green"
