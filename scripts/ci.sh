#!/usr/bin/env bash
# CI entry point: the tier-1 verify (full build + ctest) plus a
# ThreadSanitizer build of the streaming tests — the stream engine runs its
# catch-up replay on the thread pool, so its tests are the ones a data race
# would bite first.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"

echo "== tier-1: build + ctest =="
cmake -B build -S .
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

echo "== tsan: streaming + observability tests under ThreadSanitizer =="
cmake -B build-tsan -S . -DHPCFAIL_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target \
  test_stream_index test_stream_parity test_stream_snapshot \
  test_metrics test_obs_integration test_csv_fuzz hpcfail_stream
./build-tsan/tests/test_stream_index
./build-tsan/tests/test_stream_parity
./build-tsan/tests/test_stream_snapshot
./build-tsan/tests/test_metrics
./build-tsan/tests/test_obs_integration
./build-tsan/tests/test_csv_fuzz
./build-tsan/tools/hpcfail_stream --selftest

echo "== obs-off: compile with instrumentation disabled =="
# The HPCFAIL_OBS=OFF path must keep compiling (the macros stub every
# mutator); run the two suites that assert the disabled-path semantics.
cmake -B build-noobs -S . -DHPCFAIL_OBS=OFF
cmake --build build-noobs -j "$JOBS" --target \
  test_metrics test_obs_integration hpcfail_report hpcfail_stream
./build-noobs/tests/test_metrics
./build-noobs/tests/test_obs_integration

echo "ci: all green"
