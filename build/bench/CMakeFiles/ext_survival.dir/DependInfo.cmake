
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_survival.cpp" "bench/CMakeFiles/ext_survival.dir/ext_survival.cpp.o" "gcc" "bench/CMakeFiles/ext_survival.dir/ext_survival.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synth/CMakeFiles/hpcfail_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hpcfail_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hpcfail_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hpcfail_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hpcfail_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
