# ctest helper: hpcfail_report --profile must exit 0 and print the stage
# timing table (the header prints even in a -DHPCFAIL_OBS=OFF build).
execute_process(
  COMMAND ${REPORT_BIN} --profile --synth --scale 0.1 --years 0.5 --seed 1
          --no-cache
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "hpcfail_report --profile failed (rc=${rc}): ${err}")
endif()
if(NOT out MATCHES "=== stage timings ===")
  message(FATAL_ERROR "no stage-timing table in --profile output:\n${out}")
endif()
