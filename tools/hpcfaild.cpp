// hpcfaild: the analysis daemon. Serves the figure/table queries of
// hpcfail_report over TCP — a line protocol for scripts (`REPORT scale=0.5`)
// and an HTTP/1.1 GET mapping for curl and Prometheus (`/report`, `/metrics`,
// `/healthz`). Responses are byte-identical to the CLI for the same
// scenario + seed: both sit on engine::RenderReport over a shared
// AnalysisSession.
//
//   hpcfaild --port 8080 &
//   curl 'http://127.0.0.1:8080/report?scale=0.5&years=1'
//   curl 'http://127.0.0.1:8080/metrics'
//
// Lifecycle: prints `listening on <host>:<port>` once the socket is bound
// (port 0 = ephemeral, the printed line is how scripts learn the real one),
// then blocks until SIGTERM/SIGINT. On signal it drains gracefully — stops
// accepting, finishes every admitted request, joins all threads — and, with
// --metrics-out, flushes a final Prometheus snapshot before exiting 0.
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "engine/arg_parser.h"
#include "engine/session.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "trace/adapter.h"

namespace {

// Self-pipe signal bridge: handlers may only write a byte; the main thread
// polls the read end. Async-signal-safe by construction.
int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  const char b = 's';
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &b, 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hpcfail;

  serve::ServerConfig config;
  engine::StandardOptions std_opts;
  std::string metrics_out;
  std::string serve_logs;
  std::uint64_t queue_depth = config.queue_depth;
  std::uint64_t pool_capacity = config.pool_capacity;
  std::uint64_t deadline_ms =
      static_cast<std::uint64_t>(config.default_deadline_ms);
  std::uint64_t idle_timeout_ms =
      static_cast<std::uint64_t>(config.idle_timeout_ms);
  std::uint64_t set_budget_mb = 0;

  engine::ArgParser parser(
      "hpcfaild",
      "Failure-analysis daemon: serves hpcfail_report figures/tables over a "
      "line-delimited TCP protocol and HTTP GET. Drains gracefully on "
      "SIGTERM.");
  parser.AddString("host", &config.host, "listen address");
  parser.AddInt("port", &config.port,
                "listen port (0 = ephemeral; the bound port is printed)");
  parser.AddInt("workers", &config.workers, "request worker threads");
  parser.AddUint64("queue-depth", &queue_depth,
                   "bounded admission queue; beyond this connections are "
                   "answered 503 and closed");
  parser.AddUint64("pool-capacity", &pool_capacity,
                   "max resident analysis sessions (LRU-evicted beyond)");
  parser.AddUint64("deadline-ms", &deadline_ms,
                   "default per-request deadline (0 = none; requests may "
                   "override with deadline_ms=)");
  parser.AddUint64("idle-timeout-ms", &idle_timeout_ms,
                   "close idle line-protocol connections after this long");
  parser.AddFlag("enable-test-endpoints", &config.enable_test_endpoints,
                 "expose SLEEP / /debug/sleep (load tests only)");
  parser.AddDouble("shard-window-days", &config.default_window_days,
                   "default start-time window for sharded queries "
                   "(SHARDS / sharded=1; 0 = one window)");
  parser.AddInt("shard-block-systems", &config.default_block_systems,
                "default systems per shard block for sharded queries "
                "(0 = one block)");
  parser.AddUint64("shard-budget-mb", &set_budget_mb,
                   "per-SessionSet resident shard budget in MiB; cold "
                   "shards are LRU-evicted beyond it (0 = unlimited)");
  parser.AddString("serve-log", &serve_logs,
                   "serve file-backed logs: NAME=PATH[:FORMAT], "
                   "comma-separated (FORMAT defaults to auto-detect; query "
                   "with log=NAME, list with FORMATS / GET /formats)");
  parser.AddString("metrics-out", &metrics_out,
                   "write a final Prometheus snapshot here on shutdown");
  engine::AddStandardOptions(parser, &std_opts);
  parser.ParseOrExit(argc, argv);
  engine::ApplyStandardOptions(std_opts);

  config.queue_depth = static_cast<std::size_t>(queue_depth);
  config.pool_capacity = static_cast<std::size_t>(pool_capacity);
  config.default_deadline_ms = static_cast<std::int64_t>(deadline_ms);
  config.idle_timeout_ms = static_cast<std::int64_t>(idle_timeout_ms);
  config.session = engine::MakeSessionOptions(std_opts);
  config.set_memory_budget_bytes =
      static_cast<std::size_t>(set_budget_mb) * 1024 * 1024;

  // --serve-log NAME=PATH[:FORMAT],NAME=PATH[:FORMAT],...
  // (one flag, comma-separated: ArgParser flags are single-valued).
  if (!serve_logs.empty()) {
    std::size_t start = 0;
    while (start <= serve_logs.size()) {
      std::size_t comma = serve_logs.find(',', start);
      if (comma == std::string::npos) comma = serve_logs.size();
      const std::string entry = serve_logs.substr(start, comma - start);
      start = comma + 1;
      if (entry.empty()) continue;
      const std::size_t eq = entry.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == entry.size()) {
        std::cerr << "hpcfaild: --serve-log entry '" << entry
                  << "' is not NAME=PATH[:FORMAT]\n";
        return 2;
      }
      const std::string name = entry.substr(0, eq);
      std::string path = entry.substr(eq + 1);
      serve::ServeLogSpec spec;
      // The FORMAT suffix is the text after the LAST colon, and only when
      // it names a known adapter or "auto" — so absolute paths with
      // colons in them still parse.
      const std::size_t colon = path.rfind(':');
      if (colon != std::string::npos) {
        const std::string suffix = path.substr(colon + 1);
        if (suffix == "auto" ||
            hpcfail::trace::FindAdapter(suffix) != nullptr) {
          spec.format = suffix;
          path.resize(colon);
        }
      }
      if (path.empty()) {
        std::cerr << "hpcfaild: --serve-log entry '" << entry
                  << "' has an empty path\n";
        return 2;
      }
      spec.path = path;
      if (!config.logs.emplace(name, std::move(spec)).second) {
        std::cerr << "hpcfaild: duplicate --serve-log name '" << name
                  << "'\n";
        return 2;
      }
    }
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::cerr << "hpcfaild: pipe: " << std::strerror(errno) << "\n";
    return 1;
  }
  struct sigaction sa {};
  sa.sa_handler = OnSignal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  serve::Server server(config);
  try {
    server.Start();
  } catch (const std::exception& e) {
    std::cerr << "hpcfaild: " << e.what() << "\n";
    return 1;
  }

  // The contract with scripts: one line, flushed, with the real port.
  std::cout << "listening on " << config.host << ":" << server.port()
            << std::endl;

  // Block until a drain signal arrives on the self-pipe.
  pollfd pfd{g_signal_pipe[0], POLLIN, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, -1);
    if (rc > 0) break;
    if (rc < 0 && errno != EINTR) break;
  }
  char drainbuf[16];
  [[maybe_unused]] const ssize_t n =
      ::read(g_signal_pipe[0], drainbuf, sizeof(drainbuf));

  std::cout << "draining" << std::endl;
  server.Shutdown();

  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (out) {
      out << obs::PrometheusText(obs::MetricsRegistry::Global().Snapshot());
    } else {
      std::cerr << "hpcfaild: cannot write " << metrics_out << "\n";
      return 1;
    }
  }
  std::cout << "stopped" << std::endl;
  return 0;
}
