# ctest helper: hpcfail_stream --metrics-out must write a Prometheus text
# file and emit registry-snapshot JSON lines on stdout.
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
  COMMAND ${STREAM_BIN} --make-demo ${WORK_DIR}/demo --scale 0.1 --years 0.5
          --seed 1 --cache-dir ${WORK_DIR}/cache
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "hpcfail_stream --make-demo failed (rc=${rc}): ${err}")
endif()

execute_process(
  COMMAND ${STREAM_BIN} --trace ${WORK_DIR}/demo
          --cache-dir ${WORK_DIR}/cache
          --metrics-out ${WORK_DIR}/metrics.prom
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "hpcfail_stream run failed (rc=${rc}): ${err}")
endif()

# stdout: one registry snapshot JSON object per metrics interval.
if(NOT out MATCHES "\"counters\"")
  message(FATAL_ERROR "stdout is not registry-snapshot JSON:\n${out}")
endif()

if(NOT EXISTS ${WORK_DIR}/metrics.prom)
  message(FATAL_ERROR "--metrics-out did not create metrics.prom")
endif()
file(READ ${WORK_DIR}/metrics.prom prom)
if(NOT prom MATCHES "# TYPE hpcfail_stream_ingested_total counter")
  message(FATAL_ERROR "metrics.prom lacks the exposition preamble:\n${prom}")
endif()
if(NOT prom MATCHES "\nhpcfail_stream_ingested_total ")
  message(FATAL_ERROR "metrics.prom lacks the ingested counter:\n${prom}")
endif()
