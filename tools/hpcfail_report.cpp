// hpcfail_report: one-shot analysis report over a failure trace.
//
//   hpcfail_report --synth [scale] [years] [seed]   # synthetic trace
//   hpcfail_report --trace <dir>                    # CSV trace directory
//   hpcfail_report --lanl <failures.csv> [nodes-per-system]
//                                                   # raw LANL failure log
//
// `--threads N` (anywhere on the command line) sets the worker count for
// the parallel analysis kernels; the default is the hardware concurrency
// and N=1 forces the serial path. Results are identical either way.
//
// `--profile` (anywhere on the command line) appends a stage-timing table
// (ingest, sort, index_build, window_query, bootstrap, ...) collected by
// the observability span tracer while the report ran.
//
// Prints, per system: record counts, failure-rate summary, the same-node
// correlation headline, root-cause breakdown, node skew, downtime and
// availability, inter-arrival Weibull shape — and, where job/temperature
// logs exist, the usage and user analyses. This is the tool an operator
// would point at their own logs.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/downtime.h"
#include "core/parallel.h"
#include "core/interarrival.h"
#include "core/node_skew.h"
#include "core/power_analysis.h"
#include "core/report.h"
#include "core/usage_analysis.h"
#include "core/user_analysis.h"
#include "core/window_analysis.h"
#include "obs/span.h"
#include "synth/generate.h"
#include "trace/csv.h"
#include "synth/scenario_config.h"
#include "trace/lanl_import.h"

namespace {

using namespace hpcfail;
using namespace hpcfail::core;

Trace LoadLanl(const std::string& path, int nodes_per_system) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  const lanl::ImportResult imported = lanl::ImportFailures(is, {});
  std::cerr << "imported " << imported.failures.size() << " failures, skipped "
            << imported.skipped.size() << " rows\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, imported.skipped.size());
       ++i) {
    std::cerr << "  line " << imported.skipped[i].line << ": "
              << imported.skipped[i].reason << "\n";
  }
  lanl::AssembleResult assembled =
      lanl::AssembleTrace(imported, nodes_per_system);
  if (assembled.dropped_out_of_range > 0) {
    std::cerr << "dropped " << assembled.dropped_out_of_range
              << " failures with node id >= " << nodes_per_system
              << " (pass 0 or omit nodes-per-system to auto-size each system"
                 " from its log)\n";
  }
  return std::move(assembled.trace);
}

void Report(const Trace& trace) {
  const EventIndex idx(trace);
  const WindowAnalyzer analyzer(idx);

  std::cout << "=== trace overview ===\n";
  Table overview({"system", "group", "nodes", "days", "failures",
                  "fails/node-yr", "availability"});
  for (const SystemConfig& s : trace.systems()) {
    const auto fails = trace.FailuresOfSystem(s.id).size();
    const double years =
        static_cast<double>(s.observed.duration()) / kYear;
    const DowntimeAnalysis down = AnalyzeDowntime(idx, s.id);
    overview.AddRow(
        {s.name, std::string(ToString(s.group)), std::to_string(s.num_nodes),
         std::to_string(s.observed.duration() / kDay), std::to_string(fails),
         FormatDouble(years > 0 ? fails / (years * s.num_nodes) : 0.0, 2),
         FormatDouble(down.availability, 4)});
  }
  overview.Print(std::cout);

  std::cout << "\n=== failure correlations (all systems pooled) ===\n";
  Table corr({"measure", "P(random)", "P(conditional)", "factor", "sig"});
  for (const auto& [label, window] :
       {std::pair{"same node, next day", kDay},
        {"same node, next week", kWeek}}) {
    const auto r = analyzer.Compare(EventFilter::Any(), EventFilter::Any(),
                                    Scope::kSameNode, window);
    corr.AddRow({label, FormatPercent(r.baseline),
                 FormatPercent(r.conditional), FormatFactor(r.factor),
                 SignificanceMarker(r.test)});
  }
  corr.Print(std::cout);

  std::cout << "\nstrongest follow-up triggers (week window):\n";
  Table trig({"trigger type", "P(any failure | trigger)", "factor", "sig"});
  for (FailureCategory c : AllFailureCategories()) {
    const auto r = analyzer.Compare(EventFilter::Of(c), EventFilter::Any(),
                                    Scope::kSameNode, kWeek);
    if (r.num_triggers < 10) continue;
    trig.AddRow({std::string(ToString(c)), FormatPercent(r.conditional),
                 FormatFactor(r.factor), SignificanceMarker(r.test)});
  }
  trig.Print(std::cout);

  std::cout << "\n=== per-system detail ===\n";
  for (const SystemConfig& s : trace.systems()) {
    const auto failures = trace.FailuresOfSystem(s.id);
    if (failures.size() < 10) continue;
    std::cout << "\n-- " << s.name << " --\n";
    const NodeSkewSummary skew = AnalyzeNodeSkew(idx, s.id);
    std::cout << "node skew: max node " << skew.most_failing_node.value
              << " at " << FormatDouble(skew.max_over_mean, 1)
              << "x the mean; equal rates "
              << (skew.equal_rates_test.significant_99 ? "REJECTED"
                                                       : "not rejected")
              << "\n";
    const DowntimeAnalysis down = AnalyzeDowntime(idx, s.id);
    std::cout << "downtime: median "
              << FormatDouble(down.overall.median_hours, 1) << "h, p90 "
              << FormatDouble(down.overall.p90_hours, 1) << "h; worst node "
              << down.worst_node.value << " at "
              << FormatDouble(down.worst_node_availability, 4)
              << " availability\n";
    try {
      const InterarrivalAnalysis ia = AnalyzeInterarrivals(idx, s.id);
      std::cout << "inter-arrival: best fit "
                << ToString(ia.system_fits.front().distribution)
                << ", per-node Weibull shape "
                << FormatDouble(ia.node_weibull.param1, 2)
                << (ia.node_weibull.param1 < 0.9
                        ? " (clustered: shape < 1)"
                        : "")
                << "\n";
    } catch (const std::exception&) {
      // too few events; skip
    }
  }

  const EnvironmentBreakdown env = BreakdownEnvironment(idx);
  if (env.total > 20) {
    std::cout << "\n=== environmental failures ===\n";
    Table t({"subcategory", "share"});
    for (EnvironmentEvent e : AllEnvironmentEvents()) {
      t.AddRow({std::string(ToString(e)),
                FormatDouble(env.percent[static_cast<std::size_t>(e)], 1) +
                    "%"});
    }
    t.Print(std::cout);
  }

  for (SystemId sys : SystemsWithJobs(trace)) {
    std::cout << "\n=== usage analysis: " << trace.system(sys).name
              << " ===\n";
    const UsageAnalysis u = AnalyzeUsage(idx, sys);
    std::cout << "r(jobs, failures) = " << FormatDouble(u.jobs_vs_failures.r, 3)
              << " (excluding top node: "
              << FormatDouble(u.jobs_vs_failures_excl_top.r, 3) << ")\n";
    const UserAnalysis users = AnalyzeUsers(trace, sys, 50);
    std::cout << "user-rate heterogeneity: LRT p="
              << FormatDouble(users.rate_heterogeneity.p_value, 5) << "\n";
  }
}

// The header prints even in a -DHPCFAIL_OBS=OFF build (with an explanatory
// note instead of rows), so `--profile` output stays greppable either way.
void PrintProfile() {
  std::cout << "\n=== stage timings ===\n";
  const std::vector<obs::SpanAggregate> stages =
      obs::SpanTracer::Global().Aggregates();
  if (!obs::kEnabled) {
    std::cout << "(instrumentation compiled out: built with -DHPCFAIL_OBS=OFF)\n";
    return;
  }
  Table t({"stage", "calls", "total_ms", "mean_ms", "min_ms", "max_ms"});
  for (const obs::SpanAggregate& a : stages) {
    const double mean =
        a.count > 0 ? a.total_seconds / static_cast<double>(a.count) : 0.0;
    t.AddRow({a.stage, std::to_string(a.count),
              FormatDouble(a.total_seconds * 1e3, 3),
              FormatDouble(mean * 1e3, 3), FormatDouble(a.min_seconds * 1e3, 3),
              FormatDouble(a.max_seconds * 1e3, 3)});
  }
  t.Print(std::cout);
}

}  // namespace

int main(int argc, char** raw_argv) {
  try {
    // Strip `--threads N` / `--profile` wherever they appear; the
    // remaining positional arguments keep their old meanings.
    bool profile = false;
    std::vector<char*> args;
    for (int i = 0; i < argc; ++i) {
      if (std::strcmp(raw_argv[i], "--profile") == 0) {
        profile = true;
        continue;
      }
      if (std::strcmp(raw_argv[i], "--threads") == 0) {
        if (i + 1 >= argc) {
          std::cerr << "error: --threads requires a value\n";
          return 2;
        }
        char* end = nullptr;
        const long n = std::strtol(raw_argv[++i], &end, 10);
        if (end == raw_argv[i] || *end != '\0' || n < 0) {
          std::cerr << "error: --threads expects a non-negative integer, got '"
                    << raw_argv[i] << "'\n";
          return 2;
        }
        core::SetDefaultThreadCount(static_cast<int>(n));
        continue;
      }
      args.push_back(raw_argv[i]);
    }
    argc = static_cast<int>(args.size());
    char** argv = args.data();

    if (argc >= 2 && std::strcmp(argv[1], "--trace") == 0 && argc >= 3) {
      Report(hpcfail::csv::LoadTrace(argv[2]));
    } else if (argc >= 2 && std::strcmp(argv[1], "--lanl") == 0 && argc >= 3) {
      // nodes-per-system omitted or 0: auto-size from the log.
      Report(LoadLanl(argv[2], argc >= 4 ? std::atoi(argv[3]) : 0));
    } else if (argc >= 2 && std::strcmp(argv[1], "--scenario") == 0 &&
               argc >= 3) {
      const std::uint64_t seed = argc >= 4
                                     ? std::strtoull(argv[3], nullptr, 10)
                                     : 1;
      Report(hpcfail::synth::GenerateTrace(
          hpcfail::synth::LoadScenarioConfigFile(argv[2]), seed));
    } else if (argc >= 2 && std::strcmp(argv[1], "--synth") == 0) {
      const double scale = argc >= 3 ? std::atof(argv[2]) : 0.5;
      const double years = argc >= 4 ? std::atof(argv[3]) : 2.0;
      const std::uint64_t seed = argc >= 5
                                     ? std::strtoull(argv[4], nullptr, 10)
                                     : 1;
      Report(hpcfail::synth::GenerateTrace(
          hpcfail::synth::LanlLikeScenario(
              scale, static_cast<hpcfail::TimeSec>(years * hpcfail::kYear)),
          seed));
    } else {
      std::cerr << "usage:\n"
                << "  hpcfail_report [--threads N] [--profile] --synth"
                   " [scale] [years] [seed]\n"
                << "  hpcfail_report [--threads N] [--profile] --scenario"
                   " <config-file> [seed]\n"
                << "  hpcfail_report [--threads N] [--profile] --trace"
                   " <csv-trace-dir>\n"
                << "  hpcfail_report [--threads N] [--profile] --lanl"
                   " <failures.csv> [nodes/system]\n";
      return 2;
    }
    if (profile) PrintProfile();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
