// hpcfail_report: one-shot analysis report over a failure trace.
//
//   hpcfail_report --synth [--scale X] [--years Y] [--seed S]
//   hpcfail_report --scenario <config-file> [--seed S]
//   hpcfail_report --trace <csv-trace-dir>
//   hpcfail_report --lanl <failures.csv> [--nodes-per-system N]
//   hpcfail_report --log <file> [--format auto|lanl_csv|bgq_ras|syslog|...]
//   hpcfail_report --checkpoint <snapshot> --trace <csv-trace-dir>
//                  [--tolerance S] [--window S]
//
// Every mode is an engine::AnalysisSession: the trace is fingerprinted,
// probed in the content-addressed artifact cache, and acquired only on a
// miss — a second run over the same inputs loads the cached binary trace
// and restores the prebuilt index snapshot instead of regenerating.
// `--no-cache` bypasses the cache, `--cache-dir` relocates it,
// `--cache-artifacts trace,index,bootstrap` selects kinds, and
// `--cache-budget-mb` bounds its size. The session summary (hit/miss,
// load time) goes to stderr so stdout stays identical cold vs warm.
//
// `--bootstrap` appends per-system bootstrap confidence intervals for
// mean/median interarrival time (--bootstrap-resamples/--bootstrap-seed
// tune it); the replicate tables ride the artifact cache under the trace
// fingerprint, so reruns and the daemon's /table/bootstrap endpoint
// decode one entry instead of resampling.
//
// The --checkpoint mode replays a `hpcfail_stream --checkpoint` snapshot
// into a batch trace (systems from the --trace dir) and reports on it —
// the post-incident path from a live stream to the full batch analysis.
//
// `--threads N` sets the worker count for the parallel analysis kernels;
// the default is the hardware concurrency and N=1 forces the serial path.
// Results are identical either way. `--profile` appends a stage-timing
// table (ingest, sort, index_build, window_query, bootstrap, ...) collected
// by the observability span tracer while the report ran. `--json` prints
// the session stats object to stdout instead of the human report. Unknown
// flags are rejected with exit code 2.
//
// Prints, per system: record counts, failure-rate summary, the same-node
// correlation headline, root-cause breakdown, node skew, downtime and
// availability, inter-arrival Weibull shape — and, where job/temperature
// logs exist, the usage and user analyses. This is the tool an operator
// would point at their own logs.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/parallel.h"
#include "core/report.h"
#include "engine/bootstrap_table.h"
#include "engine/report_render.h"
#include "engine/session.h"
#include "engine/session_set.h"
#include "obs/span.h"
#include "synth/scenario.h"
#include "synth/scenario_config.h"

namespace {

using namespace hpcfail;
using namespace hpcfail::core;

// The header prints even in a -DHPCFAIL_OBS=OFF build (with an explanatory
// note instead of rows), so `--profile` output stays greppable either way.
void PrintProfile() {
  std::cout << "\n=== stage timings ===\n";
  const std::vector<obs::SpanAggregate> stages =
      obs::SpanTracer::Global().Aggregates();
  if (!obs::kEnabled) {
    std::cout << "(instrumentation compiled out: built with -DHPCFAIL_OBS=OFF)\n";
    return;
  }
  Table t({"stage", "calls", "total_ms", "mean_ms", "min_ms", "max_ms"});
  for (const obs::SpanAggregate& a : stages) {
    const double mean =
        a.count > 0 ? a.total_seconds / static_cast<double>(a.count) : 0.0;
    t.AddRow({a.stage, std::to_string(a.count),
              FormatDouble(a.total_seconds * 1e3, 3),
              FormatDouble(mean * 1e3, 3), FormatDouble(a.min_seconds * 1e3, 3),
              FormatDouble(a.max_seconds * 1e3, 3)});
  }
  t.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    engine::StandardOptions std_opts;
    bool synth = false;
    bool profile = false;
    std::string scenario_file, trace_dir, lanl_file, checkpoint_file;
    std::string log_file;
    std::string log_format = "auto";
    std::string syslog_rules_file;
    int syslog_base_year = 2004;
    double scale = 0.5;
    double years = 2.0;
    bool bootstrap = false;
    engine::BootstrapOptions bootstrap_opts;
    bool sharded = false;
    double shard_window_days = 0.0;
    int shard_block_systems = 0;
    std::uint64_t shard_budget_mb = 0;
    int nodes_per_system = 0;
    std::uint64_t tolerance = 0;
    std::uint64_t window = static_cast<std::uint64_t>(hpcfail::kWeek);

    engine::ArgParser parser(
        "hpcfail_report",
        "One-shot analysis report over a failure trace. Pick exactly one "
        "source mode: --synth, --scenario, --trace, --lanl, --log, or "
        "--checkpoint (which replays a stream snapshot over --trace's "
        "systems).");
    engine::AddStandardOptions(parser, &std_opts);
    parser.AddFlag("synth", &synth,
                   "synthetic LANL-like trace (--scale/--years/--seed)");
    parser.AddString("scenario", &scenario_file,
                     "generate from this scenario config file");
    parser.AddString("trace", &trace_dir, "CSV trace directory");
    parser.AddString("lanl", &lanl_file, "raw LANL failure log (CSV)");
    parser.AddString("log", &log_file,
                     "any single-file log via the format-adapter registry "
                     "(see --format)");
    parser.AddString("format", &log_format,
                     "--log format: auto (sniffed), hpcfail_csv, lanl_csv, "
                     "bgq_ras, or syslog");
    parser.AddInt("syslog-base-year", &syslog_base_year,
                  "--log syslog: year for RFC 3164 timestamps");
    parser.AddString("syslog-rules", &syslog_rules_file,
                     "--log syslog: template->category rules file "
                     "(\"keyword => category[/subcategory]\" per line, "
                     "checked before the built-ins)");
    parser.AddString("checkpoint", &checkpoint_file,
                     "replay this stream-engine snapshot (systems from "
                     "--trace)");
    parser.AddDouble("scale", &scale, "--synth scenario scale factor");
    parser.AddDouble("years", &years, "--synth simulated duration in years");
    parser.AddInt("nodes-per-system", &nodes_per_system,
                  "--lanl/--log assembly parameter (0 = auto-size from the "
                  "log)");
    parser.AddUint64("tolerance", &tolerance,
                     "--checkpoint replay out-of-order tolerance in seconds");
    parser.AddUint64("window", &window,
                     "--checkpoint replay follow-up window in seconds");
    parser.AddFlag("sharded", &sharded,
                   "analyze through a sharded SessionSet and render the "
                   "merged view (byte-identical to the monolithic report)");
    parser.AddDouble("shard-window-days", &shard_window_days,
                     "shard start-time window width in days (implies "
                     "--sharded; 0 = one window)");
    parser.AddInt("shard-block-systems", &shard_block_systems,
                  "systems per shard block (implies --sharded; 0 = one "
                  "block)");
    parser.AddUint64("shard-budget-mb", &shard_budget_mb,
                     "resident shard budget in MiB, LRU-evicted beyond "
                     "(0 = unlimited)");
    parser.AddFlag("bootstrap", &bootstrap,
                   "append per-system bootstrap confidence intervals for "
                   "interarrival statistics (replicate tables ride the "
                   "artifact cache)");
    parser.AddInt("bootstrap-resamples", &bootstrap_opts.resamples,
                  "--bootstrap replicates per statistic (cache-keyed)");
    parser.AddUint64("bootstrap-seed", &bootstrap_opts.seed,
                     "--bootstrap replicate RNG seed (cache-keyed)");
    parser.AddFlag("profile", &profile,
                   "append the observability stage-timing table");
    parser.ParseOrExit(argc, argv);
    engine::ApplyStandardOptions(std_opts);
    const engine::SessionOptions session_opts =
        engine::MakeSessionOptions(std_opts);

    const int modes = (synth ? 1 : 0) + (scenario_file.empty() ? 0 : 1) +
                      (lanl_file.empty() ? 0 : 1) + (log_file.empty() ? 0 : 1) +
                      (checkpoint_file.empty() ? 0 : 1) +
                      (!trace_dir.empty() && checkpoint_file.empty() ? 1 : 0);
    if (modes != 1) {
      std::cerr << "hpcfail_report: pick exactly one of --synth, --scenario, "
                   "--trace, --lanl, --log, --checkpoint\n"
                << parser.Usage();
      return 2;
    }

    const auto make_source = [&]() -> std::unique_ptr<engine::TraceSource> {
      if (!checkpoint_file.empty()) {
        if (trace_dir.empty()) {
          throw std::runtime_error(
              "--checkpoint needs --trace <dir> for the machine "
              "configuration");
        }
        stream::EngineConfig cfg;
        cfg.stream.reorder_tolerance = static_cast<hpcfail::TimeSec>(tolerance);
        cfg.window.trigger = EventFilter::Any();
        cfg.window.target = EventFilter::Any();
        cfg.window.window = static_cast<hpcfail::TimeSec>(window);
        return engine::MakeCheckpointSource(checkpoint_file, trace_dir, cfg);
      }
      if (!trace_dir.empty()) return engine::MakeCsvDirSource(trace_dir);
      if (!lanl_file.empty()) {
        return engine::MakeLanlSource(lanl_file, nodes_per_system);
      }
      if (!log_file.empty()) {
        hpcfail::trace::AdapterOptions adapter_opts;
        adapter_opts.syslog_base_year = syslog_base_year;
        if (!syslog_rules_file.empty()) {
          std::ifstream rules(syslog_rules_file);
          if (!rules.is_open()) {
            throw std::runtime_error("cannot open --syslog-rules file: " +
                                     syslog_rules_file);
          }
          std::ostringstream buf;
          buf << rules.rdbuf();
          adapter_opts.syslog_rules = buf.str();
        }
        return engine::MakeLogSource(log_file, log_format, adapter_opts,
                                     nodes_per_system);
      }
      if (!scenario_file.empty()) {
        return engine::MakeScenarioSource(
            hpcfail::synth::LoadScenarioConfigFile(scenario_file),
            std_opts.seed);
      }
      return engine::MakeScenarioSource(
          hpcfail::synth::LanlLikeScenario(
              scale, static_cast<hpcfail::TimeSec>(years * hpcfail::kYear)),
          std_opts.seed);
    };

    if (sharded || shard_window_days > 0.0 || shard_block_systems > 0) {
      engine::SessionSetOptions set_opts;
      set_opts.shard.window = static_cast<hpcfail::TimeSec>(
          shard_window_days * static_cast<double>(hpcfail::kDay));
      set_opts.shard.systems_per_block = shard_block_systems;
      set_opts.memory_budget_bytes =
          static_cast<std::size_t>(shard_budget_mb) * 1024 * 1024;
      set_opts.cache = session_opts.cache;
      engine::SessionSet set(make_source(), std::move(set_opts));
      if (std_opts.json) {
        std::cout << set.StatsJson() << "\n";
        std::cerr << "hpcfail_report: session-set " << set.StatsJson() << "\n";
      } else {
        // Merged view first, so the stderr stats describe the built grid.
        const std::shared_ptr<const engine::SessionSet::MergedView> merged =
            set.Merged();
        std::cerr << "hpcfail_report: session-set " << set.StatsJson() << "\n";
        engine::RenderReport(merged->view(), std::cout);
        if (bootstrap) {
          engine::ArtifactCache cache(session_opts.cache);
          const engine::BootstrapRenderStats bs = engine::RenderBootstrapTable(
              merged->view(), set.source_stats().fingerprint, cache,
              bootstrap_opts, std::cout);
          std::cerr << "hpcfail_report: bootstrap cache_hit="
                    << (bs.cache_hit ? "true" : "false") << " cache_stored="
                    << (bs.cache_stored ? "true" : "false") << " ("
                    << bs.diagnostic << ")\n";
        }
      }
    } else {
      const engine::AnalysisSession session =
          engine::AnalysisSession(make_source(), session_opts);
      std::cerr << "hpcfail_report: session " << session.StatsJson() << "\n";
      if (std_opts.json) {
        std::cout << session.StatsJson() << "\n";
      } else {
        engine::RenderReport(session, std::cout);
        if (bootstrap) {
          engine::ArtifactCache cache(session_opts.cache);
          const engine::BootstrapRenderStats bs = engine::RenderBootstrapTable(
              session, session.stats().fingerprint, cache, bootstrap_opts,
              std::cout);
          std::cerr << "hpcfail_report: bootstrap cache_hit="
                    << (bs.cache_hit ? "true" : "false") << " cache_stored="
                    << (bs.cache_stored ? "true" : "false") << " ("
                    << bs.diagnostic << ")\n";
        }
      }
    }
    if (profile) PrintProfile();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
