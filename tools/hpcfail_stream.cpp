// hpcfail_stream: live streaming analysis over a failure log feed.
//
//   hpcfail_stream --trace <csv-trace-dir> [options]
//   hpcfail_stream --selftest
//
// The trace directory provides the machine configuration (systems.csv +
// layout.csv). The failure feed is <dir>/failures.csv by default and can be
// any file in the same schema — or stdin — via --input:
//
//   --input FILE|-       failure feed; "-" = stdin
//   --format NAME        feed format via the adapter registry: auto
//                        (sniffed; stdin buffers the first lines), or
//                        hpcfail_csv | lanl_csv | bgq_ras | syslog
//   --follow             keep tailing the feed for appended rows
//   --tolerance SECONDS  out-of-order tolerance (default 0 = sorted input)
//   --window SECONDS     follow-up window length (default one week)
//   --every N            emit a JSON metrics line every N accepted events
//                        (default 1000)
//   --threads N          worker threads for the catch-up replay (default:
//                        hardware concurrency; 1 forces the serial path)
//   --train DIR          train a hazard predictor on this CSV trace dir and
//                        score every arriving failure against it
//   --predictor-threshold T  alarm threshold (default: learned baseline)
//   --checkpoint FILE    snapshot the stream state at every metrics
//                        emission and at end of feed
//   --restore FILE       restore a snapshot before ingesting (engine must
//                        be configured identically to the saved run)
//   --metrics-out FILE   rewrite FILE (atomically, tmp+rename) with a
//                        Prometheus text snapshot of the metrics registry
//                        at every emission and at end of feed
//
// Plus the engine-standard flags (--threads, --seed, --cache-dir,
// --no-cache, --json, --help); unknown flags exit 2. Trace-directory loads
// (--trace, --train) and --make-demo generation go through
// engine::AnalysisSession, so repeated runs hit the content-addressed
// artifact cache instead of re-parsing/re-generating.
//
// Each metrics line is one JSON snapshot of the process metrics registry
// ({"counters":{...},"gauges":{...},"histograms":{...}}): ingest counters,
// watermark lag, events/sec, the live conditional-vs-baseline window
// probabilities at node/rack/system scope, downtime summary stats, stage
// timing histograms, and the predictor alarm rate when one is attached.
//
// --selftest runs an end-to-end smoke against the batch analyzer (used as a
// ctest entry): stream a synthetic trace out of order, checkpoint/restore
// mid-stream, and require bit-identical window results.
//
// --make-demo DIR (with --scale/--years/--seed) writes a synthetic CSV
// trace directory (LANL-like scenario) and exits — a self-contained way to
// try the streaming pipeline without real logs.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel.h"
#include "core/prediction.h"
#include "core/window_analysis.h"
#include "engine/session.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "stream/engine.h"
#include "synth/generate.h"
#include "synth/scenario.h"
#include "trace/adapter.h"
#include "trace/csv.h"

namespace {

using namespace hpcfail;

struct Options {
  std::string trace_dir;
  std::string input;  // empty = <trace_dir>/failures.csv, "-" = stdin
  std::string format = "auto";  // adapter name, or "auto" to sniff
  std::string syslog_rules_file;
  int syslog_base_year = 2004;
  bool follow = false;
  TimeSec tolerance = 0;
  TimeSec window = kWeek;
  long long every = 1000;
  int threads = 0;
  std::string train_dir;
  double predictor_threshold = -1.0;  // < 0 = use the learned baseline
  std::string checkpoint_path;
  std::string restore_path;
  std::string metrics_out;
  engine::SessionOptions session;
};

// Publishes the engine's live analysis state as gauges in the global
// registry. The emitted line is then exactly the registry snapshot — the
// ingest counters come from the instrumented streaming index itself, so
// there is no hand-rolled JSON to drift out of sync with the engine.
void PublishAnalysisGauges(const stream::StreamEngine& engine,
                           double events_per_sec, bool final) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const auto set = [&reg](const std::string& name, std::string_view help,
                          double v) { reg.GetGauge(name, help).Set(v); };
  const struct {
    const char* name;
    core::Scope scope;
  } kScopes[] = {{"same_node", core::Scope::kSameNode},
                 {"rack_peers", core::Scope::kRackPeers},
                 {"system_peers", core::Scope::kSystemPeers}};
  for (const auto& s : kScopes) {
    const core::ConditionalResult r = engine.tracker().Result(s.scope);
    const std::string prefix = std::string("hpcfail_window_") + s.name;
    set(prefix + "_p_conditional",
        "Live conditional follow-up probability at this scope",
        r.conditional.estimate);
    set(prefix + "_p_baseline",
        "Live random-window baseline probability at this scope",
        r.baseline.estimate);
    set(prefix + "_factor", "Conditional over baseline factor increase",
        r.factor);
    set(prefix + "_triggers", "Completed trigger windows at this scope",
        static_cast<double>(r.num_triggers));
  }
  set("hpcfail_stream_events_per_sec",
      "Accepted events per wall-clock second since the feed opened",
      events_per_sec);
  set("hpcfail_stream_pending_windows",
      "Follow-up windows still open past the watermark",
      static_cast<double>(engine.tracker().pending_windows()));
  set("hpcfail_stream_watermark_seconds",
      "Release watermark in trace time (NaN until the first event)",
      engine.watermark() == stream::IncrementalEventIndex::kNoWatermark
          ? std::numeric_limits<double>::quiet_NaN()
          : static_cast<double>(engine.watermark()));
  const stream::RunningStats down = engine.summary().Downtime();
  set("hpcfail_downtime_count", "Failure records with a repair interval",
      static_cast<double>(down.count));
  set("hpcfail_downtime_mean_hours", "Mean repair time", down.mean / 3600.0);
  set("hpcfail_downtime_stddev_hours", "Repair time standard deviation",
      down.stddev() / 3600.0);
  if (engine.has_predictor()) {
    const stream::StreamingPredictor& p = engine.predictor();
    set("hpcfail_predictor_scored", "Events scored by the hazard predictor",
        static_cast<double>(p.events_scored()));
    set("hpcfail_predictor_alarms", "Events scoring at or above the threshold",
        static_cast<double>(p.alarms()));
    set("hpcfail_predictor_alarm_rate", "Alarms per scored event",
        p.alarm_rate());
  }
  set("hpcfail_stream_final", "1 once the feed is closed and drained",
      final ? 1.0 : 0.0);
}

void EmitMetrics(std::ostream& os, const stream::StreamEngine& engine,
                 double events_per_sec, bool final) {
  PublishAnalysisGauges(engine, events_per_sec, final);
  os << obs::JsonLine(obs::MetricsRegistry::Global().Snapshot()) << "\n"
     << std::flush;
}

// Rewrites `path` with a Prometheus text snapshot; tmp+rename so a scraper
// never reads a half-written file.
void WriteMetricsFile(const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) throw std::runtime_error("cannot write " + tmp);
    obs::WritePrometheus(os, obs::MetricsRegistry::Global().Snapshot());
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("cannot rename " + tmp + " to " + path);
  }
}

void SaveCheckpoint(const stream::StreamEngine& engine,
                    const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw std::runtime_error("cannot write " + tmp);
    engine.SaveCheckpoint(os);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("cannot rename " + tmp + " to " + path);
  }
}

// Drives one feed line through the format adapter's LineReader: BOM/CRLF
// tolerant like the batch reader, every outcome counted in the
// hpcfail_adapter_* registry, malformed rows skipped with a note
// (streaming must survive them). kFatal — the feed cannot be this format
// at all, e.g. the native schema's strict header check — throws.
struct FeedReader {
  const hpcfail::trace::LogAdapter* adapter;
  std::unique_ptr<hpcfail::trace::LineReader> reader;
  std::string source;  // feed path, for diagnostics
  std::size_t lineno = 0;
  bool first = true;

  // Returns true when the line yielded a record into *out.
  bool Consume(std::string line, FailureRecord* out) {
    ++lineno;
    if (first) {
      csv::StripLeadingBom(line);
      first = false;
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) return false;
    std::string reason;
    const hpcfail::trace::LineOutcome outcome =
        reader->Consume(line, lineno, out, &reason);
    hpcfail::trace::CountLineOutcome(outcome);
    switch (outcome) {
      case hpcfail::trace::LineOutcome::kRecord:
        return true;
      case hpcfail::trace::LineOutcome::kIgnored:
        return false;
      case hpcfail::trace::LineOutcome::kRejected:
        std::cerr << "hpcfail_stream: skipping line " << lineno << ": "
                  << reason << "\n";
        return false;
      case hpcfail::trace::LineOutcome::kFatal:
        break;
    }
    throw std::runtime_error(source + ": line " + std::to_string(lineno) +
                             ": " + reason);
  }
};

int RunStream(const Options& opt) {
  const engine::AnalysisSession config_session =
      engine::AnalysisSession::FromCsvDir(opt.trace_dir, opt.session);
  std::cerr << "hpcfail_stream: session " << config_session.StatsJson()
            << "\n";
  const Trace& config_trace = config_session.trace();
  stream::EngineConfig cfg;
  cfg.stream.reorder_tolerance = opt.tolerance;
  cfg.window.trigger = core::EventFilter::Any();
  cfg.window.target = core::EventFilter::Any();
  cfg.window.window = opt.window;
  stream::StreamEngine engine(config_trace.systems(), cfg);

  if (!opt.train_dir.empty()) {
    const engine::AnalysisSession train_session =
        engine::AnalysisSession::FromCsvDir(opt.train_dir, opt.session);
    std::cerr << "hpcfail_stream: session " << train_session.StatsJson()
              << "\n";
    core::FailurePredictor predictor(train_session.index(),
                                     core::PredictorConfig{});
    const double baseline = predictor.baseline();
    // Default alarm cut-off: the smallest learned conditional above the
    // baseline, so an alarm means "this node is in an elevated-hazard
    // state" rather than firing on every event.
    double threshold = opt.predictor_threshold;
    if (threshold < 0) {
      threshold = baseline;
      for (FailureCategory c : AllFailureCategories()) {
        const double p = predictor.conditional(c);
        if (p > baseline && (threshold == baseline || p < threshold)) {
          threshold = p;
        }
      }
    }
    engine.AttachPredictor(std::move(predictor), threshold);
    std::cerr << "hpcfail_stream: predictor trained on " << opt.train_dir
              << " (baseline " << baseline << ", threshold " << threshold
              << ")\n";
  }

  if (!opt.restore_path.empty()) {
    std::ifstream is(opt.restore_path, std::ios::binary);
    if (!is) throw std::runtime_error("cannot open " + opt.restore_path);
    engine.RestoreCheckpoint(is);
    std::cerr << "hpcfail_stream: restored " << opt.restore_path << " ("
              << engine.counters().accepted << " events already ingested)\n";
  }

  const std::string input_path =
      opt.input.empty() ? opt.trace_dir + "/failures.csv" : opt.input;
  const bool from_stdin = input_path == "-";
  std::ifstream file;
  if (!from_stdin) {
    file.open(input_path);
    if (!file) throw std::runtime_error("cannot open " + input_path);
  }
  std::istream& is = from_stdin ? std::cin : file;

  // Resolve the feed's format adapter. Named formats resolve directly;
  // "auto" sniffs — seekable files via SniffHead, stdin by buffering the
  // first few lines (buffered lines are replayed through the reader below,
  // so detection never loses feed data).
  std::string line;
  std::vector<std::string> buffered;
  const hpcfail::trace::LogAdapter* adapter = nullptr;
  if (opt.format != "auto" && !opt.format.empty()) {
    adapter = &hpcfail::trace::ResolveAdapter(opt.format, "");
  } else if (!from_stdin) {
    adapter =
        &hpcfail::trace::ResolveAdapter("auto", hpcfail::trace::SniffHead(file));
  } else {
    std::string head;
    while (buffered.size() < 8 && std::getline(is, line)) {
      buffered.push_back(line);
      head += line;
      head += '\n';
      if ((adapter = hpcfail::trace::DetectAdapter(head)) != nullptr) break;
    }
    if (adapter == nullptr) {
      adapter = &hpcfail::trace::ResolveAdapter("auto", head);  // throws
    }
  }
  hpcfail::trace::AdapterOptions adapter_opts;
  adapter_opts.syslog_base_year = opt.syslog_base_year;
  if (!opt.syslog_rules_file.empty()) {
    std::ifstream rules(opt.syslog_rules_file);
    if (!rules.is_open()) {
      throw std::runtime_error("cannot open --syslog-rules file: " +
                               opt.syslog_rules_file);
    }
    std::ostringstream buf;
    buf << rules.rdbuf();
    adapter_opts.syslog_rules = buf.str();
  }
  FeedReader feed{adapter, adapter->MakeReader(adapter_opts), input_path};
  std::cerr << "hpcfail_stream: feed format " << adapter->name() << "\n";
  std::size_t buffered_next = 0;
  const auto next_line = [&](std::string* out) {
    if (buffered_next < buffered.size()) {
      *out = std::move(buffered[buffered_next++]);
      return true;
    }
    return static_cast<bool>(std::getline(is, *out));
  };

  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  const auto rate = [&](long long events) {
    const double secs = elapsed();
    return secs > 0 ? static_cast<double>(events) / secs : 0.0;
  };
  const auto emit = [&] {
    EmitMetrics(std::cout, engine, rate(engine.counters().accepted), false);
    if (!opt.metrics_out.empty()) WriteMetricsFile(opt.metrics_out);
    if (!opt.checkpoint_path.empty()) {
      SaveCheckpoint(engine, opt.checkpoint_path);
    }
  };

  long long since_emit = 0;
  if (!opt.follow && !from_stdin) {
    // Whole file available up front: sharded catch-up replay, one chunk per
    // metrics interval so progress still streams out.
    std::vector<FailureRecord> chunk;
    chunk.reserve(static_cast<std::size_t>(opt.every));
    const auto flush_chunk = [&] {
      if (chunk.empty()) return;
      engine.CatchUp(chunk, opt.threads);
      chunk.clear();
      emit();
    };
    while (next_line(&line)) {
      FailureRecord r;
      if (!feed.Consume(std::move(line), &r)) continue;
      chunk.push_back(r);
      if (chunk.size() >= static_cast<std::size_t>(opt.every)) flush_chunk();
    }
    flush_chunk();
  } else {
    // Tail mode: ingest line-by-line; on EOF either stop (stdin closed) or
    // poll for appended rows.
    for (;;) {
      if (!next_line(&line)) {
        if (!opt.follow || from_stdin) break;
        is.clear();
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        continue;
      }
      FailureRecord r;
      if (!feed.Consume(std::move(line), &r)) continue;
      if (engine.Ingest(r) == stream::IngestStatus::kAccepted &&
          ++since_emit >= opt.every) {
        since_emit = 0;
        emit();
      }
    }
  }

  if (!opt.checkpoint_path.empty()) {
    // Final pre-Finish snapshot: a later run restores it and resumes.
    SaveCheckpoint(engine, opt.checkpoint_path);
  }
  engine.Finish();
  EmitMetrics(std::cout, engine, rate(engine.counters().accepted), true);
  if (!opt.metrics_out.empty()) WriteMetricsFile(opt.metrics_out);
  return 0;
}

// ---- --selftest: end-to-end smoke against the batch path.

bool SameResult(const core::ConditionalResult& a,
                const core::ConditionalResult& b) {
  const auto same_prop = [](const stats::Proportion& x,
                            const stats::Proportion& y) {
    return x.successes == y.successes && x.trials == y.trials &&
           x.estimate == y.estimate && x.ci_low == y.ci_low &&
           x.ci_high == y.ci_high;
  };
  const bool factor_same =
      a.factor == b.factor || (std::isnan(a.factor) && std::isnan(b.factor));
  return same_prop(a.conditional, b.conditional) &&
         same_prop(a.baseline, b.baseline) && factor_same &&
         a.test.z == b.test.z && a.test.p_value == b.test.p_value &&
         a.num_triggers == b.num_triggers;
}

int Selftest() {
  int failures = 0;
  const auto check = [&failures](bool ok, const char* what) {
    std::cerr << (ok ? "  ok: " : "  FAIL: ") << what << "\n";
    if (!ok) ++failures;
  };

  const Trace trace = synth::GenerateTrace(synth::TinyScenario(), 7);
  const std::vector<FailureRecord>& sorted = trace.failures();
  check(sorted.size() > 100, "synthetic trace has events");

  // Batch references.
  const core::EventIndex batch_idx(trace);
  const core::WindowAnalyzer analyzer(batch_idx);
  const core::FailurePredictor predictor(batch_idx, core::PredictorConfig{});
  const double threshold = predictor.baseline();
  core::ConditionalResult batch[3];
  const core::Scope scopes[3] = {core::Scope::kSameNode,
                                 core::Scope::kRackPeers,
                                 core::Scope::kSystemPeers};
  for (int i = 0; i < 3; ++i) {
    batch[i] = analyzer.Compare(core::EventFilter::Any(),
                                core::EventFilter::Any(), scopes[i], kWeek);
  }

  // Deterministic local shuffle: swap adjacent events closer than the
  // tolerance, so arrival order violates time order but stays in bound.
  const TimeSec tolerance = kDay;
  std::vector<FailureRecord> shuffled = sorted;
  for (std::size_t i = 0; i + 1 < shuffled.size(); i += 2) {
    if (shuffled[i + 1].start - shuffled[i].start < tolerance) {
      std::swap(shuffled[i], shuffled[i + 1]);
    }
  }

  stream::EngineConfig cfg;
  cfg.stream.reorder_tolerance = tolerance;
  cfg.window.trigger = core::EventFilter::Any();
  cfg.window.target = core::EventFilter::Any();
  cfg.window.window = kWeek;

  const auto make_engine = [&] {
    auto engine =
        std::make_unique<stream::StreamEngine>(trace.systems(), cfg);
    engine->AttachPredictor(predictor, threshold);
    return engine;
  };

  // Uninterrupted out-of-order run.
  auto full = make_engine();
  for (const FailureRecord& r : shuffled) full->Ingest(r);
  full->Finish();
  check(full->counters().rejected() == 0, "no events rejected in bound");
  for (int i = 0; i < 3; ++i) {
    check(SameResult(full->tracker().Result(scopes[i]), batch[i]),
          "stream window result bit-identical to batch");
  }
  check(full->summary().total_events() ==
            static_cast<long long>(sorted.size()),
        "summary counted every event");

  // Predictor reference: walk the batch-sorted trace with per-node state.
  {
    long long alarms = 0;
    std::vector<std::vector<std::pair<int, TimeSec>>> last;
    for (const SystemConfig& s : trace.systems()) {
      last.emplace_back(static_cast<std::size_t>(s.num_nodes),
                        std::pair<int, TimeSec>{-1, 0});
    }
    for (const FailureRecord& r : sorted) {
      std::size_t sys = 0;
      while (trace.systems()[sys].id != r.system) ++sys;
      auto& slot = last[sys][static_cast<std::size_t>(r.node.value)];
      std::optional<FailureCategory> t;
      std::optional<TimeSec> at;
      if (slot.first >= 0) {
        t = static_cast<FailureCategory>(slot.first);
        at = slot.second;
      }
      if (predictor.Score(t, at, r.start) >= threshold) ++alarms;
      slot = {static_cast<int>(r.category), r.start};
    }
    check(full->predictor().events_scored() ==
              static_cast<long long>(sorted.size()),
          "predictor scored every event");
    check(full->predictor().alarms() == alarms,
          "stream alarm count matches batch walk");
  }

  // Checkpoint mid-stream, restore into a fresh engine, finish, compare.
  auto head = make_engine();
  const std::size_t split = shuffled.size() / 2;
  for (std::size_t i = 0; i < split; ++i) head->Ingest(shuffled[i]);
  std::stringstream snap(std::ios::in | std::ios::out | std::ios::binary);
  head->SaveCheckpoint(snap);

  auto resumed = make_engine();
  resumed->RestoreCheckpoint(snap);
  for (std::size_t i = split; i < shuffled.size(); ++i) {
    resumed->Ingest(shuffled[i]);
  }
  resumed->Finish();
  for (int i = 0; i < 3; ++i) {
    check(SameResult(resumed->tracker().Result(scopes[i]), batch[i]),
          "post-restore window result bit-identical to batch");
  }
  check(resumed->predictor().alarms() == full->predictor().alarms(),
        "post-restore alarm count matches");

  // Corrupted snapshot must be rejected.
  {
    std::string bytes = snap.str();
    bytes[bytes.size() / 2] ^= 0x5a;
    std::istringstream bad(bytes);
    auto victim = make_engine();
    bool threw = false;
    try {
      victim->RestoreCheckpoint(bad);
    } catch (const stream::snapshot::SnapshotError&) {
      threw = true;
    }
    check(threw, "corrupted snapshot rejected");
  }

  // Metrics emission renders the registry snapshot as one JSON line.
  {
    std::ostringstream os;
    EmitMetrics(os, *full, 1234.5, true);
    const std::string json = os.str();
    check(json.find("\"counters\"") != std::string::npos &&
              json.find("\"hpcfail_window_same_node_p_conditional\"") !=
                  std::string::npos &&
              json.find("\"hpcfail_predictor_alarm_rate\"") !=
                  std::string::npos &&
              json.back() == '\n',
          "metrics line renders");
  }

  // Observability: the runs above must leave a coherent registry behind.
  if (obs::kEnabled) {
    const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
    const auto counter = [&snap](const char* name) -> long long {
      const obs::MetricsSnapshot::CounterValue* c = snap.FindCounter(name);
      return c != nullptr ? c->value : -1;
    };
    check(counter("hpcfail_stream_ingested_total") > 0,
          "stream ingest counters registered");
    check(counter("hpcfail_stream_ingested_total") ==
              counter("hpcfail_stream_accepted_total") +
                  counter("hpcfail_stream_rejected_late_total") +
                  counter("hpcfail_stream_rejected_unknown_system_total") +
                  counter("hpcfail_stream_rejected_bad_record_total"),
          "ingested splits into accepted + rejected");
    // `head` is abandoned mid-stream (checkpointed, never finished), so a
    // tail of its accepted events legitimately stays buffered.
    check(counter("hpcfail_stream_released_total") > 0 &&
              counter("hpcfail_stream_released_total") <=
                  counter("hpcfail_stream_accepted_total"),
          "released stays within accepted");
    check(counter("hpcfail_stream_checkpoints_total") >= 1 &&
              counter("hpcfail_stream_checkpoint_bytes_total") > 0,
          "checkpoint counters advanced");
    check(counter("hpcfail_stream_restore_failures_total") >= 1,
          "failed restore was counted");
    const std::string prom = obs::PrometheusText(snap);
    check(prom.find("# TYPE hpcfail_stream_ingested_total counter") !=
              std::string::npos,
          "prometheus exposition renders");
  }

  std::cerr << (failures == 0 ? "selftest: all checks passed\n"
                              : "selftest: FAILED\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int MakeDemo(const std::string& dir, double scale, double years,
             const hpcfail::engine::StandardOptions& std_opts) {
  const engine::AnalysisSession session =
      engine::AnalysisSession::FromScenario(
          synth::LanlLikeScenario(
              scale, static_cast<TimeSec>(years * hpcfail::kYear)),
          std_opts.seed, engine::MakeSessionOptions(std_opts));
  std::cerr << "hpcfail_stream: session " << session.StatsJson() << "\n";
  const Trace& trace = session.trace();
  csv::SaveTrace(trace, dir);
  std::cerr << "hpcfail_stream: wrote " << trace.num_failures()
            << " failures across " << trace.systems().size()
            << " systems to " << dir << "\n";
  return 0;
}

int main(int argc, char** argv) {
  try {
    Options opt;
    engine::StandardOptions std_opts;
    bool selftest = false;
    std::string make_demo_dir;
    double scale = 0.3;
    double years = 1.0;
    std::uint64_t tolerance = 0;
    std::uint64_t window = static_cast<std::uint64_t>(kWeek);
    std::uint64_t every = 1000;

    engine::ArgParser parser(
        "hpcfail_stream",
        "Live streaming analysis over a failure log feed (see --trace), "
        "plus --selftest and --make-demo modes.");
    engine::AddStandardOptions(parser, &std_opts);
    parser.AddString("trace", &opt.trace_dir,
                     "CSV trace directory (systems.csv + layout.csv); the "
                     "feed defaults to <dir>/failures.csv");
    parser.AddString("input", &opt.input,
                     "failure feed; \"-\" = stdin");
    parser.AddString("format", &opt.format,
                     "feed format: auto (sniffed), hpcfail_csv, lanl_csv, "
                     "bgq_ras, or syslog");
    parser.AddInt("syslog-base-year", &opt.syslog_base_year,
                  "--format syslog: year for RFC 3164 timestamps");
    parser.AddString("syslog-rules", &opt.syslog_rules_file,
                     "--format syslog: template->category rules file "
                     "(\"keyword => category[/subcategory]\" per line, "
                     "checked before the built-ins)");
    parser.AddFlag("follow", &opt.follow,
                   "keep tailing the feed for appended rows");
    parser.AddUint64("tolerance", &tolerance,
                     "out-of-order tolerance in seconds (0 = sorted input)");
    parser.AddUint64("window", &window, "follow-up window length in seconds");
    parser.AddUint64("every", &every,
                     "emit a JSON metrics line every N accepted events");
    parser.AddString("train", &opt.train_dir,
                     "train a hazard predictor on this CSV trace dir");
    parser.AddDouble("predictor-threshold", &opt.predictor_threshold,
                     "alarm threshold (< 0 = learned baseline)");
    parser.AddString("checkpoint", &opt.checkpoint_path,
                     "snapshot stream state here at every emission");
    parser.AddString("restore", &opt.restore_path,
                     "restore this snapshot before ingesting");
    parser.AddString("metrics-out", &opt.metrics_out,
                     "rewrite FILE (tmp+rename) with a Prometheus snapshot "
                     "at every emission");
    parser.AddFlag("selftest", &selftest,
                   "run the stream-vs-batch smoke checks and exit");
    parser.AddString("make-demo", &make_demo_dir,
                     "write a synthetic CSV trace directory here and exit "
                     "(size via --scale/--years/--seed)");
    parser.AddDouble("scale", &scale, "--make-demo scenario scale factor");
    parser.AddDouble("years", &years, "--make-demo simulated years");
    parser.ParseOrExit(argc, argv);
    engine::ApplyStandardOptions(std_opts);
    opt.tolerance = static_cast<TimeSec>(tolerance);
    opt.window = static_cast<TimeSec>(window);
    opt.every = std::max(1LL, static_cast<long long>(every));
    opt.threads = std_opts.threads;
    opt.session = engine::MakeSessionOptions(std_opts);

    if (selftest) return Selftest();
    if (!make_demo_dir.empty()) {
      return MakeDemo(make_demo_dir, scale, years, std_opts);
    }
    if (opt.trace_dir.empty()) {
      std::cerr << "hpcfail_stream: one of --trace, --selftest, or "
                   "--make-demo is required\n"
                << parser.Usage();
      return 2;
    }
    return RunStream(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
