#include "engine/session_set.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/parallel.h"
#include "core/window_analysis.h"
#include "engine/fingerprint.h"
#include "engine/index_snapshot.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "stream/snapshot.h"

namespace hpcfail::engine {

namespace {

// Success/trial counters merged as integer sums across shards — the sums
// are order-independent, so the pooled counts match the monolithic
// WindowAnalyzer accumulation exactly.
struct Counts {
  long long successes = 0;
  long long trials = 0;
};

Counts MergeCounts(Counts acc, Counts c) {
  acc.successes += c.successes;
  acc.trials += c.trials;
  return acc;
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (c == '\n') {
      *out += "\\n";
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

obs::Counter& SetCounter(const char* name, const char* help) {
  return obs::MetricsRegistry::Global().GetCounter(name, help);
}

std::pair<Trace, AnalysisSession::Stats> AcquireParent(
    const TraceSource& source, const SessionSetOptions& options) {
  SessionOptions session_options;
  session_options.cache = options.cache;
  return AcquireTrace(source, session_options);
}

std::size_t TotalFailures(const core::EventStoreSet& set) {
  std::size_t n = 0;
  for (const core::SystemEventStore& se : set.stores) n += se.size();
  return n;
}

}  // namespace

std::size_t SessionSet::MergedView::num_failures() const {
  return TotalFailures(*stores_);
}

SessionSet::SessionSet(std::pair<Trace, AnalysisSession::Stats> acquired,
                       SessionSetOptions options)
    : trace_(std::make_shared<const Trace>(std::move(acquired.first))),
      source_stats_(std::move(acquired.second)),
      options_(std::move(options)),
      plan_(*trace_, options_.shard, options_.systems) {
  // Valid-but-unknown systems fail here, once, instead of as a surprise
  // inside some later shard build on a pool thread.
  for (SystemId id : plan_.systems()) {
    if (id.valid()) trace_->system(id);  // throws std::out_of_range
  }
  slots_.resize(plan_.num_shards());
  lru_.reserve(plan_.num_shards());
}

SessionSet::SessionSet(std::unique_ptr<TraceSource> source,
                       SessionSetOptions options)
    // `options` is passed by const reference twice (no move): argument
    // evaluation order is unspecified, so moving it into one argument could
    // hand AcquireParent a gutted copy.
    : SessionSet(AcquireParent(*source, options), options) {}

SessionSet::SessionSet(std::shared_ptr<const Trace> trace,
                       SessionSetOptions options)
    : trace_(std::move(trace)),
      options_(std::move(options)),
      plan_(*trace_, options_.shard, options_.systems) {
  source_stats_.label = "preacquired trace";
  source_stats_.cache_diagnostic = "preacquired trace (no fingerprint)";
  source_stats_.num_systems = trace_->systems().size();
  source_stats_.num_failures = trace_->num_failures();
  for (SystemId id : plan_.systems()) {
    if (id.valid()) trace_->system(id);
  }
  slots_.resize(plan_.num_shards());
  lru_.reserve(plan_.num_shards());
}

SessionSet SessionSet::FromScenario(synth::Scenario scenario,
                                    std::uint64_t seed,
                                    SessionSetOptions options) {
  return SessionSet(MakeScenarioSource(std::move(scenario), seed),
                    std::move(options));
}

std::uint64_t SessionSet::ShardFingerprintFor(ShardKey key) const {
  return plan_.ShardFingerprint(source_stats_.fingerprint.value_or(0), key);
}

void SessionSet::TouchLocked(std::size_t idx) {
  const auto it = std::find(lru_.begin(), lru_.end(), idx);
  if (it != lru_.end()) lru_.erase(it);
  lru_.insert(lru_.begin(), idx);
}

void SessionSet::EvictOverBudgetLocked(std::size_t keep_idx) {
  if (options_.memory_budget_bytes == 0) return;
  while (stats_.resident_bytes > options_.memory_budget_bytes) {
    // Coldest shard that is not the one just published; publishing a shard
    // must never evict it (the caller is about to use it).
    std::size_t victim_pos = lru_.size();
    for (std::size_t pos = lru_.size(); pos-- > 0;) {
      if (lru_[pos] != keep_idx) {
        victim_pos = pos;
        break;
      }
    }
    if (victim_pos == lru_.size()) return;
    const std::size_t victim = lru_[victim_pos];
    lru_.erase(lru_.begin() + static_cast<std::ptrdiff_t>(victim_pos));
    stats_.resident_bytes -= slots_[victim].shard->resident_bytes;
    slots_[victim].shard.reset();  // readers' shared_ptrs stay valid
    ++stats_.evictions;
    SetCounter("hpcfail_engine_sessionset_evictions_total",
               "Shards evicted by the SessionSet memory budget")
        .Increment();
  }
}

Trace SessionSet::SliceShardTrace(ShardKey key) const {
  std::vector<SystemConfig> configs;
  for (SystemId id : plan_.SystemsOfBlock(key.block)) {
    if (id.valid()) configs.push_back(trace_->system(id));
  }
  const TimeInterval range = plan_.StartRange(key.window);
  std::vector<FailureRecord> failures;
  const std::vector<FailureRecord>& all = trace_->failures();
  auto it = std::lower_bound(
      all.begin(), all.end(), range.begin,
      [](const FailureRecord& f, TimeSec t) { return f.start < t; });
  for (; it != all.end() && it->start < range.end; ++it) {
    if (plan_.BlockOf(it->system) == key.block) failures.push_back(*it);
  }
  // Only the failure stream matters to shard stores; the other streams stay
  // with the parent trace (merged-view renderers read them from there).
  return Trace::FromSorted(std::move(configs), std::move(failures), {}, {},
                           {}, {});
}

std::shared_ptr<const SessionSet::Shard> SessionSet::BuildShard(
    ShardKey key, std::uint64_t fp) {
  obs::ScopedTimer timer("sessionset_shard_build");
  auto shard = std::make_shared<Shard>();
  shard->key = key;
  shard->fingerprint = fp;
  shard->starts = plan_.StartRange(key.window);
  const std::span<const SystemId> block = plan_.SystemsOfBlock(key.block);
  shard->systems.assign(block.begin(), block.end());

  const bool cache_on = options_.cache.enabled && options_.cache_shards &&
                        source_stats_.fingerprint.has_value();
  bool index_hit = false;
  if (cache_on) {
    ArtifactCache cache(options_.cache);
    std::string diag;
    // Fastest path first: a prebuilt column snapshot (kind "index" under
    // the shard fingerprint) restores straight against the parent trace —
    // no sub-trace decode, no column build.
    if (cache.KindEnabled(ArtifactKind::kIndex)) {
      if (std::optional<std::string> body =
              cache.TryLoadBody(ArtifactKind::kIndex, fp, &diag)) {
        try {
          stream::snapshot::Reader r(*body);
          core::EventStoreSet set =
              DeserializeStoreSet(*trace_, shard->systems, &r);
          if (!r.AtEnd()) {
            throw stream::snapshot::SnapshotError(
                "trailing bytes after index payload");
          }
          shard->stores = std::make_shared<const core::EventStoreSet>(
              std::move(set));
          shard->from_cache = true;
          index_hit = true;
        } catch (const stream::snapshot::SnapshotError& e) {
          cache.EvictCorrupt(ArtifactKind::kIndex, fp, e.what(), &diag);
        }
      }
    }
    // Next: the sliced sub-trace (kind "trace"), rebuilding columns from
    // its (much smaller) failure stream.
    if (shard->stores == nullptr) {
      if (std::optional<Trace> cached = cache.TryLoad(fp, &diag)) {
        auto backing = std::make_shared<const Trace>(*std::move(cached));
        shard->stores = std::make_shared<const core::EventStoreSet>(
            core::EventStoreSet::Build(*backing, shard->systems));
        shard->backing = std::move(backing);
        shard->from_cache = true;
      }
    }
  }
  if (shard->stores == nullptr) {
    shard->stores = std::make_shared<const core::EventStoreSet>(
        core::EventStoreSet::Build(*trace_, shard->systems, shard->starts));
    if (cache_on) {
      ArtifactCache cache(options_.cache);
      std::string diag;
      shard->cache_stored = cache.Store(fp, SliceShardTrace(key), &diag);
    }
  }
  if (cache_on && !index_hit) {
    // Upgrade the entry set: whichever way the columns were built (parent
    // build or cached sub-trace), persist the snapshot so the next run
    // takes the index path.
    ArtifactCache cache(options_.cache);
    if (cache.KindEnabled(ArtifactKind::kIndex)) {
      stream::snapshot::Writer w;
      SerializeStoreSet(*shard->stores, &w);
      std::string diag;
      shard->cache_stored |=
          cache.StoreBody(ArtifactKind::kIndex, fp, w.payload(), &diag);
    }
  }
  shard->num_failures = TotalFailures(*shard->stores);
  shard->resident_bytes = shard->stores->ApproxBytes();
  return shard;
}

std::shared_ptr<const SessionSet::Shard> SessionSet::GetShard(ShardKey key) {
  if (!plan_.Contains(key)) {
    throw std::out_of_range("SessionSet::GetShard: no shard " +
                            ToString(key));
  }
  const std::size_t idx = plan_.IndexOf(key);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (slots_[idx].shard != nullptr) {
      TouchLocked(idx);
      return slots_[idx].shard;
    }
  }
  const std::uint64_t fp = ShardFingerprintFor(key);
  // Single-flight per shard fingerprint: concurrent misses for one shard
  // run ONE build; distinct shards build in parallel.
  KeyedMutex::Guard flight = flights_.Lock(fp);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (slots_[idx].shard != nullptr) {
      TouchLocked(idx);
      if (flight.waited()) {
        ++stats_.coalesced;
        SetCounter("hpcfail_engine_sessionset_coalesced_total",
                   "Shard requests that coalesced onto a concurrent build")
            .Increment();
      }
      return slots_[idx].shard;
    }
  }
  std::shared_ptr<const Shard> shard = BuildShard(key, fp);
  {
    std::lock_guard<std::mutex> lock(mu_);
    Slot& slot = slots_[idx];
    slot.shard = shard;
    ++stats_.builds;
    if (slot.built_before) ++stats_.rebuilds;
    slot.built_before = true;
    if (shard->from_cache) ++stats_.cache_hits;
    if (shard->cache_stored) ++stats_.cache_stores;
    stats_.resident_bytes += shard->resident_bytes;
    TouchLocked(idx);
    EvictOverBudgetLocked(idx);
  }
  return shard;
}

std::shared_ptr<const SessionSet::Shard> SessionSet::FindResident(
    ShardKey key) const {
  if (!plan_.Contains(key)) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  return slots_[plan_.IndexOf(key)].shard;
}

std::vector<std::shared_ptr<const SessionSet::Shard>> SessionSet::PinAll() {
  const std::vector<ShardKey> keys = plan_.Keys();
  std::vector<std::shared_ptr<const Shard>> shards(keys.size());
  core::ParallelFor(keys.size(),
                    [&](std::size_t i) { shards[i] = GetShard(keys[i]); });
  return shards;
}

void SessionSet::BuildAll() {
  obs::ScopedTimer timer("sessionset_build_all");
  PinAll();
}

std::shared_ptr<const SessionSet::MergedView> SessionSet::Merged() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (merged_ != nullptr) return merged_;
  }
  obs::ScopedTimer timer("sessionset_merge");
  const std::vector<std::shared_ptr<const Shard>> shards = PinAll();
  std::vector<const core::EventStoreSet*> parts;
  parts.reserve(shards.size());
  for (const auto& shard : shards) parts.push_back(shard->stores.get());
  auto stores = std::make_shared<const core::EventStoreSet>(
      core::EventStoreSet::Concatenate(*trace_, plan_.systems(), parts));
  std::shared_ptr<const MergedView> view(
      new MergedView(trace_, std::move(stores)));
  std::lock_guard<std::mutex> lock(mu_);
  if (merged_ == nullptr) {
    merged_ = view;
    ++stats_.merges;
  }
  return merged_;
}

std::shared_ptr<const SessionSet::MergedView> SessionSet::Merged(
    std::span<const ShardKey> keys) {
  // Key order determines concatenation order; sorting (block-major, window
  // ascending — ShardKey's natural order) keeps every system's columns
  // time-sorted and makes the result independent of the caller's ordering.
  std::vector<ShardKey> sorted(keys.begin(), keys.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::vector<std::shared_ptr<const Shard>> shards(sorted.size());
  core::ParallelFor(sorted.size(),
                    [&](std::size_t i) { shards[i] = GetShard(sorted[i]); });
  std::vector<bool> block_in(static_cast<std::size_t>(plan_.num_blocks()),
                             false);
  for (const ShardKey key : sorted) {
    block_in[static_cast<std::size_t>(key.block)] = true;
  }
  std::vector<SystemId> systems;
  for (SystemId id : plan_.systems()) {
    const int b = plan_.BlockOf(id);
    if (b >= 0 && block_in[static_cast<std::size_t>(b)]) {
      systems.push_back(id);
    }
  }
  std::vector<const core::EventStoreSet*> parts;
  parts.reserve(shards.size());
  for (const auto& shard : shards) parts.push_back(shard->stores.get());
  auto stores = std::make_shared<const core::EventStoreSet>(
      core::EventStoreSet::Concatenate(*trace_, systems, parts));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.merges;
  }
  return std::shared_ptr<const MergedView>(
      new MergedView(trace_, std::move(stores)));
}

void SessionSet::DropMerged() {
  std::lock_guard<std::mutex> lock(mu_);
  merged_.reset();
}

stats::Proportion SessionSet::SameNodeConditional(
    const core::EventFilter& trigger, const core::EventFilter& target,
    TimeSec window) {
  if (window <= 0) {
    throw std::invalid_argument(
        "SessionSet::SameNodeConditional: window must be positive, got " +
        std::to_string(window));
  }
  obs::ScopedTimer timer("sessionset_query");
  const std::vector<ShardKey> keys = plan_.Keys();
  const std::vector<std::shared_ptr<const Shard>> shards = PinAll();
  const int num_windows = plan_.num_windows();
  const auto count_shard = [&](std::size_t i) {
    const Shard& shard = *shards[i];
    Counts c;
    for (const core::SystemEventStore& se : shard.stores->stores) {
      // Same horizon as the monolithic analyzer: the shard's config is a
      // copy (cache path) or alias (slice path) of the parent system's, so
      // censoring decisions are identical.
      const TimeSec horizon = se.config->observed.end;
      se.ForEachMatching(trigger, [&](std::size_t r) {
        const TimeSec start = se.starts[r];
        if (start + window > horizon) return;  // censored
        const NodeId node{se.nodes[r]};
        const TimeInterval w{start, start + window};
        ++c.trials;
        // The follow-up window (start, start+window] can cross shard
        // boundaries; OR the per-shard answers over this and the following
        // windows of the block. Events never time-travel backwards: a
        // follow-up starts after the trigger, so earlier windows need no
        // look. Identical to the monolithic AnyAtNode because the shards
        // partition the same event sequence.
        bool hit = se.AnyAtNode(node, w, target);
        for (int wn = shard.key.window + 1; !hit && wn < num_windows; ++wn) {
          if (plan_.StartRange(wn).begin > start + window) break;
          const core::SystemEventStore* later =
              shards[plan_.IndexOf(ShardKey{shard.key.block, wn})]
                  ->stores->Find(se.id);
          if (later != nullptr) hit = later->AnyAtNode(node, w, target);
        }
        if (hit) ++c.successes;
      });
    }
    return c;
  };
  const Counts total =
      core::ParallelReduce(keys.size(), Counts{}, count_shard, MergeCounts);
  return stats::WilsonProportion(total.successes, total.trials);
}

long long SessionSet::MergedCount(const core::EventFilter& filter) {
  const std::vector<std::shared_ptr<const Shard>> shards = PinAll();
  const auto count_shard = [&](std::size_t i) {
    long long n = 0;
    for (const core::SystemEventStore& se : shards[i]->stores->stores) {
      n += se.CountMatching(filter);
    }
    return n;
  };
  return core::ParallelReduce(
      shards.size(), 0LL, count_shard,
      [](long long acc, long long n) { return acc + n; });
}

void SessionSet::SetMemoryBudget(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.memory_budget_bytes = bytes;
  // keep_idx that matches no slot: applying a tiny budget may evict all.
  EvictOverBudgetLocked(slots_.size());
}

SessionSet::Stats SessionSet::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.resident_shards = lru_.size();
  return s;
}

std::string SessionSet::ShardJsonLocked(std::size_t idx) const {
  const ShardKey key{static_cast<int>(idx / static_cast<std::size_t>(
                                                plan_.num_windows())),
                     static_cast<int>(idx % static_cast<std::size_t>(
                                                plan_.num_windows()))};
  std::string out = "{\"key\":";
  AppendJsonString(&out, ToString(key));
  const Slot& slot = slots_[idx];
  out += ",\"resident\":";
  out += slot.shard != nullptr ? "true" : "false";
  out += ",\"built_before\":";
  out += slot.built_before ? "true" : "false";
  if (slot.shard != nullptr) {
    const Shard& shard = *slot.shard;
    out += ",\"fingerprint\":";
    AppendJsonString(&out, FingerprintHex(shard.fingerprint));
    out += ",\"num_systems\":" + std::to_string(shard.systems.size());
    out += ",\"num_failures\":" + std::to_string(shard.num_failures);
    out += ",\"resident_bytes\":" + std::to_string(shard.resident_bytes);
    out += ",\"from_cache\":";
    out += shard.from_cache ? "true" : "false";
    out += ",\"cache_stored\":";
    out += shard.cache_stored ? "true" : "false";
  }
  out += "}";
  return out;
}

std::string SessionSet::StatsJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"parent\":";
  out += engine::StatsJson(source_stats_);
  out += ",\"window_seconds\":" + std::to_string(plan_.spec().window);
  out += ",\"systems_per_block\":" +
         std::to_string(plan_.spec().systems_per_block);
  out += ",\"num_blocks\":" + std::to_string(plan_.num_blocks());
  out += ",\"num_windows\":" + std::to_string(plan_.num_windows());
  out += ",\"num_shards\":" + std::to_string(plan_.num_shards());
  out += ",\"memory_budget_bytes\":" +
         std::to_string(options_.memory_budget_bytes);
  out += ",\"resident_shards\":" + std::to_string(lru_.size());
  out += ",\"resident_bytes\":" + std::to_string(stats_.resident_bytes);
  out += ",\"builds\":" + std::to_string(stats_.builds);
  out += ",\"rebuilds\":" + std::to_string(stats_.rebuilds);
  out += ",\"coalesced\":" + std::to_string(stats_.coalesced);
  out += ",\"shard_cache_hits\":" + std::to_string(stats_.cache_hits);
  out += ",\"shard_cache_stores\":" + std::to_string(stats_.cache_stores);
  out += ",\"evictions\":" + std::to_string(stats_.evictions);
  out += ",\"merges\":" + std::to_string(stats_.merges);
  out += ",\"merged_resident\":";
  out += merged_ != nullptr ? "true" : "false";
  out += ",\"shards\":[";
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (i > 0) out += ",";
    out += ShardJsonLocked(i);
  }
  out += "]}";
  return out;
}

std::optional<std::string> SessionSet::ShardStatsJson(ShardKey key) {
  if (!plan_.Contains(key)) return std::nullopt;
  GetShard(key);  // build on demand so the answer has real sizes
  std::lock_guard<std::mutex> lock(mu_);
  return ShardJsonLocked(plan_.IndexOf(key));
}

}  // namespace hpcfail::engine
