#include "engine/trace_source.h"

#include <fstream>
#include <stdexcept>
#include <utility>

#include <algorithm>
#include <iostream>

#include "engine/fingerprint.h"
#include "synth/generate.h"
#include "trace/csv.h"
#include "trace/lanl_import.h"

namespace hpcfail::engine {

std::string_view ToString(SourceKind k) {
  switch (k) {
    case SourceKind::kScenario: return "scenario";
    case SourceKind::kCsvDir: return "csv";
    case SourceKind::kStreamCheckpoint: return "checkpoint";
    case SourceKind::kLanlCsv: return "lanl";
  }
  return "invalid";
}

namespace {

class ScenarioSource final : public TraceSource {
 public:
  ScenarioSource(synth::Scenario scenario, std::uint64_t seed)
      : scenario_(std::move(scenario)), seed_(seed) {}

  SourceKind kind() const override { return SourceKind::kScenario; }

  std::string label() const override {
    return "scenario systems=" + std::to_string(scenario_.systems.size()) +
           " seed=" + std::to_string(seed_);
  }

  std::optional<std::uint64_t> Fingerprint() const override {
    return HashScenario(scenario_, seed_);
  }

  Trace Acquire() const override {
    return synth::GenerateTrace(scenario_, seed_);
  }

 private:
  synth::Scenario scenario_;
  std::uint64_t seed_;
};

// The trace CSVs csv::LoadTrace reads, in the order they are hashed.
constexpr const char* kTraceCsvs[] = {
    "systems.csv",      "failures.csv", "maintenance.csv", "jobs.csv",
    "temperatures.csv", "neutrons.csv", "layout.csv",
};

class CsvDirSource final : public TraceSource {
 public:
  explicit CsvDirSource(std::string dir) : dir_(std::move(dir)) {}

  SourceKind kind() const override { return SourceKind::kCsvDir; }

  std::string label() const override { return "csv dir " + dir_; }

  std::optional<std::uint64_t> Fingerprint() const override {
    // Content-addressed over the raw bytes of every stream file; a missing
    // optional file hashes as "absent" (distinct from present-but-empty).
    // Without a readable systems.csv the import cannot succeed, so bypass
    // the cache and let Acquire() raise the real error.
    FingerprintHasher h;
    h.Str("hpcfail-csv-dir");
    bool any = false;
    for (const char* name : kTraceCsvs) {
      const std::optional<std::uint64_t> file =
          HashFileContents(dir_ + "/" + name);
      h.Bool(file.has_value());
      if (file) {
        h.U64(*file);
        any = true;
      }
    }
    if (!any) return std::nullopt;
    return h.value();
  }

  Trace Acquire() const override { return csv::LoadTrace(dir_); }

 private:
  std::string dir_;
};

class CheckpointSource final : public TraceSource {
 public:
  CheckpointSource(std::string checkpoint_path, std::string trace_dir,
                   stream::EngineConfig config)
      : checkpoint_path_(std::move(checkpoint_path)),
        trace_dir_(std::move(trace_dir)),
        config_(config) {}

  SourceKind kind() const override { return SourceKind::kStreamCheckpoint; }

  std::string label() const override {
    return "checkpoint " + checkpoint_path_ + " (systems from " + trace_dir_ +
           ")";
  }

  std::optional<std::uint64_t> Fingerprint() const override {
    // The replayed trace depends on the checkpoint bytes, the machine
    // configuration, and the engine config the checkpoint requires.
    const std::optional<std::uint64_t> ckpt =
        HashFileContents(checkpoint_path_);
    const std::optional<std::uint64_t> systems =
        HashFileContents(trace_dir_ + "/systems.csv");
    if (!ckpt || !systems) return std::nullopt;
    FingerprintHasher h;
    h.Str("hpcfail-stream-checkpoint");
    h.U64(*ckpt);
    h.U64(*systems);
    const std::optional<std::uint64_t> layout =
        HashFileContents(trace_dir_ + "/layout.csv");
    h.Bool(layout.has_value());
    if (layout) h.U64(*layout);
    h.I64(config_.stream.reorder_tolerance);
    h.I64(config_.window.window);
    return h.value();
  }

  Trace Acquire() const override {
    const Trace config_trace = csv::LoadTrace(trace_dir_);
    stream::StreamEngine engine(config_trace.systems(), config_);
    std::ifstream is(checkpoint_path_, std::ios::binary);
    if (!is) {
      throw std::runtime_error("cannot open checkpoint " + checkpoint_path_);
    }
    engine.RestoreCheckpoint(is);
    engine.Finish();

    Trace trace;
    for (const SystemConfig& s : config_trace.systems()) trace.AddSystem(s);
    for (const SystemConfig& s : config_trace.systems()) {
      for (const FailureRecord& f : engine.index().failures_of(s.id)) {
        trace.AddFailure(f);
      }
    }
    trace.Finalize();
    return trace;
  }

 private:
  std::string checkpoint_path_;
  std::string trace_dir_;
  stream::EngineConfig config_;
};

class LanlSource final : public TraceSource {
 public:
  LanlSource(std::string path, int nodes_per_system)
      : path_(std::move(path)), nodes_per_system_(nodes_per_system) {}

  SourceKind kind() const override { return SourceKind::kLanlCsv; }

  std::string label() const override {
    return "lanl log " + path_ +
           " nodes/system=" + std::to_string(nodes_per_system_);
  }

  std::optional<std::uint64_t> Fingerprint() const override {
    const std::optional<std::uint64_t> log = HashFileContents(path_);
    if (!log) return std::nullopt;
    FingerprintHasher h;
    h.Str("hpcfail-lanl-import");
    h.U64(*log);
    h.I64(nodes_per_system_);
    return h.value();
  }

  Trace Acquire() const override {
    std::ifstream is(path_);
    if (!is) throw std::runtime_error("cannot open " + path_);
    const lanl::ImportResult imported = lanl::ImportFailures(is, {});
    std::cerr << "imported " << imported.failures.size()
              << " failures, skipped " << imported.skipped.size() << " rows\n";
    for (std::size_t i = 0;
         i < std::min<std::size_t>(5, imported.skipped.size()); ++i) {
      std::cerr << "  line " << imported.skipped[i].line << ": "
                << imported.skipped[i].reason << "\n";
    }
    lanl::AssembleResult assembled =
        lanl::AssembleTrace(imported, nodes_per_system_);
    if (assembled.dropped_out_of_range > 0) {
      std::cerr << "dropped " << assembled.dropped_out_of_range
                << " failures with node id >= " << nodes_per_system_
                << " (pass 0 or omit nodes-per-system to auto-size each"
                   " system from its log)\n";
    }
    return std::move(assembled.trace);
  }

 private:
  std::string path_;
  int nodes_per_system_;
};

}  // namespace

std::unique_ptr<TraceSource> MakeScenarioSource(synth::Scenario scenario,
                                                std::uint64_t seed) {
  return std::make_unique<ScenarioSource>(std::move(scenario), seed);
}

std::unique_ptr<TraceSource> MakeCsvDirSource(std::string dir) {
  return std::make_unique<CsvDirSource>(std::move(dir));
}

std::unique_ptr<TraceSource> MakeCheckpointSource(std::string checkpoint_path,
                                                  std::string trace_dir,
                                                  stream::EngineConfig config) {
  return std::make_unique<CheckpointSource>(std::move(checkpoint_path),
                                            std::move(trace_dir), config);
}

std::unique_ptr<TraceSource> MakeLanlSource(std::string path,
                                            int nodes_per_system) {
  return std::make_unique<LanlSource>(std::move(path), nodes_per_system);
}

}  // namespace hpcfail::engine
