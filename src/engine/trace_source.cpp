#include "engine/trace_source.h"

#include <fstream>
#include <stdexcept>
#include <utility>

#include <algorithm>
#include <iostream>

#include "engine/fingerprint.h"
#include "synth/generate.h"
#include "trace/csv.h"
#include "trace/lanl_import.h"

namespace hpcfail::engine {

std::string_view ToString(SourceKind k) {
  switch (k) {
    case SourceKind::kScenario: return "scenario";
    case SourceKind::kCsvDir: return "csv";
    case SourceKind::kStreamCheckpoint: return "checkpoint";
    case SourceKind::kLanlCsv: return "lanl";
    case SourceKind::kLog: return "log";
  }
  return "invalid";
}

namespace {

class ScenarioSource final : public TraceSource {
 public:
  ScenarioSource(synth::Scenario scenario, std::uint64_t seed)
      : scenario_(std::move(scenario)), seed_(seed) {}

  SourceKind kind() const override { return SourceKind::kScenario; }

  std::string label() const override {
    return "scenario systems=" + std::to_string(scenario_.systems.size()) +
           " seed=" + std::to_string(seed_);
  }

  std::optional<std::uint64_t> Fingerprint() const override {
    return HashScenario(scenario_, seed_);
  }

  Trace Acquire() const override {
    return synth::GenerateTrace(scenario_, seed_);
  }

 private:
  synth::Scenario scenario_;
  std::uint64_t seed_;
};

// The trace CSVs csv::LoadTrace reads, in the order they are hashed.
constexpr const char* kTraceCsvs[] = {
    "systems.csv",      "failures.csv", "maintenance.csv", "jobs.csv",
    "temperatures.csv", "neutrons.csv", "layout.csv",
};

class CsvDirSource final : public TraceSource {
 public:
  explicit CsvDirSource(std::string dir) : dir_(std::move(dir)) {}

  SourceKind kind() const override { return SourceKind::kCsvDir; }

  std::string label() const override { return "csv dir " + dir_; }

  std::optional<std::uint64_t> Fingerprint() const override {
    // Content-addressed over the raw bytes of every stream file; a missing
    // optional file hashes as "absent" (distinct from present-but-empty).
    // Without a readable systems.csv the import cannot succeed, so bypass
    // the cache and let Acquire() raise the real error.
    FingerprintHasher h;
    h.Str("hpcfail-csv-dir");
    bool any = false;
    for (const char* name : kTraceCsvs) {
      const std::optional<std::uint64_t> file =
          HashFileContents(dir_ + "/" + name);
      h.Bool(file.has_value());
      if (file) {
        h.U64(*file);
        any = true;
      }
    }
    if (!any) return std::nullopt;
    return h.value();
  }

  Trace Acquire() const override { return csv::LoadTrace(dir_); }

 private:
  std::string dir_;
};

class CheckpointSource final : public TraceSource {
 public:
  CheckpointSource(std::string checkpoint_path, std::string trace_dir,
                   stream::EngineConfig config)
      : checkpoint_path_(std::move(checkpoint_path)),
        trace_dir_(std::move(trace_dir)),
        config_(config) {}

  SourceKind kind() const override { return SourceKind::kStreamCheckpoint; }

  std::string label() const override {
    return "checkpoint " + checkpoint_path_ + " (systems from " + trace_dir_ +
           ")";
  }

  std::optional<std::uint64_t> Fingerprint() const override {
    // The replayed trace depends on the checkpoint bytes, the machine
    // configuration, and the engine config the checkpoint requires.
    const std::optional<std::uint64_t> ckpt =
        HashFileContents(checkpoint_path_);
    const std::optional<std::uint64_t> systems =
        HashFileContents(trace_dir_ + "/systems.csv");
    if (!ckpt || !systems) return std::nullopt;
    FingerprintHasher h;
    h.Str("hpcfail-stream-checkpoint");
    h.U64(*ckpt);
    h.U64(*systems);
    const std::optional<std::uint64_t> layout =
        HashFileContents(trace_dir_ + "/layout.csv");
    h.Bool(layout.has_value());
    if (layout) h.U64(*layout);
    h.I64(config_.stream.reorder_tolerance);
    h.I64(config_.window.window);
    return h.value();
  }

  Trace Acquire() const override {
    const Trace config_trace = csv::LoadTrace(trace_dir_);
    stream::StreamEngine engine(config_trace.systems(), config_);
    std::ifstream is(checkpoint_path_, std::ios::binary);
    if (!is) {
      throw std::runtime_error("cannot open checkpoint " + checkpoint_path_);
    }
    engine.RestoreCheckpoint(is);
    engine.Finish();

    Trace trace;
    for (const SystemConfig& s : config_trace.systems()) trace.AddSystem(s);
    for (const SystemConfig& s : config_trace.systems()) {
      for (const FailureRecord& f : engine.index().failures_of(s.id)) {
        trace.AddFailure(f);
      }
    }
    trace.Finalize();
    return trace;
  }

 private:
  std::string checkpoint_path_;
  std::string trace_dir_;
  stream::EngineConfig config_;
};

class LanlSource final : public TraceSource {
 public:
  LanlSource(std::string path, int nodes_per_system)
      : path_(std::move(path)), nodes_per_system_(nodes_per_system) {}

  SourceKind kind() const override { return SourceKind::kLanlCsv; }

  std::string label() const override {
    return "lanl log " + path_ +
           " nodes/system=" + std::to_string(nodes_per_system_);
  }

  std::optional<std::uint64_t> Fingerprint() const override {
    const std::optional<std::uint64_t> log = HashFileContents(path_);
    if (!log) return std::nullopt;
    FingerprintHasher h;
    h.Str("hpcfail-lanl-import");
    h.U64(*log);
    h.I64(nodes_per_system_);
    return h.value();
  }

  Trace Acquire() const override {
    // Since PR 9 this rides the adapter registry (the lanl_csv adapter is
    // the same per-row grammar, so records — and therefore reports — are
    // unchanged). The diagnostic summary keeps its pre-refactor shape.
    std::ifstream is(path_);
    if (!is) throw std::runtime_error("cannot open " + path_);
    const hpcfail::trace::LogAdapter* adapter =
        hpcfail::trace::FindAdapter("lanl_csv");
    hpcfail::trace::ParseResult parsed =
        hpcfail::trace::ParseLog(*adapter, is, {});
    std::cerr << "imported " << parsed.failures.size() << " failures, skipped "
              << parsed.counters.rejected << " rows\n";
    for (std::size_t i = 0; i < std::min<std::size_t>(5, parsed.issues.size());
         ++i) {
      std::cerr << "  line " << parsed.issues[i].line << ": "
                << parsed.issues[i].reason << "\n";
    }
    lanl::ImportResult imported;
    imported.failures = std::move(parsed.failures);
    lanl::AssembleResult assembled =
        lanl::AssembleTrace(imported, nodes_per_system_);
    if (assembled.dropped_out_of_range > 0) {
      std::cerr << "dropped " << assembled.dropped_out_of_range
                << " failures with node id >= " << nodes_per_system_
                << " (pass 0 or omit nodes-per-system to auto-size each"
                   " system from its log)\n";
    }
    return std::move(assembled.trace);
  }

 private:
  std::string path_;
  int nodes_per_system_;
};

class LogSource final : public TraceSource {
 public:
  LogSource(std::string path, std::string format,
            hpcfail::trace::AdapterOptions options, int nodes_per_system)
      : path_(std::move(path)),
        format_(std::move(format)),
        options_(std::move(options)),
        nodes_per_system_(nodes_per_system) {}

  SourceKind kind() const override { return SourceKind::kLog; }

  std::string label() const override {
    const hpcfail::trace::LogAdapter* resolved = TryResolve();
    const std::string name =
        resolved ? std::string(resolved->name()) : format_;
    return "log " + path_ + " format=" + name +
           " nodes/system=" + std::to_string(nodes_per_system_);
  }

  std::optional<std::uint64_t> Fingerprint() const override {
    const std::optional<std::uint64_t> log = HashFileContents(path_);
    if (!log) return std::nullopt;
    const hpcfail::trace::LogAdapter* resolved = TryResolve();
    if (!resolved) return std::nullopt;  // let Acquire() raise the real error
    FingerprintHasher h;
    h.Str("hpcfail-log-adapter");
    // The RESOLVED adapter name: an auto-detected syslog file and an
    // explicit --format syslog parse share cache entries, while two
    // formats' parses of the same bytes never can.
    h.Str(resolved->name());
    h.U64(*log);
    h.I64(nodes_per_system_);
    // Every option that can change the parsed records participates, even
    // ones the resolved adapter ignores today — cheaper than tracking
    // which adapter reads what, and never wrong, only oversensitive.
    h.I64(options_.syslog_base_year);
    h.I64(options_.default_system);
    h.Str(options_.syslog_rules);
    h.I64(options_.lanl.col_system);
    h.I64(options_.lanl.col_node);
    h.I64(options_.lanl.col_start);
    h.I64(options_.lanl.col_end);
    h.I64(options_.lanl.col_category);
    h.I64(options_.lanl.col_subcategory);
    h.Bool(options_.lanl.has_header);
    h.I64(options_.lanl.delimiter);
    return h.value();
  }

  Trace Acquire() const override {
    std::ifstream is(path_);
    if (!is) throw std::runtime_error("cannot open " + path_);
    std::string head;
    if (format_.empty() || format_ == "auto") {
      head = hpcfail::trace::SniffHead(is);
    }
    const hpcfail::trace::LogAdapter& adapter =
        hpcfail::trace::ResolveAdapter(format_, head);
    hpcfail::trace::ParseResult parsed =
        hpcfail::trace::ParseLog(adapter, is, options_);
    std::cerr << "ingested " << parsed.failures.size() << " records via "
              << adapter.name() << ", ignored " << parsed.counters.ignored
              << ", rejected " << parsed.counters.rejected << " lines\n";
    for (std::size_t i = 0; i < std::min<std::size_t>(5, parsed.issues.size());
         ++i) {
      std::cerr << "  line " << parsed.issues[i].line << ": "
                << parsed.issues[i].reason << "\n";
    }
    lanl::ImportResult imported;
    imported.failures = std::move(parsed.failures);
    lanl::AssembleResult assembled =
        lanl::AssembleTrace(imported, nodes_per_system_);
    if (assembled.dropped_out_of_range > 0) {
      std::cerr << "dropped " << assembled.dropped_out_of_range
                << " failures with node id >= " << nodes_per_system_ << "\n";
    }
    return std::move(assembled.trace);
  }

 private:
  // Resolution without throwing: nullptr when the name is unknown, or when
  // format is auto and the file is missing/undetectable.
  const hpcfail::trace::LogAdapter* TryResolve() const {
    if (!format_.empty() && format_ != "auto") {
      return hpcfail::trace::FindAdapter(format_);
    }
    std::ifstream is(path_);
    if (!is) return nullptr;
    return hpcfail::trace::DetectAdapter(hpcfail::trace::SniffHead(is));
  }

  std::string path_;
  std::string format_;
  hpcfail::trace::AdapterOptions options_;
  int nodes_per_system_;
};

}  // namespace

std::unique_ptr<TraceSource> MakeScenarioSource(synth::Scenario scenario,
                                                std::uint64_t seed) {
  return std::make_unique<ScenarioSource>(std::move(scenario), seed);
}

std::unique_ptr<TraceSource> MakeCsvDirSource(std::string dir) {
  return std::make_unique<CsvDirSource>(std::move(dir));
}

std::unique_ptr<TraceSource> MakeCheckpointSource(std::string checkpoint_path,
                                                  std::string trace_dir,
                                                  stream::EngineConfig config) {
  return std::make_unique<CheckpointSource>(std::move(checkpoint_path),
                                            std::move(trace_dir), config);
}

std::unique_ptr<TraceSource> MakeLanlSource(std::string path,
                                            int nodes_per_system) {
  return std::make_unique<LanlSource>(std::move(path), nodes_per_system);
}

std::unique_ptr<TraceSource> MakeLogSource(std::string path,
                                           std::string format,
                                           trace::AdapterOptions options,
                                           int nodes_per_system) {
  return std::make_unique<LogSource>(std::move(path), std::move(format),
                                     std::move(options), nodes_per_system);
}

}  // namespace hpcfail::engine
