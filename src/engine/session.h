// AnalysisSession: the one entry point every binary (figure benches,
// hpcfail_report, hpcfail_stream replay) uses to go from "inputs" to "trace +
// prebuilt event index". It owns the acquisition chain:
//
//   TraceSource -> [artifact cache probe] -> Trace -> EventStoreSet
//
// On construction the session fingerprints the source, probes the
// content-addressed artifact cache (engine/trace_cache.h), falls back to
// TraceSource::Acquire() on any miss, stores the result for the next run,
// and builds the per-system event stores once. The stores themselves are a
// second cached artifact: a warm run restores the prebuilt SoA columns from
// an index snapshot (engine/index_snapshot.h, kind "index" under the same
// fingerprint) instead of re-running EventStoreSet::Build, and a cold run
// stores the snapshot it built. Cold and warm runs yield bit-identical
// traces AND columns — the cache can change only timing, never results —
// and every step is visible in stats() / StatsJson().
//
// Index access: index() is the all-systems view; IndexFor() makes subset
// views (e.g. group-1 vs group-2 systems) that SHARE the session's prebuilt
// stores, so a bench carving five subsets pays for one store build.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>

#include "core/event_index.h"
#include "engine/arg_parser.h"
#include "engine/trace_cache.h"
#include "engine/trace_source.h"

namespace hpcfail::engine {

// The repo-wide default generator seed (DSN 2013, the paper's venue/year).
inline constexpr std::uint64_t kDefaultSeed = 2013;

struct SessionOptions {
  // dir (empty = DefaultCacheDir()), enabled, per-kind bitmask
  // (--cache-artifacts), size budget (--cache-budget-mb).
  CacheConfig cache;
};

class AnalysisSession {
 public:
  struct Stats {
    SourceKind source = SourceKind::kScenario;
    std::string label;
    std::optional<std::uint64_t> fingerprint;
    bool cache_enabled = false;
    bool cache_hit = false;
    bool cache_stored = false;
    std::string cache_diagnostic;  // "hit", "no cache entry", "corrupt ..."
    double load_seconds = 0.0;     // acquire-or-load wall time
    // The index-snapshot artifact (kind "index", same fingerprint): hit =
    // stores restored from the cache, stored = this run wrote the snapshot.
    bool index_cache_hit = false;
    bool index_cache_stored = false;
    std::string index_diagnostic;
    double index_seconds = 0.0;  // store build-or-restore wall time
    std::size_t num_systems = 0;
    std::size_t num_failures = 0;
  };

  explicit AnalysisSession(std::unique_ptr<TraceSource> source,
                           SessionOptions options = {});

  static AnalysisSession FromScenario(synth::Scenario scenario,
                                      std::uint64_t seed,
                                      SessionOptions options = {});
  static AnalysisSession FromCsvDir(std::string dir,
                                    SessionOptions options = {});
  static AnalysisSession FromCheckpoint(std::string checkpoint_path,
                                        std::string trace_dir,
                                        stream::EngineConfig config,
                                        SessionOptions options = {});
  static AnalysisSession FromLanl(std::string path, int nodes_per_system,
                                  SessionOptions options = {});
  // Any single-file log via the trace/adapter registry; `format` is an
  // adapter name or "auto" (sniffed from the file head).
  static AnalysisSession FromLog(std::string path, std::string format,
                                 hpcfail::trace::AdapterOptions adapter_options,
                                 int nodes_per_system,
                                 SessionOptions options = {});

  AnalysisSession(AnalysisSession&&) = default;
  AnalysisSession(const AnalysisSession&) = delete;
  AnalysisSession& operator=(const AnalysisSession&) = delete;

  const Trace& trace() const { return *trace_; }

  // All-systems index over the session's shared stores.
  const core::EventIndex& index() const { return index_; }

  // Subset view sharing the same stores (no per-call store rebuild). Throws
  // std::out_of_range for a system the trace does not contain.
  core::EventIndex IndexFor(std::span<const SystemId> systems) const;

  const Stats& stats() const { return stats_; }
  // One JSON object (single line, no trailing newline) with every Stats
  // field; fingerprint is rendered as 16 hex digits.
  std::string StatsJson() const;

  // The session's shared store set (what index() views). SessionSet's
  // parity tests compare merged shard columns against these directly.
  const std::shared_ptr<const core::EventStoreSet>& stores() const {
    return stores_;
  }

 private:
  struct Prepared {
    std::shared_ptr<const Trace> trace;
    std::shared_ptr<const core::EventStoreSet> stores;
    Stats stats;
  };

  // Restore-or-build of the event stores (the index artifact path) on top
  // of an acquired trace.
  static Prepared Prepare(std::pair<Trace, Stats> acquired,
                          const SessionOptions& options);

  explicit AnalysisSession(Prepared prepared);

  // Heap-held so the index's internal pointers survive moves of the session.
  std::shared_ptr<const Trace> trace_;
  std::shared_ptr<const core::EventStoreSet> stores_;
  core::EventIndex index_;
  Stats stats_;
};

// What every renderer and analyzer actually consumes: a (trace, index)
// pair. An AnalysisSession converts implicitly, and a SessionSet's merged
// shard view constructs one without owning a session — the same report code
// renders both, which is how sharded output is proven byte-identical to
// monolithic output. Non-owning: both referents must outlive the view.
class AnalysisView {
 public:
  AnalysisView(const Trace& trace, const core::EventIndex& index)
      : trace_(&trace), index_(&index) {}
  AnalysisView(const AnalysisSession& session)  // NOLINT(runtime/explicit)
      : trace_(&session.trace()), index_(&session.index()) {}

  const Trace& trace() const { return *trace_; }
  const core::EventIndex& index() const { return *index_; }

 private:
  const Trace* trace_;
  const core::EventIndex* index_;
};

// Runs the session acquisition chain (fingerprint -> cache probe ->
// TraceSource::Acquire -> cache store, under the per-fingerprint
// single-flight) WITHOUT building event stores. AnalysisSession's
// constructor uses it; SessionSet reuses it to acquire the parent trace
// once and then build per-shard stores its own way.
std::pair<Trace, AnalysisSession::Stats> AcquireTrace(
    const TraceSource& source, const SessionOptions& options);

// The "index" artifact kind's restore-or-build: probes the cache for a
// column snapshot under `fingerprint` (single-flighted on a kind-derived
// key), restores and validates it against `trace` on a hit, and otherwise
// runs EventStoreSet::Build(trace, systems, start_range) and stores the
// snapshot it built. Always returns usable stores; `hit` / `stored` /
// `diagnostic` report what the cache did (store failures append to the
// diagnostic, they never fail the build). AnalysisSession uses it with the
// full trace; SessionSet calls it once per shard with the shard's system
// block, start range, and shard fingerprint.
core::EventStoreSet RestoreOrBuildStores(
    const Trace& trace, std::span<const SystemId> systems,
    TimeInterval start_range, std::optional<std::uint64_t> fingerprint,
    ArtifactCache& cache, bool* hit, bool* stored, std::string* diagnostic);

// The JSON object AnalysisSession::StatsJson renders, callable on a bare
// Stats (SessionSet embeds its parent acquisition stats this way).
std::string StatsJson(const AnalysisSession::Stats& stats);

// ---- Shared standard flags (--threads, --seed, --cache-dir, --no-cache,
// --cache-artifacts, --cache-budget-mb, --json), used by every bench and
// tool so the surface stays uniform.

struct StandardOptions {
  int threads = 0;                    // 0 = hardware concurrency
  std::uint64_t seed = kDefaultSeed;  // synthetic-generation seed
  std::string cache_dir;              // empty = DefaultCacheDir()
  bool no_cache = false;
  // Comma-separated artifact kinds the cache serves ("trace,index,
  // bootstrap"; "" or "all" = every kind, "none" = none). Parsed by
  // ParseArtifactKinds in MakeSessionOptions.
  std::string cache_artifacts;
  // Cache directory size budget in MiB (0 = $HPCFAIL_CACHE_BUDGET_MB, or
  // unlimited); enforced best-effort after each store.
  std::uint64_t cache_budget_mb = 0;
  bool json = false;
};

void AddStandardOptions(ArgParser& parser, StandardOptions* opts);

// Applies process-level settings (worker thread count).
void ApplyStandardOptions(const StandardOptions& opts);

// Builds the session cache config from parsed flags. A malformed
// --cache-artifacts spec is a usage error like any other bad flag value:
// reported to stderr and exit 2, matching ArgParser::ParseOrExit.
SessionOptions MakeSessionOptions(const StandardOptions& opts);

}  // namespace hpcfail::engine
