// Single-flight serialization of trace builds by fingerprint. Before this,
// two threads opening sessions with the same fingerprint at the same moment
// both missed the (empty) cache and both ran the full acquire — N concurrent
// requests for one trace meant N generator runs and N racing Store()s (the
// tmp+rename kept entries intact, but the work was duplicated N times: the
// classic cache stampede hpcfaild would hit on every cold popular key).
//
// KeyedMutex hands out one mutex per live key: the first thread in builds
// and stores, the others block on the same key and — re-probing the cache
// after they acquire — load the entry the builder just wrote. Distinct keys
// never contend. The per-key entry is refcounted and reclaimed when the
// last holder releases, so the map stays bounded by in-flight builds, not
// by history.
//
// Instrumentation: hpcfail_engine_build_singleflight_waits_total counts
// acquisitions that had to wait behind a same-key builder (the requests a
// stampede would have duplicated).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

namespace hpcfail::engine {

class KeyedMutex {
 public:
  KeyedMutex() = default;
  KeyedMutex(const KeyedMutex&) = delete;
  KeyedMutex& operator=(const KeyedMutex&) = delete;

  // Process-wide instance used by AnalysisSession acquisition.
  static KeyedMutex& Global();

  class Guard {
   public:
    Guard(Guard&& other) noexcept;
    Guard& operator=(Guard&&) = delete;
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard();

    // True when this acquisition blocked behind another holder of the same
    // key (i.e. the work was about to be duplicated).
    bool waited() const { return waited_; }

   private:
    friend class KeyedMutex;
    Guard(KeyedMutex* owner, std::uint64_t key, bool waited)
        : owner_(owner), key_(key), waited_(waited) {}
    KeyedMutex* owner_;
    std::uint64_t key_;
    bool waited_;
  };

  // Blocks until `key` is exclusively held by the caller.
  Guard Lock(std::uint64_t key);

  // Live per-key entries (keys some Guard currently holds or waits on).
  // Exposed so tests can assert the map does not leak.
  std::size_t live_keys() const;

 private:
  struct Entry {
    std::mutex m;
    int refs = 0;  // guarded by mu_
  };

  void Unlock(std::uint64_t key);

  mutable std::mutex mu_;
  std::map<std::uint64_t, std::shared_ptr<Entry>> entries_;
};

}  // namespace hpcfail::engine
