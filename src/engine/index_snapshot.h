// Column snapshot codec for the "index" artifact kind: serializes a built
// core::EventStoreSet (the SoA columns a session or shard queries) so warm
// runs restore the index from the artifact cache instead of re-running
// EventStoreSet::Build over the trace's failure stream.
//
// The snapshot stores the column data only — system ids, global columns and
// the per-node / per-rack bundles. Everything derived from the system config
// (config pointer, rack_of, rack_size, bundle counts) is rebuilt by
// SystemEventStore::Init against the live trace on restore, so a snapshot
// can never carry a stale machine layout. After the columns are filled,
// SystemEventStore::ValidateRestored proves the restored store is
// row-for-row what Build would have produced (every row valid and sorted,
// bundles exactly the partition of the global columns); any violation
// throws stream::snapshot::SnapshotError and the cache treats the entry as
// corrupt (delete + miss + rebuild).
//
// Lives in engine/ (not core/) because core cannot depend on
// stream/snapshot.h: hpcfail_streaming links hpcfail_core.
#pragma once

#include <span>

#include "core/event_store.h"
#include "stream/snapshot.h"
#include "trace/system.h"

namespace hpcfail::engine {

// Appends the set's columns to `w`. The set must hold finished stores (as
// produced by EventStoreSet::Build / Concatenate).
void SerializeStoreSet(const core::EventStoreSet& set,
                       stream::snapshot::Writer* w);

// Rebuilds a store set over `trace` from a snapshot payload. `systems`
// names the stores the caller expects, in order (empty = every system of
// the trace, like EventStoreSet::Build); a snapshot describing any other
// system sequence is rejected. Throws stream::snapshot::SnapshotError on
// any mismatch, truncation, or validation failure — callers degrade to a
// cache miss and rebuild.
core::EventStoreSet DeserializeStoreSet(const Trace& trace,
                                        std::span<const SystemId> systems,
                                        stream::snapshot::Reader* r);

}  // namespace hpcfail::engine
