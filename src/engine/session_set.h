// SessionSet: fleet-scale sharded sessions. Where AnalysisSession owns ONE
// trace and one store build, a SessionSet partitions a trace's failures
// across a grid of shards keyed by (system-block, rolling start-time
// window) — see engine/shard_plan.h — and manages them as independently
// fingerprinted, independently cached, independently evictable units:
//
//   parent TraceSource -> AcquireTrace (shared fingerprint/cache path)
//     -> ShardPlan over (spec, systems)
//       -> per-shard EventStoreSet builds, in parallel on the thread pool,
//          each under per-fingerprint single-flight (KeyedMutex), each
//          load-or-store'd in the content-addressed artifact cache — as a
//          prebuilt column snapshot (kind "index", restored straight
//          against the parent trace) with a sliced sub-trace (kind
//          "trace") as the fallback entry
//     -> LRU eviction of cold shards down to a configurable memory budget
//
// Query surface, two tiers:
//   1. Merged view (Merged()): the shards' columns concatenated back into
//      one EventStoreSet + EventIndex. trace.failures() is (start, system,
//      node)-sorted and shard assignment is a function of (system, start)
//      alone, so concatenating each system's shard columns in window order
//      reproduces the monolithic build column-for-column — every analyzer
//      and report renderer run over the merged AnalysisView is bit-identical
//      to the monolithic session (the parity suite and the ci.sh byte-
//      identity gate prove it).
//   2. Per-shard composition (SameNodeConditional, MergedCount): computed
//      shard-by-shard and merged as integer count sums, with windows that
//      cross a shard boundary peeking into the following windows' stores.
//      Exact, not approximate: same successes/trials as the monolithic
//      WindowAnalyzer, hence bit-identical Wilson intervals.
//
// Thread safety: every public method is safe to call concurrently. Readers
// hold shared_ptrs to immutable Shard objects, so eviction never invalidates
// a shard a reader is still using — it only drops the set's own reference.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/event_index.h"
#include "engine/session.h"
#include "engine/shard_plan.h"
#include "engine/single_flight.h"
#include "engine/trace_cache.h"
#include "engine/trace_source.h"
#include "stats/proportion.h"

namespace hpcfail::engine {

struct SessionSetOptions {
  ShardSpec shard;
  // Systems to cover (empty = all trace systems, trace order). Invalid
  // (negative) ids are kept in the plan and yield empty shards — the
  // EventStoreSet::Build skip contract, tested at this layer. Valid ids the
  // trace does not contain throw std::out_of_range at construction.
  std::vector<SystemId> systems;
  // Evict cold shards (LRU) until resident shard bytes fit; 0 = unlimited.
  // The most recently built shard is never evicted by its own publish.
  std::size_t memory_budget_bytes = 0;
  CacheConfig cache;  // parent trace AND per-shard sub-trace entries
  // Store/load per-shard sub-traces in the artifact cache (only effective
  // when cache.enabled and the parent source has a fingerprint).
  bool cache_shards = true;
};

class SessionSet {
 public:
  // One built shard. Immutable after publish; safe to use after eviction
  // (eviction only drops the SessionSet's reference).
  struct Shard {
    ShardKey key;
    std::uint64_t fingerprint = 0;
    TimeInterval starts;            // start-range (sentinel-open at edges)
    std::vector<SystemId> systems;  // the block's ids, invalid ones included
    std::shared_ptr<const core::EventStoreSet> stores;
    std::size_t num_failures = 0;
    std::size_t resident_bytes = 0;
    bool from_cache = false;    // stores restored from a cached artifact
                                // (index snapshot or sub-trace)
    bool cache_stored = false;  // this build wrote a cache entry

   private:
    friend class SessionSet;
    // Keeps a cache-loaded sub-trace alive: the stores' config pointers
    // point into it. Null when built from the parent trace.
    std::shared_ptr<const Trace> backing;
  };

  struct Stats {
    std::uint64_t builds = 0;       // shard store builds run (incl. rebuilds)
    std::uint64_t rebuilds = 0;     // builds of previously evicted shards
    std::uint64_t coalesced = 0;    // GetShard calls that waited on a build
    std::uint64_t cache_hits = 0;   // shard sub-traces loaded from the cache
    std::uint64_t cache_stores = 0;
    std::uint64_t evictions = 0;
    std::uint64_t merges = 0;       // merged views published
    std::size_t resident_shards = 0;
    std::size_t resident_bytes = 0;
  };

  // The merged monolithic-equivalent view over a set of shards. Column data
  // is copied out of the shards at construction, so it stays valid however
  // the SessionSet evicts afterwards, and the parent trace is kept alive by
  // shared ownership.
  class MergedView {
   public:
    const Trace& trace() const { return *trace_; }
    const core::EventIndex& index() const { return index_; }
    const core::EventStoreSet& stores() const { return *stores_; }
    AnalysisView view() const { return AnalysisView(*trace_, index_); }
    std::size_t num_failures() const;

   private:
    friend class SessionSet;
    MergedView(std::shared_ptr<const Trace> trace,
               std::shared_ptr<const core::EventStoreSet> stores)
        : trace_(std::move(trace)),
          stores_(std::move(stores)),
          index_(*trace_, stores_) {}

    std::shared_ptr<const Trace> trace_;
    std::shared_ptr<const core::EventStoreSet> stores_;
    core::EventIndex index_;
  };

  // Acquires the parent trace through the shared fingerprint -> cache ->
  // Acquire chain (AcquireTrace), then plans the shard grid. No shard is
  // built yet; GetShard / BuildAll / Merged build on demand.
  SessionSet(std::unique_ptr<TraceSource> source, SessionSetOptions options);

  // Plans over an already-acquired trace (benches and tests that want to
  // time or exercise sharding without re-acquisition). No parent
  // fingerprint, so shard caching is off.
  SessionSet(std::shared_ptr<const Trace> trace, SessionSetOptions options);

  static SessionSet FromScenario(synth::Scenario scenario, std::uint64_t seed,
                                 SessionSetOptions options);

  SessionSet(const SessionSet&) = delete;
  SessionSet& operator=(const SessionSet&) = delete;

  const Trace& trace() const { return *trace_; }
  const ShardPlan& plan() const { return plan_; }
  const AnalysisSession::Stats& source_stats() const { return source_stats_; }
  std::vector<ShardKey> Keys() const { return plan_.Keys(); }

  // Returns the shard, building (or rebuilding, after eviction) it if it is
  // not resident. Same-fingerprint builds are single-flighted: concurrent
  // callers for one shard run ONE build and share the result. Throws
  // std::out_of_range for a key outside the plan's grid.
  std::shared_ptr<const Shard> GetShard(ShardKey key);

  // The shard if currently resident, else nullptr (never builds).
  std::shared_ptr<const Shard> FindResident(ShardKey key) const;

  // Builds every shard of the grid in parallel on the thread pool. With a
  // memory budget smaller than the grid, trailing builds evict the coldest
  // shards as they publish.
  void BuildAll();

  // The merged all-shards view, built once and cached until DropMerged().
  // Missing shards are (re)built first.
  std::shared_ptr<const MergedView> Merged();
  // Merged view over a subset of shards (deduplicated, merged in key order;
  // throws std::out_of_range on a key outside the grid). Not cached.
  std::shared_ptr<const MergedView> Merged(std::span<const ShardKey> keys);
  void DropMerged();

  // Per-shard-composed same-node conditional probability: bit-identical to
  // WindowAnalyzer(monolithic index).ConditionalProbability(trigger, target,
  // Scope::kSameNode, window). Follow-up windows that cross a shard
  // boundary read the following windows' stores. Throws
  // std::invalid_argument when window <= 0.
  stats::Proportion SameNodeConditional(const core::EventFilter& trigger,
                                        const core::EventFilter& target,
                                        TimeSec window);

  // Per-shard-composed total matching failures; equals the monolithic
  // EventIndex::Count over the same systems.
  long long MergedCount(const core::EventFilter& filter);

  // Re-applies a new budget immediately (may evict every resident shard).
  void SetMemoryBudget(std::size_t bytes);

  Stats stats() const;
  // One-line JSON: parent acquisition stats + spec + grid shape + the
  // Stats counters + a per-shard array (resident/evicted, sizes, cache
  // provenance). The /shards endpoint body.
  std::string StatsJson() const;
  // One-line JSON for one shard, building it if needed; nullopt when the
  // key is outside the grid (the serve layer's 404).
  std::optional<std::string> ShardStatsJson(ShardKey key);

 private:
  struct Slot {
    std::shared_ptr<const Shard> shard;  // null when not resident
    bool built_before = false;
  };

  SessionSet(std::pair<Trace, AnalysisSession::Stats> acquired,
             SessionSetOptions options);

  std::uint64_t ShardFingerprintFor(ShardKey key) const;
  std::shared_ptr<const Shard> BuildShard(ShardKey key, std::uint64_t fp);
  Trace SliceShardTrace(ShardKey key) const;
  void TouchLocked(std::size_t idx);
  void EvictOverBudgetLocked(std::size_t keep_idx);
  std::string ShardJsonLocked(std::size_t idx) const;
  std::vector<std::shared_ptr<const Shard>> PinAll();

  std::shared_ptr<const Trace> trace_;
  AnalysisSession::Stats source_stats_;
  SessionSetOptions options_;
  ShardPlan plan_;
  KeyedMutex flights_;  // per-shard-fingerprint single-flight

  mutable std::mutex mu_;
  std::vector<Slot> slots_;        // dense, plan_.IndexOf order
  std::vector<std::size_t> lru_;   // resident slot indices, front = hottest
  Stats stats_;
  std::shared_ptr<const MergedView> merged_;
};

}  // namespace hpcfail::engine
