// Short display labels shared by the figure benches, the report tool and the
// stream tool (previously duplicated in bench/bench_common.h and tools/).
#pragma once

#include "trace/failure.h"

namespace hpcfail::engine {

// Compact column labels for the six root-cause categories, as printed in the
// paper's figures ("HW", "SW", ...). ToString(c) remains the long/CSV form.
inline const char* ShortCategoryLabel(FailureCategory c) {
  switch (c) {
    case FailureCategory::kEnvironment: return "ENV";
    case FailureCategory::kHardware: return "HW";
    case FailureCategory::kHuman: return "HUMAN";
    case FailureCategory::kNetwork: return "NET";
    case FailureCategory::kSoftware: return "SW";
    case FailureCategory::kUndetermined: return "UNDET";
  }
  return "?";
}

}  // namespace hpcfail::engine
