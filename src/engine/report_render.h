// The operator-facing analysis report, factored out of hpcfail_report so
// the CLI and the hpcfaild service render the SAME bytes. RenderReport is
// the whole report; the section renderers compose to it exactly, so a
// service query for one named table returns a byte-identical substring of
// what `hpcfail_report` prints for the same trace.
//
// Cancellation. Every renderer takes an optional CancelFn checked between
// sections and inside the per-system loops (the cooperative cancellation
// points for hpcfaild's per-request deadlines). When it returns true the
// renderer throws RenderCancelled; nothing more is written to `os`, but
// bytes already streamed stay streamed — callers who need all-or-nothing
// render into an intermediate buffer (the service does).
#pragma once

#include <functional>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "engine/session.h"

namespace hpcfail::engine {

// Returns true to abort rendering (e.g. a request deadline expired).
using CancelFn = std::function<bool()>;

class RenderCancelled : public std::runtime_error {
 public:
  explicit RenderCancelled(const std::string& where)
      : std::runtime_error("render cancelled at " + where) {}
};

// Sections, in report order. Each starts with its own heading; every
// section after the first begins with the "\n" separator the full report
// would print there, so concatenating all sections == RenderReport.
void RenderOverview(const AnalysisView& view, std::ostream& os,
                    const CancelFn& cancel = {});
void RenderCorrelations(const AnalysisView& view, std::ostream& os,
                        const CancelFn& cancel = {});
void RenderPerSystem(const AnalysisView& view, std::ostream& os,
                     const CancelFn& cancel = {});
void RenderEnvironment(const AnalysisView& view, std::ostream& os,
                       const CancelFn& cancel = {});
void RenderUsage(const AnalysisView& view, std::ostream& os,
                 const CancelFn& cancel = {});

// The full report: every section above, in order.
void RenderReport(const AnalysisView& view, std::ostream& os,
                  const CancelFn& cancel = {});

// Named-section lookup for the service ("overview", "correlations",
// "persystem", "environment", "usage", "report"). Returns false for an
// unknown name, leaving `os` untouched.
bool RenderNamed(std::string_view name, const AnalysisView& view,
                 std::ostream& os, const CancelFn& cancel = {});

// The names RenderNamed accepts, sorted, for error messages and --help.
const std::vector<std::string>& RenderableNames();

}  // namespace hpcfail::engine
