// The --bootstrap report section: per-system bootstrap confidence intervals
// for interarrival-time statistics (mean and median of the gaps between
// consecutive failure starts), backed by the "bootstrap" artifact kind of
// the cache.
//
// The expensive stage — the resampled replicate tables
// (stats::BootstrapReplicates) — is persisted keyed by (trace fingerprint,
// "interarrival", seed, resamples); the confidence level is applied at
// render time (stats::ResultFromTable), so one cached table serves any
// confidence. Warm renders decode the tables instead of resampling, and the
// rendered bytes are identical cold vs warm: both paths read the interval
// off the same (estimate, sorted replicates) rows, stored as exact IEEE-754
// bit patterns. A body that fails to decode degrades to a miss
// (ArtifactCache::EvictCorrupt) and the section recomputes.
//
// Used by hpcfail_report (--bootstrap) and hpcfaild (target "bootstrap"),
// which therefore serve byte-identical sections.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "engine/report_render.h"
#include "engine/session.h"
#include "engine/trace_cache.h"

namespace hpcfail::engine {

struct BootstrapOptions {
  std::uint64_t seed = kDefaultSeed;  // replicate RNG seed (cache-keyed)
  int resamples = 1000;               // replicates per statistic (cache-keyed)
  double confidence = 0.95;           // applied at render time, NOT keyed
};

struct BootstrapRenderStats {
  bool cache_hit = false;     // replicate tables decoded from the cache
  bool cache_stored = false;  // this render wrote the tables
  std::string diagnostic;     // "hit", "no cache entry", "corrupt ...", ...
};

// The artifact key for the replicate tables of `fingerprint`'s trace.
std::uint64_t BootstrapArtifactKey(std::uint64_t fingerprint,
                                   const BootstrapOptions& options);

// Renders the bootstrap section (heading + one table row per eligible
// system and statistic) to `os`, loading or storing the replicate tables
// through `cache` when `fingerprint` is set. Cancellation follows the
// report renderers: throws RenderCancelled between systems, nothing more is
// written. Throws std::invalid_argument when options are out of range
// (resamples < 2 or confidence outside (0,1)).
BootstrapRenderStats RenderBootstrapTable(const AnalysisView& view,
                                          std::optional<std::uint64_t>
                                              fingerprint,
                                          ArtifactCache& cache,
                                          const BootstrapOptions& options,
                                          std::ostream& os,
                                          const CancelFn& cancel = {});

}  // namespace hpcfail::engine
