// Content-addressed on-disk artifact cache. Originally a single-kind store
// for acquired traces; now a multi-kind cache keyed by (artifact kind,
// fingerprint, per-kind schema version):
//
//   trace      — the acquired, sorted trace (warm runs skip regeneration /
//                reparsing); payload body = SerializeTrace
//   index      — a prebuilt EventStoreSet column snapshot (warm sessions and
//                SessionSet shards skip column building entirely); body =
//                engine/index_snapshot.h
//   bootstrap  — bootstrap replicate tables (warm --bootstrap reports and
//                hpcfaild bootstrap queries reuse the resampled statistics);
//                body = engine/bootstrap_table.cpp
//
// Each entry is one file, `<dir>/<kind>-<fingerprint16hex>.bin` (kinds never
// collide: they live under distinct prefixes), using the stream/snapshot.h
// envelope (magic, format version, payload size, FNV-1a-64 checksum) around
// a payload of
//
//   artifact tag            — 8-byte per-kind tag ("HFTRACE0", "HFINDEX0",
//                             "HFBOOT00"); rejects snapshots of other kinds
//   u32 schema version      — per-kind (kTraceSchemaVersion, ...); stale
//                             entries miss instead of being misdecoded
//   u64 key fingerprint     — must equal the requested key; a renamed or
//                             colliding file misses instead of lying
//   kind-specific body      — opaque to the cache (TryLoadBody returns it,
//                             StoreBody writes it); the trace kind's codec
//                             (SerializeTrace/DeserializeTrace) lives here
//
// Every failure mode degrades to a miss with a distinct human-readable
// diagnostic (the `diagnostic` out-params) and the caller regenerates: the
// cache can cost a rebuild, never a wrong answer. Unreadable entries are
// deleted so the next store self-heals; callers whose kind-specific body
// fails to decode report it via EvictCorrupt for the same self-heal.
//
// Write path: each store writes to a unique temp name
// (`<entry>.tmp.<pid>.<seq>` — two processes storing the same key never
// interleave writes into one file), flushes and closes the stream, checks
// both for failure, and only then renames into place; a failed write or
// rename always removes the temp file. Stores also sweep orphaned
// `*.tmp.*` files older than an age threshold (left by crashed writers)
// and, when a size budget is configured (`budget_bytes` /
// $HPCFAIL_CACHE_BUDGET_MB), delete oldest-mtime entries until the
// directory fits — never touching keys this process has stored or hit
// (its live working set).
//
// Instrumentation (src/obs/): cache_load / cache_store spans plus
// hpcfail_cache_{hit,miss,store,evicted_corrupt,evicted_budget,
// orphan_tmp_removed}_total and hpcfail_cache_bytes_{read,written}_total
// counters.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "stream/snapshot.h"
#include "trace/system.h"

namespace hpcfail::engine {

// The artifact kinds the cache stores. Values are stable (they index the
// tag/prefix tables and form the `kinds` bitmask).
enum class ArtifactKind : std::uint8_t {
  kTrace = 0,
  kIndex = 1,
  kBootstrap = 2,
};
inline constexpr unsigned kNumArtifactKinds = 3;

constexpr unsigned ArtifactKindBit(ArtifactKind kind) {
  return 1u << static_cast<unsigned>(kind);
}
inline constexpr unsigned kAllArtifactKinds = (1u << kNumArtifactKinds) - 1;

// "trace", "index", "bootstrap" — the CLI spelling and the entry-file
// prefix.
std::string_view ToString(ArtifactKind kind);

// The 8-byte payload tag distinguishing kinds inside an envelope.
std::string_view ArtifactTag(ArtifactKind kind);

// Bump whenever the serialized trace layout or the fingerprint recipe
// (engine/fingerprint.cpp) changes; older entries then miss as "stale
// schema" instead of being misdecoded.
inline constexpr std::uint32_t kTraceSchemaVersion = 1;
// Bump whenever the EventStoreSet column snapshot layout
// (engine/index_snapshot.cpp) or the store column semantics change.
inline constexpr std::uint32_t kIndexSchemaVersion = 1;
// Bump whenever the bootstrap replicate-table payload or the statistic
// definitions (engine/bootstrap_table.cpp) change.
inline constexpr std::uint32_t kBootstrapSchemaVersion = 1;

std::uint32_t ArtifactSchemaVersion(ArtifactKind kind);

// Parses a --cache-artifacts spec ("trace,index,bootstrap") into a kind
// bitmask. "" and "all" mean every kind, "none" means no kind; unknown
// names throw std::invalid_argument naming the valid spellings.
unsigned ParseArtifactKinds(std::string_view spec);

// Cache location resolution: explicit dir > $HPCFAIL_CACHE_DIR > the
// in-tree default ".hpcfail-cache" (gitignored).
std::string DefaultCacheDir();

// $HPCFAIL_CACHE_BUDGET_MB in bytes; 0 (unlimited) when unset or
// unparseable.
std::uint64_t DefaultCacheBudgetBytes();

struct CacheConfig {
  std::string dir;       // empty = DefaultCacheDir()
  bool enabled = true;   // false (--no-cache) bypasses load AND store
  // Bitmask of ArtifactKindBit()s the cache serves; disabled kinds miss on
  // load ("artifact kind disabled") and skip stores.
  unsigned kinds = kAllArtifactKinds;
  // Best-effort directory size budget enforced after each store (oldest
  // mtime evicted first, live keys spared). 0 = DefaultCacheBudgetBytes()
  // (i.e. $HPCFAIL_CACHE_BUDGET_MB, or unlimited).
  std::uint64_t budget_bytes = 0;
};

class ArtifactCache {
 public:
  explicit ArtifactCache(CacheConfig config);

  bool enabled() const { return config_.enabled; }
  bool KindEnabled(ArtifactKind kind) const {
    return config_.enabled && (config_.kinds & ArtifactKindBit(kind)) != 0;
  }
  const std::string& dir() const { return config_.dir; }
  std::uint64_t budget_bytes() const { return config_.budget_bytes; }

  // Entry path for a key (exists or not). The one-argument form is the
  // trace kind (the original single-kind API).
  std::string EntryPath(std::uint64_t fingerprint) const;
  std::string EntryPath(ArtifactKind kind, std::uint64_t fingerprint) const;

  // Returns the cached trace on a hit; nullopt on any miss, with the reason
  // ("no cache entry", "corrupt cache entry (...)", "stale cache schema
  // (...)", "cache fingerprint mismatch (...)", ...) in `diagnostic`.
  std::optional<Trace> TryLoad(std::uint64_t fingerprint,
                               std::string* diagnostic);

  // Serializes and stores `trace` under the key; returns false (with a
  // diagnostic) when the directory or file cannot be written — callers
  // treat that as a warning, never an error.
  bool Store(std::uint64_t fingerprint, const Trace& trace,
             std::string* diagnostic);

  // Generic kind entry points. TryLoadBody validates the envelope and the
  // (tag, schema, fingerprint) header and returns the kind-specific body
  // bytes; the caller decodes them and calls EvictCorrupt if the body turns
  // out to be undecodable (same delete-and-miss self-heal the header paths
  // get). StoreBody wraps `body` in the header + envelope and writes it
  // through the hardened tmp+rename path.
  std::optional<std::string> TryLoadBody(ArtifactKind kind,
                                         std::uint64_t fingerprint,
                                         std::string* diagnostic);
  bool StoreBody(ArtifactKind kind, std::uint64_t fingerprint,
                 std::string_view body, std::string* diagnostic);
  void EvictCorrupt(ArtifactKind kind, std::uint64_t fingerprint,
                    std::string_view reason, std::string* diagnostic);

 private:
  // Header-validated payload probe shared by TryLoad and TryLoadBody; on
  // success `body` holds the kind-specific bytes. No hit accounting.
  bool ProbeEntry(ArtifactKind kind, std::uint64_t fingerprint,
                  std::string* body, std::string* diagnostic);
  void RecordHit(const std::string& path, std::size_t bytes,
                 std::string* diagnostic);
  // Post-store maintenance: one directory scan removing stale `*.tmp.*`
  // orphans and, when a budget is set, evicting oldest-mtime entries that
  // are not in this process's live-key set.
  void SweepAfterStore();

  CacheConfig config_;
};

// Trace-section codec (the payload minus the tag/schema/fingerprint
// header), exposed for tests (corruption matrix) and for other artifact
// kinds' sub-payloads. Serialize requires a finalized trace; Deserialize
// validates every record and stream ordering via Trace::FromSorted and
// throws snapshot::SnapshotError / std::invalid_argument on any corruption
// the checksum did not catch.
void SerializeTrace(const Trace& trace, stream::snapshot::Writer* w);
Trace DeserializeTrace(stream::snapshot::Reader* r);

}  // namespace hpcfail::engine
