// Content-addressed on-disk artifact cache for acquired traces: a warm run
// loads the sorted trace from a checksummed binary snapshot instead of
// regenerating (synthetic) or reparsing (CSV) and re-sorting it.
//
// Each entry is one file, `<dir>/trace-<fingerprint16hex>.bin`, using the
// stream/snapshot.h envelope (magic, format version, payload size, FNV-1a-64
// checksum) around a payload of
//
//   artifact tag "HFTRACE0"   — rejects snapshots of other artifact kinds
//   u32 trace schema version  — kTraceSchemaVersion; stale entries miss
//   u64 key fingerprint       — must equal the requested key; a renamed or
//                               colliding file misses instead of lying
//   serialized trace          — systems (incl. layout + observed interval),
//                               failures, maintenance, jobs, temperatures,
//                               neutron series, all in Finalize() order
//
// Every failure mode degrades to a miss with a distinct human-readable
// diagnostic (TryLoad's `diagnostic` out-param) and the caller regenerates:
// the cache can cost a rebuild, never a wrong answer. Unreadable entries are
// deleted so the next store self-heals. Writes go through tmp+rename, so a
// torn write never leaves a half-entry under the content-addressed name.
//
// Instrumentation (src/obs/): cache_load / cache_store spans plus
// hpcfail_cache_{hit,miss,store,evicted_corrupt}_total and
// hpcfail_cache_bytes_{read,written}_total counters.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "stream/snapshot.h"
#include "trace/system.h"

namespace hpcfail::engine {

// Bump whenever the serialized trace layout or the fingerprint recipe
// (engine/fingerprint.cpp) changes; older entries then miss as "stale
// schema" instead of being misdecoded.
inline constexpr std::uint32_t kTraceSchemaVersion = 1;

// Cache location resolution: explicit dir > $HPCFAIL_CACHE_DIR > the
// in-tree default ".hpcfail-cache" (gitignored).
std::string DefaultCacheDir();

struct CacheConfig {
  std::string dir;       // empty = DefaultCacheDir()
  bool enabled = true;   // false (--no-cache) bypasses load AND store
};

class ArtifactCache {
 public:
  explicit ArtifactCache(CacheConfig config);

  bool enabled() const { return config_.enabled; }
  const std::string& dir() const { return config_.dir; }
  // Entry path for a key (exists or not).
  std::string EntryPath(std::uint64_t fingerprint) const;

  // Returns the cached trace on a hit; nullopt on any miss, with the reason
  // ("no cache entry", "corrupt cache entry (...)", "stale cache schema
  // (...)", "cache fingerprint mismatch (...)", ...) in `diagnostic`.
  std::optional<Trace> TryLoad(std::uint64_t fingerprint,
                               std::string* diagnostic);

  // Serializes and stores `trace` under the key; returns false (with a
  // diagnostic) when the directory or file cannot be written — callers
  // treat that as a warning, never an error.
  bool Store(std::uint64_t fingerprint, const Trace& trace,
             std::string* diagnostic);

 private:
  CacheConfig config_;
};

// Trace-section codec (the payload minus the tag/schema/fingerprint
// header), exposed for tests (corruption matrix) and for future artifact
// kinds. Serialize requires a finalized trace; Deserialize validates every
// record and stream ordering via Trace::FromSorted and throws
// snapshot::SnapshotError / std::invalid_argument on any corruption the
// checksum did not catch.
void SerializeTrace(const Trace& trace, stream::snapshot::Writer* w);
Trace DeserializeTrace(stream::snapshot::Reader* r);

}  // namespace hpcfail::engine
