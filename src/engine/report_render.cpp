#include "engine/report_render.h"

#include <ostream>
#include <utility>

#include "core/downtime.h"
#include "core/interarrival.h"
#include "core/node_skew.h"
#include "core/power_analysis.h"
#include "core/report.h"
#include "core/usage_analysis.h"
#include "core/user_analysis.h"
#include "core/window_analysis.h"

namespace hpcfail::engine {

namespace {

using core::DowntimeAnalysis;
using core::EnvironmentBreakdown;
using core::EventFilter;
using core::EventIndex;
using core::FormatDouble;
using core::FormatFactor;
using core::FormatPercent;
using core::InterarrivalAnalysis;
using core::NodeSkewSummary;
using core::Scope;
using core::SignificanceMarker;
using core::Table;
using core::UsageAnalysis;
using core::UserAnalysis;
using core::WindowAnalyzer;

void CheckCancel(const CancelFn& cancel, const char* where) {
  if (cancel && cancel()) throw RenderCancelled(where);
}

}  // namespace

void RenderOverview(const AnalysisView& view, std::ostream& os,
                    const CancelFn& cancel) {
  CheckCancel(cancel, "overview");
  const Trace& trace = view.trace();
  const EventIndex& idx = view.index();
  os << "=== trace overview ===\n";
  Table overview({"system", "group", "nodes", "days", "failures",
                  "fails/node-yr", "availability"});
  for (const SystemConfig& s : trace.systems()) {
    CheckCancel(cancel, "overview");
    const auto fails = trace.FailuresOfSystem(s.id).size();
    const double years =
        static_cast<double>(s.observed.duration()) / kYear;
    const DowntimeAnalysis down = core::AnalyzeDowntime(idx, s.id);
    overview.AddRow(
        {s.name, std::string(ToString(s.group)), std::to_string(s.num_nodes),
         std::to_string(s.observed.duration() / kDay), std::to_string(fails),
         FormatDouble(years > 0 ? fails / (years * s.num_nodes) : 0.0, 2),
         FormatDouble(down.availability, 4)});
  }
  overview.Print(os);
}

void RenderCorrelations(const AnalysisView& view, std::ostream& os,
                        const CancelFn& cancel) {
  CheckCancel(cancel, "correlations");
  const WindowAnalyzer analyzer(view.index());
  os << "\n=== failure correlations (all systems pooled) ===\n";
  Table corr({"measure", "P(random)", "P(conditional)", "factor", "sig"});
  for (const auto& [label, window] :
       {std::pair{"same node, next day", kDay},
        {"same node, next week", kWeek}}) {
    const auto r = analyzer.Compare(EventFilter::Any(), EventFilter::Any(),
                                    Scope::kSameNode, window);
    corr.AddRow({label, FormatPercent(r.baseline),
                 FormatPercent(r.conditional), FormatFactor(r.factor),
                 SignificanceMarker(r.test)});
  }
  corr.Print(os);

  CheckCancel(cancel, "correlations");
  os << "\nstrongest follow-up triggers (week window):\n";
  Table trig({"trigger type", "P(any failure | trigger)", "factor", "sig"});
  for (FailureCategory c : AllFailureCategories()) {
    CheckCancel(cancel, "correlations");
    const auto r = analyzer.Compare(EventFilter::Of(c), EventFilter::Any(),
                                    Scope::kSameNode, kWeek);
    if (r.num_triggers < 10) continue;
    trig.AddRow({std::string(ToString(c)), FormatPercent(r.conditional),
                 FormatFactor(r.factor), SignificanceMarker(r.test)});
  }
  trig.Print(os);
}

void RenderPerSystem(const AnalysisView& view, std::ostream& os,
                     const CancelFn& cancel) {
  CheckCancel(cancel, "persystem");
  const Trace& trace = view.trace();
  const EventIndex& idx = view.index();
  os << "\n=== per-system detail ===\n";
  for (const SystemConfig& s : trace.systems()) {
    CheckCancel(cancel, "persystem");
    const auto failures = trace.FailuresOfSystem(s.id);
    if (failures.size() < 10) continue;
    os << "\n-- " << s.name << " --\n";
    const NodeSkewSummary skew = core::AnalyzeNodeSkew(idx, s.id);
    os << "node skew: max node " << skew.most_failing_node.value << " at "
       << FormatDouble(skew.max_over_mean, 1) << "x the mean; equal rates "
       << (skew.equal_rates_test.significant_99 ? "REJECTED" : "not rejected")
       << "\n";
    const DowntimeAnalysis down = core::AnalyzeDowntime(idx, s.id);
    os << "downtime: median " << FormatDouble(down.overall.median_hours, 1)
       << "h, p90 " << FormatDouble(down.overall.p90_hours, 1)
       << "h; worst node " << down.worst_node.value << " at "
       << FormatDouble(down.worst_node_availability, 4) << " availability\n";
    try {
      const InterarrivalAnalysis ia = core::AnalyzeInterarrivals(idx, s.id);
      os << "inter-arrival: best fit "
         << ToString(ia.system_fits.front().distribution)
         << ", per-node Weibull shape "
         << FormatDouble(ia.node_weibull.param1, 2)
         << (ia.node_weibull.param1 < 0.9 ? " (clustered: shape < 1)" : "")
         << "\n";
    } catch (const std::exception&) {
      // too few events; skip
    }
  }
}

void RenderEnvironment(const AnalysisView& view, std::ostream& os,
                       const CancelFn& cancel) {
  CheckCancel(cancel, "environment");
  const EnvironmentBreakdown env = core::BreakdownEnvironment(view.index());
  if (env.total > 20) {
    os << "\n=== environmental failures ===\n";
    Table t({"subcategory", "share"});
    for (EnvironmentEvent e : AllEnvironmentEvents()) {
      t.AddRow({std::string(ToString(e)),
                FormatDouble(env.percent[static_cast<std::size_t>(e)], 1) +
                    "%"});
    }
    t.Print(os);
  }
}

void RenderUsage(const AnalysisView& view, std::ostream& os,
                 const CancelFn& cancel) {
  CheckCancel(cancel, "usage");
  const Trace& trace = view.trace();
  const EventIndex& idx = view.index();
  for (SystemId sys : core::SystemsWithJobs(trace)) {
    CheckCancel(cancel, "usage");
    os << "\n=== usage analysis: " << trace.system(sys).name << " ===\n";
    const UsageAnalysis u = core::AnalyzeUsage(idx, sys);
    os << "r(jobs, failures) = " << FormatDouble(u.jobs_vs_failures.r, 3)
       << " (excluding top node: "
       << FormatDouble(u.jobs_vs_failures_excl_top.r, 3) << ")\n";
    const UserAnalysis users = core::AnalyzeUsers(trace, sys, 50);
    os << "user-rate heterogeneity: LRT p="
       << FormatDouble(users.rate_heterogeneity.p_value, 5) << "\n";
  }
}

void RenderReport(const AnalysisView& view, std::ostream& os,
                  const CancelFn& cancel) {
  RenderOverview(view, os, cancel);
  RenderCorrelations(view, os, cancel);
  RenderPerSystem(view, os, cancel);
  RenderEnvironment(view, os, cancel);
  RenderUsage(view, os, cancel);
}

bool RenderNamed(std::string_view name, const AnalysisView& view,
                 std::ostream& os, const CancelFn& cancel) {
  if (name == "report") {
    RenderReport(view, os, cancel);
  } else if (name == "overview") {
    RenderOverview(view, os, cancel);
  } else if (name == "correlations") {
    RenderCorrelations(view, os, cancel);
  } else if (name == "persystem") {
    RenderPerSystem(view, os, cancel);
  } else if (name == "environment") {
    RenderEnvironment(view, os, cancel);
  } else if (name == "usage") {
    RenderUsage(view, os, cancel);
  } else {
    return false;
  }
  return true;
}

const std::vector<std::string>& RenderableNames() {
  static const std::vector<std::string> names = {
      "correlations", "environment", "overview",
      "persystem",    "report",      "usage"};
  return names;
}

}  // namespace hpcfail::engine
