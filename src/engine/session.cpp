#include "engine/session.h"

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <utility>

#include "core/parallel.h"
#include "engine/fingerprint.h"
#include "engine/index_snapshot.h"
#include "engine/single_flight.h"
#include "obs/span.h"
#include "stream/snapshot.h"

namespace hpcfail::engine {

namespace {

struct Acquired {
  Trace trace;
  AnalysisSession::Stats stats;
};

Acquired CacheOrAcquireImpl(const TraceSource& source,
                            const SessionOptions& options) {
  Acquired out;
  out.stats.source = source.kind();
  out.stats.label = source.label();
  out.stats.fingerprint = source.Fingerprint();
  out.stats.cache_enabled =
      options.cache.enabled && out.stats.fingerprint.has_value();

  const auto t0 = std::chrono::steady_clock::now();
  ArtifactCache cache(options.cache);
  bool acquired = false;
  if (out.stats.cache_enabled) {
    // Single-flight: serialize same-fingerprint acquisitions so N
    // concurrent cold sessions run ONE build. Whoever waited here re-probes
    // the cache below and loads the entry the builder just stored; distinct
    // fingerprints proceed in parallel.
    KeyedMutex::Guard flight = KeyedMutex::Global().Lock(*out.stats.fingerprint);
    if (std::optional<Trace> cached =
            cache.TryLoad(*out.stats.fingerprint, &out.stats.cache_diagnostic)) {
      out.trace = *std::move(cached);
      out.stats.cache_hit = true;
      acquired = true;
    }
    if (!acquired) {
      out.trace = source.Acquire();
      std::string store_diag;
      out.stats.cache_stored =
          cache.Store(*out.stats.fingerprint, out.trace, &store_diag);
      if (!out.stats.cache_stored) {
        out.stats.cache_diagnostic += "; store failed: " + store_diag;
      }
      acquired = true;
    }
  } else {
    out.stats.cache_diagnostic =
        options.cache.enabled ? "unfingerprintable source" : "cache disabled";
  }
  if (!acquired) {
    out.trace = source.Acquire();
  }
  out.stats.load_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.stats.num_systems = out.trace.systems().size();
  out.stats.num_failures = out.trace.num_failures();
  return out;
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (c == '\n') {
      *out += "\\n";
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

std::pair<Trace, AnalysisSession::Stats> AcquireTrace(
    const TraceSource& source, const SessionOptions& options) {
  Acquired out = CacheOrAcquireImpl(source, options);
  return {std::move(out.trace), std::move(out.stats)};
}

core::EventStoreSet RestoreOrBuildStores(
    const Trace& trace, std::span<const SystemId> systems,
    TimeInterval start_range, std::optional<std::uint64_t> fingerprint,
    ArtifactCache& cache, bool* hit, bool* stored, std::string* diagnostic) {
  *hit = false;
  *stored = false;
  if (!fingerprint.has_value()) {
    *diagnostic = "unfingerprintable source";
    return core::EventStoreSet::Build(trace, systems, start_range);
  }
  if (!cache.KindEnabled(ArtifactKind::kIndex)) {
    *diagnostic =
        cache.enabled() ? "artifact kind disabled" : "cache disabled";
    return core::EventStoreSet::Build(trace, systems, start_range);
  }
  const std::uint64_t key = *fingerprint;
  // Single-flight on a kind-derived key: N concurrent cold builds of one
  // fingerprint serialize into one snapshot build+store (the waiters then
  // hit the entry the builder wrote) without contending with the trace
  // kind's flight on the raw fingerprint.
  FingerprintHasher flight_key;
  flight_key.Str("index-flight");
  flight_key.U64(key);
  KeyedMutex::Guard flight = KeyedMutex::Global().Lock(flight_key.value());
  if (std::optional<std::string> body =
          cache.TryLoadBody(ArtifactKind::kIndex, key, diagnostic)) {
    try {
      stream::snapshot::Reader r(*body);
      core::EventStoreSet set = DeserializeStoreSet(trace, systems, &r);
      if (!r.AtEnd()) {
        throw stream::snapshot::SnapshotError(
            "trailing bytes after index payload");
      }
      *hit = true;
      return set;
    } catch (const stream::snapshot::SnapshotError& e) {
      cache.EvictCorrupt(ArtifactKind::kIndex, key, e.what(), diagnostic);
    }
  }
  core::EventStoreSet built =
      core::EventStoreSet::Build(trace, systems, start_range);
  stream::snapshot::Writer w;
  SerializeStoreSet(built, &w);
  std::string store_diag;
  *stored = cache.StoreBody(ArtifactKind::kIndex, key, w.payload(),
                            &store_diag);
  if (!*stored) *diagnostic += "; store failed: " + store_diag;
  return built;
}

AnalysisSession::Prepared AnalysisSession::Prepare(
    std::pair<Trace, Stats> acquired, const SessionOptions& options) {
  Prepared p;
  p.trace = std::make_shared<const Trace>(std::move(acquired.first));
  p.stats = std::move(acquired.second);

  const auto t0 = std::chrono::steady_clock::now();
  ArtifactCache cache(options.cache);
  p.stores = std::make_shared<const core::EventStoreSet>(RestoreOrBuildStores(
      *p.trace, {}, core::kAllStartTimes, p.stats.fingerprint, cache,
      &p.stats.index_cache_hit, &p.stats.index_cache_stored,
      &p.stats.index_diagnostic));
  p.stats.index_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return p;
}

AnalysisSession::AnalysisSession(Prepared prepared)
    : trace_(std::move(prepared.trace)),
      stores_(std::move(prepared.stores)),
      index_(*trace_, stores_),
      stats_(std::move(prepared.stats)) {}

AnalysisSession::AnalysisSession(std::unique_ptr<TraceSource> source,
                                 SessionOptions options)
    : AnalysisSession(Prepare(AcquireTrace(*source, options), options)) {}

AnalysisSession AnalysisSession::FromScenario(synth::Scenario scenario,
                                              std::uint64_t seed,
                                              SessionOptions options) {
  return AnalysisSession(MakeScenarioSource(std::move(scenario), seed),
                         std::move(options));
}

AnalysisSession AnalysisSession::FromCsvDir(std::string dir,
                                            SessionOptions options) {
  return AnalysisSession(MakeCsvDirSource(std::move(dir)),
                         std::move(options));
}

AnalysisSession AnalysisSession::FromCheckpoint(std::string checkpoint_path,
                                                std::string trace_dir,
                                                stream::EngineConfig config,
                                                SessionOptions options) {
  return AnalysisSession(
      MakeCheckpointSource(std::move(checkpoint_path), std::move(trace_dir),
                           config),
      std::move(options));
}

AnalysisSession AnalysisSession::FromLanl(std::string path,
                                          int nodes_per_system,
                                          SessionOptions options) {
  return AnalysisSession(MakeLanlSource(std::move(path), nodes_per_system),
                         std::move(options));
}

AnalysisSession AnalysisSession::FromLog(
    std::string path, std::string format,
    hpcfail::trace::AdapterOptions adapter_options, int nodes_per_system,
    SessionOptions options) {
  return AnalysisSession(
      MakeLogSource(std::move(path), std::move(format),
                    std::move(adapter_options), nodes_per_system),
      std::move(options));
}

core::EventIndex AnalysisSession::IndexFor(
    std::span<const SystemId> systems) const {
  return core::EventIndex(*trace_, stores_, systems);
}

std::string StatsJson(const AnalysisSession::Stats& stats) {
  std::string out = "{\"source\":";
  AppendJsonString(&out, ToString(stats.source));
  out += ",\"label\":";
  AppendJsonString(&out, stats.label);
  out += ",\"fingerprint\":";
  if (stats.fingerprint) {
    AppendJsonString(&out, FingerprintHex(*stats.fingerprint));
  } else {
    out += "null";
  }
  out += ",\"cache_enabled\":";
  out += stats.cache_enabled ? "true" : "false";
  out += ",\"cache_hit\":";
  out += stats.cache_hit ? "true" : "false";
  out += ",\"cache_stored\":";
  out += stats.cache_stored ? "true" : "false";
  out += ",\"cache_diagnostic\":";
  AppendJsonString(&out, stats.cache_diagnostic);
  out += ",\"load_seconds\":" + std::to_string(stats.load_seconds);
  out += ",\"index_cache_hit\":";
  out += stats.index_cache_hit ? "true" : "false";
  out += ",\"index_cache_stored\":";
  out += stats.index_cache_stored ? "true" : "false";
  out += ",\"index_diagnostic\":";
  AppendJsonString(&out, stats.index_diagnostic);
  out += ",\"index_seconds\":" + std::to_string(stats.index_seconds);
  out += ",\"num_systems\":" + std::to_string(stats.num_systems);
  out += ",\"num_failures\":" + std::to_string(stats.num_failures);
  out += "}";
  return out;
}

std::string AnalysisSession::StatsJson() const {
  return engine::StatsJson(stats_);
}

void AddStandardOptions(ArgParser& parser, StandardOptions* opts) {
  parser.AddInt("threads", &opts->threads,
                "worker threads for parallel kernels (0 = hardware "
                "concurrency, 1 = serial)");
  parser.AddUint64("seed", &opts->seed, "synthetic-generation seed");
  parser.AddString("cache-dir", &opts->cache_dir,
                   "artifact cache directory (\"\" = $HPCFAIL_CACHE_DIR or "
                   ".hpcfail-cache)");
  parser.AddFlag("no-cache", &opts->no_cache,
                 "bypass the artifact cache (no load, no store)");
  parser.AddString("cache-artifacts", &opts->cache_artifacts,
                   "artifact kinds the cache serves, comma-separated "
                   "(trace,index,bootstrap; \"\"/all = every kind, none = "
                   "no kind)");
  parser.AddUint64("cache-budget-mb", &opts->cache_budget_mb,
                   "cache directory size budget in MiB, enforced after each "
                   "store (0 = $HPCFAIL_CACHE_BUDGET_MB, or unlimited)");
  parser.AddFlag("json", &opts->json, "emit machine-readable JSON output");
}

void ApplyStandardOptions(const StandardOptions& opts) {
  core::SetDefaultThreadCount(opts.threads);
}

SessionOptions MakeSessionOptions(const StandardOptions& opts) {
  SessionOptions session;
  session.cache.dir = opts.cache_dir;
  session.cache.enabled = !opts.no_cache;
  try {
    session.cache.kinds = ParseArtifactKinds(opts.cache_artifacts);
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: --cache-artifacts: " << e.what() << "\n";
    std::exit(2);
  }
  session.cache.budget_bytes = opts.cache_budget_mb * 1024 * 1024;
  return session;
}

}  // namespace hpcfail::engine
