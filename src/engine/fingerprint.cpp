#include "engine/fingerprint.h"

#include <bit>
#include <cstdio>
#include <fstream>

namespace hpcfail::engine {

void FingerprintHasher::Bytes(std::string_view bytes) {
  for (const char c : bytes) {
    hash_ ^= static_cast<unsigned char>(c);
    hash_ *= 0x100000001b3ULL;
  }
}

void FingerprintHasher::U64(std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  Bytes(std::string_view(buf, sizeof(buf)));
}

void FingerprintHasher::F64(double v) { U64(std::bit_cast<std::uint64_t>(v)); }

namespace {

void HashCascade(FingerprintHasher& h, const synth::CascadeSpec& c) {
  for (const double v : c.children) h.F64(v);
  h.I64(c.mean_delay);
  h.Bool(c.hardware_mix.has_value());
  if (c.hardware_mix) {
    for (const double v : *c.hardware_mix) h.F64(v);
  }
  h.Bool(c.software_mix.has_value());
  if (c.software_mix) {
    for (const double v : *c.software_mix) h.F64(v);
  }
  h.F64(c.maintenance_children);
}

void HashFacility(FingerprintHasher& h, const synth::FacilityEventSpec& f) {
  h.F64(f.events_per_year);
  h.F64(f.frac_nodes_affected);
  h.I64(f.min_nodes_affected);
  HashCascade(h, f.cascade);
  h.Bool(f.rack_scoped);
}

void HashWorkload(FingerprintHasher& h, const synth::WorkloadSpec& w) {
  h.Bool(w.enabled);
  h.I64(w.num_users);
  h.F64(w.jobs_per_day);
  h.I64(w.mean_job_runtime);
  h.I64(w.mean_queue_delay);
  h.F64(w.mean_nodes_per_job);
  h.F64(w.user_activity_pareto_shape);
  h.F64(w.user_risk_sigma);
  h.F64(w.busy_hazard_boost);
  h.F64(w.node0_extra_jobs_per_day);
  h.F64(w.job_churn_hazard);
}

void HashTemperature(FingerprintHasher& h, const synth::TemperatureSpec& t) {
  h.Bool(t.enabled);
  h.I64(t.sample_interval);
  h.F64(t.baseline_mean_c);
  h.F64(t.node_offset_stddev_c);
  h.F64(t.diurnal_amplitude_c);
  h.F64(t.noise_stddev_c);
  h.F64(t.fan_excursion_c);
  h.F64(t.chiller_excursion_c);
  h.I64(t.excursion_duration);
}

void HashSystem(FingerprintHasher& h, const synth::SystemScenario& s) {
  h.Str(s.name);
  h.U64(static_cast<std::uint64_t>(s.group));
  h.I64(s.num_nodes);
  h.I64(s.procs_per_node);
  h.I64(s.nodes_per_rack);
  h.I64(s.racks_per_row);
  h.I64(s.duration);
  for (const double v : s.base_rate_per_hour) h.F64(v);
  for (const double v : s.hardware_mix) h.F64(v);
  for (const double v : s.software_mix) h.F64(v);
  for (const double v : s.environment_mix) h.F64(v);
  h.F64(s.base_maintenance_per_hour);
  for (const synth::CascadeSpec& c : s.node_cascade) HashCascade(h, c);
  for (const synth::CascadeSpec& c : s.rack_cascade) HashCascade(h, c);
  for (const synth::CascadeSpec& c : s.system_cascade) HashCascade(h, c);
  h.F64(s.same_component_inherit_prob);
  for (const double v : s.node0_rate_multiplier) h.F64(v);
  HashFacility(h, s.power_outage);
  HashFacility(h, s.power_spike);
  HashFacility(h, s.ups_failure);
  HashFacility(h, s.chiller_failure);
  HashCascade(h, s.power_supply_cascade);
  HashCascade(h, s.fan_cascade);
  HashWorkload(h, s.workload);
  HashTemperature(h, s.temperature);
  h.F64(s.modulation_sigma);
  h.I64(s.modulation_period);
  h.F64(s.cpu_flux_exponent);
  h.F64(s.downtime_median_sec);
  h.F64(s.downtime_sigma);
}

}  // namespace

std::uint64_t HashScenario(const synth::Scenario& scenario,
                           std::uint64_t seed) {
  FingerprintHasher h;
  h.Str("hpcfail-scenario");
  h.U64(seed);
  h.U64(scenario.systems.size());
  for (const synth::SystemScenario& s : scenario.systems) HashSystem(h, s);
  h.F64(scenario.neutron.mean_counts);
  h.F64(scenario.neutron.cycle_amplitude);
  h.I64(scenario.neutron.cycle_period);
  h.F64(scenario.neutron.noise_stddev);
  h.I64(scenario.neutron.sample_interval);
  h.I64(scenario.duration);
  return h.value();
}

std::optional<std::uint64_t> HashFileContents(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  FingerprintHasher h;
  char buf[1 << 16];
  while (is.read(buf, sizeof(buf)) || is.gcount() > 0) {
    h.Bytes(std::string_view(buf, static_cast<std::size_t>(is.gcount())));
  }
  return h.value();
}

std::string FingerprintHex(std::uint64_t fingerprint) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return std::string(buf, 16);
}

}  // namespace hpcfail::engine
