#include "engine/shard_plan.h"

#include <charconv>
#include <limits>
#include <stdexcept>

#include "engine/fingerprint.h"

namespace hpcfail::engine {

namespace {

constexpr TimeSec kTimeMin = std::numeric_limits<TimeSec>::min();
constexpr TimeSec kTimeMax = std::numeric_limits<TimeSec>::max();

std::optional<int> ParseNonNegativeInt(std::string_view s) {
  int v = 0;
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, v);
  if (ec != std::errc{} || ptr != end || v < 0) return std::nullopt;
  return v;
}

}  // namespace

std::string ToString(ShardKey key) {
  return std::to_string(key.block) + ":" + std::to_string(key.window);
}

std::optional<ShardKey> ParseShardKey(std::string_view text) {
  const std::size_t colon = text.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  const std::optional<int> block = ParseNonNegativeInt(text.substr(0, colon));
  const std::optional<int> window =
      ParseNonNegativeInt(text.substr(colon + 1));
  if (!block || !window) return std::nullopt;
  return ShardKey{*block, *window};
}

ShardPlan::ShardPlan(const Trace& trace, ShardSpec spec,
                     std::vector<SystemId> systems)
    : spec_(spec), systems_(std::move(systems)) {
  if (spec_.window < 0) {
    throw std::invalid_argument("ShardPlan: window width must be >= 0");
  }
  if (spec_.systems_per_block < 0) {
    throw std::invalid_argument("ShardPlan: systems_per_block must be >= 0");
  }
  if (systems_.empty()) {
    for (const SystemConfig& s : trace.systems()) systems_.push_back(s.id);
  }
  if (spec_.systems_per_block == 0 || systems_.empty()) {
    num_blocks_ = 1;
  } else {
    num_blocks_ = static_cast<int>(
        (systems_.size() + static_cast<std::size_t>(spec_.systems_per_block) -
         1) /
        static_cast<std::size_t>(spec_.systems_per_block));
  }
  // The grid is anchored at the earliest observation start and extends to
  // the latest observation end over the plan's systems; invalid ids (which
  // yield empty shards) and ids the trace does not know contribute nothing
  // to the anchor.
  TimeSec extent = 0;
  bool any = false;
  for (SystemId id : systems_) {
    if (!id.valid()) continue;
    const SystemConfig* config = trace.FindSystem(id);
    if (config == nullptr) continue;
    if (!any || config->observed.begin < origin_) {
      origin_ = config->observed.begin;
    }
    if (!any || config->observed.end > extent) extent = config->observed.end;
    any = true;
  }
  if (!any) origin_ = 0;
  if (spec_.window == 0 || !any || extent <= origin_) {
    num_windows_ = 1;
  } else {
    const TimeSec span = extent - origin_;
    num_windows_ = static_cast<int>((span + spec_.window - 1) / spec_.window);
    if (num_windows_ < 1) num_windows_ = 1;
  }
}

std::span<const SystemId> ShardPlan::SystemsOfBlock(int block) const {
  if (block < 0 || block >= num_blocks_) return {};
  if (spec_.systems_per_block == 0) return systems_;
  const auto per = static_cast<std::size_t>(spec_.systems_per_block);
  const std::size_t first = static_cast<std::size_t>(block) * per;
  const std::size_t count = std::min(per, systems_.size() - first);
  return std::span<const SystemId>(systems_).subspan(first, count);
}

int ShardPlan::WindowOf(TimeSec start) const {
  if (num_windows_ == 1 || start < origin_) return 0;
  // start >= origin_ and window width > 0 here, so the division is a plain
  // non-negative floor.
  const TimeSec w = (start - origin_) / spec_.window;
  if (w >= num_windows_ - 1) return num_windows_ - 1;
  return static_cast<int>(w);
}

int ShardPlan::BlockOf(SystemId sys) const {
  for (std::size_t i = 0; i < systems_.size(); ++i) {
    if (systems_[i] == sys) {
      return spec_.systems_per_block == 0
                 ? 0
                 : static_cast<int>(
                       i / static_cast<std::size_t>(spec_.systems_per_block));
    }
  }
  return -1;
}

std::optional<ShardKey> ShardPlan::KeyFor(const FailureRecord& record) const {
  const int block = BlockOf(record.system);
  if (block < 0) return std::nullopt;
  return ShardKey{block, WindowOf(record.start)};
}

TimeInterval ShardPlan::StartRange(int window) const {
  TimeInterval range{kTimeMin, kTimeMax};
  if (num_windows_ == 1) return range;
  if (window > 0) range.begin = origin_ + window * spec_.window;
  if (window < num_windows_ - 1) {
    range.end = origin_ + (window + 1) * spec_.window;
  }
  return range;
}

std::vector<ShardKey> ShardPlan::Keys() const {
  std::vector<ShardKey> keys;
  keys.reserve(num_shards());
  for (int b = 0; b < num_blocks_; ++b) {
    for (int w = 0; w < num_windows_; ++w) keys.push_back(ShardKey{b, w});
  }
  return keys;
}

std::uint64_t ShardPlan::ShardFingerprint(std::uint64_t parent_fingerprint,
                                          ShardKey key) const {
  FingerprintHasher h;
  h.Str("session-set-shard");
  h.U64(parent_fingerprint);
  h.I64(spec_.window);
  h.I64(spec_.systems_per_block);
  h.U64(systems_.size());
  for (SystemId id : systems_) h.I64(id.value);
  h.I64(key.block);
  h.I64(key.window);
  return h.value();
}

}  // namespace hpcfail::engine
