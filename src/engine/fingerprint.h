// Content fingerprints for the engine-layer artifact cache. A fingerprint is
// an FNV-1a-64 hash over a canonical byte serialization of everything that
// determines a trace's content:
//
//   synthetic  -> every scenario knob + the generator seed
//   CSV / LANL -> the raw bytes of the input files (content-addressed: a
//                 touched-but-unchanged file still hits, an edited file
//                 misses)
//
// plus the trace schema version (trace_cache.h), so cache entries written by
// an older record layout can never be misread as current ones.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "synth/scenario.h"

namespace hpcfail::engine {

// Incremental FNV-1a-64 over typed appends. Field order and widths are part
// of the cache contract: reordering or widening a field is a schema change
// (bump trace_cache.h's kTraceSchemaVersion).
class FingerprintHasher {
 public:
  void Bytes(std::string_view bytes);
  void U64(std::uint64_t v);
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void F64(double v);  // IEEE-754 bit pattern
  void Bool(bool v) { U64(v ? 1 : 0); }
  void Str(std::string_view s) {
    U64(s.size());
    Bytes(s);
  }

  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

// Hashes every knob of the scenario, in declaration order. NOTE: adding a
// field to synth/scenario.h requires extending this function AND bumping
// kTraceSchemaVersion; tests/test_engine_cache.cpp checks that distinct
// scenarios and seeds produce distinct fingerprints.
std::uint64_t HashScenario(const synth::Scenario& scenario,
                           std::uint64_t seed);

// Hashes the raw bytes of one file; nullopt when the file cannot be read.
std::optional<std::uint64_t> HashFileContents(const std::string& path);

// Fingerprint as a fixed-width lowercase hex string (cache file stem).
std::string FingerprintHex(std::uint64_t fingerprint);

}  // namespace hpcfail::engine
