#include "engine/trace_cache.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "engine/fingerprint.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace hpcfail::engine {

namespace snapshot = stream::snapshot;

namespace {

constexpr std::string_view kArtifactTag = "HFTRACE0";

obs::Counter& CacheCounter(const char* name, const char* help) {
  return obs::MetricsRegistry::Global().GetCounter(name, help);
}

void RecordMiss() {
  CacheCounter("hpcfail_cache_miss_total",
               "Artifact cache lookups that fell back to regeneration")
      .Increment();
}

void PutSystem(snapshot::Writer* w, const SystemConfig& s) {
  w->PutI64(s.id.value);
  w->PutString(s.name);
  w->PutU8(static_cast<std::uint8_t>(s.group));
  w->PutI64(s.num_nodes);
  w->PutI64(s.procs_per_node);
  w->PutI64(s.observed.begin);
  w->PutI64(s.observed.end);
  const auto& placements = s.layout.placements();
  w->PutU64(placements.size());
  for (const NodePlacement& p : placements) {
    w->PutI64(p.node.value);
    w->PutI64(p.rack.value);
    w->PutI64(p.position_in_rack);
    w->PutI64(p.room_row);
    w->PutI64(p.room_col);
  }
}

SystemConfig GetSystem(snapshot::Reader* r) {
  SystemConfig s;
  s.id = SystemId{static_cast<std::int32_t>(r->GetI64())};
  s.name = r->GetString();
  const std::uint8_t group = r->GetU8();
  if (group > static_cast<std::uint8_t>(SystemGroup::kNuma)) {
    throw snapshot::SnapshotError("bad system group");
  }
  s.group = static_cast<SystemGroup>(group);
  s.num_nodes = static_cast<int>(r->GetI64());
  s.procs_per_node = static_cast<int>(r->GetI64());
  s.observed.begin = r->GetI64();
  s.observed.end = r->GetI64();
  std::vector<NodePlacement> placements(r->GetSize(5 * 8));
  for (NodePlacement& p : placements) {
    p.node = NodeId{static_cast<std::int32_t>(r->GetI64())};
    p.rack = RackId{static_cast<std::int32_t>(r->GetI64())};
    p.position_in_rack = static_cast<int>(r->GetI64());
    p.room_row = static_cast<int>(r->GetI64());
    p.room_col = static_cast<int>(r->GetI64());
  }
  if (!placements.empty()) s.layout = MachineLayout(std::move(placements));
  return s;
}

void PutFailure(snapshot::Writer* w, const FailureRecord& f) {
  w->PutI64(f.system.value);
  w->PutI64(f.node.value);
  w->PutI64(f.start);
  w->PutI64(f.end);
  w->PutU8(static_cast<std::uint8_t>(f.category));
  if (f.hardware) {
    w->PutU8(1);
    w->PutU8(static_cast<std::uint8_t>(*f.hardware));
  } else if (f.software) {
    w->PutU8(2);
    w->PutU8(static_cast<std::uint8_t>(*f.software));
  } else if (f.environment) {
    w->PutU8(3);
    w->PutU8(static_cast<std::uint8_t>(*f.environment));
  } else {
    w->PutU8(0);
    w->PutU8(0);
  }
}

FailureRecord GetFailure(snapshot::Reader* r) {
  FailureRecord f;
  f.system = SystemId{static_cast<std::int32_t>(r->GetI64())};
  f.node = NodeId{static_cast<std::int32_t>(r->GetI64())};
  f.start = r->GetI64();
  f.end = r->GetI64();
  const std::uint8_t category = r->GetU8();
  if (category >= kNumFailureCategories) {
    throw snapshot::SnapshotError("bad failure category");
  }
  f.category = static_cast<FailureCategory>(category);
  const std::uint8_t tag = r->GetU8();
  const std::uint8_t sub = r->GetU8();
  switch (tag) {
    case 0:
      break;
    case 1:
      if (sub >= kNumHardwareComponents) {
        throw snapshot::SnapshotError("bad hardware component");
      }
      f.hardware = static_cast<HardwareComponent>(sub);
      break;
    case 2:
      if (sub >= kNumSoftwareComponents) {
        throw snapshot::SnapshotError("bad software component");
      }
      f.software = static_cast<SoftwareComponent>(sub);
      break;
    case 3:
      if (sub >= kNumEnvironmentEvents) {
        throw snapshot::SnapshotError("bad environment event");
      }
      f.environment = static_cast<EnvironmentEvent>(sub);
      break;
    default:
      throw snapshot::SnapshotError("bad subcategory tag");
  }
  return f;
}

void PutJob(snapshot::Writer* w, const JobRecord& j) {
  w->PutI64(j.id.value);
  w->PutI64(j.system.value);
  w->PutI64(j.user.value);
  w->PutI64(j.submit);
  w->PutI64(j.dispatch);
  w->PutI64(j.end);
  w->PutI64(j.procs);
  w->PutU64(j.nodes.size());
  for (NodeId n : j.nodes) w->PutI64(n.value);
  w->PutBool(j.killed_by_node_failure);
}

JobRecord GetJob(snapshot::Reader* r) {
  JobRecord j;
  j.id = JobId{static_cast<std::int32_t>(r->GetI64())};
  j.system = SystemId{static_cast<std::int32_t>(r->GetI64())};
  j.user = UserId{static_cast<std::int32_t>(r->GetI64())};
  j.submit = r->GetI64();
  j.dispatch = r->GetI64();
  j.end = r->GetI64();
  j.procs = static_cast<int>(r->GetI64());
  j.nodes.resize(r->GetSize(8));
  for (NodeId& n : j.nodes) {
    n = NodeId{static_cast<std::int32_t>(r->GetI64())};
  }
  j.killed_by_node_failure = r->GetBool();
  return j;
}

}  // namespace

void SerializeTrace(const Trace& trace, snapshot::Writer* w) {
  const auto& systems = trace.systems();
  w->PutU64(systems.size());
  for (const SystemConfig& s : systems) PutSystem(w, s);
  w->PutU64(trace.failures().size());
  for (const FailureRecord& f : trace.failures()) PutFailure(w, f);
  w->PutU64(trace.maintenance().size());
  for (const MaintenanceRecord& m : trace.maintenance()) {
    w->PutI64(m.system.value);
    w->PutI64(m.node.value);
    w->PutI64(m.start);
    w->PutI64(m.end);
  }
  w->PutU64(trace.jobs().size());
  for (const JobRecord& j : trace.jobs()) PutJob(w, j);
  w->PutU64(trace.temperatures().size());
  for (const TemperatureSample& t : trace.temperatures()) {
    w->PutI64(t.system.value);
    w->PutI64(t.node.value);
    w->PutI64(t.time);
    w->PutDouble(t.celsius);
  }
  w->PutU64(trace.neutron_series().size());
  for (const NeutronSample& n : trace.neutron_series()) {
    w->PutI64(n.time);
    w->PutDouble(n.counts_per_minute);
  }
}

Trace DeserializeTrace(snapshot::Reader* r) {
  std::vector<SystemConfig> systems(r->GetSize(8));
  for (SystemConfig& s : systems) s = GetSystem(r);
  std::vector<FailureRecord> failures(r->GetSize(4 * 8 + 3));
  for (FailureRecord& f : failures) f = GetFailure(r);
  std::vector<MaintenanceRecord> maintenance(r->GetSize(4 * 8));
  for (MaintenanceRecord& m : maintenance) {
    m.system = SystemId{static_cast<std::int32_t>(r->GetI64())};
    m.node = NodeId{static_cast<std::int32_t>(r->GetI64())};
    m.start = r->GetI64();
    m.end = r->GetI64();
  }
  std::vector<JobRecord> jobs(r->GetSize(7 * 8 + 8 + 1));
  for (JobRecord& j : jobs) j = GetJob(r);
  std::vector<TemperatureSample> temperatures(r->GetSize(3 * 8 + 8));
  for (TemperatureSample& t : temperatures) {
    t.system = SystemId{static_cast<std::int32_t>(r->GetI64())};
    t.node = NodeId{static_cast<std::int32_t>(r->GetI64())};
    t.time = r->GetI64();
    t.celsius = r->GetDouble();
  }
  std::vector<NeutronSample> neutrons(r->GetSize(2 * 8));
  for (NeutronSample& n : neutrons) {
    n.time = r->GetI64();
    n.counts_per_minute = r->GetDouble();
  }
  return Trace::FromSorted(std::move(systems), std::move(failures),
                           std::move(maintenance), std::move(jobs),
                           std::move(temperatures), std::move(neutrons));
}

std::string DefaultCacheDir() {
  if (const char* env = std::getenv("HPCFAIL_CACHE_DIR");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  return ".hpcfail-cache";
}

ArtifactCache::ArtifactCache(CacheConfig config) : config_(std::move(config)) {
  if (config_.dir.empty()) config_.dir = DefaultCacheDir();
}

std::string ArtifactCache::EntryPath(std::uint64_t fingerprint) const {
  return config_.dir + "/trace-" + FingerprintHex(fingerprint) + ".bin";
}

std::optional<Trace> ArtifactCache::TryLoad(std::uint64_t fingerprint,
                                            std::string* diagnostic) {
  if (!config_.enabled) {
    if (diagnostic != nullptr) *diagnostic = "cache disabled";
    return std::nullopt;
  }
  const std::string path = EntryPath(fingerprint);
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    if (diagnostic != nullptr) *diagnostic = "no cache entry";
    RecordMiss();
    return std::nullopt;
  }
  obs::ScopedTimer timer("cache_load");
  std::string reason;
  try {
    const std::string payload = snapshot::ReadEnvelope(is);
    snapshot::Reader r(payload);
    if (r.GetString() != kArtifactTag) {
      throw snapshot::SnapshotError("wrong artifact tag");
    }
    const std::uint32_t schema = r.GetU32();
    const std::uint64_t stored_key = r.GetU64();
    if (schema != kTraceSchemaVersion) {
      reason = "stale cache schema (entry v" + std::to_string(schema) +
               ", current v" + std::to_string(kTraceSchemaVersion) + ")";
    } else if (stored_key != fingerprint) {
      reason = "cache fingerprint mismatch (entry " +
               FingerprintHex(stored_key) + ", expected " +
               FingerprintHex(fingerprint) + ")";
    } else {
      Trace trace = DeserializeTrace(&r);
      if (!r.AtEnd()) {
        throw snapshot::SnapshotError("trailing bytes after trace payload");
      }
      CacheCounter("hpcfail_cache_hit_total",
                   "Artifact cache lookups served from disk")
          .Increment();
      CacheCounter("hpcfail_cache_bytes_read_total",
                   "Bytes of cached artifacts read")
          .Add(static_cast<long long>(payload.size()));
      if (diagnostic != nullptr) *diagnostic = "hit";
      return trace;
    }
  } catch (const snapshot::SnapshotError& e) {
    reason = std::string("corrupt cache entry (") + e.what() + ")";
  } catch (const std::invalid_argument& e) {
    reason = std::string("corrupt cache entry (") + e.what() + ")";
  }
  // Any unusable entry is deleted so the next run stores a fresh one; a
  // stale-schema or mislabeled entry would otherwise miss forever.
  is.close();
  std::remove(path.c_str());
  RecordMiss();
  CacheCounter("hpcfail_cache_evicted_corrupt_total",
               "Unusable cache entries deleted during load")
      .Increment();
  if (diagnostic != nullptr) *diagnostic = reason;
  return std::nullopt;
}

bool ArtifactCache::Store(std::uint64_t fingerprint, const Trace& trace,
                          std::string* diagnostic) {
  if (!config_.enabled) {
    if (diagnostic != nullptr) *diagnostic = "cache disabled";
    return false;
  }
  obs::ScopedTimer timer("cache_store");
  std::error_code ec;
  std::filesystem::create_directories(config_.dir, ec);
  if (ec) {
    if (diagnostic != nullptr) {
      *diagnostic =
          "cannot create cache dir " + config_.dir + ": " + ec.message();
    }
    return false;
  }
  snapshot::Writer w;
  w.PutString(kArtifactTag);
  w.PutU32(kTraceSchemaVersion);
  w.PutU64(fingerprint);
  SerializeTrace(trace, &w);
  const std::string path = EntryPath(fingerprint);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) {
      if (diagnostic != nullptr) *diagnostic = "cannot write " + tmp;
      return false;
    }
    try {
      snapshot::WriteEnvelope(os, w.payload());
    } catch (const std::exception& e) {
      if (diagnostic != nullptr) *diagnostic = e.what();
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    if (diagnostic != nullptr) {
      *diagnostic = "cannot rename " + tmp + " to " + path;
    }
    return false;
  }
  CacheCounter("hpcfail_cache_store_total", "Artifact cache entries written")
      .Increment();
  CacheCounter("hpcfail_cache_bytes_written_total",
               "Bytes of cached artifacts written")
      .Add(static_cast<long long>(w.payload().size()));
  if (diagnostic != nullptr) *diagnostic = "stored " + path;
  return true;
}

}  // namespace hpcfail::engine
