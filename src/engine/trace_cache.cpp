#include "engine/trace_cache.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "engine/fingerprint.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace hpcfail::engine {

namespace snapshot = stream::snapshot;
namespace fs = std::filesystem;

namespace {

constexpr std::string_view kKindNames[kNumArtifactKinds] = {"trace", "index",
                                                            "bootstrap"};
constexpr std::string_view kKindTags[kNumArtifactKinds] = {
    "HFTRACE0", "HFINDEX0", "HFBOOT00"};
constexpr std::uint32_t kKindSchemas[kNumArtifactKinds] = {
    kTraceSchemaVersion, kIndexSchemaVersion, kBootstrapSchemaVersion};

// Orphaned `*.tmp.*` files younger than this are presumed to belong to a
// live concurrent writer and are left alone; older ones were abandoned by a
// crashed or killed process and are removed on the next store.
constexpr auto kOrphanTmpMaxAge = std::chrono::minutes(10);

obs::Counter& CacheCounter(const char* name, const char* help) {
  return obs::MetricsRegistry::Global().GetCounter(name, help);
}

void RecordMiss() {
  CacheCounter("hpcfail_cache_miss_total",
               "Artifact cache lookups that fell back to regeneration")
      .Increment();
}

// Entry paths this process has stored or hit: its live working set, which
// the budget sweep must never delete out from under it. Process-global on
// purpose — every ArtifactCache instance over one directory shares it.
std::mutex g_live_keys_mu;
std::unordered_set<std::string>& LiveKeysLocked() {
  static std::unordered_set<std::string>* keys =
      new std::unordered_set<std::string>();
  return *keys;
}

void RegisterLiveKey(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_live_keys_mu);
  LiveKeysLocked().insert(path);
}

bool IsLiveKey(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_live_keys_mu);
  return LiveKeysLocked().count(path) > 0;
}

// True when `name` is a cache entry file: "<kind>-<16 lowercase hex>.bin".
bool IsEntryFileName(std::string_view name) {
  const std::size_t dash = name.find('-');
  if (dash == std::string_view::npos) return false;
  const std::string_view prefix = name.substr(0, dash);
  bool known = false;
  for (const std::string_view kind : kKindNames) known |= prefix == kind;
  if (!known) return false;
  const std::string_view rest = name.substr(dash + 1);
  if (rest.size() != 16 + 4 || rest.substr(16) != ".bin") return false;
  for (const char c : rest.substr(0, 16)) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return false;
  }
  return true;
}

void PutSystem(snapshot::Writer* w, const SystemConfig& s) {
  w->PutI64(s.id.value);
  w->PutString(s.name);
  w->PutU8(static_cast<std::uint8_t>(s.group));
  w->PutI64(s.num_nodes);
  w->PutI64(s.procs_per_node);
  w->PutI64(s.observed.begin);
  w->PutI64(s.observed.end);
  const auto& placements = s.layout.placements();
  w->PutU64(placements.size());
  for (const NodePlacement& p : placements) {
    w->PutI64(p.node.value);
    w->PutI64(p.rack.value);
    w->PutI64(p.position_in_rack);
    w->PutI64(p.room_row);
    w->PutI64(p.room_col);
  }
}

SystemConfig GetSystem(snapshot::Reader* r) {
  SystemConfig s;
  s.id = SystemId{static_cast<std::int32_t>(r->GetI64())};
  s.name = r->GetString();
  const std::uint8_t group = r->GetU8();
  if (group > static_cast<std::uint8_t>(SystemGroup::kNuma)) {
    throw snapshot::SnapshotError("bad system group");
  }
  s.group = static_cast<SystemGroup>(group);
  s.num_nodes = static_cast<int>(r->GetI64());
  s.procs_per_node = static_cast<int>(r->GetI64());
  s.observed.begin = r->GetI64();
  s.observed.end = r->GetI64();
  std::vector<NodePlacement> placements(r->GetSize(5 * 8));
  for (NodePlacement& p : placements) {
    p.node = NodeId{static_cast<std::int32_t>(r->GetI64())};
    p.rack = RackId{static_cast<std::int32_t>(r->GetI64())};
    p.position_in_rack = static_cast<int>(r->GetI64());
    p.room_row = static_cast<int>(r->GetI64());
    p.room_col = static_cast<int>(r->GetI64());
  }
  if (!placements.empty()) s.layout = MachineLayout(std::move(placements));
  return s;
}

void PutFailure(snapshot::Writer* w, const FailureRecord& f) {
  w->PutI64(f.system.value);
  w->PutI64(f.node.value);
  w->PutI64(f.start);
  w->PutI64(f.end);
  w->PutU8(static_cast<std::uint8_t>(f.category));
  if (f.hardware) {
    w->PutU8(1);
    w->PutU8(static_cast<std::uint8_t>(*f.hardware));
  } else if (f.software) {
    w->PutU8(2);
    w->PutU8(static_cast<std::uint8_t>(*f.software));
  } else if (f.environment) {
    w->PutU8(3);
    w->PutU8(static_cast<std::uint8_t>(*f.environment));
  } else {
    w->PutU8(0);
    w->PutU8(0);
  }
}

FailureRecord GetFailure(snapshot::Reader* r) {
  FailureRecord f;
  f.system = SystemId{static_cast<std::int32_t>(r->GetI64())};
  f.node = NodeId{static_cast<std::int32_t>(r->GetI64())};
  f.start = r->GetI64();
  f.end = r->GetI64();
  const std::uint8_t category = r->GetU8();
  if (category >= kNumFailureCategories) {
    throw snapshot::SnapshotError("bad failure category");
  }
  f.category = static_cast<FailureCategory>(category);
  const std::uint8_t tag = r->GetU8();
  const std::uint8_t sub = r->GetU8();
  switch (tag) {
    case 0:
      break;
    case 1:
      if (sub >= kNumHardwareComponents) {
        throw snapshot::SnapshotError("bad hardware component");
      }
      f.hardware = static_cast<HardwareComponent>(sub);
      break;
    case 2:
      if (sub >= kNumSoftwareComponents) {
        throw snapshot::SnapshotError("bad software component");
      }
      f.software = static_cast<SoftwareComponent>(sub);
      break;
    case 3:
      if (sub >= kNumEnvironmentEvents) {
        throw snapshot::SnapshotError("bad environment event");
      }
      f.environment = static_cast<EnvironmentEvent>(sub);
      break;
    default:
      throw snapshot::SnapshotError("bad subcategory tag");
  }
  return f;
}

void PutJob(snapshot::Writer* w, const JobRecord& j) {
  w->PutI64(j.id.value);
  w->PutI64(j.system.value);
  w->PutI64(j.user.value);
  w->PutI64(j.submit);
  w->PutI64(j.dispatch);
  w->PutI64(j.end);
  w->PutI64(j.procs);
  w->PutU64(j.nodes.size());
  for (NodeId n : j.nodes) w->PutI64(n.value);
  w->PutBool(j.killed_by_node_failure);
}

JobRecord GetJob(snapshot::Reader* r) {
  JobRecord j;
  j.id = JobId{static_cast<std::int32_t>(r->GetI64())};
  j.system = SystemId{static_cast<std::int32_t>(r->GetI64())};
  j.user = UserId{static_cast<std::int32_t>(r->GetI64())};
  j.submit = r->GetI64();
  j.dispatch = r->GetI64();
  j.end = r->GetI64();
  j.procs = static_cast<int>(r->GetI64());
  j.nodes.resize(r->GetSize(8));
  for (NodeId& n : j.nodes) {
    n = NodeId{static_cast<std::int32_t>(r->GetI64())};
  }
  j.killed_by_node_failure = r->GetBool();
  return j;
}

}  // namespace

std::string_view ToString(ArtifactKind kind) {
  return kKindNames[static_cast<std::size_t>(kind)];
}

std::string_view ArtifactTag(ArtifactKind kind) {
  return kKindTags[static_cast<std::size_t>(kind)];
}

std::uint32_t ArtifactSchemaVersion(ArtifactKind kind) {
  return kKindSchemas[static_cast<std::size_t>(kind)];
}

unsigned ParseArtifactKinds(std::string_view spec) {
  if (spec.empty() || spec == "all") return kAllArtifactKinds;
  if (spec == "none") return 0;
  unsigned kinds = 0;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string_view name =
        spec.substr(pos, comma == std::string_view::npos ? std::string_view::npos
                                                         : comma - pos);
    bool known = false;
    for (unsigned k = 0; k < kNumArtifactKinds; ++k) {
      if (name == kKindNames[k]) {
        kinds |= 1u << k;
        known = true;
      }
    }
    if (!known) {
      // Empty segments ("trace,") are misspellings too, not no-ops: a typo
      // in a cache spec must fail loudly, never silently change the kinds.
      throw std::invalid_argument(
          "unknown artifact kind '" + std::string(name) +
          "' (valid: trace, index, bootstrap, all, none)");
    }
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return kinds;
}

void SerializeTrace(const Trace& trace, snapshot::Writer* w) {
  const auto& systems = trace.systems();
  w->PutU64(systems.size());
  for (const SystemConfig& s : systems) PutSystem(w, s);
  w->PutU64(trace.failures().size());
  for (const FailureRecord& f : trace.failures()) PutFailure(w, f);
  w->PutU64(trace.maintenance().size());
  for (const MaintenanceRecord& m : trace.maintenance()) {
    w->PutI64(m.system.value);
    w->PutI64(m.node.value);
    w->PutI64(m.start);
    w->PutI64(m.end);
  }
  w->PutU64(trace.jobs().size());
  for (const JobRecord& j : trace.jobs()) PutJob(w, j);
  w->PutU64(trace.temperatures().size());
  for (const TemperatureSample& t : trace.temperatures()) {
    w->PutI64(t.system.value);
    w->PutI64(t.node.value);
    w->PutI64(t.time);
    w->PutDouble(t.celsius);
  }
  w->PutU64(trace.neutron_series().size());
  for (const NeutronSample& n : trace.neutron_series()) {
    w->PutI64(n.time);
    w->PutDouble(n.counts_per_minute);
  }
}

Trace DeserializeTrace(snapshot::Reader* r) {
  std::vector<SystemConfig> systems(r->GetSize(8));
  for (SystemConfig& s : systems) s = GetSystem(r);
  std::vector<FailureRecord> failures(r->GetSize(4 * 8 + 3));
  for (FailureRecord& f : failures) f = GetFailure(r);
  std::vector<MaintenanceRecord> maintenance(r->GetSize(4 * 8));
  for (MaintenanceRecord& m : maintenance) {
    m.system = SystemId{static_cast<std::int32_t>(r->GetI64())};
    m.node = NodeId{static_cast<std::int32_t>(r->GetI64())};
    m.start = r->GetI64();
    m.end = r->GetI64();
  }
  std::vector<JobRecord> jobs(r->GetSize(7 * 8 + 8 + 1));
  for (JobRecord& j : jobs) j = GetJob(r);
  std::vector<TemperatureSample> temperatures(r->GetSize(3 * 8 + 8));
  for (TemperatureSample& t : temperatures) {
    t.system = SystemId{static_cast<std::int32_t>(r->GetI64())};
    t.node = NodeId{static_cast<std::int32_t>(r->GetI64())};
    t.time = r->GetI64();
    t.celsius = r->GetDouble();
  }
  std::vector<NeutronSample> neutrons(r->GetSize(2 * 8));
  for (NeutronSample& n : neutrons) {
    n.time = r->GetI64();
    n.counts_per_minute = r->GetDouble();
  }
  return Trace::FromSorted(std::move(systems), std::move(failures),
                           std::move(maintenance), std::move(jobs),
                           std::move(temperatures), std::move(neutrons));
}

std::string DefaultCacheDir() {
  if (const char* env = std::getenv("HPCFAIL_CACHE_DIR");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  return ".hpcfail-cache";
}

std::uint64_t DefaultCacheBudgetBytes() {
  const char* env = std::getenv("HPCFAIL_CACHE_BUDGET_MB");
  if (env == nullptr || env[0] == '\0') return 0;
  char* end = nullptr;
  const unsigned long long mb = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return 0;
  return static_cast<std::uint64_t>(mb) * 1024 * 1024;
}

ArtifactCache::ArtifactCache(CacheConfig config) : config_(std::move(config)) {
  if (config_.dir.empty()) config_.dir = DefaultCacheDir();
  if (config_.budget_bytes == 0) config_.budget_bytes = DefaultCacheBudgetBytes();
}

std::string ArtifactCache::EntryPath(std::uint64_t fingerprint) const {
  return EntryPath(ArtifactKind::kTrace, fingerprint);
}

std::string ArtifactCache::EntryPath(ArtifactKind kind,
                                     std::uint64_t fingerprint) const {
  return config_.dir + "/" + std::string(ToString(kind)) + "-" +
         FingerprintHex(fingerprint) + ".bin";
}

bool ArtifactCache::ProbeEntry(ArtifactKind kind, std::uint64_t fingerprint,
                               std::string* body, std::string* diagnostic) {
  if (!config_.enabled) {
    if (diagnostic != nullptr) *diagnostic = "cache disabled";
    return false;
  }
  if (!KindEnabled(kind)) {
    if (diagnostic != nullptr) *diagnostic = "artifact kind disabled";
    return false;
  }
  const std::string path = EntryPath(kind, fingerprint);
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    if (diagnostic != nullptr) *diagnostic = "no cache entry";
    RecordMiss();
    return false;
  }
  obs::ScopedTimer timer("cache_load");
  std::string reason;
  try {
    const std::string payload = snapshot::ReadEnvelope(is);
    snapshot::Reader r(payload);
    if (r.GetString() != ArtifactTag(kind)) {
      throw snapshot::SnapshotError("wrong artifact tag");
    }
    const std::uint32_t schema = r.GetU32();
    const std::uint64_t stored_key = r.GetU64();
    if (schema != ArtifactSchemaVersion(kind)) {
      reason = "stale cache schema (entry v" + std::to_string(schema) +
               ", current v" + std::to_string(ArtifactSchemaVersion(kind)) +
               ")";
    } else if (stored_key != fingerprint) {
      reason = "cache fingerprint mismatch (entry " +
               FingerprintHex(stored_key) + ", expected " +
               FingerprintHex(fingerprint) + ")";
    } else {
      *body = payload.substr(payload.size() - r.remaining());
      return true;
    }
  } catch (const snapshot::SnapshotError& e) {
    reason = std::string("corrupt cache entry (") + e.what() + ")";
  }
  // Any unusable entry is deleted so the next run stores a fresh one; a
  // stale-schema or mislabeled entry would otherwise miss forever.
  is.close();
  std::remove(path.c_str());
  RecordMiss();
  CacheCounter("hpcfail_cache_evicted_corrupt_total",
               "Unusable cache entries deleted during load")
      .Increment();
  if (diagnostic != nullptr) *diagnostic = reason;
  return false;
}

void ArtifactCache::RecordHit(const std::string& path, std::size_t bytes,
                              std::string* diagnostic) {
  CacheCounter("hpcfail_cache_hit_total",
               "Artifact cache lookups served from disk")
      .Increment();
  CacheCounter("hpcfail_cache_bytes_read_total",
               "Bytes of cached artifacts read")
      .Add(static_cast<long long>(bytes));
  RegisterLiveKey(path);
  if (diagnostic != nullptr) *diagnostic = "hit";
}

std::optional<Trace> ArtifactCache::TryLoad(std::uint64_t fingerprint,
                                            std::string* diagnostic) {
  std::string body;
  if (!ProbeEntry(ArtifactKind::kTrace, fingerprint, &body, diagnostic)) {
    return std::nullopt;
  }
  const std::string path = EntryPath(ArtifactKind::kTrace, fingerprint);
  try {
    snapshot::Reader r(body);
    Trace trace = DeserializeTrace(&r);
    if (!r.AtEnd()) {
      throw snapshot::SnapshotError("trailing bytes after trace payload");
    }
    RecordHit(path, body.size(), diagnostic);
    return trace;
  } catch (const snapshot::SnapshotError& e) {
    EvictCorrupt(ArtifactKind::kTrace, fingerprint, e.what(), diagnostic);
  } catch (const std::invalid_argument& e) {
    EvictCorrupt(ArtifactKind::kTrace, fingerprint, e.what(), diagnostic);
  }
  return std::nullopt;
}

std::optional<std::string> ArtifactCache::TryLoadBody(
    ArtifactKind kind, std::uint64_t fingerprint, std::string* diagnostic) {
  std::string body;
  if (!ProbeEntry(kind, fingerprint, &body, diagnostic)) return std::nullopt;
  RecordHit(EntryPath(kind, fingerprint), body.size(), diagnostic);
  return body;
}

void ArtifactCache::EvictCorrupt(ArtifactKind kind, std::uint64_t fingerprint,
                                 std::string_view reason,
                                 std::string* diagnostic) {
  std::remove(EntryPath(kind, fingerprint).c_str());
  RecordMiss();
  CacheCounter("hpcfail_cache_evicted_corrupt_total",
               "Unusable cache entries deleted during load")
      .Increment();
  if (diagnostic != nullptr) {
    *diagnostic = "corrupt cache entry (" + std::string(reason) + ")";
  }
}

bool ArtifactCache::Store(std::uint64_t fingerprint, const Trace& trace,
                          std::string* diagnostic) {
  if (!KindEnabled(ArtifactKind::kTrace)) {
    if (diagnostic != nullptr) {
      *diagnostic =
          config_.enabled ? "artifact kind disabled" : "cache disabled";
    }
    return false;
  }
  snapshot::Writer w;
  SerializeTrace(trace, &w);
  return StoreBody(ArtifactKind::kTrace, fingerprint, w.payload(), diagnostic);
}

bool ArtifactCache::StoreBody(ArtifactKind kind, std::uint64_t fingerprint,
                              std::string_view body, std::string* diagnostic) {
  if (!config_.enabled) {
    if (diagnostic != nullptr) *diagnostic = "cache disabled";
    return false;
  }
  if (!KindEnabled(kind)) {
    if (diagnostic != nullptr) *diagnostic = "artifact kind disabled";
    return false;
  }
  obs::ScopedTimer timer("cache_store");
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  if (ec) {
    if (diagnostic != nullptr) {
      *diagnostic =
          "cannot create cache dir " + config_.dir + ": " + ec.message();
    }
    return false;
  }
  snapshot::Writer w;
  w.PutString(ArtifactTag(kind));
  w.PutU32(ArtifactSchemaVersion(kind));
  w.PutU64(fingerprint);
  // The body rides after the header verbatim (it was built by a Writer too,
  // so the concatenation is exactly what a single Writer would produce).
  const std::string path = EntryPath(kind, fingerprint);
  // Unique temp name per (process, store): two writers racing on one key
  // each write their own file and the losing rename just replaces the
  // winner's identical entry — never interleaved bytes under one name.
  static std::atomic<std::uint64_t> tmp_seq{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(tmp_seq.fetch_add(1));
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) {
      if (diagnostic != nullptr) *diagnostic = "cannot write " + tmp;
      return false;
    }
    try {
      std::string payload = w.payload();
      payload.append(body);
      snapshot::WriteEnvelope(os, payload);
    } catch (const std::exception& e) {
      os.close();
      std::remove(tmp.c_str());
      if (diagnostic != nullptr) *diagnostic = e.what();
      return false;
    }
    // Flush and close BEFORE the rename, checking both: a full disk or I/O
    // error must never promote a truncated file to the entry name.
    os.flush();
    if (!os) {
      os.close();
      std::remove(tmp.c_str());
      if (diagnostic != nullptr) {
        *diagnostic = "write failed (flush) for " + tmp;
      }
      return false;
    }
    os.close();
    if (os.fail()) {
      std::remove(tmp.c_str());
      if (diagnostic != nullptr) {
        *diagnostic = "write failed (close) for " + tmp;
      }
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    if (diagnostic != nullptr) {
      *diagnostic = "cannot rename " + tmp + " to " + path;
    }
    return false;
  }
  CacheCounter("hpcfail_cache_store_total", "Artifact cache entries written")
      .Increment();
  CacheCounter("hpcfail_cache_bytes_written_total",
               "Bytes of cached artifacts written")
      .Add(static_cast<long long>(w.payload().size() + body.size()));
  RegisterLiveKey(path);
  if (diagnostic != nullptr) *diagnostic = "stored " + path;
  SweepAfterStore();
  return true;
}

void ArtifactCache::SweepAfterStore() {
  // Best effort throughout: stores are rare (cold runs) and a sweep failure
  // must never fail the store that triggered it.
  struct Entry {
    fs::path path;
    std::uint64_t size = 0;
    fs::file_time_type mtime;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  const auto now = fs::file_time_type::clock::now();
  for (fs::directory_iterator it(config_.dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    const fs::path& p = it->path();
    const std::string name = p.filename().string();
    std::error_code sec;
    if (name.find(".tmp.") != std::string::npos) {
      // An abandoned temp file from a crashed writer; a live writer's temp
      // is younger than the age threshold and is left alone.
      const auto mtime = fs::last_write_time(p, sec);
      if (!sec && now - mtime > kOrphanTmpMaxAge) {
        if (fs::remove(p, sec) && !sec) {
          CacheCounter("hpcfail_cache_orphan_tmp_removed_total",
                       "Abandoned cache temp files removed during store")
              .Increment();
        }
      }
      continue;
    }
    if (config_.budget_bytes == 0 || !IsEntryFileName(name)) continue;
    Entry e;
    e.path = p;
    e.size = fs::file_size(p, sec);
    if (sec) continue;
    e.mtime = fs::last_write_time(p, sec);
    if (sec) continue;
    total += e.size;
    entries.push_back(std::move(e));
  }
  if (config_.budget_bytes == 0 || total <= config_.budget_bytes) return;
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
  for (const Entry& e : entries) {
    if (total <= config_.budget_bytes) break;
    // Never delete this process's live working set: entries it stored or
    // hit are what its warm paths are about to read again.
    if (IsLiveKey(e.path.string())) continue;
    std::error_code sec;
    if (fs::remove(e.path, sec) && !sec) {
      total -= e.size;
      CacheCounter("hpcfail_cache_evicted_budget_total",
                   "Cache entries evicted by the size-budget sweep")
          .Increment();
    }
  }
}

}  // namespace hpcfail::engine
