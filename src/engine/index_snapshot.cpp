#include "engine/index_snapshot.h"

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/parallel.h"
#include "obs/span.h"

namespace hpcfail::engine {

namespace snapshot = stream::snapshot;

namespace {

// Layout per store: i64 system id, then the five global columns, then the
// per-node and per-rack bundles (count + columns each). Every column rides
// as one length-prefixed byte string — a single bulk copy each way, which
// is what makes the restore cheaper than rebuilding the columns. The bytes
// are the in-memory element layout (the cache is a host-local artifact
// behind a schema version and the envelope checksum, not an interchange
// format), and every restored store still passes ValidateRestored before it
// is served.

template <typename T>
void PutColumn(snapshot::Writer* w, const std::vector<T>& v) {
  w->PutString(std::string_view(reinterpret_cast<const char*>(v.data()),
                                v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> GetColumn(snapshot::Reader* r) {
  const std::string s = r->GetString();
  if (s.size() % sizeof(T) != 0) {
    throw snapshot::SnapshotError("column byte length not a multiple of " +
                                  std::to_string(sizeof(T)));
  }
  std::vector<T> v(s.size() / sizeof(T));
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

std::vector<std::uint8_t> GetBytes(snapshot::Reader* r, std::size_t expect) {
  std::vector<std::uint8_t> v = GetColumn<std::uint8_t>(r);
  if (v.size() != expect) {
    throw snapshot::SnapshotError("byte column length mismatch");
  }
  return v;
}

void PutStore(snapshot::Writer* w, const core::SystemEventStore& se) {
  w->PutI64(se.id.value);
  PutColumn(w, se.starts);
  PutColumn(w, se.ends);
  PutColumn(w, se.nodes);
  PutColumn(w, se.cats);
  PutColumn(w, se.subs);
  w->PutU64(se.by_node.size());
  for (const core::SystemEventStore::EventColumns& c : se.by_node) {
    PutColumn(w, c.times);
    PutColumn(w, c.cats);
    PutColumn(w, c.subs);
  }
  w->PutU64(se.by_rack.size());
  for (const core::SystemEventStore::EventColumns& c : se.by_rack) {
    PutColumn(w, c.times);
    PutColumn(w, c.nodes);
    PutColumn(w, c.cats);
    PutColumn(w, c.subs);
  }
}

// Decode only: column extraction in stream order. Init and ValidateRestored
// run afterwards, in parallel across stores (they are per-store work and
// the expensive half of a restore).
core::SystemEventStore DecodeStore(SystemId expect, snapshot::Reader* r) {
  const std::int64_t id = r->GetI64();
  if (id != expect.value) {
    throw snapshot::SnapshotError(
        "index snapshot store order mismatch (got system " +
        std::to_string(id) + ", expected " + std::to_string(expect.value) +
        ")");
  }
  core::SystemEventStore se;
  se.starts = GetColumn<TimeSec>(r);
  se.ends = GetColumn<TimeSec>(r);
  se.nodes = GetColumn<std::int32_t>(r);
  se.cats = GetBytes(r, se.starts.size());
  se.subs = GetBytes(r, se.starts.size());
  const std::size_t num_nodes = r->GetSize(1);
  se.by_node.resize(num_nodes);
  for (core::SystemEventStore::EventColumns& c : se.by_node) {
    c.times = GetColumn<TimeSec>(r);
    c.cats = GetBytes(r, c.times.size());
    c.subs = GetBytes(r, c.times.size());
  }
  const std::size_t num_racks = r->GetSize(1);
  se.by_rack.resize(num_racks);
  for (core::SystemEventStore::EventColumns& c : se.by_rack) {
    c.times = GetColumn<TimeSec>(r);
    c.nodes = GetColumn<std::int32_t>(r);
    c.cats = GetBytes(r, c.times.size());
    c.subs = GetBytes(r, c.times.size());
  }
  return se;
}

// The store sequence Build would produce: every trace system when
// `systems` is empty, else the valid requested ids in order.
std::vector<SystemId> ExpectedSystems(const Trace& trace,
                                      std::span<const SystemId> systems) {
  std::vector<SystemId> wanted;
  if (systems.empty()) {
    for (const SystemConfig& s : trace.systems()) wanted.push_back(s.id);
  } else {
    for (SystemId id : systems) {
      if (id.valid()) wanted.push_back(id);
    }
  }
  return wanted;
}

}  // namespace

void SerializeStoreSet(const core::EventStoreSet& set, snapshot::Writer* w) {
  w->PutU64(set.stores.size());
  for (const core::SystemEventStore& se : set.stores) PutStore(w, se);
}

core::EventStoreSet DeserializeStoreSet(const Trace& trace,
                                        std::span<const SystemId> systems,
                                        snapshot::Reader* r) {
  obs::ScopedTimer timer("index_restore");
  const std::vector<SystemId> wanted = ExpectedSystems(trace, systems);
  const std::size_t count = r->GetSize(8);
  if (count != wanted.size()) {
    throw snapshot::SnapshotError(
        "index snapshot store count mismatch (got " + std::to_string(count) +
        ", expected " + std::to_string(wanted.size()) + ")");
  }
  core::EventStoreSet set;
  set.stores.reserve(count);
  for (SystemId id : wanted) set.stores.push_back(DecodeStore(id, r));

  // Second pass, parallel across stores: resolve the system config (this
  // also rebuilds rack_of/rack_size and sizes the bundle vectors' expected
  // shapes) and run the full consistency validation. Exceptions are
  // captured per store — they must not cross the thread-pool boundary.
  std::vector<std::string> errors(count);
  core::ParallelFor(count, [&](std::size_t i) {
    core::SystemEventStore& se = set.stores[i];
    // Decode resized the bundles from the stream; Init would clear them, so
    // move them aside and verify the shapes Init derives match.
    std::vector<core::SystemEventStore::EventColumns> by_node =
        std::move(se.by_node);
    std::vector<core::SystemEventStore::EventColumns> by_rack =
        std::move(se.by_rack);
    std::vector<TimeSec> starts = std::move(se.starts);
    std::vector<TimeSec> ends = std::move(se.ends);
    std::vector<std::int32_t> nodes = std::move(se.nodes);
    std::vector<std::uint8_t> cats = std::move(se.cats);
    std::vector<std::uint8_t> subs = std::move(se.subs);
    try {
      se.Init(trace.system(wanted[i]));
    } catch (const std::exception& e) {
      errors[i] = std::string("unknown system: ") + e.what();
      return;
    }
    if (se.by_node.size() != by_node.size()) {
      errors[i] = "per-node bundle count mismatch";
      return;
    }
    if (se.by_rack.size() != by_rack.size()) {
      errors[i] = "per-rack bundle count mismatch";
      return;
    }
    se.by_node = std::move(by_node);
    se.by_rack = std::move(by_rack);
    se.starts = std::move(starts);
    se.ends = std::move(ends);
    se.nodes = std::move(nodes);
    se.cats = std::move(cats);
    se.subs = std::move(subs);
    try {
      se.ValidateRestored();
    } catch (const std::invalid_argument& e) {
      errors[i] = e.what();
    }
  });
  for (const std::string& e : errors) {
    if (!e.empty()) throw snapshot::SnapshotError(e);
  }
  return set;
}

}  // namespace hpcfail::engine
