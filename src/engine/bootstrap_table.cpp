#include "engine/bootstrap_table.h"

#include <algorithm>
#include <ostream>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/report.h"
#include "engine/fingerprint.h"
#include "obs/span.h"
#include "stats/bootstrap.h"
#include "stats/rng.h"
#include "stream/snapshot.h"

namespace hpcfail::engine {

namespace snapshot = stream::snapshot;

namespace {

// A system needs at least this many interarrival gaps for its rows; below
// that a bootstrap interval is noise.
constexpr std::size_t kMinSample = 10;

// One (system, statistic) row: everything the renderer needs plus the
// replicate table the confidence interval is read from.
struct Row {
  SystemId system;
  std::string statistic;  // "mean" | "median"
  std::uint64_t n = 0;    // interarrival sample size
  stats::BootstrapTable table;
};

double Mean(std::span<const double> v) {
  double sum = 0.0;
  for (const double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double Median(std::span<const double> v) {
  std::vector<double> copy(v.begin(), v.end());
  std::sort(copy.begin(), copy.end());
  const std::size_t n = copy.size();
  return n % 2 == 1 ? copy[n / 2]
                    : 0.5 * (copy[n / 2 - 1] + copy[n / 2]);
}

std::vector<double> InterarrivalSample(const Trace& trace, SystemId sys) {
  const std::vector<FailureRecord> failures = trace.FailuresOfSystem(sys);
  std::vector<double> gaps;
  if (failures.size() < 2) return gaps;
  gaps.reserve(failures.size() - 1);
  for (std::size_t i = 1; i < failures.size(); ++i) {
    gaps.push_back(
        static_cast<double>(failures[i].start - failures[i - 1].start));
  }
  return gaps;
}

void CheckCancel(const CancelFn& cancel) {
  if (cancel && cancel()) throw RenderCancelled("bootstrap");
}

std::vector<Row> ComputeRows(const Trace& trace,
                             const BootstrapOptions& options,
                             const CancelFn& cancel) {
  // One serial Rng across all rows in trace order: the replicate seeds (and
  // therefore every table) are a pure function of (trace, seed, resamples),
  // the artifact key.
  stats::Rng rng(options.seed);
  std::vector<Row> rows;
  for (const SystemConfig& s : trace.systems()) {
    CheckCancel(cancel);
    const std::vector<double> sample = InterarrivalSample(trace, s.id);
    if (sample.size() < kMinSample) continue;
    for (const auto& [name, fn] :
         {std::pair<const char*, double (*)(std::span<const double>)>{
              "mean", &Mean},
          {"median", &Median}}) {
      Row row;
      row.system = s.id;
      row.statistic = name;
      row.n = sample.size();
      row.table =
          stats::BootstrapReplicates(sample, fn, rng, options.resamples);
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

void SerializeRows(const std::vector<Row>& rows, snapshot::Writer* w) {
  w->PutU64(rows.size());
  for (const Row& row : rows) {
    w->PutI64(row.system.value);
    w->PutString(row.statistic);
    w->PutU64(row.n);
    w->PutDouble(row.table.estimate);
    w->PutU64(row.table.replicates.size());
    for (const double r : row.table.replicates) w->PutDouble(r);
  }
}

std::vector<Row> DeserializeRows(const Trace& trace,
                                 const BootstrapOptions& options,
                                 snapshot::Reader* r) {
  std::vector<Row> rows(r->GetSize(8 + 8 + 8 + 8 + 8));
  for (Row& row : rows) {
    row.system = SystemId{static_cast<std::int32_t>(r->GetI64())};
    if (trace.FindSystem(row.system) == nullptr) {
      throw snapshot::SnapshotError("bootstrap row names unknown system");
    }
    row.statistic = r->GetString();
    if (row.statistic != "mean" && row.statistic != "median") {
      throw snapshot::SnapshotError("bootstrap row names unknown statistic");
    }
    row.n = r->GetU64();
    row.table.estimate = r->GetDouble();
    row.table.replicates.resize(r->GetSize(8));
    if (row.table.replicates.size() !=
        static_cast<std::size_t>(options.resamples)) {
      throw snapshot::SnapshotError("bootstrap replicate count mismatch");
    }
    double prev = 0.0;
    for (std::size_t i = 0; i < row.table.replicates.size(); ++i) {
      const double v = r->GetDouble();
      if (i > 0 && v < prev) {
        // ResultFromTable's percentile read assumes a sorted table.
        throw snapshot::SnapshotError("bootstrap replicates not sorted");
      }
      row.table.replicates[i] = v;
      prev = v;
    }
  }
  if (!r->AtEnd()) {
    throw snapshot::SnapshotError("trailing bytes after bootstrap payload");
  }
  return rows;
}

void RenderRows(const Trace& trace, const std::vector<Row>& rows,
                const BootstrapOptions& options, std::ostream& os,
                const CancelFn& cancel) {
  os << "\n=== bootstrap confidence intervals (interarrival seconds, "
     << core::FormatDouble(options.confidence * 100.0, 0) << "% CI, "
     << options.resamples << " resamples) ===\n";
  if (rows.empty()) {
    os << "no system has enough failures (need >= " << kMinSample
       << " interarrival gaps)\n";
    return;
  }
  core::Table t({"system", "statistic", "n", "estimate", "ci low", "ci high"});
  for (const Row& row : rows) {
    CheckCancel(cancel);
    const stats::BootstrapResult r =
        stats::ResultFromTable(row.table, options.confidence);
    t.AddRow({trace.system(row.system).name, row.statistic,
              std::to_string(row.n), core::FormatDouble(r.estimate, 1),
              core::FormatDouble(r.ci_low, 1),
              core::FormatDouble(r.ci_high, 1)});
  }
  t.Print(os);
}

}  // namespace

std::uint64_t BootstrapArtifactKey(std::uint64_t fingerprint,
                                   const BootstrapOptions& options) {
  FingerprintHasher h;
  h.Str("interarrival");
  h.U64(fingerprint);
  h.U64(options.seed);
  h.U64(static_cast<std::uint64_t>(options.resamples));
  return h.value();
}

BootstrapRenderStats RenderBootstrapTable(
    const AnalysisView& view, std::optional<std::uint64_t> fingerprint,
    ArtifactCache& cache, const BootstrapOptions& options, std::ostream& os,
    const CancelFn& cancel) {
  if (options.resamples < 2) {
    throw std::invalid_argument("RenderBootstrapTable: resamples < 2");
  }
  if (!(options.confidence > 0.0) || !(options.confidence < 1.0)) {
    throw std::invalid_argument(
        "RenderBootstrapTable: confidence not in (0,1)");
  }
  obs::ScopedTimer timer("bootstrap_render");
  BootstrapRenderStats out;
  const Trace& trace = view.trace();
  std::optional<std::vector<Row>> rows;
  const bool cache_on =
      fingerprint.has_value() && cache.KindEnabled(ArtifactKind::kBootstrap);
  std::uint64_t key = 0;
  if (cache_on) {
    key = BootstrapArtifactKey(*fingerprint, options);
    if (std::optional<std::string> body = cache.TryLoadBody(
            ArtifactKind::kBootstrap, key, &out.diagnostic)) {
      try {
        snapshot::Reader r(*body);
        rows = DeserializeRows(trace, options, &r);
        out.cache_hit = true;
      } catch (const snapshot::SnapshotError& e) {
        cache.EvictCorrupt(ArtifactKind::kBootstrap, key, e.what(),
                           &out.diagnostic);
      }
    }
  } else {
    out.diagnostic = !fingerprint.has_value()
                         ? "unfingerprintable source"
                         : (cache.enabled() ? "artifact kind disabled"
                                            : "cache disabled");
  }
  if (!rows.has_value()) {
    rows = ComputeRows(trace, options, cancel);
    if (cache_on) {
      snapshot::Writer w;
      SerializeRows(*rows, &w);
      std::string store_diag;
      out.cache_stored = cache.StoreBody(ArtifactKind::kBootstrap, key,
                                         w.payload(), &store_diag);
      if (!out.cache_stored) {
        out.diagnostic += "; store failed: " + store_diag;
      }
    }
  }
  RenderRows(trace, *rows, options, os, cancel);
  return out;
}

}  // namespace hpcfail::engine
