// Declarative command-line parsing for every hpcfail binary (benches and
// tools), replacing bench_common.h's hand-rolled loop. Two deliberate
// behavior changes from that loop:
//
//   * unknown flags are ERRORS (exit code 2), not silently ignored — a typo
//     like `--thread 8` used to run the bench single-threaded without a word;
//   * every binary gets the same standard surface: --threads, --seed,
//     --cache-dir, --no-cache, --json, --help.
//
// Positional arguments are rejected unless the binary opts in with
// AllowPositionals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hpcfail::engine {

class ArgParser {
 public:
  explicit ArgParser(std::string program, std::string description = {});

  // Register flags. `name` is without the leading "--". The output pointer
  // must outlive Parse; its current value is the default shown in --help.
  void AddFlag(const std::string& name, bool* out, const std::string& help);
  void AddInt(const std::string& name, int* out, const std::string& help);
  void AddUint64(const std::string& name, std::uint64_t* out,
                 const std::string& help);
  void AddDouble(const std::string& name, double* out,
                 const std::string& help);
  void AddString(const std::string& name, std::string* out,
                 const std::string& help);

  // Accept bare (non-flag) arguments into `out` instead of erroring.
  void AllowPositionals(std::vector<std::string>* out);

  // Parses argv[1..). Returns false with a message in `error` on any unknown
  // flag, missing value, or malformed number. `--` ends flag parsing; later
  // arguments are positionals. Testable (no exit / no printing).
  bool TryParse(int argc, const char* const* argv, std::string* error);

  // TryParse + standard process behavior: on error prints the message and
  // usage to stderr and exits 2; on --help prints usage to stdout and exits
  // 0.
  void ParseOrExit(int argc, const char* const* argv);

  bool help_requested() const { return help_; }
  std::string Usage() const;

 private:
  enum class Kind { kFlag, kInt, kUint64, kDouble, kString };
  struct Option {
    std::string name;
    Kind kind;
    void* out;
    std::string help;
    std::string default_text;
  };

  const Option* Find(const std::string& name) const;
  bool SetValue(const Option& opt, const std::string& value,
                std::string* error);

  std::string program_;
  std::string description_;
  std::vector<Option> options_;
  std::vector<std::string>* positionals_ = nullptr;
  bool help_ = false;
};

}  // namespace hpcfail::engine
