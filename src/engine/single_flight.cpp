#include "engine/single_flight.h"

#include <utility>

#include "obs/metrics.h"

namespace hpcfail::engine {

KeyedMutex& KeyedMutex::Global() {
  // Leaked like the metrics registry: sessions may be built during static
  // destruction of other translation units.
  static KeyedMutex* instance = new KeyedMutex();
  return *instance;
}

KeyedMutex::Guard::Guard(Guard&& other) noexcept
    : owner_(other.owner_), key_(other.key_), waited_(other.waited_) {
  other.owner_ = nullptr;
}

KeyedMutex::Guard::~Guard() {
  if (owner_ != nullptr) owner_->Unlock(key_);
}

KeyedMutex::Guard KeyedMutex::Lock(std::uint64_t key) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::shared_ptr<Entry>& slot = entries_[key];
    if (!slot) slot = std::make_shared<Entry>();
    ++slot->refs;
    entry = slot;
  }
  bool waited = false;
  if (!entry->m.try_lock()) {
    waited = true;
    obs::MetricsRegistry::Global()
        .GetCounter("hpcfail_engine_build_singleflight_waits_total",
                    "Trace acquisitions that waited behind a concurrent "
                    "same-fingerprint build instead of duplicating it")
        .Increment();
    entry->m.lock();
  }
  return Guard(this, key, waited);
}

void KeyedMutex::Unlock(std::uint64_t key) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    entry = it->second;
    if (--it->second->refs == 0) entries_.erase(it);
  }
  // Unlock outside mu_ (and via the shared_ptr, so the Entry outlives the
  // map erase even when a racer grabs a fresh entry for the same key).
  entry->m.unlock();
}

std::size_t KeyedMutex::live_keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace hpcfail::engine
