// TraceSource: where a trace comes from, behind one interface. A source can
// (a) fingerprint its inputs cheaply — without generating or parsing
// anything — so the artifact cache can answer first, and (b) acquire the
// full trace when the cache misses.
//
// Three acquisition modes cover every binary in the repo:
//
//   scenario    — synthetic generation (synth::GenerateTrace); fingerprint
//                 hashes every scenario knob + the seed
//   csv dir     — LANL-style CSV import (csv::LoadTrace); fingerprint hashes
//                 the raw bytes of every trace CSV in the directory
//   checkpoint  — a stream-engine checkpoint replayed into a batch trace;
//                 fingerprint hashes the checkpoint bytes + systems.csv +
//                 the engine configuration
//   lanl        — a raw LANL failure log (lanl::ImportFailures +
//                 AssembleTrace); fingerprint hashes the log bytes + the
//                 nodes-per-system assembly parameter
//   log         — any single-file log through the trace/adapter registry
//                 (lanl_csv, bgq_ras, syslog, hpcfail_csv, or auto-detected);
//                 fingerprint hashes the RESOLVED adapter name + every
//                 adapter option + the log bytes, so two formats' parses of
//                 one file can never alias in the artifact cache
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "stream/engine.h"
#include "synth/scenario.h"
#include "trace/adapter.h"
#include "trace/system.h"

namespace hpcfail::engine {

enum class SourceKind : std::uint8_t {
  kScenario = 0,
  kCsvDir,
  kStreamCheckpoint,
  kLanlCsv,
  kLog,
};

std::string_view ToString(SourceKind k);

class TraceSource {
 public:
  virtual ~TraceSource() = default;

  virtual SourceKind kind() const = 0;
  // Human-readable input description for diagnostics ("scenario lanl-like
  // seed=2013", "csv dir data/", "checkpoint ckpt.bin").
  virtual std::string label() const = 0;

  // Content fingerprint of the inputs; nullopt when they cannot be read
  // (missing file) — the session then bypasses the cache and lets Acquire()
  // raise the real error.
  virtual std::optional<std::uint64_t> Fingerprint() const = 0;

  // Produces the finalized trace. Throws on unreadable/malformed input.
  virtual Trace Acquire() const = 0;
};

std::unique_ptr<TraceSource> MakeScenarioSource(synth::Scenario scenario,
                                                std::uint64_t seed);

std::unique_ptr<TraceSource> MakeCsvDirSource(std::string dir);

// Replays a stream-engine checkpoint into a batch trace: systems come from
// `<trace_dir>/systems.csv` (+ layout.csv when present), the checkpoint is
// restored into a fresh StreamEngine built with `config`, and the released
// failures become the trace's failure stream.
std::unique_ptr<TraceSource> MakeCheckpointSource(std::string checkpoint_path,
                                                  std::string trace_dir,
                                                  stream::EngineConfig config);

// Imports a raw LANL failure log (the paper's published dataset format).
// `nodes_per_system` <= 0 auto-sizes each system from the log itself.
std::unique_ptr<TraceSource> MakeLanlSource(std::string path,
                                            int nodes_per_system);

// Ingests any single-file log through the trace/adapter registry. `format`
// is an adapter name or "auto"/"" for sniff-based detection (resolved
// lazily, so constructing a source for a missing file is fine — Acquire()
// raises the real error). `nodes_per_system` feeds lanl::AssembleTrace as
// for MakeLanlSource.
std::unique_ptr<TraceSource> MakeLogSource(std::string path,
                                           std::string format,
                                           trace::AdapterOptions options,
                                           int nodes_per_system);

}  // namespace hpcfail::engine
