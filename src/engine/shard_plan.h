// Shard partition arithmetic for engine::SessionSet: pure functions from a
// trace's shape plus a ShardSpec to the (system-block, time-window) grid of
// shard keys. Kept separate from the SessionSet itself so the partition
// invariants — every failure record maps to exactly ONE shard, no record
// dropped or duplicated, regardless of where the rolling-window boundaries
// land — are testable without building any stores (the fuzz suite in
// tests/test_session_set.cpp exercises exactly this class).
//
// Keying. A shard key is (block, window):
//   block  — index into consecutive runs of `systems_per_block` systems in
//            the plan's system order (trace order unless the caller
//            restricted the set). 0 = all systems in one block.
//   window — index of the rolling start-time window of width spec.window
//            seconds, anchored at the earliest observed.begin across the
//            plan's systems. 0 = one window covering all time.
// The FIRST window extends to -infinity and the LAST to +infinity (sentinel
// bounds), so records that start outside every system's observation period
// still land in exactly one shard instead of falling off the grid.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "trace/system.h"

namespace hpcfail::engine {

// Identifies one shard: "B:W" in text form (see ToString / ParseShardKey).
struct ShardKey {
  int block = 0;
  int window = 0;

  friend auto operator<=>(const ShardKey&, const ShardKey&) = default;
};

std::string ToString(ShardKey key);
// Parses "B:W" (two non-negative decimal ints); nullopt on anything else.
std::optional<ShardKey> ParseShardKey(std::string_view text);

struct ShardSpec {
  // Width of each rolling start-time window in seconds; 0 = a single window
  // spanning all time. Negative widths are rejected by ShardPlan.
  TimeSec window = 0;
  // Systems per block, in plan order; 0 = all systems in one block.
  // Negative counts are rejected by ShardPlan.
  int systems_per_block = 0;
};

class ShardPlan {
 public:
  // Plans over `systems` (all trace systems, in trace order, when empty —
  // requested ids are kept verbatim, including invalid negative ones, which
  // simply yield empty shards downstream because EventStoreSet::Build skips
  // them). Throws std::invalid_argument on negative spec fields.
  ShardPlan(const Trace& trace, ShardSpec spec,
            std::vector<SystemId> systems = {});

  const ShardSpec& spec() const { return spec_; }
  const std::vector<SystemId>& systems() const { return systems_; }

  int num_blocks() const { return num_blocks_; }
  int num_windows() const { return num_windows_; }
  std::size_t num_shards() const {
    return static_cast<std::size_t>(num_blocks_) *
           static_cast<std::size_t>(num_windows_);
  }

  // Earliest observed.begin across the plan's valid systems (0 when none);
  // window w covers starts in [origin + w*width, origin + (w+1)*width),
  // widened to the sentinels at the grid edges.
  TimeSec origin() const { return origin_; }

  std::span<const SystemId> SystemsOfBlock(int block) const;

  // Window index for a record start, clamped into [0, num_windows): starts
  // before the origin land in window 0, starts at or past the last boundary
  // land in the last window. Total — never rejects a time.
  int WindowOf(TimeSec start) const;

  // Block index of a system, or -1 when the plan does not include it.
  int BlockOf(SystemId sys) const;

  // The one shard a record belongs to; nullopt only when its system is not
  // in the plan (such records are not indexed by any shard, exactly as
  // EventStoreSet::Build over the plan's systems would skip them).
  std::optional<ShardKey> KeyFor(const FailureRecord& record) const;

  // Half-open start-time range [begin, end) of a window, with sentinel
  // bounds at the grid edges. For every t: StartRange(WindowOf(t))
  // contains t, and the ranges of consecutive windows tile the time axis —
  // the no-drop / no-duplicate partition invariant.
  TimeInterval StartRange(int window) const;

  bool Contains(ShardKey key) const {
    return key.block >= 0 && key.block < num_blocks_ && key.window >= 0 &&
           key.window < num_windows_;
  }
  // Dense index (block-major) of a valid key.
  std::size_t IndexOf(ShardKey key) const {
    return static_cast<std::size_t>(key.block) *
               static_cast<std::size_t>(num_windows_) +
           static_cast<std::size_t>(key.window);
  }

  // Every key of the grid, block-major, windows ascending within a block.
  std::vector<ShardKey> Keys() const;

  // Content fingerprint of one shard: the parent trace fingerprint mixed
  // with every plan knob (spec, system list) and the key. Distinct plans
  // over the same trace, or the same plan over distinct traces, can never
  // collide in the artifact cache.
  std::uint64_t ShardFingerprint(std::uint64_t parent_fingerprint,
                                 ShardKey key) const;

 private:
  ShardSpec spec_;
  std::vector<SystemId> systems_;
  TimeSec origin_ = 0;
  int num_blocks_ = 1;
  int num_windows_ = 1;
};

}  // namespace hpcfail::engine
