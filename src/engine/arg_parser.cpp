#include "engine/arg_parser.h"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "trace/numeric.h"

namespace hpcfail::engine {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::AddFlag(const std::string& name, bool* out,
                        const std::string& help) {
  options_.push_back({name, Kind::kFlag, out, help, *out ? "true" : "false"});
}

void ArgParser::AddInt(const std::string& name, int* out,
                       const std::string& help) {
  options_.push_back({name, Kind::kInt, out, help, std::to_string(*out)});
}

void ArgParser::AddUint64(const std::string& name, std::uint64_t* out,
                          const std::string& help) {
  options_.push_back({name, Kind::kUint64, out, help, std::to_string(*out)});
}

void ArgParser::AddDouble(const std::string& name, double* out,
                          const std::string& help) {
  options_.push_back({name, Kind::kDouble, out, help, std::to_string(*out)});
}

void ArgParser::AddString(const std::string& name, std::string* out,
                          const std::string& help) {
  options_.push_back(
      {name, Kind::kString, out, help, out->empty() ? "\"\"" : *out});
}

void ArgParser::AllowPositionals(std::vector<std::string>* out) {
  positionals_ = out;
}

const ArgParser::Option* ArgParser::Find(const std::string& name) const {
  for (const Option& o : options_) {
    if (o.name == name) return &o;
  }
  return nullptr;
}

bool ArgParser::SetValue(const Option& opt, const std::string& value,
                         std::string* error) {
  try {
    std::size_t used = 0;
    switch (opt.kind) {
      case Kind::kFlag:
        break;  // handled by caller
      case Kind::kInt: {
        const int v = std::stoi(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        *static_cast<int*>(opt.out) = v;
        break;
      }
      case Kind::kUint64: {
        if (!value.empty() && value[0] == '-') {
          throw std::invalid_argument(value);
        }
        const unsigned long long v = std::stoull(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        *static_cast<std::uint64_t*>(opt.out) = v;
        break;
      }
      case Kind::kDouble: {
        // Locale-independent (trace/numeric.h): --scale 0.25 must mean the
        // same thing under a comma-decimal LC_NUMERIC.
        const std::optional<double> v = ParseDoubleText(value);
        if (!v) throw std::invalid_argument(value);
        *static_cast<double*>(opt.out) = *v;
        break;
      }
      case Kind::kString:
        *static_cast<std::string*>(opt.out) = value;
        break;
    }
  } catch (const std::exception&) {
    if (error != nullptr) {
      *error = "--" + opt.name + ": invalid value '" + value + "'";
    }
    return false;
  }
  return true;
}

bool ArgParser::TryParse(int argc, const char* const* argv,
                         std::string* error) {
  help_ = false;
  bool flags_done = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!flags_done && arg == "--") {
      flags_done = true;
      continue;
    }
    if (!flags_done && arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      if (arg == "--help") {
        help_ = true;
        return true;
      }
      std::string name = arg.substr(2);
      std::string inline_value;
      bool has_inline = false;
      if (const auto eq = name.find('='); eq != std::string::npos) {
        inline_value = name.substr(eq + 1);
        name = name.substr(0, eq);
        has_inline = true;
      }
      const Option* opt = Find(name);
      if (opt == nullptr) {
        if (error != nullptr) *error = "unknown argument '--" + name + "'";
        return false;
      }
      if (opt->kind == Kind::kFlag) {
        if (has_inline) {
          if (error != nullptr) {
            *error = "--" + name + " does not take a value";
          }
          return false;
        }
        *static_cast<bool*>(opt->out) = true;
        continue;
      }
      std::string value;
      if (has_inline) {
        value = inline_value;
      } else {
        if (i + 1 >= argc) {
          if (error != nullptr) *error = "--" + name + " requires a value";
          return false;
        }
        value = argv[++i];
      }
      if (!SetValue(*opt, value, error)) return false;
      continue;
    }
    if (positionals_ != nullptr) {
      positionals_->push_back(arg);
      continue;
    }
    if (error != nullptr) *error = "unknown argument '" + arg + "'";
    return false;
  }
  return true;
}

void ArgParser::ParseOrExit(int argc, const char* const* argv) {
  std::string error;
  if (!TryParse(argc, argv, &error)) {
    std::fprintf(stderr, "%s: error: %s\n%s", program_.c_str(), error.c_str(),
                 Usage().c_str());
    std::exit(2);
  }
  if (help_) {
    std::fputs(Usage().c_str(), stdout);
    std::exit(0);
  }
}

namespace {

constexpr std::size_t kUsageWidth = 78;
constexpr std::size_t kHelpColumn = 26;

// Word-wraps `text` into `out`, starting at column `start` on the current
// line, indenting continuation lines to kHelpColumn. Words longer than the
// width are emitted unbroken (never split mid-word).
void AppendWrapped(const std::string& text, std::size_t start,
                   std::string* out) {
  std::size_t column = start;
  std::size_t pos = 0;
  bool first = true;
  while (pos < text.size()) {
    const std::size_t space = text.find(' ', pos);
    const std::string_view word =
        std::string_view(text).substr(pos, space == std::string::npos
                                               ? std::string::npos
                                               : space - pos);
    pos = space == std::string::npos ? text.size() : space + 1;
    if (word.empty()) continue;
    const std::size_t needed = word.size() + (first ? 0 : 1);
    if (!first && column + needed > kUsageWidth) {
      out->push_back('\n');
      out->append(kHelpColumn, ' ');
      column = kHelpColumn;
      out->append(word);
      column += word.size();
    } else {
      if (!first) {
        out->push_back(' ');
        ++column;
      }
      out->append(word);
      column += needed - (first ? 0 : 1);
    }
    first = false;
  }
  out->push_back('\n');
}

}  // namespace

std::string ArgParser::Usage() const {
  std::string out = "usage: " + program_;
  if (!options_.empty()) out += " [options]";
  if (positionals_ != nullptr) out += " [args...]";
  out += "\n";
  if (!description_.empty()) AppendWrapped(description_, 0, &out);
  if (!options_.empty()) out += "options:\n";
  for (const Option& o : options_) {
    std::string line = "  --" + o.name;
    if (o.kind != Kind::kFlag) line += " <value>";
    line += "  ";
    // A long flag name pushes its help text onto the next line so the help
    // column stays aligned.
    if (line.size() > kHelpColumn) {
      line.pop_back();
      line.pop_back();
      line += "\n";
      line.append(kHelpColumn, ' ');
    } else {
      while (line.size() < kHelpColumn) line += ' ';
    }
    out += line;
    AppendWrapped(o.help + " (default: " + o.default_text + ")", kHelpColumn,
                  &out);
  }
  out += "  --help                  show this message and exit\n";
  return out;
}

}  // namespace hpcfail::engine
