// Exporters for a MetricsSnapshot:
//
//   * WritePrometheus — the Prometheus text exposition format (one HELP/TYPE
//     block per metric, histogram buckets as cumulative `le` series). Suited
//     to a scrape file (`hpcfail_stream --metrics-out`).
//   * WriteJson / JsonLine — one compact JSON object
//     {"counters":{...},"gauges":{...},"histograms":{...}}; `hpcfail_stream`
//     emits one per metrics interval.
//
// Output is deterministic for a given snapshot: metrics appear sorted by
// name, doubles render with round-trip precision, and non-finite gauge
// values become null (JSON) / NaN (Prometheus).
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.h"

namespace hpcfail::obs {

void WritePrometheus(std::ostream& os, const MetricsSnapshot& snapshot);
std::string PrometheusText(const MetricsSnapshot& snapshot);

void WriteJson(std::ostream& os, const MetricsSnapshot& snapshot);
std::string JsonLine(const MetricsSnapshot& snapshot);  // no trailing newline

}  // namespace hpcfail::obs
