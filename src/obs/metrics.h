// Process-wide observability metrics: counters, gauges and fixed log-scale
// histograms collected in a MetricsRegistry and exported as Prometheus text
// or a JSON snapshot (obs/export.h).
//
// Hot-path cost model. Counter::Add is one relaxed atomic add into a
// per-thread shard (threads hash onto kNumShards cache-line-padded slots),
// merged on read — no locks, no contention on the common path, and totals
// are exact because every shard update is itself atomic. Gauges are one
// relaxed atomic store. Histograms are a relaxed add on the bucket plus
// count/sum, used for stage-level (not per-event) observations. Metric
// *registration* takes a mutex and is meant to happen once per call site
// (keep the returned reference in a function-local static).
//
// Compile-time kill switch. Building with -DHPCFAIL_OBS=OFF (CMake option)
// sets HPCFAIL_OBS_ENABLED=0: every mutator compiles to a no-op, ScopedTimer
// (obs/span.h) performs no clock reads, and reads return zeros. The
// instrumented call sites compile unchanged either way.
//
// Determinism. Metrics observe, they never feed back into analysis results:
// the stream/batch parity suites run with instrumentation enabled and stay
// bit-identical (tests/test_obs_integration.cpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef HPCFAIL_OBS_ENABLED
#define HPCFAIL_OBS_ENABLED 1
#endif

namespace hpcfail::obs {

// True when the build carries live instrumentation; tests use this to skip
// assertions about counted values in a -DHPCFAIL_OBS=OFF build.
inline constexpr bool kEnabled = HPCFAIL_OBS_ENABLED != 0;

// Monotonically increasing event count. Add is wait-free: a relaxed
// fetch_add on the calling thread's shard.
class Counter {
 public:
  void Add(long long n) noexcept {
#if HPCFAIL_OBS_ENABLED
    shards_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  void Increment() noexcept { Add(1); }

  // Sum over all shards. Exact once writers are quiescent; may miss
  // in-flight adds while they race (never double-counts).
  long long Value() const noexcept {
#if HPCFAIL_OBS_ENABLED
    long long total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
#else
    return 0;
#endif
  }

 private:
  friend class MetricsRegistry;
  Counter() = default;

#if HPCFAIL_OBS_ENABLED
  static constexpr std::size_t kNumShards = 16;
  struct alignas(64) Shard {
    std::atomic<long long> value{0};
  };
  static std::size_t ShardIndex() noexcept;
  void Reset() noexcept {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }
  Shard shards_[kNumShards];
#else
  void Reset() noexcept {}
#endif
};

// Last-writer-wins instantaneous value (queue depth, watermark lag, a live
// rate). Set is a relaxed store; Add is a CAS loop for the rare cumulative
// use.
class Gauge {
 public:
  void Set(double v) noexcept {
#if HPCFAIL_OBS_ENABLED
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void Add(double delta) noexcept {
#if HPCFAIL_OBS_ENABLED
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
#else
    (void)delta;
#endif
  }
  double Value() const noexcept {
#if HPCFAIL_OBS_ENABLED
    return value_.load(std::memory_order_relaxed);
#else
    return 0.0;
#endif
  }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
#if HPCFAIL_OBS_ENABLED
  void Reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }
  std::atomic<double> value_{0.0};
#else
  void Reset() noexcept {}
#endif
};

// Distribution of positive values over fixed base-2 log-scale buckets:
// bucket i holds observations in (2^(i-kBias-1), 2^(i-kBias)], spanning
// 2^-32 .. 2^31 — wide enough for seconds-valued stage timings (sub-ns to
// decades) and for byte counts. Every update is a relaxed atomic add, so
// concurrent observation counts are exact.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;
  static constexpr int kBias = 32;

  // Upper bound (inclusive) of bucket i: 2^(i - kBias).
  static double BucketUpperBound(int i) noexcept;
  // Bucket receiving value v (<= 0 maps to bucket 0; huge values clamp to
  // the last bucket).
  static int BucketFor(double v) noexcept;

  void Observe(double v) noexcept;

  long long count() const noexcept;
  double sum() const noexcept;
  long long BucketCount(int i) const noexcept;

 private:
  friend class MetricsRegistry;
  Histogram() = default;
#if HPCFAIL_OBS_ENABLED
  void Reset() noexcept;
  std::atomic<long long> buckets_[kNumBuckets] = {};
  std::atomic<long long> count_{0};
  std::atomic<double> sum_{0.0};
#else
  void Reset() noexcept {}
#endif
};

// Point-in-time copy of every registered metric, sorted by name — the input
// to the exporters and to invariant checks in tests.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::string help;
    long long value = 0;
  };
  struct GaugeValue {
    std::string name;
    std::string help;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    std::string help;
    long long count = 0;
    double sum = 0.0;
    // (upper_bound, count) for every non-empty bucket, ascending bound.
    std::vector<std::pair<double, long long>> buckets;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  // nullptr when `name` is absent.
  const CounterValue* FindCounter(std::string_view name) const;
  const GaugeValue* FindGauge(std::string_view name) const;
  const HistogramValue* FindHistogram(std::string_view name) const;
};

// Owns metrics by name. Get* registers on first use and returns the same
// stable reference afterwards; re-registering a name as a different metric
// type throws std::logic_error. Instrument through Global(); tests build
// private registries for golden-output checks.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name, std::string_view help = {});
  Gauge& GetGauge(std::string_view name, std::string_view help = {});
  Histogram& GetHistogram(std::string_view name, std::string_view help = {});

  MetricsSnapshot Snapshot() const;

  // Zeroes every registered metric (registration survives). Test-only:
  // callers must ensure no concurrent writers.
  void ResetForTest();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& GetEntry(std::string_view name, std::string_view help, Kind kind);

  mutable std::mutex mu_;
  // std::map: stable iteration order -> deterministic export order.
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace hpcfail::obs
