#include "obs/span.h"

#include <algorithm>

namespace hpcfail::obs {

SpanTracer& SpanTracer::Global() {
  // Leaked for the same static-destruction reason as the global registry.
  static SpanTracer* tracer = new SpanTracer(&MetricsRegistry::Global());
  return *tracer;
}

void SpanTracer::Record(std::string_view stage, double seconds) {
#if HPCFAIL_OBS_ENABLED
  Histogram* histogram = nullptr;
  if (registry_) {
    histogram = &registry_->GetHistogram(
        "hpcfail_stage_" + std::string(stage) + "_seconds",
        "Wall time of one '" + std::string(stage) + "' stage execution");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = aggregates_.find(stage);
    if (it == aggregates_.end()) {
      it = aggregates_
               .emplace(std::string(stage),
                        SpanAggregate{std::string(stage), 0, 0.0, seconds,
                                      seconds})
               .first;
    }
    SpanAggregate& agg = it->second;
    ++agg.count;
    agg.total_seconds += seconds;
    agg.min_seconds = std::min(agg.min_seconds, seconds);
    agg.max_seconds = std::max(agg.max_seconds, seconds);

    if (ring_.size() < kRingCapacity) {
      ring_.push_back({std::string(stage), seconds, next_seq_});
    } else {
      ring_[static_cast<std::size_t>(next_seq_ % kRingCapacity)] = {
          std::string(stage), seconds, next_seq_};
    }
    ++next_seq_;
  }
  if (histogram) histogram->Observe(seconds);
#else
  (void)stage;
  (void)seconds;
#endif
}

std::vector<SpanRecord> SpanTracer::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out = ring_;
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::vector<SpanAggregate> SpanTracer::Aggregates() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanAggregate> out;
  out.reserve(aggregates_.size());
  for (const auto& [name, agg] : aggregates_) out.push_back(agg);
  return out;  // map order == sorted by stage name
}

std::uint64_t SpanTracer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

void SpanTracer::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  aggregates_.clear();
  ring_.clear();
  next_seq_ = 0;
}

}  // namespace hpcfail::obs
