#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace hpcfail::obs {
namespace {

// Shortest decimal form that round-trips the double (%.17g is exact but
// noisy; try increasing precision until the value survives a re-parse).
std::string FormatDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  return FormatDouble(v);
}

// Help strings are user-free today, but escape anyway so a future help text
// with a backslash or newline cannot corrupt the exposition format.
std::string EscapeHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

void WritePrometheus(std::ostream& os, const MetricsSnapshot& snapshot) {
  for (const auto& c : snapshot.counters) {
    if (!c.help.empty()) {
      os << "# HELP " << c.name << ' ' << EscapeHelp(c.help) << '\n';
    }
    os << "# TYPE " << c.name << " counter\n";
    os << c.name << ' ' << c.value << '\n';
  }
  for (const auto& g : snapshot.gauges) {
    if (!g.help.empty()) {
      os << "# HELP " << g.name << ' ' << EscapeHelp(g.help) << '\n';
    }
    os << "# TYPE " << g.name << " gauge\n";
    os << g.name << ' ' << FormatDouble(g.value) << '\n';
  }
  for (const auto& h : snapshot.histograms) {
    if (!h.help.empty()) {
      os << "# HELP " << h.name << ' ' << EscapeHelp(h.help) << '\n';
    }
    os << "# TYPE " << h.name << " histogram\n";
    long long cumulative = 0;
    for (const auto& [bound, count] : h.buckets) {
      cumulative += count;
      os << h.name << "_bucket{le=\"" << FormatDouble(bound) << "\"} "
         << cumulative << '\n';
    }
    os << h.name << "_bucket{le=\"+Inf\"} " << h.count << '\n';
    os << h.name << "_sum " << FormatDouble(h.sum) << '\n';
    os << h.name << "_count " << h.count << '\n';
  }
}

std::string PrometheusText(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  WritePrometheus(os, snapshot);
  return os.str();
}

void WriteJson(std::ostream& os, const MetricsSnapshot& snapshot) {
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << EscapeJson(snapshot.counters[i].name)
       << "\":" << snapshot.counters[i].value;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << EscapeJson(snapshot.gauges[i].name)
       << "\":" << JsonNumber(snapshot.gauges[i].value);
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    if (i > 0) os << ',';
    os << '"' << EscapeJson(h.name) << "\":{\"count\":" << h.count
       << ",\"sum\":" << JsonNumber(h.sum) << ",\"buckets\":[";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) os << ',';
      os << '[' << JsonNumber(h.buckets[b].first) << ','
         << h.buckets[b].second << ']';
    }
    os << "]}";
  }
  os << "}}";
}

std::string JsonLine(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  WriteJson(os, snapshot);
  return os.str();
}

}  // namespace hpcfail::obs
