// Stage-level span tracing: ScopedTimer measures one wall-clock span
// (steady clock) and records it into a SpanTracer, which keeps
//
//   * a bounded ring buffer of the most recent spans (kRingCapacity), and
//   * cumulative per-stage aggregates (count / total / min / max), the data
//     behind `hpcfail_report --profile`'s stage-timing table, and
//   * a registry histogram `hpcfail_stage_<stage>_seconds` per stage, so
//     stage timings also show up in the Prometheus / JSON exports.
//
// Spans are stage-granular (ingest, sort, window_query, bootstrap,
// checkpoint, ...), NOT per-event: Record takes a mutex and is called a
// handful of times per analysis, never inside per-record loops. With
// HPCFAIL_OBS_ENABLED=0 ScopedTimer performs no clock reads and Record is
// never reached.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace hpcfail::obs {

// One recorded span, oldest-first in SpanTracer::Recent().
struct SpanRecord {
  std::string stage;
  double seconds = 0.0;
  std::uint64_t seq = 0;  // global record order, starts at 0
};

// Cumulative per-stage timing statistics.
struct SpanAggregate {
  std::string stage;
  long long count = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
};

class SpanTracer {
 public:
  static constexpr std::size_t kRingCapacity = 256;

  // `registry` receives the per-stage histograms; nullptr disables that
  // mirror (private tracers in tests).
  explicit SpanTracer(MetricsRegistry* registry = nullptr)
      : registry_(registry) {}
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  // Process-wide tracer, mirrored into MetricsRegistry::Global().
  static SpanTracer& Global();

  void Record(std::string_view stage, double seconds);

  // Most recent spans, oldest first (at most kRingCapacity).
  std::vector<SpanRecord> Recent() const;
  // Per-stage aggregates sorted by stage name.
  std::vector<SpanAggregate> Aggregates() const;
  // Spans recorded over the tracer's lifetime (>= Recent().size()).
  std::uint64_t total_recorded() const;

  // Clears spans and aggregates (not the mirrored registry histograms).
  void ResetForTest();

 private:
  MetricsRegistry* registry_;
  mutable std::mutex mu_;
  std::map<std::string, SpanAggregate, std::less<>> aggregates_;
  std::vector<SpanRecord> ring_;
  std::uint64_t next_seq_ = 0;
};

// Times its own lifetime and records into SpanTracer::Global() (or the
// tracer given) under `stage`. Stop() ends the span early; the destructor
// is then a no-op.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* stage, SpanTracer* tracer = nullptr)
#if HPCFAIL_OBS_ENABLED
      : stage_(stage),
        tracer_(tracer),
        start_(std::chrono::steady_clock::now()) {
  }
#else
  {
    (void)stage;
    (void)tracer;
  }
#endif

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  // Records the span now and returns its length in seconds.
  double Stop() {
#if HPCFAIL_OBS_ENABLED
    if (stopped_) return 0.0;
    stopped_ = true;
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    (tracer_ ? *tracer_ : SpanTracer::Global()).Record(stage_, seconds);
    return seconds;
#else
    return 0.0;
#endif
  }

  ~ScopedTimer() {
#if HPCFAIL_OBS_ENABLED
    if (!stopped_) Stop();
#endif
  }

 private:
#if HPCFAIL_OBS_ENABLED
  const char* stage_;
  SpanTracer* tracer_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
#endif
};

}  // namespace hpcfail::obs
