#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hpcfail::obs {

#if HPCFAIL_OBS_ENABLED
std::size_t Counter::ShardIndex() noexcept {
  // Threads take successive shard slots; hashing the std::thread::id would
  // risk clustering. The slot is fixed per thread for its lifetime.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kNumShards;
  return slot;
}
#endif

double Histogram::BucketUpperBound(int i) noexcept {
  return std::ldexp(1.0, i - kBias);
}

int Histogram::BucketFor(double v) noexcept {
  if (!(v > 0.0)) return 0;  // non-positive and NaN land in the first bucket
  // Bucket i covers (2^(i-kBias-1), 2^(i-kBias)]: exact powers of two stay
  // in their own bucket, everything above spills into the next.
  int exp = 0;
  const double frac = std::frexp(v, &exp);  // v = frac * 2^exp, frac in [0.5, 1)
  int bucket = exp - 1 + kBias;             // frac == 0.5 exactly -> 2^(exp-1)
  if (frac > 0.5) ++bucket;
  return std::clamp(bucket, 0, kNumBuckets - 1);
}

void Histogram::Observe(double v) noexcept {
#if HPCFAIL_OBS_ENABLED
  buckets_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
#else
  (void)v;
#endif
}

long long Histogram::count() const noexcept {
#if HPCFAIL_OBS_ENABLED
  return count_.load(std::memory_order_relaxed);
#else
  return 0;
#endif
}

double Histogram::sum() const noexcept {
#if HPCFAIL_OBS_ENABLED
  return sum_.load(std::memory_order_relaxed);
#else
  return 0.0;
#endif
}

long long Histogram::BucketCount(int i) const noexcept {
#if HPCFAIL_OBS_ENABLED
  if (i < 0 || i >= kNumBuckets) return 0;
  return buckets_[i].load(std::memory_order_relaxed);
#else
  (void)i;
  return 0;
#endif
}

#if HPCFAIL_OBS_ENABLED
void Histogram::Reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}
#endif

const MetricsSnapshot::CounterValue* MetricsSnapshot::FindCounter(
    std::string_view name) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const MetricsSnapshot::GaugeValue* MetricsSnapshot::FindGauge(
    std::string_view name) const {
  for (const GaugeValue& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const MetricsSnapshot::HistogramValue* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const HistogramValue& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instrumented call sites cache references that may be
  // touched by pool workers during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::GetEntry(std::string_view name,
                                                  std::string_view help,
                                                  Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = kind;
    e.help = std::string(help);
    switch (kind) {
      case Kind::kCounter:
        e.counter.reset(new Counter());
        break;
      case Kind::kGauge:
        e.gauge.reset(new Gauge());
        break;
      case Kind::kHistogram:
        e.histogram.reset(new Histogram());
        break;
    }
    it = entries_.emplace(std::string(name), std::move(e)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered with a different type");
  }
  return it->second;
}

Counter& MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  return *GetEntry(name, help, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view help) {
  return *GetEntry(name, help, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help) {
  return *GetEntry(name, help, Kind::kHistogram).histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        out.counters.push_back({name, entry.help, entry.counter->Value()});
        break;
      case Kind::kGauge:
        out.gauges.push_back({name, entry.help, entry.gauge->Value()});
        break;
      case Kind::kHistogram: {
        MetricsSnapshot::HistogramValue h;
        h.name = name;
        h.help = entry.help;
        h.count = entry.histogram->count();
        h.sum = entry.histogram->sum();
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          const long long n = entry.histogram->BucketCount(i);
          if (n > 0) h.buckets.emplace_back(Histogram::BucketUpperBound(i), n);
        }
        out.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  return out;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->Reset();
        break;
      case Kind::kGauge:
        entry.gauge->Reset();
        break;
      case Kind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

}  // namespace hpcfail::obs
