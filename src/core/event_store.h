// Per-system failure storage with binary-searched window queries, shared by
// the batch EventIndex and the streaming IncrementalEventIndex. Both engines
// answer window queries through this one implementation, so streaming results
// can be bit-identical to batch results by construction.
//
// A store holds one system's failures in (start, node) order together with
// per-node / per-rack ref lists. Records may only be appended in
// non-decreasing time order (Append checks); the batch index appends a
// pre-sorted trace, the stream index appends events as the watermark releases
// them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/event_filter.h"
#include "trace/system.h"

namespace hpcfail::core {

// A compact reference to a failure record inside one system's stream.
struct EventRef {
  TimeSec time = 0;
  NodeId node;
  std::uint32_t record = 0;  // index into SystemEventStore::failures
};

struct SystemEventStore {
  SystemId id;
  const SystemConfig* config = nullptr;
  std::vector<FailureRecord> failures;         // time-sorted
  std::vector<std::vector<EventRef>> by_node;  // index == node id
  std::vector<std::vector<EventRef>> by_rack;  // index == rack id
  std::vector<EventRef> all;                   // time-sorted
  std::vector<RackId> rack_of;                 // index == node id
  std::vector<int> rack_size;                  // index == rack id

  // Sizes the node/rack maps from `config` (which must outlive the store)
  // and clears any stored events.
  void Init(const SystemConfig& system_config);

  // Appends one record (start must be >= the last appended start; throws
  // std::invalid_argument otherwise — both callers feed time-sorted data).
  void Append(const FailureRecord& f);

  // Rebuilds by_node / by_rack / all from `failures` (used after restoring
  // the failure list from a snapshot).
  void RebuildRefs();

  // ---- Window queries. Window semantics are half-open (begin, end].
  bool AnyAtNode(NodeId node, TimeInterval window,
                 const EventFilter& filter) const;
  int CountAtNode(NodeId node, TimeInterval window,
                  const EventFilter& filter) const;
  // False when the system has no layout.
  bool AnyAtRackPeers(NodeId node, TimeInterval window,
                      const EventFilter& filter) const;
  bool AnyAtSystemPeers(NodeId node, TimeInterval window,
                        const EventFilter& filter) const;
  // Distinct peer nodes with >= 1 matching failure in the window; the total
  // number of peers is returned via `num_peers`. Rack version returns 0/0
  // when the node has no recorded rack.
  int DistinctRackPeersWithEvent(NodeId node, TimeInterval window,
                                 const EventFilter& filter,
                                 int* num_peers) const;
  int DistinctSystemPeersWithEvent(NodeId node, TimeInterval window,
                                   const EventFilter& filter,
                                   int* num_peers) const;
};

// An immutable bundle of per-system stores built once per trace and shared
// (via shared_ptr) by every EventIndex view onto it. Building is one linear
// pass over the trace's time-sorted failure stream — O(F + N) instead of the
// O(S * F) per-system rescans a store-per-index design pays — and is the
// unit the engine-layer artifact cache snapshots.
struct EventStoreSet {
  std::vector<SystemEventStore> stores;  // trace system order (or subset)

  // nullptr when `sys` has no store in the set.
  const SystemEventStore* Find(SystemId sys) const;

  // Builds stores for `systems` (all systems of the trace when empty) in a
  // single pass over trace.failures(). The trace must stay alive and
  // unmodified while the set (or any index sharing it) is in use: stores
  // keep pointers into its system configs.
  static EventStoreSet Build(const Trace& trace,
                             std::span<const SystemId> systems = {});
};

}  // namespace hpcfail::core
