// Per-system failure storage with binary-searched window queries, shared by
// the batch EventIndex and the streaming IncrementalEventIndex. Both engines
// answer window queries through this one implementation, so streaming results
// can be bit-identical to batch results by construction.
//
// Layout: struct-of-arrays. The window-query hot path only ever touches
// (start, node, category, subcategory), so those live in parallel columns —
// one global set per store (record id == column index, time-sorted) plus
// per-node and per-rack column bundles for the scoped queries. The query
// kernels are branch-light loops over the byte-wide category/subcategory
// columns that the compiler can vectorize; nothing on the query path chases
// a pointer into a 48-byte record anymore. Full FailureRecords are
// materialized on demand (Record / records()) for the analyses that want
// whole events; they are exact reconstructions because Append only accepts
// consistent records (see FailureRecord::consistent()).
//
// A store holds one system's failures in (start, node) order. Records may
// only be appended in non-decreasing time order (Append checks); the batch
// index appends a pre-sorted trace, the stream index appends events as the
// watermark releases them.
#pragma once

#include <cstdint>
#include <iterator>
#include <limits>
#include <span>
#include <vector>

#include "core/event_filter.h"
#include "core/simd.h"
#include "trace/system.h"

namespace hpcfail::core {

// An EventFilter compiled against the packed (category, subcategory) columns:
// one byte equality per column instead of optional<enum> comparisons. Only
// valid over consistent records (subcategory presence agrees with category),
// which Append guarantees for everything a store holds.
struct CompiledFilter {
  std::uint8_t cat = 0;   // FailureCategory value; 0xFF = matches nothing
  std::uint8_t sub = 0;   // 0 = any subcategory, else 1 + enum value
  bool check_cat = false;

  static CompiledFilter From(const EventFilter& f);

  // True when every consistent record matches (EventFilter::Any()).
  bool MatchesEverything() const { return !check_cat && sub == 0; }
  // True when no record can match (contradictory filter, e.g. a hardware
  // subcategory combined with a software category).
  bool MatchesNothing() const { return check_cat && cat == 0xFF; }

  bool Matches(std::uint8_t record_cat, std::uint8_t record_sub) const {
    return (!check_cat || record_cat == cat) &&
           (sub == 0 || record_sub == sub);
  }

  // The same filter in the SIMD kernels' vocabulary. Callers dispose of
  // MatchesNothing() before building one (a ByteFilter has no "matches
  // nothing" mode). A sub != 0 filter always carries check_cat, so the two
  // remaining modes map onto kCat / kCatSub.
  simd::ByteFilter Byte() const {
    simd::ByteFilter b;
    if (sub != 0) {
      b.mode = simd::ByteFilter::kCatSub;
      b.cat = cat;
      b.sub = sub;
    } else if (check_cat) {
      b.mode = simd::ByteFilter::kCat;
      b.cat = cat;
    }
    return b;
  }
};

// Packs a record's subcategory the way the columns store it: 0 = none, else
// 1 + enum value. Only meaningful for consistent() records, where at most
// one subcategory is set and its enum value fits a byte — the packing every
// store column and CompiledFilter::Matches assumes. Shared by the store
// append paths and by streaming operators that compile filters once and
// match released records against the packed bytes.
inline std::uint8_t PackSubcategory(const FailureRecord& f) {
  if (f.hardware) return 1 + static_cast<std::uint8_t>(*f.hardware);
  if (f.software) return 1 + static_cast<std::uint8_t>(*f.software);
  if (f.environment) return 1 + static_cast<std::uint8_t>(*f.environment);
  return 0;
}

struct SystemEventStore;

// Random-access view over a store's records, materializing each
// FailureRecord from the columns on demand. Iterators return records by
// value; `for (const FailureRecord& f : span)` binds each to the loop-scope
// temporary exactly like iterating a vector of records did.
class RecordSpan {
 public:
  class iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = FailureRecord;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = FailureRecord;

    iterator() = default;
    iterator(const SystemEventStore* store, std::size_t i)
        : store_(store), i_(i) {}

    FailureRecord operator*() const;
    FailureRecord operator[](difference_type n) const { return *(*this + n); }

    iterator& operator++() { ++i_; return *this; }
    iterator operator++(int) { iterator t = *this; ++i_; return t; }
    iterator& operator--() { --i_; return *this; }
    iterator operator--(int) { iterator t = *this; --i_; return t; }
    iterator& operator+=(difference_type n) {
      i_ = static_cast<std::size_t>(static_cast<difference_type>(i_) + n);
      return *this;
    }
    iterator& operator-=(difference_type n) { return *this += -n; }
    friend iterator operator+(iterator it, difference_type n) {
      return it += n;
    }
    friend iterator operator+(difference_type n, iterator it) {
      return it += n;
    }
    friend iterator operator-(iterator it, difference_type n) {
      return it -= n;
    }
    friend difference_type operator-(const iterator& a, const iterator& b) {
      return static_cast<difference_type>(a.i_) -
             static_cast<difference_type>(b.i_);
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.i_ == b.i_ && a.store_ == b.store_;
    }
    friend auto operator<=>(const iterator& a, const iterator& b) {
      return a.i_ <=> b.i_;
    }

   private:
    const SystemEventStore* store_ = nullptr;
    std::size_t i_ = 0;
  };

  RecordSpan() = default;
  explicit RecordSpan(const SystemEventStore* store) : store_(store) {}

  std::size_t size() const;
  bool empty() const { return size() == 0; }
  FailureRecord operator[](std::size_t i) const;
  FailureRecord front() const { return (*this)[0]; }
  FailureRecord back() const { return (*this)[size() - 1]; }
  iterator begin() const { return iterator(store_, 0); }
  iterator end() const { return iterator(store_, size()); }

  // Identity of the backing store; two spans over the same store share the
  // same column build (used by the subset-view sharing assertions).
  const SystemEventStore* store() const { return store_; }

 private:
  const SystemEventStore* store_ = nullptr;
};

// Column-format staging buffer for block-validated appends: callers pack
// records into it, then hand the whole block to
// SystemEventStore::AppendBlock, which runs the vectorized ValidateBlock
// kernel once over the columns instead of calling FailureRecord::
// consistent() per record. Records whose optional-field structure cannot be
// packed losslessly (two subcategories set, or a subcategory under the
// wrong category) are staged with the simd::kInvalidPackedSub sentinel so
// the block check stays exactly as strict as consistent().
struct RecordBlock {
  std::vector<TimeSec> starts;
  std::vector<TimeSec> ends;
  std::vector<std::int32_t> nodes;
  std::vector<std::uint8_t> cats;
  std::vector<std::uint8_t> subs;

  std::size_t size() const { return starts.size(); }
  bool empty() const { return starts.empty(); }
  void clear();
  void reserve(std::size_t n);

  // Packs one record's columns. The system id is NOT staged: the caller
  // routes blocks to the right store (AppendBlock documents the contract).
  void PushBack(const FailureRecord& f);
};

struct SystemEventStore {
  // Parallel columns over one scope's events (a node's list or a rack's
  // list), kept in append (time) order. `nodes` stays empty in the per-node
  // bundles — there the node is the list index.
  struct EventColumns {
    std::vector<TimeSec> times;
    std::vector<std::int32_t> nodes;
    std::vector<std::uint8_t> cats;
    std::vector<std::uint8_t> subs;  // 0 = none, else 1 + enum value
  };

  SystemId id;
  const SystemConfig* config = nullptr;

  // ---- Global columns: record id == index, sorted by (start, node).
  std::vector<TimeSec> starts;
  std::vector<TimeSec> ends;
  std::vector<std::int32_t> nodes;
  std::vector<std::uint8_t> cats;
  std::vector<std::uint8_t> subs;  // 0 = none, else 1 + enum value

  std::vector<EventColumns> by_node;  // index == node id
  std::vector<EventColumns> by_rack;  // index == rack id
  std::vector<RackId> rack_of;        // index == node id
  std::vector<int> rack_size;         // index == rack id

  std::size_t size() const { return starts.size(); }

  // Reconstructs record `i` exactly (Append only accepts consistent
  // records, so the packed subcategory round-trips losslessly).
  FailureRecord Record(std::size_t i) const;

  // View over all records, time-sorted.
  RecordSpan records() const { return RecordSpan(this); }

  // Sizes the node/rack maps from `config` (which must outlive the store)
  // and clears any stored events.
  void Init(const SystemConfig& system_config);

  // Pre-sizes the global columns for `n` records.
  void Reserve(std::size_t n);

  // Appends one record and updates every column bundle. Throws
  // std::invalid_argument unless the record belongs to this system, names a
  // valid node, is consistent() and arrives with start >= the last appended
  // start — both callers feed validated, time-sorted data.
  void Append(const FailureRecord& f);

  // Appends one already-validated record without re-running consistent():
  // the streaming ingest path validates at admission (Classify) and must
  // not pay for validation twice per record. Debug builds assert the
  // Append preconditions; release builds trust the caller.
  void AppendTrusted(const FailureRecord& f);

  // Appends every row of `other` after this store's rows. `other` must be a
  // store of the same system built from the same config (same node/rack
  // shape) whose first start is >= this store's last start — the shard
  // stores SessionSet concatenates satisfy this by construction, so the
  // order check is O(1), not a rescan. The result is column-for-column what
  // a single store fed both row sequences in order would hold.
  void AppendStore(const SystemEventStore& other);

  // Deterministic footprint estimate (element sizes * element counts over
  // every column bundle) used by the SessionSet memory budget. Counts
  // logical sizes, not capacities, so the same events always report the
  // same bytes.
  std::size_t ApproxBytes() const;

  // Appends a staged block after one vectorized validation pass over its
  // columns (node range, end >= start, category/subcategory pairing — the
  // same invariants Append enforces per record) plus the time-order check.
  // Throws std::invalid_argument naming the first offending row index.
  // The caller guarantees every staged record belongs to this system;
  // RecordBlock does not carry a system column.
  void AppendBlock(const RecordBlock& block);

  // Proves a store whose columns were filled by an external restore path
  // (the engine's index-snapshot cache) holds exactly what Append-ing the
  // same rows would have built: global columns equal-length, every row
  // valid under the block kernel and (start, node)-sorted, and the
  // per-node / per-rack bundles exactly the row-order partition of the
  // global columns (checked by a cursor walk, so a snapshot can add, drop,
  // reorder or relabel nothing). Init(config) must have run first. Throws
  // std::invalid_argument on the first violation; a store that passes is
  // indistinguishable from a freshly built one.
  void ValidateRestored() const;

  // Bit i set iff some stored record has category i (category_mask kernel).
  // Analyses iterating all six categories use it to skip absent ones.
  std::uint32_t CategoriesPresent() const;

  // Visits the index of every record matching `filter`, in time order — the
  // columnar scan behind the analyzer trigger loops. Callers read the
  // columns (starts/nodes/...) directly at the visited indexes. Sparse
  // filters ride the find_next_match kernel: the vector compare skips
  // non-matching stretches a whole register at a time.
  template <typename Fn>
  void ForEachMatching(const EventFilter& filter, Fn&& fn) const {
    const CompiledFilter cf = CompiledFilter::From(filter);
    if (cf.MatchesNothing()) return;
    const std::size_t n = size();
    if (cf.MatchesEverything()) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    const simd::KernelTable& k = simd::Active();
    for (std::size_t i =
             k.find_next_match(cats.data(), subs.data(), n, 0, cf.cat, cf.sub);
         i < n; i = k.find_next_match(cats.data(), subs.data(), n, i + 1,
                                      cf.cat, cf.sub)) {
      fn(i);
    }
  }

  // Total records matching the filter (full-column scan).
  long long CountMatching(const EventFilter& filter) const;

  // Per-node counts of records matching the filter (index == node id).
  std::vector<int> NodeCounts(const EventFilter& filter) const;

  // ---- Window queries. Window semantics are half-open (begin, end].
  bool AnyAtNode(NodeId node, TimeInterval window,
                 const EventFilter& filter) const;
  int CountAtNode(NodeId node, TimeInterval window,
                  const EventFilter& filter) const;
  // False when the system has no layout.
  bool AnyAtRackPeers(NodeId node, TimeInterval window,
                      const EventFilter& filter) const;
  bool AnyAtSystemPeers(NodeId node, TimeInterval window,
                        const EventFilter& filter) const;
  // Distinct peer nodes with >= 1 matching failure in the window; the total
  // number of peers is returned via `num_peers`. Rack version returns 0/0
  // when the node has no recorded rack.
  int DistinctRackPeersWithEvent(NodeId node, TimeInterval window,
                                 const EventFilter& filter,
                                 int* num_peers) const;
  int DistinctSystemPeersWithEvent(NodeId node, TimeInterval window,
                                   const EventFilter& filter,
                                   int* num_peers) const;
};

inline FailureRecord RecordSpan::operator[](std::size_t i) const {
  return store_->Record(i);
}
inline std::size_t RecordSpan::size() const {
  return store_ == nullptr ? 0 : store_->size();
}
inline FailureRecord RecordSpan::iterator::operator*() const {
  return store_->Record(i_);
}

// The unbounded start-time range: Build filtered by it keeps every record.
inline constexpr TimeInterval kAllStartTimes{
    std::numeric_limits<TimeSec>::min(), std::numeric_limits<TimeSec>::max()};

// An immutable bundle of per-system stores built once per trace and shared
// (via shared_ptr) by every EventIndex view onto it. Building is one linear
// pass over the trace's time-sorted failure stream — O(F + N) instead of the
// O(S * F) per-system rescans a store-per-index design pays — and is the
// unit the engine-layer artifact cache snapshots.
struct EventStoreSet {
  std::vector<SystemEventStore> stores;  // trace system order (or subset)

  // nullptr when `sys` has no store in the set.
  const SystemEventStore* Find(SystemId sys) const;

  // Builds stores for `systems` (all systems of the trace when empty) in a
  // single pass over trace.failures(). Invalid (negative) system ids in
  // `systems` are skipped, matching how records with out-of-range system
  // ids are skipped. The trace must stay alive and unmodified while the set
  // (or any index sharing it) is in use: stores keep pointers into its
  // system configs.
  static EventStoreSet Build(const Trace& trace,
                             std::span<const SystemId> systems = {});

  // Same, restricted to records whose START falls in the half-open range
  // [start_range.begin, start_range.end). Because trace.failures() is
  // start-sorted, the pass binary-searches to the range instead of scanning
  // the whole stream — the SessionSet shard-build hot path. Build(trace,
  // systems, kAllStartTimes) is exactly Build(trace, systems).
  static EventStoreSet Build(const Trace& trace,
                             std::span<const SystemId> systems,
                             TimeInterval start_range);

  // Stitches the per-system stores of `parts` (in the given order) into one
  // set over `systems` (invalid ids skipped, like Build). Parts that lack a
  // system contribute nothing to it. When the parts partition a trace's
  // failures by start-time range — every record in exactly one part, ranges
  // in ascending order — the result is column-for-column identical to
  // Build(trace, systems) over the whole trace: the merge that makes a
  // sharded SessionSet's merged view bit-identical to a monolithic session.
  static EventStoreSet Concatenate(
      const Trace& trace, std::span<const SystemId> systems,
      std::span<const EventStoreSet* const> parts);

  // Sum of the member stores' ApproxBytes().
  std::size_t ApproxBytes() const;
};

}  // namespace hpcfail::core
