#include "core/power_analysis.h"

namespace hpcfail::core {

std::string_view ToString(PowerProblem p) {
  switch (p) {
    case PowerProblem::kPowerOutage: return "power_outage";
    case PowerProblem::kPowerSpike: return "power_spike";
    case PowerProblem::kPowerSupplyFailure: return "power_supply_failure";
    case PowerProblem::kUpsFailure: return "ups_failure";
  }
  return "invalid";
}

EventFilter PowerProblemFilter(PowerProblem p) {
  switch (p) {
    case PowerProblem::kPowerOutage:
      return EventFilter::Of(EnvironmentEvent::kPowerOutage);
    case PowerProblem::kPowerSpike:
      return EventFilter::Of(EnvironmentEvent::kPowerSpike);
    case PowerProblem::kPowerSupplyFailure:
      return EventFilter::Of(HardwareComponent::kPowerSupply);
    case PowerProblem::kUpsFailure:
      return EventFilter::Of(EnvironmentEvent::kUps);
  }
  return EventFilter::Any();
}

EnvironmentBreakdown BreakdownEnvironment(const EventIndex& index) {
  EnvironmentBreakdown out;
  std::array<long long, kNumEnvironmentEvents> counts{};
  index.ForEach(EventFilter::Of(FailureCategory::kEnvironment),
                [&counts](SystemId, const FailureRecord& f) {
                  if (f.environment) {
                    ++counts[static_cast<std::size_t>(*f.environment)];
                  }
                });
  for (long long c : counts) out.total += c;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    out.percent[i] = out.total > 0 ? 100.0 * static_cast<double>(counts[i]) /
                                         static_cast<double>(out.total)
                                   : 0.0;
  }
  return out;
}

std::vector<PowerImpactRow> PowerImpactOn(const WindowAnalyzer& analyzer,
                                          const EventFilter& target) {
  std::vector<PowerImpactRow> out;
  for (PowerProblem p : AllPowerProblems()) {
    PowerImpactRow row;
    row.problem = p;
    const EventFilter trigger = PowerProblemFilter(p);
    row.day = analyzer.Compare(trigger, target, Scope::kSameNode, kDay);
    row.week = analyzer.Compare(trigger, target, Scope::kSameNode, kWeek);
    row.month = analyzer.Compare(trigger, target, Scope::kSameNode, kMonth);
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<ComponentImpact> HardwareComponentImpact(
    const WindowAnalyzer& analyzer, const EventFilter& trigger,
    TimeSec window) {
  std::vector<ComponentImpact> out;
  for (HardwareComponent c : AllHardwareComponents()) {
    ComponentImpact ci;
    ci.component = std::string(ToString(c));
    ci.month = analyzer.Compare(trigger, EventFilter::Of(c), Scope::kSameNode,
                                window);
    out.push_back(std::move(ci));
  }
  return out;
}

std::vector<ComponentImpact> SoftwareComponentImpact(
    const WindowAnalyzer& analyzer, const EventFilter& trigger,
    TimeSec window) {
  std::vector<ComponentImpact> out;
  for (SoftwareComponent c : AllSoftwareComponents()) {
    ComponentImpact ci;
    ci.component = std::string(ToString(c));
    ci.month = analyzer.Compare(trigger, EventFilter::Of(c), Scope::kSameNode,
                                window);
    out.push_back(std::move(ci));
  }
  return out;
}

std::vector<PowerImpactRow> MaintenanceImpact(const WindowAnalyzer& analyzer) {
  std::vector<PowerImpactRow> out;
  for (PowerProblem p : AllPowerProblems()) {
    PowerImpactRow row;
    row.problem = p;
    const EventFilter trigger = PowerProblemFilter(p);
    row.day = analyzer.MaintenanceAfter(trigger, kDay);
    row.week = analyzer.MaintenanceAfter(trigger, kWeek);
    row.month = analyzer.MaintenanceAfter(trigger, kMonth);
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<SpaceTimePoint> PowerSpaceTime(const EventIndex& index,
                                           SystemId system) {
  std::vector<SpaceTimePoint> out;
  for (const FailureRecord& f : index.failures_of(system)) {
    if (f.environment == EnvironmentEvent::kPowerOutage) {
      out.push_back({f.node, f.start, PowerProblem::kPowerOutage});
    } else if (f.environment == EnvironmentEvent::kPowerSpike) {
      out.push_back({f.node, f.start, PowerProblem::kPowerSpike});
    } else if (f.environment == EnvironmentEvent::kUps) {
      out.push_back({f.node, f.start, PowerProblem::kUpsFailure});
    } else if (f.hardware == HardwareComponent::kPowerSupply) {
      out.push_back({f.node, f.start, PowerProblem::kPowerSupplyFailure});
    }
  }
  return out;
}

}  // namespace hpcfail::core
