#include "core/location_analysis.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace hpcfail::core {
namespace {

struct Accumulator {
  std::map<int, LocationBucket> buckets;

  void Add(int key, int node_delta, long long failure_delta) {
    LocationBucket& b = buckets[key];
    b.key = key;
    b.nodes += node_delta;
    b.failures += failure_delta;
  }

  std::vector<LocationBucket> Finish() const {
    std::vector<LocationBucket> out;
    for (const auto& [key, bucket] : buckets) {
      LocationBucket b = bucket;
      b.failures_per_node =
          b.nodes > 0 ? static_cast<double>(b.failures) / b.nodes : 0.0;
      out.push_back(b);
    }
    return out;
  }

  stats::ChiSquareResult Test() const {
    std::vector<double> counts, exposures;
    for (const auto& [key, b] : buckets) {
      counts.push_back(static_cast<double>(b.failures));
      exposures.push_back(static_cast<double>(b.nodes));
    }
    if (counts.size() < 2) {
      // A single bucket (e.g. all racks in one room row) carries no
      // location signal; report the null result rather than failing.
      return stats::ChiSquareResult{};
    }
    return stats::ChiSquareEqualRates(counts, exposures);
  }
};

}  // namespace

LocationAnalysis AnalyzeLocation(const EventIndex& index, SystemId system) {
  const SystemConfig& config = index.trace().system(system);
  if (config.layout.empty()) {
    throw std::invalid_argument("AnalyzeLocation: system has no layout");
  }
  const std::vector<int> failures =
      index.NodeCounts(system, EventFilter::Any());
  const auto top = static_cast<std::size_t>(std::distance(
      failures.begin(), std::max_element(failures.begin(), failures.end())));

  LocationAnalysis out;
  out.system = system;
  Accumulator pos, row, col, pos_x, row_x, col_x;
  for (const NodePlacement& p : config.layout.placements()) {
    const auto n = static_cast<std::size_t>(p.node.value);
    const long long f = failures[n];
    pos.Add(p.position_in_rack, 1, f);
    row.Add(p.room_row, 1, f);
    col.Add(p.room_col, 1, f);
    if (n != top) {
      pos_x.Add(p.position_in_rack, 1, f);
      row_x.Add(p.room_row, 1, f);
      col_x.Add(p.room_col, 1, f);
    }
  }
  out.by_position_in_rack = pos.Finish();
  out.by_room_row = row.Finish();
  out.by_room_col = col.Finish();
  out.position_test = pos.Test();
  out.row_test = row.Test();
  out.col_test = col.Test();
  out.position_test_excl_top = pos_x.Test();
  out.row_test_excl_top = row_x.Test();
  out.col_test_excl_top = col_x.Test();
  return out;
}

}  // namespace hpcfail::core
