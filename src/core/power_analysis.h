// Section VII: the impact of power problems. Environmental-failure breakdown
// (Fig. 9), power-event impact on hardware / software / maintenance
// (Figs. 10, 11, Section VII.A.2) and the space-time layout of power events
// (Fig. 12).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/window_analysis.h"

namespace hpcfail::core {

// The paper's four power problems plus the node-local power supply unit.
enum class PowerProblem : std::uint8_t {
  kPowerOutage = 0,
  kPowerSpike,
  kPowerSupplyFailure,  // hardware subcategory, "recorded as hardware"
  kUpsFailure,
};
inline constexpr int kNumPowerProblems = 4;
std::string_view ToString(PowerProblem p);
EventFilter PowerProblemFilter(PowerProblem p);

constexpr std::array<PowerProblem, kNumPowerProblems> AllPowerProblems() {
  return {PowerProblem::kPowerOutage, PowerProblem::kPowerSpike,
          PowerProblem::kPowerSupplyFailure, PowerProblem::kUpsFailure};
}

// Fig. 9: share of environmental failures per subcategory, in percent.
struct EnvironmentBreakdown {
  std::array<double, kNumEnvironmentEvents> percent{};
  long long total = 0;
};
EnvironmentBreakdown BreakdownEnvironment(const EventIndex& index);

// One row of Fig. 10 (left) / Fig. 11 (left): the probability of a target
// failure within day/week/month of each power problem vs a random window.
struct PowerImpactRow {
  PowerProblem problem;
  ConditionalResult day;
  ConditionalResult week;
  ConditionalResult month;
};
std::vector<PowerImpactRow> PowerImpactOn(const WindowAnalyzer& analyzer,
                                          const EventFilter& target);

// Fig. 10 (right) / Fig. 11 (right) / Fig. 13 (right): per-subcomponent
// month-window probabilities after one trigger.
struct ComponentImpact {
  std::string component;
  ConditionalResult month;
};
std::vector<ComponentImpact> HardwareComponentImpact(
    const WindowAnalyzer& analyzer, const EventFilter& trigger,
    TimeSec window = kMonth);
std::vector<ComponentImpact> SoftwareComponentImpact(
    const WindowAnalyzer& analyzer, const EventFilter& trigger,
    TimeSec window = kMonth);

// Section VII.A.2: unscheduled maintenance within a month of each power
// problem vs a random month.
std::vector<PowerImpactRow> MaintenanceImpact(const WindowAnalyzer& analyzer);

// Fig. 12: the space-time scatter of power-related failures in one system.
struct SpaceTimePoint {
  NodeId node;
  TimeSec time = 0;
  PowerProblem problem;
};
std::vector<SpaceTimePoint> PowerSpaceTime(const EventIndex& index,
                                           SystemId system);

}  // namespace hpcfail::core
