// Export of analysis results as plain CSV series, for plotting with
// gnuplot/matplotlib/R. Each exporter writes one tidy table (header + rows)
// matching one paper figure's data, so the figures can be re-drawn rather
// than only re-printed.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/cosmic_analysis.h"
#include "core/node_skew.h"
#include "core/power_analysis.h"
#include "core/window_analysis.h"

namespace hpcfail::core {

// Fig 1(a)/2(a)/3-style series: one row per trigger category with the
// conditional probability, CI, baseline and factor at the given scope and
// window.
void ExportTriggerSeries(std::ostream& os, const WindowAnalyzer& analyzer,
                         Scope scope, TimeSec window);

// Fig 1(b)/2(b)-style series: one row per category with same-type,
// after-any and baseline probabilities.
void ExportPairwiseSeries(std::ostream& os, const WindowAnalyzer& analyzer,
                          Scope scope, TimeSec window);

// Fig 4 series: failures per node id.
void ExportNodeCounts(std::ostream& os, const EventIndex& index,
                      SystemId system);

// Fig 10/11/13 (right)-style series: per-subcomponent month probabilities
// after one trigger.
void ExportComponentImpact(std::ostream& os,
                           const std::vector<ComponentImpact>& impacts,
                           const std::string& trigger_label);

// Fig 12 series: node, time (days), problem kind.
void ExportSpaceTime(std::ostream& os,
                     const std::vector<SpaceTimePoint>& points);

// Fig 14 series: month, flux, probability — one block per series name.
void ExportFluxSeries(std::ostream& os,
                      const std::vector<MonthlyFluxPoint>& series,
                      const std::string& name);

// Convenience: write any exporter's output to a file; creates parent
// directories. Throws std::runtime_error when the file cannot be opened.
void WriteFile(const std::string& path, const std::string& contents);

}  // namespace hpcfail::core
