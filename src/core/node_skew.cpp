#include "core/node_skew.h"

#include <algorithm>
#include <numeric>

namespace hpcfail::core {

NodeSkewSummary AnalyzeNodeSkew(const EventIndex& index, SystemId system) {
  NodeSkewSummary out;
  out.system = system;
  out.failures_per_node = index.NodeCounts(system, EventFilter::Any());
  const auto n = out.failures_per_node.size();
  if (n == 0) return out;
  long long total = std::accumulate(out.failures_per_node.begin(),
                                    out.failures_per_node.end(), 0LL);
  out.mean_failures = static_cast<double>(total) / static_cast<double>(n);
  const auto max_it = std::max_element(out.failures_per_node.begin(),
                                       out.failures_per_node.end());
  out.max_failures = *max_it;
  out.most_failing_node = NodeId{
      static_cast<int>(std::distance(out.failures_per_node.begin(), max_it))};
  out.max_over_mean = out.mean_failures > 0.0
                          ? out.max_failures / out.mean_failures
                          : 0.0;

  if (total == 0) {
    // A failure-free system trivially satisfies equal rates; the default
    // ChiSquareResult (p = 1) says exactly that.
    return out;
  }
  std::vector<double> counts(out.failures_per_node.begin(),
                             out.failures_per_node.end());
  out.equal_rates_test = stats::ChiSquareEqualRates(counts);
  if (counts.size() > 2) {
    std::vector<double> without_top = counts;
    without_top.erase(without_top.begin() + out.most_failing_node.value);
    double rest = 0.0;
    for (double c : without_top) rest += c;
    if (rest > 0.0) {
      out.equal_rates_test_excl_top = stats::ChiSquareEqualRates(without_top);
    }
  }
  return out;
}

BreakdownComparison CompareBreakdown(const EventIndex& index, SystemId system,
                                     NodeId node) {
  BreakdownComparison out;
  out.node = node;
  std::array<long long, kNumFailureCategories> node_counts{};
  std::array<long long, kNumFailureCategories> rest_counts{};
  for (const FailureRecord& f : index.failures_of(system)) {
    auto& counts = f.node == node ? node_counts : rest_counts;
    ++counts[static_cast<std::size_t>(f.category)];
  }
  const auto to_percent = [](const auto& counts, auto& percent) {
    long long total = 0;
    for (long long c : counts) total += c;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      percent[i] = total > 0
                       ? 100.0 * static_cast<double>(counts[i]) /
                             static_cast<double>(total)
                       : 0.0;
    }
  };
  to_percent(node_counts, out.node_percent);
  to_percent(rest_counts, out.rest_percent);
  return out;
}

ProneNodeProbability CompareProneNode(const EventIndex& index, SystemId system,
                                      NodeId node, const EventFilter& type,
                                      TimeSec window) {
  ProneNodeProbability out;
  out.window = window;
  WindowAnalyzer analyzer(index);
  out.prone = analyzer.BaselineProbability(
      type, window,
      [system, node](SystemId s, NodeId n) { return s == system && n == node; });
  out.rest = analyzer.BaselineProbability(
      type, window,
      [system, node](SystemId s, NodeId n) { return s == system && n != node; });
  out.factor = stats::FactorIncrease(out.prone, out.rest);
  // Chi-square on the two event counts with node-lifetime exposures.
  const SystemConfig& config = index.trace().system(system);
  const double node_exposure = 1.0;
  const double rest_exposure = static_cast<double>(config.num_nodes - 1);
  long long node_events = 0, rest_events = 0;
  for (const FailureRecord& f : index.failures_of(system)) {
    if (!type.Matches(f)) continue;
    if (f.node == node) {
      ++node_events;
    } else {
      ++rest_events;
    }
  }
  if (node_events + rest_events > 0) {
    const std::array<double, 2> counts = {static_cast<double>(node_events),
                                          static_cast<double>(rest_events)};
    const std::array<double, 2> exposures = {node_exposure, rest_exposure};
    out.per_type_equal_rate = stats::ChiSquareEqualRates(counts, exposures);
  }
  return out;
}

}  // namespace hpcfail::core
