// Inter-arrival-time analysis: the classical "statistical model" view of
// failure data that the paper's related work builds (Section I cites work
// modeling the empirical distribution of inter-arrival times and its
// autocorrelation). Provided both as a baseline to contrast with the
// conditional-probability view and as a useful library feature: a Weibull
// shape well below 1 and positive autocorrelation of daily counts are the
// distribution-level signatures of the same correlations Figs. 1-3 measure
// directly.
#pragma once

#include <vector>

#include "core/event_index.h"
#include "stats/distribution_fit.h"

namespace hpcfail::core {

struct InterarrivalAnalysis {
  SystemId system;
  // Gaps between consecutive failures anywhere in the system, in hours.
  std::vector<double> system_gaps_hours;
  // Gaps between consecutive failures of the same node, pooled, in hours.
  std::vector<double> node_gaps_hours;
  // Fits sorted by AIC (best first) for the system-level gaps.
  std::vector<stats::DistributionFit> system_fits;
  // Weibull fits specifically (shape < 1 == decreasing hazard == clustering).
  stats::DistributionFit system_weibull;
  stats::DistributionFit node_weibull;
  // Autocorrelation of daily failure counts at lags 0..max_lag.
  std::vector<double> daily_count_acf;
};

// `filter` restricts the event stream (e.g. only hardware failures);
// `max_lag` bounds the autocorrelation computation. Throws when the system
// has fewer than 5 failures.
InterarrivalAnalysis AnalyzeInterarrivals(
    const EventIndex& index, SystemId system,
    const EventFilter& filter = EventFilter::Any(), int max_lag = 14);

}  // namespace hpcfail::core
