// Report rendering shared by the benches and examples: fixed-width ASCII
// tables, probability formatting with confidence intervals and factor
// annotations, and paper-vs-measured comparison rows.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/window_analysis.h"

namespace hpcfail::core {

// Minimal fixed-width table builder.
class Table {
 public:
  explicit Table(std::vector<std::string> header);
  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// "7.20%" / "7.20% [6.9,7.5]"
std::string FormatPercent(const stats::Proportion& p, bool with_ci = false);
// "14.3x" or "n/a" when undefined.
std::string FormatFactor(double factor);
// Significance marker from the two-sample test: "**" (99%), "*" (95%), "".
std::string SignificanceMarker(const stats::TwoProportionTest& test);
// One formatted comparison: "7.20% (14.3x) **".
std::string FormatConditional(const ConditionalResult& r);
// Fixed precision float.
std::string FormatDouble(double v, int precision = 3);

// Group selection helpers: the paper splits LANL systems by architecture.
std::vector<SystemId> SystemsOfGroup(const Trace& trace, SystemGroup group);
// Systems that have job records.
std::vector<SystemId> SystemsWithJobs(const Trace& trace);
// Systems that have temperature records.
std::vector<SystemId> SystemsWithTemperature(const Trace& trace);

// Prints "measured vs paper" shape-check lines used by the benches:
//   [shape OK] fig1a env factor: measured 16.2x, paper ~14-23x (increase)
void PrintShapeCheck(std::ostream& os, const std::string& label,
                     double measured, const std::string& paper_expectation,
                     bool ok);

}  // namespace hpcfail::core
