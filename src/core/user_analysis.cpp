#include "core/user_analysis.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace hpcfail::core {

UserAnalysis AnalyzeUsers(const Trace& trace, SystemId system, int top_n) {
  if (top_n < 2) throw std::invalid_argument("AnalyzeUsers: top_n < 2");
  UserAnalysis out;
  out.system = system;
  std::unordered_map<UserId, UserFailureStats> by_user;
  for (const JobRecord& j : trace.jobs()) {
    if (j.system != system) continue;
    // User 0 is the login/system pseudo-user in synthetic traces; it is a
    // real workload on real traces, so it participates like any other user.
    UserFailureStats& u = by_user[j.user];
    u.user = j.user;
    ++u.jobs;
    if (j.killed_by_node_failure) ++u.killed_jobs;
    u.processor_days += j.proc_seconds() / static_cast<double>(kDay);
  }
  if (by_user.empty()) {
    throw std::invalid_argument("AnalyzeUsers: system has no job log");
  }
  out.total_users = static_cast<int>(by_user.size());

  std::vector<UserFailureStats> users;
  users.reserve(by_user.size());
  for (auto& [id, u] : by_user) {
    if (u.processor_days <= 0.0) continue;
    u.failures_per_proc_day =
        static_cast<double>(u.killed_jobs) / u.processor_days;
    users.push_back(u);
  }
  std::sort(users.begin(), users.end(),
            [](const UserFailureStats& a, const UserFailureStats& b) {
              return a.processor_days > b.processor_days;
            });
  if (users.size() > static_cast<std::size_t>(top_n)) {
    users.resize(static_cast<std::size_t>(top_n));
  }
  out.heaviest_users = users;

  std::vector<double> counts, exposures;
  for (const UserFailureStats& u : out.heaviest_users) {
    counts.push_back(u.killed_jobs);
    exposures.push_back(u.processor_days);
  }
  if (counts.size() >= 2) {
    out.rate_heterogeneity =
        stats::PoissonSaturatedVsCommonRate(counts, exposures);
  }
  return out;
}

}  // namespace hpcfail::core
