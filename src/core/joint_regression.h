// Section X / Tables I-III: the joint regression. Builds the Table-I
// covariates per node (temperature statistics, usage, position in rack) and
// models total node outages with Poisson and negative binomial regression.
#pragma once

#include <optional>
#include <vector>

#include "core/event_index.h"
#include "stats/glm.h"

namespace hpcfail::core {

// One node's row of the Table-I design matrix.
struct NodeCovariates {
  NodeId node;
  double fails_count = 0.0;  // response variable
  double avg_temp = 0.0;
  double max_temp = 0.0;
  double temp_var = 0.0;
  double num_hightemp = 0.0;  // samples above 40C
  double num_jobs = 0.0;
  double util = 0.0;          // utilization in percent, as in the paper
  double pir = 0.0;           // position in rack, 1 = bottom
};

// Names in Table I / II / III order.
std::vector<std::string> JointCovariateNames();

// Builds the per-node design rows for a system with job, temperature and
// layout data (system-20-like). `exclude_node`: the paper reruns the models
// without node 0.
std::vector<NodeCovariates> BuildJointCovariates(
    const EventIndex& index, SystemId system,
    std::optional<NodeId> exclude_node = std::nullopt);

struct JointRegression {
  std::vector<NodeCovariates> rows;
  stats::GlmFit poisson;           // Table II
  stats::GlmFit negative_binomial; // Table III
};

JointRegression FitJointRegression(
    const EventIndex& index, SystemId system,
    std::optional<NodeId> exclude_node = std::nullopt);

// Refits with a subset of the covariates (the paper's "rerun with only the
// significant predictors"). `covariates` must be a subset of
// JointCovariateNames().
JointRegression FitJointRegressionSubset(
    const EventIndex& index, SystemId system,
    const std::vector<std::string>& covariates,
    std::optional<NodeId> exclude_node = std::nullopt);

}  // namespace hpcfail::core
