// The paper's central measurement: conditional window probabilities.
// "We use the data to determine the probability of a node failure in the
// time window following a previous failure and compare this probability to
// the probability of a node failure in a random window" (Section III), at
// node, rack and system granularity, with 95% confidence intervals and
// two-sample significance tests.
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "core/event_index.h"
#include "stats/proportion.h"

namespace hpcfail::core {

enum class Scope {
  kSameNode,    // follow-up on the node that failed
  kRackPeers,   // follow-up on another node of the same rack
  kSystemPeers  // follow-up on another node of the same system
};

std::string_view ToString(Scope s);

// One conditional-vs-baseline comparison, i.e. one bar of Figs. 1-3/10/11/13
// together with its "NX" factor annotation and significance test.
struct ConditionalResult {
  stats::Proportion conditional;  // P(target in window | trigger)
  stats::Proportion baseline;     // P(target in random window)
  double factor = 0.0;            // conditional / baseline (NaN if undefined)
  stats::TwoProportionTest test;  // conditional vs baseline
  long long num_triggers = 0;
};

// All WindowAnalyzer queries run sharded by system on the process thread
// pool (core::SetDefaultThreadCount; 1 forces the serial path) and merge
// per-shard counters in system order, so results are bit-identical for
// every thread count. Every public entry point throws std::invalid_argument
// when `window <= 0` (the baselines divide by it).
class WindowAnalyzer {
 public:
  // Analyzes the systems covered by `index` as one population (the paper
  // aggregates group-1 and group-2 systems the same way).
  explicit WindowAnalyzer(const EventIndex& index) : index_(&index) {}

  // P(>=1 failure matching `target` at `scope`, within (t, t+window] of a
  // trigger failure matching `trigger` at time t). Triggers whose window
  // would run past the end of the observation period are censored (not
  // counted as trials).
  stats::Proportion ConditionalProbability(const EventFilter& trigger,
                                           const EventFilter& target,
                                           Scope scope, TimeSec window) const;

  // Baseline: probability that a random node has >= 1 failure matching
  // `target` in a random (aligned, disjoint) window of the given length.
  // `node_predicate`, when set, restricts which nodes contribute windows
  // (used by the node-0 analyses of Fig. 6); it may be invoked from several
  // threads at once and must be safe to call concurrently.
  stats::Proportion BaselineProbability(
      const EventFilter& target, TimeSec window,
      const std::function<bool(SystemId, NodeId)>& node_predicate = {}) const;

  // Bundles conditional, baseline, factor and significance.
  ConditionalResult Compare(const EventFilter& trigger,
                            const EventFilter& target, Scope scope,
                            TimeSec window) const;

  // Probability of >= 1 unscheduled-maintenance event at the trigger's node
  // within the window (Section VII.A.2), plus the random-window baseline.
  ConditionalResult MaintenanceAfter(const EventFilter& trigger,
                                     TimeSec window) const;

  // Section III.A.3's "all pairwise probabilities p(x, y)": entry [x][y] is
  // the comparison of P(type-y failure within the window after a type-x
  // failure, same node) against the random-window baseline for type y.
  using PairwiseMatrix =
      std::array<std::array<ConditionalResult, kNumFailureCategories>,
                 kNumFailureCategories>;
  PairwiseMatrix PairwiseProbabilities(Scope scope, TimeSec window) const;

  const EventIndex& index() const { return *index_; }

 private:
  const EventIndex* index_;
};

}  // namespace hpcfail::core
