// A small reusable thread pool plus ParallelFor / ParallelReduce helpers for
// the analysis kernels. Every parallel result is deterministic: ParallelFor
// partitions work by index, ParallelReduce folds per-index results in strict
// index order on the calling thread, so output is bit-identical to the serial
// path regardless of thread count. Nested parallel calls (a parallel region
// invoked from inside a pool worker) degrade to the serial path rather than
// deadlocking on pool capacity.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace hpcfail::core {

// Threads the process has to offer (>= 1 even when the runtime reports 0).
int HardwareThreadCount();

// Process-wide default used by parallel calls with `threads == 0`.
// SetDefaultThreadCount(n <= 0) restores the hardware default. Tools expose
// this as `--threads N`; N = 1 forces the serial path everywhere.
int DefaultThreadCount();
void SetDefaultThreadCount(int n);

// Fixed-size worker pool. Tasks submitted after shutdown started are
// rejected; the destructor drains every queued task before joining.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task. Returns false (and does not run the task) once
  // shutdown has begun.
  bool Submit(std::function<void()> task);

  // True when called from one of this process's pool worker threads (any
  // pool); parallel helpers use it to serialize nested regions.
  static bool OnWorkerThread();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

// Runs body(i) for every i in [0, n). `threads == 0` uses
// DefaultThreadCount(); the effective count is also capped at n. With one
// effective thread (or when already inside a pool worker) the loop runs
// inline on the caller — the exact same `body` invocations in the same
// order. The first exception thrown by any body is rethrown on the calling
// thread; remaining un-started iterations are skipped.
void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                 int threads = 0);

// Computes task(i) for every i (possibly in parallel), then folds the
// results serially in increasing index order:
//   acc = combine(std::move(acc), std::move(result_i))
// The fold order never depends on the thread count, so the reduction is
// bit-identical to a serial loop.
template <typename T, typename TaskFn, typename CombineFn>
T ParallelReduce(std::size_t n, T init, TaskFn&& task, CombineFn&& combine,
                 int threads = 0) {
  std::vector<std::optional<T>> results(n);
  ParallelFor(
      n, [&](std::size_t i) { results[i].emplace(task(i)); }, threads);
  T acc = std::move(init);
  for (std::optional<T>& r : results) {
    acc = combine(std::move(acc), std::move(*r));
  }
  return acc;
}

}  // namespace hpcfail::core
