#include "core/joint_regression.h"

#include <algorithm>
#include <stdexcept>

#include "core/usage_analysis.h"
#include "trace/environment.h"

namespace hpcfail::core {

std::vector<std::string> JointCovariateNames() {
  return {"avg_temp", "max_temp",  "temp_var", "num_hightemp",
          "num_jobs", "util",      "PIR"};
}

std::vector<NodeCovariates> BuildJointCovariates(
    const EventIndex& index, SystemId system,
    std::optional<NodeId> exclude_node) {
  const Trace& trace = index.trace();
  const SystemConfig& config = trace.system(system);
  const auto num_nodes = static_cast<std::size_t>(config.num_nodes);

  const std::vector<int> fails = index.NodeCounts(system, EventFilter::Any());
  const std::vector<NodeUsageStats> usage = ComputeNodeUsage(trace, system);

  std::vector<std::vector<TemperatureSample>> grouped(num_nodes);
  for (const TemperatureSample& s : trace.temperatures()) {
    if (s.system == system) {
      grouped[static_cast<std::size_t>(s.node.value)].push_back(s);
    }
  }

  std::vector<NodeCovariates> out;
  out.reserve(num_nodes);
  for (std::size_t n = 0; n < num_nodes; ++n) {
    const NodeId node{static_cast<int>(n)};
    if (exclude_node && node == *exclude_node) continue;
    NodeCovariates row;
    row.node = node;
    row.fails_count = fails[n];
    const TemperatureSummary t = SummarizeTemperature(grouped[n], node);
    row.avg_temp = t.avg;
    row.max_temp = t.max;
    row.temp_var = t.variance;
    row.num_hightemp = t.num_high_temp;
    row.num_jobs = usage[n].num_jobs;
    row.util = 100.0 * usage[n].utilization;  // percent, as in Table I
    const auto placement = config.layout.placement(node);
    row.pir = placement ? placement->position_in_rack : 0.0;
    out.push_back(row);
  }
  return out;
}

namespace {

JointRegression FitRows(std::vector<NodeCovariates> rows,
                        const std::vector<std::string>& covariates) {
  if (rows.size() < covariates.size() + 2) {
    throw std::invalid_argument("joint regression: too few rows");
  }
  stats::Matrix x(rows.size(), covariates.size());
  std::vector<double> y(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const NodeCovariates& r = rows[i];
    y[i] = r.fails_count;
    for (std::size_t j = 0; j < covariates.size(); ++j) {
      const std::string& name = covariates[j];
      double v = 0.0;
      if (name == "avg_temp") v = r.avg_temp;
      else if (name == "max_temp") v = r.max_temp;
      else if (name == "temp_var") v = r.temp_var;
      else if (name == "num_hightemp") v = r.num_hightemp;
      else if (name == "num_jobs") v = r.num_jobs;
      else if (name == "util") v = r.util;
      else if (name == "PIR") v = r.pir;
      else throw std::invalid_argument("unknown covariate: " + name);
      x(i, j) = v;
    }
  }
  stats::GlmOptions opts;
  opts.names = covariates;
  JointRegression out;
  out.rows = std::move(rows);
  out.poisson = stats::FitPoisson(x, y, opts);
  out.negative_binomial = stats::FitNegativeBinomial(x, y, opts);
  return out;
}

}  // namespace

JointRegression FitJointRegression(const EventIndex& index, SystemId system,
                                   std::optional<NodeId> exclude_node) {
  return FitRows(BuildJointCovariates(index, system, exclude_node),
                 JointCovariateNames());
}

JointRegression FitJointRegressionSubset(
    const EventIndex& index, SystemId system,
    const std::vector<std::string>& covariates,
    std::optional<NodeId> exclude_node) {
  return FitRows(BuildJointCovariates(index, system, exclude_node),
                 covariates);
}

}  // namespace hpcfail::core
