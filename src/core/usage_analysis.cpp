#include "core/usage_analysis.h"

#include <algorithm>
#include <stdexcept>

namespace hpcfail::core {
namespace {

TimeSec UnionLength(std::vector<TimeInterval>& ivs) {
  if (ivs.empty()) return 0;
  std::sort(ivs.begin(), ivs.end(),
            [](const TimeInterval& a, const TimeInterval& b) {
              return a.begin < b.begin;
            });
  TimeSec total = 0;
  TimeSec begin = ivs.front().begin;
  TimeSec end = ivs.front().end;
  for (const TimeInterval& iv : ivs) {
    if (iv.begin > end) {
      total += end - begin;
      begin = iv.begin;
      end = iv.end;
    } else {
      end = std::max(end, iv.end);
    }
  }
  return total + (end - begin);
}

}  // namespace

std::vector<NodeUsageStats> ComputeNodeUsage(const Trace& trace,
                                             SystemId system) {
  const SystemConfig& config = trace.system(system);
  std::vector<NodeUsageStats> out(static_cast<std::size_t>(config.num_nodes));
  std::vector<std::vector<TimeInterval>> busy(
      static_cast<std::size_t>(config.num_nodes));
  for (int n = 0; n < config.num_nodes; ++n) {
    out[static_cast<std::size_t>(n)].node = NodeId{n};
  }
  for (const JobRecord& j : trace.jobs()) {
    if (j.system != system) continue;
    for (NodeId n : j.nodes) {
      const auto idx = static_cast<std::size_t>(n.value);
      ++out[idx].num_jobs;
      busy[idx].push_back(j.run_interval());
    }
  }
  const auto duration = static_cast<double>(config.observed.duration());
  for (std::size_t n = 0; n < out.size(); ++n) {
    out[n].busy_time = UnionLength(busy[n]);
    out[n].utilization =
        duration > 0.0 ? static_cast<double>(out[n].busy_time) / duration : 0.0;
  }
  return out;
}

UsageAnalysis AnalyzeUsage(const EventIndex& index, SystemId system) {
  UsageAnalysis out;
  out.system = system;
  out.nodes = ComputeNodeUsage(index.trace(), system);
  bool has_jobs = false;
  for (const NodeUsageStats& n : out.nodes) has_jobs |= n.num_jobs > 0;
  if (!has_jobs) {
    throw std::invalid_argument("AnalyzeUsage: system has no job log");
  }
  const std::vector<int> failures = index.NodeCounts(system, EventFilter::Any());
  std::vector<double> jobs, utils, fails;
  for (std::size_t n = 0; n < out.nodes.size(); ++n) {
    out.nodes[n].failures = failures[n];
    jobs.push_back(out.nodes[n].num_jobs);
    utils.push_back(out.nodes[n].utilization);
    fails.push_back(failures[n]);
  }
  out.jobs_vs_failures = stats::PearsonCorrelation(jobs, fails);
  out.util_vs_failures = stats::PearsonCorrelation(utils, fails);

  const auto top = static_cast<std::size_t>(std::distance(
      fails.begin(), std::max_element(fails.begin(), fails.end())));
  out.top_node = NodeId{static_cast<int>(top)};
  auto without = [top](std::vector<double> v) {
    v.erase(v.begin() + static_cast<std::ptrdiff_t>(top));
    return v;
  };
  if (out.nodes.size() > 3) {
    out.jobs_vs_failures_excl_top =
        stats::PearsonCorrelation(without(jobs), without(fails));
    out.util_vs_failures_excl_top =
        stats::PearsonCorrelation(without(utils), without(fails));
  }
  return out;
}

}  // namespace hpcfail::core
