#include "core/downtime.h"

#include <algorithm>

#include "stats/descriptive.h"

namespace hpcfail::core {
namespace {

DowntimeSummary Summarize(std::vector<double>& hours) {
  DowntimeSummary out;
  out.count = static_cast<long long>(hours.size());
  if (hours.empty()) return out;
  out.mean_hours = stats::Mean(hours);
  out.median_hours = stats::Median(hours);
  out.p90_hours = stats::Quantile(hours, 0.9);
  out.total_hours = stats::Sum(hours);
  return out;
}

}  // namespace

DowntimeAnalysis AnalyzeDowntime(const EventIndex& index, SystemId system) {
  const SystemConfig& config = index.trace().system(system);
  DowntimeAnalysis out;
  out.system = system;

  std::vector<double> all_hours;
  std::array<std::vector<double>, kNumFailureCategories> per_category;
  std::vector<double> node_down_hours(
      static_cast<std::size_t>(config.num_nodes), 0.0);
  for (const FailureRecord& f : index.failures_of(system)) {
    const double h =
        static_cast<double>(f.downtime()) / static_cast<double>(kHour);
    all_hours.push_back(h);
    per_category[static_cast<std::size_t>(f.category)].push_back(h);
    node_down_hours[static_cast<std::size_t>(f.node.value)] += h;
  }
  for (const MaintenanceRecord& m : index.trace().maintenance()) {
    if (m.system != system) continue;
    node_down_hours[static_cast<std::size_t>(m.node.value)] +=
        static_cast<double>(m.end - m.start) / static_cast<double>(kHour);
  }

  out.overall = Summarize(all_hours);
  for (std::size_t c = 0; c < kNumFailureCategories; ++c) {
    out.by_category[c] = Summarize(per_category[c]);
  }

  const double lifetime_hours =
      static_cast<double>(config.observed.duration()) /
      static_cast<double>(kHour);
  if (lifetime_hours > 0.0 && config.num_nodes > 0) {
    double total_down = 0.0;
    for (std::size_t n = 0; n < node_down_hours.size(); ++n) {
      // A node cannot be down longer than it was observed (overlapping
      // outages would otherwise double count).
      node_down_hours[n] = std::min(node_down_hours[n], lifetime_hours);
      total_down += node_down_hours[n];
      const double avail = 1.0 - node_down_hours[n] / lifetime_hours;
      if (avail < out.worst_node_availability) {
        out.worst_node_availability = avail;
        out.worst_node = NodeId{static_cast<int>(n)};
      }
    }
    out.availability =
        1.0 - total_down / (lifetime_hours * config.num_nodes);
  }
  return out;
}

}  // namespace hpcfail::core
