// Section V / Fig. 7: does usage affect a node's reliability? Recomputes
// per-node usage metrics from the job log (never from generator internals)
// and correlates them with failure counts.
#pragma once

#include <vector>

#include "core/event_index.h"
#include "stats/correlation.h"

namespace hpcfail::core {

struct NodeUsageStats {
  NodeId node;
  int num_jobs = 0;
  TimeSec busy_time = 0;
  double utilization = 0.0;  // fraction of the observation period busy
  int failures = 0;
};

struct UsageAnalysis {
  SystemId system;
  std::vector<NodeUsageStats> nodes;  // index == node id (Fig. 7 scatter)
  // Pearson correlation between #jobs and #failures, with and without the
  // most failure-prone node (Section V: 0.465 / 0.12, collapsing without
  // node 0).
  stats::CorrelationResult jobs_vs_failures;
  stats::CorrelationResult jobs_vs_failures_excl_top;
  stats::CorrelationResult util_vs_failures;
  stats::CorrelationResult util_vs_failures_excl_top;
  NodeId top_node;  // the excluded node
};

// Computes usage metrics from the trace's job records for one system.
// Throws std::invalid_argument when the system has no job log.
UsageAnalysis AnalyzeUsage(const EventIndex& index, SystemId system);

// Per-node usage metrics only (shared with the joint regression).
std::vector<NodeUsageStats> ComputeNodeUsage(const Trace& trace,
                                             SystemId system);

}  // namespace hpcfail::core
