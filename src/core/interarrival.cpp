#include "core/interarrival.h"

#include <algorithm>
#include <stdexcept>

#include "stats/correlation.h"

namespace hpcfail::core {

InterarrivalAnalysis AnalyzeInterarrivals(const EventIndex& index,
                                          SystemId system,
                                          const EventFilter& filter,
                                          int max_lag) {
  const auto failures = index.failures_of(system);
  const SystemConfig& config = index.trace().system(system);

  InterarrivalAnalysis out;
  out.system = system;

  std::vector<TimeSec> times;
  std::vector<std::vector<TimeSec>> per_node(
      static_cast<std::size_t>(config.num_nodes));
  for (const FailureRecord& f : failures) {
    if (!filter.Matches(f)) continue;
    times.push_back(f.start);
    per_node[static_cast<std::size_t>(f.node.value)].push_back(f.start);
  }
  if (times.size() < 5) {
    throw std::invalid_argument(
        "AnalyzeInterarrivals: too few failures in system");
  }

  auto gaps_of = [](const std::vector<TimeSec>& ts) {
    std::vector<double> gaps;
    for (std::size_t i = 1; i < ts.size(); ++i) {
      const TimeSec g = ts[i] - ts[i - 1];
      // Identical timestamps (facility events) carry no spacing information
      // for a continuous fit; floor at one minute.
      gaps.push_back(std::max<double>(static_cast<double>(g),
                                      static_cast<double>(kMinute)) /
                     static_cast<double>(kHour));
    }
    return gaps;
  };
  out.system_gaps_hours = gaps_of(times);
  for (const auto& node_times : per_node) {
    const auto node_gaps = gaps_of(node_times);
    out.node_gaps_hours.insert(out.node_gaps_hours.end(), node_gaps.begin(),
                               node_gaps.end());
  }

  out.system_fits = stats::FitAll(out.system_gaps_hours);
  out.system_weibull = stats::FitWeibull(out.system_gaps_hours);
  if (out.node_gaps_hours.size() >= 3) {
    out.node_weibull = stats::FitWeibull(out.node_gaps_hours);
  }

  // Daily failure counts and their autocorrelation.
  const auto days =
      static_cast<std::size_t>(config.observed.duration() / kDay);
  std::vector<double> daily(std::max<std::size_t>(days, 1), 0.0);
  for (TimeSec t : times) {
    const auto d =
        static_cast<std::size_t>((t - config.observed.begin) / kDay);
    if (d < daily.size()) daily[d] += 1.0;
  }
  const int lag =
      std::min<int>(max_lag, static_cast<int>(daily.size()) - 1);
  if (lag >= 1) out.daily_count_acf = stats::Autocorrelation(daily, lag);
  return out;
}

}  // namespace hpcfail::core
