// Failure prediction: the application the paper motivates its correlation
// study with ("it helps in the prediction of failures, which is useful, for
// example, for scheduling application checkpoints or for designing job
// migration strategies", Section III; "these observations are critical for
// creating effective failure prediction models, as they imply that such
// models should ... also consider the root-causes of failures", Section XI).
//
// The predictor is deliberately the simplest model that can encode the
// paper's findings: it learns, from a training trace, the probability that
// a node fails within a horizon given the type of its most recent failure
// (plus the unconditional baseline), and raises an alarm whenever the
// learned probability crosses a threshold. Its value is the *ablation*: a
// root-cause-aware table beats a type-blind one, which is exactly the
// paper's Section XI claim.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "core/window_analysis.h"

namespace hpcfail::core {

struct PredictorConfig {
  TimeSec horizon = kDay;  // alarm means "this node fails within horizon"
  TimeSec memory = kWeek;  // how recent a failure must be to count as signal
  bool type_aware = true;  // learn one probability per trigger type
};

class FailurePredictor {
 public:
  // Learns the probability table from the given (training) index.
  FailurePredictor(const EventIndex& train, const PredictorConfig& config);

  // Rebuilds a predictor from an already-learned table (checkpoint restore
  // in the streaming engine; see stream/stream_predictor.h). Scores are
  // bit-identical to the predictor the table was read from.
  static FailurePredictor FromTable(
      const PredictorConfig& config, double baseline,
      const std::array<double, kNumFailureCategories>& conditional);

  // The learned P(failure within horizon | last failure of type X within
  // memory window). For type-blind predictors all types share one value.
  double conditional(FailureCategory trigger) const {
    return conditional_[static_cast<std::size_t>(trigger)];
  }
  double baseline() const { return baseline_; }
  const PredictorConfig& config() const { return config_; }

  // Hazard score of a node at time t given its most recent failure (type
  // and time), or the baseline when it has none in the memory window.
  double Score(std::optional<FailureCategory> last_type,
               std::optional<TimeSec> last_time, TimeSec now) const;

 private:
  FailurePredictor() = default;  // for FromTable

  PredictorConfig config_;
  double baseline_ = 0.0;
  std::array<double, kNumFailureCategories> conditional_{};
};

// Confusion-matrix evaluation over every (node, day) slot of the evaluation
// index: an alarm is raised when the score reaches `threshold`; the ground
// truth is ">= 1 failure within the horizon".
struct PredictionEvaluation {
  double threshold = 0.0;
  long long true_positives = 0;
  long long false_positives = 0;
  long long false_negatives = 0;
  long long true_negatives = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double alarm_rate = 0.0;  // alarms / slots
};

// An evaluation index with zero failures yields a zeroed evaluation (only
// the threshold is set): there is no ground-truth positive to score against,
// and the precision/recall/alarm-rate ratios would otherwise be 0/0.
PredictionEvaluation EvaluatePredictor(const FailurePredictor& predictor,
                                       const EventIndex& eval,
                                       double threshold);

// Precision/recall sweep across thresholds (the predictor's operating
// curve). Thresholds are taken from the predictor's learned probabilities
// plus the baseline, deduplicated and sorted ascending.
std::vector<PredictionEvaluation> SweepPredictor(
    const FailurePredictor& predictor, const EventIndex& eval);

}  // namespace hpcfail::core
