#include "core/survival_analysis.h"

#include <cmath>

namespace hpcfail::core {

SurvivalAnalysis AnalyzeTimeToNextFailure(const EventIndex& index) {
  SurvivalAnalysis out;
  for (FailureCategory c : AllFailureCategories()) {
    out.by_trigger[static_cast<std::size_t>(c)].trigger = c;
  }

  for (SystemId sys : index.systems()) {
    const SystemConfig& config = index.trace().system(sys);
    // Per-node event sequences (time, category), already time-sorted.
    std::vector<std::vector<std::pair<TimeSec, FailureCategory>>> per_node(
        static_cast<std::size_t>(config.num_nodes));
    for (const FailureRecord& f : index.failures_of(sys)) {
      per_node[static_cast<std::size_t>(f.node.value)].emplace_back(
          f.start, f.category);
    }
    for (const auto& events : per_node) {
      for (std::size_t i = 0; i < events.size(); ++i) {
        const auto [t, category] = events[i];
        stats::SurvivalObservation o;
        if (i + 1 < events.size()) {
          o.time = static_cast<double>(events[i + 1].first - t) /
                   static_cast<double>(kHour);
          o.event = true;
        } else {
          o.time = static_cast<double>(config.observed.end - t) /
                   static_cast<double>(kHour);
          o.event = false;  // censored at end of observation
        }
        o.time = std::max(o.time, 1.0 / 60.0);  // floor at one minute
        out.by_trigger[static_cast<std::size_t>(category)]
            .observations.push_back(o);
      }
    }
  }

  for (TriggerSurvival& ts : out.by_trigger) {
    if (ts.observations.size() < 3) continue;
    const stats::KaplanMeier km(ts.observations);
    ts.failure_within_day = 1.0 - km.Survival(24.0);
    ts.failure_within_week = 1.0 - km.Survival(24.0 * 7.0);
    ts.median_hours = km.MedianSurvival();
  }

  const auto& env =
      out.by_trigger[static_cast<std::size_t>(FailureCategory::kEnvironment)];
  const auto& hw =
      out.by_trigger[static_cast<std::size_t>(FailureCategory::kHardware)];
  const auto& net =
      out.by_trigger[static_cast<std::size_t>(FailureCategory::kNetwork)];
  const auto& sw =
      out.by_trigger[static_cast<std::size_t>(FailureCategory::kSoftware)];
  if (env.observations.size() >= 3 && hw.observations.size() >= 3) {
    out.env_vs_hw = stats::LogRankTest(env.observations, hw.observations);
  }
  if (net.observations.size() >= 3 && sw.observations.size() >= 3) {
    out.net_vs_sw = stats::LogRankTest(net.observations, sw.observations);
  }
  return out;
}

}  // namespace hpcfail::core
