// Time-sorted failure indexes per node, rack and system with binary-searched
// window queries — the query layer under every conditional-probability
// analysis. Construction from a finalized trace is one linear pass; window
// queries are O(log F + k) where k is the number of events inside the
// window. The per-system storage and query kernels live in
// core/event_store.h and are shared with the streaming
// stream::IncrementalEventIndex.
//
// An EventIndex is a *view*: the per-system stores live in a shared
// EventStoreSet, so several indexes (e.g. the all-systems index plus the
// group-1 / group-2 subsets a figure bench compares) reference one build of
// the stores instead of re-indexing the trace per subset. Copying an index
// copies the view, not the stores.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/event_store.h"
#include "trace/system.h"

namespace hpcfail::core {

class EventIndex {
 public:
  // Indexes the failures of the given systems (all systems when empty),
  // building a private store set.
  EventIndex(const Trace& trace, std::span<const SystemId> systems = {});

  // View onto prebuilt stores (all of `set`'s systems when `systems` is
  // empty). Throws std::out_of_range when a requested system has no store.
  // The engine-layer AnalysisSession uses this to serve every analyzer from
  // one store build (possibly restored from the artifact cache).
  EventIndex(const Trace& trace, std::shared_ptr<const EventStoreSet> set,
             std::span<const SystemId> systems = {});

  // Systems covered, in indexing order.
  const std::vector<SystemId>& systems() const { return systems_; }
  const Trace& trace() const { return *trace_; }

  // All failures of one indexed system, time-sorted. Records are
  // materialized from the store's columns on demand; iterate or index the
  // span like a container of FailureRecord.
  RecordSpan failures_of(SystemId sys) const;

  // Columnar access to one system's store — the analyzers' hot loops read
  // the (starts, nodes, cats, subs) columns directly instead of
  // materializing records. Throws std::out_of_range when not indexed.
  const SystemEventStore& store(SystemId sys) const { return Get(sys); }

  // True when >= 1 failure matching `filter` occurs at the node in the
  // half-open interval (window.begin, window.end].
  bool AnyAtNode(SystemId sys, NodeId node, TimeInterval window,
                 const EventFilter& filter) const;
  // Count version.
  int CountAtNode(SystemId sys, NodeId node, TimeInterval window,
                  const EventFilter& filter) const;

  // True when >= 1 matching failure occurs in the window on a node of the
  // same rack as `node`, excluding `node` itself. Returns false when the
  // system has no layout.
  bool AnyAtRackPeers(SystemId sys, NodeId node, TimeInterval window,
                      const EventFilter& filter) const;

  // True when >= 1 matching failure occurs in the window on any *other*
  // node of the system.
  bool AnyAtSystemPeers(SystemId sys, NodeId node, TimeInterval window,
                        const EventFilter& filter) const;

  // The paper's rack/system conditionals are per-peer probabilities ("the
  // weekly probability of a node ... increases from 2.04% to 2.68%"), so a
  // trigger contributes one trial per peer node. These return the number of
  // DISTINCT peer nodes with >= 1 matching failure in the window, and the
  // total number of peers via `num_peers`. Rack version returns 0/0 when
  // the system has no layout.
  int DistinctRackPeersWithEvent(SystemId sys, NodeId node,
                                 TimeInterval window,
                                 const EventFilter& filter,
                                 int* num_peers) const;
  int DistinctSystemPeersWithEvent(SystemId sys, NodeId node,
                                   TimeInterval window,
                                   const EventFilter& filter,
                                   int* num_peers) const;

  // Visits every failure matching `filter` across the indexed systems.
  // Rides each store's ForEachMatching, i.e. the simd::Active()
  // find_next_match kernel for sparse filters.
  void ForEach(const EventFilter& filter,
               const std::function<void(SystemId, const FailureRecord&)>& fn)
      const;

  // Total failures matching a filter (count_matches kernel per store).
  long long Count(const EventFilter& filter) const;

  // Per-node failure counts for one system (index == node id).
  std::vector<int> NodeCounts(SystemId sys, const EventFilter& filter) const;

 private:
  const SystemEventStore* Find(SystemId sys) const;
  const SystemEventStore& Get(SystemId sys) const;  // throws when absent

  const Trace* trace_;
  std::vector<SystemId> systems_;
  std::shared_ptr<const EventStoreSet> set_;
  std::vector<const SystemEventStore*> events_;  // selected views into set_
};

}  // namespace hpcfail::core
