#include "core/report.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hpcfail::core {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << " |\n";
  };
  auto print_sep = [&]() {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << (c == 0 ? "+-" : "-+-") << std::string(width[c], '-');
    }
    os << "-+\n";
  };
  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string FormatPercent(const stats::Proportion& p, bool with_ci) {
  if (!p.defined()) return "n/a";
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << 100.0 * p.estimate << '%';
  if (with_ci) {
    os << " [" << std::setprecision(2) << 100.0 * p.ci_low << ','
       << 100.0 * p.ci_high << ']';
  }
  return os.str();
}

std::string FormatFactor(double factor) {
  if (!std::isfinite(factor)) return "n/a";
  std::ostringstream os;
  os << std::fixed << std::setprecision(factor >= 100 ? 0 : 1) << factor
     << 'x';
  return os.str();
}

std::string SignificanceMarker(const stats::TwoProportionTest& test) {
  if (test.significant_99) return "**";
  if (test.significant_95) return "*";
  return "";
}

std::string FormatConditional(const ConditionalResult& r) {
  std::ostringstream os;
  os << FormatPercent(r.conditional) << " (" << FormatFactor(r.factor) << ")";
  const std::string marker = SignificanceMarker(r.test);
  if (!marker.empty()) os << ' ' << marker;
  return os.str();
}

std::string FormatDouble(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::vector<SystemId> SystemsOfGroup(const Trace& trace, SystemGroup group) {
  std::vector<SystemId> out;
  for (const SystemConfig& s : trace.systems()) {
    if (s.group == group) out.push_back(s.id);
  }
  return out;
}

std::vector<SystemId> SystemsWithJobs(const Trace& trace) {
  std::vector<SystemId> out;
  for (const SystemConfig& s : trace.systems()) {
    for (const JobRecord& j : trace.jobs()) {
      if (j.system == s.id) {
        out.push_back(s.id);
        break;
      }
    }
  }
  return out;
}

std::vector<SystemId> SystemsWithTemperature(const Trace& trace) {
  std::vector<SystemId> out;
  for (const SystemConfig& s : trace.systems()) {
    for (const TemperatureSample& t : trace.temperatures()) {
      if (t.system == s.id) {
        out.push_back(s.id);
        break;
      }
    }
  }
  return out;
}

void PrintShapeCheck(std::ostream& os, const std::string& label,
                     double measured, const std::string& paper_expectation,
                     bool ok) {
  os << (ok ? "[shape OK]   " : "[shape MISS] ") << label << ": measured "
     << FormatFactor(measured) << ", paper " << paper_expectation << "\n";
}

}  // namespace hpcfail::core
