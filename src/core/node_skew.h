// Section IV: do some nodes fail differently from others? Per-node failure
// counts (Fig. 4), chi-square equal-rate tests, failure-prone node
// detection, root-cause breakdown comparisons (Fig. 5) and per-type window
// probabilities for prone nodes vs the rest (Fig. 6).
#pragma once

#include <array>
#include <vector>

#include "core/window_analysis.h"
#include "stats/chi_square.h"

namespace hpcfail::core {

struct NodeSkewSummary {
  SystemId system;
  std::vector<int> failures_per_node;  // index == node id (Fig. 4 series)
  double mean_failures = 0.0;
  NodeId most_failing_node;
  int max_failures = 0;
  double max_over_mean = 0.0;  // the "node 0 reported 19x more..." factor
  stats::ChiSquareResult equal_rates_test;            // all nodes
  stats::ChiSquareResult equal_rates_test_excl_top;   // without the top node
};

NodeSkewSummary AnalyzeNodeSkew(const EventIndex& index, SystemId system);

// Fig. 5: relative root-cause breakdown (percent per category) for one node
// versus all remaining nodes of the system.
struct BreakdownComparison {
  std::array<double, kNumFailureCategories> node_percent{};
  std::array<double, kNumFailureCategories> rest_percent{};
  NodeId node;
};

BreakdownComparison CompareBreakdown(const EventIndex& index, SystemId system,
                                     NodeId node);

// Fig. 6: probability that the prone node (vs an average remaining node)
// sees >= 1 failure of the given type in a random day / week / month.
struct ProneNodeProbability {
  TimeSec window = 0;
  stats::Proportion prone;  // the singled-out node
  stats::Proportion rest;   // all other nodes pooled
  double factor = 0.0;
  stats::ChiSquareResult per_type_equal_rate;  // prone vs rest, this type
};

ProneNodeProbability CompareProneNode(const EventIndex& index, SystemId system,
                                      NodeId node, const EventFilter& type,
                                      TimeSec window);

}  // namespace hpcfail::core
