#include "core/temperature_analysis.h"

#include <stdexcept>

#include "trace/environment.h"

namespace hpcfail::core {
namespace {

TemperatureRegression FitOne(const std::vector<double>& covariate,
                             const std::vector<double>& counts,
                             std::string covariate_name, std::string target) {
  TemperatureRegression out;
  out.covariate = std::move(covariate_name);
  out.target = std::move(target);
  stats::Matrix x(covariate.size(), 1);
  for (std::size_t i = 0; i < covariate.size(); ++i) x(i, 0) = covariate[i];
  stats::GlmOptions opts;
  opts.names = {out.covariate};
  out.poisson = stats::FitPoisson(x, counts, opts);
  out.negative_binomial = stats::FitNegativeBinomial(x, counts, opts);
  out.poisson_p = out.poisson.coefficient(out.covariate).p_value;
  out.negbin_p = out.negative_binomial.coefficient(out.covariate).p_value;
  return out;
}

}  // namespace

std::vector<TemperatureRegression> RegressFailuresOnTemperature(
    const EventIndex& index, SystemId system) {
  const Trace& trace = index.trace();
  const SystemConfig& config = trace.system(system);
  const auto num_nodes = static_cast<std::size_t>(config.num_nodes);

  // Per-node temperature summaries. One pass, grouped by node.
  std::vector<TemperatureSummary> temp(num_nodes);
  {
    std::vector<std::vector<TemperatureSample>> grouped(num_nodes);
    for (const TemperatureSample& s : trace.temperatures()) {
      if (s.system == system) {
        grouped[static_cast<std::size_t>(s.node.value)].push_back(s);
      }
    }
    bool any = false;
    for (std::size_t n = 0; n < num_nodes; ++n) {
      temp[n] = SummarizeTemperature(grouped[n], NodeId{static_cast<int>(n)});
      any |= temp[n].num_samples > 0;
    }
    if (!any) {
      throw std::invalid_argument(
          "RegressFailuresOnTemperature: system has no temperature log");
    }
  }

  const std::vector<int> hw =
      index.NodeCounts(system, EventFilter::Of(FailureCategory::kHardware));
  const std::vector<int> cpu =
      index.NodeCounts(system, EventFilter::Of(HardwareComponent::kCpu));
  const std::vector<int> mem =
      index.NodeCounts(system, EventFilter::Of(HardwareComponent::kMemory));

  std::vector<double> avg(num_nodes), mx(num_nodes), var(num_nodes);
  for (std::size_t n = 0; n < num_nodes; ++n) {
    avg[n] = temp[n].avg;
    mx[n] = temp[n].max;
    var[n] = temp[n].variance;
  }
  auto to_double = [](const std::vector<int>& v) {
    return std::vector<double>(v.begin(), v.end());
  };

  std::vector<TemperatureRegression> out;
  for (const auto& [name, cov] :
       {std::pair{"avg_temp", &avg}, {"max_temp", &mx}, {"temp_var", &var}}) {
    out.push_back(FitOne(*cov, to_double(hw), name, "hardware"));
    out.push_back(FitOne(*cov, to_double(cpu), name, "cpu"));
    out.push_back(FitOne(*cov, to_double(mem), name, "memory"));
  }
  return out;
}

EventFilter FanFilter() { return EventFilter::Of(HardwareComponent::kFan); }
EventFilter ChillerFilter() {
  return EventFilter::Of(EnvironmentEvent::kChiller);
}

std::vector<CoolingImpact> CoolingFailureImpact(
    const WindowAnalyzer& analyzer) {
  const EventFilter hw = EventFilter::Of(FailureCategory::kHardware);
  std::vector<CoolingImpact> out;
  for (const auto& [name, trigger] :
       {std::pair{"fan", FanFilter()}, {"chiller", ChillerFilter()}}) {
    CoolingImpact ci;
    ci.trigger = name;
    ci.day = analyzer.Compare(trigger, hw, Scope::kSameNode, kDay);
    ci.week = analyzer.Compare(trigger, hw, Scope::kSameNode, kWeek);
    ci.month = analyzer.Compare(trigger, hw, Scope::kSameNode, kMonth);
    out.push_back(std::move(ci));
  }
  return out;
}

}  // namespace hpcfail::core
