// Predicate over failure records: the paper's analyses condition on "a
// failure of type X", where X is a high-level category, a hardware
// component, a software subsystem or a specific power problem.
#pragma once

#include <optional>
#include <string>

#include "trace/failure.h"

namespace hpcfail::core {

struct EventFilter {
  std::optional<FailureCategory> category;
  std::optional<HardwareComponent> hardware;
  std::optional<SoftwareComponent> software;
  std::optional<EnvironmentEvent> environment;

  bool Matches(const FailureRecord& r) const {
    if (category && r.category != *category) return false;
    if (hardware && r.hardware != hardware) return false;
    if (software && r.software != software) return false;
    if (environment && r.environment != environment) return false;
    return true;
  }

  bool MatchesEverything() const {
    return !category && !hardware && !software && !environment;
  }

  // Human-readable label for reports.
  std::string Describe() const;

  static EventFilter Any() { return {}; }
  static EventFilter Of(FailureCategory c) {
    EventFilter f;
    f.category = c;
    return f;
  }
  static EventFilter Of(HardwareComponent c) {
    EventFilter f;
    f.category = FailureCategory::kHardware;
    f.hardware = c;
    return f;
  }
  static EventFilter Of(SoftwareComponent c) {
    EventFilter f;
    f.category = FailureCategory::kSoftware;
    f.software = c;
    return f;
  }
  static EventFilter Of(EnvironmentEvent c) {
    EventFilter f;
    f.category = FailureCategory::kEnvironment;
    f.environment = c;
    return f;
  }
};

}  // namespace hpcfail::core
