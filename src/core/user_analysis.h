// Section VI / Fig. 8: are some users more prone to node failures than
// others? Per-user failures-per-processor-day (only counting jobs killed by
// a node failure, not application bugs) and the Poisson saturated-vs-common-
// rate ANOVA significance test.
#pragma once

#include <vector>

#include "stats/anova.h"
#include "trace/system.h"

namespace hpcfail::core {

struct UserFailureStats {
  UserId user;
  int jobs = 0;
  int killed_jobs = 0;          // jobs that died to a node failure
  double processor_days = 0.0;  // procs * runtime, in days
  double failures_per_proc_day = 0.0;
};

struct UserAnalysis {
  SystemId system;
  // The heaviest users by processor-days, descending (Fig. 8's x-axis).
  std::vector<UserFailureStats> heaviest_users;
  // LRT of the saturated Poisson model (per-user rates) against the common-
  // rate model over the heaviest users (Section VI's ANOVA).
  stats::LikelihoodRatioResult rate_heterogeneity;
  int total_users = 0;
};

// `top_n` selects the number of heaviest users (the paper uses 50). Users
// with zero processor-days are skipped. Throws when the system has no jobs.
UserAnalysis AnalyzeUsers(const Trace& trace, SystemId system, int top_n = 50);

}  // namespace hpcfail::core
