#include "core/export.h"

#include <cmath>

#include <filesystem>
#include <fstream>
#include <ostream>

namespace hpcfail::core {
namespace {

void WriteConditionalRow(std::ostream& os, const std::string& label,
                         const ConditionalResult& r) {
  os << label << ',' << r.conditional.estimate << ',' << r.conditional.ci_low
     << ',' << r.conditional.ci_high << ',' << r.baseline.estimate << ','
     << (std::isfinite(r.factor) ? r.factor : 0.0) << ','
     << r.test.p_value << ',' << r.num_triggers << '\n';
}

}  // namespace

void ExportTriggerSeries(std::ostream& os, const WindowAnalyzer& analyzer,
                         Scope scope, TimeSec window) {
  os.precision(10);
  os << "trigger,conditional,ci_low,ci_high,baseline,factor,p_value,"
        "triggers\n";
  for (FailureCategory c : AllFailureCategories()) {
    const ConditionalResult r = analyzer.Compare(
        EventFilter::Of(c), EventFilter::Any(), scope, window);
    WriteConditionalRow(os, std::string(ToString(c)), r);
  }
}

void ExportPairwiseSeries(std::ostream& os, const WindowAnalyzer& analyzer,
                          Scope scope, TimeSec window) {
  os.precision(10);
  os << "type,after_same_type,after_any,baseline,same_over_baseline\n";
  for (FailureCategory c : AllFailureCategories()) {
    const ConditionalResult same = analyzer.Compare(
        EventFilter::Of(c), EventFilter::Of(c), scope, window);
    const ConditionalResult any = analyzer.Compare(
        EventFilter::Any(), EventFilter::Of(c), scope, window);
    os << ToString(c) << ',' << same.conditional.estimate << ','
       << any.conditional.estimate << ',' << same.baseline.estimate << ','
       << (std::isfinite(same.factor) ? same.factor : 0.0) << '\n';
  }
}

void ExportNodeCounts(std::ostream& os, const EventIndex& index,
                      SystemId system) {
  os << "node,failures\n";
  const std::vector<int> counts =
      index.NodeCounts(system, EventFilter::Any());
  for (std::size_t n = 0; n < counts.size(); ++n) {
    os << n << ',' << counts[n] << '\n';
  }
}

void ExportComponentImpact(std::ostream& os,
                           const std::vector<ComponentImpact>& impacts,
                           const std::string& trigger_label) {
  os.precision(10);
  os << "trigger,component,conditional,baseline,factor,p_value\n";
  for (const ComponentImpact& ci : impacts) {
    os << trigger_label << ',' << ci.component << ','
       << ci.month.conditional.estimate << ',' << ci.month.baseline.estimate
       << ',' << (std::isfinite(ci.month.factor) ? ci.month.factor : 0.0)
       << ',' << ci.month.test.p_value << '\n';
  }
}

void ExportSpaceTime(std::ostream& os,
                     const std::vector<SpaceTimePoint>& points) {
  os << "node,day,problem\n";
  for (const SpaceTimePoint& p : points) {
    os << p.node.value << ','
       << static_cast<double>(p.time) / static_cast<double>(kDay) << ','
       << ToString(p.problem) << '\n';
  }
}

void ExportFluxSeries(std::ostream& os,
                      const std::vector<MonthlyFluxPoint>& series,
                      const std::string& name) {
  os.precision(10);
  os << "series,month,neutron_counts,failure_probability,failing_nodes\n";
  for (const MonthlyFluxPoint& p : series) {
    os << name << ',' << p.month << ',' << p.avg_neutron_counts << ','
       << p.failure_probability << ',' << p.failing_nodes << '\n';
  }
}

void WriteFile(const std::string& path, const std::string& contents) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream os(p);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  os << contents;
  if (!os) throw std::runtime_error("write failed: " + path);
}

}  // namespace hpcfail::core
