// Section IX / Fig. 14: cosmic radiation. Monthly DRAM / CPU failure
// probability as a function of monthly average neutron counts, with Pearson
// correlation and a Poisson-regression significance check.
#pragma once

#include <vector>

#include "core/event_index.h"
#include "stats/correlation.h"
#include "stats/glm.h"

namespace hpcfail::core {

// One point of a Fig. 14 series.
struct MonthlyFluxPoint {
  int month = 0;                   // months since trace epoch
  double avg_neutron_counts = 0.0;
  // Fraction of the system's nodes that saw >= 1 failure of the target type
  // this month (the paper's "monthly probability of a DRAM failure").
  double failure_probability = 0.0;
  int failing_nodes = 0;
};

struct CosmicAnalysis {
  SystemId system;
  std::vector<MonthlyFluxPoint> dram;  // target = memory failures
  std::vector<MonthlyFluxPoint> cpu;   // target = cpu failures
  // Correlation of monthly probability with monthly flux across months.
  stats::CorrelationResult dram_corr;
  stats::CorrelationResult cpu_corr;
  // Poisson regression of monthly failure counts on flux (offset: nodes).
  stats::GlmFit dram_glm;
  stats::GlmFit cpu_glm;
};

// Requires the trace to carry a neutron series. Throws otherwise.
CosmicAnalysis AnalyzeCosmic(const EventIndex& index, SystemId system);

}  // namespace hpcfail::core
