// Section VIII: how does temperature affect failures? Regression of per-node
// hardware-failure counts on average / maximum / variance of temperature
// (expected: insignificant) and the impact of fan/chiller failures, which
// cause brief extreme temperatures (Fig. 13).
#pragma once

#include <vector>

#include "core/window_analysis.h"
#include "stats/glm.h"

namespace hpcfail::core {

// One regression of failure counts on a single temperature covariate.
struct TemperatureRegression {
  std::string covariate;        // "avg_temp", "max_temp", "temp_var"
  std::string target;           // "hardware", "cpu", "memory"
  stats::GlmFit poisson;
  stats::GlmFit negative_binomial;
  // Convenience: the covariate's p-values in both fits.
  double poisson_p = 1.0;
  double negbin_p = 1.0;
};

// Fits failures(target) ~ covariate for every (covariate, target) pair the
// paper examines. Requires the system to have temperature samples.
std::vector<TemperatureRegression> RegressFailuresOnTemperature(
    const EventIndex& index, SystemId system);

// Fig. 13 (left): hardware-failure probability within day/week/month of a
// fan or chiller failure vs random windows.
struct CoolingImpact {
  std::string trigger;  // "fan" or "chiller"
  ConditionalResult day;
  ConditionalResult week;
  ConditionalResult month;
};
std::vector<CoolingImpact> CoolingFailureImpact(const WindowAnalyzer& analyzer);

// Fig. 13 (right): per-hardware-component month-window probabilities after
// fan/chiller failures (reuses HardwareComponentImpact from power_analysis
// in the benches; declared here for discoverability).
EventFilter FanFilter();
EventFilter ChillerFilter();

}  // namespace hpcfail::core
