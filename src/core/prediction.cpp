#include "core/prediction.h"

#include <algorithm>
#include <set>

namespace hpcfail::core {

FailurePredictor::FailurePredictor(const EventIndex& train,
                                   const PredictorConfig& config)
    : config_(config) {
  const WindowAnalyzer analyzer(train);
  baseline_ =
      analyzer.BaselineProbability(EventFilter::Any(), config.horizon)
          .estimate;
  if (config.type_aware) {
    for (FailureCategory c : AllFailureCategories()) {
      const stats::Proportion p = analyzer.ConditionalProbability(
          EventFilter::Of(c), EventFilter::Any(), Scope::kSameNode,
          config.horizon);
      // Types never seen in training fall back to the baseline; a failure
      // never *reduces* future risk in this model, so sparse types with no
      // observed follow-ups are clamped to the baseline too.
      conditional_[static_cast<std::size_t>(c)] =
          p.trials > 0 ? std::max(p.estimate, baseline_) : baseline_;
    }
  } else {
    const stats::Proportion p = analyzer.ConditionalProbability(
        EventFilter::Any(), EventFilter::Any(), Scope::kSameNode,
        config.horizon);
    conditional_.fill(p.defined() ? p.estimate : baseline_);
  }
}

FailurePredictor FailurePredictor::FromTable(
    const PredictorConfig& config, double baseline,
    const std::array<double, kNumFailureCategories>& conditional) {
  FailurePredictor p;
  p.config_ = config;
  p.baseline_ = baseline;
  p.conditional_ = conditional;
  return p;
}

double FailurePredictor::Score(std::optional<FailureCategory> last_type,
                               std::optional<TimeSec> last_time,
                               TimeSec now) const {
  if (!last_type || !last_time || now - *last_time > config_.memory) {
    return baseline_;
  }
  return conditional_[static_cast<std::size_t>(*last_type)];
}

PredictionEvaluation EvaluatePredictor(const FailurePredictor& predictor,
                                       const EventIndex& eval,
                                       double threshold) {
  PredictionEvaluation out;
  out.threshold = threshold;
  if (eval.Count(EventFilter::Any()) == 0) return out;  // nothing to predict
  const TimeSec horizon = predictor.config().horizon;
  for (SystemId sys : eval.systems()) {
    const SystemConfig& config = eval.trace().system(sys);
    // Per-node failure times/types, in time order, read straight from the
    // store's (start, node, category) columns.
    std::vector<std::vector<std::pair<TimeSec, FailureCategory>>> per_node(
        static_cast<std::size_t>(config.num_nodes));
    const SystemEventStore& se = eval.store(sys);
    for (std::size_t i = 0; i < se.size(); ++i) {
      per_node[static_cast<std::size_t>(se.nodes[i])].emplace_back(
          se.starts[i], static_cast<FailureCategory>(se.cats[i]));
    }
    for (int n = 0; n < config.num_nodes; ++n) {
      const auto& events = per_node[static_cast<std::size_t>(n)];
      std::size_t last = 0;  // index of the last event with time <= t
      std::size_t next = 0;  // index of the first event with time > t
      for (TimeSec t = config.observed.begin;
           t + horizon <= config.observed.end; t += kDay) {
        while (next < events.size() && events[next].first <= t) {
          last = next;
          ++next;
        }
        std::optional<FailureCategory> last_type;
        std::optional<TimeSec> last_time;
        if (next > 0) {
          last_type = events[last].second;
          last_time = events[last].first;
        }
        const double score = predictor.Score(last_type, last_time, t);
        const bool alarm = score >= threshold;
        // Ground truth: any failure in (t, t + horizon].
        bool fails = false;
        for (std::size_t i = next; i < events.size(); ++i) {
          if (events[i].first > t + horizon) break;
          fails = true;
          break;
        }
        if (alarm && fails) ++out.true_positives;
        else if (alarm && !fails) ++out.false_positives;
        else if (!alarm && fails) ++out.false_negatives;
        else ++out.true_negatives;
      }
    }
  }
  const double tp = static_cast<double>(out.true_positives);
  const double fp = static_cast<double>(out.false_positives);
  const double fn = static_cast<double>(out.false_negatives);
  const double slots = tp + fp + fn + static_cast<double>(out.true_negatives);
  out.precision = tp + fp > 0.0 ? tp / (tp + fp) : 0.0;
  out.recall = tp + fn > 0.0 ? tp / (tp + fn) : 0.0;
  out.f1 = out.precision + out.recall > 0.0
               ? 2.0 * out.precision * out.recall /
                     (out.precision + out.recall)
               : 0.0;
  out.alarm_rate = slots > 0.0 ? (tp + fp) / slots : 0.0;
  return out;
}

std::vector<PredictionEvaluation> SweepPredictor(
    const FailurePredictor& predictor, const EventIndex& eval) {
  std::set<double> thresholds;
  thresholds.insert(predictor.baseline() * 1.001);
  for (FailureCategory c : AllFailureCategories()) {
    thresholds.insert(predictor.conditional(c));
  }
  std::vector<PredictionEvaluation> out;
  for (double t : thresholds) {
    out.push_back(EvaluatePredictor(predictor, eval, t));
  }
  return out;
}

}  // namespace hpcfail::core
