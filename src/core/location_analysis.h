// Section IV.C: does a node's physical location matter? The paper "checked
// whether the location in the machine room or the location of a node within
// a rack played any role, but ... could not find any clear patterns". This
// module runs that check: failure rates by position-in-rack and by machine-
// room row/column, each with a chi-square test for equal rates.
#pragma once

#include <vector>

#include "core/event_index.h"
#include "stats/chi_square.h"

namespace hpcfail::core {

struct LocationBucket {
  int key = 0;          // position-in-rack, room row, or room column
  int nodes = 0;        // nodes in this bucket
  long long failures = 0;
  double failures_per_node = 0.0;
};

struct LocationAnalysis {
  SystemId system;
  std::vector<LocationBucket> by_position_in_rack;
  std::vector<LocationBucket> by_room_row;
  std::vector<LocationBucket> by_room_col;
  stats::ChiSquareResult position_test;  // H0: equal rates per shelf
  stats::ChiSquareResult row_test;
  stats::ChiSquareResult col_test;
  // Same tests with the most failure-prone node removed: node 0 sits at a
  // fixed shelf/row and would otherwise masquerade as a location effect.
  stats::ChiSquareResult position_test_excl_top;
  stats::ChiSquareResult row_test_excl_top;
  stats::ChiSquareResult col_test_excl_top;
};

// Requires the system to have a machine layout. Throws otherwise.
LocationAnalysis AnalyzeLocation(const EventIndex& index, SystemId system);

}  // namespace hpcfail::core
