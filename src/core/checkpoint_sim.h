// Checkpoint/restart simulator: replays an application against the failure
// records of a trace and measures the wall-clock cost of a checkpointing
// policy. This closes the loop on the paper's motivation — Section I/III
// argue failure correlations should inform checkpoint scheduling; the
// simulator quantifies how much an adaptive, correlation-aware policy
// actually saves over a static-interval one on trace data.
#pragma once

#include <functional>
#include <vector>

#include "core/event_index.h"

namespace hpcfail::core {

// A checkpointing policy returns the next checkpoint interval given the
// time since the application's node set last failed (TimeSec max when it
// never failed) and the category of that last failure.
using CheckpointPolicy = std::function<TimeSec(
    TimeSec since_last_failure, std::optional<FailureCategory> last_type)>;

// Static-interval policy.
CheckpointPolicy StaticPolicy(TimeSec interval);

// Correlation-aware policy: `elevated_interval` while within `memory` of a
// failure whose category is in `triggers` (empty = any category), else
// `base_interval` (the paper's insight: hazard is elevated after failures,
// especially environment/network ones).
CheckpointPolicy AdaptivePolicy(TimeSec base_interval,
                                TimeSec elevated_interval, TimeSec memory,
                                std::vector<FailureCategory> triggers = {});

struct CheckpointSimResult {
  // All times in seconds of wall clock.
  TimeSec useful_work = 0;      // progress retained
  TimeSec checkpoint_time = 0;  // spent writing checkpoints
  TimeSec lost_work = 0;        // progress discarded by failures
  TimeSec restart_time = 0;     // spent restarting after failures
  long long checkpoints = 0;
  long long failures = 0;
  double overhead = 0.0;  // 1 - useful_work / wall_clock
};

struct CheckpointSimConfig {
  // Nodes the application occupies; a failure of any of them kills the run
  // back to the last checkpoint.
  std::vector<NodeId> nodes;
  TimeSec checkpoint_cost = 6 * kMinute;
  TimeSec restart_cost = 10 * kMinute;
  // Portion of the trace to simulate over.
  TimeInterval window;
};

// Replays the policy against the failures of `system` in the trace.
// Deterministic: no randomness, pure replay.
CheckpointSimResult SimulateCheckpointing(const EventIndex& index,
                                          SystemId system,
                                          const CheckpointSimConfig& config,
                                          const CheckpointPolicy& policy);

}  // namespace hpcfail::core
