#include "core/simd.h"

#include <cstdlib>
#include <cstring>
#include <string_view>

#include "trace/failure.h"

#if HPCFAIL_SIMD_ENABLED && (defined(__x86_64__) || defined(_M_X64))
#define HPCFAIL_SIMD_X86 1
#include <immintrin.h>
#else
#define HPCFAIL_SIMD_X86 0
#endif

#if HPCFAIL_SIMD_ENABLED && defined(__ARM_NEON)
#define HPCFAIL_SIMD_NEON 1
#include <arm_neon.h>
#else
#define HPCFAIL_SIMD_NEON 0
#endif

namespace hpcfail::core::simd {
namespace {

// Highest packed subcategory value (1 + enum) each category admits; 0 for
// categories with no subcategory. Indexed by the FailureCategory byte, so
// the kernels never re-derive the pairing rule per row. The enum order is a
// load-bearing part of the packed encoding; pin it.
static_assert(static_cast<int>(FailureCategory::kEnvironment) == 0);
static_assert(static_cast<int>(FailureCategory::kHardware) == 1);
static_assert(static_cast<int>(FailureCategory::kHuman) == 2);
static_assert(static_cast<int>(FailureCategory::kNetwork) == 3);
static_assert(static_cast<int>(FailureCategory::kSoftware) == 4);
static_assert(static_cast<int>(FailureCategory::kUndetermined) == 5);
static_assert(kNumFailureCategories == 6);
constexpr std::uint8_t kMaxPackedSub[kNumFailureCategories] = {
    static_cast<std::uint8_t>(kNumEnvironmentEvents),   // environment
    static_cast<std::uint8_t>(kNumHardwareComponents),  // hardware
    0,                                                  // human
    0,                                                  // network
    static_cast<std::uint8_t>(kNumSoftwareComponents),  // software
    0,                                                  // undetermined
};

// ---------------------------------------------------------------------------
// Scalar reference implementations. Every vector level must reproduce these
// bit-for-bit; tests/test_simd_kernels.cpp enforces it.

std::size_t ScalarCountMatches(const std::uint8_t* cats,
                               const std::uint8_t* subs, std::size_t n,
                               std::uint8_t cat, std::uint8_t sub) {
  std::size_t count = 0;
  if (sub == 0) {
    for (std::size_t i = 0; i < n; ++i) {
      count += static_cast<std::size_t>(cats[i] == cat);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      count += static_cast<std::size_t>((cats[i] == cat) & (subs[i] == sub));
    }
  }
  return count;
}

std::size_t ScalarFindNextMatch(const std::uint8_t* cats,
                                const std::uint8_t* subs, std::size_t n,
                                std::size_t from, std::uint8_t cat,
                                std::uint8_t sub) {
  if (sub == 0) {
    for (std::size_t i = from; i < n; ++i) {
      if (cats[i] == cat) return i;
    }
    return n;
  }
  for (std::size_t i = from; i < n; ++i) {
    if (cats[i] == cat && subs[i] == sub) return i;
  }
  return n;
}

bool ScalarAnyPeerMatch(const std::int32_t* nodes, const std::uint8_t* cats,
                        const std::uint8_t* subs, std::size_t n,
                        std::int32_t self, ByteFilter filter) {
  switch (filter.mode) {
    case ByteFilter::kEverything:
      for (std::size_t i = 0; i < n; ++i) {
        if (nodes[i] != self) return true;
      }
      return false;
    case ByteFilter::kCat:
      for (std::size_t i = 0; i < n; ++i) {
        if (nodes[i] != self && cats[i] == filter.cat) return true;
      }
      return false;
    case ByteFilter::kCatSub:
      for (std::size_t i = 0; i < n; ++i) {
        if (nodes[i] != self && cats[i] == filter.cat &&
            subs[i] == filter.sub) {
          return true;
        }
      }
      return false;
  }
  return false;
}

void ScalarMarkMatchingNodes(const std::int32_t* nodes,
                             const std::uint8_t* cats,
                             const std::uint8_t* subs, std::size_t n,
                             ByteFilter filter, std::uint64_t* bitmap) {
  switch (filter.mode) {
    case ByteFilter::kEverything:
      for (std::size_t i = 0; i < n; ++i) {
        const auto node = static_cast<std::uint32_t>(nodes[i]);
        bitmap[node >> 6] |= std::uint64_t{1} << (node & 63);
      }
      return;
    case ByteFilter::kCat:
      for (std::size_t i = 0; i < n; ++i) {
        if (cats[i] == filter.cat) {
          const auto node = static_cast<std::uint32_t>(nodes[i]);
          bitmap[node >> 6] |= std::uint64_t{1} << (node & 63);
        }
      }
      return;
    case ByteFilter::kCatSub:
      for (std::size_t i = 0; i < n; ++i) {
        if (cats[i] == filter.cat && subs[i] == filter.sub) {
          const auto node = static_cast<std::uint32_t>(nodes[i]);
          bitmap[node >> 6] |= std::uint64_t{1} << (node & 63);
        }
      }
      return;
  }
}

bool RowValid(std::int64_t start, std::int64_t end, std::int32_t node,
              std::uint8_t cat, std::uint8_t sub, std::int32_t num_nodes) {
  if (node < 0 || node >= num_nodes) return false;
  if (end < start) return false;
  if (cat >= kNumFailureCategories) return false;
  return sub <= kMaxPackedSub[cat];
}

std::size_t ScalarValidateBlock(const std::int64_t* starts,
                                const std::int64_t* ends,
                                const std::int32_t* nodes,
                                const std::uint8_t* cats,
                                const std::uint8_t* subs, std::size_t n,
                                std::int32_t num_nodes) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!RowValid(starts[i], ends[i], nodes[i], cats[i], subs[i],
                  num_nodes)) {
      return i;
    }
  }
  return n;
}

std::uint32_t ScalarCategoryMask(const std::uint8_t* cats, std::size_t n) {
  std::uint32_t mask = 0;
  for (std::size_t i = 0; i < n; ++i) mask |= 1u << cats[i];
  return mask;
}

constexpr KernelTable kScalarTable = {
    Level::kScalar,        ScalarCountMatches,      ScalarFindNextMatch,
    ScalarAnyPeerMatch,    ScalarMarkMatchingNodes, ScalarValidateBlock,
    ScalarCategoryMask,
};

#if HPCFAIL_SIMD_X86
// ---------------------------------------------------------------------------
// SSE2 (x86-64 baseline — always available, no extra flags).

std::size_t Sse2CountMatches(const std::uint8_t* cats,
                             const std::uint8_t* subs, std::size_t n,
                             std::uint8_t cat, std::uint8_t sub) {
  const __m128i vcat = _mm_set1_epi8(static_cast<char>(cat));
  const __m128i vsub = _mm_set1_epi8(static_cast<char>(sub));
  const __m128i zero = _mm_setzero_si128();
  std::size_t total = 0;
  std::size_t i = 0;
  while (i + 16 <= n) {
    // 0xFF lanes subtract as -1; flush through SAD before 255 iterations
    // can overflow a byte accumulator.
    __m128i acc = zero;
    int iters = 0;
    for (; i + 16 <= n && iters < 255; i += 16, ++iters) {
      __m128i m = _mm_cmpeq_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(cats + i)), vcat);
      if (sub != 0) {
        m = _mm_and_si128(
            m, _mm_cmpeq_epi8(
                   _mm_loadu_si128(reinterpret_cast<const __m128i*>(subs + i)),
                   vsub));
      }
      acc = _mm_sub_epi8(acc, m);
    }
    const __m128i sad = _mm_sad_epu8(acc, zero);
    total += static_cast<std::size_t>(_mm_cvtsi128_si64(sad)) +
             static_cast<std::size_t>(
                 _mm_cvtsi128_si64(_mm_unpackhi_epi64(sad, sad)));
  }
  return total + ScalarCountMatches(cats + i, subs + i, n - i, cat, sub);
}

std::size_t Sse2FindNextMatch(const std::uint8_t* cats,
                              const std::uint8_t* subs, std::size_t n,
                              std::size_t from, std::uint8_t cat,
                              std::uint8_t sub) {
  const __m128i vcat = _mm_set1_epi8(static_cast<char>(cat));
  const __m128i vsub = _mm_set1_epi8(static_cast<char>(sub));
  std::size_t i = from;
  for (; i + 16 <= n; i += 16) {
    __m128i m = _mm_cmpeq_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cats + i)), vcat);
    if (sub != 0) {
      m = _mm_and_si128(
          m, _mm_cmpeq_epi8(
                 _mm_loadu_si128(reinterpret_cast<const __m128i*>(subs + i)),
                 vsub));
    }
    const int mask = _mm_movemask_epi8(m);
    if (mask != 0) {
      return i + static_cast<std::size_t>(__builtin_ctz(
                     static_cast<unsigned>(mask)));
    }
  }
  return ScalarFindNextMatch(cats, subs, n, i, cat, sub);
}

// Byte mask of rows in [i, i+16) matching `filter` (kEverything handled by
// the callers before the loop).
inline int Sse2MatchMask16(const std::uint8_t* cats, const std::uint8_t* subs,
                           std::size_t i, ByteFilter filter) {
  __m128i m = _mm_cmpeq_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(cats + i)),
      _mm_set1_epi8(static_cast<char>(filter.cat)));
  if (filter.mode == ByteFilter::kCatSub) {
    m = _mm_and_si128(
        m, _mm_cmpeq_epi8(
               _mm_loadu_si128(reinterpret_cast<const __m128i*>(subs + i)),
               _mm_set1_epi8(static_cast<char>(filter.sub))));
  }
  return _mm_movemask_epi8(m);
}

bool Sse2AnyPeerMatch(const std::int32_t* nodes, const std::uint8_t* cats,
                      const std::uint8_t* subs, std::size_t n,
                      std::int32_t self, ByteFilter filter) {
  if (filter.mode == ByteFilter::kEverything) {
    return ScalarAnyPeerMatch(nodes, cats, subs, n, self, filter);
  }
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    unsigned mask = static_cast<unsigned>(Sse2MatchMask16(cats, subs, i,
                                                          filter));
    while (mask != 0) {
      const std::size_t b = static_cast<std::size_t>(__builtin_ctz(mask));
      if (nodes[i + b] != self) return true;
      mask &= mask - 1;
    }
  }
  return ScalarAnyPeerMatch(nodes + i, cats + i, subs + i, n - i, self,
                            filter);
}

void Sse2MarkMatchingNodes(const std::int32_t* nodes, const std::uint8_t* cats,
                           const std::uint8_t* subs, std::size_t n,
                           ByteFilter filter, std::uint64_t* bitmap) {
  if (filter.mode == ByteFilter::kEverything) {
    ScalarMarkMatchingNodes(nodes, cats, subs, n, filter, bitmap);
    return;
  }
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    unsigned mask = static_cast<unsigned>(Sse2MatchMask16(cats, subs, i,
                                                          filter));
    while (mask != 0) {
      const std::size_t b = static_cast<std::size_t>(__builtin_ctz(mask));
      const auto node = static_cast<std::uint32_t>(nodes[i + b]);
      bitmap[node >> 6] |= std::uint64_t{1} << (node & 63);
      mask &= mask - 1;
    }
  }
  ScalarMarkMatchingNodes(nodes + i, cats + i, subs + i, n - i, filter,
                          bitmap);
}

std::size_t Sse2ValidateBlock(const std::int64_t* starts,
                              const std::int64_t* ends,
                              const std::int32_t* nodes,
                              const std::uint8_t* cats,
                              const std::uint8_t* subs, std::size_t n,
                              std::int32_t num_nodes) {
  // Select max-packed-sub per lane with three compares (no pshufb in SSE2):
  // categories 2, 3 and 5 admit no subcategory, so their lanes stay 0.
  const __m128i vc_env = _mm_set1_epi8(0);
  const __m128i vc_hw = _mm_set1_epi8(1);
  const __m128i vc_sw = _mm_set1_epi8(4);
  const __m128i vmax_env = _mm_set1_epi8(static_cast<char>(kMaxPackedSub[0]));
  const __m128i vmax_hw = _mm_set1_epi8(static_cast<char>(kMaxPackedSub[1]));
  const __m128i vmax_sw = _mm_set1_epi8(static_cast<char>(kMaxPackedSub[4]));
  const __m128i vfive = _mm_set1_epi8(5);
  const __m128i vzero = _mm_setzero_si128();
  const __m128i vnum = _mm_set1_epi32(num_nodes);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cats + i));
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(subs + i));
    // cat <= 5  <=>  max_epu8(cat, 5) == 5.
    const __m128i cat_ok = _mm_cmpeq_epi8(_mm_max_epu8(c, vfive), vfive);
    __m128i maxsub = _mm_and_si128(_mm_cmpeq_epi8(c, vc_env), vmax_env);
    maxsub = _mm_or_si128(maxsub,
                          _mm_and_si128(_mm_cmpeq_epi8(c, vc_hw), vmax_hw));
    maxsub = _mm_or_si128(maxsub,
                          _mm_and_si128(_mm_cmpeq_epi8(c, vc_sw), vmax_sw));
    // sub <= maxsub  <=>  min_epu8(sub, maxsub) == sub.
    const __m128i sub_ok = _mm_cmpeq_epi8(_mm_min_epu8(s, maxsub), s);
    unsigned ok = static_cast<unsigned>(
        _mm_movemask_epi8(_mm_and_si128(cat_ok, sub_ok)));
    // Nodes: 4 lanes of int32 per vector, 4 vectors per 16-record chunk.
    for (int v = 0; v < 4; ++v) {
      const __m128i nd = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(nodes + i + 4 * v));
      // 0 <= node < num_nodes: node > -1 and num_nodes > node.
      const __m128i node_ok = _mm_and_si128(
          _mm_cmpgt_epi32(nd, _mm_sub_epi32(vzero, _mm_set1_epi32(1))),
          _mm_cmpgt_epi32(vnum, nd));
      const unsigned lanes = static_cast<unsigned>(
          _mm_movemask_ps(_mm_castsi128_ps(node_ok)));
      // Spread the 4 lane bits back onto the 4 record positions.
      unsigned spread = 0;
      for (int l = 0; l < 4; ++l) {
        if ((lanes >> l) & 1u) spread |= 1u << l;
      }
      ok &= ~(0xFu << (4 * v)) | (spread << (4 * v));
    }
    // Times: no 64-bit compare in SSE2; scalar over the chunk.
    for (int r = 0; r < 16; ++r) {
      if (ends[i + static_cast<std::size_t>(r)] <
          starts[i + static_cast<std::size_t>(r)]) {
        ok &= ~(1u << r);
      }
    }
    if (ok != 0xFFFFu) {
      return i + static_cast<std::size_t>(__builtin_ctz(~ok & 0xFFFFu));
    }
  }
  const std::size_t tail =
      ScalarValidateBlock(starts + i, ends + i, nodes + i, cats + i, subs + i,
                          n - i, num_nodes);
  return i + tail;
}

std::uint32_t Sse2CategoryMask(const std::uint8_t* cats, std::size_t n) {
  std::uint32_t mask = 0;
  std::size_t i = 0;
  for (; i + 16 <= n && mask != 0x3Fu; i += 16) {
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cats + i));
    for (std::uint8_t cat = 0; cat < kNumFailureCategories; ++cat) {
      if ((mask >> cat) & 1u) continue;
      if (_mm_movemask_epi8(_mm_cmpeq_epi8(
              c, _mm_set1_epi8(static_cast<char>(cat)))) != 0) {
        mask |= 1u << cat;
      }
    }
  }
  return mask | ScalarCategoryMask(cats + i, n - i);
}

constexpr KernelTable kSse2Table = {
    Level::kSse2,        Sse2CountMatches,      Sse2FindNextMatch,
    Sse2AnyPeerMatch,    Sse2MarkMatchingNodes, Sse2ValidateBlock,
    Sse2CategoryMask,
};

// ---------------------------------------------------------------------------
// AVX2, compiled with a function target attribute so the translation unit
// needs no global -mavx2; selected only when __builtin_cpu_supports agrees.

#define HPCFAIL_AVX2 __attribute__((target("avx2")))

HPCFAIL_AVX2 std::size_t Avx2CountMatches(const std::uint8_t* cats,
                                          const std::uint8_t* subs,
                                          std::size_t n, std::uint8_t cat,
                                          std::uint8_t sub) {
  const __m256i vcat = _mm256_set1_epi8(static_cast<char>(cat));
  const __m256i vsub = _mm256_set1_epi8(static_cast<char>(sub));
  const __m256i zero = _mm256_setzero_si256();
  std::size_t total = 0;
  std::size_t i = 0;
  while (i + 32 <= n) {
    __m256i acc = zero;
    int iters = 0;
    for (; i + 32 <= n && iters < 255; i += 32, ++iters) {
      __m256i m = _mm256_cmpeq_epi8(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cats + i)),
          vcat);
      if (sub != 0) {
        m = _mm256_and_si256(
            m, _mm256_cmpeq_epi8(_mm256_loadu_si256(
                                     reinterpret_cast<const __m256i*>(subs +
                                                                      i)),
                                 vsub));
      }
      acc = _mm256_sub_epi8(acc, m);
    }
    const __m256i sad = _mm256_sad_epu8(acc, zero);
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), sad);
    total += lanes[0] + lanes[1] + lanes[2] + lanes[3];
  }
  return total + ScalarCountMatches(cats + i, subs + i, n - i, cat, sub);
}

HPCFAIL_AVX2 std::size_t Avx2FindNextMatch(const std::uint8_t* cats,
                                           const std::uint8_t* subs,
                                           std::size_t n, std::size_t from,
                                           std::uint8_t cat,
                                           std::uint8_t sub) {
  const __m256i vcat = _mm256_set1_epi8(static_cast<char>(cat));
  const __m256i vsub = _mm256_set1_epi8(static_cast<char>(sub));
  std::size_t i = from;
  for (; i + 32 <= n; i += 32) {
    __m256i m = _mm256_cmpeq_epi8(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cats + i)), vcat);
    if (sub != 0) {
      m = _mm256_and_si256(
          m, _mm256_cmpeq_epi8(
                 _mm256_loadu_si256(
                     reinterpret_cast<const __m256i*>(subs + i)),
                 vsub));
    }
    const unsigned mask = static_cast<unsigned>(_mm256_movemask_epi8(m));
    if (mask != 0) return i + static_cast<std::size_t>(__builtin_ctz(mask));
  }
  return ScalarFindNextMatch(cats, subs, n, i, cat, sub);
}

HPCFAIL_AVX2 inline unsigned Avx2MatchMask32(const std::uint8_t* cats,
                                             const std::uint8_t* subs,
                                             std::size_t i,
                                             ByteFilter filter) {
  __m256i m = _mm256_cmpeq_epi8(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cats + i)),
      _mm256_set1_epi8(static_cast<char>(filter.cat)));
  if (filter.mode == ByteFilter::kCatSub) {
    m = _mm256_and_si256(
        m, _mm256_cmpeq_epi8(
               _mm256_loadu_si256(reinterpret_cast<const __m256i*>(subs + i)),
               _mm256_set1_epi8(static_cast<char>(filter.sub))));
  }
  return static_cast<unsigned>(_mm256_movemask_epi8(m));
}

HPCFAIL_AVX2 bool Avx2AnyPeerMatch(const std::int32_t* nodes,
                                   const std::uint8_t* cats,
                                   const std::uint8_t* subs, std::size_t n,
                                   std::int32_t self, ByteFilter filter) {
  if (filter.mode == ByteFilter::kEverything) {
    return ScalarAnyPeerMatch(nodes, cats, subs, n, self, filter);
  }
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    unsigned mask = Avx2MatchMask32(cats, subs, i, filter);
    while (mask != 0) {
      const std::size_t b = static_cast<std::size_t>(__builtin_ctz(mask));
      if (nodes[i + b] != self) return true;
      mask &= mask - 1;
    }
  }
  return ScalarAnyPeerMatch(nodes + i, cats + i, subs + i, n - i, self,
                            filter);
}

HPCFAIL_AVX2 void Avx2MarkMatchingNodes(const std::int32_t* nodes,
                                        const std::uint8_t* cats,
                                        const std::uint8_t* subs,
                                        std::size_t n, ByteFilter filter,
                                        std::uint64_t* bitmap) {
  if (filter.mode == ByteFilter::kEverything) {
    ScalarMarkMatchingNodes(nodes, cats, subs, n, filter, bitmap);
    return;
  }
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    unsigned mask = Avx2MatchMask32(cats, subs, i, filter);
    while (mask != 0) {
      const std::size_t b = static_cast<std::size_t>(__builtin_ctz(mask));
      const auto node = static_cast<std::uint32_t>(nodes[i + b]);
      bitmap[node >> 6] |= std::uint64_t{1} << (node & 63);
      mask &= mask - 1;
    }
  }
  ScalarMarkMatchingNodes(nodes + i, cats + i, subs + i, n - i, filter,
                          bitmap);
}

HPCFAIL_AVX2 std::size_t Avx2ValidateBlock(const std::int64_t* starts,
                                           const std::int64_t* ends,
                                           const std::int32_t* nodes,
                                           const std::uint8_t* cats,
                                           const std::uint8_t* subs,
                                           std::size_t n,
                                           std::int32_t num_nodes) {
  // Per-lane max-packed-sub via vpshufb: the table repeats in both 128-bit
  // lanes; category bytes 0..5 index it directly, anything larger fails the
  // cat <= 5 test so its (aliased) table lookup never matters.
  const __m256i table = _mm256_setr_epi8(
      static_cast<char>(kMaxPackedSub[0]), static_cast<char>(kMaxPackedSub[1]),
      static_cast<char>(kMaxPackedSub[2]), static_cast<char>(kMaxPackedSub[3]),
      static_cast<char>(kMaxPackedSub[4]), static_cast<char>(kMaxPackedSub[5]),
      0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
      static_cast<char>(kMaxPackedSub[0]), static_cast<char>(kMaxPackedSub[1]),
      static_cast<char>(kMaxPackedSub[2]), static_cast<char>(kMaxPackedSub[3]),
      static_cast<char>(kMaxPackedSub[4]), static_cast<char>(kMaxPackedSub[5]),
      0, 0, 0, 0, 0, 0, 0, 0, 0, 0);
  const __m256i vfive = _mm256_set1_epi8(5);
  const __m256i vnum = _mm256_set1_epi32(num_nodes);
  const __m256i vminus1 = _mm256_set1_epi32(-1);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cats + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(subs + i));
    const __m256i cat_ok =
        _mm256_cmpeq_epi8(_mm256_max_epu8(c, vfive), vfive);
    const __m256i maxsub = _mm256_shuffle_epi8(table, c);
    const __m256i sub_ok =
        _mm256_cmpeq_epi8(_mm256_min_epu8(s, maxsub), s);
    std::uint32_t ok = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_and_si256(cat_ok, sub_ok)));
    // Nodes: 8 int32 lanes per vector, 4 vectors per 32-record chunk.
    for (int v = 0; v < 4; ++v) {
      const __m256i nd = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(nodes + i + 8 * v));
      const __m256i node_ok = _mm256_and_si256(
          _mm256_cmpgt_epi32(nd, vminus1), _mm256_cmpgt_epi32(vnum, nd));
      const std::uint32_t lanes = static_cast<std::uint32_t>(
          _mm256_movemask_ps(_mm256_castsi256_ps(node_ok)));
      ok &= ~(0xFFu << (8 * v)) | (lanes << (8 * v));
    }
    // Times: 4 int64 lanes per vector, 8 vectors per chunk; end >= start
    // means NOT (start > end).
    for (int v = 0; v < 8; ++v) {
      const __m256i st = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(starts + i + 4 * v));
      const __m256i en = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(ends + i + 4 * v));
      const std::uint32_t bad = static_cast<std::uint32_t>(
          _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(st, en))));
      ok &= ~(bad << (4 * v));
    }
    if (ok != 0xFFFFFFFFu) {
      return i + static_cast<std::size_t>(__builtin_ctz(~ok));
    }
  }
  const std::size_t tail =
      ScalarValidateBlock(starts + i, ends + i, nodes + i, cats + i, subs + i,
                          n - i, num_nodes);
  return i + tail;
}

HPCFAIL_AVX2 std::uint32_t Avx2CategoryMask(const std::uint8_t* cats,
                                            std::size_t n) {
  std::uint32_t mask = 0;
  std::size_t i = 0;
  for (; i + 32 <= n && mask != 0x3Fu; i += 32) {
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cats + i));
    for (std::uint8_t cat = 0; cat < kNumFailureCategories; ++cat) {
      if ((mask >> cat) & 1u) continue;
      if (_mm256_movemask_epi8(_mm256_cmpeq_epi8(
              c, _mm256_set1_epi8(static_cast<char>(cat)))) != 0) {
        mask |= 1u << cat;
      }
    }
  }
  return mask | ScalarCategoryMask(cats + i, n - i);
}

constexpr KernelTable kAvx2Table = {
    Level::kAvx2,        Avx2CountMatches,      Avx2FindNextMatch,
    Avx2AnyPeerMatch,    Avx2MarkMatchingNodes, Avx2ValidateBlock,
    Avx2CategoryMask,
};

bool CpuHasAvx2() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}
#endif  // HPCFAIL_SIMD_X86

#if HPCFAIL_SIMD_NEON
// ---------------------------------------------------------------------------
// NEON (AArch64). Mask extraction uses the shrn-by-4 idiom: narrow the
// 8-bit lane mask to one nibble per lane, read the result as a u64 where
// matching lane i contributes nibble 0xF at bit 4*i.

inline std::uint64_t NeonNibbleMask(uint8x16_t m) {
  const uint8x8_t narrowed =
      vshrn_n_u16(vreinterpretq_u16_u8(m), 4);
  return vget_lane_u64(vreinterpret_u64_u8(narrowed), 0);
}

inline uint8x16_t NeonMatch16(const std::uint8_t* cats,
                              const std::uint8_t* subs, std::size_t i,
                              std::uint8_t cat, std::uint8_t sub) {
  uint8x16_t m = vceqq_u8(vld1q_u8(cats + i), vdupq_n_u8(cat));
  if (sub != 0) {
    m = vandq_u8(m, vceqq_u8(vld1q_u8(subs + i), vdupq_n_u8(sub)));
  }
  return m;
}

std::size_t NeonCountMatches(const std::uint8_t* cats,
                             const std::uint8_t* subs, std::size_t n,
                             std::uint8_t cat, std::uint8_t sub) {
  std::size_t total = 0;
  std::size_t i = 0;
  while (i + 16 <= n) {
    uint8x16_t acc = vdupq_n_u8(0);
    int iters = 0;
    for (; i + 16 <= n && iters < 255; i += 16, ++iters) {
      acc = vsubq_u8(acc, NeonMatch16(cats, subs, i, cat, sub));
    }
    total += vaddlvq_u8(acc);
  }
  return total + ScalarCountMatches(cats + i, subs + i, n - i, cat, sub);
}

std::size_t NeonFindNextMatch(const std::uint8_t* cats,
                              const std::uint8_t* subs, std::size_t n,
                              std::size_t from, std::uint8_t cat,
                              std::uint8_t sub) {
  std::size_t i = from;
  for (; i + 16 <= n; i += 16) {
    const std::uint64_t mask =
        NeonNibbleMask(NeonMatch16(cats, subs, i, cat, sub));
    if (mask != 0) {
      return i + static_cast<std::size_t>(__builtin_ctzll(mask)) / 4;
    }
  }
  return ScalarFindNextMatch(cats, subs, n, i, cat, sub);
}

bool NeonAnyPeerMatch(const std::int32_t* nodes, const std::uint8_t* cats,
                      const std::uint8_t* subs, std::size_t n,
                      std::int32_t self, ByteFilter filter) {
  if (filter.mode == ByteFilter::kEverything) {
    return ScalarAnyPeerMatch(nodes, cats, subs, n, self, filter);
  }
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    std::uint64_t mask =
        NeonNibbleMask(NeonMatch16(cats, subs, i, filter.cat,
                                   filter.mode == ByteFilter::kCatSub
                                       ? filter.sub
                                       : 0));
    while (mask != 0) {
      const std::size_t b =
          static_cast<std::size_t>(__builtin_ctzll(mask)) / 4;
      if (nodes[i + b] != self) return true;
      mask &= ~(std::uint64_t{0xF} << (4 * b));
    }
  }
  return ScalarAnyPeerMatch(nodes + i, cats + i, subs + i, n - i, self,
                            filter);
}

void NeonMarkMatchingNodes(const std::int32_t* nodes, const std::uint8_t* cats,
                           const std::uint8_t* subs, std::size_t n,
                           ByteFilter filter, std::uint64_t* bitmap) {
  if (filter.mode == ByteFilter::kEverything) {
    ScalarMarkMatchingNodes(nodes, cats, subs, n, filter, bitmap);
    return;
  }
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    std::uint64_t mask =
        NeonNibbleMask(NeonMatch16(cats, subs, i, filter.cat,
                                   filter.mode == ByteFilter::kCatSub
                                       ? filter.sub
                                       : 0));
    while (mask != 0) {
      const std::size_t b =
          static_cast<std::size_t>(__builtin_ctzll(mask)) / 4;
      const auto node = static_cast<std::uint32_t>(nodes[i + b]);
      bitmap[node >> 6] |= std::uint64_t{1} << (node & 63);
      mask &= ~(std::uint64_t{0xF} << (4 * b));
    }
  }
  ScalarMarkMatchingNodes(nodes + i, cats + i, subs + i, n - i, filter,
                          bitmap);
}

constexpr KernelTable kNeonTable = {
    Level::kNeon,        NeonCountMatches,      NeonFindNextMatch,
    NeonAnyPeerMatch,    NeonMarkMatchingNodes, ScalarValidateBlock,
    ScalarCategoryMask,
};
#endif  // HPCFAIL_SIMD_NEON

// ---------------------------------------------------------------------------
// Dispatch.

const KernelTable* ResolveOverride(std::string_view want) {
  if (want == "scalar" || want == "off") return &kScalarTable;
#if HPCFAIL_SIMD_X86
  if (want == "sse2") return &kSse2Table;
  if (want == "avx2" && CpuHasAvx2()) return &kAvx2Table;
#endif
#if HPCFAIL_SIMD_NEON
  if (want == "neon") return &kNeonTable;
#endif
  // Unknown or unsupported request: degrade to scalar, never to an illegal
  // instruction.
  return &kScalarTable;
}

const KernelTable* ResolveActive() {
  if (const char* env = std::getenv("HPCFAIL_SIMD");
      env != nullptr && *env != '\0') {
    return ResolveOverride(env);
  }
#if HPCFAIL_SIMD_X86
  if (CpuHasAvx2()) return &kAvx2Table;
  return &kSse2Table;
#elif HPCFAIL_SIMD_NEON
  return &kNeonTable;
#else
  return &kScalarTable;
#endif
}

}  // namespace

const char* ToString(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kSse2: return "sse2";
    case Level::kAvx2: return "avx2";
    case Level::kNeon: return "neon";
  }
  return "invalid";
}

const KernelTable& Active() {
  static const KernelTable* const table = ResolveActive();
  return *table;
}

const KernelTable& Scalar() { return kScalarTable; }

const KernelTable* TableFor(Level level) {
  switch (level) {
    case Level::kScalar:
      return &kScalarTable;
    case Level::kSse2:
#if HPCFAIL_SIMD_X86
      return &kSse2Table;
#else
      return nullptr;
#endif
    case Level::kAvx2:
#if HPCFAIL_SIMD_X86
      return CpuHasAvx2() ? &kAvx2Table : nullptr;
#else
      return nullptr;
#endif
    case Level::kNeon:
#if HPCFAIL_SIMD_NEON
      return &kNeonTable;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

std::vector<Level> SupportedLevels() {
  std::vector<Level> levels = {Level::kScalar};
  for (const Level l : {Level::kSse2, Level::kAvx2, Level::kNeon}) {
    if (TableFor(l) != nullptr) levels.push_back(l);
  }
  return levels;
}

}  // namespace hpcfail::core::simd
