// Time-to-next-failure survival curves: the whole-curve generalization of
// the paper's fixed-window conditional probabilities. For each trigger type
// X, collect the time from every type-X failure to the SAME node's next
// failure (right-censored at the end of observation) and estimate the
// Kaplan-Meier curve; 1 - S(kWeek) recovers the Fig. 1(a) bars, and the
// log-rank test formalizes "environment/network triggers are worse" across
// all horizons simultaneously.
#pragma once

#include <array>

#include "core/event_index.h"
#include "stats/survival.h"

namespace hpcfail::core {

struct TriggerSurvival {
  FailureCategory trigger = FailureCategory::kUndetermined;
  std::vector<stats::SurvivalObservation> observations;  // in hours
  // 1 - S(window): directly comparable to WindowAnalyzer conditionals.
  double failure_within_day = 0.0;
  double failure_within_week = 0.0;
  double median_hours = 0.0;  // median time to next failure (inf possible)
};

struct SurvivalAnalysis {
  std::array<TriggerSurvival, kNumFailureCategories> by_trigger;
  // Log-rank: environment-triggered vs hardware-triggered survival.
  stats::LogRankResult env_vs_hw;
  // Log-rank: network-triggered vs software-triggered survival.
  stats::LogRankResult net_vs_sw;
};

// Analyzes every indexed system's failures pooled. Triggers with fewer than
// 3 observations yield empty curves (probabilities 0, median inf).
SurvivalAnalysis AnalyzeTimeToNextFailure(const EventIndex& index);

}  // namespace hpcfail::core
