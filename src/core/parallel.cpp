#include "core/parallel.h"

#include <atomic>
#include <exception>
#include <stdexcept>

#include "obs/metrics.h"

namespace hpcfail::core {
namespace {

// Registered once; every hot-path touch is a relaxed shard add or a gauge
// store (see obs/metrics.h).
struct PoolMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& tasks_submitted = reg.GetCounter(
      "hpcfail_pool_tasks_submitted_total",
      "Tasks accepted into the shared thread pool queue");
  obs::Counter& tasks_run = reg.GetCounter(
      "hpcfail_pool_tasks_run_total", "Tasks executed by pool workers");
  obs::Counter& tasks_rejected = reg.GetCounter(
      "hpcfail_pool_tasks_rejected_total",
      "Tasks rejected because the pool was shutting down");
  obs::Gauge& queue_depth = reg.GetGauge(
      "hpcfail_pool_queue_depth", "Tasks currently waiting in the pool queue");
  obs::Counter& regions = reg.GetCounter(
      "hpcfail_parallel_regions_total",
      "ParallelFor regions fanned out across the pool");
  obs::Counter& regions_inline = reg.GetCounter(
      "hpcfail_parallel_regions_inline_total",
      "ParallelFor regions run inline (1 thread, tiny loop, or nested)");
  obs::Counter& items = reg.GetCounter(
      "hpcfail_parallel_items_total", "Loop indices executed by ParallelFor");
  obs::Counter& items_stolen = reg.GetCounter(
      "hpcfail_parallel_items_stolen_total",
      "Loop indices claimed by pool helper lanes rather than the caller");

  static PoolMetrics& Get() {
    static PoolMetrics m;
    return m;
  }
};

std::atomic<int> g_default_threads{0};  // 0 = hardware default

thread_local bool tls_on_worker_thread = false;

// One process-wide pool, created on first parallel use, sized so that the
// caller thread plus the workers saturate the hardware. Never destroyed
// (workers are detached-by-leak at exit) so static-destruction order can't
// race in-flight tasks.
ThreadPool& SharedPool() {
  static ThreadPool* pool =
      new ThreadPool(std::max(1, HardwareThreadCount() - 1));
  return *pool;
}

}  // namespace

int HardwareThreadCount() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int DefaultThreadCount() {
  const int n = g_default_threads.load(std::memory_order_relaxed);
  return n > 0 ? n : HardwareThreadCount();
}

void SetDefaultThreadCount(int n) {
  g_default_threads.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::Submit(std::function<void()> task) {
  PoolMetrics& metrics = PoolMetrics::Get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      metrics.tasks_rejected.Increment();
      return false;
    }
    queue_.push_back(std::move(task));
    metrics.queue_depth.Set(static_cast<double>(queue_.size()));
  }
  metrics.tasks_submitted.Increment();
  cv_.notify_one();
  return true;
}

bool ThreadPool::OnWorkerThread() { return tls_on_worker_thread; }

void ThreadPool::WorkerLoop() {
  tls_on_worker_thread = true;
  PoolMetrics& metrics = PoolMetrics::Get();
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      metrics.queue_depth.Set(static_cast<double>(queue_.size()));
    }
    task();
    metrics.tasks_run.Increment();
  }
}

void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                 int threads) {
  if (n == 0) return;
  int want = threads > 0 ? threads : DefaultThreadCount();
  if (static_cast<std::size_t>(want) > n) want = static_cast<int>(n);
  // Serial path: one thread requested, trivially small loop, or we are
  // already inside a pool worker (nested region) — run inline.
  if (want <= 1 || ThreadPool::OnWorkerThread()) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    PoolMetrics& metrics = PoolMetrics::Get();
    metrics.regions_inline.Increment();
    metrics.items.Add(static_cast<long long>(n));
    return;
  }

  PoolMetrics& metrics = PoolMetrics::Get();
  metrics.regions.Increment();
  ThreadPool& pool = SharedPool();

  // Shared per-call state: an index dispenser, the first exception, and a
  // completion latch counting finished helper tasks.
  struct CallState {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mu;
    std::mutex done_mu;
    std::condition_variable done_cv;
    int helpers_pending = 0;
  };
  auto state = std::make_shared<CallState>();

  // Returns the number of indices this lane executed; lanes aggregate into
  // the item counters once, not per index, to keep the loop body clean.
  const auto drain = [&body, n](CallState& s) -> long long {
    long long executed = 0;
    while (!s.failed.load(std::memory_order_relaxed)) {
      const std::size_t i = s.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        body(i);
        ++executed;
      } catch (...) {
        std::lock_guard<std::mutex> lock(s.error_mu);
        if (!s.error) s.error = std::current_exception();
        s.failed.store(true, std::memory_order_relaxed);
      }
    }
    return executed;
  };

  // The caller acts as one lane; want - 1 helper tasks join it (fewer if the
  // pool is shutting down — correctness never depends on helpers running).
  int helpers = 0;
  for (int i = 0; i < want - 1; ++i) {
    const bool submitted = pool.Submit([state, drain] {
      const long long executed = drain(*state);
      PoolMetrics& m = PoolMetrics::Get();
      m.items.Add(executed);
      m.items_stolen.Add(executed);
      {
        std::lock_guard<std::mutex> lock(state->done_mu);
        --state->helpers_pending;
      }
      state->done_cv.notify_one();
    });
    if (submitted) ++helpers;
  }
  {
    std::lock_guard<std::mutex> lock(state->done_mu);
    state->helpers_pending += helpers;
  }

  metrics.items.Add(drain(*state));

  std::unique_lock<std::mutex> lock(state->done_mu);
  state->done_cv.wait(lock, [&state] { return state->helpers_pending <= 0; });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace hpcfail::core
