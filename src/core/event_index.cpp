#include "core/event_index.h"

#include <algorithm>
#include <stdexcept>

namespace hpcfail::core {
namespace {

// First event with time > t (window semantics are half-open (begin, end]).
std::vector<EventRef>::const_iterator FirstAfter(
    const std::vector<EventRef>& refs, TimeSec t) {
  return std::upper_bound(
      refs.begin(), refs.end(), t,
      [](TimeSec value, const EventRef& ref) { return value < ref.time; });
}

}  // namespace

std::string EventFilter::Describe() const {
  if (hardware) return std::string(ToString(*hardware));
  if (software) return std::string(ToString(*software));
  if (environment) return std::string(ToString(*environment));
  if (category) return std::string(ToString(*category));
  return "any";
}

EventIndex::EventIndex(const Trace& trace, std::span<const SystemId> systems)
    : trace_(&trace) {
  if (systems.empty()) {
    for (const SystemConfig& s : trace.systems()) systems_.push_back(s.id);
  } else {
    systems_.assign(systems.begin(), systems.end());
  }
  for (SystemId id : systems_) {
    SystemEvents se;
    se.id = id;
    se.config = &trace.system(id);
    se.failures = trace.FailuresOfSystem(id);
    const auto num_nodes = static_cast<std::size_t>(se.config->num_nodes);
    se.by_node.resize(num_nodes);
    se.rack_of.assign(num_nodes, RackId{});
    const MachineLayout& layout = se.config->layout;
    int num_racks = 0;
    for (const NodePlacement& p : layout.placements()) {
      se.rack_of[static_cast<std::size_t>(p.node.value)] = p.rack;
      num_racks = std::max(num_racks, p.rack.value + 1);
    }
    se.by_rack.resize(static_cast<std::size_t>(num_racks));
    se.rack_size.assign(static_cast<std::size_t>(num_racks), 0);
    for (const NodePlacement& p : layout.placements()) {
      ++se.rack_size[static_cast<std::size_t>(p.rack.value)];
    }
    se.all.reserve(se.failures.size());
    for (std::uint32_t i = 0; i < se.failures.size(); ++i) {
      const FailureRecord& f = se.failures[i];
      EventRef ref{f.start, f.node, i};
      se.all.push_back(ref);
      se.by_node[static_cast<std::size_t>(f.node.value)].push_back(ref);
      const RackId rack = se.rack_of[static_cast<std::size_t>(f.node.value)];
      if (rack.valid()) {
        se.by_rack[static_cast<std::size_t>(rack.value)].push_back(ref);
      }
    }
    // `failures` is time-sorted already (Trace::Finalize), so the per-node
    // and per-rack lists built in order are sorted too.
    events_.push_back(std::move(se));
  }
}

const EventIndex::SystemEvents* EventIndex::Find(SystemId sys) const {
  for (const SystemEvents& se : events_) {
    if (se.id == sys) return &se;
  }
  return nullptr;
}

const EventIndex::SystemEvents& EventIndex::Get(SystemId sys) const {
  const SystemEvents* se = Find(sys);
  if (se == nullptr) throw std::out_of_range("system not indexed");
  return *se;
}

std::span<const FailureRecord> EventIndex::failures_of(SystemId sys) const {
  return Get(sys).failures;
}

bool EventIndex::AnyAtNode(SystemId sys, NodeId node, TimeInterval window,
                           const EventFilter& filter) const {
  return CountAtNode(sys, node, window, filter) > 0;
}

int EventIndex::CountAtNode(SystemId sys, NodeId node, TimeInterval window,
                            const EventFilter& filter) const {
  const SystemEvents& se = Get(sys);
  const auto& refs = se.by_node.at(static_cast<std::size_t>(node.value));
  int count = 0;
  for (auto it = FirstAfter(refs, window.begin);
       it != refs.end() && it->time <= window.end; ++it) {
    if (filter.Matches(se.failures[it->record])) ++count;
  }
  return count;
}

bool EventIndex::AnyAtRackPeers(SystemId sys, NodeId node, TimeInterval window,
                                const EventFilter& filter) const {
  const SystemEvents& se = Get(sys);
  const RackId rack = se.rack_of.at(static_cast<std::size_t>(node.value));
  if (!rack.valid()) return false;
  const auto& refs = se.by_rack[static_cast<std::size_t>(rack.value)];
  for (auto it = FirstAfter(refs, window.begin);
       it != refs.end() && it->time <= window.end; ++it) {
    if (it->node != node && filter.Matches(se.failures[it->record])) {
      return true;
    }
  }
  return false;
}

bool EventIndex::AnyAtSystemPeers(SystemId sys, NodeId node,
                                  TimeInterval window,
                                  const EventFilter& filter) const {
  const SystemEvents& se = Get(sys);
  for (auto it = FirstAfter(se.all, window.begin);
       it != se.all.end() && it->time <= window.end; ++it) {
    if (it->node != node && filter.Matches(se.failures[it->record])) {
      return true;
    }
  }
  return false;
}

namespace {

// Counts distinct nodes (excluding `self`) with a matching event in the
// window. Windows hold few events, so a flat unique-list beats a hash set.
template <typename FailureVec>
int CountDistinctPeers(const std::vector<EventRef>& refs,
                       const FailureVec& failures, NodeId self,
                       TimeInterval window, const EventFilter& filter) {
  std::vector<std::int32_t> seen;
  for (auto it = FirstAfter(refs, window.begin);
       it != refs.end() && it->time <= window.end; ++it) {
    if (it->node == self) continue;
    if (!filter.Matches(failures[it->record])) continue;
    if (std::find(seen.begin(), seen.end(), it->node.value) == seen.end()) {
      seen.push_back(it->node.value);
    }
  }
  return static_cast<int>(seen.size());
}

}  // namespace

int EventIndex::DistinctRackPeersWithEvent(SystemId sys, NodeId node,
                                           TimeInterval window,
                                           const EventFilter& filter,
                                           int* num_peers) const {
  const SystemEvents& se = Get(sys);
  const RackId rack = se.rack_of.at(static_cast<std::size_t>(node.value));
  if (!rack.valid()) {
    if (num_peers != nullptr) *num_peers = 0;
    return 0;
  }
  if (num_peers != nullptr) {
    *num_peers = std::max(
        0, se.rack_size[static_cast<std::size_t>(rack.value)] - 1);
  }
  const auto& refs = se.by_rack[static_cast<std::size_t>(rack.value)];
  return CountDistinctPeers(refs, se.failures, node, window, filter);
}

int EventIndex::DistinctSystemPeersWithEvent(SystemId sys, NodeId node,
                                             TimeInterval window,
                                             const EventFilter& filter,
                                             int* num_peers) const {
  const SystemEvents& se = Get(sys);
  if (num_peers != nullptr) *num_peers = std::max(0, se.config->num_nodes - 1);
  return CountDistinctPeers(se.all, se.failures, node, window, filter);
}

void EventIndex::ForEach(
    const EventFilter& filter,
    const std::function<void(SystemId, const FailureRecord&)>& fn) const {
  for (const SystemEvents& se : events_) {
    for (const FailureRecord& f : se.failures) {
      if (filter.Matches(f)) fn(se.id, f);
    }
  }
}

long long EventIndex::Count(const EventFilter& filter) const {
  long long count = 0;
  for (const SystemEvents& se : events_) {
    for (const FailureRecord& f : se.failures) {
      if (filter.Matches(f)) ++count;
    }
  }
  return count;
}

std::vector<int> EventIndex::NodeCounts(SystemId sys,
                                        const EventFilter& filter) const {
  const SystemEvents& se = Get(sys);
  std::vector<int> out(se.by_node.size(), 0);
  for (const FailureRecord& f : se.failures) {
    if (filter.Matches(f)) ++out[static_cast<std::size_t>(f.node.value)];
  }
  return out;
}

}  // namespace hpcfail::core
