#include "core/event_index.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "obs/span.h"

namespace hpcfail::core {

std::string EventFilter::Describe() const {
  if (hardware) return std::string(ToString(*hardware));
  if (software) return std::string(ToString(*software));
  if (environment) return std::string(ToString(*environment));
  if (category) return std::string(ToString(*category));
  return "any";
}

EventIndex::EventIndex(const Trace& trace, std::span<const SystemId> systems)
    : EventIndex(trace,
                 std::make_shared<const EventStoreSet>(
                     EventStoreSet::Build(trace, systems)),
                 systems) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  long long indexed = 0;
  for (const SystemEventStore* se : events_) {
    indexed += static_cast<long long>(se->size());
  }
  reg.GetCounter("hpcfail_index_builds_total",
                 "Batch EventIndex store builds")
      .Increment();
  reg.GetCounter("hpcfail_index_records_total",
                 "Failure records indexed by batch EventIndex builds")
      .Add(indexed);
}

EventIndex::EventIndex(const Trace& trace,
                       std::shared_ptr<const EventStoreSet> set,
                       std::span<const SystemId> systems)
    : trace_(&trace), set_(std::move(set)) {
  if (systems.empty()) {
    for (const SystemEventStore& se : set_->stores) systems_.push_back(se.id);
  } else {
    systems_.assign(systems.begin(), systems.end());
  }
  events_.reserve(systems_.size());
  for (SystemId id : systems_) {
    const SystemEventStore* se = set_->Find(id);
    if (se == nullptr) {
      throw std::out_of_range("EventIndex: system has no prebuilt store");
    }
    events_.push_back(se);
  }
}

const SystemEventStore* EventIndex::Find(SystemId sys) const {
  for (const SystemEventStore* se : events_) {
    if (se->id == sys) return se;
  }
  return nullptr;
}

const SystemEventStore& EventIndex::Get(SystemId sys) const {
  const SystemEventStore* se = Find(sys);
  if (se == nullptr) throw std::out_of_range("system not indexed");
  return *se;
}

RecordSpan EventIndex::failures_of(SystemId sys) const {
  return Get(sys).records();
}

bool EventIndex::AnyAtNode(SystemId sys, NodeId node, TimeInterval window,
                           const EventFilter& filter) const {
  return Get(sys).AnyAtNode(node, window, filter);
}

int EventIndex::CountAtNode(SystemId sys, NodeId node, TimeInterval window,
                            const EventFilter& filter) const {
  return Get(sys).CountAtNode(node, window, filter);
}

bool EventIndex::AnyAtRackPeers(SystemId sys, NodeId node, TimeInterval window,
                                const EventFilter& filter) const {
  return Get(sys).AnyAtRackPeers(node, window, filter);
}

bool EventIndex::AnyAtSystemPeers(SystemId sys, NodeId node,
                                  TimeInterval window,
                                  const EventFilter& filter) const {
  return Get(sys).AnyAtSystemPeers(node, window, filter);
}

int EventIndex::DistinctRackPeersWithEvent(SystemId sys, NodeId node,
                                           TimeInterval window,
                                           const EventFilter& filter,
                                           int* num_peers) const {
  return Get(sys).DistinctRackPeersWithEvent(node, window, filter, num_peers);
}

int EventIndex::DistinctSystemPeersWithEvent(SystemId sys, NodeId node,
                                             TimeInterval window,
                                             const EventFilter& filter,
                                             int* num_peers) const {
  return Get(sys).DistinctSystemPeersWithEvent(node, window, filter,
                                               num_peers);
}

void EventIndex::ForEach(
    const EventFilter& filter,
    const std::function<void(SystemId, const FailureRecord&)>& fn) const {
  for (const SystemEventStore* se : events_) {
    // Columnar scan for the match test; only matches materialize a record.
    se->ForEachMatching(filter, [&](std::size_t i) {
      const FailureRecord f = se->Record(i);
      fn(se->id, f);
    });
  }
}

long long EventIndex::Count(const EventFilter& filter) const {
  long long count = 0;
  for (const SystemEventStore* se : events_) {
    count += se->CountMatching(filter);
  }
  return count;
}

std::vector<int> EventIndex::NodeCounts(SystemId sys,
                                        const EventFilter& filter) const {
  return Get(sys).NodeCounts(filter);
}

}  // namespace hpcfail::core
