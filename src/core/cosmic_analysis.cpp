#include "core/cosmic_analysis.h"

#include <stdexcept>
#include <unordered_set>

namespace hpcfail::core {
namespace {

std::vector<MonthlyFluxPoint> BuildSeries(const EventIndex& index,
                                          SystemId system,
                                          const EventFilter& target) {
  const Trace& trace = index.trace();
  const SystemConfig& config = trace.system(system);
  const auto n_months = static_cast<std::size_t>(
      config.observed.duration() / kMonth);
  if (n_months == 0) {
    throw std::invalid_argument("AnalyzeCosmic: trace shorter than a month");
  }
  // Monthly average neutron counts.
  std::vector<double> flux(n_months, 0.0);
  std::vector<int> flux_n(n_months, 0);
  for (const NeutronSample& s : trace.neutron_series()) {
    const TimeSec rel = s.time - config.observed.begin;
    if (rel < 0) continue;
    const auto m = static_cast<std::size_t>(rel / kMonth);
    if (m >= n_months) continue;
    flux[m] += s.counts_per_minute;
    ++flux_n[m];
  }
  // Distinct failing nodes per month.
  std::vector<std::unordered_set<int>> failing(n_months);
  for (const FailureRecord& f : index.failures_of(system)) {
    if (!target.Matches(f)) continue;
    const auto m =
        static_cast<std::size_t>((f.start - config.observed.begin) / kMonth);
    if (m < n_months) failing[m].insert(f.node.value);
  }
  std::vector<MonthlyFluxPoint> out;
  for (std::size_t m = 0; m < n_months; ++m) {
    if (flux_n[m] == 0) continue;  // no flux data for this month
    MonthlyFluxPoint p;
    p.month = static_cast<int>(m);
    p.avg_neutron_counts = flux[m] / flux_n[m];
    p.failing_nodes = static_cast<int>(failing[m].size());
    p.failure_probability =
        static_cast<double>(p.failing_nodes) / config.num_nodes;
    out.push_back(p);
  }
  return out;
}

stats::GlmFit FitFlux(const std::vector<MonthlyFluxPoint>& series,
                      double num_nodes) {
  stats::Matrix x(series.size(), 1);
  std::vector<double> y(series.size());
  stats::GlmOptions opts;
  opts.names = {"neutron_counts"};
  opts.exposure.assign(series.size(), num_nodes);
  for (std::size_t i = 0; i < series.size(); ++i) {
    // Scale counts to thousands: keeps the IRLS design well-conditioned.
    x(i, 0) = series[i].avg_neutron_counts / 1000.0;
    y[i] = series[i].failing_nodes;
  }
  return stats::FitPoisson(x, y, opts);
}

}  // namespace

CosmicAnalysis AnalyzeCosmic(const EventIndex& index, SystemId system) {
  const Trace& trace = index.trace();
  if (trace.neutron_series().empty()) {
    throw std::invalid_argument("AnalyzeCosmic: trace has no neutron series");
  }
  CosmicAnalysis out;
  out.system = system;
  out.dram = BuildSeries(index, system,
                         EventFilter::Of(HardwareComponent::kMemory));
  out.cpu =
      BuildSeries(index, system, EventFilter::Of(HardwareComponent::kCpu));

  auto correlate = [](const std::vector<MonthlyFluxPoint>& series) {
    std::vector<double> xs, ys;
    for (const MonthlyFluxPoint& p : series) {
      xs.push_back(p.avg_neutron_counts);
      ys.push_back(p.failure_probability);
    }
    return stats::PearsonCorrelation(xs, ys);
  };
  // Correlations and regressions need a handful of months; shorter traces
  // still get the raw series.
  if (out.dram.size() >= 3) {
    out.dram_corr = correlate(out.dram);
    out.cpu_corr = correlate(out.cpu);
    const double nodes = trace.system(system).num_nodes;
    out.dram_glm = FitFlux(out.dram, nodes);
    out.cpu_glm = FitFlux(out.cpu, nodes);
  }
  return out;
}

}  // namespace hpcfail::core
