// Downtime / repair-time analysis: every LANL failure record carries the
// interval from outage to return-to-service. The paper's analyses focus on
// occurrence, but availability is the operational currency; this module
// summarizes repair times per root-cause category and computes per-node and
// per-system availability.
#pragma once

#include <array>
#include <vector>

#include "core/event_index.h"

namespace hpcfail::core {

struct DowntimeSummary {
  long long count = 0;
  double mean_hours = 0.0;
  double median_hours = 0.0;
  double p90_hours = 0.0;
  double total_hours = 0.0;
};

struct DowntimeAnalysis {
  SystemId system;
  DowntimeSummary overall;
  std::array<DowntimeSummary, kNumFailureCategories> by_category;
  // Fraction of node-time the system's nodes were up (1 - downtime share),
  // counting failure downtime and unscheduled maintenance.
  double availability = 1.0;
  // The node with the lowest availability and its value.
  NodeId worst_node;
  double worst_node_availability = 1.0;
};

DowntimeAnalysis AnalyzeDowntime(const EventIndex& index, SystemId system);

}  // namespace hpcfail::core
