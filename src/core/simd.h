// Explicit SIMD kernels over the columnar event store's byte columns, with
// runtime dispatch between instruction-set levels.
//
// Why a dedicated layer: the SoA store's query loops (compiled-filter
// compare, distinct-peer dedup, block validation) are byte-wide and
// branch-light, but only the simplest of them autovectorize; the
// gather/dedup and table-lookup paths do not. These kernels make the
// vector shape explicit and give every call site one scalar reference
// implementation to be proven bit-identical against
// (tests/test_simd_kernels.cpp).
//
// Kernel contracts (all levels must agree bit-for-bit):
//   CountMatches(cats, subs, n, cat, sub)
//       number of rows i in [0, n) with cats[i] == cat and, when sub != 0,
//       subs[i] == sub. sub == 0 means "any subcategory".
//   FindNextMatch(cats, subs, n, from, cat, sub)
//       smallest i in [from, n) matching as above; n when none.
//   AnyPeerMatch(nodes, cats, subs, n, self, filter)
//       true when any row matches `filter` and nodes[i] != self.
//   MarkMatchingNodes(nodes, cats, subs, n, filter, bitmap)
//       sets bit nodes[i] in `bitmap` for every matching row. The caller
//       owns the (zeroed) bitmap, clears the self bit and popcounts — the
//       distinct-peer count, replacing the old sort+unique gather.
//   ValidateBlock(starts, ends, nodes, cats, subs, n, num_nodes)
//       index of the first row violating the store's record invariants
//       (node in [0, num_nodes), end >= start, category in range, packed
//       subcategory consistent with the category); n when the whole block
//       is valid. The packed-subcategory sentinel 0xFF never validates, so
//       stagers can mark records whose optional-field structure is broken
//       (two subcategories, or a subcategory under the wrong category) and
//       keep the block check exactly as strict as FailureRecord::
//       consistent() plus the node-range check.
//   CategoryMask(cats, n)
//       bitwise OR of (1u << cats[i]) over the block. Callers guarantee
//       cats[i] < 8 (store columns hold validated categories < 6).
//
// Dispatch. The active level is resolved once per process:
//   - compile-time: building with -DHPCFAIL_SIMD=OFF (CMake) defines
//     HPCFAIL_SIMD_ENABLED=0 and compiles only the scalar table — the
//     forced-scalar build CI proves byte-identical against;
//   - runtime: on x86-64 the AVX2 table is selected via
//     __builtin_cpu_supports("avx2") (the AVX2 bodies are compiled with a
//     function target attribute, so no global -mavx2 flag is needed);
//     SSE2 is the x86-64 baseline. On AArch64 the NEON table is selected
//     at compile time.
//   - override: the HPCFAIL_SIMD environment variable ("scalar", "sse2",
//     "avx2", "neon") forces a level; an unsupported request falls back to
//     scalar, never to an illegal instruction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#ifndef HPCFAIL_SIMD_ENABLED
#define HPCFAIL_SIMD_ENABLED 1
#endif

namespace hpcfail::core::simd {

// True when the build carries the vector kernel tables at all
// (-DHPCFAIL_SIMD=OFF compiles them out).
inline constexpr bool kEnabled = HPCFAIL_SIMD_ENABLED != 0;

enum class Level : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kNeon = 3,
};

const char* ToString(Level level);

// Byte-column filter, mirroring core::CompiledFilter's match semantics
// without depending on it (event_store.h includes this header). `mode`
// selects the inner loop; kEverything matches every row.
struct ByteFilter {
  enum Mode : std::uint8_t { kEverything = 0, kCat = 1, kCatSub = 2 };
  std::uint8_t cat = 0;
  std::uint8_t sub = 0;
  Mode mode = kEverything;

  bool Matches(std::uint8_t c, std::uint8_t s) const {
    switch (mode) {
      case kEverything: return true;
      case kCat: return c == cat;
      case kCatSub: return c == cat && s == sub;
    }
    return false;
  }
};

// Packed-subcategory sentinel: ValidateBlock rejects any row whose sub
// byte carries it. RecordBlock::PushBack stores it for records whose
// optional-field structure cannot be packed losslessly.
inline constexpr std::uint8_t kInvalidPackedSub = 0xFF;

// One level's kernel implementations. All pointers are always non-null.
struct KernelTable {
  Level level = Level::kScalar;

  std::size_t (*count_matches)(const std::uint8_t* cats,
                               const std::uint8_t* subs, std::size_t n,
                               std::uint8_t cat, std::uint8_t sub) = nullptr;
  std::size_t (*find_next_match)(const std::uint8_t* cats,
                                 const std::uint8_t* subs, std::size_t n,
                                 std::size_t from, std::uint8_t cat,
                                 std::uint8_t sub) = nullptr;
  bool (*any_peer_match)(const std::int32_t* nodes, const std::uint8_t* cats,
                         const std::uint8_t* subs, std::size_t n,
                         std::int32_t self, ByteFilter filter) = nullptr;
  void (*mark_matching_nodes)(const std::int32_t* nodes,
                              const std::uint8_t* cats,
                              const std::uint8_t* subs, std::size_t n,
                              ByteFilter filter,
                              std::uint64_t* bitmap) = nullptr;
  std::size_t (*validate_block)(const std::int64_t* starts,
                                const std::int64_t* ends,
                                const std::int32_t* nodes,
                                const std::uint8_t* cats,
                                const std::uint8_t* subs, std::size_t n,
                                std::int32_t num_nodes) = nullptr;
  std::uint32_t (*category_mask)(const std::uint8_t* cats,
                                 std::size_t n) = nullptr;
};

// The process-wide active table, resolved on first use (thread-safe) from
// the compile-time configuration, the CPU, and the HPCFAIL_SIMD override.
const KernelTable& Active();

// The scalar reference table (always available; what parity tests compare
// against).
const KernelTable& Scalar();

// Table for a specific level, or nullptr when that level is not compiled
// in or not supported by this CPU. Scalar is never null.
const KernelTable* TableFor(Level level);

// Levels usable on this machine in this build, ascending (always contains
// kScalar). Parity tests iterate this.
std::vector<Level> SupportedLevels();

}  // namespace hpcfail::core::simd
