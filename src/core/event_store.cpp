#include "core/event_store.h"

#include <algorithm>
#include <stdexcept>

#include "obs/span.h"

namespace hpcfail::core {
namespace {

// First event with time > t (window semantics are half-open (begin, end]).
std::vector<EventRef>::const_iterator FirstAfter(
    const std::vector<EventRef>& refs, TimeSec t) {
  return std::upper_bound(
      refs.begin(), refs.end(), t,
      [](TimeSec value, const EventRef& ref) { return value < ref.time; });
}

// Counts distinct nodes (excluding `self`) with a matching event in the
// window. Windows hold few events, so a flat unique-list beats a hash set.
int CountDistinctPeers(const std::vector<EventRef>& refs,
                       const std::vector<FailureRecord>& failures, NodeId self,
                       TimeInterval window, const EventFilter& filter) {
  std::vector<std::int32_t> seen;
  for (auto it = FirstAfter(refs, window.begin);
       it != refs.end() && it->time <= window.end; ++it) {
    if (it->node == self) continue;
    if (!filter.Matches(failures[it->record])) continue;
    if (std::find(seen.begin(), seen.end(), it->node.value) == seen.end()) {
      seen.push_back(it->node.value);
    }
  }
  return static_cast<int>(seen.size());
}

}  // namespace

void SystemEventStore::Init(const SystemConfig& system_config) {
  id = system_config.id;
  config = &system_config;
  failures.clear();
  all.clear();
  const auto num_nodes = static_cast<std::size_t>(config->num_nodes);
  by_node.assign(num_nodes, {});
  rack_of.assign(num_nodes, RackId{});
  const MachineLayout& layout = config->layout;
  int num_racks = 0;
  for (const NodePlacement& p : layout.placements()) {
    rack_of[static_cast<std::size_t>(p.node.value)] = p.rack;
    num_racks = std::max(num_racks, p.rack.value + 1);
  }
  by_rack.assign(static_cast<std::size_t>(num_racks), {});
  rack_size.assign(static_cast<std::size_t>(num_racks), 0);
  for (const NodePlacement& p : layout.placements()) {
    ++rack_size[static_cast<std::size_t>(p.rack.value)];
  }
}

void SystemEventStore::Append(const FailureRecord& f) {
  if (!failures.empty() && f.start < failures.back().start) {
    throw std::invalid_argument(
        "SystemEventStore::Append: records must arrive time-sorted");
  }
  const auto record = static_cast<std::uint32_t>(failures.size());
  failures.push_back(f);
  const EventRef ref{f.start, f.node, record};
  all.push_back(ref);
  by_node[static_cast<std::size_t>(f.node.value)].push_back(ref);
  const RackId rack = rack_of[static_cast<std::size_t>(f.node.value)];
  if (rack.valid()) {
    by_rack[static_cast<std::size_t>(rack.value)].push_back(ref);
  }
}

void SystemEventStore::RebuildRefs() {
  all.clear();
  for (auto& v : by_node) v.clear();
  for (auto& v : by_rack) v.clear();
  for (std::uint32_t i = 0; i < failures.size(); ++i) {
    const FailureRecord& f = failures[i];
    const EventRef ref{f.start, f.node, i};
    all.push_back(ref);
    by_node[static_cast<std::size_t>(f.node.value)].push_back(ref);
    const RackId rack = rack_of[static_cast<std::size_t>(f.node.value)];
    if (rack.valid()) {
      by_rack[static_cast<std::size_t>(rack.value)].push_back(ref);
    }
  }
}

bool SystemEventStore::AnyAtNode(NodeId node, TimeInterval window,
                                 const EventFilter& filter) const {
  return CountAtNode(node, window, filter) > 0;
}

int SystemEventStore::CountAtNode(NodeId node, TimeInterval window,
                                  const EventFilter& filter) const {
  const auto& refs = by_node.at(static_cast<std::size_t>(node.value));
  int count = 0;
  for (auto it = FirstAfter(refs, window.begin);
       it != refs.end() && it->time <= window.end; ++it) {
    if (filter.Matches(failures[it->record])) ++count;
  }
  return count;
}

bool SystemEventStore::AnyAtRackPeers(NodeId node, TimeInterval window,
                                      const EventFilter& filter) const {
  const RackId rack = rack_of.at(static_cast<std::size_t>(node.value));
  if (!rack.valid()) return false;
  const auto& refs = by_rack[static_cast<std::size_t>(rack.value)];
  for (auto it = FirstAfter(refs, window.begin);
       it != refs.end() && it->time <= window.end; ++it) {
    if (it->node != node && filter.Matches(failures[it->record])) {
      return true;
    }
  }
  return false;
}

bool SystemEventStore::AnyAtSystemPeers(NodeId node, TimeInterval window,
                                        const EventFilter& filter) const {
  for (auto it = FirstAfter(all, window.begin);
       it != all.end() && it->time <= window.end; ++it) {
    if (it->node != node && filter.Matches(failures[it->record])) {
      return true;
    }
  }
  return false;
}

int SystemEventStore::DistinctRackPeersWithEvent(NodeId node,
                                                 TimeInterval window,
                                                 const EventFilter& filter,
                                                 int* num_peers) const {
  const RackId rack = rack_of.at(static_cast<std::size_t>(node.value));
  if (!rack.valid()) {
    if (num_peers != nullptr) *num_peers = 0;
    return 0;
  }
  if (num_peers != nullptr) {
    *num_peers =
        std::max(0, rack_size[static_cast<std::size_t>(rack.value)] - 1);
  }
  const auto& refs = by_rack[static_cast<std::size_t>(rack.value)];
  return CountDistinctPeers(refs, failures, node, window, filter);
}

int SystemEventStore::DistinctSystemPeersWithEvent(NodeId node,
                                                   TimeInterval window,
                                                   const EventFilter& filter,
                                                   int* num_peers) const {
  if (num_peers != nullptr) *num_peers = std::max(0, config->num_nodes - 1);
  return CountDistinctPeers(all, failures, node, window, filter);
}

const SystemEventStore* EventStoreSet::Find(SystemId sys) const {
  for (const SystemEventStore& se : stores) {
    if (se.id == sys) return &se;
  }
  return nullptr;
}

EventStoreSet EventStoreSet::Build(const Trace& trace,
                                   std::span<const SystemId> systems) {
  obs::ScopedTimer timer("index_build");
  EventStoreSet set;
  std::vector<SystemId> wanted;
  if (systems.empty()) {
    for (const SystemConfig& s : trace.systems()) wanted.push_back(s.id);
  } else {
    wanted.assign(systems.begin(), systems.end());
  }
  set.stores.reserve(wanted.size());
  // slot[system id] -> store index, so the single pass below is O(1) per
  // record. System ids are small dense integers (trace validates them).
  std::int32_t max_id = -1;
  for (SystemId id : wanted) max_id = std::max(max_id, id.value);
  std::vector<std::int32_t> slot(static_cast<std::size_t>(max_id + 1), -1);
  for (SystemId id : wanted) {
    slot[static_cast<std::size_t>(id.value)] =
        static_cast<std::int32_t>(set.stores.size());
    SystemEventStore se;
    se.Init(trace.system(id));
    set.stores.push_back(std::move(se));
  }
  // trace.failures() is (start, system, node)-sorted, so each system's
  // subsequence arrives time-sorted and Append's ordering check holds.
  for (const FailureRecord& f : trace.failures()) {
    if (f.system.value > max_id) continue;
    const std::int32_t s = slot[static_cast<std::size_t>(f.system.value)];
    if (s >= 0) set.stores[static_cast<std::size_t>(s)].Append(f);
  }
  return set;
}

}  // namespace hpcfail::core
