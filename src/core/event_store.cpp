#include "core/event_store.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>
#include <string>

#include "obs/span.h"

namespace hpcfail::core {
namespace {

// Row range [lo, hi) of events inside the half-open window (begin, end],
// found by binary search over a time column.
struct RowRange {
  std::size_t lo = 0;
  std::size_t hi = 0;

  std::size_t count() const { return hi - lo; }
  bool empty() const { return lo >= hi; }
};

RowRange WindowRange(const std::vector<TimeSec>& times, TimeInterval window) {
  RowRange r;
  r.lo = static_cast<std::size_t>(
      std::upper_bound(times.begin(), times.end(), window.begin) -
      times.begin());
  r.hi = static_cast<std::size_t>(
      std::upper_bound(times.begin() + static_cast<std::ptrdiff_t>(r.lo),
                       times.end(), window.end) -
      times.begin());
  return r;
}

// Matching rows in [lo, hi) of a (cat, sub) column pair, via the active
// count_matches kernel.
int CountMatchesInRange(const std::uint8_t* cats, const std::uint8_t* subs,
                        RowRange r, CompiledFilter cf) {
  if (cf.MatchesNothing() || r.empty()) return 0;
  if (cf.MatchesEverything()) return static_cast<int>(r.count());
  return static_cast<int>(simd::Active().count_matches(
      cats + r.lo, subs + r.lo, r.count(), cf.cat, cf.sub));
}

// Any row in [lo, hi) on a node other than `self` matching the filter.
bool AnyPeerMatchInRange(const std::int32_t* nodes, const std::uint8_t* cats,
                         const std::uint8_t* subs, RowRange r,
                         std::int32_t self, CompiledFilter cf) {
  if (cf.MatchesNothing() || r.empty()) return false;
  return simd::Active().any_peer_match(nodes + r.lo, cats + r.lo, subs + r.lo,
                                       r.count(), self, cf.Byte());
}

// Distinct nodes (excluding `self`) with a matching row in [lo, hi).
// The mark_matching_nodes kernel sets one bit per matching node in a
// node-indexed bitmap; clearing the self bit and popcounting yields the
// distinct-peer count — same answer as the old sort+unique gather, without
// the gather buffer or the sort. The scratch bitmap is thread-local because
// the pairwise matrix calls this from every worker thread.
int CountDistinctPeersInRange(const std::int32_t* nodes,
                              const std::uint8_t* cats,
                              const std::uint8_t* subs, RowRange r,
                              std::int32_t self, CompiledFilter cf,
                              std::size_t num_nodes) {
  if (cf.MatchesNothing() || r.empty()) return 0;
  static thread_local std::vector<std::uint64_t> bitmap;
  bitmap.assign((num_nodes + 63) / 64, 0);
  simd::Active().mark_matching_nodes(nodes + r.lo, cats + r.lo, subs + r.lo,
                                     r.count(), cf.Byte(), bitmap.data());
  const auto self_u = static_cast<std::uint32_t>(self);
  bitmap[self_u >> 6] &= ~(std::uint64_t{1} << (self_u & 63));
  int count = 0;
  for (const std::uint64_t word : bitmap) count += std::popcount(word);
  return count;
}

}  // namespace

CompiledFilter CompiledFilter::From(const EventFilter& f) {
  CompiledFilter c;
  const int subfields = static_cast<int>(f.hardware.has_value()) +
                        static_cast<int>(f.software.has_value()) +
                        static_cast<int>(f.environment.has_value());
  if (subfields > 1) {
    // A consistent record carries at most one subcategory; requiring two
    // matches nothing.
    c.check_cat = true;
    c.cat = 0xFF;
    return c;
  }
  std::optional<FailureCategory> need;
  if (f.hardware) {
    need = FailureCategory::kHardware;
    c.sub = 1 + static_cast<std::uint8_t>(*f.hardware);
  }
  if (f.software) {
    need = FailureCategory::kSoftware;
    c.sub = 1 + static_cast<std::uint8_t>(*f.software);
  }
  if (f.environment) {
    need = FailureCategory::kEnvironment;
    c.sub = 1 + static_cast<std::uint8_t>(*f.environment);
  }
  if (f.category) {
    if (need && *need != *f.category) {
      // e.g. a hardware subcategory under a software category.
      c.check_cat = true;
      c.cat = 0xFF;
      c.sub = 0;
      return c;
    }
    need = *f.category;
  }
  if (need) {
    c.check_cat = true;
    c.cat = static_cast<std::uint8_t>(*need);
  }
  return c;
}

FailureRecord SystemEventStore::Record(std::size_t i) const {
  FailureRecord f;
  f.system = id;
  f.node = NodeId{nodes[i]};
  f.start = starts[i];
  f.end = ends[i];
  f.category = static_cast<FailureCategory>(cats[i]);
  const std::uint8_t sub = subs[i];
  if (sub != 0) {
    switch (f.category) {
      case FailureCategory::kHardware:
        f.hardware = static_cast<HardwareComponent>(sub - 1);
        break;
      case FailureCategory::kSoftware:
        f.software = static_cast<SoftwareComponent>(sub - 1);
        break;
      case FailureCategory::kEnvironment:
        f.environment = static_cast<EnvironmentEvent>(sub - 1);
        break;
      default:
        break;  // unreachable: Append rejects inconsistent records
    }
  }
  return f;
}

void SystemEventStore::Init(const SystemConfig& system_config) {
  id = system_config.id;
  config = &system_config;
  starts.clear();
  ends.clear();
  nodes.clear();
  cats.clear();
  subs.clear();
  const auto num_nodes = static_cast<std::size_t>(config->num_nodes);
  by_node.assign(num_nodes, {});
  rack_of.assign(num_nodes, RackId{});
  const MachineLayout& layout = config->layout;
  int num_racks = 0;
  for (const NodePlacement& p : layout.placements()) {
    rack_of[static_cast<std::size_t>(p.node.value)] = p.rack;
    num_racks = std::max(num_racks, p.rack.value + 1);
  }
  by_rack.assign(static_cast<std::size_t>(num_racks), {});
  rack_size.assign(static_cast<std::size_t>(num_racks), 0);
  for (const NodePlacement& p : layout.placements()) {
    ++rack_size[static_cast<std::size_t>(p.rack.value)];
  }
}

void SystemEventStore::Reserve(std::size_t n) {
  starts.reserve(n);
  ends.reserve(n);
  nodes.reserve(n);
  cats.reserve(n);
  subs.reserve(n);
}

namespace {

// Appends one packed row to the global columns and the per-node / per-rack
// bundles. Shared by every append path; validation happens in the callers.
inline void PushRow(SystemEventStore& s, TimeSec start, TimeSec end,
                    std::int32_t node, std::uint8_t cat, std::uint8_t sub) {
  s.starts.push_back(start);
  s.ends.push_back(end);
  s.nodes.push_back(node);
  s.cats.push_back(cat);
  s.subs.push_back(sub);

  SystemEventStore::EventColumns& nc =
      s.by_node[static_cast<std::size_t>(node)];
  nc.times.push_back(start);
  nc.cats.push_back(cat);
  nc.subs.push_back(sub);

  const RackId rack = s.rack_of[static_cast<std::size_t>(node)];
  if (rack.valid()) {
    SystemEventStore::EventColumns& rc =
        s.by_rack[static_cast<std::size_t>(rack.value)];
    rc.times.push_back(start);
    rc.nodes.push_back(node);
    rc.cats.push_back(cat);
    rc.subs.push_back(sub);
  }
}

}  // namespace

void SystemEventStore::Append(const FailureRecord& f) {
  if (f.system != id) {
    throw std::invalid_argument(
        "SystemEventStore::Append: record belongs to another system");
  }
  if (!f.node.valid() ||
      static_cast<std::size_t>(f.node.value) >= by_node.size()) {
    throw std::invalid_argument(
        "SystemEventStore::Append: node out of range");
  }
  if (!f.consistent()) {
    // Inconsistent records cannot be packed into the (category, subcat)
    // columns losslessly; both ingest paths validate before appending.
    throw std::invalid_argument(
        "SystemEventStore::Append: inconsistent record");
  }
  if (!starts.empty() && f.start < starts.back()) {
    throw std::invalid_argument(
        "SystemEventStore::Append: records must arrive time-sorted");
  }
  PushRow(*this, f.start, f.end, f.node.value,
          static_cast<std::uint8_t>(f.category), PackSubcategory(f));
}

void SystemEventStore::AppendTrusted(const FailureRecord& f) {
  assert(f.system == id);
  assert(f.node.valid() &&
         static_cast<std::size_t>(f.node.value) < by_node.size());
  assert(f.consistent());
  assert(starts.empty() || f.start >= starts.back());
  PushRow(*this, f.start, f.end, f.node.value,
          static_cast<std::uint8_t>(f.category), PackSubcategory(f));
}

void RecordBlock::clear() {
  starts.clear();
  ends.clear();
  nodes.clear();
  cats.clear();
  subs.clear();
}

void RecordBlock::reserve(std::size_t n) {
  starts.reserve(n);
  ends.reserve(n);
  nodes.reserve(n);
  cats.reserve(n);
  subs.reserve(n);
}

void RecordBlock::PushBack(const FailureRecord& f) {
  const int subfields = static_cast<int>(f.hardware.has_value()) +
                        static_cast<int>(f.software.has_value()) +
                        static_cast<int>(f.environment.has_value());
  // Pack in int space: a raw enum byte of 255 would wrap 1 + value to 0
  // ("no subcategory") in uint8 space and slip past validation.
  int packed = 0;
  bool structure_ok = subfields <= 1;
  if (structure_ok) {
    if (f.hardware) {
      packed = 1 + static_cast<int>(*f.hardware);
      structure_ok = f.category == FailureCategory::kHardware;
    } else if (f.software) {
      packed = 1 + static_cast<int>(*f.software);
      structure_ok = f.category == FailureCategory::kSoftware;
    } else if (f.environment) {
      packed = 1 + static_cast<int>(*f.environment);
      structure_ok = f.category == FailureCategory::kEnvironment;
    }
  }
  const std::uint8_t sub =
      (!structure_ok || packed > 0xFF)
          ? simd::kInvalidPackedSub
          : static_cast<std::uint8_t>(packed);
  starts.push_back(f.start);
  ends.push_back(f.end);
  nodes.push_back(f.node.value);
  cats.push_back(static_cast<std::uint8_t>(f.category));
  subs.push_back(sub);
}

void SystemEventStore::AppendBlock(const RecordBlock& block) {
  const std::size_t n = block.size();
  if (n == 0) return;
  const std::size_t bad = simd::Active().validate_block(
      block.starts.data(), block.ends.data(), block.nodes.data(),
      block.cats.data(), block.subs.data(), n,
      static_cast<std::int32_t>(by_node.size()));
  if (bad < n) {
    throw std::invalid_argument(
        "SystemEventStore::AppendBlock: invalid record at block index " +
        std::to_string(bad));
  }
  if (!starts.empty() && block.starts.front() < starts.back()) {
    throw std::invalid_argument(
        "SystemEventStore::AppendBlock: records must arrive time-sorted");
  }
  for (std::size_t i = 1; i < n; ++i) {
    if (block.starts[i] < block.starts[i - 1]) {
      throw std::invalid_argument(
          "SystemEventStore::AppendBlock: block not time-sorted at index " +
          std::to_string(i));
    }
  }
  Reserve(size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    PushRow(*this, block.starts[i], block.ends[i], block.nodes[i],
            block.cats[i], block.subs[i]);
  }
}

void SystemEventStore::ValidateRestored() const {
  const std::size_t n = size();
  if (ends.size() != n || nodes.size() != n || cats.size() != n ||
      subs.size() != n) {
    throw std::invalid_argument(
        "SystemEventStore::ValidateRestored: global column lengths differ");
  }
  if (config == nullptr || by_node.size() != rack_of.size() ||
      by_node.size() != static_cast<std::size_t>(config->num_nodes) ||
      by_rack.size() != rack_size.size()) {
    throw std::invalid_argument(
        "SystemEventStore::ValidateRestored: store not initialized against "
        "its system config");
  }
  const std::size_t bad = simd::Active().validate_block(
      starts.data(), ends.data(), nodes.data(), cats.data(), subs.data(), n,
      static_cast<std::int32_t>(by_node.size()));
  if (bad < n) {
    throw std::invalid_argument(
        "SystemEventStore::ValidateRestored: invalid record at row " +
        std::to_string(bad));
  }
  for (std::size_t i = 1; i < n; ++i) {
    if (starts[i] < starts[i - 1] ||
        (starts[i] == starts[i - 1] && nodes[i] < nodes[i - 1])) {
      throw std::invalid_argument(
          "SystemEventStore::ValidateRestored: rows not (start, node)-sorted "
          "at row " +
          std::to_string(i));
    }
  }
  // Walk the global rows with one cursor per node and rack bundle: each row
  // must be the next entry of its node's bundle (and its rack's, when the
  // node has one), and afterwards every cursor must sit at its bundle's
  // end. That makes the bundles exactly the row-order partition of the
  // global columns — the invariant PushRow maintains — so a snapshot cannot
  // smuggle in rows the queries would see but the record view would not.
  std::vector<std::size_t> node_pos(by_node.size(), 0);
  std::vector<std::size_t> rack_pos(by_rack.size(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto node = static_cast<std::size_t>(nodes[i]);
    const EventColumns& nc = by_node[node];
    const std::size_t np = node_pos[node]++;
    if (np >= nc.times.size() || !nc.nodes.empty() ||
        nc.times[np] != starts[i] || nc.cats[np] != cats[i] ||
        nc.subs[np] != subs[i]) {
      throw std::invalid_argument(
          "SystemEventStore::ValidateRestored: per-node bundle disagrees "
          "with global row " +
          std::to_string(i));
    }
    const RackId rack = rack_of[node];
    if (!rack.valid()) continue;
    if (static_cast<std::size_t>(rack.value) >= by_rack.size()) {
      throw std::invalid_argument(
          "SystemEventStore::ValidateRestored: rack id out of range for "
          "node " +
          std::to_string(node));
    }
    const EventColumns& rc = by_rack[static_cast<std::size_t>(rack.value)];
    const std::size_t rp = rack_pos[static_cast<std::size_t>(rack.value)]++;
    if (rp >= rc.times.size() || rc.times[rp] != starts[i] ||
        rc.nodes[rp] != nodes[i] || rc.cats[rp] != cats[i] ||
        rc.subs[rp] != subs[i]) {
      throw std::invalid_argument(
          "SystemEventStore::ValidateRestored: per-rack bundle disagrees "
          "with global row " +
          std::to_string(i));
    }
  }
  for (std::size_t node = 0; node < by_node.size(); ++node) {
    if (node_pos[node] != by_node[node].times.size()) {
      throw std::invalid_argument(
          "SystemEventStore::ValidateRestored: per-node bundle for node " +
          std::to_string(node) + " holds rows absent from the global columns");
    }
  }
  for (std::size_t rack = 0; rack < by_rack.size(); ++rack) {
    if (rack_pos[rack] != by_rack[rack].times.size()) {
      throw std::invalid_argument(
          "SystemEventStore::ValidateRestored: per-rack bundle for rack " +
          std::to_string(rack) + " holds rows absent from the global columns");
    }
  }
}

namespace {

// Bulk column append shared by AppendStore: dst += src.
template <typename T>
void AppendColumn(std::vector<T>& dst, const std::vector<T>& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

template <typename T>
std::size_t ColumnBytes(const std::vector<T>& v) {
  return v.size() * sizeof(T);
}

std::size_t EventColumnsBytes(const SystemEventStore::EventColumns& c) {
  return ColumnBytes(c.times) + ColumnBytes(c.nodes) + ColumnBytes(c.cats) +
         ColumnBytes(c.subs);
}

}  // namespace

void SystemEventStore::AppendStore(const SystemEventStore& other) {
  if (other.id != id || other.by_node.size() != by_node.size() ||
      other.by_rack.size() != by_rack.size()) {
    throw std::invalid_argument(
        "SystemEventStore::AppendStore: stores describe different systems");
  }
  if (other.size() == 0) return;
  if (!starts.empty() && other.starts.front() < starts.back()) {
    throw std::invalid_argument(
        "SystemEventStore::AppendStore: appended store starts before this "
        "one ends");
  }
  AppendColumn(starts, other.starts);
  AppendColumn(ends, other.ends);
  AppendColumn(nodes, other.nodes);
  AppendColumn(cats, other.cats);
  AppendColumn(subs, other.subs);
  for (std::size_t n = 0; n < by_node.size(); ++n) {
    AppendColumn(by_node[n].times, other.by_node[n].times);
    AppendColumn(by_node[n].cats, other.by_node[n].cats);
    AppendColumn(by_node[n].subs, other.by_node[n].subs);
  }
  for (std::size_t r = 0; r < by_rack.size(); ++r) {
    AppendColumn(by_rack[r].times, other.by_rack[r].times);
    AppendColumn(by_rack[r].nodes, other.by_rack[r].nodes);
    AppendColumn(by_rack[r].cats, other.by_rack[r].cats);
    AppendColumn(by_rack[r].subs, other.by_rack[r].subs);
  }
}

std::size_t SystemEventStore::ApproxBytes() const {
  std::size_t bytes = ColumnBytes(starts) + ColumnBytes(ends) +
                      ColumnBytes(nodes) + ColumnBytes(cats) +
                      ColumnBytes(subs);
  for (const EventColumns& c : by_node) bytes += EventColumnsBytes(c);
  for (const EventColumns& c : by_rack) bytes += EventColumnsBytes(c);
  bytes += ColumnBytes(rack_of) + ColumnBytes(rack_size);
  bytes += by_node.size() * sizeof(EventColumns);
  bytes += by_rack.size() * sizeof(EventColumns);
  return bytes;
}

long long SystemEventStore::CountMatching(const EventFilter& filter) const {
  const CompiledFilter cf = CompiledFilter::From(filter);
  return CountMatchesInRange(cats.data(), subs.data(), RowRange{0, size()},
                             cf);
}

std::vector<int> SystemEventStore::NodeCounts(
    const EventFilter& filter) const {
  std::vector<int> out(by_node.size(), 0);
  const CompiledFilter cf = CompiledFilter::From(filter);
  if (cf.MatchesNothing()) return out;
  const std::size_t n = size();
  if (cf.MatchesEverything()) {
    for (std::size_t i = 0; i < n; ++i) {
      ++out[static_cast<std::size_t>(nodes[i])];
    }
    return out;
  }
  const simd::KernelTable& k = simd::Active();
  for (std::size_t i =
           k.find_next_match(cats.data(), subs.data(), n, 0, cf.cat, cf.sub);
       i < n; i = k.find_next_match(cats.data(), subs.data(), n, i + 1,
                                    cf.cat, cf.sub)) {
    ++out[static_cast<std::size_t>(nodes[i])];
  }
  return out;
}

std::uint32_t SystemEventStore::CategoriesPresent() const {
  return simd::Active().category_mask(cats.data(), size());
}

bool SystemEventStore::AnyAtNode(NodeId node, TimeInterval window,
                                 const EventFilter& filter) const {
  return CountAtNode(node, window, filter) > 0;
}

int SystemEventStore::CountAtNode(NodeId node, TimeInterval window,
                                  const EventFilter& filter) const {
  const EventColumns& c = by_node.at(static_cast<std::size_t>(node.value));
  const RowRange r = WindowRange(c.times, window);
  return CountMatchesInRange(c.cats.data(), c.subs.data(), r,
                             CompiledFilter::From(filter));
}

bool SystemEventStore::AnyAtRackPeers(NodeId node, TimeInterval window,
                                      const EventFilter& filter) const {
  const RackId rack = rack_of.at(static_cast<std::size_t>(node.value));
  if (!rack.valid()) return false;
  const EventColumns& c = by_rack[static_cast<std::size_t>(rack.value)];
  const RowRange r = WindowRange(c.times, window);
  if (r.empty()) return false;
  const CompiledFilter cf = CompiledFilter::From(filter);
  if (cf.MatchesEverything()) {
    // Peers have an event iff the rack window holds more events than the
    // node itself does: two extra binary searches instead of a scan.
    return r.count() >
           static_cast<std::size_t>(
               CountAtNode(node, window, EventFilter::Any()));
  }
  return AnyPeerMatchInRange(c.nodes.data(), c.cats.data(), c.subs.data(), r,
                             node.value, cf);
}

bool SystemEventStore::AnyAtSystemPeers(NodeId node, TimeInterval window,
                                        const EventFilter& filter) const {
  const RowRange r = WindowRange(starts, window);
  if (r.empty()) return false;
  const CompiledFilter cf = CompiledFilter::From(filter);
  if (cf.MatchesEverything()) {
    return r.count() >
           static_cast<std::size_t>(
               CountAtNode(node, window, EventFilter::Any()));
  }
  return AnyPeerMatchInRange(nodes.data(), cats.data(), subs.data(), r,
                             node.value, cf);
}

int SystemEventStore::DistinctRackPeersWithEvent(NodeId node,
                                                 TimeInterval window,
                                                 const EventFilter& filter,
                                                 int* num_peers) const {
  const RackId rack = rack_of.at(static_cast<std::size_t>(node.value));
  if (!rack.valid()) {
    if (num_peers != nullptr) *num_peers = 0;
    return 0;
  }
  if (num_peers != nullptr) {
    *num_peers =
        std::max(0, rack_size[static_cast<std::size_t>(rack.value)] - 1);
  }
  const EventColumns& c = by_rack[static_cast<std::size_t>(rack.value)];
  return CountDistinctPeersInRange(c.nodes.data(), c.cats.data(),
                                   c.subs.data(), WindowRange(c.times, window),
                                   node.value, CompiledFilter::From(filter),
                                   static_cast<std::size_t>(config->num_nodes));
}

int SystemEventStore::DistinctSystemPeersWithEvent(NodeId node,
                                                   TimeInterval window,
                                                   const EventFilter& filter,
                                                   int* num_peers) const {
  if (num_peers != nullptr) *num_peers = std::max(0, config->num_nodes - 1);
  return CountDistinctPeersInRange(nodes.data(), cats.data(), subs.data(),
                                   WindowRange(starts, window), node.value,
                                   CompiledFilter::From(filter),
                                   static_cast<std::size_t>(config->num_nodes));
}

const SystemEventStore* EventStoreSet::Find(SystemId sys) const {
  for (const SystemEventStore& se : stores) {
    if (se.id == sys) return &se;
  }
  return nullptr;
}

namespace {

// The ids Build/Concatenate actually index: the trace's systems when the
// request is empty, otherwise the requested ids minus invalid (negative)
// ones — those would index the slot table out of bounds, so they are
// skipped the same way unknown-system records are skipped. The caller
// notices when it looks its system up (EventIndex throws).
std::vector<SystemId> WantedSystems(const Trace& trace,
                                    std::span<const SystemId> systems) {
  std::vector<SystemId> wanted;
  if (systems.empty()) {
    for (const SystemConfig& s : trace.systems()) wanted.push_back(s.id);
  } else {
    for (SystemId id : systems) {
      if (id.valid()) wanted.push_back(id);
    }
  }
  return wanted;
}

}  // namespace

EventStoreSet EventStoreSet::Build(const Trace& trace,
                                   std::span<const SystemId> systems) {
  return Build(trace, systems, kAllStartTimes);
}

EventStoreSet EventStoreSet::Build(const Trace& trace,
                                   std::span<const SystemId> systems,
                                   TimeInterval start_range) {
  obs::ScopedTimer timer("index_build");
  EventStoreSet set;
  const std::vector<SystemId> wanted = WantedSystems(trace, systems);
  set.stores.reserve(wanted.size());
  // slot[system id] -> store index, so the single pass below is O(1) per
  // record. System ids are small dense integers (trace validates them).
  std::int32_t max_id = -1;
  for (SystemId id : wanted) max_id = std::max(max_id, id.value);
  std::vector<std::int32_t> slot(static_cast<std::size_t>(max_id + 1), -1);
  for (SystemId id : wanted) {
    slot[static_cast<std::size_t>(id.value)] =
        static_cast<std::int32_t>(set.stores.size());
    SystemEventStore se;
    se.Init(trace.system(id));
    set.stores.push_back(std::move(se));
  }
  // trace.failures() is (start, system, node)-sorted, so each system's
  // subsequence arrives time-sorted and AppendBlock's ordering check holds.
  // Records with system ids outside [0, max_id] — including negative ids
  // from untrusted import or replay paths — are skipped, not indexed.
  // Records are staged into per-system column blocks so validation runs
  // through the vectorized block kernel instead of per-record consistent().
  constexpr std::size_t kBuildBlock = 1024;
  std::vector<RecordBlock> blocks(set.stores.size());
  // Binary-search to the requested start range instead of scanning the whole
  // stream; a shard build touches only its slice of the failure columns.
  const std::vector<FailureRecord>& failures = trace.failures();
  auto first = failures.begin();
  if (start_range.begin > std::numeric_limits<TimeSec>::min()) {
    first = std::lower_bound(
        failures.begin(), failures.end(), start_range.begin,
        [](const FailureRecord& f, TimeSec t) { return f.start < t; });
  }
  for (auto it = first; it != failures.end(); ++it) {
    const FailureRecord& f = *it;
    if (f.start >= start_range.end) break;
    if (f.system.value < 0 || f.system.value > max_id) continue;
    const std::int32_t s = slot[static_cast<std::size_t>(f.system.value)];
    if (s < 0) continue;
    RecordBlock& b = blocks[static_cast<std::size_t>(s)];
    if (b.empty()) b.reserve(kBuildBlock);
    b.PushBack(f);
    if (b.size() >= kBuildBlock) {
      set.stores[static_cast<std::size_t>(s)].AppendBlock(b);
      b.clear();
    }
  }
  for (std::size_t s = 0; s < blocks.size(); ++s) {
    if (!blocks[s].empty()) set.stores[s].AppendBlock(blocks[s]);
  }
  return set;
}

EventStoreSet EventStoreSet::Concatenate(
    const Trace& trace, std::span<const SystemId> systems,
    std::span<const EventStoreSet* const> parts) {
  obs::ScopedTimer timer("index_merge");
  EventStoreSet set;
  const std::vector<SystemId> wanted = WantedSystems(trace, systems);
  set.stores.reserve(wanted.size());
  for (SystemId id : wanted) {
    SystemEventStore se;
    se.Init(trace.system(id));
    std::size_t total = 0;
    for (const EventStoreSet* part : parts) {
      if (const SystemEventStore* ps = part->Find(id)) total += ps->size();
    }
    se.Reserve(total);
    for (const EventStoreSet* part : parts) {
      if (const SystemEventStore* ps = part->Find(id)) se.AppendStore(*ps);
    }
    set.stores.push_back(std::move(se));
  }
  return set;
}

std::size_t EventStoreSet::ApproxBytes() const {
  std::size_t bytes = 0;
  for (const SystemEventStore& se : stores) bytes += se.ApproxBytes();
  return bytes;
}

}  // namespace hpcfail::core
