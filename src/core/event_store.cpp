#include "core/event_store.h"

#include <algorithm>
#include <stdexcept>

#include "obs/span.h"

namespace hpcfail::core {
namespace {

// Row range [lo, hi) of events inside the half-open window (begin, end],
// found by binary search over a time column.
struct RowRange {
  std::size_t lo = 0;
  std::size_t hi = 0;

  std::size_t count() const { return hi - lo; }
  bool empty() const { return lo >= hi; }
};

RowRange WindowRange(const std::vector<TimeSec>& times, TimeInterval window) {
  RowRange r;
  r.lo = static_cast<std::size_t>(
      std::upper_bound(times.begin(), times.end(), window.begin) -
      times.begin());
  r.hi = static_cast<std::size_t>(
      std::upper_bound(times.begin() + static_cast<std::ptrdiff_t>(r.lo),
                       times.end(), window.end) -
      times.begin());
  return r;
}

// Matching rows in [lo, hi) of a (cat, sub) column pair. The loop is
// branch-free over the byte columns so the compiler can vectorize it.
int CountMatchesInRange(const std::uint8_t* cats, const std::uint8_t* subs,
                        RowRange r, CompiledFilter cf) {
  if (cf.MatchesNothing() || r.empty()) return 0;
  if (cf.MatchesEverything()) return static_cast<int>(r.count());
  int count = 0;
  if (cf.sub == 0) {
    for (std::size_t i = r.lo; i < r.hi; ++i) {
      count += static_cast<int>(cats[i] == cf.cat);
    }
  } else {
    for (std::size_t i = r.lo; i < r.hi; ++i) {
      count += static_cast<int>((cats[i] == cf.cat) & (subs[i] == cf.sub));
    }
  }
  return count;
}

// Any row in [lo, hi) on a node other than `self` matching the filter.
bool AnyPeerMatchInRange(const std::int32_t* nodes, const std::uint8_t* cats,
                         const std::uint8_t* subs, RowRange r,
                         std::int32_t self, CompiledFilter cf) {
  if (cf.MatchesNothing()) return false;
  if (cf.MatchesEverything()) {
    for (std::size_t i = r.lo; i < r.hi; ++i) {
      if (nodes[i] != self) return true;
    }
    return false;
  }
  for (std::size_t i = r.lo; i < r.hi; ++i) {
    if (nodes[i] != self && cf.Matches(cats[i], subs[i])) return true;
  }
  return false;
}

// Distinct nodes (excluding `self`) with a matching row in [lo, hi).
// Sort-and-unique over the gathered node ids: O(k log k) where k is the
// number of events inside the window, replacing the old O(k^2) flat-list
// dedup.
int CountDistinctPeersInRange(const std::int32_t* nodes,
                              const std::uint8_t* cats,
                              const std::uint8_t* subs, RowRange r,
                              std::int32_t self, CompiledFilter cf) {
  if (cf.MatchesNothing() || r.empty()) return 0;
  std::vector<std::int32_t> seen;
  seen.reserve(r.count());
  const bool all = cf.MatchesEverything();
  for (std::size_t i = r.lo; i < r.hi; ++i) {
    if (nodes[i] != self && (all || cf.Matches(cats[i], subs[i]))) {
      seen.push_back(nodes[i]);
    }
  }
  std::sort(seen.begin(), seen.end());
  return static_cast<int>(std::unique(seen.begin(), seen.end()) -
                          seen.begin());
}

// Packs the subcategory the way the columns store it: 0 = none, else
// 1 + enum value. Only meaningful for consistent records.
std::uint8_t PackSubcategory(const FailureRecord& f) {
  if (f.hardware) return 1 + static_cast<std::uint8_t>(*f.hardware);
  if (f.software) return 1 + static_cast<std::uint8_t>(*f.software);
  if (f.environment) return 1 + static_cast<std::uint8_t>(*f.environment);
  return 0;
}

}  // namespace

CompiledFilter CompiledFilter::From(const EventFilter& f) {
  CompiledFilter c;
  const int subfields = static_cast<int>(f.hardware.has_value()) +
                        static_cast<int>(f.software.has_value()) +
                        static_cast<int>(f.environment.has_value());
  if (subfields > 1) {
    // A consistent record carries at most one subcategory; requiring two
    // matches nothing.
    c.check_cat = true;
    c.cat = 0xFF;
    return c;
  }
  std::optional<FailureCategory> need;
  if (f.hardware) {
    need = FailureCategory::kHardware;
    c.sub = 1 + static_cast<std::uint8_t>(*f.hardware);
  }
  if (f.software) {
    need = FailureCategory::kSoftware;
    c.sub = 1 + static_cast<std::uint8_t>(*f.software);
  }
  if (f.environment) {
    need = FailureCategory::kEnvironment;
    c.sub = 1 + static_cast<std::uint8_t>(*f.environment);
  }
  if (f.category) {
    if (need && *need != *f.category) {
      // e.g. a hardware subcategory under a software category.
      c.check_cat = true;
      c.cat = 0xFF;
      c.sub = 0;
      return c;
    }
    need = *f.category;
  }
  if (need) {
    c.check_cat = true;
    c.cat = static_cast<std::uint8_t>(*need);
  }
  return c;
}

FailureRecord SystemEventStore::Record(std::size_t i) const {
  FailureRecord f;
  f.system = id;
  f.node = NodeId{nodes[i]};
  f.start = starts[i];
  f.end = ends[i];
  f.category = static_cast<FailureCategory>(cats[i]);
  const std::uint8_t sub = subs[i];
  if (sub != 0) {
    switch (f.category) {
      case FailureCategory::kHardware:
        f.hardware = static_cast<HardwareComponent>(sub - 1);
        break;
      case FailureCategory::kSoftware:
        f.software = static_cast<SoftwareComponent>(sub - 1);
        break;
      case FailureCategory::kEnvironment:
        f.environment = static_cast<EnvironmentEvent>(sub - 1);
        break;
      default:
        break;  // unreachable: Append rejects inconsistent records
    }
  }
  return f;
}

void SystemEventStore::Init(const SystemConfig& system_config) {
  id = system_config.id;
  config = &system_config;
  starts.clear();
  ends.clear();
  nodes.clear();
  cats.clear();
  subs.clear();
  const auto num_nodes = static_cast<std::size_t>(config->num_nodes);
  by_node.assign(num_nodes, {});
  rack_of.assign(num_nodes, RackId{});
  const MachineLayout& layout = config->layout;
  int num_racks = 0;
  for (const NodePlacement& p : layout.placements()) {
    rack_of[static_cast<std::size_t>(p.node.value)] = p.rack;
    num_racks = std::max(num_racks, p.rack.value + 1);
  }
  by_rack.assign(static_cast<std::size_t>(num_racks), {});
  rack_size.assign(static_cast<std::size_t>(num_racks), 0);
  for (const NodePlacement& p : layout.placements()) {
    ++rack_size[static_cast<std::size_t>(p.rack.value)];
  }
}

void SystemEventStore::Reserve(std::size_t n) {
  starts.reserve(n);
  ends.reserve(n);
  nodes.reserve(n);
  cats.reserve(n);
  subs.reserve(n);
}

void SystemEventStore::Append(const FailureRecord& f) {
  if (f.system != id) {
    throw std::invalid_argument(
        "SystemEventStore::Append: record belongs to another system");
  }
  if (!f.node.valid() ||
      static_cast<std::size_t>(f.node.value) >= by_node.size()) {
    throw std::invalid_argument(
        "SystemEventStore::Append: node out of range");
  }
  if (!f.consistent()) {
    // Inconsistent records cannot be packed into the (category, subcat)
    // columns losslessly; both ingest paths validate before appending.
    throw std::invalid_argument(
        "SystemEventStore::Append: inconsistent record");
  }
  if (!starts.empty() && f.start < starts.back()) {
    throw std::invalid_argument(
        "SystemEventStore::Append: records must arrive time-sorted");
  }
  const std::uint8_t cat = static_cast<std::uint8_t>(f.category);
  const std::uint8_t sub = PackSubcategory(f);
  starts.push_back(f.start);
  ends.push_back(f.end);
  nodes.push_back(f.node.value);
  cats.push_back(cat);
  subs.push_back(sub);

  EventColumns& nc = by_node[static_cast<std::size_t>(f.node.value)];
  nc.times.push_back(f.start);
  nc.cats.push_back(cat);
  nc.subs.push_back(sub);

  const RackId rack = rack_of[static_cast<std::size_t>(f.node.value)];
  if (rack.valid()) {
    EventColumns& rc = by_rack[static_cast<std::size_t>(rack.value)];
    rc.times.push_back(f.start);
    rc.nodes.push_back(f.node.value);
    rc.cats.push_back(cat);
    rc.subs.push_back(sub);
  }
}

long long SystemEventStore::CountMatching(const EventFilter& filter) const {
  const CompiledFilter cf = CompiledFilter::From(filter);
  return CountMatchesInRange(cats.data(), subs.data(), RowRange{0, size()},
                             cf);
}

std::vector<int> SystemEventStore::NodeCounts(
    const EventFilter& filter) const {
  std::vector<int> out(by_node.size(), 0);
  const CompiledFilter cf = CompiledFilter::From(filter);
  if (cf.MatchesNothing()) return out;
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    if (cf.Matches(cats[i], subs[i])) {
      ++out[static_cast<std::size_t>(nodes[i])];
    }
  }
  return out;
}

bool SystemEventStore::AnyAtNode(NodeId node, TimeInterval window,
                                 const EventFilter& filter) const {
  return CountAtNode(node, window, filter) > 0;
}

int SystemEventStore::CountAtNode(NodeId node, TimeInterval window,
                                  const EventFilter& filter) const {
  const EventColumns& c = by_node.at(static_cast<std::size_t>(node.value));
  const RowRange r = WindowRange(c.times, window);
  return CountMatchesInRange(c.cats.data(), c.subs.data(), r,
                             CompiledFilter::From(filter));
}

bool SystemEventStore::AnyAtRackPeers(NodeId node, TimeInterval window,
                                      const EventFilter& filter) const {
  const RackId rack = rack_of.at(static_cast<std::size_t>(node.value));
  if (!rack.valid()) return false;
  const EventColumns& c = by_rack[static_cast<std::size_t>(rack.value)];
  const RowRange r = WindowRange(c.times, window);
  if (r.empty()) return false;
  const CompiledFilter cf = CompiledFilter::From(filter);
  if (cf.MatchesEverything()) {
    // Peers have an event iff the rack window holds more events than the
    // node itself does: two extra binary searches instead of a scan.
    return r.count() >
           static_cast<std::size_t>(
               CountAtNode(node, window, EventFilter::Any()));
  }
  return AnyPeerMatchInRange(c.nodes.data(), c.cats.data(), c.subs.data(), r,
                             node.value, cf);
}

bool SystemEventStore::AnyAtSystemPeers(NodeId node, TimeInterval window,
                                        const EventFilter& filter) const {
  const RowRange r = WindowRange(starts, window);
  if (r.empty()) return false;
  const CompiledFilter cf = CompiledFilter::From(filter);
  if (cf.MatchesEverything()) {
    return r.count() >
           static_cast<std::size_t>(
               CountAtNode(node, window, EventFilter::Any()));
  }
  return AnyPeerMatchInRange(nodes.data(), cats.data(), subs.data(), r,
                             node.value, cf);
}

int SystemEventStore::DistinctRackPeersWithEvent(NodeId node,
                                                 TimeInterval window,
                                                 const EventFilter& filter,
                                                 int* num_peers) const {
  const RackId rack = rack_of.at(static_cast<std::size_t>(node.value));
  if (!rack.valid()) {
    if (num_peers != nullptr) *num_peers = 0;
    return 0;
  }
  if (num_peers != nullptr) {
    *num_peers =
        std::max(0, rack_size[static_cast<std::size_t>(rack.value)] - 1);
  }
  const EventColumns& c = by_rack[static_cast<std::size_t>(rack.value)];
  return CountDistinctPeersInRange(c.nodes.data(), c.cats.data(),
                                   c.subs.data(), WindowRange(c.times, window),
                                   node.value, CompiledFilter::From(filter));
}

int SystemEventStore::DistinctSystemPeersWithEvent(NodeId node,
                                                   TimeInterval window,
                                                   const EventFilter& filter,
                                                   int* num_peers) const {
  if (num_peers != nullptr) *num_peers = std::max(0, config->num_nodes - 1);
  return CountDistinctPeersInRange(nodes.data(), cats.data(), subs.data(),
                                   WindowRange(starts, window), node.value,
                                   CompiledFilter::From(filter));
}

const SystemEventStore* EventStoreSet::Find(SystemId sys) const {
  for (const SystemEventStore& se : stores) {
    if (se.id == sys) return &se;
  }
  return nullptr;
}

EventStoreSet EventStoreSet::Build(const Trace& trace,
                                   std::span<const SystemId> systems) {
  obs::ScopedTimer timer("index_build");
  EventStoreSet set;
  std::vector<SystemId> wanted;
  if (systems.empty()) {
    for (const SystemConfig& s : trace.systems()) wanted.push_back(s.id);
  } else {
    // Invalid (negative) ids would index the slot table out of bounds below;
    // skip them the same way unknown-system records are skipped. The caller
    // notices when it looks its system up (EventIndex throws).
    for (SystemId id : systems) {
      if (id.valid()) wanted.push_back(id);
    }
  }
  set.stores.reserve(wanted.size());
  // slot[system id] -> store index, so the single pass below is O(1) per
  // record. System ids are small dense integers (trace validates them).
  std::int32_t max_id = -1;
  for (SystemId id : wanted) max_id = std::max(max_id, id.value);
  std::vector<std::int32_t> slot(static_cast<std::size_t>(max_id + 1), -1);
  for (SystemId id : wanted) {
    slot[static_cast<std::size_t>(id.value)] =
        static_cast<std::int32_t>(set.stores.size());
    SystemEventStore se;
    se.Init(trace.system(id));
    set.stores.push_back(std::move(se));
  }
  // trace.failures() is (start, system, node)-sorted, so each system's
  // subsequence arrives time-sorted and Append's ordering check holds.
  // Records with system ids outside [0, max_id] — including negative ids
  // from untrusted import or replay paths — are skipped, not indexed.
  for (const FailureRecord& f : trace.failures()) {
    if (f.system.value < 0 || f.system.value > max_id) continue;
    const std::int32_t s = slot[static_cast<std::size_t>(f.system.value)];
    if (s >= 0) set.stores[static_cast<std::size_t>(s)].Append(f);
  }
  return set;
}

}  // namespace hpcfail::core
