#include "core/checkpoint_sim.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace hpcfail::core {

CheckpointPolicy StaticPolicy(TimeSec interval) {
  if (interval <= 0) throw std::invalid_argument("non-positive interval");
  return [interval](TimeSec, std::optional<FailureCategory>) {
    return interval;
  };
}

CheckpointPolicy AdaptivePolicy(TimeSec base_interval,
                                TimeSec elevated_interval, TimeSec memory,
                                std::vector<FailureCategory> triggers) {
  if (base_interval <= 0 || elevated_interval <= 0 || memory <= 0) {
    throw std::invalid_argument("non-positive policy parameter");
  }
  return [=](TimeSec since, std::optional<FailureCategory> type) {
    if (since > memory || !type) return base_interval;
    if (!triggers.empty() &&
        std::find(triggers.begin(), triggers.end(), *type) ==
            triggers.end()) {
      return base_interval;
    }
    return elevated_interval;
  };
}

CheckpointSimResult SimulateCheckpointing(const EventIndex& index,
                                          SystemId system,
                                          const CheckpointSimConfig& config,
                                          const CheckpointPolicy& policy) {
  if (config.nodes.empty()) {
    throw std::invalid_argument("application occupies no nodes");
  }
  if (!config.window.valid() || config.window.duration() <= 0) {
    throw std::invalid_argument("invalid simulation window");
  }
  // Failures of the application's nodes inside the window, time-sorted.
  std::vector<std::pair<TimeSec, FailureCategory>> hits;
  for (const FailureRecord& f : index.failures_of(system)) {
    if (f.start <= config.window.begin || f.start > config.window.end) {
      continue;
    }
    if (std::find(config.nodes.begin(), config.nodes.end(), f.node) !=
        config.nodes.end()) {
      hits.emplace_back(f.start, f.category);
    }
  }

  CheckpointSimResult out;
  TimeSec t = config.window.begin;
  TimeSec work_since_ckpt = 0;
  std::size_t next_hit = 0;
  TimeSec last_failure_time = std::numeric_limits<TimeSec>::min() / 2;
  std::optional<FailureCategory> last_failure_type;

  auto fail = [&](TimeSec when, FailureCategory type) {
    out.lost_work += work_since_ckpt;
    work_since_ckpt = 0;
    ++out.failures;
    last_failure_time = when;
    last_failure_type = type;
    const TimeSec restart_end =
        std::min<TimeSec>(when + config.restart_cost, config.window.end);
    out.restart_time += restart_end - when;
    t = restart_end;
    // Failures that strike while the application is already down are
    // absorbed by the same restart.
    while (next_hit < hits.size() && hits[next_hit].first <= t) ++next_hit;
  };

  while (t < config.window.end) {
    const TimeSec since = t - last_failure_time;
    const TimeSec interval =
        std::max<TimeSec>(kMinute, policy(since, last_failure_type));
    const TimeSec compute_end =
        std::min<TimeSec>(t + interval, config.window.end);
    // Does a failure interrupt the compute segment?
    if (next_hit < hits.size() && hits[next_hit].first <= compute_end) {
      const auto [when, type] = hits[next_hit];
      ++next_hit;
      work_since_ckpt += when - t;
      fail(when, type);
      continue;
    }
    work_since_ckpt += compute_end - t;
    t = compute_end;
    if (t >= config.window.end) break;
    // Write the checkpoint; a failure during the write voids it.
    const TimeSec ckpt_end =
        std::min<TimeSec>(t + config.checkpoint_cost, config.window.end);
    if (next_hit < hits.size() && hits[next_hit].first <= ckpt_end) {
      const auto [when, type] = hits[next_hit];
      ++next_hit;
      out.checkpoint_time += when - t;
      fail(when, type);
      continue;
    }
    out.checkpoint_time += ckpt_end - t;
    t = ckpt_end;
    out.useful_work += work_since_ckpt;
    work_since_ckpt = 0;
    ++out.checkpoints;
  }
  // Work in flight at the end of the window is checkpointable.
  out.useful_work += work_since_ckpt;

  const double wall = static_cast<double>(config.window.duration());
  out.overhead =
      wall > 0.0 ? 1.0 - static_cast<double>(out.useful_work) / wall : 0.0;
  return out;
}

}  // namespace hpcfail::core
