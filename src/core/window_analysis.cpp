#include "core/window_analysis.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace hpcfail::core {

std::string_view ToString(Scope s) {
  switch (s) {
    case Scope::kSameNode: return "same-node";
    case Scope::kRackPeers: return "rack-peers";
    case Scope::kSystemPeers: return "system-peers";
  }
  return "invalid";
}

stats::Proportion WindowAnalyzer::ConditionalProbability(
    const EventFilter& trigger, const EventFilter& target, Scope scope,
    TimeSec window) const {
  long long trials = 0;
  long long successes = 0;
  for (SystemId sys : index_->systems()) {
    const SystemConfig& config = index_->trace().system(sys);
    const TimeSec horizon = config.observed.end;
    for (const FailureRecord& f : index_->failures_of(sys)) {
      if (!trigger.Matches(f)) continue;
      if (f.start + window > horizon) continue;  // censored
      const TimeInterval w{f.start, f.start + window};
      switch (scope) {
        case Scope::kSameNode:
          // One trial per trigger: does this node fail again in the window?
          ++trials;
          if (index_->AnyAtNode(sys, f.node, w, target)) ++successes;
          break;
        case Scope::kRackPeers: {
          // One trial per (trigger, rack-peer) pair: the paper's rack/system
          // numbers are per-peer-node probabilities comparable to the
          // per-node random-window baseline.
          if (config.layout.empty()) continue;  // no rack information
          int peers = 0;
          const int hit =
              index_->DistinctRackPeersWithEvent(sys, f.node, w, target,
                                                 &peers);
          trials += peers;
          successes += hit;
          break;
        }
        case Scope::kSystemPeers: {
          int peers = 0;
          const int hit = index_->DistinctSystemPeersWithEvent(
              sys, f.node, w, target, &peers);
          trials += peers;
          successes += hit;
          break;
        }
      }
    }
  }
  return stats::WilsonProportion(successes, trials);
}

stats::Proportion WindowAnalyzer::BaselineProbability(
    const EventFilter& target, TimeSec window,
    const std::function<bool(SystemId, NodeId)>& node_predicate) const {
  long long trials = 0;
  long long successes = 0;
  for (SystemId sys : index_->systems()) {
    const SystemConfig& config = index_->trace().system(sys);
    const TimeSec begin = config.observed.begin;
    const long long windows_per_node = config.observed.duration() / window;
    if (windows_per_node <= 0) continue;
    // Count, per node, the number of distinct aligned windows containing at
    // least one matching failure; every (node, window) pair is one trial.
    std::vector<long long> hit_windows(
        static_cast<std::size_t>(config.num_nodes), 0);
    std::vector<long long> last_window(
        static_cast<std::size_t>(config.num_nodes), -1);
    for (const FailureRecord& f : index_->failures_of(sys)) {
      if (!target.Matches(f)) continue;
      const long long w = (f.start - begin) / window;
      if (w < 0 || w >= windows_per_node) continue;
      const auto n = static_cast<std::size_t>(f.node.value);
      if (last_window[n] != w) {
        last_window[n] = w;
        ++hit_windows[n];
      }
    }
    for (int n = 0; n < config.num_nodes; ++n) {
      if (node_predicate && !node_predicate(sys, NodeId{n})) continue;
      trials += windows_per_node;
      successes += hit_windows[static_cast<std::size_t>(n)];
    }
  }
  return stats::WilsonProportion(successes, trials);
}

ConditionalResult WindowAnalyzer::Compare(const EventFilter& trigger,
                                          const EventFilter& target,
                                          Scope scope, TimeSec window) const {
  ConditionalResult out;
  out.conditional = ConditionalProbability(trigger, target, scope, window);
  out.baseline = BaselineProbability(target, window);
  out.factor = stats::FactorIncrease(out.conditional, out.baseline);
  out.test = stats::TestProportionsDiffer(
      out.conditional.successes, out.conditional.trials,
      out.baseline.successes, out.baseline.trials);
  out.num_triggers = out.conditional.trials;
  return out;
}

WindowAnalyzer::PairwiseMatrix WindowAnalyzer::PairwiseProbabilities(
    Scope scope, TimeSec window) const {
  PairwiseMatrix out{};
  // Baselines depend only on the target type; compute each once.
  std::array<stats::Proportion, kNumFailureCategories> baselines;
  for (FailureCategory y : AllFailureCategories()) {
    baselines[static_cast<std::size_t>(y)] =
        BaselineProbability(EventFilter::Of(y), window);
  }
  for (FailureCategory x : AllFailureCategories()) {
    for (FailureCategory y : AllFailureCategories()) {
      ConditionalResult& r =
          out[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)];
      r.conditional = ConditionalProbability(EventFilter::Of(x),
                                             EventFilter::Of(y), scope,
                                             window);
      r.baseline = baselines[static_cast<std::size_t>(y)];
      r.factor = stats::FactorIncrease(r.conditional, r.baseline);
      r.test = stats::TestProportionsDiffer(
          r.conditional.successes, r.conditional.trials, r.baseline.successes,
          r.baseline.trials);
      r.num_triggers = r.conditional.trials;
    }
  }
  return out;
}

ConditionalResult WindowAnalyzer::MaintenanceAfter(const EventFilter& trigger,
                                                   TimeSec window) const {
  // Conditional: any maintenance event at the trigger's node in the window.
  // Maintenance streams are small; a per-(system, node) sorted copy makes
  // the queries cheap.
  long long trials = 0;
  long long successes = 0;
  long long base_trials = 0;
  long long base_successes = 0;
  for (SystemId sys : index_->systems()) {
    const SystemConfig& config = index_->trace().system(sys);
    std::vector<std::vector<TimeSec>> maint(
        static_cast<std::size_t>(config.num_nodes));
    for (const MaintenanceRecord& m : index_->trace().maintenance()) {
      if (m.system == sys) {
        maint[static_cast<std::size_t>(m.node.value)].push_back(m.start);
      }
    }
    for (auto& v : maint) std::sort(v.begin(), v.end());
    const TimeSec horizon = config.observed.end;
    for (const FailureRecord& f : index_->failures_of(sys)) {
      if (!trigger.Matches(f)) continue;
      if (f.start + window > horizon) continue;
      const auto& times = maint[static_cast<std::size_t>(f.node.value)];
      auto it = std::upper_bound(times.begin(), times.end(), f.start);
      ++trials;
      if (it != times.end() && *it <= f.start + window) ++successes;
    }
    // Baseline: random aligned windows per node.
    const long long windows_per_node = config.observed.duration() / window;
    if (windows_per_node > 0) {
      for (int n = 0; n < config.num_nodes; ++n) {
        const auto& times = maint[static_cast<std::size_t>(n)];
        long long hits = 0;
        long long last = -1;
        for (TimeSec t : times) {
          const long long w = (t - config.observed.begin) / window;
          if (w < 0 || w >= windows_per_node) continue;
          if (w != last) {
            last = w;
            ++hits;
          }
        }
        base_trials += windows_per_node;
        base_successes += hits;
      }
    }
  }
  ConditionalResult out;
  out.conditional = stats::WilsonProportion(successes, trials);
  out.baseline = stats::WilsonProportion(base_successes, base_trials);
  out.factor = stats::FactorIncrease(out.conditional, out.baseline);
  out.test = stats::TestProportionsDiffer(successes, trials, base_successes,
                                          base_trials);
  out.num_triggers = trials;
  return out;
}

}  // namespace hpcfail::core
