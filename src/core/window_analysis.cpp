#include "core/window_analysis.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "core/parallel.h"
#include "obs/span.h"

namespace hpcfail::core {
namespace {

// Success/trial counters for one shard (one system). Shards are merged in
// system order by ParallelReduce, so pooled counts are identical to the
// serial accumulation.
struct Counts {
  long long successes = 0;
  long long trials = 0;

  Counts& operator+=(const Counts& o) {
    successes += o.successes;
    trials += o.trials;
    return *this;
  }
};

Counts MergeCounts(Counts acc, Counts c) {
  acc += c;
  return acc;
}

void ValidateWindow(TimeSec window, const char* fn) {
  if (window <= 0) {
    throw std::invalid_argument(std::string(fn) +
                                ": window must be positive, got " +
                                std::to_string(window));
  }
}

}  // namespace

std::string_view ToString(Scope s) {
  switch (s) {
    case Scope::kSameNode: return "same-node";
    case Scope::kRackPeers: return "rack-peers";
    case Scope::kSystemPeers: return "system-peers";
  }
  return "invalid";
}

stats::Proportion WindowAnalyzer::ConditionalProbability(
    const EventFilter& trigger, const EventFilter& target, Scope scope,
    TimeSec window) const {
  ValidateWindow(window, "ConditionalProbability");
  const std::vector<SystemId>& systems = index_->systems();
  const auto count_system = [&](std::size_t s) {
    const SystemId sys = systems[s];
    const SystemConfig& config = index_->trace().system(sys);
    const TimeSec horizon = config.observed.end;
    const bool no_layout = config.layout.empty();
    const SystemEventStore& se = index_->store(sys);
    Counts c;
    // Columnar trigger scan: the loop only needs (start, node) of matching
    // records, read straight from the store's columns.
    se.ForEachMatching(trigger, [&](std::size_t i) {
      const TimeSec start = se.starts[i];
      if (start + window > horizon) return;  // censored
      const NodeId node{se.nodes[i]};
      const TimeInterval w{start, start + window};
      switch (scope) {
        case Scope::kSameNode:
          // One trial per trigger: does this node fail again in the window?
          ++c.trials;
          if (se.AnyAtNode(node, w, target)) ++c.successes;
          break;
        case Scope::kRackPeers: {
          // One trial per (trigger, rack-peer) pair: the paper's rack/system
          // numbers are per-peer-node probabilities comparable to the
          // per-node random-window baseline.
          if (no_layout) return;  // no rack information
          int peers = 0;
          const int hit =
              se.DistinctRackPeersWithEvent(node, w, target, &peers);
          c.trials += peers;
          c.successes += hit;
          break;
        }
        case Scope::kSystemPeers: {
          int peers = 0;
          const int hit =
              se.DistinctSystemPeersWithEvent(node, w, target, &peers);
          c.trials += peers;
          c.successes += hit;
          break;
        }
      }
    });
    return c;
  };
  const Counts total =
      ParallelReduce(systems.size(), Counts{}, count_system, MergeCounts);
  return stats::WilsonProportion(total.successes, total.trials);
}

stats::Proportion WindowAnalyzer::BaselineProbability(
    const EventFilter& target, TimeSec window,
    const std::function<bool(SystemId, NodeId)>& node_predicate) const {
  ValidateWindow(window, "BaselineProbability");
  const std::vector<SystemId>& systems = index_->systems();
  const auto count_system = [&](std::size_t s) {
    const SystemId sys = systems[s];
    const SystemConfig& config = index_->trace().system(sys);
    const TimeSec begin = config.observed.begin;
    const long long windows_per_node = config.observed.duration() / window;
    Counts c;
    if (windows_per_node <= 0) return c;
    // Count, per node, the number of distinct aligned windows containing at
    // least one matching failure; every (node, window) pair is one trial.
    std::vector<long long> hit_windows(
        static_cast<std::size_t>(config.num_nodes), 0);
    std::vector<long long> last_window(
        static_cast<std::size_t>(config.num_nodes), -1);
    const SystemEventStore& se = index_->store(sys);
    se.ForEachMatching(target, [&](std::size_t i) {
      const long long w = (se.starts[i] - begin) / window;
      if (w < 0 || w >= windows_per_node) return;
      const auto n = static_cast<std::size_t>(se.nodes[i]);
      if (last_window[n] != w) {
        last_window[n] = w;
        ++hit_windows[n];
      }
    });
    for (int n = 0; n < config.num_nodes; ++n) {
      if (node_predicate && !node_predicate(sys, NodeId{n})) continue;
      c.trials += windows_per_node;
      c.successes += hit_windows[static_cast<std::size_t>(n)];
    }
    return c;
  };
  const Counts total =
      ParallelReduce(systems.size(), Counts{}, count_system, MergeCounts);
  return stats::WilsonProportion(total.successes, total.trials);
}

ConditionalResult WindowAnalyzer::Compare(const EventFilter& trigger,
                                          const EventFilter& target,
                                          Scope scope, TimeSec window) const {
  ValidateWindow(window, "Compare");
  obs::ScopedTimer timer("window_query");
  ConditionalResult out;
  out.conditional = ConditionalProbability(trigger, target, scope, window);
  out.baseline = BaselineProbability(target, window);
  out.factor = stats::FactorIncrease(out.conditional, out.baseline);
  out.test = stats::TestProportionsDiffer(
      out.conditional.successes, out.conditional.trials,
      out.baseline.successes, out.baseline.trials);
  out.num_triggers = out.conditional.trials;
  return out;
}

namespace {

// All same-node pairwise cells from one pass over each node's columns.
// Every event is a trigger of its own category; the (t, t+window] range is
// found once per trigger and a category bitmask answers all six targets at
// once — instead of 36 ConditionalProbability calls each rescanning the
// trigger column and binary-searching per cell. The counts are the same
// integers the per-cell path produces, so the matrix is bit-identical.
struct PairwiseCounts {
  std::array<std::array<long long, kNumFailureCategories>,
             kNumFailureCategories>
      successes{};
  std::array<long long, kNumFailureCategories> trials{};

  PairwiseCounts& operator+=(const PairwiseCounts& o) {
    for (std::size_t x = 0; x < kNumFailureCategories; ++x) {
      trials[x] += o.trials[x];
      for (std::size_t y = 0; y < kNumFailureCategories; ++y) {
        successes[x][y] += o.successes[x][y];
      }
    }
    return *this;
  }
};

PairwiseCounts CountSameNodePairs(const SystemEventStore& se, TimeSec window,
                                  TimeSec horizon) {
  PairwiseCounts c;
  // Once a trigger's window has seen every category the system records at
  // all, the mask cannot change; the category_mask kernel gives that upper
  // bound once per system so wide windows stop scanning early.
  const std::uint32_t full = se.CategoriesPresent();
  for (const SystemEventStore::EventColumns& nc : se.by_node) {
    const std::size_t n = nc.times.size();
    for (std::size_t i = 0; i < n; ++i) {
      const TimeSec t = nc.times[i];
      if (t + window > horizon) break;  // times sorted: the rest is censored
      // Window (t, t+window]: skip ties at exactly t, then mask the
      // categories seen until the window closes.
      std::size_t j = i + 1;
      while (j < n && nc.times[j] == t) ++j;
      std::uint32_t mask = 0;
      for (; j < n && nc.times[j] <= t + window && mask != full; ++j) {
        mask |= 1u << nc.cats[j];
      }
      const auto cx = static_cast<std::size_t>(nc.cats[i]);
      ++c.trials[cx];
      for (std::size_t cy = 0; cy < kNumFailureCategories; ++cy) {
        c.successes[cx][cy] += (mask >> cy) & 1u;
      }
    }
  }
  return c;
}

}  // namespace

WindowAnalyzer::PairwiseMatrix WindowAnalyzer::PairwiseProbabilities(
    Scope scope, TimeSec window) const {
  ValidateWindow(window, "PairwiseProbabilities");
  PairwiseMatrix out{};
  // Baselines depend only on the target type; compute each once.
  std::array<stats::Proportion, kNumFailureCategories> baselines;
  ParallelFor(kNumFailureCategories, [&](std::size_t y) {
    baselines[y] = BaselineProbability(
        EventFilter::Of(static_cast<FailureCategory>(y)), window);
  });
  if (scope == Scope::kSameNode) {
    const std::vector<SystemId>& systems = index_->systems();
    const PairwiseCounts total = ParallelReduce(
        systems.size(), PairwiseCounts{},
        [&](std::size_t s) {
          const SystemConfig& config = index_->trace().system(systems[s]);
          return CountSameNodePairs(index_->store(systems[s]), window,
                                    config.observed.end);
        },
        [](PairwiseCounts acc, PairwiseCounts c) {
          acc += c;
          return acc;
        });
    for (std::size_t xi = 0; xi < kNumFailureCategories; ++xi) {
      for (std::size_t yi = 0; yi < kNumFailureCategories; ++yi) {
        ConditionalResult& r = out[xi][yi];
        r.conditional = stats::WilsonProportion(total.successes[xi][yi],
                                                total.trials[xi]);
        r.baseline = baselines[yi];
        r.factor = stats::FactorIncrease(r.conditional, r.baseline);
        r.test = stats::TestProportionsDiffer(
            r.conditional.successes, r.conditional.trials,
            r.baseline.successes, r.baseline.trials);
        r.num_triggers = r.conditional.trials;
      }
    }
    return out;
  }
  // Trigger categories no system records produce zero trials whatever the
  // target; fill those rows with the same WilsonProportion(0, 0) the full
  // scan would compute instead of running 6 cross-system scans each.
  std::uint32_t present = 0;
  for (const SystemId sys : index_->systems()) {
    present |= index_->store(sys).CategoriesPresent();
  }
  // The 36 cells are independent; each cell's counts come from the same
  // deterministic per-system reduction as the serial path, so the matrix is
  // identical for every thread count.
  ParallelFor(kNumFailureCategories * kNumFailureCategories,
              [&](std::size_t cell) {
                const std::size_t xi = cell / kNumFailureCategories;
                const std::size_t yi = cell % kNumFailureCategories;
                ConditionalResult& r = out[xi][yi];
                r.conditional = ((present >> xi) & 1u) == 0
                                    ? stats::WilsonProportion(0, 0)
                                    : ConditionalProbability(
                    EventFilter::Of(static_cast<FailureCategory>(xi)),
                    EventFilter::Of(static_cast<FailureCategory>(yi)), scope,
                    window);
                r.baseline = baselines[yi];
                r.factor = stats::FactorIncrease(r.conditional, r.baseline);
                r.test = stats::TestProportionsDiffer(
                    r.conditional.successes, r.conditional.trials,
                    r.baseline.successes, r.baseline.trials);
                r.num_triggers = r.conditional.trials;
              });
  return out;
}

ConditionalResult WindowAnalyzer::MaintenanceAfter(const EventFilter& trigger,
                                                   TimeSec window) const {
  ValidateWindow(window, "MaintenanceAfter");
  // Conditional: any maintenance event at the trigger's node in the window.
  // Maintenance streams are small; a per-(system, node) sorted copy makes
  // the queries cheap. Sharded by system like the other kernels.
  struct MaintCounts {
    Counts cond;
    Counts base;
  };
  const std::vector<SystemId>& systems = index_->systems();
  const auto count_system = [&](std::size_t s) {
    const SystemId sys = systems[s];
    const SystemConfig& config = index_->trace().system(sys);
    MaintCounts c;
    std::vector<std::vector<TimeSec>> maint(
        static_cast<std::size_t>(config.num_nodes));
    for (const MaintenanceRecord& m : index_->trace().maintenance()) {
      if (m.system == sys) {
        maint[static_cast<std::size_t>(m.node.value)].push_back(m.start);
      }
    }
    for (auto& v : maint) std::sort(v.begin(), v.end());
    const TimeSec horizon = config.observed.end;
    const SystemEventStore& se = index_->store(sys);
    se.ForEachMatching(trigger, [&](std::size_t i) {
      const TimeSec start = se.starts[i];
      if (start + window > horizon) return;
      const auto& times = maint[static_cast<std::size_t>(se.nodes[i])];
      auto it = std::upper_bound(times.begin(), times.end(), start);
      ++c.cond.trials;
      if (it != times.end() && *it <= start + window) ++c.cond.successes;
    });
    // Baseline: random aligned windows per node.
    const long long windows_per_node = config.observed.duration() / window;
    if (windows_per_node > 0) {
      for (int n = 0; n < config.num_nodes; ++n) {
        const auto& times = maint[static_cast<std::size_t>(n)];
        long long hits = 0;
        long long last = -1;
        for (TimeSec t : times) {
          const long long w = (t - config.observed.begin) / window;
          if (w < 0 || w >= windows_per_node) continue;
          if (w != last) {
            last = w;
            ++hits;
          }
        }
        c.base.trials += windows_per_node;
        c.base.successes += hits;
      }
    }
    return c;
  };
  const MaintCounts total = ParallelReduce(
      systems.size(), MaintCounts{}, count_system,
      [](MaintCounts acc, MaintCounts c) {
        acc.cond += c.cond;
        acc.base += c.base;
        return acc;
      });
  ConditionalResult out;
  out.conditional =
      stats::WilsonProportion(total.cond.successes, total.cond.trials);
  out.baseline =
      stats::WilsonProportion(total.base.successes, total.base.trials);
  out.factor = stats::FactorIncrease(out.conditional, out.baseline);
  out.test = stats::TestProportionsDiffer(total.cond.successes,
                                          total.cond.trials,
                                          total.base.successes,
                                          total.base.trials);
  out.num_triggers = total.cond.trials;
  return out;
}

}  // namespace hpcfail::core
