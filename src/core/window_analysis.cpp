#include "core/window_analysis.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "core/parallel.h"
#include "obs/span.h"

namespace hpcfail::core {
namespace {

// Success/trial counters for one shard (one system). Shards are merged in
// system order by ParallelReduce, so pooled counts are identical to the
// serial accumulation.
struct Counts {
  long long successes = 0;
  long long trials = 0;

  Counts& operator+=(const Counts& o) {
    successes += o.successes;
    trials += o.trials;
    return *this;
  }
};

Counts MergeCounts(Counts acc, Counts c) {
  acc += c;
  return acc;
}

void ValidateWindow(TimeSec window, const char* fn) {
  if (window <= 0) {
    throw std::invalid_argument(std::string(fn) +
                                ": window must be positive, got " +
                                std::to_string(window));
  }
}

}  // namespace

std::string_view ToString(Scope s) {
  switch (s) {
    case Scope::kSameNode: return "same-node";
    case Scope::kRackPeers: return "rack-peers";
    case Scope::kSystemPeers: return "system-peers";
  }
  return "invalid";
}

stats::Proportion WindowAnalyzer::ConditionalProbability(
    const EventFilter& trigger, const EventFilter& target, Scope scope,
    TimeSec window) const {
  ValidateWindow(window, "ConditionalProbability");
  const std::vector<SystemId>& systems = index_->systems();
  const auto count_system = [&](std::size_t s) {
    const SystemId sys = systems[s];
    const SystemConfig& config = index_->trace().system(sys);
    const TimeSec horizon = config.observed.end;
    Counts c;
    for (const FailureRecord& f : index_->failures_of(sys)) {
      if (!trigger.Matches(f)) continue;
      if (f.start + window > horizon) continue;  // censored
      const TimeInterval w{f.start, f.start + window};
      switch (scope) {
        case Scope::kSameNode:
          // One trial per trigger: does this node fail again in the window?
          ++c.trials;
          if (index_->AnyAtNode(sys, f.node, w, target)) ++c.successes;
          break;
        case Scope::kRackPeers: {
          // One trial per (trigger, rack-peer) pair: the paper's rack/system
          // numbers are per-peer-node probabilities comparable to the
          // per-node random-window baseline.
          if (config.layout.empty()) continue;  // no rack information
          int peers = 0;
          const int hit =
              index_->DistinctRackPeersWithEvent(sys, f.node, w, target,
                                                 &peers);
          c.trials += peers;
          c.successes += hit;
          break;
        }
        case Scope::kSystemPeers: {
          int peers = 0;
          const int hit = index_->DistinctSystemPeersWithEvent(
              sys, f.node, w, target, &peers);
          c.trials += peers;
          c.successes += hit;
          break;
        }
      }
    }
    return c;
  };
  const Counts total =
      ParallelReduce(systems.size(), Counts{}, count_system, MergeCounts);
  return stats::WilsonProportion(total.successes, total.trials);
}

stats::Proportion WindowAnalyzer::BaselineProbability(
    const EventFilter& target, TimeSec window,
    const std::function<bool(SystemId, NodeId)>& node_predicate) const {
  ValidateWindow(window, "BaselineProbability");
  const std::vector<SystemId>& systems = index_->systems();
  const auto count_system = [&](std::size_t s) {
    const SystemId sys = systems[s];
    const SystemConfig& config = index_->trace().system(sys);
    const TimeSec begin = config.observed.begin;
    const long long windows_per_node = config.observed.duration() / window;
    Counts c;
    if (windows_per_node <= 0) return c;
    // Count, per node, the number of distinct aligned windows containing at
    // least one matching failure; every (node, window) pair is one trial.
    std::vector<long long> hit_windows(
        static_cast<std::size_t>(config.num_nodes), 0);
    std::vector<long long> last_window(
        static_cast<std::size_t>(config.num_nodes), -1);
    for (const FailureRecord& f : index_->failures_of(sys)) {
      if (!target.Matches(f)) continue;
      const long long w = (f.start - begin) / window;
      if (w < 0 || w >= windows_per_node) continue;
      const auto n = static_cast<std::size_t>(f.node.value);
      if (last_window[n] != w) {
        last_window[n] = w;
        ++hit_windows[n];
      }
    }
    for (int n = 0; n < config.num_nodes; ++n) {
      if (node_predicate && !node_predicate(sys, NodeId{n})) continue;
      c.trials += windows_per_node;
      c.successes += hit_windows[static_cast<std::size_t>(n)];
    }
    return c;
  };
  const Counts total =
      ParallelReduce(systems.size(), Counts{}, count_system, MergeCounts);
  return stats::WilsonProportion(total.successes, total.trials);
}

ConditionalResult WindowAnalyzer::Compare(const EventFilter& trigger,
                                          const EventFilter& target,
                                          Scope scope, TimeSec window) const {
  ValidateWindow(window, "Compare");
  obs::ScopedTimer timer("window_query");
  ConditionalResult out;
  out.conditional = ConditionalProbability(trigger, target, scope, window);
  out.baseline = BaselineProbability(target, window);
  out.factor = stats::FactorIncrease(out.conditional, out.baseline);
  out.test = stats::TestProportionsDiffer(
      out.conditional.successes, out.conditional.trials,
      out.baseline.successes, out.baseline.trials);
  out.num_triggers = out.conditional.trials;
  return out;
}

WindowAnalyzer::PairwiseMatrix WindowAnalyzer::PairwiseProbabilities(
    Scope scope, TimeSec window) const {
  ValidateWindow(window, "PairwiseProbabilities");
  PairwiseMatrix out{};
  // Baselines depend only on the target type; compute each once.
  std::array<stats::Proportion, kNumFailureCategories> baselines;
  ParallelFor(kNumFailureCategories, [&](std::size_t y) {
    baselines[y] = BaselineProbability(
        EventFilter::Of(static_cast<FailureCategory>(y)), window);
  });
  // The 36 cells are independent; each cell's counts come from the same
  // deterministic per-system reduction as the serial path, so the matrix is
  // identical for every thread count.
  ParallelFor(kNumFailureCategories * kNumFailureCategories,
              [&](std::size_t cell) {
                const std::size_t xi = cell / kNumFailureCategories;
                const std::size_t yi = cell % kNumFailureCategories;
                ConditionalResult& r = out[xi][yi];
                r.conditional = ConditionalProbability(
                    EventFilter::Of(static_cast<FailureCategory>(xi)),
                    EventFilter::Of(static_cast<FailureCategory>(yi)), scope,
                    window);
                r.baseline = baselines[yi];
                r.factor = stats::FactorIncrease(r.conditional, r.baseline);
                r.test = stats::TestProportionsDiffer(
                    r.conditional.successes, r.conditional.trials,
                    r.baseline.successes, r.baseline.trials);
                r.num_triggers = r.conditional.trials;
              });
  return out;
}

ConditionalResult WindowAnalyzer::MaintenanceAfter(const EventFilter& trigger,
                                                   TimeSec window) const {
  ValidateWindow(window, "MaintenanceAfter");
  // Conditional: any maintenance event at the trigger's node in the window.
  // Maintenance streams are small; a per-(system, node) sorted copy makes
  // the queries cheap. Sharded by system like the other kernels.
  struct MaintCounts {
    Counts cond;
    Counts base;
  };
  const std::vector<SystemId>& systems = index_->systems();
  const auto count_system = [&](std::size_t s) {
    const SystemId sys = systems[s];
    const SystemConfig& config = index_->trace().system(sys);
    MaintCounts c;
    std::vector<std::vector<TimeSec>> maint(
        static_cast<std::size_t>(config.num_nodes));
    for (const MaintenanceRecord& m : index_->trace().maintenance()) {
      if (m.system == sys) {
        maint[static_cast<std::size_t>(m.node.value)].push_back(m.start);
      }
    }
    for (auto& v : maint) std::sort(v.begin(), v.end());
    const TimeSec horizon = config.observed.end;
    for (const FailureRecord& f : index_->failures_of(sys)) {
      if (!trigger.Matches(f)) continue;
      if (f.start + window > horizon) continue;
      const auto& times = maint[static_cast<std::size_t>(f.node.value)];
      auto it = std::upper_bound(times.begin(), times.end(), f.start);
      ++c.cond.trials;
      if (it != times.end() && *it <= f.start + window) ++c.cond.successes;
    }
    // Baseline: random aligned windows per node.
    const long long windows_per_node = config.observed.duration() / window;
    if (windows_per_node > 0) {
      for (int n = 0; n < config.num_nodes; ++n) {
        const auto& times = maint[static_cast<std::size_t>(n)];
        long long hits = 0;
        long long last = -1;
        for (TimeSec t : times) {
          const long long w = (t - config.observed.begin) / window;
          if (w < 0 || w >= windows_per_node) continue;
          if (w != last) {
            last = w;
            ++hits;
          }
        }
        c.base.trials += windows_per_node;
        c.base.successes += hits;
      }
    }
    return c;
  };
  const MaintCounts total = ParallelReduce(
      systems.size(), MaintCounts{}, count_system,
      [](MaintCounts acc, MaintCounts c) {
        acc.cond += c.cond;
        acc.base += c.base;
        return acc;
      });
  ConditionalResult out;
  out.conditional =
      stats::WilsonProportion(total.cond.successes, total.cond.trials);
  out.baseline =
      stats::WilsonProportion(total.base.successes, total.base.trials);
  out.factor = stats::FactorIncrease(out.conditional, out.baseline);
  out.test = stats::TestProportionsDiffer(total.cond.successes,
                                          total.cond.trials,
                                          total.base.successes,
                                          total.base.trials);
  out.num_triggers = total.cond.trials;
  return out;
}

}  // namespace hpcfail::core
