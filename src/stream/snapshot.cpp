#include "stream/snapshot.h"

#include <bit>
#include <istream>
#include <ostream>

namespace hpcfail::stream::snapshot {
namespace {

constexpr char kMagic[8] = {'H', 'P', 'C', 'F', 'S', 'N', 'A', 'P'};

void AppendLe(std::string& out, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

}  // namespace

void Writer::PutU8(std::uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
void Writer::PutU32(std::uint32_t v) { AppendLe(buffer_, v, 4); }
void Writer::PutU64(std::uint64_t v) { AppendLe(buffer_, v, 8); }
void Writer::PutI64(std::int64_t v) {
  PutU64(static_cast<std::uint64_t>(v));
}
void Writer::PutDouble(double v) { PutU64(std::bit_cast<std::uint64_t>(v)); }
void Writer::PutString(std::string_view s) {
  PutU64(s.size());
  buffer_.append(s.data(), s.size());
}

const unsigned char* Reader::Take(std::size_t n) {
  if (n > data_.size() - pos_) {
    throw SnapshotError("payload truncated");
  }
  const auto* p =
      reinterpret_cast<const unsigned char*>(data_.data()) + pos_;
  pos_ += n;
  return p;
}

std::uint8_t Reader::GetU8() { return *Take(1); }

std::uint32_t Reader::GetU32() {
  const unsigned char* p = Take(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t Reader::GetU64() {
  const unsigned char* p = Take(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::int64_t Reader::GetI64() {
  return static_cast<std::int64_t>(GetU64());
}

double Reader::GetDouble() { return std::bit_cast<double>(GetU64()); }

std::string Reader::GetString() {
  const std::size_t n = GetSize(1);
  const unsigned char* p = Take(n);
  return std::string(reinterpret_cast<const char*>(p), n);
}

std::size_t Reader::GetSize(std::size_t min_element_bytes) {
  const std::uint64_t n = GetU64();
  if (min_element_bytes > 0 && n > remaining() / min_element_bytes) {
    throw SnapshotError("container size exceeds payload");
  }
  return static_cast<std::size_t>(n);
}

std::uint64_t Fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void WriteEnvelope(std::ostream& os, std::string_view payload) {
  std::string header;
  header.append(kMagic, sizeof(kMagic));
  AppendLe(header, kFormatVersion, 4);
  AppendLe(header, payload.size(), 8);
  os.write(header.data(), static_cast<std::streamsize>(header.size()));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  std::string footer;
  AppendLe(footer, Fnv1a64(payload), 8);
  os.write(footer.data(), static_cast<std::streamsize>(footer.size()));
  if (!os) throw std::runtime_error("snapshot: stream write failed");
}

std::string ReadEnvelope(std::istream& is) {
  char magic[sizeof(kMagic)];
  if (!is.read(magic, sizeof(magic)) ||
      std::string_view(magic, sizeof(magic)) !=
          std::string_view(kMagic, sizeof(kMagic))) {
    throw SnapshotError("bad magic (not a snapshot file?)");
  }
  char fixed[12];
  if (!is.read(fixed, sizeof(fixed))) throw SnapshotError("truncated header");
  Reader header(std::string_view(fixed, sizeof(fixed)));
  const std::uint32_t version = header.GetU32();
  if (version != kFormatVersion) {
    throw SnapshotError("unsupported version " + std::to_string(version));
  }
  const std::uint64_t size = header.GetU64();
  // A torn header can claim an absurd size; cap before allocating.
  if (size > (1ULL << 32)) throw SnapshotError("payload size implausible");
  std::string payload(static_cast<std::size_t>(size), '\0');
  if (!is.read(payload.data(), static_cast<std::streamsize>(size))) {
    throw SnapshotError("truncated payload");
  }
  char sum[8];
  if (!is.read(sum, sizeof(sum))) throw SnapshotError("missing checksum");
  Reader footer(std::string_view(sum, sizeof(sum)));
  if (footer.GetU64() != Fnv1a64(payload)) {
    throw SnapshotError("checksum mismatch (corrupted snapshot)");
  }
  return payload;
}

}  // namespace hpcfail::stream::snapshot
