// Online counterpart of core::EventIndex: accepts failure events one at a
// time, tolerates bounded out-of-order delivery, and keeps the same
// per-system / per-node / per-rack structures (core::SystemEventStore) so
// window queries answer through the exact same code as the batch index.
//
// Ordering model. Events are buffered in a reorder buffer and released to
// the stores (and the registered sink) in (start, system, node) order — the
// same total order Trace::Finalize sorts by — once the watermark passes
// them. The watermark trails the newest event seen by `reorder_tolerance`
// seconds: an event may arrive up to that much earlier than the newest
// event already ingested; anything older is rejected as late (counted, not
// silently dropped). With tolerance 0 the input must be time-sorted.
//
// Determinism. The released sequence depends only on the ingested sequence,
// never on batching: feeding a trace event-by-event, via CatchUp() in one
// call, or split around a checkpoint/restore cycle yields bit-identical
// store contents and sink deliveries per system.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "core/event_store.h"
#include "stream/snapshot.h"
#include "trace/system.h"

namespace hpcfail::stream {

struct StreamConfig {
  // How far behind the newest ingested event a new event's start may lie
  // before it is rejected as late. 0 requires time-sorted input.
  TimeSec reorder_tolerance = 0;
};

enum class IngestStatus {
  kAccepted,               // buffered; will be released by the watermark
  kRejectedLate,           // start is before the current watermark
  kRejectedUnknownSystem,  // system id not configured
  kRejectedBadRecord,      // node out of range or inconsistent record
};

struct IngestCounters {
  long long accepted = 0;
  long long released = 0;
  long long rejected_late = 0;
  long long rejected_unknown_system = 0;
  long long rejected_bad_record = 0;

  long long rejected() const {
    return rejected_late + rejected_unknown_system + rejected_bad_record;
  }
};

class IncrementalEventIndex {
 public:
  // Watermark value before any event has been ingested.
  static constexpr TimeSec kNoWatermark =
      std::numeric_limits<TimeSec>::min();

  explicit IncrementalEventIndex(std::vector<SystemConfig> systems,
                                 StreamConfig config = {});

  IncrementalEventIndex(const IncrementalEventIndex&) = delete;
  IncrementalEventIndex& operator=(const IncrementalEventIndex&) = delete;

  // Receives every released record, in release order. During CatchUp the
  // sink runs on pool workers, one task per system: calls for the same
  // system_index never overlap, calls for different systems may.
  using Sink = std::function<void(std::size_t system_index,
                                  const FailureRecord&)>;
  void SetSink(Sink sink) { sink_ = std::move(sink); }

  // Feeds one event; releases everything the advanced watermark uncovers.
  // Throws std::logic_error after Finish().
  IngestStatus Ingest(const FailureRecord& r);

  // Sharded catch-up replay of a backlog: classifies/buffers every record
  // exactly like repeated Ingest() calls, then processes the released
  // events per system on the thread pool (core::SetDefaultThreadCount;
  // threads == 1 forces the serial path). Final state is bit-identical to
  // one-by-one ingestion for every thread count.
  IngestCounters CatchUp(std::span<const FailureRecord> records,
                         int threads = 0);

  // Flushes the reorder buffer (watermark -> +infinity). Further Ingest()
  // calls throw. Idempotent.
  void Finish();
  bool finished() const { return finished_; }

  TimeSec watermark() const;
  std::size_t num_buffered() const { return buffer_.size() - head_; }
  const IngestCounters& counters() const { return counters_; }

  // Configured systems, in indexing order.
  const std::vector<SystemConfig>& systems() const { return systems_; }
  const StreamConfig& config() const { return config_; }

  // ---- Queries over released events, mirroring core::EventIndex.
  core::RecordSpan failures_of(SystemId sys) const;
  bool AnyAtNode(SystemId sys, NodeId node, TimeInterval window,
                 const core::EventFilter& filter) const;
  int CountAtNode(SystemId sys, NodeId node, TimeInterval window,
                  const core::EventFilter& filter) const;
  bool AnyAtRackPeers(SystemId sys, NodeId node, TimeInterval window,
                      const core::EventFilter& filter) const;
  bool AnyAtSystemPeers(SystemId sys, NodeId node, TimeInterval window,
                        const core::EventFilter& filter) const;
  int DistinctRackPeersWithEvent(SystemId sys, NodeId node,
                                 TimeInterval window,
                                 const core::EventFilter& filter,
                                 int* num_peers) const;
  int DistinctSystemPeersWithEvent(SystemId sys, NodeId node,
                                   TimeInterval window,
                                   const core::EventFilter& filter,
                                   int* num_peers) const;
  long long Count(const core::EventFilter& filter) const;
  std::vector<int> NodeCounts(SystemId sys,
                              const core::EventFilter& filter) const;

  // ---- Checkpointing. Saves/restores all mutable state (stores, reorder
  // buffer, watermark, counters). LoadFrom validates that the snapshot was
  // taken with the same system configuration and throws SnapshotError
  // otherwise. The sink is NOT re-fired for restored events.
  void SaveTo(snapshot::Writer& w) const;
  void LoadFrom(snapshot::Reader& r);

 private:
  struct Buffered {
    FailureRecord record;
    std::size_t system_index = 0;
    std::uint64_t seq = 0;  // arrival order; breaks full ties
  };
  struct BufferedOrder {
    bool operator()(const Buffered& a, const Buffered& b) const {
      if (a.record.start != b.record.start) {
        return a.record.start < b.record.start;
      }
      if (a.record.system != b.record.system) {
        return a.record.system < b.record.system;
      }
      if (a.record.node != b.record.node) return a.record.node < b.record.node;
      return a.seq < b.seq;
    }
  };

  const core::SystemEventStore& Get(SystemId sys) const;
  int FindSystemIndex(SystemId sys) const;  // -1 when unknown
  IngestStatus Classify(const FailureRecord& r, std::size_t* system_index);
  // Releases one record into its store and the sink.
  void Process(std::size_t system_index, const FailureRecord& r);
  // Sorted insert into the reorder buffer (same total order the old
  // multiset kept, without a node allocation per record).
  void InsertBuffered(Buffered b);
  // Drops the consumed [0, head_) prefix once it dominates the vector.
  void CompactBuffer();
  // Pops and processes every buffered event below the watermark.
  void Drain();
  std::uint64_t ConfigFingerprint() const;

  StreamConfig config_;
  std::vector<SystemConfig> systems_;
  std::vector<core::SystemEventStore> stores_;
  // Reorder buffer: a BufferedOrder-sorted vector plus a consumed-prefix
  // cursor. Live entries are [head_, size()). Streaming input is nearly
  // sorted, so inserts land close to the tail and releases advance head_ —
  // both without the per-record malloc/free the multiset paid.
  std::vector<Buffered> buffer_;
  std::size_t head_ = 0;
  // Dense system-id -> index map (kept only while ids stay small, see
  // kMaxDenseSystemId); empty means FindSystemIndex falls back to the
  // linear scan.
  std::vector<std::int32_t> sys_slot_;
  Sink sink_;
  TimeSec max_seen_ = kNoWatermark;
  bool any_seen_ = false;
  bool finished_ = false;
  std::uint64_t next_seq_ = 0;
  IngestCounters counters_;
};

}  // namespace hpcfail::stream
