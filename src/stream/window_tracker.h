// Online version of the paper's central measurement: conditional failure
// probability in the window after a failure vs the random-window baseline
// (WindowAnalyzer::Compare), tracked incrementally at same-node, rack-peer
// and system-peer scope from a single pass over the event stream.
//
// Algorithm. Every trigger failure opens a pending window kept in a
// per-system consumed-prefix vector ordered by start time. Each arriving event
// updates the pending windows it falls into (same-node hit flag, distinct
// rack/system peer sets), and a pending window is resolved into the
// success/trial counters as soon as the stream time passes its end — so
// every event is appended once and resolved once (amortized O(1) eviction),
// plus one scan of the windows currently open. Baseline hits use the same
// aligned-window bookkeeping as the batch analyzer (one running
// last-window-index per node).
//
// Parity. Counts depend only on the per-system event order the
// IncrementalEventIndex releases (time-sorted). After Finish(), Result() is
// bit-identical to WindowAnalyzer::Compare on the same data — asserted by
// tests/test_stream_parity.cpp — including after out-of-order delivery
// within tolerance, sharded catch-up at any thread count, and a
// checkpoint/restore cycle.
#pragma once

#include <vector>

#include "core/event_store.h"
#include "core/window_analysis.h"
#include "stream/snapshot.h"

namespace hpcfail::stream {

struct WindowTrackerConfig {
  core::EventFilter trigger;  // which failures open a window
  core::EventFilter target;   // which follow-ups count as a success
  TimeSec window = kWeek;
};

class StreamingWindowTracker {
 public:
  // `systems` must outlive the tracker (the streaming engine owns both).
  // Throws std::invalid_argument when window <= 0, like the batch analyzer.
  StreamingWindowTracker(const std::vector<SystemConfig>& systems,
                         WindowTrackerConfig config);

  // Feeds one released event. Events must arrive in non-decreasing start
  // order per system; system_index is the position in `systems`. Touches
  // only that system's state, so distinct systems may be fed concurrently.
  void OnEvent(std::size_t system_index, const FailureRecord& f);

  // Resolves every pending window that can no longer change given that all
  // events before `watermark` have been delivered for `system_index`.
  void AdvanceTo(std::size_t system_index, TimeSec watermark);

  // Resolves everything (end of stream).
  void Finish();

  // Conditional-vs-baseline comparison over the resolved windows of all
  // systems, assembled exactly like WindowAnalyzer::Compare. Mid-stream
  // this reflects resolved triggers only; after Finish() it equals the
  // batch result on the same events.
  core::ConditionalResult Result(core::Scope scope) const;

  // Resolved trigger windows so far (same-node scope trial count).
  long long resolved_triggers() const;
  // Open windows across all systems (bounded by the event rate x window).
  std::size_t pending_windows() const;

  const WindowTrackerConfig& config() const { return config_; }

  void SaveTo(snapshot::Writer& w) const;
  void LoadFrom(snapshot::Reader& r);

 private:
  struct Counts {
    long long successes = 0;
    long long trials = 0;
  };
  struct PendingWindow {
    TimeSec start = 0;
    NodeId node;
    bool same_node_hit = false;
    std::vector<std::int32_t> rack_seen;  // distinct rack peers that fired
    std::vector<std::int32_t> sys_seen;   // distinct system peers that fired
  };
  struct Lane {
    // Derived from the system config (not snapshotted).
    const SystemConfig* config = nullptr;
    std::vector<RackId> rack_of;  // index == node id
    std::vector<int> rack_size;   // index == rack id
    long long windows_per_node = 0;
    // Mutable stream state. Open windows, ordered by start; live entries
    // are [head, pending.size()) — resolved windows advance `head` and are
    // recycled through `pool` so their rack/sys distinct-lists keep their
    // heap capacity instead of paying a malloc/free per trigger (the
    // per-event deque churn dominated the streaming-engine ingest profile).
    std::vector<PendingWindow> pending;
    std::size_t head = 0;
    std::vector<PendingWindow> pool;  // recycled windows, capacity retained
    Counts same_node, rack_peers, system_peers;
    std::vector<long long> baseline_hits;  // per node
    std::vector<long long> baseline_last;  // last counted window, -1 = none
  };

  void Resolve(Lane& lane, const PendingWindow& p);
  void ResolveBefore(Lane& lane, TimeSec t);
  std::uint64_t ConfigFingerprint() const;

  WindowTrackerConfig config_;
  // The trigger/target filters compiled against the packed (category,
  // subcategory) byte encoding: two byte compares per event instead of four
  // optional<enum> compares, valid because OnEvent only ever sees released
  // (validated, consistent) records.
  core::CompiledFilter trigger_cf_;
  core::CompiledFilter target_cf_;
  std::vector<Lane> lanes_;
};

}  // namespace hpcfail::stream
