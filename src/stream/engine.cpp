#include "stream/engine.h"

#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "obs/span.h"

namespace hpcfail::stream {
namespace {

// Checkpoint/restore happen off the per-event hot path, so these go
// straight to the global registry each call.
struct CheckpointMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& checkpoints = reg.GetCounter(
      "hpcfail_stream_checkpoints_total", "Engine checkpoints written");
  obs::Counter& checkpoint_bytes = reg.GetCounter(
      "hpcfail_stream_checkpoint_bytes_total",
      "Total bytes written by checkpoints, including the envelope");
  obs::Counter& restores = reg.GetCounter(
      "hpcfail_stream_restores_total", "Engine checkpoint restore attempts");
  obs::Counter& restore_failures = reg.GetCounter(
      "hpcfail_stream_restore_failures_total",
      "Checkpoint restores that failed validation");

  static CheckpointMetrics& Get() {
    static CheckpointMetrics m;
    return m;
  }
};

// Envelope framing around the payload: 8-byte magic, 4-byte version,
// 8-byte payload size, then an 8-byte checksum after the payload.
constexpr long long kEnvelopeBytes = 28;

}  // namespace

StreamEngine::StreamEngine(std::vector<SystemConfig> systems,
                           EngineConfig config)
    : index_(std::move(systems), config.stream),
      tracker_(index_.systems(), config.window),
      summary_(index_.systems().size()) {
  index_.SetSink([this](std::size_t system_index, const FailureRecord& f) {
    tracker_.OnEvent(system_index, f);
    summary_.OnEvent(system_index, f);
    if (predictor_) predictor_->OnEvent(system_index, f);
  });
}

void StreamEngine::AttachPredictor(core::FailurePredictor predictor,
                                   double threshold) {
  if (counters().accepted > 0) {
    throw std::logic_error(
        "StreamEngine: predictor must be attached before ingestion starts");
  }
  predictor_.emplace(index_.systems(), std::move(predictor), threshold);
}

IngestStatus StreamEngine::Ingest(const FailureRecord& r) {
  return index_.Ingest(r);
}

IngestCounters StreamEngine::CatchUp(std::span<const FailureRecord> records,
                                     int threads) {
  return index_.CatchUp(records, threads);
}

void StreamEngine::Finish() {
  index_.Finish();
  tracker_.Finish();
}

void StreamEngine::SaveCheckpoint(std::ostream& out) const {
  obs::ScopedTimer timer("checkpoint");
  snapshot::Writer w;
  index_.SaveTo(w);
  tracker_.SaveTo(w);
  summary_.SaveTo(w);
  w.PutBool(predictor_.has_value());
  if (predictor_) predictor_->SaveTo(w);
  snapshot::WriteEnvelope(out, w.payload());
  CheckpointMetrics& metrics = CheckpointMetrics::Get();
  metrics.checkpoints.Increment();
  metrics.checkpoint_bytes.Add(static_cast<long long>(w.payload().size()) +
                               kEnvelopeBytes);
}

void StreamEngine::RestoreCheckpoint(std::istream& in) {
  obs::ScopedTimer timer("restore");
  CheckpointMetrics& metrics = CheckpointMetrics::Get();
  metrics.restores.Increment();
  try {
    const std::string payload = snapshot::ReadEnvelope(in);
    snapshot::Reader r(payload);
    index_.LoadFrom(r);
    tracker_.LoadFrom(r);
    summary_.LoadFrom(r);
    const bool has_predictor = r.GetBool();
    if (has_predictor != predictor_.has_value()) {
      throw snapshot::SnapshotError(
          has_predictor
              ? "snapshot has a predictor but none is attached to this engine"
              : "snapshot has no predictor but one is attached to this engine");
    }
    if (predictor_) predictor_->LoadFrom(r);
    if (!r.AtEnd()) {
      throw snapshot::SnapshotError("snapshot has trailing bytes");
    }
  } catch (...) {
    metrics.restore_failures.Increment();
    throw;
  }
}

}  // namespace hpcfail::stream
