#include "stream/engine.h"

#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace hpcfail::stream {

StreamEngine::StreamEngine(std::vector<SystemConfig> systems,
                           EngineConfig config)
    : index_(std::move(systems), config.stream),
      tracker_(index_.systems(), config.window),
      summary_(index_.systems().size()) {
  index_.SetSink([this](std::size_t system_index, const FailureRecord& f) {
    tracker_.OnEvent(system_index, f);
    summary_.OnEvent(system_index, f);
    if (predictor_) predictor_->OnEvent(system_index, f);
  });
}

void StreamEngine::AttachPredictor(core::FailurePredictor predictor,
                                   double threshold) {
  if (counters().accepted > 0) {
    throw std::logic_error(
        "StreamEngine: predictor must be attached before ingestion starts");
  }
  predictor_.emplace(index_.systems(), std::move(predictor), threshold);
}

IngestStatus StreamEngine::Ingest(const FailureRecord& r) {
  return index_.Ingest(r);
}

IngestCounters StreamEngine::CatchUp(std::span<const FailureRecord> records,
                                     int threads) {
  return index_.CatchUp(records, threads);
}

void StreamEngine::Finish() {
  index_.Finish();
  tracker_.Finish();
}

void StreamEngine::SaveCheckpoint(std::ostream& out) const {
  snapshot::Writer w;
  index_.SaveTo(w);
  tracker_.SaveTo(w);
  summary_.SaveTo(w);
  w.PutBool(predictor_.has_value());
  if (predictor_) predictor_->SaveTo(w);
  snapshot::WriteEnvelope(out, w.payload());
}

void StreamEngine::RestoreCheckpoint(std::istream& in) {
  const std::string payload = snapshot::ReadEnvelope(in);
  snapshot::Reader r(payload);
  index_.LoadFrom(r);
  tracker_.LoadFrom(r);
  summary_.LoadFrom(r);
  const bool has_predictor = r.GetBool();
  if (has_predictor != predictor_.has_value()) {
    throw snapshot::SnapshotError(
        has_predictor
            ? "snapshot has a predictor but none is attached to this engine"
            : "snapshot has no predictor but one is attached to this engine");
  }
  if (predictor_) predictor_->LoadFrom(r);
  if (!r.AtEnd()) {
    throw snapshot::SnapshotError("snapshot has trailing bytes");
  }
}

}  // namespace hpcfail::stream
