// Versioned binary snapshots for the streaming engine's checkpoint/restore.
//
// A snapshot is a flat little-endian byte payload (built with Writer, decoded
// with Reader) wrapped in an envelope:
//
//   bytes 0-7   magic "HPCFSNAP"
//   bytes 8-11  format version (u32)
//   bytes 12-19 payload size in bytes (u64)
//   ...         payload
//   last 8      FNV-1a 64-bit checksum of the payload (u64)
//
// Readers reject unknown magic/version, short reads and checksum mismatches
// with SnapshotError — a consumer resuming from a torn or corrupted file
// must fail loudly, never resume from garbage state.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>

namespace hpcfail::stream::snapshot {

inline constexpr std::uint32_t kFormatVersion = 1;

class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& message)
      : std::runtime_error("snapshot: " + message) {}
};

// Append-only payload builder.
class Writer {
 public:
  void PutU8(std::uint8_t v);
  void PutU32(std::uint32_t v);
  void PutU64(std::uint64_t v);
  void PutI64(std::int64_t v);
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutDouble(double v);  // IEEE-754 bit pattern, exact round-trip
  void PutString(std::string_view s);

  const std::string& payload() const { return buffer_; }

 private:
  std::string buffer_;
};

// Sequential payload decoder; every getter throws SnapshotError when the
// payload is too short. Does not own the bytes: the payload string must
// outlive the Reader (keep ReadEnvelope's result in a named local).
class Reader {
 public:
  explicit Reader(std::string_view payload) : data_(payload) {}

  std::uint8_t GetU8();
  std::uint32_t GetU32();
  std::uint64_t GetU64();
  std::int64_t GetI64();
  bool GetBool() { return GetU8() != 0; }
  double GetDouble();
  std::string GetString();

  // Bounds-checked u64 for container sizes: throws when the claimed size
  // exceeds the bytes remaining (each element needs >= min_element_bytes),
  // so a corrupted length cannot trigger an enormous allocation.
  std::size_t GetSize(std::size_t min_element_bytes);

  bool AtEnd() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  const unsigned char* Take(std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
};

// FNV-1a 64-bit hash of a byte string.
std::uint64_t Fnv1a64(std::string_view bytes);

// Wraps `payload` in the envelope and writes it to `os`; throws
// std::runtime_error when the stream write fails.
void WriteEnvelope(std::ostream& os, std::string_view payload);

// Reads and validates an envelope; returns the payload. Throws SnapshotError
// on bad magic, unsupported version, truncation or checksum mismatch.
std::string ReadEnvelope(std::istream& is);

}  // namespace hpcfail::stream::snapshot
