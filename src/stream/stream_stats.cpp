#include "stream/stream_stats.h"

#include <cmath>

namespace hpcfail::stream {

void RunningStats::Add(double x) {
  ++count;
  const double delta = x - mean;
  mean += delta / static_cast<double>(count);
  m2 += delta * (x - mean);
}

RunningStats RunningStats::Merge(const RunningStats& a, const RunningStats& b) {
  if (a.count == 0) return b;
  if (b.count == 0) return a;
  RunningStats out;
  out.count = a.count + b.count;
  const double delta = b.mean - a.mean;
  const double nb_over_n =
      static_cast<double>(b.count) / static_cast<double>(out.count);
  out.mean = a.mean + delta * nb_over_n;
  out.m2 = a.m2 + b.m2 +
           delta * delta * static_cast<double>(a.count) * nb_over_n;
  return out;
}

double RunningStats::variance() const {
  return count < 2 ? 0.0 : m2 / static_cast<double>(count - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

StreamingSummary::StreamingSummary(std::size_t num_systems) {
  lanes_.resize(num_systems);
}

void StreamingSummary::OnEvent(std::size_t system_index,
                               const FailureRecord& f) {
  Lane& lane = lanes_.at(system_index);
  const double downtime = static_cast<double>(f.downtime());
  lane.all.Add(downtime);
  lane.by_category[static_cast<std::size_t>(f.category)].Add(downtime);
}

RunningStats StreamingSummary::Downtime() const {
  RunningStats out;
  for (const Lane& lane : lanes_) out = RunningStats::Merge(out, lane.all);
  return out;
}

RunningStats StreamingSummary::DowntimeOf(FailureCategory c) const {
  RunningStats out;
  for (const Lane& lane : lanes_) {
    out = RunningStats::Merge(out,
                              lane.by_category[static_cast<std::size_t>(c)]);
  }
  return out;
}

long long StreamingSummary::total_events() const {
  long long total = 0;
  for (const Lane& lane : lanes_) total += lane.all.count;
  return total;
}

long long StreamingSummary::CountOf(FailureCategory c) const {
  long long total = 0;
  for (const Lane& lane : lanes_) {
    total += lane.by_category[static_cast<std::size_t>(c)].count;
  }
  return total;
}

RunningStats StreamingSummary::DowntimeOfSystem(
    std::size_t system_index) const {
  return lanes_.at(system_index).all;
}

namespace {

void PutStats(snapshot::Writer& w, const RunningStats& s) {
  w.PutI64(s.count);
  w.PutDouble(s.mean);
  w.PutDouble(s.m2);
}

RunningStats GetStats(snapshot::Reader& r) {
  RunningStats s;
  s.count = r.GetI64();
  s.mean = r.GetDouble();
  s.m2 = r.GetDouble();
  if (s.count < 0) {
    throw snapshot::SnapshotError("summary accumulator count is negative");
  }
  return s;
}

}  // namespace

void StreamingSummary::SaveTo(snapshot::Writer& w) const {
  w.PutU64(lanes_.size());
  for (const Lane& lane : lanes_) {
    PutStats(w, lane.all);
    for (const RunningStats& s : lane.by_category) PutStats(w, s);
  }
}

void StreamingSummary::LoadFrom(snapshot::Reader& r) {
  if (r.GetU64() != lanes_.size()) {
    throw snapshot::SnapshotError("summary lane count mismatch");
  }
  for (Lane& lane : lanes_) {
    lane.all = GetStats(r);
    for (RunningStats& s : lane.by_category) s = GetStats(r);
  }
}

}  // namespace hpcfail::stream
