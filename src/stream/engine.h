// StreamEngine: the composed online pipeline. An IncrementalEventIndex
// orders/releases arriving failures; its sink fans each released event out
// to the online operators — StreamingWindowTracker (conditional-probability
// windows), StreamingSummary (count/mean/M2 downtime stats) and an optional
// StreamingPredictor (live hazard scoring). All operator state is
// per-system, so sharded CatchUp() replay over the thread pool is
// bit-identical to one-by-one ingestion.
//
// Checkpointing: SaveCheckpoint() writes every piece of mutable state
// (index stores, reorder buffer, operator lanes) into one versioned binary
// snapshot; a fresh engine built with the same configuration restores it
// with RestoreCheckpoint() and continues the stream exactly where the saved
// one stopped.
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <vector>

#include "stream/incremental_index.h"
#include "stream/stream_predictor.h"
#include "stream/stream_stats.h"
#include "stream/window_tracker.h"

namespace hpcfail::stream {

struct EngineConfig {
  StreamConfig stream;          // reorder tolerance
  WindowTrackerConfig window;   // trigger/target/window for the tracker
};

class StreamEngine {
 public:
  StreamEngine(std::vector<SystemConfig> systems, EngineConfig config);

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  // Attaches a live hazard scorer (e.g. a predictor trained on a historical
  // trace). Must be attached before any event is ingested, and before
  // RestoreCheckpoint() of a snapshot that was taken with one attached.
  void AttachPredictor(core::FailurePredictor predictor, double threshold);
  bool has_predictor() const { return predictor_.has_value(); }

  // Feeds one event through the index into every operator.
  IngestStatus Ingest(const FailureRecord& r);

  // Sharded backlog replay (see IncrementalEventIndex::CatchUp).
  IngestCounters CatchUp(std::span<const FailureRecord> records,
                         int threads = 0);

  // Flushes the reorder buffer and resolves every pending window. After
  // this, tracker results equal the batch analyzer on the same events.
  void Finish();

  const IncrementalEventIndex& index() const { return index_; }
  const StreamingWindowTracker& tracker() const { return tracker_; }
  const StreamingSummary& summary() const { return summary_; }
  // Valid only when has_predictor().
  const StreamingPredictor& predictor() const { return *predictor_; }

  TimeSec watermark() const { return index_.watermark(); }
  const IngestCounters& counters() const { return index_.counters(); }

  // Versioned binary snapshot of all mutable state (envelope format in
  // stream/snapshot.h). Restore throws snapshot::SnapshotError on any
  // corruption or configuration mismatch.
  void SaveCheckpoint(std::ostream& out) const;
  void RestoreCheckpoint(std::istream& in);

 private:
  IncrementalEventIndex index_;
  StreamingWindowTracker tracker_;
  StreamingSummary summary_;
  std::optional<StreamingPredictor> predictor_;
};

}  // namespace hpcfail::stream
