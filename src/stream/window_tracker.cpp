#include "stream/window_tracker.h"

#include <algorithm>
#include <stdexcept>

namespace hpcfail::stream {
namespace {

void PutFilter(snapshot::Writer& w, const core::EventFilter& f) {
  w.PutU8(f.category ? 1 + static_cast<std::uint8_t>(*f.category) : 0);
  w.PutU8(f.hardware ? 1 + static_cast<std::uint8_t>(*f.hardware) : 0);
  w.PutU8(f.software ? 1 + static_cast<std::uint8_t>(*f.software) : 0);
  w.PutU8(f.environment ? 1 + static_cast<std::uint8_t>(*f.environment) : 0);
}

// Adds `value` to a small distinct-list (the streaming analogue of the
// batch CountDistinctPeers unique-list).
void AddDistinct(std::vector<std::int32_t>& seen, std::int32_t value) {
  if (std::find(seen.begin(), seen.end(), value) == seen.end()) {
    seen.push_back(value);
  }
}

// Consumed prefixes of the pending vector are erased once they pass this
// length and dominate the vector (same policy as the index reorder buffer).
constexpr std::size_t kPendingCompactThreshold = 64;

}  // namespace

StreamingWindowTracker::StreamingWindowTracker(
    const std::vector<SystemConfig>& systems, WindowTrackerConfig config)
    : config_(std::move(config)),
      trigger_cf_(core::CompiledFilter::From(config_.trigger)),
      target_cf_(core::CompiledFilter::From(config_.target)) {
  if (config_.window <= 0) {
    throw std::invalid_argument(
        "StreamingWindowTracker: window must be positive, got " +
        std::to_string(config_.window));
  }
  lanes_.resize(systems.size());
  for (std::size_t i = 0; i < systems.size(); ++i) {
    Lane& lane = lanes_[i];
    lane.config = &systems[i];
    const auto num_nodes = static_cast<std::size_t>(lane.config->num_nodes);
    lane.rack_of.assign(num_nodes, RackId{});
    int num_racks = 0;
    for (const NodePlacement& p : lane.config->layout.placements()) {
      lane.rack_of[static_cast<std::size_t>(p.node.value)] = p.rack;
      num_racks = std::max(num_racks, p.rack.value + 1);
    }
    lane.rack_size.assign(static_cast<std::size_t>(num_racks), 0);
    for (const NodePlacement& p : lane.config->layout.placements()) {
      ++lane.rack_size[static_cast<std::size_t>(p.rack.value)];
    }
    lane.windows_per_node =
        lane.config->observed.duration() / config_.window;
    lane.baseline_hits.assign(num_nodes, 0);
    lane.baseline_last.assign(num_nodes, -1);
  }
}

void StreamingWindowTracker::Resolve(Lane& lane, const PendingWindow& p) {
  // Same node: one trial per trigger.
  ++lane.same_node.trials;
  if (p.same_node_hit) ++lane.same_node.successes;
  // Rack peers: one trial per peer node of the trigger's rack. Matches the
  // batch path, where a missing layout (or an unplaced node) contributes
  // zero trials.
  const RackId rack = lane.rack_of[static_cast<std::size_t>(p.node.value)];
  if (rack.valid()) {
    lane.rack_peers.trials += std::max(
        0, lane.rack_size[static_cast<std::size_t>(rack.value)] - 1);
    lane.rack_peers.successes += static_cast<long long>(p.rack_seen.size());
  }
  // System peers: one trial per other node of the system.
  lane.system_peers.trials += std::max(0, lane.config->num_nodes - 1);
  lane.system_peers.successes += static_cast<long long>(p.sys_seen.size());
}

void StreamingWindowTracker::ResolveBefore(Lane& lane, TimeSec t) {
  // A window (start, start + W] is final once every event with time
  // <= start + W has been seen, i.e. once stream time exceeds start + W.
  while (lane.head < lane.pending.size() &&
         lane.pending[lane.head].start + config_.window < t) {
    PendingWindow& p = lane.pending[lane.head];
    Resolve(lane, p);
    p.rack_seen.clear();
    p.sys_seen.clear();
    lane.pool.push_back(std::move(p));
    ++lane.head;
  }
  if (lane.head == lane.pending.size()) {
    lane.pending.clear();
    lane.head = 0;
  } else if (lane.head >= kPendingCompactThreshold &&
             lane.head >= lane.pending.size() / 2) {
    lane.pending.erase(lane.pending.begin(),
                       lane.pending.begin() +
                           static_cast<std::ptrdiff_t>(lane.head));
    lane.head = 0;
  }
}

void StreamingWindowTracker::OnEvent(std::size_t system_index,
                                     const FailureRecord& f) {
  Lane& lane = lanes_.at(system_index);
  ResolveBefore(lane, f.start);
  // Match against the packed byte encoding once per event; released records
  // are consistent, so the packing is lossless and CompiledFilter::Matches
  // decides exactly like EventFilter::Matches on the full record.
  const auto cat = static_cast<std::uint8_t>(f.category);
  const std::uint8_t sub = core::PackSubcategory(f);
  if (target_cf_.Matches(cat, sub)) {
    // Update every open window this event falls into. Windows at the same
    // start as the event are excluded: the batch query interval is the
    // half-open (start, start + W].
    const RackId event_rack =
        lane.rack_of[static_cast<std::size_t>(f.node.value)];
    for (std::size_t i = lane.head; i < lane.pending.size(); ++i) {
      PendingWindow& p = lane.pending[i];
      if (p.start >= f.start) break;  // pending is ordered by start
      if (p.node == f.node) {
        p.same_node_hit = true;
        continue;
      }
      AddDistinct(p.sys_seen, f.node.value);
      if (event_rack.valid() &&
          event_rack == lane.rack_of[static_cast<std::size_t>(p.node.value)]) {
        AddDistinct(p.rack_seen, f.node.value);
      }
    }
    // Baseline: distinct aligned windows with >= 1 matching failure, one
    // running window index per node (events arrive time-sorted per system,
    // so the index is non-decreasing — identical to the batch scan).
    if (lane.windows_per_node > 0) {
      const long long w =
          (f.start - lane.config->observed.begin) / config_.window;
      if (w >= 0 && w < lane.windows_per_node) {
        const auto n = static_cast<std::size_t>(f.node.value);
        if (lane.baseline_last[n] != w) {
          lane.baseline_last[n] = w;
          ++lane.baseline_hits[n];
        }
      }
    }
  }
  // Triggers whose window would run past the end of the observation period
  // are censored, exactly like the batch analyzer.
  if (trigger_cf_.Matches(cat, sub) &&
      f.start + config_.window <= lane.config->observed.end) {
    PendingWindow w;
    if (!lane.pool.empty()) {
      w = std::move(lane.pool.back());  // seen-lists keep their capacity
      lane.pool.pop_back();
    }
    w.start = f.start;
    w.node = f.node;
    w.same_node_hit = false;
    lane.pending.push_back(std::move(w));
  }
}

void StreamingWindowTracker::AdvanceTo(std::size_t system_index,
                                       TimeSec watermark) {
  ResolveBefore(lanes_.at(system_index), watermark);
}

void StreamingWindowTracker::Finish() {
  for (Lane& lane : lanes_) {
    for (std::size_t i = lane.head; i < lane.pending.size(); ++i) {
      Resolve(lane, lane.pending[i]);
    }
    lane.pending.clear();
    lane.head = 0;
  }
}

core::ConditionalResult StreamingWindowTracker::Result(
    core::Scope scope) const {
  Counts cond;
  Counts base;
  // Merge per-system counters in system order — the same deterministic fold
  // as the batch analyzer's ParallelReduce.
  for (const Lane& lane : lanes_) {
    const Counts* c = nullptr;
    switch (scope) {
      case core::Scope::kSameNode: c = &lane.same_node; break;
      case core::Scope::kRackPeers: c = &lane.rack_peers; break;
      case core::Scope::kSystemPeers: c = &lane.system_peers; break;
    }
    cond.successes += c->successes;
    cond.trials += c->trials;
    if (lane.windows_per_node > 0) {
      base.trials += lane.windows_per_node * lane.config->num_nodes;
      for (const long long h : lane.baseline_hits) base.successes += h;
    }
  }
  core::ConditionalResult out;
  out.conditional = stats::WilsonProportion(cond.successes, cond.trials);
  out.baseline = stats::WilsonProportion(base.successes, base.trials);
  out.factor = stats::FactorIncrease(out.conditional, out.baseline);
  out.test = stats::TestProportionsDiffer(
      out.conditional.successes, out.conditional.trials,
      out.baseline.successes, out.baseline.trials);
  out.num_triggers = out.conditional.trials;
  return out;
}

long long StreamingWindowTracker::resolved_triggers() const {
  long long total = 0;
  for (const Lane& lane : lanes_) total += lane.same_node.trials;
  return total;
}

std::size_t StreamingWindowTracker::pending_windows() const {
  std::size_t total = 0;
  for (const Lane& lane : lanes_) total += lane.pending.size() - lane.head;
  return total;
}

std::uint64_t StreamingWindowTracker::ConfigFingerprint() const {
  snapshot::Writer w;
  w.PutI64(config_.window);
  PutFilter(w, config_.trigger);
  PutFilter(w, config_.target);
  w.PutU64(lanes_.size());
  for (const Lane& lane : lanes_) {
    w.PutU32(static_cast<std::uint32_t>(lane.config->id.value));
    w.PutU32(static_cast<std::uint32_t>(lane.config->num_nodes));
    w.PutI64(lane.config->observed.begin);
    w.PutI64(lane.config->observed.end);
  }
  return snapshot::Fnv1a64(w.payload());
}

void StreamingWindowTracker::SaveTo(snapshot::Writer& w) const {
  w.PutU64(ConfigFingerprint());
  w.PutU64(lanes_.size());
  for (const Lane& lane : lanes_) {
    w.PutI64(lane.same_node.successes);
    w.PutI64(lane.same_node.trials);
    w.PutI64(lane.rack_peers.successes);
    w.PutI64(lane.rack_peers.trials);
    w.PutI64(lane.system_peers.successes);
    w.PutI64(lane.system_peers.trials);
    w.PutU64(lane.pending.size() - lane.head);
    for (std::size_t i = lane.head; i < lane.pending.size(); ++i) {
      const PendingWindow& p = lane.pending[i];
      w.PutI64(p.start);
      w.PutU32(static_cast<std::uint32_t>(p.node.value));
      w.PutBool(p.same_node_hit);
      w.PutU64(p.rack_seen.size());
      for (const std::int32_t n : p.rack_seen) {
        w.PutU32(static_cast<std::uint32_t>(n));
      }
      w.PutU64(p.sys_seen.size());
      for (const std::int32_t n : p.sys_seen) {
        w.PutU32(static_cast<std::uint32_t>(n));
      }
    }
    w.PutU64(lane.baseline_hits.size());
    for (const long long h : lane.baseline_hits) w.PutI64(h);
    for (const long long l : lane.baseline_last) w.PutI64(l);
  }
}

void StreamingWindowTracker::LoadFrom(snapshot::Reader& r) {
  if (r.GetU64() != ConfigFingerprint()) {
    throw snapshot::SnapshotError(
        "snapshot was taken with a different window-tracker configuration");
  }
  if (r.GetU64() != lanes_.size()) {
    throw snapshot::SnapshotError("window-tracker lane count mismatch");
  }
  for (Lane& lane : lanes_) {
    lane.same_node.successes = r.GetI64();
    lane.same_node.trials = r.GetI64();
    lane.rack_peers.successes = r.GetI64();
    lane.rack_peers.trials = r.GetI64();
    lane.system_peers.successes = r.GetI64();
    lane.system_peers.trials = r.GetI64();
    lane.pending.clear();
    lane.head = 0;
    const std::size_t pending = r.GetSize(13);
    for (std::size_t i = 0; i < pending; ++i) {
      PendingWindow p;
      p.start = r.GetI64();
      p.node = NodeId{static_cast<std::int32_t>(r.GetU32())};
      if (!p.node.valid() || p.node.value >= lane.config->num_nodes) {
        throw snapshot::SnapshotError("pending window node out of range");
      }
      p.same_node_hit = r.GetBool();
      const std::size_t racks = r.GetSize(4);
      p.rack_seen.reserve(racks);
      for (std::size_t k = 0; k < racks; ++k) {
        p.rack_seen.push_back(static_cast<std::int32_t>(r.GetU32()));
      }
      const std::size_t sys = r.GetSize(4);
      p.sys_seen.reserve(sys);
      for (std::size_t k = 0; k < sys; ++k) {
        p.sys_seen.push_back(static_cast<std::int32_t>(r.GetU32()));
      }
      lane.pending.push_back(std::move(p));
    }
    const std::size_t nodes = r.GetSize(16);
    if (nodes != lane.baseline_hits.size()) {
      throw snapshot::SnapshotError("baseline node count mismatch");
    }
    for (long long& h : lane.baseline_hits) h = r.GetI64();
    for (long long& l : lane.baseline_last) l = r.GetI64();
  }
}

}  // namespace hpcfail::stream
