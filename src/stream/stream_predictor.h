// Online wrapper around core::FailurePredictor: keeps each node's most
// recent failure (type and time) as the stream flows and scores every
// arriving failure against the live state — the deployment loop the paper
// motivates (alarm -> checkpoint/migrate) run against a live log feed
// instead of a post-hoc trace.
//
// Scores are produced by the batch predictor's own Score(), fed with the
// per-node state accumulated from the released event order, so streaming
// scores are bit-identical to a batch walk over the same (finalized) trace.
#pragma once

#include <optional>
#include <vector>

#include "core/prediction.h"
#include "stream/snapshot.h"

namespace hpcfail::stream {

class StreamingPredictor {
 public:
  // `systems` must outlive the predictor. `threshold` is the alarm cut-off
  // on the hazard score (same semantics as EvaluatePredictor).
  StreamingPredictor(const std::vector<SystemConfig>& systems,
                     core::FailurePredictor predictor, double threshold);

  // Scores the arriving failure against the node's state BEFORE this event
  // (its most recent previous failure), then folds the event into the
  // state. Returns the hazard score; alarms are counted internally.
  // Touches only `system_index`'s state (safe for sharded catch-up).
  double OnEvent(std::size_t system_index, const FailureRecord& f);

  // Hazard score of any node at any time against the live state (no state
  // change) — what an operator dashboard polls.
  double ScoreNode(std::size_t system_index, NodeId node, TimeSec now) const;

  long long events_scored() const;
  long long alarms() const;
  // Alarms / events scored (0 when nothing scored yet).
  double alarm_rate() const;

  double threshold() const { return threshold_; }
  const core::FailurePredictor& predictor() const { return predictor_; }

  void SaveTo(snapshot::Writer& w) const;
  void LoadFrom(snapshot::Reader& r);

 private:
  struct Lane {
    std::vector<std::int8_t> last_type;  // -1 = none yet
    std::vector<TimeSec> last_time;
    long long events_scored = 0;
    long long alarms = 0;
  };

  std::uint64_t ConfigFingerprint() const;

  core::FailurePredictor predictor_;
  double threshold_ = 0.0;
  std::vector<Lane> lanes_;
};

}  // namespace hpcfail::stream
