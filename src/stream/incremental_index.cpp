#include "stream/incremental_index.h"

#include <algorithm>
#include <stdexcept>

#include "core/parallel.h"
#include "core/simd.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace hpcfail::stream {
namespace {

// Largest system id the dense FindSystemIndex slot table will be built for;
// a handful of engines with adversarially huge ids must not each allocate a
// giant table, so those fall back to the linear scan.
constexpr std::int32_t kMaxDenseSystemId = 4096;

// Consumed-prefix length beyond which Drain/CatchUp erase the prefix
// instead of letting the buffer vector grow without bound.
constexpr std::size_t kCompactThreshold = 1024;

// Process-level ingest counters. Unlike the per-engine IngestCounters
// (which checkpoint/restore as engine state), these track what THIS process
// actually did, across every engine it builds — the operator-facing totals
// in the Prometheus/JSON exports. Hot-path updates are relaxed shard adds
// and gauge stores; release counts batch one add per Drain()/CatchUp().
struct StreamMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& ingested = reg.GetCounter(
      "hpcfail_stream_ingested_total",
      "Records presented to the streaming index (accepted + rejected)");
  obs::Counter& accepted = reg.GetCounter(
      "hpcfail_stream_accepted_total", "Records accepted into the reorder buffer");
  obs::Counter& released = reg.GetCounter(
      "hpcfail_stream_released_total",
      "Records released past the watermark into the stores/operators");
  obs::Counter& rejected_late = reg.GetCounter(
      "hpcfail_stream_rejected_late_total",
      "Records rejected for arriving behind the watermark");
  obs::Counter& rejected_unknown = reg.GetCounter(
      "hpcfail_stream_rejected_unknown_system_total",
      "Records rejected for an unconfigured system id");
  obs::Counter& rejected_bad = reg.GetCounter(
      "hpcfail_stream_rejected_bad_record_total",
      "Records rejected as inconsistent or out of node range");
  obs::Gauge& buffered = reg.GetGauge(
      "hpcfail_stream_reorder_buffered",
      "Records currently waiting in the reorder buffer");
  obs::Gauge& watermark_lag = reg.GetGauge(
      "hpcfail_stream_watermark_lag_seconds",
      "Age of the oldest buffered record relative to the newest seen");

  static StreamMetrics& Get() {
    static StreamMetrics m;
    return m;
  }
};

void PutRecord(snapshot::Writer& w, const FailureRecord& f) {
  w.PutU32(static_cast<std::uint32_t>(f.system.value));
  w.PutU32(static_cast<std::uint32_t>(f.node.value));
  w.PutI64(f.start);
  w.PutI64(f.end);
  w.PutU8(static_cast<std::uint8_t>(f.category));
  // Subcategory: 0 = none, else 1 + enum value (category disambiguates).
  std::uint8_t sub = 0;
  if (f.hardware) sub = 1 + static_cast<std::uint8_t>(*f.hardware);
  if (f.software) sub = 1 + static_cast<std::uint8_t>(*f.software);
  if (f.environment) sub = 1 + static_cast<std::uint8_t>(*f.environment);
  w.PutU8(sub);
}

FailureRecord GetRecord(snapshot::Reader& r) {
  FailureRecord f;
  f.system = SystemId{static_cast<std::int32_t>(r.GetU32())};
  f.node = NodeId{static_cast<std::int32_t>(r.GetU32())};
  f.start = r.GetI64();
  f.end = r.GetI64();
  const std::uint8_t cat = r.GetU8();
  if (cat >= kNumFailureCategories) {
    throw snapshot::SnapshotError("invalid failure category");
  }
  f.category = static_cast<FailureCategory>(cat);
  const std::uint8_t sub = r.GetU8();
  if (sub != 0) {
    switch (f.category) {
      case FailureCategory::kHardware:
        if (sub > kNumHardwareComponents) {
          throw snapshot::SnapshotError("invalid hardware subcategory");
        }
        f.hardware = static_cast<HardwareComponent>(sub - 1);
        break;
      case FailureCategory::kSoftware:
        if (sub > kNumSoftwareComponents) {
          throw snapshot::SnapshotError("invalid software subcategory");
        }
        f.software = static_cast<SoftwareComponent>(sub - 1);
        break;
      case FailureCategory::kEnvironment:
        if (sub > kNumEnvironmentEvents) {
          throw snapshot::SnapshotError("invalid environment subcategory");
        }
        f.environment = static_cast<EnvironmentEvent>(sub - 1);
        break;
      default:
        throw snapshot::SnapshotError("subcategory on category without one");
    }
  }
  return f;
}

}  // namespace

IncrementalEventIndex::IncrementalEventIndex(std::vector<SystemConfig> systems,
                                             StreamConfig config)
    : config_(config), systems_(std::move(systems)) {
  if (systems_.empty()) {
    throw std::invalid_argument(
        "IncrementalEventIndex: at least one system required");
  }
  if (config_.reorder_tolerance < 0) {
    throw std::invalid_argument(
        "IncrementalEventIndex: reorder_tolerance must be >= 0");
  }
  for (std::size_t i = 0; i < systems_.size(); ++i) {
    for (std::size_t j = i + 1; j < systems_.size(); ++j) {
      if (systems_[i].id == systems_[j].id) {
        throw std::invalid_argument(
            "IncrementalEventIndex: duplicate system id");
      }
    }
  }
  stores_.resize(systems_.size());
  for (std::size_t i = 0; i < systems_.size(); ++i) {
    stores_[i].Init(systems_[i]);
  }
  std::int32_t max_id = -1;
  bool dense = true;
  for (const SystemConfig& s : systems_) {
    if (s.id.value > kMaxDenseSystemId) dense = false;
    max_id = std::max(max_id, s.id.value);
  }
  if (dense) {
    sys_slot_.assign(static_cast<std::size_t>(max_id + 1), -1);
    for (std::size_t i = 0; i < systems_.size(); ++i) {
      sys_slot_[static_cast<std::size_t>(systems_[i].id.value)] =
          static_cast<std::int32_t>(i);
    }
  }
}

TimeSec IncrementalEventIndex::watermark() const {
  if (finished_) return std::numeric_limits<TimeSec>::max();
  if (!any_seen_) return kNoWatermark;
  // Saturating subtraction: trace epochs near the representable minimum
  // must not wrap around to +infinity.
  if (max_seen_ < kNoWatermark + config_.reorder_tolerance) {
    return kNoWatermark;
  }
  return max_seen_ - config_.reorder_tolerance;
}

int IncrementalEventIndex::FindSystemIndex(SystemId sys) const {
  if (!sys_slot_.empty()) {
    if (sys.value < 0 ||
        static_cast<std::size_t>(sys.value) >= sys_slot_.size()) {
      return -1;
    }
    return sys_slot_[static_cast<std::size_t>(sys.value)];
  }
  for (std::size_t i = 0; i < systems_.size(); ++i) {
    if (systems_[i].id == sys) return static_cast<int>(i);
  }
  return -1;
}

const core::SystemEventStore& IncrementalEventIndex::Get(SystemId sys) const {
  const int i = FindSystemIndex(sys);
  if (i < 0) throw std::out_of_range("system not indexed");
  return stores_[static_cast<std::size_t>(i)];
}

IngestStatus IncrementalEventIndex::Classify(const FailureRecord& r,
                                             std::size_t* system_index) {
  StreamMetrics& metrics = StreamMetrics::Get();
  metrics.ingested.Increment();
  const int idx = FindSystemIndex(r.system);
  if (idx < 0) {
    ++counters_.rejected_unknown_system;
    metrics.rejected_unknown.Increment();
    return IngestStatus::kRejectedUnknownSystem;
  }
  const SystemConfig& sys = systems_[static_cast<std::size_t>(idx)];
  // Mirrors Trace::AddFailure's validation so any record a batch Trace
  // accepts also streams (parity), and vice versa.
  if (!r.node.valid() || r.node.value >= sys.num_nodes || !r.consistent()) {
    ++counters_.rejected_bad_record;
    metrics.rejected_bad.Increment();
    return IngestStatus::kRejectedBadRecord;
  }
  if (any_seen_ && r.start < watermark()) {
    ++counters_.rejected_late;
    metrics.rejected_late.Increment();
    return IngestStatus::kRejectedLate;
  }
  metrics.accepted.Increment();
  *system_index = static_cast<std::size_t>(idx);
  return IngestStatus::kAccepted;
}

void IncrementalEventIndex::Process(std::size_t system_index,
                                    const FailureRecord& r) {
  // Classify validated the record at admission and the watermark releases
  // in time order, so the store need not re-validate (the serial ingest
  // path used to pay consistent() twice per record).
  stores_[system_index].AppendTrusted(r);
  if (sink_) sink_(system_index, r);
}

void IncrementalEventIndex::InsertBuffered(Buffered b) {
  const auto it = std::upper_bound(
      buffer_.begin() + static_cast<std::ptrdiff_t>(head_), buffer_.end(), b,
      BufferedOrder{});
  buffer_.insert(it, std::move(b));
}

void IncrementalEventIndex::CompactBuffer() {
  if (head_ == buffer_.size()) {
    buffer_.clear();
    head_ = 0;
  } else if (head_ >= kCompactThreshold && head_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
}

void IncrementalEventIndex::Drain() {
  const TimeSec wm = watermark();
  long long released = 0;
  while (head_ < buffer_.size()) {
    const Buffered& b = buffer_[head_];
    if (!finished_ && b.record.start >= wm) break;
    Process(b.system_index, b.record);
    ++counters_.released;
    ++released;
    ++head_;
  }
  CompactBuffer();
  StreamMetrics& metrics = StreamMetrics::Get();
  if (released > 0) metrics.released.Add(released);
  metrics.buffered.Set(static_cast<double>(num_buffered()));
  metrics.watermark_lag.Set(
      head_ == buffer_.size()
          ? 0.0
          : static_cast<double>(max_seen_ - buffer_[head_].record.start));
}

IngestStatus IncrementalEventIndex::Ingest(const FailureRecord& r) {
  if (finished_) {
    throw std::logic_error("IncrementalEventIndex: Ingest after Finish");
  }
  std::size_t system_index = 0;
  const IngestStatus status = Classify(r, &system_index);
  if (status != IngestStatus::kAccepted) return status;
  ++counters_.accepted;
  InsertBuffered(Buffered{r, system_index, next_seq_++});
  if (!any_seen_ || r.start > max_seen_) {
    max_seen_ = r.start;
    any_seen_ = true;
  }
  Drain();
  return status;
}

IngestCounters IncrementalEventIndex::CatchUp(
    std::span<const FailureRecord> records, int threads) {
  if (finished_) {
    throw std::logic_error("IncrementalEventIndex: CatchUp after Finish");
  }
  obs::ScopedTimer timer("stream_catchup");
  const IngestCounters before = counters_;
  // Phase 1 (serial, cheap): classify and buffer every record, advancing
  // the watermark exactly as repeated Ingest() calls would — acceptance
  // depends only on the running maximum, never on what was released.
  for (const FailureRecord& r : records) {
    std::size_t system_index = 0;
    if (Classify(r, &system_index) != IngestStatus::kAccepted) continue;
    ++counters_.accepted;
    InsertBuffered(Buffered{r, system_index, next_seq_++});
    if (!any_seen_ || r.start > max_seen_) {
      max_seen_ = r.start;
      any_seen_ = true;
    }
  }
  // Phase 2: pop everything below the final watermark, grouped by system.
  // Within a system the popped order is the release order, so feeding each
  // group serially through one shard reproduces the serial path exactly.
  const TimeSec wm = watermark();
  std::vector<std::vector<Buffered>> shards(systems_.size());
  long long popped = 0;
  while (head_ < buffer_.size() && buffer_[head_].record.start < wm) {
    shards[buffer_[head_].system_index].push_back(std::move(buffer_[head_]));
    ++popped;
    ++head_;
  }
  CompactBuffer();
  core::ParallelFor(
      systems_.size(),
      [&](std::size_t s) {
        if (shards[s].empty()) return;
        if (sink_) {
          // The sink observes store state per delivery; keep the exact
          // append/sink interleaving of the serial path.
          for (const Buffered& b : shards[s]) Process(s, b.record);
          return;
        }
        // No sink: stage the shard's columns and let the vectorized block
        // kernel validate once, then bulk-append — the batched path the
        // per-record loop cannot use (Ingest must return a status per call).
        core::RecordBlock block;
        block.reserve(shards[s].size());
        for (const Buffered& b : shards[s]) block.PushBack(b.record);
        stores_[s].AppendBlock(block);
      },
      threads);
  counters_.released += popped;
  StreamMetrics& metrics = StreamMetrics::Get();
  if (popped > 0) metrics.released.Add(popped);
  metrics.buffered.Set(static_cast<double>(num_buffered()));
  metrics.watermark_lag.Set(
      head_ == buffer_.size()
          ? 0.0
          : static_cast<double>(max_seen_ - buffer_[head_].record.start));

  IngestCounters delta;
  delta.accepted = counters_.accepted - before.accepted;
  delta.released = counters_.released - before.released;
  delta.rejected_late = counters_.rejected_late - before.rejected_late;
  delta.rejected_unknown_system =
      counters_.rejected_unknown_system - before.rejected_unknown_system;
  delta.rejected_bad_record =
      counters_.rejected_bad_record - before.rejected_bad_record;
  return delta;
}

void IncrementalEventIndex::Finish() {
  if (finished_) return;
  finished_ = true;
  Drain();
}

core::RecordSpan IncrementalEventIndex::failures_of(SystemId sys) const {
  return Get(sys).records();
}

bool IncrementalEventIndex::AnyAtNode(SystemId sys, NodeId node,
                                      TimeInterval window,
                                      const core::EventFilter& filter) const {
  return Get(sys).AnyAtNode(node, window, filter);
}

int IncrementalEventIndex::CountAtNode(SystemId sys, NodeId node,
                                       TimeInterval window,
                                       const core::EventFilter& filter) const {
  return Get(sys).CountAtNode(node, window, filter);
}

bool IncrementalEventIndex::AnyAtRackPeers(
    SystemId sys, NodeId node, TimeInterval window,
    const core::EventFilter& filter) const {
  return Get(sys).AnyAtRackPeers(node, window, filter);
}

bool IncrementalEventIndex::AnyAtSystemPeers(
    SystemId sys, NodeId node, TimeInterval window,
    const core::EventFilter& filter) const {
  return Get(sys).AnyAtSystemPeers(node, window, filter);
}

int IncrementalEventIndex::DistinctRackPeersWithEvent(
    SystemId sys, NodeId node, TimeInterval window,
    const core::EventFilter& filter, int* num_peers) const {
  return Get(sys).DistinctRackPeersWithEvent(node, window, filter, num_peers);
}

int IncrementalEventIndex::DistinctSystemPeersWithEvent(
    SystemId sys, NodeId node, TimeInterval window,
    const core::EventFilter& filter, int* num_peers) const {
  return Get(sys).DistinctSystemPeersWithEvent(node, window, filter,
                                               num_peers);
}

long long IncrementalEventIndex::Count(const core::EventFilter& filter) const {
  long long count = 0;
  for (const core::SystemEventStore& se : stores_) {
    count += se.CountMatching(filter);
  }
  return count;
}

std::vector<int> IncrementalEventIndex::NodeCounts(
    SystemId sys, const core::EventFilter& filter) const {
  return Get(sys).NodeCounts(filter);
}

std::uint64_t IncrementalEventIndex::ConfigFingerprint() const {
  snapshot::Writer w;
  w.PutI64(config_.reorder_tolerance);
  w.PutU64(systems_.size());
  for (const SystemConfig& s : systems_) {
    w.PutU32(static_cast<std::uint32_t>(s.id.value));
    w.PutU32(static_cast<std::uint32_t>(s.num_nodes));
    w.PutI64(s.observed.begin);
    w.PutI64(s.observed.end);
    w.PutU64(s.layout.placements().size());
  }
  return snapshot::Fnv1a64(w.payload());
}

void IncrementalEventIndex::SaveTo(snapshot::Writer& w) const {
  w.PutU64(ConfigFingerprint());
  w.PutBool(any_seen_);
  w.PutBool(finished_);
  w.PutI64(max_seen_);
  w.PutU64(next_seq_);
  w.PutI64(counters_.accepted);
  w.PutI64(counters_.released);
  w.PutI64(counters_.rejected_late);
  w.PutI64(counters_.rejected_unknown_system);
  w.PutI64(counters_.rejected_bad_record);
  w.PutU64(num_buffered());
  for (std::size_t i = head_; i < buffer_.size(); ++i) {
    PutRecord(w, buffer_[i].record);
    w.PutU64(buffer_[i].seq);
  }
  w.PutU64(stores_.size());
  for (const core::SystemEventStore& se : stores_) {
    w.PutU64(se.size());
    for (std::size_t i = 0; i < se.size(); ++i) PutRecord(w, se.Record(i));
  }
}

void IncrementalEventIndex::LoadFrom(snapshot::Reader& r) {
  if (r.GetU64() != ConfigFingerprint()) {
    throw snapshot::SnapshotError(
        "snapshot was taken with a different system/stream configuration");
  }
  // Restoring overwrites counters_ wholesale; remember this engine's
  // pre-restore contribution so the process-level obs counters can be
  // reconciled below instead of drifting away from CountersDelta (they used
  // to: exports disagreed with the engine after every restore).
  const IngestCounters before = counters_;
  any_seen_ = r.GetBool();
  finished_ = r.GetBool();
  max_seen_ = r.GetI64();
  next_seq_ = r.GetU64();
  counters_.accepted = r.GetI64();
  counters_.released = r.GetI64();
  counters_.rejected_late = r.GetI64();
  counters_.rejected_unknown_system = r.GetI64();
  counters_.rejected_bad_record = r.GetI64();
  buffer_.clear();
  head_ = 0;
  const std::size_t buffered = r.GetSize(23);  // min bytes per record + seq
  buffer_.reserve(buffered);
  for (std::size_t i = 0; i < buffered; ++i) {
    Buffered b;
    b.record = GetRecord(r);
    b.seq = r.GetU64();
    const int idx = FindSystemIndex(b.record.system);
    if (idx < 0) throw snapshot::SnapshotError("buffered record system");
    b.system_index = static_cast<std::size_t>(idx);
    // A buffered record is released into a store later; reject now anything
    // the store's Append would refuse, so a corrupt snapshot fails at
    // restore instead of mid-stream.
    if (!b.record.node.valid() ||
        b.record.node.value >= systems_[b.system_index].num_nodes ||
        !b.record.consistent()) {
      throw snapshot::SnapshotError("buffered record out of range");
    }
    buffer_.push_back(std::move(b));
  }
  // SaveTo writes the buffer in order, but the bytes come from outside;
  // restore the sort invariant rather than assume it.
  std::sort(buffer_.begin(), buffer_.end(), BufferedOrder{});
  const std::size_t num_stores = r.GetSize(8);
  if (num_stores != stores_.size()) {
    throw snapshot::SnapshotError("system count mismatch");
  }
  for (std::size_t s = 0; s < stores_.size(); ++s) {
    stores_[s].Init(systems_[s]);
    const std::size_t n = r.GetSize(22);
    core::RecordBlock block;
    block.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const FailureRecord f = GetRecord(r);
      if (f.system != systems_[s].id) {
        throw snapshot::SnapshotError("stored record out of range");
      }
      block.PushBack(f);
    }
    // One vectorized validation pass per store replaces the per-record
    // consistent() calls: node range, end >= start, category/subcategory
    // pairing and time order are all checked before anything is appended.
    try {
      stores_[s].AppendBlock(block);
    } catch (const std::invalid_argument& e) {
      throw snapshot::SnapshotError(std::string("invalid stored record: ") +
                                    e.what());
    }
  }
  // Re-sync the process-level metrics with the restored counter values:
  // exports must agree with counters() after a restore, whether the
  // snapshot is ahead of or behind this engine's pre-restore state
  // (Counter::Add accepts negative deltas for the latter).
  StreamMetrics& metrics = StreamMetrics::Get();
  metrics.ingested.Add((counters_.accepted + counters_.rejected()) -
                       (before.accepted + before.rejected()));
  metrics.accepted.Add(counters_.accepted - before.accepted);
  metrics.released.Add(counters_.released - before.released);
  metrics.rejected_late.Add(counters_.rejected_late - before.rejected_late);
  metrics.rejected_unknown.Add(counters_.rejected_unknown_system -
                               before.rejected_unknown_system);
  metrics.rejected_bad.Add(counters_.rejected_bad_record -
                           before.rejected_bad_record);
  metrics.buffered.Set(static_cast<double>(num_buffered()));
  metrics.watermark_lag.Set(
      buffer_.empty()
          ? 0.0
          : static_cast<double>(max_seen_ - buffer_.front().record.start));
}

}  // namespace hpcfail::stream
