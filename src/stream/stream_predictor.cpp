#include "stream/stream_predictor.h"

namespace hpcfail::stream {

StreamingPredictor::StreamingPredictor(
    const std::vector<SystemConfig>& systems,
    core::FailurePredictor predictor, double threshold)
    : predictor_(std::move(predictor)), threshold_(threshold) {
  lanes_.resize(systems.size());
  for (std::size_t i = 0; i < systems.size(); ++i) {
    const auto num_nodes = static_cast<std::size_t>(systems[i].num_nodes);
    lanes_[i].last_type.assign(num_nodes, -1);
    lanes_[i].last_time.assign(num_nodes, 0);
  }
}

double StreamingPredictor::OnEvent(std::size_t system_index,
                                   const FailureRecord& f) {
  Lane& lane = lanes_.at(system_index);
  const auto n = static_cast<std::size_t>(f.node.value);
  std::optional<FailureCategory> last_type;
  std::optional<TimeSec> last_time;
  if (lane.last_type[n] >= 0) {
    last_type = static_cast<FailureCategory>(lane.last_type[n]);
    last_time = lane.last_time[n];
  }
  const double score = predictor_.Score(last_type, last_time, f.start);
  ++lane.events_scored;
  if (score >= threshold_) ++lane.alarms;
  lane.last_type[n] = static_cast<std::int8_t>(f.category);
  lane.last_time[n] = f.start;
  return score;
}

double StreamingPredictor::ScoreNode(std::size_t system_index, NodeId node,
                                     TimeSec now) const {
  const Lane& lane = lanes_.at(system_index);
  const auto n = static_cast<std::size_t>(node.value);
  std::optional<FailureCategory> last_type;
  std::optional<TimeSec> last_time;
  if (lane.last_type.at(n) >= 0) {
    last_type = static_cast<FailureCategory>(lane.last_type[n]);
    last_time = lane.last_time[n];
  }
  return predictor_.Score(last_type, last_time, now);
}

long long StreamingPredictor::events_scored() const {
  long long total = 0;
  for (const Lane& lane : lanes_) total += lane.events_scored;
  return total;
}

long long StreamingPredictor::alarms() const {
  long long total = 0;
  for (const Lane& lane : lanes_) total += lane.alarms;
  return total;
}

double StreamingPredictor::alarm_rate() const {
  const long long scored = events_scored();
  return scored > 0 ? static_cast<double>(alarms()) /
                          static_cast<double>(scored)
                    : 0.0;
}

std::uint64_t StreamingPredictor::ConfigFingerprint() const {
  snapshot::Writer w;
  w.PutU64(lanes_.size());
  for (const Lane& lane : lanes_) w.PutU64(lane.last_type.size());
  return snapshot::Fnv1a64(w.payload());
}

void StreamingPredictor::SaveTo(snapshot::Writer& w) const {
  w.PutU64(ConfigFingerprint());
  // Learned table + config: restoring rebuilds the predictor via FromTable,
  // so a resumed consumer scores identically without retraining.
  const core::PredictorConfig& cfg = predictor_.config();
  w.PutI64(cfg.horizon);
  w.PutI64(cfg.memory);
  w.PutBool(cfg.type_aware);
  w.PutDouble(predictor_.baseline());
  for (FailureCategory c : AllFailureCategories()) {
    w.PutDouble(predictor_.conditional(c));
  }
  w.PutDouble(threshold_);
  w.PutU64(lanes_.size());
  for (const Lane& lane : lanes_) {
    w.PutI64(lane.events_scored);
    w.PutI64(lane.alarms);
    w.PutU64(lane.last_type.size());
    for (std::size_t n = 0; n < lane.last_type.size(); ++n) {
      w.PutU8(static_cast<std::uint8_t>(lane.last_type[n] + 1));  // 0 = none
      w.PutI64(lane.last_time[n]);
    }
  }
}

void StreamingPredictor::LoadFrom(snapshot::Reader& r) {
  if (r.GetU64() != ConfigFingerprint()) {
    throw snapshot::SnapshotError(
        "snapshot was taken with a different predictor configuration");
  }
  core::PredictorConfig cfg;
  cfg.horizon = r.GetI64();
  cfg.memory = r.GetI64();
  cfg.type_aware = r.GetBool();
  const double baseline = r.GetDouble();
  std::array<double, kNumFailureCategories> conditional{};
  for (double& c : conditional) c = r.GetDouble();
  predictor_ = core::FailurePredictor::FromTable(cfg, baseline, conditional);
  threshold_ = r.GetDouble();
  if (r.GetU64() != lanes_.size()) {
    throw snapshot::SnapshotError("predictor lane count mismatch");
  }
  for (Lane& lane : lanes_) {
    lane.events_scored = r.GetI64();
    lane.alarms = r.GetI64();
    const std::size_t nodes = r.GetSize(9);
    if (nodes != lane.last_type.size()) {
      throw snapshot::SnapshotError("predictor node count mismatch");
    }
    for (std::size_t n = 0; n < nodes; ++n) {
      const std::uint8_t type = r.GetU8();
      if (type > kNumFailureCategories) {
        throw snapshot::SnapshotError("predictor last-failure type invalid");
      }
      lane.last_type[n] = static_cast<std::int8_t>(type) - 1;
      lane.last_time[n] = r.GetI64();
    }
  }
}

}  // namespace hpcfail::stream
