// Streaming summary statistics: count / mean / M2 (Welford) over event
// downtime, total and per failure category, accumulated per system as the
// stream flows. Reports merge the per-system accumulators in system order
// with Chan's pairwise formula, so the result is one deterministic double
// sequence regardless of catch-up thread count or checkpoint boundaries.
#pragma once

#include <array>
#include <vector>

#include "stream/snapshot.h"
#include "trace/failure.h"
#include "trace/system.h"

namespace hpcfail::stream {

// One Welford accumulator: count, running mean, and M2 (sum of squared
// deviations from the running mean).
struct RunningStats {
  long long count = 0;
  double mean = 0.0;
  double m2 = 0.0;

  void Add(double x);
  // Chan's parallel merge; associative over disjoint accumulators.
  static RunningStats Merge(const RunningStats& a, const RunningStats& b);

  // Sample variance (n-1 denominator); 0 for count < 2.
  double variance() const;
  double stddev() const;

  friend bool operator==(const RunningStats&, const RunningStats&) = default;
};

class StreamingSummary {
 public:
  explicit StreamingSummary(std::size_t num_systems);

  // Folds one released event into its system's accumulators. Touches only
  // `system_index`'s state (safe for sharded catch-up).
  void OnEvent(std::size_t system_index, const FailureRecord& f);

  // Merged-over-systems views (system order, deterministic).
  RunningStats Downtime() const;
  RunningStats DowntimeOf(FailureCategory c) const;
  long long total_events() const;
  long long CountOf(FailureCategory c) const;

  // Per-system views.
  std::size_t num_systems() const { return lanes_.size(); }
  RunningStats DowntimeOfSystem(std::size_t system_index) const;

  void SaveTo(snapshot::Writer& w) const;
  void LoadFrom(snapshot::Reader& r);

 private:
  struct Lane {
    RunningStats all;
    std::array<RunningStats, kNumFailureCategories> by_category{};
  };

  std::vector<Lane> lanes_;
};

}  // namespace hpcfail::stream
