#include "synth/workload_sim.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace hpcfail::synth {
namespace {

// Merge intervals and return total covered time.
TimeSec UnionLength(std::vector<TimeInterval>& ivs) {
  if (ivs.empty()) return 0;
  std::sort(ivs.begin(), ivs.end(),
            [](const TimeInterval& a, const TimeInterval& b) {
              return a.begin < b.begin;
            });
  TimeSec total = 0;
  TimeSec cur_begin = ivs.front().begin;
  TimeSec cur_end = ivs.front().end;
  for (const TimeInterval& iv : ivs) {
    if (iv.begin > cur_end) {
      total += cur_end - cur_begin;
      cur_begin = iv.begin;
      cur_end = iv.end;
    } else {
      cur_end = std::max(cur_end, iv.end);
    }
  }
  total += cur_end - cur_begin;
  return total;
}

}  // namespace

WorkloadResult SimulateWorkload(const SystemScenario& scenario,
                                SystemId system, int first_job_id,
                                stats::Rng& rng) {
  const WorkloadSpec& w = scenario.workload;
  const auto num_nodes = static_cast<std::size_t>(scenario.num_nodes);
  WorkloadResult out;
  out.usage.resize(num_nodes);
  for (std::size_t n = 0; n < num_nodes; ++n) {
    out.usage[n].node = NodeId{static_cast<int>(n)};
  }
  out.usage_multiplier.assign(num_nodes, 1.0);
  if (!w.enabled) return out;

  // ---- Users: heavy-tailed activity weights, lognormal risk multipliers.
  // User 0 is the login/system pseudo-user that owns node-0 housekeeping.
  const auto num_users = static_cast<std::size_t>(w.num_users);
  std::vector<double> activity(num_users + 1, 0.0);
  out.user_risk.assign(num_users + 1, 1.0);
  // Login/housekeeping pseudo-jobs are light health checks: far less
  // punishing per dispatch than real user workloads. (Node 0's elevated
  // rates come mainly from its node0_rate_multiplier role, as in the paper,
  // not from job churn.)
  out.user_risk[0] = 0.3;
  double activity_total = 0.0;
  for (std::size_t u = 1; u <= num_users; ++u) {
    activity[u] = rng.Pareto(1.0, w.user_activity_pareto_shape);
    activity_total += activity[u];
    out.user_risk[u] =
        w.user_risk_sigma > 0.0 ? rng.LogNormal(0.0, w.user_risk_sigma) : 1.0;
  }

  // Scheduler affinity: low-id nodes are preferred, giving a utilization
  // gradient across node ids (visible in Fig. 7's x-axis spread). On top of
  // that, alternate nodes lean towards short interactive jobs vs long batch
  // jobs — this decorrelates a node's job count from its utilization, which
  // the Section-X joint regression needs to separate num_jobs from util.
  std::vector<double> base_weight(num_nodes);
  std::vector<double> short_weight(num_nodes), long_weight(num_nodes);
  for (std::size_t n = 0; n < num_nodes; ++n) {
    base_weight[n] =
        std::exp(-1.5 * static_cast<double>(n) /
                 static_cast<double>(std::max<std::size_t>(num_nodes, 1)));
    const double short_affinity = n % 2 == 0 ? 0.8 : 0.2;
    short_weight[n] = base_weight[n] * short_affinity;
    long_weight[n] = base_weight[n] * (1.0 - short_affinity);
  }
  const double short_total =
      std::accumulate(short_weight.begin(), short_weight.end(), 0.0);
  const double long_total =
      std::accumulate(long_weight.begin(), long_weight.end(), 0.0);

  auto sample_node = [&](bool short_job) {
    const auto& weight = short_job ? short_weight : long_weight;
    const double total = short_job ? short_total : long_total;
    double u = rng.Uniform() * total;
    for (std::size_t n = 0; n + 1 < num_nodes; ++n) {
      if (u < weight[n]) return NodeId{static_cast<int>(n)};
      u -= weight[n];
    }
    return NodeId{static_cast<int>(num_nodes - 1)};
  };

  auto sample_user = [&]() {
    double u = rng.Uniform() * activity_total;
    for (std::size_t id = 1; id + 1 <= num_users; ++id) {
      if (u < activity[id]) return UserId{static_cast<int>(id)};
      u -= activity[id];
    }
    return UserId{static_cast<int>(num_users)};
  };

  std::vector<std::vector<TimeInterval>> busy(num_nodes);
  int next_job_id = first_job_id;

  auto emit_job = [&](UserId user, TimeSec submit, TimeSec queue_delay,
                      TimeSec runtime, std::vector<NodeId> nodes) {
    JobRecord j;
    j.id = JobId{next_job_id++};
    j.system = system;
    j.user = user;
    j.submit = submit;
    j.dispatch = submit + queue_delay;
    j.end = std::min<TimeSec>(scenario.duration, j.dispatch + runtime);
    if (j.dispatch >= scenario.duration || j.end <= j.dispatch) return;
    j.procs = static_cast<int>(nodes.size()) * scenario.procs_per_node;
    j.nodes = std::move(nodes);
    for (NodeId n : j.nodes) {
      const auto idx = static_cast<std::size_t>(n.value);
      busy[idx].push_back({j.dispatch, j.end});
      ++out.usage[idx].num_jobs;
      out.churn.push_back(
          {n, j.dispatch, out.user_risk[static_cast<std::size_t>(
                              j.user.value)]});
    }
    out.jobs.push_back(std::move(j));
  };

  // ---- Main job stream: Poisson arrivals.
  const double arrival_rate = w.jobs_per_day / static_cast<double>(kDay);
  double t = 0.0;
  while (true) {
    t += rng.Exponential(arrival_rate);
    if (t >= static_cast<double>(scenario.duration)) break;
    const auto submit = static_cast<TimeSec>(t);
    const auto queue_delay = static_cast<TimeSec>(
        rng.Exponential(1.0 / static_cast<double>(w.mean_queue_delay)));
    // Half the jobs are short interactive runs, half long batch runs; the
    // overall mean runtime stays at w.mean_job_runtime.
    const bool short_job = rng.Bernoulli(0.5);
    const double mean_runtime =
        static_cast<double>(w.mean_job_runtime) * (short_job ? 0.25 : 1.75);
    const auto runtime = std::max<TimeSec>(
        5 * kMinute,
        static_cast<TimeSec>(rng.Exponential(1.0 / mean_runtime)));
    // 1 + Poisson keeps at least one node and a configurable mean.
    const int n_nodes = std::min(
        scenario.num_nodes,
        1 + rng.Poisson(std::max(0.0, w.mean_nodes_per_job - 1.0)));
    std::vector<NodeId> nodes;
    nodes.reserve(static_cast<std::size_t>(n_nodes));
    for (int k = 0; k < n_nodes * 3 &&
                    nodes.size() < static_cast<std::size_t>(n_nodes);
         ++k) {
      const NodeId cand = sample_node(short_job);
      if (std::find(nodes.begin(), nodes.end(), cand) == nodes.end()) {
        nodes.push_back(cand);
      }
    }
    emit_job(sample_user(), submit, queue_delay, runtime, std::move(nodes));
  }

  // ---- Node-0 login/scheduler housekeeping jobs (short, frequent).
  if (w.node0_extra_jobs_per_day > 0.0 && scenario.num_nodes > 0) {
    const double rate = w.node0_extra_jobs_per_day / static_cast<double>(kDay);
    double lt = 0.0;
    while (true) {
      lt += rng.Exponential(rate);
      if (lt >= static_cast<double>(scenario.duration)) break;
      const auto runtime = std::max<TimeSec>(
          kMinute,
          static_cast<TimeSec>(rng.Exponential(1.0 / (30.0 * kMinute))));
      emit_job(UserId{0}, static_cast<TimeSec>(lt), 0, runtime, {NodeId{0}});
    }
  }

  std::sort(out.jobs.begin(), out.jobs.end(),
            [](const JobRecord& a, const JobRecord& b) {
              if (a.dispatch != b.dispatch) return a.dispatch < b.dispatch;
              return a.id < b.id;
            });
  std::sort(out.churn.begin(), out.churn.end(),
            [](const ChurnTrigger& a, const ChurnTrigger& b) {
              return a.time < b.time;
            });

  for (std::size_t n = 0; n < num_nodes; ++n) {
    out.usage[n].busy_time = UnionLength(busy[n]);
    out.usage[n].utilization = static_cast<double>(out.usage[n].busy_time) /
                               static_cast<double>(scenario.duration);
    out.usage_multiplier[n] =
        1.0 + w.busy_hazard_boost * out.usage[n].utilization;
  }
  return out;
}

}  // namespace hpcfail::synth
