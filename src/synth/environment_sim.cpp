#include "synth/environment_sim.h"

#include <algorithm>
#include <cmath>

namespace hpcfail::synth {

std::vector<TemperatureSample> SimulateTemperature(
    const SystemScenario& scenario, SystemId system,
    const std::vector<FailureRecord>& failures,
    const std::vector<TimeSec>& chiller_events, stats::Rng& rng) {
  const TemperatureSpec& spec = scenario.temperature;
  std::vector<TemperatureSample> out;
  if (!spec.enabled) return out;

  // Collect per-node fan failure times (local excursions), time-sorted.
  std::vector<std::vector<TimeSec>> fan_times(
      static_cast<std::size_t>(scenario.num_nodes));
  for (const FailureRecord& f : failures) {
    if (f.hardware == HardwareComponent::kFan) {
      fan_times[static_cast<std::size_t>(f.node.value)].push_back(f.start);
    }
  }
  for (auto& v : fan_times) std::sort(v.begin(), v.end());

  // Excursion contribution at time t from events at times `events`: linear
  // decay from peak to zero over excursion_duration.
  auto excursion = [&spec](const std::vector<TimeSec>& events, TimeSec t,
                           double peak) {
    double total = 0.0;
    // Only the most recent events can matter; binary search the window.
    auto it = std::upper_bound(events.begin(), events.end(), t);
    while (it != events.begin()) {
      --it;
      const TimeSec age = t - *it;
      if (age >= spec.excursion_duration) break;
      const double frac = 1.0 - static_cast<double>(age) /
                                    static_cast<double>(spec.excursion_duration);
      total += peak * frac;
    }
    return total;
  };

  const auto n_samples =
      static_cast<std::size_t>(scenario.duration / spec.sample_interval);
  out.reserve(static_cast<std::size_t>(scenario.num_nodes) * n_samples);
  for (int n = 0; n < scenario.num_nodes; ++n) {
    const double node_offset = rng.Normal(0.0, spec.node_offset_stddev_c);
    const double phase = rng.Uniform(0.0, 2.0 * M_PI);
    const auto& fans = fan_times[static_cast<std::size_t>(n)];
    for (std::size_t s = 0; s < n_samples; ++s) {
      const TimeSec t = static_cast<TimeSec>(s) * spec.sample_interval;
      TemperatureSample sample;
      sample.system = system;
      sample.node = NodeId{n};
      sample.time = t;
      const double diurnal =
          spec.diurnal_amplitude_c *
          std::sin(2.0 * M_PI * static_cast<double>(t % kDay) /
                       static_cast<double>(kDay) +
                   phase);
      sample.celsius = spec.baseline_mean_c + node_offset + diurnal +
                       rng.Normal(0.0, spec.noise_stddev_c) +
                       excursion(fans, t, spec.fan_excursion_c) +
                       excursion(chiller_events, t, spec.chiller_excursion_c);
      out.push_back(sample);
    }
  }
  return out;
}

std::vector<NeutronSample> SimulateNeutronSeries(const NeutronSpec& spec,
                                                 TimeSec duration,
                                                 stats::Rng& rng) {
  std::vector<NeutronSample> out;
  // Start the window on the rising flank of the solar cycle so even short
  // traces see a meaningful flux trend.
  const double phase = -M_PI / 2.0;
  for (TimeSec t = 0; t < duration; t += spec.sample_interval) {
    NeutronSample s;
    s.time = t;
    s.counts_per_minute =
        spec.mean_counts +
        spec.cycle_amplitude *
            std::sin(2.0 * M_PI * static_cast<double>(t) /
                         static_cast<double>(spec.cycle_period) +
                     phase) +
        rng.Normal(0.0, spec.noise_stddev);
    s.counts_per_minute = std::max(1.0, s.counts_per_minute);
    out.push_back(s);
  }
  return out;
}

std::vector<double> CpuFluxFactors(const std::vector<NeutronSample>& series,
                                   double mean_counts, double exponent,
                                   TimeSec duration) {
  const auto n_months =
      static_cast<std::size_t>((duration + kMonth - 1) / kMonth);
  std::vector<double> out(std::max<std::size_t>(n_months, 1), 1.0);
  if (series.empty() || exponent == 0.0) return out;
  for (std::size_t m = 0; m < out.size(); ++m) {
    const TimeSec begin = static_cast<TimeSec>(m) * kMonth;
    const TimeSec end = begin + kMonth;
    double sum = 0.0;
    int count = 0;
    for (const NeutronSample& s : series) {
      if (s.time >= begin && s.time < end) {
        sum += s.counts_per_minute;
        ++count;
      }
    }
    if (count == 0) continue;
    const double flux = sum / count;
    out[m] = std::clamp(std::pow(flux / mean_counts, exponent), 0.3, 3.0);
  }
  return out;
}

}  // namespace hpcfail::synth
