// Plain-text scenario configuration: lets the CLI (and downstream users)
// define generator scenarios without recompiling. The format is a minimal
// INI dialect:
//
//   # comment
//   duration_years = 3
//   neutron_amplitude = 500
//
//   [system]
//   preset = group1           # group1 | group2 | system8 | system20
//   name = prod
//   nodes = 512
//   nodes_per_rack = 32
//   base_rate_scale = 1.0     # multiplies all baseline failure rates
//   outages_per_year = 0.7
//   spikes_per_year = 2.0
//   ups_per_year = 0.3
//   chillers_per_year = 0.5
//   workload = true           # enable the job log
//   jobs_per_day = 145
//   temperature = true        # enable the temperature log
//   cpu_flux_exponent = 2.5
//
// Unknown keys raise errors (typos should not silently do nothing); every
// key is optional. Multiple [system] sections build multi-system scenarios.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "synth/scenario.h"

namespace hpcfail::synth {

// Thrown with the offending 1-based line number in the message.
class ConfigError : public std::runtime_error {
 public:
  ConfigError(std::size_t line, const std::string& message);
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

// Parses a scenario config; the result is Validate()d before returning.
Scenario LoadScenarioConfig(std::istream& is);
Scenario LoadScenarioConfigFile(const std::string& path);

}  // namespace hpcfail::synth
