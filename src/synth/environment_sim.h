// Environment-series generators: per-node temperature samples (driven by
// ambient noise, diurnal cycles and fan/chiller excursions) and the
// cosmic-ray neutron-count series with its ~11-year solar cycle.
#pragma once

#include <vector>

#include "stats/rng.h"
#include "synth/scenario.h"
#include "trace/environment.h"
#include "trace/failure.h"

namespace hpcfail::synth {

// Generates periodic temperature samples for every node of the system.
// `fan_failures` are (node, time) pairs of fan failures in the trace (each
// causes a local excursion); `chiller_events` cause a system-wide excursion.
// Temperature is generated as an *effect* of these events — it never feeds
// back into failure rates — matching the paper's Section VIII finding that
// ambient temperature is not a significant failure predictor.
std::vector<TemperatureSample> SimulateTemperature(
    const SystemScenario& scenario, SystemId system,
    const std::vector<FailureRecord>& failures,
    const std::vector<TimeSec>& chiller_events, stats::Rng& rng);

// Generates the neutron-monitor series over [0, duration).
std::vector<NeutronSample> SimulateNeutronSeries(const NeutronSpec& spec,
                                                 TimeSec duration,
                                                 stats::Rng& rng);

// Per-month CPU-hazard factors (flux / mean)^exponent, clamped to [0.3, 3],
// evaluated from a neutron series. Index = month since trace epoch.
std::vector<double> CpuFluxFactors(const std::vector<NeutronSample>& series,
                                   double mean_counts, double exponent,
                                   TimeSec duration);

}  // namespace hpcfail::synth
