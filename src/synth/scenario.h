// Scenario: the complete parameterization of the synthetic LANL-like trace
// generator. The real LANL logs are a data gate we cannot ship, so the
// generator encodes the paper's *published* failure structure — baseline
// rates, post-failure correlation boosts at node/rack/system scope, power and
// cooling cascades, the login-node-0 effect, usage coupling, and the cosmic
// ray / CPU coupling — and every analysis must rediscover that structure from
// the emitted trace. All knobs live here so DESIGN.md can point at one place.
//
// The failure process is a marked Hawkes (branching) process: baseline
// "immigrant" events arrive at piecewise-constant per-node rates, and every
// event spawns Poisson-distributed follow-up children with exponentially
// distributed delays, at the same node, at a random rack neighbor, or at a
// random node of the same system.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "trace/failure.h"
#include "trace/system.h"

namespace hpcfail::synth {

// Expected follow-up events spawned by one trigger, per target category,
// with a shared mean delay. Branching ratios must stay subcritical
// (summed over all scopes < 1) or generation would explode; Validate checks.
struct CascadeSpec {
  // children[target-category] = expected number of spawned failures.
  std::array<double, kNumFailureCategories> children{};
  TimeSec mean_delay = 2 * kDay;  // exponential delay of each child
  // When set, hardware/software children of this trigger draw their
  // subcomponent from this mix instead of the system baseline mix (e.g.
  // power outages breed node-board and power-supply failures).
  std::optional<std::array<double, kNumHardwareComponents>> hardware_mix;
  std::optional<std::array<double, kNumSoftwareComponents>> software_mix;
  // Expected unscheduled-maintenance events spawned (Section VII.A.2).
  double maintenance_children = 0.0;

  double total_children() const {
    double s = 0.0;
    for (double c : children) s += c;
    return s;
  }
};

// Facility-level event source (power outage / spike / UPS / chiller).
struct FacilityEventSpec {
  double events_per_year = 0.0;
  // Fraction of the system's nodes that log an environment failure when the
  // event strikes (outages hit most nodes at once; spikes hit one).
  double frac_nodes_affected = 0.0;
  int min_nodes_affected = 1;
  // Cascade planted on every affected node.
  CascadeSpec cascade;
  // When true the event targets one rack (UPS units serve racks), giving the
  // rack-correlated pattern of Fig. 12 (repeats strike the same rack).
  bool rack_scoped = false;
};

// Workload / usage model for one system (Sections V, VI).
struct WorkloadSpec {
  bool enabled = false;
  int num_users = 400;
  double jobs_per_day = 150.0;
  TimeSec mean_job_runtime = 4 * kHour;
  TimeSec mean_queue_delay = 30 * kMinute;
  double mean_nodes_per_job = 4.0;
  // Pareto shape for per-user activity weight; ~1.2 gives the heavy tail
  // ("50 heaviest users" dominate).
  double user_activity_pareto_shape = 1.2;
  // Per-user failure-risk multiplier is lognormal(0, sigma): some users
  // exercise buggy code paths / punishing access patterns (Section VI).
  double user_risk_sigma = 0.8;
  // Hazard multiplier applied while a node runs >= 1 job:
  // rate *= 1 + busy_hazard_boost * utilization.
  double busy_hazard_boost = 1.2;
  // Node 0 runs this many extra login/scheduler pseudo-jobs per day.
  double node0_extra_jobs_per_day = 40.0;
  // Every (job, node) dispatch plants a small failure cascade scaled by the
  // submitting user's risk multiplier; this is how "the way a node is
  // exercised affects its failure behaviour" (Sections V/VI) enters the
  // generator.
  double job_churn_hazard = 0.001;
};

// Temperature sensing model (Section VIII). Temperature is generated as a
// *consequence* of fan/chiller failures and as ambient noise; it never feeds
// back into failure rates, matching the paper's finding that average
// temperature is insignificant.
struct TemperatureSpec {
  bool enabled = false;
  TimeSec sample_interval = 6 * kHour;
  double baseline_mean_c = 28.0;
  // Per-node static offset: cooler/hotter spots in the room.
  double node_offset_stddev_c = 2.5;
  double diurnal_amplitude_c = 1.5;
  double noise_stddev_c = 0.8;
  // Excursion after a fan failure on the node / chiller failure anywhere.
  double fan_excursion_c = 25.0;
  double chiller_excursion_c = 12.0;
  TimeSec excursion_duration = 12 * kHour;
};

// One synthetic system.
struct SystemScenario {
  std::string name;
  SystemGroup group = SystemGroup::kSmp;
  int num_nodes = 128;
  int procs_per_node = 4;
  int nodes_per_rack = 32;
  int racks_per_row = 8;
  TimeSec duration = 3 * kYear;

  // ---- Baseline (immigrant) hazard rates, events per node-hour.
  std::array<double, kNumFailureCategories> base_rate_per_hour{};
  // Subcomponent mixes for baseline hardware/software failures.
  std::array<double, kNumHardwareComponents> hardware_mix{};
  std::array<double, kNumSoftwareComponents> software_mix{};
  // Subcategory mix for per-node environment failures that are not born from
  // a facility event (individual PDU trips, local power blips). Facility
  // events add their own records on top of this mix.
  std::array<double, kNumEnvironmentEvents> environment_mix{
      0.35, 0.25, 0.12, 0.06, 0.22};
  // Baseline unscheduled maintenance, events per node-hour.
  double base_maintenance_per_hour = 0.0;

  // ---- Correlation structure: cascades per trigger category and scope.
  // node_cascade[x] spawns children on the failing node itself;
  // rack_cascade[x] on a uniformly random other node of the same rack;
  // system_cascade[x] on a uniformly random other node of the same system.
  std::array<CascadeSpec, kNumFailureCategories> node_cascade{};
  std::array<CascadeSpec, kNumFailureCategories> rack_cascade{};
  std::array<CascadeSpec, kNumFailureCategories> system_cascade{};
  // Probability that a hardware child of a hardware trigger hits the same
  // component (memory begets memory: Section III.A.4).
  double same_component_inherit_prob = 0.6;

  // ---- Node 0 (login/scheduler node): per-category baseline multipliers.
  std::array<double, kNumFailureCategories> node0_rate_multiplier{
      1.0, 1.0, 1.0, 1.0, 1.0, 1.0};

  // ---- Facility events.
  FacilityEventSpec power_outage;
  FacilityEventSpec power_spike;
  FacilityEventSpec ups_failure;
  FacilityEventSpec chiller_failure;
  // Extra cascade planted when a node's own power-supply unit fails (these
  // are ordinary hardware/kPowerSupply failures, but the paper treats them
  // as a fifth power problem).
  CascadeSpec power_supply_cascade;
  // Extra cascade planted by fan failures (temperature excursions).
  CascadeSpec fan_cascade;

  // ---- Usage & sensing.
  WorkloadSpec workload;
  TemperatureSpec temperature;

  // ---- System-wide temporal modulation: baseline rates are multiplied by a
  // lognormal factor redrawn every `modulation_period` (mean 1). This models
  // operational good/bad periods shared by all nodes of a system and is what
  // produces the modest same-system correlations of Fig. 3 without requiring
  // (supercritical) system-wide branching.
  double modulation_sigma = 0.35;
  TimeSec modulation_period = kWeek;

  // ---- Cosmic coupling: baseline CPU-failure rate is scaled by
  // (flux / mean_flux)^cpu_flux_exponent. DRAM gets no coupling, matching
  // Section IX's finding.
  double cpu_flux_exponent = 0.0;

  // Failure downtime: lognormal(log(median), sigma), in seconds.
  double downtime_median_sec = 2.0 * kHour;
  double downtime_sigma = 0.8;

  // Throws std::invalid_argument when parameters are inconsistent (negative
  // rates, supercritical branching, bad mixes).
  void Validate() const;
};

// Neutron-count series parameters (Section IX). An ~11-year solar cycle
// sinusoid plus noise, in counts-per-minute, sampled monthly.
struct NeutronSpec {
  double mean_counts = 4000.0;
  double cycle_amplitude = 500.0;
  TimeSec cycle_period = 11 * kYear;
  double noise_stddev = 60.0;
  TimeSec sample_interval = kMonth;
};

struct Scenario {
  std::vector<SystemScenario> systems;
  NeutronSpec neutron;
  TimeSec duration = 3 * kYear;  // neutron series length; >= max system span

  void Validate() const;
};

// ---- Presets -------------------------------------------------------------
// Parameter values are calibrated against the paper's published numbers; see
// DESIGN.md section 2 and EXPERIMENTS.md for the target-vs-achieved table.

// A group-1-like SMP system (LANL systems 3..20): 4-way SMP nodes.
// `num_nodes`/`duration` scale the default (paper systems are 128..1024
// nodes observed for up to 9 years).
SystemScenario Group1System(std::string name, int num_nodes,
                            TimeSec duration = 3 * kYear);

// A group-2-like NUMA system (LANL systems 2, 16, 24): few nodes, 128
// processors each, ~15x higher per-node failure rates.
SystemScenario Group2System(std::string name, int num_nodes,
                            TimeSec duration = 3 * kYear);

// System-20 analogue: group-1 system with usage logs, temperature sensing
// and layout — the only system supporting the Section X joint regression.
SystemScenario System20Like(int num_nodes = 512, TimeSec duration = 3 * kYear);

// System-8 analogue: group-1 system with usage logs.
SystemScenario System8Like(int num_nodes = 256, TimeSec duration = 3 * kYear);

// The full LANL-like installation: seven group-1 systems + three group-2
// systems, with system ids laid out in the order they are added. `scale`
// in (0, 1] shrinks node counts to trade fidelity for speed.
Scenario LanlLikeScenario(double scale = 1.0, TimeSec duration = 3 * kYear);

// Small scenario for unit tests: two racks, a few nodes, high rates so even
// short traces contain events.
Scenario TinyScenario(TimeSec duration = 180 * kDay);

}  // namespace hpcfail::synth
