#include "synth/generate.h"

#include <algorithm>

#include "stats/rng.h"
#include "synth/cluster_sim.h"
#include "synth/environment_sim.h"
#include "synth/workload_sim.h"

namespace hpcfail::synth {
namespace {

// Marks jobs that died because a node they ran on failed mid-run. Section VI
// only counts these "killed by node failure" jobs.
void MarkKilledJobs(std::vector<JobRecord>& jobs,
                    const std::vector<FailureRecord>& failures,
                    int num_nodes) {
  // Per-node sorted failure start times for binary search.
  std::vector<std::vector<TimeSec>> by_node(
      static_cast<std::size_t>(num_nodes));
  for (const FailureRecord& f : failures) {
    by_node[static_cast<std::size_t>(f.node.value)].push_back(f.start);
  }
  for (auto& v : by_node) std::sort(v.begin(), v.end());
  for (JobRecord& j : jobs) {
    for (NodeId n : j.nodes) {
      const auto& times = by_node[static_cast<std::size_t>(n.value)];
      auto it = std::lower_bound(times.begin(), times.end(), j.dispatch);
      if (it != times.end() && *it < j.end) {
        j.killed_by_node_failure = true;
        break;
      }
    }
  }
}

}  // namespace

Trace GenerateTrace(const Scenario& scenario, std::uint64_t seed) {
  scenario.Validate();
  stats::Rng root(seed);
  Trace trace;

  // Shared external series.
  stats::Rng neutron_rng = root.Fork();
  std::vector<NeutronSample> neutrons =
      SimulateNeutronSeries(scenario.neutron, scenario.duration, neutron_rng);

  int next_system_id = 0;
  int next_job_id = 0;
  for (const SystemScenario& sys : scenario.systems) {
    const SystemId id{next_system_id++};
    stats::Rng sys_rng = root.Fork();

    SystemConfig config;
    config.id = id;
    config.name = sys.name;
    config.group = sys.group;
    config.num_nodes = sys.num_nodes;
    config.procs_per_node = sys.procs_per_node;
    config.observed = {0, sys.duration};
    config.layout = MachineLayout::Grid(sys.num_nodes, sys.nodes_per_rack,
                                        sys.racks_per_row);
    const MachineLayout& layout = config.layout;
    trace.AddSystem(config);

    // Usage first: the failure process depends on it.
    WorkloadResult workload =
        SimulateWorkload(sys, id, next_job_id, sys_rng);
    // Jobs are dispatch-sorted, so scan for the max id rather than back().
    for (const JobRecord& j : workload.jobs) {
      next_job_id = std::max(next_job_id, j.id.value + 1);
    }

    ClusterSimInput input;
    input.system = id;
    input.usage_multiplier = workload.usage_multiplier;
    input.churn = workload.churn;
    input.cpu_flux_factor = CpuFluxFactors(
        neutrons, scenario.neutron.mean_counts, sys.cpu_flux_exponent,
        sys.duration);
    ClusterSimResult sim = SimulateCluster(sys, layout, input, sys_rng);

    MarkKilledJobs(workload.jobs, sim.failures, sys.num_nodes);

    std::vector<TemperatureSample> temps = SimulateTemperature(
        sys, id, sim.failures, sim.chiller_events, sys_rng);

    for (FailureRecord& f : sim.failures) trace.AddFailure(std::move(f));
    for (MaintenanceRecord& m : sim.maintenance) trace.AddMaintenance(m);
    for (JobRecord& j : workload.jobs) trace.AddJob(std::move(j));
    for (TemperatureSample& t : temps) trace.AddTemperature(t);
  }

  trace.SetNeutronSeries(std::move(neutrons));
  trace.Finalize();
  return trace;
}

}  // namespace hpcfail::synth
