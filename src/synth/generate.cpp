#include "synth/generate.h"

#include <algorithm>

#include "core/parallel.h"
#include "stats/rng.h"
#include "synth/cluster_sim.h"
#include "synth/environment_sim.h"
#include "synth/workload_sim.h"

namespace hpcfail::synth {
namespace {

// Marks jobs that died because a node they ran on failed mid-run. Section VI
// only counts these "killed by node failure" jobs.
void MarkKilledJobs(std::vector<JobRecord>& jobs,
                    const std::vector<FailureRecord>& failures,
                    int num_nodes) {
  // Per-node sorted failure start times for binary search.
  std::vector<std::vector<TimeSec>> by_node(
      static_cast<std::size_t>(num_nodes));
  for (const FailureRecord& f : failures) {
    by_node[static_cast<std::size_t>(f.node.value)].push_back(f.start);
  }
  for (auto& v : by_node) std::sort(v.begin(), v.end());
  for (JobRecord& j : jobs) {
    for (NodeId n : j.nodes) {
      const auto& times = by_node[static_cast<std::size_t>(n.value)];
      auto it = std::lower_bound(times.begin(), times.end(), j.dispatch);
      if (it != times.end() && *it < j.end) {
        j.killed_by_node_failure = true;
        break;
      }
    }
  }
}

// Everything one system's simulation produces; built in parallel, merged
// into the Trace in scenario order.
struct SystemResult {
  WorkloadResult workload;
  ClusterSimResult sim;
  std::vector<TemperatureSample> temps;
};

}  // namespace

Trace GenerateTrace(const Scenario& scenario, std::uint64_t seed) {
  scenario.Validate();
  stats::Rng root(seed);
  Trace trace;

  // Shared external series.
  stats::Rng neutron_rng = root.Fork();
  std::vector<NeutronSample> neutrons =
      SimulateNeutronSeries(scenario.neutron, scenario.duration, neutron_rng);

  // RNG forks and system configs are derived serially so the streams depend
  // only on (scenario, seed); the per-system simulations then run in
  // parallel, one task per system. Jobs are generated with ids starting at 0
  // and offset during the ordered merge below, which reproduces the serial
  // id chaining exactly — output is identical for every thread count.
  const std::size_t num_systems = scenario.systems.size();
  std::vector<stats::Rng> sys_rngs;
  sys_rngs.reserve(num_systems);
  std::vector<SystemConfig> configs(num_systems);
  for (std::size_t i = 0; i < num_systems; ++i) {
    const SystemScenario& sys = scenario.systems[i];
    sys_rngs.push_back(root.Fork());
    SystemConfig& config = configs[i];
    config.id = SystemId{static_cast<int>(i)};
    config.name = sys.name;
    config.group = sys.group;
    config.num_nodes = sys.num_nodes;
    config.procs_per_node = sys.procs_per_node;
    config.observed = {0, sys.duration};
    config.layout = MachineLayout::Grid(sys.num_nodes, sys.nodes_per_rack,
                                        sys.racks_per_row);
  }

  std::vector<SystemResult> results(num_systems);
  core::ParallelFor(num_systems, [&](std::size_t i) {
    const SystemScenario& sys = scenario.systems[i];
    const SystemId id = configs[i].id;
    stats::Rng sys_rng = sys_rngs[i];
    SystemResult& r = results[i];

    // Usage first: the failure process depends on it.
    r.workload = SimulateWorkload(sys, id, /*first_job_id=*/0, sys_rng);

    ClusterSimInput input;
    input.system = id;
    input.usage_multiplier = r.workload.usage_multiplier;
    input.churn = r.workload.churn;
    input.cpu_flux_factor = CpuFluxFactors(
        neutrons, scenario.neutron.mean_counts, sys.cpu_flux_exponent,
        sys.duration);
    r.sim = SimulateCluster(sys, configs[i].layout, input, sys_rng);

    MarkKilledJobs(r.workload.jobs, r.sim.failures, sys.num_nodes);

    r.temps = SimulateTemperature(sys, id, r.sim.failures,
                                  r.sim.chiller_events, sys_rng);
  });

  int next_job_id = 0;
  for (std::size_t i = 0; i < num_systems; ++i) {
    trace.AddSystem(std::move(configs[i]));
    SystemResult& r = results[i];
    const int base_job_id = next_job_id;
    for (JobRecord& j : r.workload.jobs) {
      j.id = JobId{j.id.value + base_job_id};
      next_job_id = std::max(next_job_id, j.id.value + 1);
    }
    for (FailureRecord& f : r.sim.failures) trace.AddFailure(std::move(f));
    for (MaintenanceRecord& m : r.sim.maintenance) trace.AddMaintenance(m);
    for (JobRecord& j : r.workload.jobs) trace.AddJob(std::move(j));
    for (TemperatureSample& t : r.temps) trace.AddTemperature(t);
  }

  trace.SetNeutronSeries(std::move(neutrons));
  trace.Finalize();
  return trace;
}

}  // namespace hpcfail::synth
