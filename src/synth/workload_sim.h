// Workload simulator: generates the per-job usage log (Sections V, VI) and
// the usage-coupling inputs of the failure simulator — per-node utilization
// multipliers and per-(job, node) churn triggers scaled by the submitting
// user's risk factor.
#pragma once

#include <vector>

#include "stats/rng.h"
#include "synth/cluster_sim.h"
#include "synth/scenario.h"
#include "trace/job.h"

namespace hpcfail::synth {

struct NodeUsage {
  NodeId node;
  int num_jobs = 0;
  TimeSec busy_time = 0;     // union of job intervals on this node
  double utilization = 0.0;  // busy_time / duration
};

struct WorkloadResult {
  std::vector<JobRecord> jobs;        // dispatch-ordered
  std::vector<NodeUsage> usage;       // index == node id
  std::vector<ChurnTrigger> churn;    // one per (job, node) dispatch
  std::vector<double> user_risk;      // index == user id; [0] = login user
  // 1 + busy_hazard_boost * utilization, per node; feeds ClusterSimInput.
  std::vector<double> usage_multiplier;
};

// Simulates the job stream for one system over [0, scenario.duration).
// Job ids are assigned starting at `first_job_id`. When the workload is
// disabled, returns empty streams and all-ones multipliers.
WorkloadResult SimulateWorkload(const SystemScenario& scenario,
                                SystemId system, int first_job_id,
                                stats::Rng& rng);

}  // namespace hpcfail::synth
