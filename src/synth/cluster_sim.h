// Failure-process simulator for one system: a marked Hawkes branching
// process. Immigrant failures arrive at piecewise-constant per-node rates
// (modulated by the system-wide good/bad-period factor, node usage, the
// node-0 role and the cosmic-ray flux on the CPU lane); facility events
// (power outages / spikes / UPS / chiller) strike sets of nodes at once; and
// every failure spawns Poisson-distributed follow-up failures on the same
// node, on rack neighbors and across the system, per the scenario's cascade
// specs. Generation cost is O(total events), independent of trace duration
// resolution.
#pragma once

#include <vector>

#include "stats/rng.h"
#include "synth/scenario.h"
#include "trace/failure.h"
#include "trace/layout.h"

namespace hpcfail::synth {

// A (job, node) dispatch that plants a small usage-induced cascade.
struct ChurnTrigger {
  NodeId node;
  TimeSec time = 0;
  double risk = 1.0;  // submitting user's risk multiplier
};

struct ClusterSimInput {
  SystemId system;
  // Static per-node hazard multiplier from usage (1 + busy_boost * util);
  // empty means 1.0 for every node.
  std::vector<double> usage_multiplier;
  std::vector<ChurnTrigger> churn;
  // Cosmic-ray factor applied to the CPU baseline lane, one entry per
  // kMonth of trace time; empty means 1.0.
  std::vector<double> cpu_flux_factor;
};

struct ClusterSimResult {
  std::vector<FailureRecord> failures;        // time-sorted
  std::vector<MaintenanceRecord> maintenance; // time-sorted
  // Start times of chiller facility events (temperature simulation input).
  std::vector<TimeSec> chiller_events;
};

// Runs the simulation over [0, scenario.duration). `layout` must cover all
// nodes (used for rack-scoped cascades and UPS events).
ClusterSimResult SimulateCluster(const SystemScenario& scenario,
                                 const MachineLayout& layout,
                                 const ClusterSimInput& input,
                                 stats::Rng& rng);

}  // namespace hpcfail::synth
