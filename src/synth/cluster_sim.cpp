#include "synth/cluster_sim.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <deque>
#include <stdexcept>

namespace hpcfail::synth {
namespace {

constexpr std::size_t kHwIdx =
    static_cast<std::size_t>(FailureCategory::kHardware);
constexpr std::size_t kCpuIdx =
    static_cast<std::size_t>(HardwareComponent::kCpu);

// Which cascade governs an event's offspring.
enum class EventSource : std::uint8_t {
  kNormal,    // node/rack/system cascades by category (+ PSU/fan extras)
  kFacility,  // facility-event child: uses the facility cascade only
  kChurn,     // offspring of a job dispatch: spawns nothing further special
};

struct PendingEvent {
  NodeId node;
  TimeSec time = 0;
  FailureCategory category = FailureCategory::kUndetermined;
  std::optional<HardwareComponent> hardware;
  std::optional<SoftwareComponent> software;
  std::optional<EnvironmentEvent> environment;
  EventSource source = EventSource::kNormal;
  // For facility-born events: which facility cascade to apply.
  const CascadeSpec* facility_cascade = nullptr;
};

class Simulator {
 public:
  Simulator(const SystemScenario& sc, const MachineLayout& layout,
            const ClusterSimInput& input, stats::Rng& rng)
      : sc_(sc), layout_(layout), input_(input), rng_(rng) {
    sc_.Validate();
    if (!input_.usage_multiplier.empty() &&
        input_.usage_multiplier.size() !=
            static_cast<std::size_t>(sc_.num_nodes)) {
      throw std::invalid_argument("usage_multiplier size mismatch");
    }
    // Precompute rack membership for rack-scoped child placement.
    rack_members_.resize(static_cast<std::size_t>(layout_.num_racks()));
    for (const NodePlacement& p : layout_.placements()) {
      rack_members_[static_cast<std::size_t>(p.rack.value)].push_back(p.node);
    }
    rack_of_.resize(static_cast<std::size_t>(sc_.num_nodes), RackId{});
    for (const NodePlacement& p : layout_.placements()) {
      rack_of_[static_cast<std::size_t>(p.node.value)] = p.rack;
    }
  }

  ClusterSimResult Run() {
    GenerateModulation();
    GenerateImmigrants();
    GenerateFacilityEvents();
    GenerateChurnChildren();
    GenerateBaselineMaintenance();
    ExpandCascades();
    return Finish();
  }

 private:
  double UsageMult(NodeId n) const {
    if (input_.usage_multiplier.empty()) return 1.0;
    return input_.usage_multiplier[static_cast<std::size_t>(n.value)];
  }

  double FluxFactor(TimeSec t) const {
    if (input_.cpu_flux_factor.empty()) return 1.0;
    auto m = static_cast<std::size_t>(t / kMonth);
    m = std::min(m, input_.cpu_flux_factor.size() - 1);
    return input_.cpu_flux_factor[m];
  }

  void GenerateModulation() {
    const auto periods = static_cast<std::size_t>(
        (sc_.duration + sc_.modulation_period - 1) / sc_.modulation_period);
    modulation_.resize(std::max<std::size_t>(periods, 1));
    const double sigma = sc_.modulation_sigma;
    for (double& m : modulation_) {
      // Mean-1 lognormal so modulation does not change average rates.
      m = sigma > 0.0 ? std::exp(rng_.Normal(-sigma * sigma / 2.0, sigma))
                      : 1.0;
    }
  }

  double Modulation(TimeSec t) const {
    auto p = static_cast<std::size_t>(t / sc_.modulation_period);
    p = std::min(p, modulation_.size() - 1);
    return modulation_[p];
  }

  // Immigrant (baseline) failures: piecewise-constant rates per node. The
  // rate changes at modulation-period boundaries (and, through the flux
  // factor, monthly), so we draw exponential gaps segment by segment.
  void GenerateImmigrants() {
    for (int n = 0; n < sc_.num_nodes; ++n) {
      const NodeId node{n};
      std::array<double, kNumFailureCategories> node_rate{};
      for (std::size_t c = 0; c < kNumFailureCategories; ++c) {
        node_rate[c] = sc_.base_rate_per_hour[c] / kHour;
        if (n == 0) node_rate[c] *= sc_.node0_rate_multiplier[c];
      }
      const double usage = UsageMult(node);
      // Usage stress applies to what the node itself runs, not to the
      // facility: scale all but the environment lane.
      for (std::size_t c = 0; c < kNumFailureCategories; ++c) {
        if (c != static_cast<std::size_t>(FailureCategory::kEnvironment)) {
          node_rate[c] *= usage;
        }
      }
      TimeSec seg_start = 0;
      while (seg_start < sc_.duration) {
        const TimeSec seg_end =
            std::min<TimeSec>(sc_.duration, seg_start + sc_.modulation_period);
        const double mod = Modulation(seg_start);
        const double flux = FluxFactor(seg_start);
        // CPU lane carries the cosmic coupling; the hardware category rate
        // is adjusted by the CPU share of the mix.
        const double cpu_share = sc_.hardware_mix[kCpuIdx];
        std::array<double, kNumFailureCategories> rate = node_rate;
        rate[kHwIdx] *= (cpu_share * flux + (1.0 - cpu_share));
        for (double& r : rate) r *= mod;
        double total = 0.0;
        for (double r : rate) total += r;
        if (total <= 0.0) {
          seg_start = seg_end;
          continue;
        }
        double t = static_cast<double>(seg_start);
        while (true) {
          t += rng_.Exponential(total);
          if (t >= static_cast<double>(seg_end)) break;
          EmitImmigrant(node, static_cast<TimeSec>(t), rate, flux);
        }
        seg_start = seg_end;
      }
    }
  }

  void EmitImmigrant(NodeId node, TimeSec t,
                     const std::array<double, kNumFailureCategories>& rate,
                     double flux) {
    // Pick the category proportional to the segment rates.
    double total = 0.0;
    for (double r : rate) total += r;
    double u = rng_.Uniform() * total;
    std::size_t cat = 0;
    for (; cat + 1 < kNumFailureCategories; ++cat) {
      if (u < rate[cat]) break;
      u -= rate[cat];
    }
    PendingEvent e;
    e.node = node;
    e.time = t;
    e.category = static_cast<FailureCategory>(cat);
    e.source = EventSource::kNormal;
    if (e.category == FailureCategory::kHardware) {
      // Flux only tilts the CPU share of the mix.
      auto mix = sc_.hardware_mix;
      mix[kCpuIdx] *= flux;
      e.hardware = SampleHardware(mix);
    } else if (e.category == FailureCategory::kSoftware) {
      e.software = SampleSoftware(sc_.software_mix);
    } else if (e.category == FailureCategory::kEnvironment) {
      e.environment = SampleEnvironment(sc_.environment_mix);
    }
    queue_.push_back(std::move(e));
  }

  HardwareComponent SampleHardware(
      const std::array<double, kNumHardwareComponents>& mix) {
    double total = 0.0;
    for (double m : mix) total += m;
    double u = rng_.Uniform() * total;
    for (std::size_t i = 0; i + 1 < mix.size(); ++i) {
      if (u < mix[i]) return static_cast<HardwareComponent>(i);
      u -= mix[i];
    }
    return static_cast<HardwareComponent>(mix.size() - 1);
  }

  EnvironmentEvent SampleEnvironment(
      const std::array<double, kNumEnvironmentEvents>& mix) {
    double total = 0.0;
    for (double m : mix) total += m;
    double u = rng_.Uniform() * total;
    for (std::size_t i = 0; i + 1 < mix.size(); ++i) {
      if (u < mix[i]) return static_cast<EnvironmentEvent>(i);
      u -= mix[i];
    }
    return static_cast<EnvironmentEvent>(mix.size() - 1);
  }

  SoftwareComponent SampleSoftware(
      const std::array<double, kNumSoftwareComponents>& mix) {
    double total = 0.0;
    for (double m : mix) total += m;
    double u = rng_.Uniform() * total;
    for (std::size_t i = 0; i + 1 < mix.size(); ++i) {
      if (u < mix[i]) return static_cast<SoftwareComponent>(i);
      u -= mix[i];
    }
    return static_cast<SoftwareComponent>(mix.size() - 1);
  }

  // ---- Facility events ----------------------------------------------------

  void GenerateFacilityEvents() {
    GenerateFacilityType(sc_.power_outage, EnvironmentEvent::kPowerOutage,
                         /*repeats=*/true);
    GenerateFacilityType(sc_.power_spike, EnvironmentEvent::kPowerSpike,
                         /*repeats=*/false);
    GenerateFacilityType(sc_.ups_failure, EnvironmentEvent::kUps,
                         /*repeats=*/true);
    GenerateFacilityType(sc_.chiller_failure, EnvironmentEvent::kChiller,
                         /*repeats=*/false);
  }

  void GenerateFacilityType(const FacilityEventSpec& spec,
                            EnvironmentEvent kind, bool repeats) {
    if (spec.events_per_year <= 0.0) return;
    const double years = static_cast<double>(sc_.duration) / kYear;
    const int n_events = rng_.Poisson(spec.events_per_year * years);
    // A fifth of the racks draw 4x more UPS events: flaky UPS units recur on
    // the same racks (Fig. 12's space-time pattern).
    for (int i = 0; i < n_events; ++i) {
      const TimeSec t = rng_.Int(0, sc_.duration - 1);
      const std::vector<NodeId> affected = PickAffectedNodes(spec, kind);
      StrikeFacility(spec, kind, t, affected);
      if (repeats && rng_.Bernoulli(0.5)) {
        // The same fault recurring (storm, failing UPS battery): the repeat
        // hits the same node set shortly after.
        const TimeSec t2 = t + static_cast<TimeSec>(rng_.Exponential(
                                   1.0 / (5.0 * static_cast<double>(kDay))));
        if (t2 < sc_.duration) StrikeFacility(spec, kind, t2, affected);
      }
    }
  }

  std::vector<NodeId> PickAffectedNodes(const FacilityEventSpec& spec,
                                        EnvironmentEvent kind) {
    const int want = std::max(
        spec.min_nodes_affected,
        static_cast<int>(spec.frac_nodes_affected * sc_.num_nodes));
    const int count = std::min(want, sc_.num_nodes);
    std::vector<NodeId> out;
    if (count <= 0) return out;
    if (spec.rack_scoped && !rack_members_.empty()) {
      // Uniform rack choice: recurrence on the same rack comes from the
      // repeat mechanism (a failing UPS strikes its rack again), which gives
      // Fig. 12 its pattern without injecting a location effect — the paper
      // found none (Section IV.C), and AnalyzeLocation must agree.
      const std::size_t rack = rng_.Index(rack_members_.size());
      const std::vector<NodeId>& members = rack_members_[rack];
      std::vector<NodeId> pool = members;
      const auto take = std::min<std::size_t>(pool.size(),
                                              static_cast<std::size_t>(count));
      for (std::size_t i = 0; i < take; ++i) {
        const std::size_t j = i + rng_.Index(pool.size() - i);
        std::swap(pool[i], pool[j]);
        out.push_back(pool[i]);
      }
      return out;
    }
    if (kind == EnvironmentEvent::kPowerOutage) {
      // Outages take out a contiguous range (a PDU feeds adjacent racks).
      const int start = static_cast<int>(rng_.Index(
          static_cast<std::size_t>(std::max(1, sc_.num_nodes - count + 1))));
      for (int n = start; n < start + count; ++n) out.push_back(NodeId{n});
      return out;
    }
    // Spikes / chiller shutdowns: scattered nodes.
    std::vector<int> pool(static_cast<std::size_t>(sc_.num_nodes));
    for (int n = 0; n < sc_.num_nodes; ++n) {
      pool[static_cast<std::size_t>(n)] = n;
    }
    for (int i = 0; i < count; ++i) {
      const std::size_t j =
          static_cast<std::size_t>(i) +
          rng_.Index(pool.size() - static_cast<std::size_t>(i));
      std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
      out.push_back(NodeId{pool[static_cast<std::size_t>(i)]});
    }
    return out;
  }

  void StrikeFacility(const FacilityEventSpec& spec, EnvironmentEvent kind,
                      TimeSec t, const std::vector<NodeId>& affected) {
    if (kind == EnvironmentEvent::kChiller) chiller_events_.push_back(t);
    for (NodeId node : affected) {
      PendingEvent e;
      e.node = node;
      // Minutes of per-node jitter: operators log outages node by node.
      e.time = t + rng_.Int(0, 10 * kMinute);
      if (e.time >= sc_.duration) continue;
      e.category = FailureCategory::kEnvironment;
      e.environment = kind;
      e.source = EventSource::kFacility;
      e.facility_cascade = &spec.cascade;
      queue_.push_back(std::move(e));
    }
  }

  // ---- Usage churn ----------------------------------------------------------

  void GenerateChurnChildren() {
    const double base = sc_.workload.job_churn_hazard;
    if (base <= 0.0) return;
    for (const ChurnTrigger& c : input_.churn) {
      const double expected = base * c.risk;
      const int k = rng_.Poisson(expected);
      for (int i = 0; i < k; ++i) {
        PendingEvent e;
        e.node = c.node;
        e.time = c.time + static_cast<TimeSec>(
                              rng_.Exponential(1.0 / (6.0 * kHour)));
        if (e.time >= sc_.duration) continue;
        e.source = EventSource::kChurn;
        // Usage-induced failures: software bugs, punished hardware, or
        // undetermined wedges.
        const double u = rng_.Uniform();
        if (u < 0.4) {
          e.category = FailureCategory::kSoftware;
          e.software = SampleSoftware(sc_.software_mix);
        } else if (u < 0.8) {
          e.category = FailureCategory::kHardware;
          e.hardware = SampleHardware(sc_.hardware_mix);
        } else {
          e.category = FailureCategory::kUndetermined;
        }
        queue_.push_back(std::move(e));
      }
    }
  }

  void GenerateBaselineMaintenance() {
    const double rate = sc_.base_maintenance_per_hour / kHour;
    if (rate <= 0.0) return;
    const double horizon = static_cast<double>(sc_.duration);
    for (int n = 0; n < sc_.num_nodes; ++n) {
      double t = 0.0;
      while (true) {
        t += rng_.Exponential(rate);
        if (t >= horizon) break;
        EmitMaintenance(NodeId{n}, static_cast<TimeSec>(t));
      }
    }
  }

  void EmitMaintenance(NodeId node, TimeSec t) {
    MaintenanceRecord m;
    m.system = input_.system;
    m.node = node;
    m.start = t;
    m.end = t + static_cast<TimeSec>(
                    rng_.LogNormal(std::log(4.0 * kHour), 0.6));
    maintenance_.push_back(m);
  }

  // ---- Cascade expansion ----------------------------------------------------

  void ExpandCascades() {
    // The queue grows while we walk it; index-based iteration is safe with
    // std::deque (no reallocation invalidation for indices we re-read).
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      // Copy: push_back may invalidate references into the deque's map.
      const PendingEvent e = queue_[i];
      if (e.source == EventSource::kChurn) continue;
      if (e.source == EventSource::kFacility) {
        SpawnChildren(e, *e.facility_cascade, e.node);
        continue;
      }
      const auto cat = static_cast<std::size_t>(e.category);
      SpawnChildren(e, sc_.node_cascade[cat], e.node);
      SpawnScoped(e, sc_.rack_cascade[cat], /*rack_scope=*/true);
      SpawnScoped(e, sc_.system_cascade[cat], /*rack_scope=*/false);
      if (e.category == FailureCategory::kHardware && e.hardware) {
        if (*e.hardware == HardwareComponent::kPowerSupply) {
          SpawnChildren(e, sc_.power_supply_cascade, e.node);
        } else if (*e.hardware == HardwareComponent::kFan) {
          SpawnChildren(e, sc_.fan_cascade, e.node);
        }
      }
    }
  }

  void SpawnChildren(const PendingEvent& parent, const CascadeSpec& cascade,
                     NodeId target) {
    for (std::size_t y = 0; y < kNumFailureCategories; ++y) {
      const double expected = cascade.children[y];
      if (expected <= 0.0) continue;
      const int k = rng_.Poisson(expected);
      for (int c = 0; c < k; ++c) {
        PendingEvent child;
        child.node = target;
        child.time =
            parent.time + static_cast<TimeSec>(rng_.Exponential(
                              1.0 / static_cast<double>(cascade.mean_delay)));
        if (child.time >= sc_.duration) continue;
        child.category = static_cast<FailureCategory>(y);
        child.source = EventSource::kNormal;
        FillChildSubcategory(parent, cascade, child);
        queue_.push_back(std::move(child));
      }
    }
    if (cascade.maintenance_children > 0.0) {
      const int k = rng_.Poisson(cascade.maintenance_children);
      for (int c = 0; c < k; ++c) {
        const TimeSec t =
            parent.time + static_cast<TimeSec>(rng_.Exponential(
                              1.0 / static_cast<double>(cascade.mean_delay)));
        if (t < sc_.duration) EmitMaintenance(target, t);
      }
    }
  }

  void FillChildSubcategory(const PendingEvent& parent,
                            const CascadeSpec& cascade, PendingEvent& child) {
    switch (child.category) {
      case FailureCategory::kHardware: {
        // Hardware begets the same component with high probability
        // (Section III.A.4: memory and CPU failures recur).
        if (parent.category == FailureCategory::kHardware && parent.hardware &&
            rng_.Bernoulli(sc_.same_component_inherit_prob)) {
          child.hardware = parent.hardware;
        } else if (cascade.hardware_mix) {
          child.hardware = SampleHardware(*cascade.hardware_mix);
        } else {
          child.hardware = SampleHardware(sc_.hardware_mix);
        }
        break;
      }
      case FailureCategory::kSoftware: {
        if (cascade.software_mix) {
          child.software = SampleSoftware(*cascade.software_mix);
        } else if (parent.category == FailureCategory::kSoftware &&
                   parent.software &&
                   rng_.Bernoulli(sc_.same_component_inherit_prob)) {
          child.software = parent.software;
        } else {
          child.software = SampleSoftware(sc_.software_mix);
        }
        break;
      }
      case FailureCategory::kEnvironment:
        // A recurring power problem keeps its identity: follow-up env
        // failures of an outage are further outage records (keeps the Fig. 9
        // subcategory breakdown honest and gives Fig. 12 its within-node
        // temporal clusters).
        if (parent.category == FailureCategory::kEnvironment &&
            parent.environment &&
            rng_.Bernoulli(sc_.same_component_inherit_prob)) {
          child.environment = parent.environment;
        } else {
          child.environment = SampleEnvironment(sc_.environment_mix);
        }
        break;
      default:
        break;
    }
  }

  void SpawnScoped(const PendingEvent& parent, const CascadeSpec& cascade,
                   bool rack_scope) {
    // Children land on a uniformly random *other* node of the rack/system.
    double total = cascade.total_children();
    if (total <= 0.0) return;
    const std::vector<NodeId>* pool = nullptr;
    if (rack_scope) {
      const RackId rack = rack_of_[static_cast<std::size_t>(parent.node.value)];
      if (!rack.valid()) return;
      pool = &rack_members_[static_cast<std::size_t>(rack.value)];
      if (pool->size() < 2) return;
    } else if (sc_.num_nodes < 2) {
      return;
    }
    for (std::size_t y = 0; y < kNumFailureCategories; ++y) {
      const double expected = cascade.children[y];
      if (expected <= 0.0) continue;
      const int k = rng_.Poisson(expected);
      for (int c = 0; c < k; ++c) {
        NodeId target = parent.node;
        for (int attempt = 0; attempt < 8 && target == parent.node;
             ++attempt) {
          if (rack_scope) {
            target = (*pool)[rng_.Index(pool->size())];
          } else {
            target = NodeId{static_cast<int>(
                rng_.Index(static_cast<std::size_t>(sc_.num_nodes)))};
          }
        }
        if (target == parent.node) continue;
        PendingEvent child;
        child.node = target;
        child.time =
            parent.time + static_cast<TimeSec>(rng_.Exponential(
                              1.0 / static_cast<double>(cascade.mean_delay)));
        if (child.time >= sc_.duration) continue;
        child.category = static_cast<FailureCategory>(y);
        child.source = EventSource::kNormal;
        FillChildSubcategory(parent, cascade, child);
        queue_.push_back(std::move(child));
      }
    }
  }

  ClusterSimResult Finish() {
    ClusterSimResult out;
    out.failures.reserve(queue_.size());
    for (const PendingEvent& e : queue_) {
      FailureRecord r;
      r.system = input_.system;
      r.node = e.node;
      r.start = e.time;
      const double downtime =
          rng_.LogNormal(std::log(sc_.downtime_median_sec), sc_.downtime_sigma);
      r.end = e.time + static_cast<TimeSec>(std::max(60.0, downtime));
      r.category = e.category;
      r.hardware = e.hardware;
      r.software = e.software;
      r.environment = e.environment;
      out.failures.push_back(std::move(r));
    }
    auto by_time = [](const auto& a, const auto& b) {
      if (a.start != b.start) return a.start < b.start;
      return a.node < b.node;
    };
    std::sort(out.failures.begin(), out.failures.end(), by_time);
    std::sort(maintenance_.begin(), maintenance_.end(), by_time);
    out.maintenance = std::move(maintenance_);
    std::sort(chiller_events_.begin(), chiller_events_.end());
    out.chiller_events = std::move(chiller_events_);
    return out;
  }

  const SystemScenario& sc_;
  const MachineLayout& layout_;
  const ClusterSimInput& input_;
  stats::Rng& rng_;

  std::deque<PendingEvent> queue_;
  std::vector<MaintenanceRecord> maintenance_;
  std::vector<TimeSec> chiller_events_;
  std::vector<double> modulation_;
  std::vector<std::vector<NodeId>> rack_members_;
  std::vector<RackId> rack_of_;
};

}  // namespace

ClusterSimResult SimulateCluster(const SystemScenario& scenario,
                                 const MachineLayout& layout,
                                 const ClusterSimInput& input,
                                 stats::Rng& rng) {
  return Simulator(scenario, layout, input, rng).Run();
}

}  // namespace hpcfail::synth
