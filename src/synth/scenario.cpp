#include "synth/scenario.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace hpcfail::synth {
namespace {

constexpr std::size_t kEnv =
    static_cast<std::size_t>(FailureCategory::kEnvironment);
constexpr std::size_t kHw = static_cast<std::size_t>(FailureCategory::kHardware);
constexpr std::size_t kHum = static_cast<std::size_t>(FailureCategory::kHuman);
constexpr std::size_t kNet = static_cast<std::size_t>(FailureCategory::kNetwork);
constexpr std::size_t kSw = static_cast<std::size_t>(FailureCategory::kSoftware);
constexpr std::size_t kUnd =
    static_cast<std::size_t>(FailureCategory::kUndetermined);

void CheckMix(const auto& mix, const char* what) {
  double sum = 0.0;
  for (double m : mix) {
    if (m < 0.0) throw std::invalid_argument(std::string(what) + ": negative");
    sum += m;
  }
  if (std::abs(sum - 1.0) > 1e-6) {
    throw std::invalid_argument(std::string(what) + ": mix must sum to 1");
  }
}

void CheckCascade(const CascadeSpec& c, const char* what) {
  for (double v : c.children) {
    if (v < 0.0) {
      throw std::invalid_argument(std::string(what) + ": negative children");
    }
  }
  if (c.mean_delay <= 0) {
    throw std::invalid_argument(std::string(what) + ": non-positive delay");
  }
  if (c.maintenance_children < 0.0) {
    throw std::invalid_argument(std::string(what) + ": negative maintenance");
  }
  if (c.hardware_mix) CheckMix(*c.hardware_mix, what);
  if (c.software_mix) CheckMix(*c.software_mix, what);
}

// Baseline hardware composition: "20% of hardware failures are attributed to
// memory and 40% are attributed to CPU" (Section III.A.4); the remainder is
// spread across boards, power supplies, fans and NICs.
constexpr std::array<double, kNumHardwareComponents> kGroup1HardwareMix = {
    /*cpu=*/0.40, /*memory=*/0.20, /*node_board=*/0.12, /*power_supply=*/0.10,
    /*fan=*/0.06, /*msc_board=*/0.02, /*midplane=*/0.02, /*nic=*/0.04,
    /*other=*/0.04};

constexpr std::array<double, kNumSoftwareComponents> kGroup1SoftwareMix = {
    /*dst=*/0.25, /*os=*/0.25, /*pfs=*/0.12, /*cfs=*/0.08,
    /*patch_install=*/0.10, /*scheduler=*/0.08, /*other=*/0.12};

// Same-node follow-up cascades for a group-like system. `scale` multiplies
// all branching ratios (group-2 systems are more strongly self-exciting).
std::array<CascadeSpec, kNumFailureCategories> MakeNodeCascades(double scale) {
  std::array<CascadeSpec, kNumFailureCategories> out{};
  auto set = [&](std::size_t trigger,
                 std::array<double, kNumFailureCategories> children,
                 TimeSec delay) {
    CascadeSpec c;
    for (std::size_t y = 0; y < kNumFailureCategories; ++y) {
      c.children[y] = children[y] * scale;
    }
    c.mean_delay = delay;
    out[trigger] = c;
  };
  // children order: {env, hw, human, net, sw, undet}. Environmental and
  // network triggers breed the most follow-ups (Fig. 1a), with strong
  // same-type components (Fig. 1b) and the env/net/sw cross-coupling the
  // paper observed.
  set(kEnv, {0.25, 0.08, 0.00, 0.06, 0.08, 0.03}, 2 * kDay);
  set(kHw, {0.003, 0.11, 0.003, 0.005, 0.01, 0.01}, 2 * kDay);
  set(kHum, {0.00, 0.03, 0.02, 0.00, 0.02, 0.00}, 2 * kDay);
  set(kNet, {0.02, 0.07, 0.00, 0.22, 0.08, 0.03}, 2 * kDay);
  set(kSw, {0.01, 0.02, 0.00, 0.02, 0.10, 0.01}, 2 * kDay);
  set(kUnd, {0.00, 0.03, 0.00, 0.00, 0.02, 0.06}, 2 * kDay);
  return out;
}

std::array<CascadeSpec, kNumFailureCategories> MakeRackCascades(double scale) {
  std::array<CascadeSpec, kNumFailureCategories> out{};
  auto set = [&](std::size_t trigger,
                 std::array<double, kNumFailureCategories> children) {
    CascadeSpec c;
    for (std::size_t y = 0; y < kNumFailureCategories; ++y) {
      c.children[y] = children[y] * scale;
    }
    c.mean_delay = 3 * kDay;
    out[trigger] = c;
  };
  // Rack-mates share power feeds and cooling: the same-type coupling is much
  // stronger than cross-type (Fig. 2 right; env 170X, sw ~10X).
  set(kEnv, {0.10, 0.01, 0.00, 0.01, 0.01, 0.00});
  set(kHw, {0.00, 0.05, 0.00, 0.00, 0.01, 0.00});
  set(kHum, {0.00, 0.00, 0.01, 0.00, 0.00, 0.00});
  set(kNet, {0.01, 0.01, 0.00, 0.06, 0.01, 0.00});
  set(kSw, {0.01, 0.01, 0.00, 0.01, 0.08, 0.01});
  set(kUnd, {0.00, 0.01, 0.00, 0.00, 0.01, 0.02});
  return out;
}

std::array<CascadeSpec, kNumFailureCategories> MakeSystemCascades(
    double scale) {
  std::array<CascadeSpec, kNumFailureCategories> out{};
  auto set = [&](std::size_t trigger,
                 std::array<double, kNumFailureCategories> children) {
    CascadeSpec c;
    for (std::size_t y = 0; y < kNumFailureCategories; ++y) {
      c.children[y] = children[y] * scale;
    }
    c.mean_delay = 3 * kDay;
    out[trigger] = c;
  };
  // Small: most same-system correlation comes from facility events and the
  // shared modulation factor, not direct causation (Fig. 3).
  set(kEnv, {0.04, 0.01, 0.00, 0.01, 0.01, 0.00});
  set(kHw, {0.00, 0.02, 0.00, 0.00, 0.01, 0.00});
  set(kHum, {0.00, 0.00, 0.00, 0.00, 0.01, 0.00});
  set(kNet, {0.01, 0.01, 0.00, 0.08, 0.02, 0.00});
  set(kSw, {0.01, 0.01, 0.00, 0.01, 0.05, 0.00});
  set(kUnd, {0.00, 0.01, 0.00, 0.00, 0.00, 0.01});
  return out;
}

// Power-problem cascades, calibrated to Fig. 10/11: after power events the
// node-board / power-supply / memory failure rates jump 5-30X within a
// month, software problems concentrate in storage (DST/PFS/CFS), and
// unscheduled maintenance jumps ~90X.
CascadeSpec OutageCascade() {
  CascadeSpec c;
  c.children = {0.0, 0.35, 0.0, 0.02, 0.28, 0.02};
  c.mean_delay = 8 * kDay;
  c.hardware_mix = {{/*cpu=*/0.00, /*memory=*/0.20, /*node_board=*/0.35,
                     /*power_supply=*/0.33, /*fan=*/0.05, /*msc=*/0.01,
                     /*midplane=*/0.01, /*nic=*/0.02, /*other=*/0.03}};
  c.software_mix = {{/*dst=*/0.50, /*os=*/0.08, /*pfs=*/0.18, /*cfs=*/0.12,
                     /*patch=*/0.04, /*sched=*/0.03, /*other=*/0.05}};
  c.maintenance_children = 0.25;
  return c;
}

CascadeSpec SpikeCascade() {
  CascadeSpec c;
  // Spikes act on longer horizons (Fig. 10: "more apparent at longer
  // timespans") and are harder on memory DIMMs than outages.
  c.children = {0.0, 0.32, 0.0, 0.01, 0.14, 0.02};
  c.mean_delay = 13 * kDay;
  c.hardware_mix = {{0.00, 0.36, 0.28, 0.24, 0.05, 0.01, 0.01, 0.02, 0.03}};
  c.software_mix = {{0.45, 0.10, 0.18, 0.12, 0.05, 0.04, 0.06}};
  c.maintenance_children = 0.25;
  return c;
}

CascadeSpec UpsCascade() {
  CascadeSpec c;
  c.children = {0.0, 0.30, 0.0, 0.01, 0.26, 0.02};
  c.mean_delay = 6 * kDay;
  c.hardware_mix = {{0.00, 0.30, 0.45, 0.15, 0.03, 0.01, 0.01, 0.02, 0.03}};
  c.software_mix = {{0.55, 0.06, 0.16, 0.12, 0.04, 0.03, 0.04}};
  c.maintenance_children = 0.28;
  return c;
}

CascadeSpec ChillerCascade() {
  CascadeSpec c;
  c.children = {0.0, 0.20, 0.0, 0.0, 0.04, 0.01};
  c.mean_delay = 6 * kDay;
  // Chillers mostly stress memory DIMMs and node boards (Fig. 13 right).
  c.hardware_mix = {{0.00, 0.45, 0.45, 0.04, 0.03, 0.01, 0.01, 0.00, 0.01}};
  c.maintenance_children = 0.05;
  return c;
}

CascadeSpec PowerSupplyCascade() {
  CascadeSpec c;
  // "For all components the increase ... is strongest following a power
  // supply failure, ... more than 40X for fans and power supplies."
  c.children = {0.0, 0.40, 0.0, 0.0, 0.12, 0.01};
  c.mean_delay = 6 * kDay;
  c.hardware_mix = {{0.00, 0.18, 0.20, 0.28, 0.28, 0.02, 0.02, 0.01, 0.01}};
  c.software_mix = {{0.40, 0.12, 0.18, 0.12, 0.06, 0.05, 0.07}};
  c.maintenance_children = 0.08;
  return c;
}

CascadeSpec FanCascade() {
  CascadeSpec c;
  // Fan failures (brief extreme temperature): fans themselves recur ~120X,
  // MSC boards and midplanes appear (Fig. 13 right), CPUs do not.
  c.children = {0.0, 0.50, 0.0, 0.0, 0.05, 0.01};
  c.mean_delay = 4 * kDay;
  c.hardware_mix = {{0.00, 0.16, 0.16, 0.12, 0.34, 0.12, 0.08, 0.01, 0.01}};
  c.maintenance_children = 0.04;
  return c;
}

}  // namespace

void SystemScenario::Validate() const {
  if (num_nodes < 1 || procs_per_node < 1) {
    throw std::invalid_argument("system needs nodes and processors");
  }
  if (nodes_per_rack < 1 || racks_per_row < 1) {
    throw std::invalid_argument("bad rack geometry");
  }
  if (duration <= 0) throw std::invalid_argument("non-positive duration");
  for (double r : base_rate_per_hour) {
    if (r < 0.0) throw std::invalid_argument("negative base rate");
  }
  CheckMix(hardware_mix, "hardware_mix");
  CheckMix(software_mix, "software_mix");
  CheckMix(environment_mix, "environment_mix");
  if (base_maintenance_per_hour < 0.0) {
    throw std::invalid_argument("negative maintenance rate");
  }
  double worst_branching = 0.0;
  for (std::size_t x = 0; x < kNumFailureCategories; ++x) {
    CheckCascade(node_cascade[x], "node_cascade");
    CheckCascade(rack_cascade[x], "rack_cascade");
    CheckCascade(system_cascade[x], "system_cascade");
    const double total = node_cascade[x].total_children() +
                         rack_cascade[x].total_children() +
                         system_cascade[x].total_children();
    worst_branching = std::max(worst_branching, total);
  }
  // Failure-type-specific extra cascades also spawn failures that themselves
  // branch; require comfortable subcriticality.
  CheckCascade(power_supply_cascade, "power_supply_cascade");
  CheckCascade(fan_cascade, "fan_cascade");
  worst_branching = std::max(
      worst_branching,
      node_cascade[kHw].total_children() + rack_cascade[kHw].total_children() +
          system_cascade[kHw].total_children() +
          std::max(power_supply_cascade.total_children(),
                   fan_cascade.total_children()));
  if (worst_branching >= 0.98) {
    throw std::invalid_argument(
        "branching ratio >= 0.98: cascade process would (nearly) explode");
  }
  CheckCascade(power_outage.cascade, "power_outage");
  CheckCascade(power_spike.cascade, "power_spike");
  CheckCascade(ups_failure.cascade, "ups_failure");
  CheckCascade(chiller_failure.cascade, "chiller_failure");
  for (const FacilityEventSpec* f :
       {&power_outage, &power_spike, &ups_failure, &chiller_failure}) {
    if (f->events_per_year < 0.0 || f->frac_nodes_affected < 0.0 ||
        f->frac_nodes_affected > 1.0 || f->min_nodes_affected < 0) {
      throw std::invalid_argument("bad facility event spec");
    }
  }
  for (double m : node0_rate_multiplier) {
    if (m < 0.0) throw std::invalid_argument("negative node0 multiplier");
  }
  if (modulation_sigma < 0.0 || modulation_period <= 0) {
    throw std::invalid_argument("bad modulation parameters");
  }
  if (same_component_inherit_prob < 0.0 || same_component_inherit_prob > 1.0) {
    throw std::invalid_argument("bad inherit probability");
  }
  if (workload.enabled) {
    if (workload.num_users < 1 || workload.jobs_per_day < 0.0 ||
        workload.mean_job_runtime <= 0 || workload.mean_nodes_per_job < 1.0 ||
        workload.user_activity_pareto_shape <= 0.0 ||
        workload.user_risk_sigma < 0.0 || workload.busy_hazard_boost < 0.0 ||
        workload.node0_extra_jobs_per_day < 0.0 ||
        workload.job_churn_hazard < 0.0) {
      throw std::invalid_argument("bad workload spec");
    }
  }
  if (temperature.enabled && temperature.sample_interval <= 0) {
    throw std::invalid_argument("bad temperature sample interval");
  }
  if (downtime_median_sec <= 0.0 || downtime_sigma < 0.0) {
    throw std::invalid_argument("bad downtime distribution");
  }
}

void Scenario::Validate() const {
  if (systems.empty()) throw std::invalid_argument("scenario has no systems");
  for (const SystemScenario& s : systems) s.Validate();
  if (duration <= 0) throw std::invalid_argument("bad scenario duration");
  if (neutron.sample_interval <= 0 || neutron.cycle_period <= 0 ||
      neutron.mean_counts <= 0.0) {
    throw std::invalid_argument("bad neutron spec");
  }
}

SystemScenario Group1System(std::string name, int num_nodes,
                            TimeSec duration) {
  SystemScenario s;
  s.name = std::move(name);
  s.group = SystemGroup::kSmp;
  s.num_nodes = num_nodes;
  s.procs_per_node = 4;
  s.nodes_per_rack = 32;
  s.racks_per_row = 8;
  s.duration = duration;

  // Unconditional daily node-failure probability target: 0.31% (Section
  // III.A.1). Immigrants supply roughly half of the observed events;
  // cascades, facility events and usage churn the rest.
  s.base_rate_per_hour[kEnv] = 3.0e-7;  // most env failures are facility-born
  s.base_rate_per_hour[kHw] = 3.6e-5;
  s.base_rate_per_hour[kHum] = 2.0e-6;
  s.base_rate_per_hour[kNet] = 2.5e-6;
  s.base_rate_per_hour[kSw] = 1.1e-5;
  s.base_rate_per_hour[kUnd] = 5.0e-6;
  s.hardware_mix = kGroup1HardwareMix;
  s.software_mix = kGroup1SoftwareMix;
  // Calibrated so the ~90X maintenance increase after power events
  // (Section VII.A.2) lands on a ~0.3%-per-random-month baseline.
  s.base_maintenance_per_hour = 4.0e-6;

  s.node_cascade = MakeNodeCascades(1.0);
  s.rack_cascade = MakeRackCascades(1.0);
  s.system_cascade = MakeSystemCascades(1.0);
  s.same_component_inherit_prob = 0.80;

  // Login/scheduler node: hugely elevated environment/network/software
  // rates, moderately elevated hardware (Figs. 4-6).
  s.node0_rate_multiplier = {/*env=*/400.0, /*hw=*/3.0, /*human=*/1.5,
                             /*net=*/200.0, /*sw=*/60.0, /*undet=*/15.0};

  // Facility events, calibrated to the Fig. 9 breakdown (49% outages, 21%
  // spikes, 15% UPS, 9% chillers, 6% other).
  s.power_outage.events_per_year = 0.7;
  s.power_outage.frac_nodes_affected = 0.025;
  s.power_outage.min_nodes_affected = 8;
  s.power_outage.cascade = OutageCascade();

  s.power_spike.events_per_year = 2.0;
  s.power_spike.frac_nodes_affected = 0.0;  // min_nodes only
  s.power_spike.min_nodes_affected = 2;
  s.power_spike.cascade = SpikeCascade();

  s.ups_failure.events_per_year = 0.3;
  s.ups_failure.frac_nodes_affected = 0.0;
  s.ups_failure.min_nodes_affected = 6;
  s.ups_failure.rack_scoped = true;
  s.ups_failure.cascade = UpsCascade();

  s.chiller_failure.events_per_year = 0.5;
  s.chiller_failure.frac_nodes_affected = 0.008;
  s.chiller_failure.min_nodes_affected = 4;
  s.chiller_failure.cascade = ChillerCascade();

  s.power_supply_cascade = PowerSupplyCascade();
  s.fan_cascade = FanCascade();

  s.modulation_sigma = 0.50;
  s.cpu_flux_exponent = 2.5;
  return s;
}

SystemScenario Group2System(std::string name, int num_nodes,
                            TimeSec duration) {
  SystemScenario s = Group1System(std::move(name), num_nodes, duration);
  s.group = SystemGroup::kNuma;
  s.procs_per_node = 128;
  s.nodes_per_rack = 4;  // NUMA cabinets: one node is most of a rack
  s.racks_per_row = 4;

  // Unconditional daily node-failure probability target: 4.6% — the huge
  // per-node component count of 128-processor NUMA nodes (Section III.A.2).
  for (double& r : s.base_rate_per_hour) r *= 16.0;
  s.base_rate_per_hour[kEnv] = 4.0e-6;

  // Stronger self-excitation: day-after probability 21.45%, week 60.4%.
  // (Multi-generation descendants make the effective within-week boost much
  // larger than the direct branching ratio, so 1.4x on the group-1 ratios is
  // enough; anything much higher would be supercritical together with the
  // component cascades.)
  s.node_cascade = MakeNodeCascades(1.4);
  s.rack_cascade = MakeRackCascades(1.0);
  s.system_cascade = MakeSystemCascades(1.5);
  s.modulation_sigma = 0.7;
  // Keep hardware-trigger total branching subcritical despite the scaled
  // category cascades.
  for (double& c : s.power_supply_cascade.children) c *= 0.6;
  s.power_supply_cascade.maintenance_children *= 0.6;
  for (double& c : s.fan_cascade.children) c *= 0.6;
  s.fan_cascade.maintenance_children *= 0.6;

  // Group-2 systems are small; facility events touch a larger share.
  s.power_outage.frac_nodes_affected = 0.25;
  s.power_outage.min_nodes_affected = 2;
  s.power_outage.events_per_year = 1.0;
  s.power_spike.min_nodes_affected = 1;
  s.power_spike.events_per_year = 3.0;
  s.ups_failure.min_nodes_affected = 2;
  s.chiller_failure.frac_nodes_affected = 0.1;
  s.chiller_failure.min_nodes_affected = 1;

  s.node0_rate_multiplier = {30.0, 2.0, 1.5, 30.0, 10.0, 4.0};
  return s;
}

SystemScenario System20Like(int num_nodes, TimeSec duration) {
  SystemScenario s = Group1System("system20", num_nodes, duration);
  s.workload.enabled = true;
  s.workload.num_users = 420;
  s.workload.jobs_per_day = 145.0;
  s.temperature.enabled = true;
  // Fig. 14 (right) shows system 20's CPU failures flat in neutron flux.
  s.cpu_flux_exponent = 0.0;
  return s;
}

SystemScenario System8Like(int num_nodes, TimeSec duration) {
  SystemScenario s = Group1System("system8", num_nodes, duration);
  s.workload.enabled = true;
  s.workload.num_users = 450;
  s.workload.jobs_per_day = 230.0;
  return s;
}

Scenario LanlLikeScenario(double scale, TimeSec duration) {
  if (!(scale > 0.0) || scale > 1.0) {
    throw std::invalid_argument("scale must be in (0, 1]");
  }
  auto scaled = [scale](int n) { return std::max(8, static_cast<int>(n * scale)); };
  Scenario sc;
  sc.duration = duration;
  // Seven group-1 systems: the three big ones the paper singles out
  // (systems 18/19/20 with 1024/1024/512 nodes) plus four mid-size machines,
  // and system 8 (256 nodes, usage logs).
  sc.systems.push_back(Group1System("system3", scaled(128), duration));
  sc.systems.push_back(Group1System("system4", scaled(164), duration));
  sc.systems.push_back(Group1System("system5", scaled(256), duration));
  sc.systems.push_back(System8Like(scaled(256), duration));
  sc.systems.push_back(Group1System("system18", scaled(1024), duration));
  sc.systems.push_back(Group1System("system19", scaled(1024), duration));
  sc.systems.push_back(System20Like(scaled(512), duration));
  // Three group-2 NUMA systems (70 nodes total in LANL's machines).
  sc.systems.push_back(Group2System("system2", std::max(4, scaled(32)), duration));
  sc.systems.push_back(Group2System("system16", std::max(4, scaled(16)), duration));
  sc.systems.push_back(Group2System("system23", std::max(4, scaled(22)), duration));
  return sc;
}

Scenario TinyScenario(TimeSec duration) {
  Scenario sc;
  sc.duration = duration;
  SystemScenario s = Group1System("tiny", 16, duration);
  s.nodes_per_rack = 8;
  s.racks_per_row = 2;
  // Rates x50 so short test traces still contain a few hundred events.
  for (double& r : s.base_rate_per_hour) r *= 50.0;
  s.base_maintenance_per_hour *= 5.0;
  s.power_outage.events_per_year = 6.0;
  s.power_spike.events_per_year = 10.0;
  s.ups_failure.events_per_year = 4.0;
  s.chiller_failure.events_per_year = 4.0;
  s.workload.enabled = true;
  s.workload.num_users = 20;
  s.workload.jobs_per_day = 30.0;
  s.temperature.enabled = true;
  s.temperature.sample_interval = 2 * kHour;
  sc.systems.push_back(std::move(s));
  return sc;
}

}  // namespace hpcfail::synth
