#include "synth/scenario_config.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <istream>

#include "trace/numeric.h"

namespace hpcfail::synth {
namespace {

std::string Trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

[[noreturn]] void Fail(std::size_t line, const std::string& msg) {
  throw ConfigError(line, msg);
}

double ParseDouble(const std::string& v, std::size_t line) {
  // Locale-independent (trace/numeric.h): a comma-decimal LC_NUMERIC must
  // not change how a scenario file parses.
  const std::optional<double> d = ParseDoubleText(v);
  if (!d) Fail(line, "expected a number, got '" + v + "'");
  return *d;
}

int ParseInt(const std::string& v, std::size_t line) {
  const double d = ParseDouble(v, line);
  const int i = static_cast<int>(d);
  if (static_cast<double>(i) != d) Fail(line, "expected an integer");
  return i;
}

bool ParseBool(const std::string& v, std::size_t line) {
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  Fail(line, "expected a boolean, got '" + v + "'");
}

struct SystemBlock {
  std::size_t line = 0;  // where [system] appeared
  std::string preset = "group1";
  std::string name;
  int nodes = 0;  // 0 = preset default
  int nodes_per_rack = 0;
  double base_rate_scale = 1.0;
  double outages = -1.0, spikes = -1.0, ups = -1.0, chillers = -1.0;
  int workload = -1;     // -1 = preset default
  double jobs_per_day = -1.0;
  int temperature = -1;
  double cpu_flux_exponent = -1e9;  // sentinel = preset default
};

SystemScenario Build(const SystemBlock& b, TimeSec duration) {
  SystemScenario s;
  const std::string name = b.name.empty() ? b.preset : b.name;
  if (b.preset == "group1") {
    s = Group1System(name, b.nodes > 0 ? b.nodes : 256, duration);
  } else if (b.preset == "group2") {
    s = Group2System(name, b.nodes > 0 ? b.nodes : 32, duration);
  } else if (b.preset == "system8") {
    s = System8Like(b.nodes > 0 ? b.nodes : 256, duration);
    s.name = b.name.empty() ? s.name : b.name;
  } else if (b.preset == "system20") {
    s = System20Like(b.nodes > 0 ? b.nodes : 512, duration);
    s.name = b.name.empty() ? s.name : b.name;
  } else {
    Fail(b.line, "unknown preset '" + b.preset + "'");
  }
  if (b.nodes_per_rack > 0) s.nodes_per_rack = b.nodes_per_rack;
  if (b.base_rate_scale != 1.0) {
    for (double& r : s.base_rate_per_hour) r *= b.base_rate_scale;
  }
  if (b.outages >= 0.0) s.power_outage.events_per_year = b.outages;
  if (b.spikes >= 0.0) s.power_spike.events_per_year = b.spikes;
  if (b.ups >= 0.0) s.ups_failure.events_per_year = b.ups;
  if (b.chillers >= 0.0) s.chiller_failure.events_per_year = b.chillers;
  if (b.workload >= 0) s.workload.enabled = b.workload != 0;
  if (b.jobs_per_day >= 0.0) s.workload.jobs_per_day = b.jobs_per_day;
  if (b.temperature >= 0) s.temperature.enabled = b.temperature != 0;
  if (b.cpu_flux_exponent > -1e8) s.cpu_flux_exponent = b.cpu_flux_exponent;
  return s;
}

}  // namespace

ConfigError::ConfigError(std::size_t line, const std::string& message)
    : std::runtime_error("scenario config line " + std::to_string(line) +
                         ": " + message),
      line_(line) {}

Scenario LoadScenarioConfig(std::istream& is) {
  Scenario scenario;
  double duration_years = 3.0;
  std::vector<SystemBlock> blocks;
  SystemBlock* current = nullptr;

  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(is, raw)) {
    ++lineno;
    std::string line = raw;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = Trim(line);
    if (line.empty()) continue;
    if (line == "[system]") {
      blocks.emplace_back();
      blocks.back().line = lineno;
      current = &blocks.back();
      continue;
    }
    if (line.front() == '[') Fail(lineno, "unknown section " + line);
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) Fail(lineno, "expected key = value");
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    if (current == nullptr) {
      // Global keys.
      if (key == "duration_years") {
        duration_years = ParseDouble(value, lineno);
        if (duration_years <= 0.0) Fail(lineno, "duration must be positive");
      } else if (key == "neutron_amplitude") {
        scenario.neutron.cycle_amplitude = ParseDouble(value, lineno);
      } else if (key == "neutron_mean") {
        scenario.neutron.mean_counts = ParseDouble(value, lineno);
      } else {
        Fail(lineno, "unknown global key '" + key + "'");
      }
      continue;
    }
    // System keys.
    if (key == "preset") current->preset = value;
    else if (key == "name") current->name = value;
    else if (key == "nodes") current->nodes = ParseInt(value, lineno);
    else if (key == "nodes_per_rack") {
      current->nodes_per_rack = ParseInt(value, lineno);
    } else if (key == "base_rate_scale") {
      current->base_rate_scale = ParseDouble(value, lineno);
    } else if (key == "outages_per_year") {
      current->outages = ParseDouble(value, lineno);
    } else if (key == "spikes_per_year") {
      current->spikes = ParseDouble(value, lineno);
    } else if (key == "ups_per_year") {
      current->ups = ParseDouble(value, lineno);
    } else if (key == "chillers_per_year") {
      current->chillers = ParseDouble(value, lineno);
    } else if (key == "workload") {
      current->workload = ParseBool(value, lineno) ? 1 : 0;
    } else if (key == "jobs_per_day") {
      current->jobs_per_day = ParseDouble(value, lineno);
    } else if (key == "temperature") {
      current->temperature = ParseBool(value, lineno) ? 1 : 0;
    } else if (key == "cpu_flux_exponent") {
      current->cpu_flux_exponent = ParseDouble(value, lineno);
    } else {
      Fail(lineno, "unknown system key '" + key + "'");
    }
  }

  if (blocks.empty()) Fail(lineno + 1, "config defines no [system] section");
  scenario.duration = static_cast<TimeSec>(duration_years * kYear);
  for (const SystemBlock& b : blocks) {
    scenario.systems.push_back(Build(b, scenario.duration));
  }
  scenario.Validate();
  return scenario;
}

Scenario LoadScenarioConfigFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("cannot open scenario config: " + path);
  }
  return LoadScenarioConfig(is);
}

}  // namespace hpcfail::synth
