// One-call trace generation: wires the workload, cluster and environment
// simulators together and returns a finalized Trace.
#pragma once

#include <cstdint>

#include "synth/scenario.h"
#include "trace/system.h"

namespace hpcfail::synth {

// Generates a complete multi-system trace. Identical (scenario, seed) pairs
// produce identical traces regardless of the thread count (systems simulate
// in parallel, one task each, on serially pre-forked RNG streams; see
// core::SetDefaultThreadCount). System ids are assigned 0, 1, ... in the
// order the scenario lists them.
Trace GenerateTrace(const Scenario& scenario, std::uint64_t seed);

}  // namespace hpcfail::synth
