#include "serve/session_pool.h"

#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/span.h"

namespace hpcfail::serve {

namespace {

obs::Counter& PoolCounter(const char* name, const char* help) {
  return obs::MetricsRegistry::Global().GetCounter(name, help);
}

}  // namespace

// One in-flight build; waiters hold the shared state so it survives the
// entry being erased on failure.
struct SessionPool::Flight {
  PooledEntry value;
  bool done = false;
  bool failed = false;
  std::string error;
};

PooledEntry MakeSessionEntry(engine::AnalysisSession session) {
  PooledEntry entry;
  entry.session = std::make_shared<const engine::AnalysisSession>(
      std::move(session));
  return entry;
}

PooledEntry MakeSetEntry(std::shared_ptr<engine::SessionSet> set) {
  PooledEntry entry;
  entry.set = std::move(set);
  return entry;
}

SessionPool::SessionPool(Config config) : config_(config) {
  if (config_.capacity == 0) {
    throw std::invalid_argument("SessionPool capacity must be >= 1");
  }
}

SessionPool::~SessionPool() = default;

void SessionPool::TouchLocked(std::uint64_t key, Entry& entry) {
  lru_.erase(entry.lru);
  lru_.push_front(key);
  entry.lru = lru_.begin();
}

void SessionPool::EvictIfOverCapacityLocked() {
  while (lru_.size() > config_.capacity) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++stats_.evictions;
    PoolCounter("hpcfail_serve_pool_evictions_total",
                "Pooled sessions evicted by the LRU policy")
        .Increment();
  }
}

void SessionPool::PublishGauges(const Stats& s) const {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("hpcfail_serve_pool_resident",
               "Ready sessions currently retained by the pool")
      .Set(static_cast<double>(s.resident));
  reg.GetGauge("hpcfail_serve_pool_building",
               "Session builds currently in flight")
      .Set(static_cast<double>(s.building));
}

SessionPool::Acquired SessionPool::Acquire(std::uint64_t key,
                                           const BuildFn& build,
                                           const Deadline& deadline) {
  std::shared_ptr<Flight> flight;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.value.ready()) {
      TouchLocked(key, it->second);
      ++stats_.hits;
      PoolCounter("hpcfail_serve_pool_hits_total",
                  "Requests served from an already-built pooled session")
          .Increment();
      return {it->second.value, Outcome::kHit};
    }
    if (it != entries_.end()) {
      // Someone is building this key: coalesce onto their flight.
      flight = it->second.flight;
      ++stats_.build_waits;
      PoolCounter("hpcfail_serve_pool_build_waits_total",
                  "Requests that coalesced onto a concurrent build of the "
                  "same fingerprint")
          .Increment();
      const auto ready = [&flight] { return flight->done; };
      if (deadline.unlimited()) {
        ready_cv_.wait(lock, ready);
      } else if (!ready_cv_.wait_until(lock, deadline.at(), ready)) {
        ++stats_.timeouts;
        PoolCounter("hpcfail_serve_pool_wait_timeouts_total",
                    "Coalesced waiters whose deadline expired before the "
                    "build finished")
            .Increment();
        return {PooledEntry{}, Outcome::kTimedOut};
      }
      if (flight->failed) {
        throw std::runtime_error("session build failed: " + flight->error);
      }
      return {flight->value, Outcome::kCoalesced};
    }
    // Absent: this call builds.
    flight = std::make_shared<Flight>();
    Entry entry;
    entry.flight = flight;
    entries_.emplace(key, std::move(entry));
    ++stats_.misses;
    ++stats_.building;
    stats_.resident = lru_.size();
    PublishGauges(stats_);
    PoolCounter("hpcfail_serve_pool_misses_total",
                "Requests that started a session build")
        .Increment();
  }

  // Any exception leaving build() must erase the wedged entry and release
  // coalesced waiters, or an unlimited-deadline waiter blocks forever and
  // the key stays stuck as "building".
  const auto fail_build = [&](const char* what) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.erase(key);  // never in the LRU yet
    --stats_.building;
    ++stats_.build_failures;
    stats_.resident = lru_.size();
    PublishGauges(stats_);
    PoolCounter("hpcfail_serve_pool_build_failures_total",
                "Session builds that threw")
        .Increment();
    flight->failed = true;
    flight->error = what;
    flight->done = true;
    ready_cv_.notify_all();
  };

  // Build with the pool unlocked: distinct keys build in parallel, hits
  // keep flowing, and the engine's own single-flight guards the artifact
  // cache underneath.
  try {
    obs::ScopedTimer timer("serve_pool_build");
    PooledEntry built = build();
    if (!built.ready()) {
      throw std::runtime_error("build returned an empty pooled entry");
    }
    std::lock_guard<std::mutex> lock(mu_);
    Entry& entry = entries_.at(key);
    entry.value = built;
    entry.flight = nullptr;
    lru_.push_front(key);
    entry.lru = lru_.begin();
    EvictIfOverCapacityLocked();
    --stats_.building;
    stats_.resident = lru_.size();
    PublishGauges(stats_);
    flight->value = built;
    flight->done = true;
    ready_cv_.notify_all();
    return {built, Outcome::kBuilt};
  } catch (const std::exception& e) {
    fail_build(e.what());
    throw;
  } catch (...) {
    fail_build("non-std exception");
    throw;
  }
}

void SessionPool::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.value.ready()) {
      it = entries_.erase(it);
    } else {
      ++it;  // in-flight build; it will publish into the emptied pool
    }
  }
  lru_.clear();
  stats_.resident = 0;
  PublishGauges(stats_);
}

SessionPool::Stats SessionPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.resident = lru_.size();
  return s;
}

}  // namespace hpcfail::serve
