// Per-request deadlines for hpcfaild. A Deadline is an absolute steady-clock
// point; enforcement is cooperative — the request handler checks expired()
// between analysis stages (and engine::RenderReport checks it inside its
// per-system loops via the CancelFn bridge), so a request never holds a
// worker much past its budget, and never needs thread cancellation.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

namespace hpcfail::serve {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  // No deadline: never expires.
  Deadline() = default;

  static Deadline AfterMillis(std::int64_t ms) {
    Deadline d;
    d.has_deadline_ = true;
    d.at_ = Clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  bool unlimited() const { return !has_deadline_; }
  bool expired() const { return has_deadline_ && Clock::now() >= at_; }
  Clock::time_point at() const { return at_; }

  // Remaining budget, clamped at zero; a large sentinel when unlimited.
  std::chrono::milliseconds remaining() const {
    if (!has_deadline_) return std::chrono::milliseconds(1 << 30);
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at_ - Clock::now());
    return left.count() > 0 ? left : std::chrono::milliseconds(0);
  }

  // Bridge to engine::CancelFn-style callbacks.
  std::function<bool()> AsCancelFn() const {
    const Deadline copy = *this;
    return [copy] { return copy.expired(); };
  }

 private:
  bool has_deadline_ = false;
  Clock::time_point at_{};
};

}  // namespace hpcfail::serve
