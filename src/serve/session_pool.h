// SessionPool: shares built engine entries across concurrent requests,
// keyed by trace fingerprint (monolithic sessions) or by fingerprint mixed
// with shard-spec knobs (SessionSets). This is the warm path of hpcfaild —
// a request for an already-built trace reuses the pooled entry's prebuilt
// SoA stores and EventIndex instead of re-running acquisition. A pooled
// entry is either an AnalysisSession or a SessionSet (PooledEntry); the
// pool treats both uniformly — build once, share, LRU-evict.
//
// Concurrency contract:
//   * bounded: at most `capacity` READY sessions are retained; inserting
//     past that evicts the least-recently-used ready entry. Sessions still
//     referenced by in-flight requests survive eviction (shared_ptr) — the
//     pool forgets them, it never frees memory under a live request.
//   * single-flight: N concurrent Acquires of one absent key run ONE build;
//     the rest block on a condition variable until the builder publishes
//     (or fails — failures propagate to every waiter of that round, then
//     the key becomes buildable again). Entries being built don't count
//     against capacity until ready and are never evicted mid-build.
//   * deadline-aware: a waiter whose deadline passes while the builder is
//     still running gives up with TimedOut (the request answers 504); the
//     build itself continues for the waiters that remain.
//
// Reads of a pooled session are lock-free: AnalysisSession is immutable
// after construction, so any number of request threads may query one
// concurrently; the pool's mutex only guards the key->entry map and LRU.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>

#include "engine/session.h"
#include "engine/session_set.h"
#include "serve/deadline.h"

namespace hpcfail::serve {

// What the pool retains per key: exactly one of a monolithic session or a
// sharded SessionSet. AnalysisSession is immutable, so readers share it
// lock-free; SessionSet is internally synchronized (shard builds/eviction
// under its own mutex), so sharing the pointer across request threads is
// equally safe.
struct PooledEntry {
  std::shared_ptr<const engine::AnalysisSession> session;
  std::shared_ptr<engine::SessionSet> set;

  bool ready() const { return session != nullptr || set != nullptr; }
};

PooledEntry MakeSessionEntry(engine::AnalysisSession session);
PooledEntry MakeSetEntry(std::shared_ptr<engine::SessionSet> set);

class SessionPool {
 public:
  struct Config {
    std::size_t capacity = 8;  // max READY sessions retained (>= 1)
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;        // builds started
    std::uint64_t build_waits = 0;   // acquisitions that waited on a build
    std::uint64_t evictions = 0;
    std::uint64_t build_failures = 0;
    std::uint64_t timeouts = 0;
    std::size_t resident = 0;        // ready sessions currently pooled
    std::size_t building = 0;        // builds currently in flight
  };

  enum class Outcome {
    kHit,       // served from the pool
    kBuilt,     // this call ran the build
    kCoalesced, // waited for another caller's build
    kTimedOut,  // deadline expired while waiting for the build
  };

  struct Acquired {
    PooledEntry entry;  // !ready() on timeout
    Outcome outcome = Outcome::kHit;
  };

  // Must return a ready() entry; an empty one is treated as a build
  // failure (thrown to the caller and every coalesced waiter).
  using BuildFn = std::function<PooledEntry()>;

  explicit SessionPool(Config config);
  ~SessionPool();
  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  // Returns the session for `key`, building it with `build` on a miss.
  // Throws whatever `build` throws (every waiter of that build round gets
  // the same failure, wrapped in std::runtime_error with the original
  // message). On timeout returns {nullptr, kTimedOut}.
  Acquired Acquire(std::uint64_t key, const BuildFn& build,
                   const Deadline& deadline = {});

  // Drops every ready entry (in-flight builds publish into an empty pool
  // slot as usual). Used on drain to release memory before exit.
  void Clear();

  Stats stats() const;
  std::size_t capacity() const { return config_.capacity; }

 private:
  struct Flight;  // one in-flight build; defined in session_pool.cpp
  struct Entry {
    PooledEntry value;  // !ready() = still building
    std::shared_ptr<Flight> flight;          // non-null while building
    std::list<std::uint64_t>::iterator lru;  // valid only when ready
  };

  void TouchLocked(std::uint64_t key, Entry& entry);
  void EvictIfOverCapacityLocked();
  void PublishGauges(const Stats& s) const;

  const Config config_;
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::map<std::uint64_t, Entry> entries_;
  std::list<std::uint64_t> lru_;  // front = most recent, only ready keys
  Stats stats_;
};

}  // namespace hpcfail::serve
