#include "serve/protocol.h"

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "trace/numeric.h"

namespace hpcfail::serve {

namespace {

std::vector<std::string_view> SplitOn(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  while (!s.empty()) {
    const std::size_t pos = s.find(sep);
    if (pos == std::string_view::npos) {
      out.push_back(s);
      break;
    }
    out.push_back(s.substr(0, pos));
    s.remove_prefix(pos + 1);
  }
  return out;
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// key=value pairs separated by `sep` into request params; tokens without
// '=' are rejected (they are neither commands nor parameters by now).
bool ParseParams(std::string_view s, char sep, bool url_encoded,
                 Request* out, std::string* error) {
  for (std::string_view token : SplitOn(s, sep)) {
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      if (error != nullptr) {
        *error = "malformed parameter '" + std::string(token) +
                 "' (expected key=value)";
      }
      return false;
    }
    std::string key(token.substr(0, eq));
    std::string value(token.substr(eq + 1));
    if (url_encoded) {
      key = UrlDecode(key);
      value = UrlDecode(value);
    }
    out->params[key] = value;
  }
  return true;
}

bool UnknownCommand(std::string_view what, std::string* error) {
  if (error != nullptr) {
    *error = "unknown command '" + std::string(what) + "'";
  }
  return false;
}

}  // namespace

std::string_view StatusText(int code) {
  switch (code) {
    case kStatusOk:
      return "OK";
    case kStatusBadRequest:
      return "Bad Request";
    case kStatusNotFound:
      return "Not Found";
    case kStatusInternalError:
      return "Internal Server Error";
    case kStatusOverloaded:
      return "Service Unavailable";
    case kStatusDeadlineExceeded:
      return "Gateway Timeout";
    default:
      return "Error";
  }
}

std::string_view ToString(Verb v) {
  switch (v) {
    case Verb::kPing:
      return "PING";
    case Verb::kHealth:
      return "HEALTH";
    case Verb::kMetrics:
      return "METRICS";
    case Verb::kStats:
      return "STATS";
    case Verb::kReport:
      return "REPORT";
    case Verb::kTable:
      return "TABLE";
    case Verb::kShards:
      return "SHARDS";
    case Verb::kFormats:
      return "FORMATS";
    case Verb::kSleep:
      return "SLEEP";
    case Verb::kQuit:
      return "QUIT";
  }
  return "?";
}

double Request::GetDouble(const std::string& key, double fallback) const {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  const std::optional<double> v = ParseDoubleText(it->second);
  if (!v) {
    throw std::invalid_argument("parameter " + key + ": invalid number '" +
                                it->second + "'");
  }
  return *v;
}

std::uint64_t Request::GetUint64(const std::string& key,
                                 std::uint64_t fallback) const {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  const std::string& s = it->second;
  if (s.empty() || s[0] == '-') {
    throw std::invalid_argument("parameter " + key + ": invalid integer '" +
                                s + "'");
  }
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("parameter " + key + ": invalid integer '" +
                                s + "'");
  }
}

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size() && HexValue(s[i + 1]) >= 0 &&
               HexValue(s[i + 2]) >= 0) {
      out.push_back(static_cast<char>(HexValue(s[i + 1]) * 16 +
                                      HexValue(s[i + 2])));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

bool ParseCommandLine(std::string_view line, Request* out,
                      std::string* error) {
  // Tolerate CR from CRLF-minded clients.
  while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
    line.remove_suffix(1);
  }
  while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
  if (line.empty()) return UnknownCommand("", error);

  *out = Request{};
  const std::size_t sp = line.find(' ');
  const std::string_view word = line.substr(0, sp);
  std::string_view rest =
      sp == std::string_view::npos ? std::string_view{} : line.substr(sp + 1);

  if (word == "PING") {
    out->verb = Verb::kPing;
  } else if (word == "HEALTH") {
    out->verb = Verb::kHealth;
  } else if (word == "METRICS") {
    out->verb = Verb::kMetrics;
  } else if (word == "STATS") {
    out->verb = Verb::kStats;
  } else if (word == "REPORT") {
    out->verb = Verb::kReport;
  } else if (word == "TABLE") {
    out->verb = Verb::kTable;
    while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
    const std::size_t tsp = rest.find(' ');
    out->target = std::string(rest.substr(0, tsp));
    rest = tsp == std::string_view::npos ? std::string_view{}
                                         : rest.substr(tsp + 1);
    if (out->target.empty()) {
      if (error != nullptr) *error = "TABLE requires a table name";
      return false;
    }
  } else if (word == "SHARDS") {
    out->verb = Verb::kShards;
  } else if (word == "FORMATS") {
    out->verb = Verb::kFormats;
  } else if (word == "SLEEP") {
    out->verb = Verb::kSleep;
  } else if (word == "QUIT") {
    out->verb = Verb::kQuit;
  } else {
    return UnknownCommand(word, error);
  }
  return ParseParams(rest, ' ', /*url_encoded=*/false, out, error);
}

bool ParseHttpRequestLine(std::string_view line, Request* out,
                          std::string* error) {
  while (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  *out = Request{};
  out->http = true;

  const std::vector<std::string_view> parts = SplitOn(line, ' ');
  if (parts.size() < 2 || parts[0] != "GET") {
    if (error != nullptr) {
      *error = "only GET requests are supported";
    }
    return false;
  }
  std::string_view target = parts[1];
  std::string_view query;
  if (const std::size_t q = target.find('?'); q != std::string_view::npos) {
    query = target.substr(q + 1);
    target = target.substr(0, q);
  }
  if (target.empty() || target[0] != '/') {
    if (error != nullptr) *error = "malformed request path";
    return false;
  }
  target.remove_prefix(1);
  const std::size_t slash = target.find('/');
  const std::string_view head = target.substr(0, slash);
  const std::string_view tail = slash == std::string_view::npos
                                    ? std::string_view{}
                                    : target.substr(slash + 1);

  if (head == "healthz" && tail.empty()) {
    out->verb = Verb::kHealth;
  } else if (head == "metrics" && tail.empty()) {
    out->verb = Verb::kMetrics;
  } else if (head == "stats" && tail.empty()) {
    out->verb = Verb::kStats;
  } else if (head == "report" && tail.empty()) {
    out->verb = Verb::kReport;
  } else if (head == "table" && !tail.empty() &&
             tail.find('/') == std::string_view::npos) {
    out->verb = Verb::kTable;
    out->target = UrlDecode(tail);
  } else if (head == "shards" && tail.empty()) {
    out->verb = Verb::kShards;
  } else if (head == "formats" && tail.empty()) {
    out->verb = Verb::kFormats;
  } else if (head == "debug" && tail == "sleep") {
    out->verb = Verb::kSleep;
  } else {
    if (error != nullptr) {
      *error = "no such path '/" + std::string(target) + "'";
    }
    return false;
  }
  return ParseParams(query, '&', /*url_encoded=*/true, out, error);
}

std::string LineOk(std::string_view payload) {
  std::string out = "OK " + std::to_string(payload.size()) + "\n";
  out.append(payload);
  return out;
}

std::string LineError(int code, std::string_view message) {
  std::string out = "ERR " + std::to_string(code) + " ";
  // Keep the frame one line: the message must not embed newlines.
  for (const char c : message) out.push_back(c == '\n' ? ' ' : c);
  out.push_back('\n');
  return out;
}

std::string HttpResponse(int code, std::string_view body,
                         std::string_view content_type) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " ";
  out.append(StatusText(code));
  out += "\r\nContent-Type: ";
  out.append(content_type);
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out.append(body);
  return out;
}

std::string ErrorResponse(const Request& request, int code,
                          std::string_view message) {
  if (request.http) {
    std::string body(message);
    if (body.empty() || body.back() != '\n') body.push_back('\n');
    return HttpResponse(code, body);
  }
  return LineError(code, message);
}

}  // namespace hpcfail::serve
