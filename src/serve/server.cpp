#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "engine/bootstrap_table.h"
#include "engine/fingerprint.h"
#include "engine/report_render.h"
#include "engine/session_set.h"
#include "engine/trace_source.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "synth/scenario.h"

namespace hpcfail::serve {

namespace {

constexpr std::size_t kMaxRequestLine = 64 * 1024;

obs::Counter& ServeCounter(const char* name, const char* help) {
  return obs::MetricsRegistry::Global().GetCounter(name, help);
}

void CountRequest() {
  ServeCounter("hpcfail_serve_requests_total", "Requests dispatched").
      Increment();
}

void CountError(int code) {
  ServeCounter("hpcfail_serve_errors_total",
               "Requests answered with an error status")
      .Increment();
  if (code == kStatusDeadlineExceeded) {
    ServeCounter("hpcfail_serve_deadline_exceeded_total",
                 "Requests that ran past their deadline")
        .Increment();
  }
}

void ObserveLatency(const Request& request, double seconds) {
  // Per-endpoint latency histograms (no labels in the registry, so the
  // endpoint is part of the metric name).
  std::string name = "hpcfail_serve_";
  for (const char c : ToString(request.verb)) {
    name.push_back(static_cast<char>(c - 'A' + 'a'));
  }
  name += "_latency_seconds";
  obs::MetricsRegistry::Global()
      .GetHistogram(name, "Wall time of one request on this endpoint")
      .Observe(seconds);
}

// Full write with EINTR handling; SIGPIPE suppressed per call.
bool WriteAll(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  ServeCounter("hpcfail_serve_bytes_written_total",
               "Response bytes written to clients")
      .Add(static_cast<long long>(data.size()));
  return true;
}

void SetRecvTimeout(int fd, int millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      pool_(SessionPool::Config{config_.pool_capacity}) {
  if (config_.workers < 1) {
    throw std::invalid_argument("ServerConfig.workers must be >= 1");
  }
  if (config_.queue_depth < 1) {
    throw std::invalid_argument("ServerConfig.queue_depth must be >= 1");
  }
}

Server::~Server() { Shutdown(); }

void Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    throw std::runtime_error("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("invalid listen host: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind " + config_.host + ":" +
                             std::to_string(config_.port) + ": " + err);
  }
  if (::listen(listen_fd_, static_cast<int>(config_.queue_depth)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("listen: " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (::pipe(wake_pipe_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("pipe: ") + std::strerror(errno));
  }

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void Server::Shutdown() {
  if (!running_.load(std::memory_order_acquire)) return;
  {
    // stopping_ is part of queue_cv_'s wait predicate: store it under
    // queue_mu_ so a worker cannot evaluate the predicate and then block
    // across the store, missing the notify below (lost wakeup).
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_.store(true, std::memory_order_release);
  }
  // Wake the accept poll; it closes the listen socket (stop accepting).
  if (wake_pipe_[1] >= 0) {
    const char b = 'x';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Workers drain whatever was already admitted, then exit.
  queue_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  for (int* fd : {&wake_pipe_[0], &wake_pipe_[1]}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
  pool_.Clear();
  running_.store(false, std::memory_order_release);
}

bool Server::EnqueueConnection(int fd) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() >= config_.queue_depth) return false;
    queue_.push_back(fd);
    obs::MetricsRegistry::Global()
        .GetGauge("hpcfail_serve_queue_depth",
                  "Connections admitted and waiting for a worker")
        .Set(static_cast<double>(queue_.size()));
  }
  queue_cv_.notify_one();
  return true;
}

int Server::DequeueConnection() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  queue_cv_.wait(lock, [this] {
    return !queue_.empty() || stopping_.load(std::memory_order_acquire);
  });
  if (queue_.empty()) return -1;  // stopping and nothing left to drain
  const int fd = queue_.front();
  queue_.pop_front();
  obs::MetricsRegistry::Global()
      .GetGauge("hpcfail_serve_queue_depth",
                "Connections admitted and waiting for a worker")
      .Set(static_cast<double>(queue_.size()));
  return fd;
}

void Server::ShedConnection(int fd) {
  ServeCounter("hpcfail_serve_shed_total",
               "Connections refused with 503 because the admission queue "
               "was full")
      .Increment();
  // Answer in the client's syntax if its first bytes already arrived;
  // default to the line frame. Never block the accept thread.
  char peek[4] = {};
  const ssize_t n = ::recv(fd, peek, sizeof(peek), MSG_PEEK | MSG_DONTWAIT);
  const bool http = n == 4 && std::memcmp(peek, "GET ", 4) == 0;
  const std::string response =
      http ? HttpResponse(kStatusOverloaded, "overloaded\n")
           : LineError(kStatusOverloaded, "overloaded");
  const ssize_t w [[maybe_unused]] =
      ::send(fd, response.data(), response.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
  ::close(fd);
}

void Server::AcceptLoop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load(std::memory_order_acquire)) break;
    if ((fds[0].revents & POLLIN) != 0) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) continue;
      ServeCounter("hpcfail_serve_accepted_total", "Connections accepted")
          .Increment();
      if (!EnqueueConnection(fd)) ShedConnection(fd);
    }
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void Server::WorkerLoop() {
  for (;;) {
    const int fd = DequeueConnection();
    if (fd < 0) return;
    obs::MetricsRegistry::Global()
        .GetGauge("hpcfail_serve_inflight", "Requests currently executing")
        .Add(1.0);
    HandleConnection(fd);
    obs::MetricsRegistry::Global()
        .GetGauge("hpcfail_serve_inflight", "Requests currently executing")
        .Add(-1.0);
  }
}

Deadline Server::DeadlineFor(const Request& request) const {
  const std::uint64_t ms = request.GetUint64(
      "deadline_ms",
      config_.default_deadline_ms <= 0
          ? 0
          : static_cast<std::uint64_t>(config_.default_deadline_ms));
  return ms == 0 ? Deadline{}
                 : Deadline::AfterMillis(static_cast<std::int64_t>(ms));
}

std::string Server::HandleQuery(const Request& request) {
  const bool sharded = request.verb == Verb::kShards ||
                       request.params.count("shard") > 0 ||
                       request.GetUint64("sharded", 0) != 0;
  // log=<name> selects a configured file-backed source instead of a
  // synthetic scenario. Sharding is scenario-only, and format= is
  // meaningful only against a log.
  if (request.params.count("log") > 0) {
    if (sharded) {
      return ErrorResponse(request, kStatusBadRequest,
                           "log= queries cannot be sharded");
    }
    return HandleLogQuery(request);
  }
  if (request.params.count("format") > 0) {
    return ErrorResponse(request, kStatusBadRequest,
                         "format= requires log= (see FORMATS for the "
                         "configured logs)");
  }
  // SHARDS, STATS shard=B:W, and REPORT/TABLE/STATS sharded=1 resolve to
  // a pooled SessionSet instead of a monolithic session.
  if (sharded) {
    return HandleShardedQuery(request);
  }
  obs::ScopedTimer parse_timer("serve_parse");
  const double scale = request.GetDouble("scale", 0.25);
  const double years = request.GetDouble("years", 1.0);
  const std::uint64_t seed =
      request.GetUint64("seed", engine::kDefaultSeed);
  if (!(scale > 0.0) || scale > config_.max_scale) {
    return ErrorResponse(request, kStatusBadRequest,
                         "scale must be in (0, " +
                             std::to_string(config_.max_scale) + "]");
  }
  if (!(years > 0.0) || years > config_.max_years) {
    return ErrorResponse(request, kStatusBadRequest,
                         "years must be in (0, " +
                             std::to_string(config_.max_years) + "]");
  }
  if (request.verb == Verb::kTable && request.target != "bootstrap" &&
      !std::binary_search(engine::RenderableNames().begin(),
                          engine::RenderableNames().end(), request.target)) {
    std::string known = "bootstrap";
    for (const std::string& n : engine::RenderableNames()) {
      known += ", ";
      known += n;
    }
    return ErrorResponse(request, kStatusNotFound,
                         "unknown table '" + request.target +
                             "' (known: " + known + ")");
  }
  parse_timer.Stop();

  const Deadline deadline = DeadlineFor(request);
  const synth::Scenario scenario = synth::LanlLikeScenario(
      scale, static_cast<TimeSec>(years * static_cast<double>(kYear)));
  const std::unique_ptr<engine::TraceSource> source =
      engine::MakeScenarioSource(scenario, seed);
  const std::optional<std::uint64_t> fingerprint = source->Fingerprint();
  if (!fingerprint) {
    return ErrorResponse(request, kStatusInternalError,
                         "scenario is unfingerprintable");
  }
  if (deadline.expired()) {
    return ErrorResponse(request, kStatusDeadlineExceeded,
                         "deadline exceeded before session acquisition");
  }

  SessionPool::Acquired acquired;
  {
    obs::ScopedTimer session_timer("serve_session");
    acquired = pool_.Acquire(
        *fingerprint,
        [&] {
          return MakeSessionEntry(engine::AnalysisSession::FromScenario(
              scenario, seed, config_.session));
        },
        deadline);
  }
  if (acquired.outcome == SessionPool::Outcome::kTimedOut) {
    return ErrorResponse(request, kStatusDeadlineExceeded,
                         "deadline exceeded waiting for session build");
  }
  if (acquired.entry.session == nullptr) {
    return ErrorResponse(request, kStatusInternalError,
                         "pooled entry is not a monolithic session");
  }

  obs::ScopedTimer render_timer("serve_render");
  std::ostringstream body;
  try {
    if (request.verb == Verb::kStats) {
      body << acquired.entry.session->StatsJson() << "\n";
    } else if (request.verb == Verb::kTable &&
               request.target == "bootstrap") {
      // Replicate tables ride the artifact cache under the trace
      // fingerprint, so repeated requests (and the CLI's --bootstrap on the
      // same trace) decode one entry instead of resampling.
      engine::ArtifactCache cache(config_.session.cache);
      engine::RenderBootstrapTable(*acquired.entry.session, fingerprint,
                                   cache, engine::BootstrapOptions{}, body,
                                   deadline.AsCancelFn());
    } else {
      const std::string target =
          request.verb == Verb::kReport ? "report" : request.target;
      engine::RenderNamed(target, *acquired.entry.session, body,
                          deadline.AsCancelFn());
    }
  } catch (const engine::RenderCancelled&) {
    return ErrorResponse(request, kStatusDeadlineExceeded,
                         "deadline exceeded during render");
  }
  render_timer.Stop();

  return request.http ? HttpResponse(kStatusOk, body.str())
                      : LineOk(body.str());
}

std::string Server::HandleShardedQuery(const Request& request) {
  obs::ScopedTimer parse_timer("serve_parse");
  const double scale = request.GetDouble("scale", 0.25);
  const double years = request.GetDouble("years", 1.0);
  const std::uint64_t seed = request.GetUint64("seed", engine::kDefaultSeed);
  const double window_days =
      request.GetDouble("window_days", config_.default_window_days);
  const std::uint64_t block_systems = request.GetUint64(
      "block_systems",
      static_cast<std::uint64_t>(config_.default_block_systems));
  if (!(scale > 0.0) || scale > config_.max_scale) {
    return ErrorResponse(request, kStatusBadRequest,
                         "scale must be in (0, " +
                             std::to_string(config_.max_scale) + "]");
  }
  if (!(years > 0.0) || years > config_.max_years) {
    return ErrorResponse(request, kStatusBadRequest,
                         "years must be in (0, " +
                             std::to_string(config_.max_years) + "]");
  }
  if (!(window_days >= 0.0)) {
    return ErrorResponse(request, kStatusBadRequest,
                         "window_days must be >= 0");
  }
  if (window_days > 0.0 &&
      years * 366.0 / window_days > config_.max_window_count) {
    return ErrorResponse(request, kStatusBadRequest,
                         "window_days too small: more than " +
                             std::to_string(static_cast<long long>(
                                 config_.max_window_count)) +
                             " windows");
  }
  if (block_systems > 1'000'000) {
    return ErrorResponse(request, kStatusBadRequest,
                         "block_systems too large");
  }
  std::optional<engine::ShardKey> shard_key;
  if (const auto it = request.params.find("shard");
      it != request.params.end()) {
    if (request.verb != Verb::kStats) {
      return ErrorResponse(request, kStatusBadRequest,
                           "shard= applies to STATS only");
    }
    shard_key = engine::ParseShardKey(it->second);
    if (!shard_key) {
      return ErrorResponse(request, kStatusBadRequest,
                           "malformed shard key '" + it->second +
                               "' (want BLOCK:WINDOW)");
    }
  }
  if (request.verb == Verb::kTable && request.target != "bootstrap" &&
      !std::binary_search(engine::RenderableNames().begin(),
                          engine::RenderableNames().end(), request.target)) {
    return ErrorResponse(request, kStatusNotFound,
                         "unknown table '" + request.target + "'");
  }
  parse_timer.Stop();

  const Deadline deadline = DeadlineFor(request);
  const synth::Scenario scenario = synth::LanlLikeScenario(
      scale, static_cast<TimeSec>(years * static_cast<double>(kYear)));
  const std::unique_ptr<engine::TraceSource> source =
      engine::MakeScenarioSource(scenario, seed);
  const std::optional<std::uint64_t> fingerprint = source->Fingerprint();
  if (!fingerprint) {
    return ErrorResponse(request, kStatusInternalError,
                         "scenario is unfingerprintable");
  }
  if (deadline.expired()) {
    return ErrorResponse(request, kStatusDeadlineExceeded,
                         "deadline exceeded before session acquisition");
  }

  // A SessionSet over the same trace is a different pooled value than the
  // monolithic session (and than a set with another shard spec): mix the
  // spec into the pool key.
  const TimeSec window_sec =
      static_cast<TimeSec>(window_days * static_cast<double>(kDay));
  engine::FingerprintHasher key_hash;
  key_hash.Str("session-set");
  key_hash.U64(*fingerprint);
  key_hash.I64(window_sec);
  key_hash.U64(block_systems);
  const std::uint64_t pool_key = key_hash.value();

  SessionPool::Acquired acquired;
  {
    obs::ScopedTimer session_timer("serve_session");
    acquired = pool_.Acquire(
        pool_key,
        [&] {
          engine::SessionSetOptions options;
          options.shard.window = window_sec;
          options.shard.systems_per_block = static_cast<int>(block_systems);
          options.memory_budget_bytes = config_.set_memory_budget_bytes;
          options.cache = config_.session.cache;
          return MakeSetEntry(std::make_shared<engine::SessionSet>(
              engine::MakeScenarioSource(scenario, seed),
              std::move(options)));
        },
        deadline);
  }
  if (acquired.outcome == SessionPool::Outcome::kTimedOut) {
    return ErrorResponse(request, kStatusDeadlineExceeded,
                         "deadline exceeded waiting for session build");
  }
  if (acquired.entry.set == nullptr) {
    return ErrorResponse(request, kStatusInternalError,
                         "pooled entry is not a session set");
  }
  engine::SessionSet& set = *acquired.entry.set;

  obs::ScopedTimer render_timer("serve_render");
  std::ostringstream body;
  try {
    switch (request.verb) {
      case Verb::kShards:
        body << set.StatsJson() << "\n";
        break;
      case Verb::kStats:
        if (shard_key) {
          const std::optional<std::string> json =
              set.ShardStatsJson(*shard_key);
          if (!json) {
            return ErrorResponse(request, kStatusNotFound,
                                 "unknown shard '" +
                                     engine::ToString(*shard_key) + "'");
          }
          body << *json << "\n";
        } else {
          body << set.StatsJson() << "\n";
        }
        break;
      default: {
        if (deadline.expired()) {
          return ErrorResponse(request, kStatusDeadlineExceeded,
                               "deadline exceeded before merged render");
        }
        const std::string target =
            request.verb == Verb::kReport ? "report" : request.target;
        const std::shared_ptr<const engine::SessionSet::MergedView> merged =
            set.Merged();
        if (request.verb == Verb::kTable && target == "bootstrap") {
          // Keyed by the trace fingerprint (not the shard spec): the merged
          // view sees the same failures as a monolithic session, so both
          // surfaces share one replicate-table entry and render identical
          // bytes.
          engine::ArtifactCache cache(config_.session.cache);
          engine::RenderBootstrapTable(merged->view(), fingerprint, cache,
                                       engine::BootstrapOptions{}, body,
                                       deadline.AsCancelFn());
        } else {
          engine::RenderNamed(target, merged->view(), body,
                              deadline.AsCancelFn());
        }
        break;
      }
    }
  } catch (const engine::RenderCancelled&) {
    return ErrorResponse(request, kStatusDeadlineExceeded,
                         "deadline exceeded during render");
  }
  render_timer.Stop();

  return request.http ? HttpResponse(kStatusOk, body.str())
                      : LineOk(body.str());
}

std::string Server::HandleLogQuery(const Request& request) {
  obs::ScopedTimer parse_timer("serve_parse");
  const std::string& name = request.params.at("log");
  const auto spec_it = config_.logs.find(name);
  if (spec_it == config_.logs.end()) {
    std::string known;
    for (const auto& [n, _] : config_.logs) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    return ErrorResponse(request, kStatusNotFound,
                         "unknown log '" + name + "' (configured: " +
                             (known.empty() ? "none" : known) + ")");
  }
  const ServeLogSpec& spec = spec_it->second;

  // Resolve the log's adapter up front so format= can be validated and the
  // FORMATS/STATS surfaces agree on what this log is.
  std::string resolved = spec.format;
  if (resolved.empty() || resolved == "auto") {
    std::ifstream head_is(spec.path);
    const hpcfail::trace::LogAdapter* detected =
        head_is ? hpcfail::trace::DetectAdapter(
                      hpcfail::trace::SniffHead(head_is))
                : nullptr;
    if (detected == nullptr) {
      return ErrorResponse(request, kStatusInternalError,
                           "cannot detect format of log '" + name + "' (" +
                               spec.path + ")");
    }
    resolved = detected->name();
  }
  if (const auto fmt_it = request.params.find("format");
      fmt_it != request.params.end()) {
    if (hpcfail::trace::FindAdapter(fmt_it->second) == nullptr) {
      std::string known;
      for (const hpcfail::trace::LogAdapter* a :
           hpcfail::trace::Registry()) {
        if (!known.empty()) known += ", ";
        known += a->name();
      }
      return ErrorResponse(request, kStatusBadRequest,
                           "unknown format '" + fmt_it->second +
                               "' (known: " + known + ")");
    }
    if (fmt_it->second != resolved) {
      return ErrorResponse(request, kStatusBadRequest,
                           "log '" + name + "' is format '" + resolved +
                               "', not '" + fmt_it->second + "'");
    }
  }
  if (request.verb == Verb::kTable && request.target != "bootstrap" &&
      !std::binary_search(engine::RenderableNames().begin(),
                          engine::RenderableNames().end(), request.target)) {
    return ErrorResponse(request, kStatusNotFound,
                         "unknown table '" + request.target + "'");
  }
  parse_timer.Stop();

  const Deadline deadline = DeadlineFor(request);
  const std::unique_ptr<engine::TraceSource> source = engine::MakeLogSource(
      spec.path, resolved, spec.adapter, spec.nodes_per_system);
  const std::optional<std::uint64_t> fingerprint = source->Fingerprint();
  if (!fingerprint) {
    return ErrorResponse(request, kStatusInternalError,
                         "cannot read log '" + name + "' (" + spec.path +
                             ")");
  }
  if (deadline.expired()) {
    return ErrorResponse(request, kStatusDeadlineExceeded,
                         "deadline exceeded before session acquisition");
  }

  SessionPool::Acquired acquired;
  {
    obs::ScopedTimer session_timer("serve_session");
    acquired = pool_.Acquire(
        *fingerprint,
        [&] {
          return MakeSessionEntry(engine::AnalysisSession::FromLog(
              spec.path, resolved, spec.adapter, spec.nodes_per_system,
              config_.session));
        },
        deadline);
  }
  if (acquired.outcome == SessionPool::Outcome::kTimedOut) {
    return ErrorResponse(request, kStatusDeadlineExceeded,
                         "deadline exceeded waiting for session build");
  }
  if (acquired.entry.session == nullptr) {
    return ErrorResponse(request, kStatusInternalError,
                         "pooled entry is not a monolithic session");
  }

  obs::ScopedTimer render_timer("serve_render");
  std::ostringstream body;
  try {
    if (request.verb == Verb::kStats) {
      body << acquired.entry.session->StatsJson() << "\n";
    } else if (request.verb == Verb::kTable &&
               request.target == "bootstrap") {
      // Replicate tables ride the artifact cache under the trace
      // fingerprint, so repeated requests (and the CLI's --bootstrap on the
      // same trace) decode one entry instead of resampling.
      engine::ArtifactCache cache(config_.session.cache);
      engine::RenderBootstrapTable(*acquired.entry.session, fingerprint,
                                   cache, engine::BootstrapOptions{}, body,
                                   deadline.AsCancelFn());
    } else {
      const std::string target =
          request.verb == Verb::kReport ? "report" : request.target;
      engine::RenderNamed(target, *acquired.entry.session, body,
                          deadline.AsCancelFn());
    }
  } catch (const engine::RenderCancelled&) {
    return ErrorResponse(request, kStatusDeadlineExceeded,
                         "deadline exceeded during render");
  }
  render_timer.Stop();

  return request.http ? HttpResponse(kStatusOk, body.str())
                      : LineOk(body.str());
}

std::string Server::HandleFormats(const Request& request) {
  auto escape = [](std::string_view s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  };
  std::ostringstream body;
  body << "{\"formats\":[";
  bool first = true;
  for (const hpcfail::trace::LogAdapter* a : hpcfail::trace::Registry()) {
    if (!first) body << ",";
    first = false;
    body << "{\"name\":\"" << escape(a->name()) << "\",\"description\":\""
         << escape(a->description()) << "\"}";
  }
  body << "],\"logs\":[";
  first = true;
  for (const auto& [name, spec] : config_.logs) {
    if (!first) body << ",";
    first = false;
    body << "{\"name\":\"" << escape(name) << "\",\"path\":\""
         << escape(spec.path) << "\",\"format\":\"" << escape(spec.format)
         << "\"}";
  }
  body << "]}\n";
  return request.http
             ? HttpResponse(kStatusOk, body.str(), "application/json")
             : LineOk(body.str());
}

std::string Server::HandleSleep(const Request& request) {
  if (!config_.enable_test_endpoints) {
    return ErrorResponse(request, kStatusNotFound,
                         "test endpoints are disabled");
  }
  const std::uint64_t ms = request.GetUint64("ms", 10);
  const Deadline deadline = DeadlineFor(request);
  // Sleep in small ticks so a deadline still cancels a silly value. This
  // endpoint exists to occupy workers in the overload/drain tests; it is
  // deliberately NOT interrupted by Shutdown — drain must finish it.
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(static_cast<std::int64_t>(ms));
  while (std::chrono::steady_clock::now() < until) {
    if (deadline.expired()) {
      return ErrorResponse(request, kStatusDeadlineExceeded,
                           "deadline exceeded while sleeping");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const std::string body = "slept " + std::to_string(ms) + "ms\n";
  return request.http ? HttpResponse(kStatusOk, body) : LineOk(body);
}

std::string Server::HandleRequest(const Request& request) {
  CountRequest();
  const auto t0 = std::chrono::steady_clock::now();
  std::string response;
  try {
    switch (request.verb) {
      case Verb::kPing:
        response = request.http ? HttpResponse(kStatusOk, "pong\n")
                                : LineOk("pong\n");
        break;
      case Verb::kHealth:
        response = request.http ? HttpResponse(kStatusOk, "ok\n")
                                : LineOk("ok\n");
        break;
      case Verb::kMetrics: {
        const std::string text =
            obs::PrometheusText(obs::MetricsRegistry::Global().Snapshot());
        response = request.http
                       ? HttpResponse(kStatusOk, text,
                                      "text/plain; version=0.0.4; "
                                      "charset=utf-8")
                       : LineOk(text);
        break;
      }
      case Verb::kStats:
      case Verb::kReport:
      case Verb::kTable:
      case Verb::kShards:
        response = HandleQuery(request);
        break;
      case Verb::kFormats:
        response = HandleFormats(request);
        break;
      case Verb::kSleep:
        response = HandleSleep(request);
        break;
      case Verb::kQuit:
        response = LineOk("bye\n");
        break;
    }
  } catch (const std::invalid_argument& e) {
    response = ErrorResponse(request, kStatusBadRequest, e.what());
  } catch (const std::exception& e) {
    response = ErrorResponse(request, kStatusInternalError, e.what());
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ObserveLatency(request, seconds);
  // Re-derive the status from the wire text for the error counters: the
  // code lives at a fixed offset in both framings.
  const bool is_error = request.http
                            ? response.compare(0, 10, "HTTP/1.1 2") != 0
                            : response.compare(0, 4, "ERR ") == 0;
  if (is_error) {
    const int code =
        std::atoi(response.c_str() + (request.http ? 9 : 4));
    CountError(code);
  }
  return response;
}

void Server::HandleConnection(int fd) {
  // Short receive timeout: the read loop wakes to notice drain and idle
  // budgets without dedicated per-connection timers.
  SetRecvTimeout(fd, 100);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::string buffer;
  // Reset whenever bytes arrive or a request completes: the budget
  // measures idleness, not connection lifetime.
  auto idle_start = std::chrono::steady_clock::now();
  const auto idle_budget =
      std::chrono::milliseconds(config_.idle_timeout_ms);
  bool http = false;
  bool saw_any = false;

  for (;;) {
    // Extract one complete line if we have it.
    const std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      saw_any = true;
      if (!http && line.compare(0, 4, "GET ") == 0) http = true;

      if (http) {
        // Read and discard headers until the blank line, then answer one
        // request and close (Connection: close semantics).
        std::string header_line;
        bool headers_stalled = false;
        for (;;) {
          const std::size_t hnl = buffer.find('\n');
          if (hnl == std::string::npos) {
            char chunk[4096];
            const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            if (n <= 0) {
              if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
                if (stopping_.load(std::memory_order_acquire)) break;
                if (std::chrono::steady_clock::now() - idle_start >
                    idle_budget) {
                  // A client that never finishes its headers must not pin
                  // this worker: close without answering.
                  headers_stalled = true;
                  break;
                }
                continue;
              }
              break;  // client went away mid-headers
            }
            idle_start = std::chrono::steady_clock::now();
            buffer.append(chunk, static_cast<std::size_t>(n));
            if (buffer.size() > kMaxRequestLine) break;
            continue;
          }
          header_line = buffer.substr(0, hnl);
          buffer.erase(0, hnl + 1);
          if (header_line.empty() || header_line == "\r") break;
        }
        if (headers_stalled) break;  // close
        Request request;
        std::string error;
        std::string response;
        if (ParseHttpRequestLine(line, &request, &error)) {
          response = HandleRequest(request);
        } else {
          Request http_shape;
          http_shape.http = true;
          response = ErrorResponse(http_shape,
                                   error.find("no such path") == 0
                                       ? kStatusNotFound
                                       : kStatusBadRequest,
                                   error);
          CountRequest();
          CountError(error.find("no such path") == 0 ? kStatusNotFound
                                                     : kStatusBadRequest);
        }
        WriteAll(fd, response);
        break;  // close
      }

      // Line protocol.
      Request request;
      std::string error;
      if (!ParseCommandLine(line, &request, &error)) {
        CountRequest();
        CountError(kStatusBadRequest);
        if (!WriteAll(fd, LineError(kStatusBadRequest, error))) break;
        continue;
      }
      const std::string response = HandleRequest(request);
      if (!WriteAll(fd, response)) break;
      if (request.verb == Verb::kQuit) break;
      if (stopping_.load(std::memory_order_acquire)) break;  // drain: close
      idle_start = std::chrono::steady_clock::now();  // request served
      continue;
    }

    if (buffer.size() > kMaxRequestLine) {
      CountRequest();
      CountError(kStatusBadRequest);
      WriteAll(fd, LineError(kStatusBadRequest, "request line too long"));
      break;
    }

    // Need more bytes.
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      idle_start = std::chrono::steady_clock::now();
      buffer.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;  // EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Timeout tick: notice drain and idle budgets.
      if (stopping_.load(std::memory_order_acquire) && !saw_any) break;
      if (stopping_.load(std::memory_order_acquire) && buffer.empty()) break;
      if (std::chrono::steady_clock::now() - idle_start > idle_budget) break;
      continue;
    }
    if (errno == EINTR) continue;
    break;
  }
  ::close(fd);
}

}  // namespace hpcfail::serve
