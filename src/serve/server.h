// hpcfaild's network engine: a TCP listener on loopback (or a given host)
// speaking the serve/protocol.h wire protocol, a bounded admission queue,
// and a fixed worker pool sharing one SessionPool.
//
// Production concerns, by construction:
//
//   * admission control — the accept thread enqueues connections into a
//     bounded queue; when the queue is full the connection is answered
//     `503 overloaded` immediately and closed (explicit shedding, never an
//     unbounded backlog and never a hang);
//   * single-flight warm path — requests resolve their scenario to a trace
//     fingerprint and share sessions through SessionPool: N concurrent
//     requests for one cold fingerprint run one build;
//   * per-request deadlines — every query carries a deadline (config
//     default, per-request `deadline_ms=` override); expiry inside the
//     renderer answers `504 deadline exceeded` via cooperative
//     cancellation checks (engine::RenderReport's CancelFn);
//   * graceful drain — Shutdown() stops accepting, lets queued and
//     executing requests finish, joins every thread, then clears the pool.
//     Idle keep-alive connections are closed at the next read tick.
//
// Observability: request/shed/error counters, queue-depth and in-flight
// gauges, a per-endpoint latency histogram, and serve_* spans per request
// stage, all in the global registry (scrape them via GET /metrics).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/session.h"
#include "serve/protocol.h"
#include "serve/session_pool.h"

namespace hpcfail::serve {

// A file-backed analysis source the daemon serves by name (hpcfaild
// --serve-log). Queries select it with log=<name>; its sessions share the
// same pool as scenario queries, keyed by the source fingerprint (which
// includes the resolved format, so formats never alias).
struct ServeLogSpec {
  std::string path;
  std::string format = "auto";  // adapter name, or "auto" to sniff
  int nodes_per_system = 0;     // 0 = auto-size systems from the log
  hpcfail::trace::AdapterOptions adapter;
};

struct ServerConfig {
  std::string host = "127.0.0.1";
  int port = 0;                  // 0 = ephemeral; see Server::port()
  int workers = 4;               // request worker threads (>= 1)
  std::size_t queue_depth = 64;  // bounded admission queue (>= 1)
  std::size_t pool_capacity = 8;
  std::int64_t default_deadline_ms = 10'000;  // 0 = no deadline
  std::int64_t idle_timeout_ms = 30'000;      // line-protocol idle budget
  bool enable_test_endpoints = false;  // SLEEP / /debug/sleep
  double max_scale = 4.0;   // request validation bound for scale=
  double max_years = 10.0;  // request validation bound for years=
  engine::SessionOptions session;  // cache options for built sessions

  // Sharded (SessionSet-backed) queries: SHARDS, STATS shard=B:W, and
  // REPORT/TABLE sharded=1. window_days=/block_systems= default to these
  // when a sharded request omits them (0 = one window / one block).
  double default_window_days = 0.0;
  int default_block_systems = 0;
  double max_window_count = 4096.0;  // bound on years*365/window_days
  // Per-SessionSet shard LRU budget; 0 = keep every built shard resident.
  std::size_t set_memory_budget_bytes = 0;

  // Named file-backed log sources (log= queries; listed by FORMATS).
  std::map<std::string, ServeLogSpec> logs;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();  // calls Shutdown() if still running
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, and spawns the accept + worker threads. Throws
  // std::runtime_error on any socket failure.
  void Start();

  // The bound port (after Start); useful with config.port == 0.
  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  // Graceful drain: stop accepting, answer everything already admitted,
  // join all threads, clear the pool. Idempotent.
  void Shutdown();

  SessionPool& pool() { return pool_; }
  const ServerConfig& config() const { return config_; }

  // Dispatches one parsed request and returns the full wire response —
  // the exact handler the socket path runs, exposed for protocol-level
  // tests without a connection.
  std::string HandleRequest(const Request& request);

 private:
  void AcceptLoop();
  void WorkerLoop();
  void HandleConnection(int fd);
  bool EnqueueConnection(int fd);  // false = queue full (caller sheds)
  void ShedConnection(int fd);
  int DequeueConnection();         // -1 = draining and queue empty

  std::string HandleQuery(const Request& request);  // REPORT/TABLE/STATS
  // SHARDS, STATS shard=..., and REPORT/TABLE sharded=1 — served from a
  // pooled SessionSet keyed by (trace fingerprint, shard spec).
  std::string HandleShardedQuery(const Request& request);
  // log=<name> queries against a configured ServeLogSpec; format= (when
  // present) must name the log's resolved adapter.
  std::string HandleLogQuery(const Request& request);
  std::string HandleFormats(const Request& request);
  std::string HandleSleep(const Request& request);
  Deadline DeadlineFor(const Request& request) const;

  const ServerConfig config_;
  SessionPool pool_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int port_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> queue_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace hpcfail::serve
