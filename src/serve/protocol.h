// The hpcfaild wire protocol (DESIGN.md "Service layer" has the full spec).
//
// Two request syntaxes share one Request shape and one handler path:
//
//   * line protocol — one command per '\n'-terminated line:
//         PING
//         HEALTH
//         METRICS
//         STATS scale=0.5 years=1 seed=7
//         STATS scale=0.5 window_days=90 shard=0:1     (one shard's stats)
//         REPORT scale=0.5 years=1 seed=7 deadline_ms=2000
//         REPORT scale=0.5 sharded=1 window_days=90    (SessionSet-backed)
//         TABLE overview scale=0.5 years=1 seed=7
//         SHARDS scale=0.5 years=1 window_days=90      (shard grid JSON)
//         FORMATS                (adapter registry + configured logs, JSON)
//         STATS log=ras                                (a --serve-log source)
//         REPORT log=messages format=syslog            (format must match)
//         SLEEP ms=50            (only with test endpoints enabled)
//         QUIT
//     responses: "OK <nbytes>\n" + exactly nbytes of payload, or
//     "ERR <code> <message>\n" with HTTP-mirrored codes (400/404/500/503/504).
//
//   * HTTP/1.1 GET mapping — the same queries as paths, for curl/Prometheus:
//         GET /healthz | /metrics | /stats | /report | /table/<name>
//             | /shards | /formats | /debug/sleep?ms=50
//     query parameters (?scale=0.5&years=1&seed=7&deadline_ms=2000) are the
//     line protocol's key=value arguments. Responses are Connection: close
//     with Content-Length, status 200/400/404/500/503/504.
//
// Parsing here is pure string -> Request / Response framing; sockets and
// dispatch live in serve/server.*.
#pragma once

#include <map>
#include <string>
#include <string_view>

namespace hpcfail::serve {

// Status codes (mirroring HTTP in both syntaxes).
inline constexpr int kStatusOk = 200;
inline constexpr int kStatusBadRequest = 400;
inline constexpr int kStatusNotFound = 404;
inline constexpr int kStatusInternalError = 500;
inline constexpr int kStatusOverloaded = 503;
inline constexpr int kStatusDeadlineExceeded = 504;

std::string_view StatusText(int code);

enum class Verb {
  kPing,
  kHealth,
  kMetrics,
  kStats,
  kReport,
  kTable,
  kShards,
  kFormats,
  kSleep,
  kQuit,
};

std::string_view ToString(Verb v);

struct Request {
  bool http = false;
  Verb verb = Verb::kPing;
  std::string target;  // TABLE <name> / /table/<name>
  std::map<std::string, std::string> params;

  // Missing key -> fallback. Malformed numeric values throw
  // std::invalid_argument (the server answers 400).
  double GetDouble(const std::string& key, double fallback) const;
  std::uint64_t GetUint64(const std::string& key,
                          std::uint64_t fallback) const;
};

// Parses one line-protocol command (no trailing newline). Returns false
// with a message in `error` on an unknown command or malformed token;
// numeric validation happens later in Request::Get*.
bool ParseCommandLine(std::string_view line, Request* out,
                      std::string* error);

// Parses an HTTP request line ("GET /table/overview?scale=0.5 HTTP/1.1")
// and maps the path onto the same Request shape. Only GET is accepted.
bool ParseHttpRequestLine(std::string_view line, Request* out,
                          std::string* error);

// Response framing.
std::string LineOk(std::string_view payload);
std::string LineError(int code, std::string_view message);
std::string HttpResponse(int code, std::string_view body,
                         std::string_view content_type = "text/plain; "
                                                         "charset=utf-8");

// Renders an error in the syntax the request arrived in.
std::string ErrorResponse(const Request& request, int code,
                          std::string_view message);

// Percent-decodes %XX and '+' (exposed for tests).
std::string UrlDecode(std::string_view s);

}  // namespace hpcfail::serve
