#include "stats/distribution_fit.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/special.h"

namespace hpcfail::stats {
namespace {

void CheckSamples(std::span<const double> xs) {
  if (xs.size() < 3) {
    throw std::invalid_argument("distribution fit needs >= 3 samples");
  }
  for (double x : xs) {
    if (!(x > 0.0) || !std::isfinite(x)) {
      throw std::invalid_argument("samples must be positive and finite");
    }
  }
}

double SumLog(std::span<const double> xs) {
  double s = 0.0;
  for (double x : xs) s += std::log(x);
  return s;
}

void FinishFit(DistributionFit& fit, std::span<const double> xs,
               int num_params) {
  fit.n = xs.size();
  fit.aic = 2.0 * num_params - 2.0 * fit.log_likelihood;
  fit.ks_statistic = KsStatistic(xs, fit);
  fit.ks_p_value = KolmogorovPValue(fit.ks_statistic, xs.size());
}

}  // namespace

std::string_view ToString(Distribution d) {
  switch (d) {
    case Distribution::kExponential: return "exponential";
    case Distribution::kWeibull: return "weibull";
    case Distribution::kLogNormal: return "lognormal";
    case Distribution::kGamma: return "gamma";
  }
  return "invalid";
}

double DistributionFit::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  switch (distribution) {
    case Distribution::kExponential:
      return 1.0 - std::exp(-param1 * x);
    case Distribution::kWeibull:
      return 1.0 - std::exp(-std::pow(x / param2, param1));
    case Distribution::kLogNormal:
      return NormalCdf((std::log(x) - param1) / param2);
    case Distribution::kGamma:
      return RegularizedGammaP(param1, param2 * x);
  }
  return 0.0;
}

double DistributionFit::Mean() const {
  switch (distribution) {
    case Distribution::kExponential:
      return 1.0 / param1;
    case Distribution::kWeibull:
      return param2 * std::exp(LogGamma(1.0 + 1.0 / param1));
    case Distribution::kLogNormal:
      return std::exp(param1 + param2 * param2 / 2.0);
    case Distribution::kGamma:
      return param1 / param2;
  }
  return 0.0;
}

DistributionFit FitExponential(std::span<const double> xs) {
  CheckSamples(xs);
  double sum = 0.0;
  for (double x : xs) sum += x;
  const double n = static_cast<double>(xs.size());
  DistributionFit fit;
  fit.distribution = Distribution::kExponential;
  fit.param1 = n / sum;  // MLE rate
  fit.log_likelihood = n * std::log(fit.param1) - fit.param1 * sum;
  FinishFit(fit, xs, 1);
  return fit;
}

DistributionFit FitWeibull(std::span<const double> xs) {
  CheckSamples(xs);
  const double n = static_cast<double>(xs.size());
  const double mean_log = SumLog(xs) / n;
  // Newton iteration on the profile MLE equation for the shape k:
  //   g(k) = sum(x^k ln x)/sum(x^k) - 1/k - mean(ln x) = 0.
  double k = 1.0;
  for (int iter = 0; iter < 200; ++iter) {
    double s0 = 0.0, s1 = 0.0, s2 = 0.0;
    for (double x : xs) {
      const double xk = std::pow(x, k);
      const double lx = std::log(x);
      s0 += xk;
      s1 += xk * lx;
      s2 += xk * lx * lx;
    }
    const double g = s1 / s0 - 1.0 / k - mean_log;
    const double gp = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k);
    const double step = g / gp;
    double next = k - step;
    if (next <= 0.0) next = k / 2.0;
    next = std::clamp(next, 1e-3, 1e3);
    if (std::abs(next - k) < 1e-12 * (k + 1e-12)) {
      k = next;
      break;
    }
    k = next;
  }
  double sk = 0.0;
  for (double x : xs) sk += std::pow(x, k);
  const double lambda = std::pow(sk / n, 1.0 / k);
  DistributionFit fit;
  fit.distribution = Distribution::kWeibull;
  fit.param1 = k;
  fit.param2 = lambda;
  double ll = n * (std::log(k) - k * std::log(lambda));
  for (double x : xs) {
    ll += (k - 1.0) * std::log(x) - std::pow(x / lambda, k);
  }
  fit.log_likelihood = ll;
  FinishFit(fit, xs, 2);
  return fit;
}

DistributionFit FitLogNormal(std::span<const double> xs) {
  CheckSamples(xs);
  const double n = static_cast<double>(xs.size());
  const double mu = SumLog(xs) / n;
  double ss = 0.0;
  for (double x : xs) {
    const double d = std::log(x) - mu;
    ss += d * d;
  }
  const double sigma = std::sqrt(std::max(ss / n, 1e-300));
  DistributionFit fit;
  fit.distribution = Distribution::kLogNormal;
  fit.param1 = mu;
  fit.param2 = sigma;
  double ll = -n * (std::log(sigma) + 0.5 * std::log(2.0 * M_PI));
  for (double x : xs) {
    const double z = (std::log(x) - mu) / sigma;
    ll += -std::log(x) - 0.5 * z * z;
  }
  fit.log_likelihood = ll;
  FinishFit(fit, xs, 2);
  return fit;
}

DistributionFit FitGamma(std::span<const double> xs) {
  CheckSamples(xs);
  const double n = static_cast<double>(xs.size());
  double sum = 0.0;
  for (double x : xs) sum += x;
  const double mean = sum / n;
  const double mean_log = SumLog(xs) / n;
  const double s = std::log(mean) - mean_log;  // >= 0 by Jensen
  // Minka's initialization followed by Newton on the MLE equation
  //   ln k - psi(k) = s.
  double k = s > 0.0 ? (3.0 - s + std::sqrt((s - 3.0) * (s - 3.0) +
                                            24.0 * s)) /
                           (12.0 * s)
                     : 1e3;
  k = std::clamp(k, 1e-3, 1e6);
  for (int iter = 0; iter < 100; ++iter) {
    const double g = std::log(k) - Digamma(k) - s;
    const double gp = 1.0 / k - Trigamma(k);
    double next = k - g / gp;
    if (next <= 0.0) next = k / 2.0;
    next = std::clamp(next, 1e-3, 1e6);
    if (std::abs(next - k) < 1e-12 * (k + 1e-12)) {
      k = next;
      break;
    }
    k = next;
  }
  const double beta = k / mean;  // rate
  DistributionFit fit;
  fit.distribution = Distribution::kGamma;
  fit.param1 = k;
  fit.param2 = beta;
  double ll = n * (k * std::log(beta) - LogGamma(k));
  for (double x : xs) ll += (k - 1.0) * std::log(x) - beta * x;
  fit.log_likelihood = ll;
  FinishFit(fit, xs, 2);
  return fit;
}

std::vector<DistributionFit> FitAll(std::span<const double> xs) {
  std::vector<DistributionFit> fits = {FitExponential(xs), FitWeibull(xs),
                                       FitLogNormal(xs), FitGamma(xs)};
  std::sort(fits.begin(), fits.end(),
            [](const DistributionFit& a, const DistributionFit& b) {
              return a.aic < b.aic;
            });
  return fits;
}

double KsStatistic(std::span<const double> xs, const DistributionFit& fit) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double cdf = fit.Cdf(sorted[i]);
    const double hi = static_cast<double>(i + 1) / n - cdf;
    const double lo = cdf - static_cast<double>(i) / n;
    d = std::max({d, hi, lo});
  }
  return d;
}

double KolmogorovPValue(double d, std::size_t n) {
  if (d <= 0.0) return 1.0;
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  // Stephens' small-sample correction, then the Kolmogorov series.
  const double t = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
  double sum = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double term =
        2.0 * std::pow(-1.0, k - 1) * std::exp(-2.0 * k * k * t * t);
    sum += term;
    if (std::abs(term) < 1e-12) break;
  }
  return std::clamp(sum, 0.0, 1.0);
}

}  // namespace hpcfail::stats
