// Proportion estimation and comparison: the workhorse of the paper's
// conditional-probability figures. Every bar in Figs. 1-3, 6, 10, 11, 13 is
// an estimated proportion with a 95% confidence interval, and every "the
// increase is significant" claim is a two-sample proportion test.
#pragma once

namespace hpcfail::stats {

// An estimated proportion successes/trials with a confidence interval.
struct Proportion {
  long long successes = 0;
  long long trials = 0;
  double estimate = 0.0;  // successes / trials (0 when trials == 0)
  double ci_low = 0.0;    // confidence interval bounds
  double ci_high = 0.0;
  double confidence = 0.95;

  bool defined() const { return trials > 0; }
};

// Wilson score interval: well-behaved for extreme p and small n, which the
// per-subcategory bars routinely hit. `confidence` in (0,1).
Proportion WilsonProportion(long long successes, long long trials,
                            double confidence = 0.95);

// Wald (normal approximation) interval, provided for comparison/ablation.
Proportion WaldProportion(long long successes, long long trials,
                          double confidence = 0.95);

// Two-sample z-test for equality of proportions (pooled variance); the
// "two-sample hypothesis test" the paper uses throughout Section III.
struct TwoProportionTest {
  double z = 0.0;
  double p_value = 1.0;       // two-sided
  bool significant_95 = false;
  bool significant_99 = false;
};

TwoProportionTest TestProportionsDiffer(long long successes1,
                                        long long trials1,
                                        long long successes2,
                                        long long trials2);

// Factor increase of p1 over p2 (the "NX" annotations on the paper's bars).
// Returns NaN when either proportion is undefined or p2 == 0.
double FactorIncrease(const Proportion& p1, const Proportion& p2);

}  // namespace hpcfail::stats
