#include "stats/proportion.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/special.h"

namespace hpcfail::stats {
namespace {

void CheckArgs(long long successes, long long trials, double confidence) {
  if (trials < 0 || successes < 0 || successes > trials) {
    throw std::invalid_argument("invalid successes/trials");
  }
  if (!(confidence > 0.0) || !(confidence < 1.0)) {
    throw std::invalid_argument("confidence must be in (0,1)");
  }
}

}  // namespace

Proportion WilsonProportion(long long successes, long long trials,
                            double confidence) {
  CheckArgs(successes, trials, confidence);
  Proportion out;
  out.successes = successes;
  out.trials = trials;
  out.confidence = confidence;
  if (trials == 0) return out;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  out.estimate = p;
  const double z = NormalQuantile(0.5 + confidence / 2.0);
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  out.ci_low = std::max(0.0, center - half);
  out.ci_high = std::min(1.0, center + half);
  return out;
}

Proportion WaldProportion(long long successes, long long trials,
                          double confidence) {
  CheckArgs(successes, trials, confidence);
  Proportion out;
  out.successes = successes;
  out.trials = trials;
  out.confidence = confidence;
  if (trials == 0) return out;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  out.estimate = p;
  const double z = NormalQuantile(0.5 + confidence / 2.0);
  const double half = z * std::sqrt(p * (1.0 - p) / n);
  out.ci_low = std::max(0.0, p - half);
  out.ci_high = std::min(1.0, p + half);
  return out;
}

TwoProportionTest TestProportionsDiffer(long long successes1,
                                        long long trials1,
                                        long long successes2,
                                        long long trials2) {
  CheckArgs(successes1, trials1, 0.95);
  CheckArgs(successes2, trials2, 0.95);
  TwoProportionTest out;
  if (trials1 == 0 || trials2 == 0) return out;
  const double n1 = static_cast<double>(trials1);
  const double n2 = static_cast<double>(trials2);
  const double p1 = static_cast<double>(successes1) / n1;
  const double p2 = static_cast<double>(successes2) / n2;
  const double pooled =
      static_cast<double>(successes1 + successes2) / (n1 + n2);
  const double se =
      std::sqrt(pooled * (1.0 - pooled) * (1.0 / n1 + 1.0 / n2));
  if (se == 0.0) {
    // Both proportions are 0 or both are 1: no evidence of a difference.
    return out;
  }
  out.z = (p1 - p2) / se;
  out.p_value = 2.0 * NormalSf(std::abs(out.z));
  out.significant_95 = out.p_value < 0.05;
  out.significant_99 = out.p_value < 0.01;
  return out;
}

double FactorIncrease(const Proportion& p1, const Proportion& p2) {
  if (!p1.defined() || !p2.defined() || p2.estimate == 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return p1.estimate / p2.estimate;
}

}  // namespace hpcfail::stats
