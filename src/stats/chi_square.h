// Chi-square tests. Section IV of the paper uses a "chi-square test for
// differences between proportions" to reject the hypothesis that all nodes of
// a system fail at equal rates.
#pragma once

#include <span>

namespace hpcfail::stats {

struct ChiSquareResult {
  double statistic = 0.0;
  double df = 0.0;
  double p_value = 1.0;
  bool significant_99 = false;  // the paper's 99% confidence level
};

// Tests H0: all groups share a common event rate. `counts[i]` is the number
// of events observed in group i and `exposures[i]` its exposure (e.g. node
// lifetime); expected counts under H0 are proportional to exposure. Groups
// with zero exposure are skipped. Requires at least two usable groups.
ChiSquareResult ChiSquareEqualRates(std::span<const double> counts,
                                    std::span<const double> exposures);

// Equal-exposure convenience overload (all exposures = 1).
ChiSquareResult ChiSquareEqualRates(std::span<const double> counts);

// Classic goodness-of-fit against explicit expected counts.
ChiSquareResult ChiSquareGoodnessOfFit(std::span<const double> observed,
                                       std::span<const double> expected);

}  // namespace hpcfail::stats
