#include "stats/survival.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

#include "stats/special.h"

namespace hpcfail::stats {

KaplanMeier::KaplanMeier(std::vector<SurvivalObservation> observations) {
  if (observations.empty()) {
    throw std::invalid_argument("KaplanMeier: no observations");
  }
  for (const SurvivalObservation& o : observations) {
    if (!(o.time >= 0.0) || !std::isfinite(o.time)) {
      throw std::invalid_argument("KaplanMeier: bad observation time");
    }
  }
  n_ = observations.size();
  std::sort(observations.begin(), observations.end(),
            [](const SurvivalObservation& a, const SurvivalObservation& b) {
              return a.time < b.time;
            });
  double survival = 1.0;
  double greenwood = 0.0;  // sum d / (n (n - d))
  std::size_t i = 0;
  int at_risk = static_cast<int>(n_);
  while (i < observations.size()) {
    const double t = observations[i].time;
    int events = 0;
    int leaving = 0;
    while (i < observations.size() && observations[i].time == t) {
      events += observations[i].event ? 1 : 0;
      ++leaving;
      ++i;
    }
    if (events > 0) {
      events_ += static_cast<std::size_t>(events);
      survival *= 1.0 - static_cast<double>(events) / at_risk;
      if (at_risk > events) {
        greenwood += static_cast<double>(events) /
                     (static_cast<double>(at_risk) * (at_risk - events));
      }
      SurvivalPoint p;
      p.time = t;
      p.survival = survival;
      p.std_error = survival * std::sqrt(greenwood);
      p.at_risk = at_risk;
      p.events = events;
      curve_.push_back(p);
    }
    at_risk -= leaving;
  }
}

double KaplanMeier::Survival(double t) const {
  double s = 1.0;
  for (const SurvivalPoint& p : curve_) {
    if (p.time > t) break;
    s = p.survival;
  }
  return s;
}

double KaplanMeier::MedianSurvival() const {
  for (const SurvivalPoint& p : curve_) {
    if (p.survival <= 0.5) return p.time;
  }
  return std::numeric_limits<double>::infinity();
}

LogRankResult LogRankTest(std::span<const SurvivalObservation> group1,
                          std::span<const SurvivalObservation> group2) {
  if (group1.empty() || group2.empty()) {
    throw std::invalid_argument("LogRankTest: empty group");
  }
  // Merge distinct event times; track at-risk counts per group.
  std::map<double, std::pair<int, int>> events_at;  // t -> (d1, d2)
  for (const SurvivalObservation& o : group1) {
    if (o.event) ++events_at[o.time].first;
  }
  for (const SurvivalObservation& o : group2) {
    if (o.event) ++events_at[o.time].second;
  }
  LogRankResult out;
  if (events_at.empty()) return out;

  auto sorted_times = [](std::span<const SurvivalObservation> g) {
    std::vector<double> times;
    times.reserve(g.size());
    for (const SurvivalObservation& o : g) times.push_back(o.time);
    std::sort(times.begin(), times.end());
    return times;
  };
  const std::vector<double> t1 = sorted_times(group1);
  const std::vector<double> t2 = sorted_times(group2);
  auto at_risk = [](const std::vector<double>& times, double t) {
    // Subjects with observation time >= t.
    return static_cast<int>(times.end() -
                            std::lower_bound(times.begin(), times.end(), t));
  };

  double observed1 = 0.0, expected1 = 0.0, variance = 0.0;
  for (const auto& [t, d] : events_at) {
    const int n1 = at_risk(t1, t);
    const int n2 = at_risk(t2, t);
    const int n = n1 + n2;
    const int deaths = d.first + d.second;
    if (n <= 1 || deaths == 0) continue;
    observed1 += d.first;
    expected1 += static_cast<double>(deaths) * n1 / n;
    variance += static_cast<double>(deaths) *
                (static_cast<double>(n1) / n) *
                (static_cast<double>(n2) / n) *
                (static_cast<double>(n - deaths) / std::max(1, n - 1));
  }
  if (variance <= 0.0) return out;
  const double z = observed1 - expected1;
  out.statistic = z * z / variance;
  out.p_value = ChiSquareSf(out.statistic, 1.0);
  out.significant_99 = out.p_value < 0.01;
  return out;
}

}  // namespace hpcfail::stats
