// Special functions underpinning the statistical tests: regularized
// incomplete gamma / beta functions and the distribution functions (normal,
// chi-square, Student-t, F, Poisson) built on top of them.
//
// Implementations use the classical series / continued-fraction expansions
// (Abramowitz & Stegun 6.5, 26.5) with double precision targets of ~1e-12
// relative accuracy, which is far beyond what p-value consumers need.
#pragma once

namespace hpcfail::stats {

// Natural log of the gamma function for x > 0. Uses lgamma_r where the
// platform has it: plain lgamma writes the process-global `signgam` on
// every call, which is a data race between concurrent report renders.
double LogGamma(double x);

// Digamma (psi) and trigamma functions for x > 0; needed by the negative
// binomial maximum-likelihood theta update.
double Digamma(double x);
double Trigamma(double x);

// Regularized lower incomplete gamma P(a, x) = gamma(a,x)/Gamma(a), a > 0,
// x >= 0. P is a CDF in x: P(a,0)=0, P(a,inf)=1.
double RegularizedGammaP(double a, double x);
// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

// Regularized incomplete beta I_x(a, b), a,b > 0, 0 <= x <= 1.
double RegularizedBeta(double x, double a, double b);

// Standard normal CDF and survival function.
double NormalCdf(double z);
double NormalSf(double z);
// Inverse standard normal CDF (Acklam's rational approximation polished by
// one Halley step; |error| < 1e-12 over (0,1)).
double NormalQuantile(double p);

// Chi-square distribution with k degrees of freedom.
double ChiSquareCdf(double x, double k);
double ChiSquareSf(double x, double k);

// Student-t distribution with v degrees of freedom: two-sided p-value of an
// observed statistic t.
double StudentTTwoSidedP(double t, double v);

// F distribution survival function with (d1, d2) degrees of freedom.
double FDistSf(double x, double d1, double d2);

// Poisson(lambda) CDF: P[X <= k].
double PoissonCdf(int k, double lambda);

}  // namespace hpcfail::stats
